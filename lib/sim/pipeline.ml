module Metrics = Hlsb_telemetry.Metrics
module Diag = Hlsb_util.Diag

type 'b result = {
  outputs : 'b list;
  cycles : int;
  max_occupancy : int;
  overflow : bool;
}

let cycle_limit n_inputs stages = (n_inputs * 20) + (stages * 10) + 1000

let run_stall ~stages ~inputs ~ready ~f =
  if stages < 1 then invalid_arg "Pipeline.run_stall: stages < 1";
  let regs = Array.make stages None in
  let out_fifo = Fifo.create ~depth:2 in
  let pending = ref inputs in
  let delivered = ref [] in
  let n_in = List.length inputs in
  let limit = cycle_limit n_in stages in
  let cycle = ref 0 in
  let drained () =
    !pending = []
    && Array.for_all (fun s -> s = None) regs
    && Fifo.is_empty out_fifo
  in
  while (not (drained ())) && !cycle < limit do
    (* 1. downstream consumes *)
    if ready !cycle then begin
      match Fifo.pop out_fifo with
      | Some x -> delivered := x :: !delivered
      | None -> ()
    end;
    (* 2. stall decision: output side cannot accept -> freeze everything *)
    let stall = Fifo.is_full out_fifo in
    if not stall then begin
      (* 3. advance: tail leaves, stages shift, head reads *)
      (match regs.(stages - 1) with
      | Some x -> Fifo.push out_fifo (f x)
      | None -> ());
      for i = stages - 1 downto 1 do
        regs.(i) <- regs.(i - 1)
      done;
      (match !pending with
      | x :: rest ->
        regs.(0) <- Some x;
        pending := rest
      | [] -> regs.(0) <- None)
    end;
    incr cycle
  done;
  Metrics.incr ~by:!cycle "sim.cycles";
  {
    outputs = List.rev !delivered;
    cycles = !cycle;
    max_occupancy = Fifo.max_occupancy out_fifo;
    overflow = Fifo.overflowed out_fifo;
  }

type gate =
  | Gate_empty
  | Gate_credit

let run_skid ~stages ~skid_depth ~ctrl_delay ~gate ~inputs ~ready ~f =
  if stages < 1 then invalid_arg "Pipeline.run_skid: stages < 1";
  if ctrl_delay < 0 then invalid_arg "Pipeline.run_skid: ctrl_delay < 0";
  (* An under-provisioned credit gate has a negative admission threshold:
     the read gate never opens, nothing ever enters the pipeline, and the
     run exits through the cycle limit with every input silently dropped.
     (Gate_empty with a shallow buffer is different: it runs and reports
     overflow, which the sizing experiments rely on observing.) *)
  (match gate with
  | Gate_empty -> ()
  | Gate_credit ->
    let required =
      Hlsb_ctrl.Skid.required_depth ~pipeline_depth:stages
        ~ctrl_stages:ctrl_delay ()
    in
    if skid_depth < required then
      Diag.fail ~stage:"sim"
        "Pipeline.run_skid: Gate_credit skid_depth %d < required depth %d \
         (stages %d + 1 + ctrl_delay %d); the read gate would never open"
        skid_depth required stages ctrl_delay);
  let regs = Array.make stages None in
  let skid = Fifo.create ~depth:skid_depth in
  (* History of skid occupancy, oldest first, for the registered
     back-pressure path. *)
  let occ_hist = Array.make (ctrl_delay + 1) 0 in
  let pending = ref inputs in
  let delivered = ref [] in
  let n_in = List.length inputs in
  let limit = cycle_limit n_in stages in
  let cycle = ref 0 in
  let drained () =
    !pending = []
    && Array.for_all (fun s -> s = None) regs
    && Fifo.is_empty skid
  in
  while (not (drained ())) && !cycle < limit do
    (* 1. tail enters the skid buffer (pipeline never stalls) *)
    (match regs.(stages - 1) with
    | Some x -> Fifo.push skid (f x)
    | None -> ());
    (* 2. downstream consumes from the skid buffer *)
    if ready !cycle then begin
      match Fifo.pop skid with
      | Some x -> delivered := x :: !delivered
      | None -> ()
    end;
    (* 3. upstream read gate (see the interface for the two disciplines) *)
    let gate_occ = occ_hist.(0) in
    let threshold =
      match gate with
      | Gate_empty -> 0
      | Gate_credit -> skid_depth - stages - 1 - ctrl_delay
    in
    for i = 0 to ctrl_delay - 1 do
      occ_hist.(i) <- occ_hist.(i + 1)
    done;
    occ_hist.(ctrl_delay) <- Fifo.length skid;
    (* 4. advance; bubbles enter while the gate is closed *)
    for i = stages - 1 downto 1 do
      regs.(i) <- regs.(i - 1)
    done;
    (if gate_occ <= threshold then
       match !pending with
       | x :: rest ->
         regs.(0) <- Some x;
         pending := rest
       | [] -> regs.(0) <- None
     else regs.(0) <- None);
    (* Per-cycle fill series: this is the §4.3 occupancy telemetry that
       drives skid sizing. No-op (no boxing) when telemetry is off. *)
    Metrics.observe_int "sim.skid_occupancy" (Fifo.length skid);
    incr cycle
  done;
  Metrics.incr ~by:!cycle "sim.cycles";
  {
    outputs = List.rev !delivered;
    cycles = !cycle;
    max_occupancy = Fifo.max_occupancy skid;
    overflow = Fifo.overflowed skid;
  }

let throughput r =
  if r.cycles = 0 then 0.
  else float_of_int (List.length r.outputs) /. float_of_int r.cycles
