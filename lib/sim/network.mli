(** Token-level simulation of a dataflow process network under sync-group
    barriers — demonstrates the two §4.2 facts:

    - pruning (splitting a sync group into its independent components)
      never changes any flow's output stream;
    - it can only improve throughput: a barrier couples independent flows,
      so back-pressure on one flow stalls the others.

    Each process fires at most once per cycle, consuming one token from
    every input channel and producing one on every output channel. A sync
    group is a barrier: either every member of the group fires this cycle
    or none does. External outputs (channels with dst = -1) consume tokens
    according to a per-channel readiness pattern. *)

type status =
  | Completed  (** every external output delivered all [tokens] *)
  | Deadlocked
      (** no process can ever fire again and every external output is
          empty: no future sink-readiness pattern can unfreeze the
          network (circular waits, barrier groups spanning dependent
          processes, ...) *)
  | Limit_exceeded
      (** the cycle limit ran out while the network was still live — a
          slow-but-progressing run (e.g. a rarely-ready sink), not a
          deadlock *)

val status_label : status -> string

type result = {
  cycles : int;  (** cycles simulated *)
  fired : int array;  (** per-process firing count *)
  delivered : (int * int list) list;
      (** per external-output channel: the token sequence numbers received *)
  status : status;
  occupancy : int array;  (** per-channel tokens in flight at exit *)
  produced : int array;  (** per-channel tokens ever pushed *)
  consumed : int array;
      (** per-channel tokens ever popped (by the consumer process, or by
          the external sink for output channels). Token conservation —
          [produced.(c) - consumed.(c) = occupancy.(c)] for every channel —
          is a differential-fuzzing oracle over this record. *)
}

val run :
  ?sync:bool ->
  Hlsb_ir.Dataflow.t ->
  tokens:int ->
  ready:(chan:int -> cycle:int -> bool) ->
  result
(** [sync] (default true) applies the network's sync groups as barriers;
    [sync:false] ignores them (an idealized fully-decoupled run, useful as
    a reference). External input channels (src = -1) always have data.

    Raises [Hlsb_util.Diag.Diagnostic] (stage ["sim"]) when the network
    has no external output channel or [tokens < 1] — both degenerate
    cases that would otherwise report an instant 0-cycle success. *)
