(** Cycle-accurate models of the two pipeline-control disciplines of §3.3 /
    §4.3, used to validate the paper's functional claims:

    - stall control and skid control produce the *same output stream* and
      the *same throughput* under any downstream back-pressure pattern;
    - with skid depth >= N + 1 + ctrl_delay no overflow occurs, where
      [ctrl_delay] is the number of register stages on the back-pressure
      path (the paper's N+1 is the ctrl_delay = 0 case);
    - shallower buffers can overflow under adversarial back-pressure. *)

type 'b result = {
  outputs : 'b list;  (** tokens delivered downstream, in order *)
  cycles : int;  (** cycles until the pipeline fully drained *)
  max_occupancy : int;
      (** buffer high-water mark: the skid FIFO under skid control, the
          output FIFO under stall control (never 0 once anything was
          delivered — occupancy telemetry must not read as always-empty) *)
  overflow : bool;  (** a buffer push was dropped — sizing violated *)
}

val run_stall :
  stages:int ->
  inputs:'a list ->
  ready:(int -> bool) ->
  f:('a -> 'b) ->
  'b result
(** Classic broadcast-stall control: when the output side cannot accept
    data, *every* stage freezes in place. [ready cycle] is the downstream's
    willingness to consume on that cycle; [f] is the pipeline's function.
    Raises [Invalid_argument] if [stages < 1]. *)

type gate =
  | Gate_empty
      (** §4.3 literally: stop reading while the buffer is non-empty. Safe
          iff depth >= N + 1 + ctrl_delay; can starve briefly after long
          freezes. *)
  | Gate_credit
      (** watermark/credit flow control (the Hyperflex-handbook practice
          the paper cites): admit while the buffer still has room for all
          data in flight. Never overflows; with depth >= 2(N+1+delay) it
          matches stall control's throughput exactly. *)

val run_skid :
  stages:int ->
  skid_depth:int ->
  ctrl_delay:int ->
  gate:gate ->
  inputs:'a list ->
  ready:(int -> bool) ->
  f:('a -> 'b) ->
  'b result
(** Always-flowing pipeline with a valid bit per datum and a skid FIFO at
    the end, under the chosen read-gate discipline. [ctrl_delay] registers
    sit on the back-pressure observation path (0 = combinational).

    Raises [Hlsb_util.Diag.Diagnostic] (stage ["sim"]) when [Gate_credit]
    is combined with [skid_depth < Skid.required_depth]: the credit
    threshold would be negative, the read gate would never open, and the
    run would exit through the cycle limit with every input silently
    undelivered. [Gate_empty] accepts any depth — shallow buffers run and
    report {!field-overflow}, which the sizing experiments observe. *)

val throughput : 'b result -> float
(** Delivered tokens per cycle. *)
