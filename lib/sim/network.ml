open Hlsb_ir

type result = {
  cycles : int;
  fired : int array;
  delivered : (int * int list) list;
  deadlocked : bool;
}

let run ?(sync = true) (df : Dataflow.t) ~tokens ~ready =
  let n_proc = Dataflow.n_processes df in
  let n_chan = Dataflow.n_channels df in
  let chans = Dataflow.channels df in
  (* Channel occupancies as token counters; contents are sequence numbers,
     so FIFO order makes the k-th delivered token always k. *)
  let occupancy = Array.make n_chan 0 in
  let produced = Array.make n_chan 0 in
  let consumed_out = Array.make n_chan 0 in
  let delivered = Array.make n_chan [] in
  let in_chans = Array.make n_proc [] in
  let out_chans = Array.make n_proc [] in
  Array.iteri
    (fun i (c : Dataflow.channel) ->
      if c.Dataflow.c_dst >= 0 then
        in_chans.(c.Dataflow.c_dst) <- i :: in_chans.(c.Dataflow.c_dst);
      if c.Dataflow.c_src >= 0 then
        out_chans.(c.Dataflow.c_src) <- i :: out_chans.(c.Dataflow.c_src))
    chans;
  (* Which barrier (if any) each process belongs to. *)
  let group_of = Array.make n_proc (-1) in
  if sync then
    List.iteri
      (fun g members -> List.iter (fun p -> group_of.(p) <- g) members)
      (Dataflow.sync_groups df);
  let groups = if sync then Array.of_list (Dataflow.sync_groups df) else [||] in
  let fired = Array.make n_proc 0 in
  let ext_outputs =
    Array.to_list chans
    |> List.mapi (fun i c -> (i, c))
    |> List.filter (fun (_, (c : Dataflow.channel)) -> c.Dataflow.c_dst = -1)
    |> List.map fst
  in
  let can_fire p =
    fired.(p) < tokens
    && List.for_all
         (fun c ->
           let ch = chans.(c) in
           if ch.Dataflow.c_src = -1 then true (* external inputs: always data *)
           else occupancy.(c) > 0)
         in_chans.(p)
    && List.for_all
         (fun c -> occupancy.(c) < chans.(c).Dataflow.c_depth)
         out_chans.(p)
  in
  let fire p =
    List.iter
      (fun c -> if chans.(c).Dataflow.c_src >= 0 then occupancy.(c) <- occupancy.(c) - 1)
      in_chans.(p);
    List.iter
      (fun c ->
        occupancy.(c) <- occupancy.(c) + 1;
        produced.(c) <- produced.(c) + 1)
      out_chans.(p);
    fired.(p) <- fired.(p) + 1
  in
  let all_done () =
    List.for_all (fun c -> consumed_out.(c) >= tokens) ext_outputs
  in
  let limit = (tokens * 50) + 1000 in
  let cycle = ref 0 in
  while (not (all_done ())) && !cycle < limit do
    (* 1. external sinks drain according to their readiness *)
    List.iter
      (fun c ->
        if ready ~chan:c ~cycle:!cycle && occupancy.(c) > 0 then begin
          occupancy.(c) <- occupancy.(c) - 1;
          delivered.(c) <- consumed_out.(c) :: delivered.(c);
          consumed_out.(c) <- consumed_out.(c) + 1
        end)
      ext_outputs;
    (* 2. barriered groups fire all-or-nothing; free processes fire alone *)
    let fired_this_cycle = Array.make n_proc false in
    Array.iteri
      (fun _ members ->
        let members = members in
        if List.for_all can_fire members then
          List.iter
            (fun p ->
              fire p;
              fired_this_cycle.(p) <- true)
            members)
      groups;
    for p = 0 to n_proc - 1 do
      if group_of.(p) = -1 && (not fired_this_cycle.(p)) && can_fire p then
        fire p
    done;
    if Hlsb_telemetry.Metrics.enabled () then
      for c = 0 to n_chan - 1 do
        Hlsb_telemetry.Metrics.observe_int "sim.chan_occupancy" occupancy.(c)
      done;
    incr cycle
  done;
  Hlsb_telemetry.Metrics.incr ~by:!cycle "sim.cycles";
  {
    cycles = !cycle;
    fired;
    delivered = List.map (fun c -> (c, List.rev delivered.(c))) ext_outputs;
    deadlocked = not (all_done ());
  }
