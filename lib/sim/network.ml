open Hlsb_ir
module Diag = Hlsb_util.Diag

type status =
  | Completed
  | Deadlocked
  | Limit_exceeded

type result = {
  cycles : int;
  fired : int array;
  delivered : (int * int list) list;
  status : status;
  occupancy : int array;
  produced : int array;
  consumed : int array;
}

let status_label = function
  | Completed -> "completed"
  | Deadlocked -> "deadlocked"
  | Limit_exceeded -> "limit-exceeded"

let run ?(sync = true) (df : Dataflow.t) ~tokens ~ready =
  let n_proc = Dataflow.n_processes df in
  let n_chan = Dataflow.n_channels df in
  let chans = Dataflow.channels df in
  if tokens < 1 then
    Diag.fail ~stage:"sim"
      "Network.run: tokens = %d; a run must observe at least one token \
       (tokens < 1 would report success after zero cycles)"
      tokens;
  (* Channel occupancies as token counters; contents are sequence numbers,
     so FIFO order makes the k-th delivered token always k. *)
  let occupancy = Array.make n_chan 0 in
  let produced = Array.make n_chan 0 in
  let consumed = Array.make n_chan 0 in
  let consumed_out = Array.make n_chan 0 in
  let delivered = Array.make n_chan [] in
  (* Per-process channel sets as flat int arrays, hoisted out of the cycle
     loop; external input channels (always ready) are filtered out of the
     input sets up front so [can_fire] only scans channels that gate. *)
  let in_lists = Array.make n_proc [] in
  let out_lists = Array.make n_proc [] in
  Array.iteri
    (fun i (c : Dataflow.channel) ->
      if c.Dataflow.c_dst >= 0 && c.Dataflow.c_src >= 0 then
        in_lists.(c.Dataflow.c_dst) <- i :: in_lists.(c.Dataflow.c_dst);
      if c.Dataflow.c_src >= 0 then
        out_lists.(c.Dataflow.c_src) <- i :: out_lists.(c.Dataflow.c_src))
    chans;
  let in_chans = Array.map Array.of_list in_lists in
  let out_chans = Array.map Array.of_list out_lists in
  let depth = Array.map (fun (c : Dataflow.channel) -> c.Dataflow.c_depth) chans in
  (* Which barrier (if any) each process belongs to. *)
  let group_of = Array.make n_proc (-1) in
  if sync then
    List.iteri
      (fun g members -> List.iter (fun p -> group_of.(p) <- g) members)
      (Dataflow.sync_groups df);
  let groups =
    if sync then
      Array.of_list (List.map Array.of_list (Dataflow.sync_groups df))
    else [||]
  in
  let fired = Array.make n_proc 0 in
  let ext_outputs =
    let acc = ref [] in
    for i = n_chan - 1 downto 0 do
      if chans.(i).Dataflow.c_dst = -1 then acc := i :: !acc
    done;
    Array.of_list !acc
  in
  let n_ext = Array.length ext_outputs in
  if n_ext = 0 then
    Diag.fail ~stage:"sim"
      "Network.run: network has no external output channel (dst = -1); \
       there is nothing to observe, so the run would report an instant \
       0-cycle success";
  let has_data c = occupancy.(c) > 0 in
  let has_room c = occupancy.(c) < depth.(c) in
  let can_fire p =
    fired.(p) < tokens
    && Array.for_all has_data in_chans.(p)
    && Array.for_all has_room out_chans.(p)
  in
  (* Active-process worklist: a process (or barrier group) found unable to
     fire goes inactive and is not rescanned until the occupancy of an
     adjacent channel changes — sound because [can_fire] depends only on
     those occupancies and on the monotonically increasing fired count, so
     with no adjacent change a failed check stays failed. A quiescent
     pipeline tail thus costs nothing per cycle, instead of a full rescan
     of every process. Scan order among processes that do fire is the same
     as before (groups in order, then free processes ascending), so fire
     counts, deliveries, and cycle counts are unchanged. *)
  let src_of = Array.map (fun (c : Dataflow.channel) -> c.Dataflow.c_src) chans in
  let dst_of = Array.map (fun (c : Dataflow.channel) -> c.Dataflow.c_dst) chans in
  let proc_active = Array.make n_proc true in
  let group_active = Array.make (Array.length groups) true in
  let activate p =
    if p >= 0 then begin
      let g = group_of.(p) in
      if g >= 0 then group_active.(g) <- true else proc_active.(p) <- true
    end
  in
  let touch c =
    activate src_of.(c);
    activate dst_of.(c)
  in
  (* Did any token move this cycle (a process fired or a sink drained)?
     Distinguishes a network that is merely waiting on sink readiness from
     one that can never move again. *)
  let moved = ref false in
  let fire p =
    moved := true;
    Array.iter
      (fun c ->
        occupancy.(c) <- occupancy.(c) - 1;
        consumed.(c) <- consumed.(c) + 1;
        touch c)
      in_chans.(p);
    Array.iter
      (fun c ->
        occupancy.(c) <- occupancy.(c) + 1;
        produced.(c) <- produced.(c) + 1;
        touch c)
      out_chans.(p);
    fired.(p) <- fired.(p) + 1
  in
  (* Count of external outputs that have drained all [tokens], instead of
     rescanning every output channel every cycle. *)
  let outputs_done = ref 0 in
  let all_done () = !outputs_done >= n_ext in
  let limit = (tokens * 50) + 1000 in
  let cycle = ref 0 in
  let dead = ref false in
  while (not !dead) && (not (all_done ())) && !cycle < limit do
    moved := false;
    (* 1. external sinks drain according to their readiness *)
    Array.iter
      (fun c ->
        if ready ~chan:c ~cycle:!cycle && occupancy.(c) > 0 then begin
          occupancy.(c) <- occupancy.(c) - 1;
          consumed.(c) <- consumed.(c) + 1;
          moved := true;
          touch c;
          delivered.(c) <- consumed_out.(c) :: delivered.(c);
          consumed_out.(c) <- consumed_out.(c) + 1;
          if consumed_out.(c) = tokens then incr outputs_done
        end)
      ext_outputs;
    (* 2. barriered groups fire all-or-nothing; free processes fire alone.
       Fires earlier in the cycle are visible to later checks in the same
       cycle, exactly as in the full-scan version. *)
    Array.iteri
      (fun g members ->
        if group_active.(g) then begin
          if Array.for_all can_fire members then Array.iter fire members
          else group_active.(g) <- false
        end)
      groups;
    for p = 0 to n_proc - 1 do
      if group_of.(p) = -1 && proc_active.(p) then begin
        if can_fire p then fire p else proc_active.(p) <- false
      end
    done;
    if Hlsb_telemetry.Metrics.enabled () then
      for c = 0 to n_chan - 1 do
        Hlsb_telemetry.Metrics.observe_int "sim.chan_occupancy" occupancy.(c)
      done;
    incr cycle;
    (* 3. deadlock test: nothing moved, and every external output is empty.
       Sink readiness is the only time-varying input, and it can only ever
       drain a non-empty external output — so a motionless cycle with all
       external outputs empty is a state no future readiness pattern can
       unfreeze: a true deadlock. A motionless cycle with data sitting on
       an output is just back-pressure; it runs on (to the cycle limit if
       the sink never becomes ready, which is [Limit_exceeded], not
       deadlock). *)
    if (not !moved) && not (all_done ()) then
      if Array.for_all (fun c -> occupancy.(c) = 0) ext_outputs then
        dead := true
  done;
  Hlsb_telemetry.Metrics.incr ~by:!cycle "sim.cycles";
  {
    cycles = !cycle;
    fired;
    delivered =
      Array.to_list
        (Array.map (fun c -> (c, List.rev delivered.(c))) ext_outputs);
    status =
      (if all_done () then Completed
       else if !dead then Deadlocked
       else Limit_exceeded);
    occupancy;
    produced;
    consumed;
  }
