(** Persistent content-addressed artifact store backing the compile
    daemon's pipeline sessions.

    Every artifact is filed under the MD5 of a canonical key string
    ({!key}) assembled from everything that determines the bytes: a
    store schema tag, the input identity (suite design name or source
    digest), the device fingerprint, the code revision, and the
    session-level compile key ([Core.Pipeline.cache_key] — recipe, plan,
    tuning) that PR 8/9 already thread through the in-memory schedule
    cache. Identical requests from *any* process therefore resolve to
    the same file, and a hit returns the stored bytes unchanged —
    byte-identical to the compile that populated it.

    Layout: [<root>/<namespace>/<hh>/<hash>] where [hh] is the first two
    hex digits of the hash. Namespaces isolate clients from one another:
    a key only ever hits within the namespace that stored it, so one
    client cannot observe (or evict-by-alias) another's artifacts;
    eviction budgets the store as a whole.

    Writes go through {!Hlsb_util.Atomic_file} (write-then-rename with a
    pid+domain+random temp suffix), so concurrent daemons or stray CLI
    processes never publish a torn artifact. Reads bump the entry's
    mtime, which is the LRU clock: {!gc} evicts oldest-first until the
    store fits its byte budget. *)

type t

type stats = {
  st_entries : int;  (** artifacts on disk, every namespace *)
  st_bytes : int;  (** payload bytes on disk *)
  st_hits : int;  (** lookups served since {!open_} (this process) *)
  st_misses : int;
  st_puts : int;
  st_evictions : int;  (** entries removed by {!gc} since {!open_} *)
}

val schema : string
(** ["hlsbd-store/1"] — joins every key; bump to orphan all prior
    artifacts when the artifact encoding changes. *)

val env_var : string
(** ["HLSBD_STORE"] — overrides the store root directory. *)

val default_root : string
(** [".hlsb/store"]. *)

val ambient_root : unit -> string
(** [$HLSBD_STORE] when set and non-empty, else {!default_root}. *)

val default_budget_bytes : int
(** 256 MiB. *)

val open_ : ?budget_bytes:int -> root:string -> unit -> t
(** Open (creating as needed) a store rooted at [root]. The budget is
    the eviction target, not a hard cap: a put may briefly exceed it
    until the put's own eviction pass runs. *)

val root : t -> string
val budget_bytes : t -> int

val sanitize_ns : string -> string
(** Map an arbitrary client namespace to the directory-safe alphabet
    [[a-z0-9_-]]; empty input becomes ["default"]. Distinct inputs may
    alias only if they differ in stripped characters — acceptable for
    cooperating clients, and the sanitized name is what isolation keys
    on. *)

val key : parts:string list -> string
(** The content address: hex MD5 of [schema] + the ['\x00']-joined
    parts. Deterministic across processes; any part changing (recipe,
    plan, tuning, source bytes, device, code rev) changes the key. *)

val find : t -> ns:string -> key:string -> string option
(** The stored bytes, or [None]. A hit refreshes the entry's LRU clock
    and counts in {!stats}; a miss counts too. *)

val put : t -> ns:string -> key:string -> string -> (unit, string) result
(** Atomically publish bytes under the key, then evict past-budget
    entries (oldest first, never the one just written). Re-putting an
    existing key rewrites it (the payload is the same by construction —
    keys are content-derived). *)

val gc : t -> int
(** Rescan the root and evict oldest-first until within budget; returns
    the number of entries removed. Safe to run concurrently with other
    processes using the same root (missing files are skipped). *)

val clear : t -> int
(** Remove every artifact in every namespace; returns how many. *)

val stats : t -> stats
(** Disk figures are rescanned on each call (other processes may have
    added or evicted entries); traffic counters are this process's. *)

val disk_usage : root:string -> int * int
(** [(entries, bytes)] for a store root, without opening it — what
    [hlsbd status] reports when no daemon is listening. *)
