module Atomic_file = Hlsb_util.Atomic_file

let schema = "hlsbd-store/1"
let env_var = "HLSBD_STORE"
let default_root = Filename.concat ".hlsb" "store"

let ambient_root () =
  match Sys.getenv_opt env_var with
  | Some d when d <> "" -> d
  | _ -> default_root

let default_budget_bytes = 256 * 1024 * 1024

type t = {
  t_root : string;
  t_budget : int;
  t_mutex : Mutex.t;  (** guards the counters; disk state is self-locking *)
  mutable t_hits : int;
  mutable t_misses : int;
  mutable t_puts : int;
  mutable t_evictions : int;
  mutable t_approx_bytes : int;
      (** running estimate maintained by put/evict; rescanned whenever an
          eviction decision is actually taken, so drift from other
          processes only costs a scan, never a wrong eviction *)
}

type stats = {
  st_entries : int;
  st_bytes : int;
  st_hits : int;
  st_misses : int;
  st_puts : int;
  st_evictions : int;
}

let root t = t.t_root
let budget_bytes t = t.t_budget

let sanitize_ns ns =
  let mapped =
    String.to_seq ns
    |> Seq.filter_map (fun c ->
         match c with
         | 'A' .. 'Z' -> Some (Char.lowercase_ascii c)
         | 'a' .. 'z' | '0' .. '9' | '-' | '_' -> Some c
         | _ -> None)
    |> String.of_seq
  in
  if mapped = "" then "default" else mapped

let key ~parts = Digest.to_hex (Digest.string (String.concat "\x00" (schema :: parts)))

let entry_path ~root ~ns ~key =
  let ns = sanitize_ns ns in
  let shard = if String.length key >= 2 then String.sub key 0 2 else "00" in
  Filename.concat (Filename.concat (Filename.concat root ns) shard) key

(* An entry file name is a 32-hex-digit MD5; anything else in the tree
   (temp files mid-rename, stray editor droppings) is left alone. *)
let is_entry name =
  String.length name = 32
  && String.for_all
       (function 'a' .. 'f' | '0' .. '9' -> true | _ -> false)
       name

let scan root =
  (* [(path, mtime, bytes)] of every entry under every namespace *)
  let acc = ref [] in
  let dir_entries d =
    match Sys.readdir d with exception Sys_error _ -> [||] | fs -> fs
  in
  Array.iter
    (fun ns ->
      let ns_dir = Filename.concat root ns in
      if (try Sys.is_directory ns_dir with Sys_error _ -> false) then
        Array.iter
          (fun shard ->
            let shard_dir = Filename.concat ns_dir shard in
            if (try Sys.is_directory shard_dir with Sys_error _ -> false) then
              Array.iter
                (fun f ->
                  if is_entry f then
                    let path = Filename.concat shard_dir f in
                    match Unix.stat path with
                    | { Unix.st_kind = Unix.S_REG; st_mtime; st_size; _ } ->
                      acc := (path, st_mtime, st_size) :: !acc
                    | _ | (exception Unix.Unix_error _) -> ())
                (dir_entries shard_dir))
          (dir_entries ns_dir))
    (dir_entries root);
  !acc

let disk_usage ~root =
  let entries = scan root in
  (List.length entries, List.fold_left (fun a (_, _, b) -> a + b) 0 entries)

let open_ ?(budget_bytes = default_budget_bytes) ~root () =
  Atomic_file.mkdir_p root;
  let _, bytes = disk_usage ~root in
  {
    t_root = root;
    t_budget = budget_bytes;
    t_mutex = Mutex.create ();
    t_hits = 0;
    t_misses = 0;
    t_puts = 0;
    t_evictions = 0;
    t_approx_bytes = bytes;
  }

let count t f = Mutex.protect t.t_mutex (fun () -> f t)

let find t ~ns ~key =
  let path = entry_path ~root:t.t_root ~ns ~key in
  match Atomic_file.read path with
  | None ->
    count t (fun t -> t.t_misses <- t.t_misses + 1);
    None
  | Some bytes ->
    (* the read IS the LRU touch: utimes to now *)
    (try Unix.utimes path 0. 0. with Unix.Unix_error _ -> ());
    count t (fun t -> t.t_hits <- t.t_hits + 1);
    Some bytes

(* Oldest-first eviction to budget. [keep] protects the entry a put just
   published from being the victim of its own eviction pass. *)
let evict_to_budget ?keep t =
  let entries =
    scan t.t_root |> List.sort (fun (_, a, _) (_, b, _) -> compare a b)
  in
  let total = List.fold_left (fun a (_, _, b) -> a + b) 0 entries in
  count t (fun t -> t.t_approx_bytes <- total);
  let evicted = ref 0 in
  let remaining = ref total in
  List.iter
    (fun (path, _, bytes) ->
      if !remaining > t.t_budget && keep <> Some path then (
        match Sys.remove path with
        | () ->
          remaining := !remaining - bytes;
          incr evicted;
          count t (fun t ->
            t.t_evictions <- t.t_evictions + 1;
            t.t_approx_bytes <- t.t_approx_bytes - bytes)
        | exception Sys_error _ -> () (* another process got there first *)))
    entries;
  !evicted

let put t ~ns ~key bytes =
  let path = entry_path ~root:t.t_root ~ns ~key in
  match Atomic_file.write ~path bytes with
  | Error _ as e -> e
  | Ok () ->
    count t (fun t ->
      t.t_puts <- t.t_puts + 1;
      t.t_approx_bytes <- t.t_approx_bytes + String.length bytes);
    if t.t_approx_bytes > t.t_budget then
      ignore (evict_to_budget ~keep:path t);
    Ok ()

let gc t = evict_to_budget t

let clear t =
  let entries = scan t.t_root in
  List.iter
    (fun (path, _, _) -> try Sys.remove path with Sys_error _ -> ())
    entries;
  count t (fun t -> t.t_approx_bytes <- 0);
  List.length entries

let stats t =
  let entries, bytes = disk_usage ~root:t.t_root in
  count t (fun t -> t.t_approx_bytes <- bytes);
  Mutex.protect t.t_mutex (fun () ->
    {
      st_entries = entries;
      st_bytes = bytes;
      st_hits = t.t_hits;
      st_misses = t.t_misses;
      st_puts = t.t_puts;
      st_evictions = t.t_evictions;
    })
