module Json = Hlsb_telemetry.Json
module Diag = Hlsb_util.Diag
module Style = Hlsb_ctrl.Style
module Plan = Hlsb_transform.Plan
module Schedule = Hlsb_sched.Schedule

let schema = "hlsbd/1"
let max_frame_bytes = 64 * 1024 * 1024

type compile_req = {
  cp_design : string;
  cp_recipe : Style.recipe;
  cp_target_mhz : float option;
  cp_inject : Schedule.inject option;
}

type cc_req = {
  cc_name : string;
  cc_source : string;
  cc_recipe : Style.recipe;
  cc_plan : Plan.t;
}

type explore_req = { ex_design : string; ex_budget : int; ex_max_probes : int }

type verb =
  | Compile of compile_req
  | Cc of cc_req
  | Characterize of string
  | Explore of explore_req
  | Status
  | Gc
  | Shutdown

type request = { q_id : string; q_ns : string; q_verb : verb }

type response = {
  p_id : string;
  p_hit : bool;
  p_key : string;
  p_artifact : string;
  p_error : Diag.t option;
}

let ok ?(hit = false) ?(key = "") ~id artifact =
  { p_id = id; p_hit = hit; p_key = key; p_artifact = artifact; p_error = None }

let fail ~id d =
  { p_id = id; p_hit = false; p_key = ""; p_artifact = ""; p_error = Some d }

let verb_name = function
  | Compile _ -> "compile"
  | Cc _ -> "cc"
  | Characterize _ -> "characterize"
  | Explore _ -> "explore"
  | Status -> "status"
  | Gc -> "gc"
  | Shutdown -> "shutdown"

(* ---- codec helpers ------------------------------------------------- *)

let ( let* ) = Result.bind

let str_field k j =
  match Json.member k j with
  | Some (Json.Str s) -> Ok s
  | Some _ -> Error (Printf.sprintf "field %S: expected string" k)
  | None -> Error (Printf.sprintf "field %S missing" k)

let int_field k j =
  match Json.member k j with
  | Some (Json.Int n) -> Ok n
  | Some _ -> Error (Printf.sprintf "field %S: expected int" k)
  | None -> Error (Printf.sprintf "field %S missing" k)

let float_opt_field k j =
  match Json.member k j with
  | None | Some Json.Null -> Ok None
  | Some (Json.Float f) -> Ok (Some f)
  | Some (Json.Int n) -> Ok (Some (float_of_int n))
  | Some _ -> Error (Printf.sprintf "field %S: expected number" k)

let expect_schema j =
  let* s = str_field "schema" j in
  if s = schema then Ok ()
  else Error (Printf.sprintf "schema mismatch: got %S, want %S" s schema)

(* ---- Diag ---------------------------------------------------------- *)

let entity_to_json (e : Diag.entity) =
  let kind, name =
    match e with
    | Diag.Kernel n -> ("kernel", n)
    | Diag.Channel n -> ("channel", n)
    | Diag.Net n -> ("net", n)
    | Diag.Process n -> ("process", n)
    | Diag.Design n -> ("design", n)
  in
  Json.Obj [ ("kind", Json.Str kind); ("name", Json.Str name) ]

let entity_of_json j =
  let* kind = str_field "kind" j in
  let* name = str_field "name" j in
  match kind with
  | "kernel" -> Ok (Diag.Kernel name)
  | "channel" -> Ok (Diag.Channel name)
  | "net" -> Ok (Diag.Net name)
  | "process" -> Ok (Diag.Process name)
  | "design" -> Ok (Diag.Design name)
  | k -> Error (Printf.sprintf "unknown entity kind %S" k)

let diag_to_json (d : Diag.t) =
  Json.Obj
    [
      ("stage", Json.Str d.Diag.d_stage);
      ("severity", Json.Str (Diag.severity_label d.Diag.d_severity));
      ( "entity",
        match d.Diag.d_entity with
        | None -> Json.Null
        | Some e -> entity_to_json e );
      ("message", Json.Str d.Diag.d_message);
    ]

let diag_of_json j =
  let* stage = str_field "stage" j in
  let* sev_s = str_field "severity" j in
  let* severity =
    match sev_s with
    | "error" -> Ok Diag.Error
    | "warning" -> Ok Diag.Warning
    | s -> Error (Printf.sprintf "unknown severity %S" s)
  in
  let* entity =
    match Json.member "entity" j with
    | None | Some Json.Null -> Ok None
    | Some e ->
      let* e = entity_of_json e in
      Ok (Some e)
  in
  let* message = str_field "message" j in
  Ok
    {
      Diag.d_stage = stage;
      d_severity = severity;
      d_entity = entity;
      d_message = message;
    }

(* ---- verbs --------------------------------------------------------- *)

let recipe_of_json j =
  let* s = str_field "recipe" j in
  match Style.of_string s with
  | Ok r -> Ok r
  | Error d -> Error d.Diag.d_message

let inject_to_json (i : Schedule.inject) =
  Json.Obj
    [ ("top", Json.Int i.Schedule.inj_top); ("levels", Json.Int i.inj_levels) ]

let inject_of_json j =
  let* top = int_field "top" j in
  let* levels = int_field "levels" j in
  Ok { Schedule.inj_top = top; inj_levels = levels }

let verb_to_json = function
  | Compile c ->
    Json.Obj
      ([
         ("verb", Json.Str "compile");
         ("design", Json.Str c.cp_design);
         ("recipe", Json.Str (Style.to_string c.cp_recipe));
       ]
      @ (match c.cp_target_mhz with
        | None -> []
        | Some f -> [ ("target_mhz", Json.Float f) ])
      @
      match c.cp_inject with
      | None -> []
      | Some i -> [ ("inject", inject_to_json i) ])
  | Cc c ->
    Json.Obj
      [
        ("verb", Json.Str "cc");
        ("name", Json.Str c.cc_name);
        ("source", Json.Str c.cc_source);
        ("recipe", Json.Str (Style.to_string c.cc_recipe));
        ("plan", Json.Str (Plan.to_string c.cc_plan));
      ]
  | Characterize dev ->
    Json.Obj [ ("verb", Json.Str "characterize"); ("device", Json.Str dev) ]
  | Explore e ->
    Json.Obj
      [
        ("verb", Json.Str "explore");
        ("design", Json.Str e.ex_design);
        ("budget", Json.Int e.ex_budget);
        ("max_probes", Json.Int e.ex_max_probes);
      ]
  | Status -> Json.Obj [ ("verb", Json.Str "status") ]
  | Gc -> Json.Obj [ ("verb", Json.Str "gc") ]
  | Shutdown -> Json.Obj [ ("verb", Json.Str "shutdown") ]

let verb_of_json j =
  let* v = str_field "verb" j in
  match v with
  | "compile" ->
    let* design = str_field "design" j in
    let* recipe = recipe_of_json j in
    let* target_mhz = float_opt_field "target_mhz" j in
    let* inject =
      match Json.member "inject" j with
      | None | Some Json.Null -> Ok None
      | Some i ->
        let* i = inject_of_json i in
        Ok (Some i)
    in
    Ok
      (Compile
         {
           cp_design = design;
           cp_recipe = recipe;
           cp_target_mhz = target_mhz;
           cp_inject = inject;
         })
  | "cc" ->
    let* name = str_field "name" j in
    let* source = str_field "source" j in
    let* recipe = recipe_of_json j in
    let* plan_s = str_field "plan" j in
    let* plan = Plan.of_string plan_s in
    Ok { cc_name = name; cc_source = source; cc_recipe = recipe; cc_plan = plan }
    |> Result.map (fun c -> Cc c)
  | "characterize" ->
    let* dev = str_field "device" j in
    Ok (Characterize dev)
  | "explore" ->
    let* design = str_field "design" j in
    let* budget = int_field "budget" j in
    let* max_probes = int_field "max_probes" j in
    Ok
      (Explore
         { ex_design = design; ex_budget = budget; ex_max_probes = max_probes })
  | "status" -> Ok Status
  | "gc" -> Ok Gc
  | "shutdown" -> Ok Shutdown
  | v -> Error (Printf.sprintf "unknown verb %S" v)

(* ---- request / response -------------------------------------------- *)

let request_to_json r =
  match verb_to_json r.q_verb with
  | Json.Obj fields ->
    Json.Obj
      (("schema", Json.Str schema)
       :: ("id", Json.Str r.q_id)
       :: ("ns", Json.Str r.q_ns)
       :: fields)
  | _ -> assert false

let request_of_json j =
  let* () = expect_schema j in
  let* id = str_field "id" j in
  let* ns = str_field "ns" j in
  let* verb = verb_of_json j in
  Ok { q_id = id; q_ns = ns; q_verb = verb }

let response_to_json p =
  Json.Obj
    [
      ("schema", Json.Str schema);
      ("id", Json.Str p.p_id);
      ("ok", Json.Bool (p.p_error = None));
      ("hit", Json.Bool p.p_hit);
      ("key", Json.Str p.p_key);
      ("artifact", Json.Str p.p_artifact);
      ( "error",
        match p.p_error with None -> Json.Null | Some d -> diag_to_json d );
    ]

let response_of_json j =
  let* () = expect_schema j in
  let* id = str_field "id" j in
  let* key = str_field "key" j in
  let* artifact = str_field "artifact" j in
  let hit = match Json.member "hit" j with Some (Json.Bool b) -> b | _ -> false in
  let* error =
    match Json.member "error" j with
    | None | Some Json.Null -> Ok None
    | Some d ->
      let* d = diag_of_json d in
      Ok (Some d)
  in
  Ok { p_id = id; p_hit = hit; p_key = key; p_artifact = artifact; p_error = error }

(* ---- framing ------------------------------------------------------- *)

let write_all fd bytes =
  let len = Bytes.length bytes in
  let off = ref 0 in
  (try
     while !off < len do
       let n = Unix.write fd bytes !off (len - !off) in
       if n = 0 then raise Exit;
       off := !off + n
     done
   with Exit -> ());
  !off = len

let write_frame fd j =
  let line = Json.to_string ~minify:true j ^ "\n" in
  match write_all fd (Bytes.of_string line) with
  | true -> Ok ()
  | false -> Error "short write on socket"
  | exception Unix.Unix_error (e, _, _) ->
    Error (Printf.sprintf "socket write: %s" (Unix.error_message e))

let read_frame fd =
  let buf = Buffer.create 4096 in
  let chunk = Bytes.create 65536 in
  let rec newline_at () =
    match Unix.read fd chunk 0 (Bytes.length chunk) with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> newline_at ()
    | exception Unix.Unix_error (e, _, _) ->
      Error (Printf.sprintf "socket read: %s" (Unix.error_message e))
    | 0 -> if Buffer.length buf = 0 then Error "connection closed" else Ok ()
    | n -> (
      match Bytes.index_opt (Bytes.sub chunk 0 n) '\n' with
      | Some i ->
        Buffer.add_subbytes buf chunk 0 i;
        Ok ()
      | None ->
        Buffer.add_subbytes buf chunk 0 n;
        if Buffer.length buf > max_frame_bytes then Error "frame too large"
        else newline_at ())
  in
  let* () = newline_at () in
  Json.of_string (Buffer.contents buf)
