module Json = Hlsb_telemetry.Json
module Metrics = Hlsb_telemetry.Metrics
module Trace = Hlsb_telemetry.Trace
module Diag = Hlsb_util.Diag
module Pool = Hlsb_util.Pool
module Atomic_file = Hlsb_util.Atomic_file
module Ledger = Hlsb_obs.Ledger
module Log = Hlsb_obs.Log
module Pipeline = Core.Pipeline
module Style = Hlsb_ctrl.Style
module Suite = Hlsb_designs.Suite
module Spec = Hlsb_designs.Spec
module Device = Hlsb_device.Device
module Calibrate = Hlsb_delay.Calibrate
module Cal_cache = Hlsb_delay.Cal_cache

let socket_env_var = "HLSBD_SOCKET"
let default_socket = Filename.concat ".hlsb" "hlsbd.sock"

let ambient_socket () =
  match Sys.getenv_opt socket_env_var with
  | Some s when s <> "" -> s
  | _ -> default_socket

(* One warm pipeline session per distinct compile input; requests that
   share the session serialize on its lock while unrelated requests run
   in parallel on the pool. *)
type slot = { sl_session : Pipeline.session; sl_mutex : Mutex.t }

type t = {
  d_store : Store.t;
  d_git_rev : string;  (** "" outside a checkout *)
  d_ledger : bool;
  d_sessions : (string, slot) Hashtbl.t;
  d_sessions_mu : Mutex.t;
  d_mu : Mutex.t;
  mutable d_requests : int;
  mutable d_hits : int;  (** store hits on compile-flavoured verbs *)
  mutable d_misses : int;
  d_stop : bool Atomic.t;
}

let create ?budget_bytes ?store_root ?(ledger = true) () =
  let root = match store_root with Some r -> r | None -> Store.ambient_root () in
  {
    d_store = Store.open_ ?budget_bytes ~root ();
    d_git_rev = Option.value (Ledger.git_rev ()) ~default:"";
    d_ledger = ledger;
    d_sessions = Hashtbl.create 16;
    d_sessions_mu = Mutex.create ();
    d_mu = Mutex.create ();
    d_requests = 0;
    d_hits = 0;
    d_misses = 0;
    d_stop = Atomic.make false;
  }

let store t = t.d_store
let requests_served t = Mutex.protect t.d_mu (fun () -> t.d_requests)

let session_for t ~key mk =
  Mutex.protect t.d_sessions_mu (fun () ->
    match Hashtbl.find_opt t.d_sessions key with
    | Some slot -> slot
    | None ->
      let slot = { sl_session = mk (); sl_mutex = Mutex.create () } in
      Hashtbl.add t.d_sessions key slot;
      slot)

let artifact_of_result r =
  Json.to_string ~minify:false (Pipeline.result_to_json r) ^ "\n"

let hit_rate t =
  Mutex.protect t.d_mu (fun () ->
    let lookups = t.d_hits + t.d_misses in
    if lookups = 0 then 0. else float_of_int t.d_hits /. float_of_int lookups)

(* The store-backed serving discipline shared by every compile-flavoured
   verb: look the key up in the client's namespace; on miss run the
   compile thunk, publish the bytes, and answer with exactly the bytes
   the store now holds — so hit and miss responses are byte-identical. *)
let serve_artifact t ~id ~ns ~parts compile =
  let key = Store.key ~parts in
  match Store.find t.d_store ~ns ~key with
  | Some bytes ->
    Mutex.protect t.d_mu (fun () -> t.d_hits <- t.d_hits + 1);
    Protocol.ok ~hit:true ~key ~id bytes
  | None ->
    Mutex.protect t.d_mu (fun () -> t.d_misses <- t.d_misses + 1);
    let bytes = compile () in
    (match Store.put t.d_store ~ns ~key bytes with
    | Ok () -> ()
    | Error msg -> Log.warn "artifact store put %s: %s" key msg);
    Protocol.ok ~hit:false ~key ~id bytes

let unknown_design name =
  Diag.error ~stage:"serve"
    ~entity:(Diag.Design name)
    (Printf.sprintf "unknown design %S (hlsbc list names them)" name)

let handle_compile t ~id ~ns (c : Protocol.compile_req) =
  match Suite.find c.cp_design with
  | None -> Protocol.fail ~id (unknown_design c.cp_design)
  | Some spec ->
    let slot =
      session_for t ~key:("design:" ^ spec.Spec.sp_name) (fun () ->
        Pipeline.of_spec spec)
    in
    let ck =
      Pipeline.cache_key ?target_mhz:c.cp_target_mhz ?inject:c.cp_inject
        slot.sl_session ~recipe:c.cp_recipe
    in
    let parts =
      [
        "compile";
        Cal_cache.fingerprint spec.Spec.sp_device;
        t.d_git_rev;
        spec.Spec.sp_name;
        ck;
      ]
    in
    serve_artifact t ~id ~ns ~parts (fun () ->
      Mutex.protect slot.sl_mutex (fun () ->
        match
          Pipeline.run ?target_mhz:c.cp_target_mhz ?inject:c.cp_inject
            slot.sl_session ~recipe:c.cp_recipe
        with
        | Ok r -> artifact_of_result r
        | Error d -> raise (Diag.Diagnostic d)))

let handle_cc t ~id ~ns (c : Protocol.cc_req) =
  match Hlsb_frontend.Frontend.parse c.cc_source with
  | Error e ->
    Protocol.fail ~id
      (Diag.error ~stage:"parse"
         ~entity:(Diag.Design c.cc_name)
         (Format.asprintf "%a" Hlsb_frontend.Frontend.pp_error e))
  | Ok program ->
    let device = Device.ultrascale_plus in
    let digest = Digest.to_hex (Digest.string c.cc_source) in
    let slot =
      session_for t
        ~key:(Printf.sprintf "cc:%s:%s" digest c.cc_name)
        (fun () -> Pipeline.of_program ~device ~name:c.cc_name program)
    in
    let ck =
      Pipeline.cache_key ~plan:c.cc_plan slot.sl_session ~recipe:c.cc_recipe
    in
    let parts =
      [ "cc"; Cal_cache.fingerprint device; t.d_git_rev; digest; c.cc_name; ck ]
    in
    serve_artifact t ~id ~ns ~parts (fun () ->
      Mutex.protect slot.sl_mutex (fun () ->
        match
          Pipeline.run ~plan:c.cc_plan slot.sl_session ~recipe:c.cc_recipe
        with
        | Ok r -> artifact_of_result r
        | Error d -> raise (Diag.Diagnostic d)))

let handle_characterize t ~id ~ns dev_name =
  match Device.find dev_name with
  | None ->
    Protocol.fail ~id
      (Diag.error ~stage:"serve"
         ~entity:(Diag.Design dev_name)
         (Printf.sprintf "unknown device %S" dev_name))
  | Some device ->
    let fp = Cal_cache.fingerprint device in
    let parts = [ "characterize"; fp; t.d_git_rev ] in
    serve_artifact t ~id ~ns ~parts (fun () ->
      let cal = Calibrate.shared device in
      Calibrate.warm ~mem:true cal;
      Json.to_string ~minify:false
        (Json.Obj
           [
             ("schema", Json.Str "hlsbd-characterize/1");
             ("device", Json.Str device.Device.name);
             ("fingerprint", Json.Str fp);
             ( "factor_grid",
               Json.List
                 (Array.to_list
                    (Array.map (fun n -> Json.Int n) Calibrate.factor_grid)) );
             ( "unit_grid",
               Json.List
                 (Array.to_list
                    (Array.map (fun n -> Json.Int n) Calibrate.unit_grid)) );
           ])
      ^ "\n")

let handle_explore t ~id ~ns (e : Protocol.explore_req) =
  match Suite.find e.ex_design with
  | None -> Protocol.fail ~id (unknown_design e.ex_design)
  | Some spec ->
    let slot =
      session_for t ~key:("design:" ^ spec.Spec.sp_name) (fun () ->
        Pipeline.of_spec spec)
    in
    let parts =
      [
        "explore";
        Cal_cache.fingerprint spec.Spec.sp_device;
        t.d_git_rev;
        spec.Spec.sp_name;
        string_of_int e.ex_budget;
        string_of_int e.ex_max_probes;
      ]
    in
    serve_artifact t ~id ~ns ~parts (fun () ->
      let report =
        Mutex.protect slot.sl_mutex (fun () ->
          Hlsb_explore.Explore.run_design ~budget:e.ex_budget
            ~max_probes:e.ex_max_probes slot.sl_session
            ~name:spec.Spec.sp_name)
      in
      Json.to_string ~minify:false (Hlsb_explore.Explore.report_to_json report)
      ^ "\n")

let status_json t =
  let st = Store.stats t.d_store in
  let requests, hits, misses =
    Mutex.protect t.d_mu (fun () -> (t.d_requests, t.d_hits, t.d_misses))
  in
  Json.Obj
    [
      ("schema", Json.Str "hlsbd-status/1");
      ("pid", Json.Int (Unix.getpid ()));
      ("requests", Json.Int requests);
      ("hits", Json.Int hits);
      ("misses", Json.Int misses);
      ("hit_rate", Json.Float (hit_rate t));
      ( "store",
        Json.Obj
          [
            ("root", Json.Str (Store.root t.d_store));
            ("budget_bytes", Json.Int (Store.budget_bytes t.d_store));
            ("entries", Json.Int st.Store.st_entries);
            ("bytes", Json.Int st.Store.st_bytes);
            ("puts", Json.Int st.Store.st_puts);
            ("evictions", Json.Int st.Store.st_evictions);
          ] );
    ]

let record_request t (req : Protocol.request) (resp : Protocol.response) ms =
  Metrics.incr "serve.requests";
  Metrics.set_gauge "serve.store_hit_rate" (hit_rate t);
  if t.d_ledger && Ledger.enabled () then begin
    let label =
      Printf.sprintf "%s %s"
        (Protocol.verb_name req.Protocol.q_verb)
        (match req.Protocol.q_verb with
        | Protocol.Compile c -> c.Protocol.cp_design
        | Protocol.Cc c -> c.Protocol.cc_name
        | Protocol.Characterize d -> d
        | Protocol.Explore e -> e.Protocol.ex_design
        | Protocol.Status | Protocol.Gc | Protocol.Shutdown -> "-")
    in
    let recipe =
      match req.Protocol.q_verb with
      | Protocol.Compile c -> Some (Style.label c.Protocol.cp_recipe)
      | Protocol.Cc c -> Some (Style.label c.Protocol.cc_recipe)
      | _ -> None
    in
    let cache =
      [
        ("serve.hit", if resp.Protocol.p_hit then 1 else 0);
        ("serve.ok", if resp.Protocol.p_error = None then 1 else 0);
      ]
    in
    let stages =
      [
        {
          Ledger.st_name = "serve";
          st_status = (if resp.Protocol.p_error = None then "ran" else "FAILED");
          st_ms = ms;
        };
      ]
    in
    match
      Ledger.append ~sync:true
        (Ledger.make ?recipe ~stages ~cache ~cmd:"serve" ~label ())
    with
    | Ok _ -> ()
    | Error msg -> Log.warn "run ledger: %s" msg
  end

let handle t (req : Protocol.request) =
  let id = req.Protocol.q_id in
  let ns = req.Protocol.q_ns in
  let t0 = Unix.gettimeofday () in
  let resp =
    Trace.with_span "serve.request"
      ~attrs:
        [
          ("verb", Json.Str (Protocol.verb_name req.Protocol.q_verb));
          ("ns", Json.Str ns);
        ]
      (fun () ->
        try
          match req.Protocol.q_verb with
          | Protocol.Compile c -> handle_compile t ~id ~ns c
          | Protocol.Cc c -> handle_cc t ~id ~ns c
          | Protocol.Characterize d -> handle_characterize t ~id ~ns d
          | Protocol.Explore e -> handle_explore t ~id ~ns e
          | Protocol.Status ->
            Protocol.ok ~id
              (Json.to_string ~minify:false (status_json t) ^ "\n")
          | Protocol.Gc ->
            let evicted = Store.gc t.d_store in
            Protocol.ok ~id
              (Json.to_string ~minify:false
                 (Json.Obj
                    [
                      ("schema", Json.Str "hlsbd-gc/1");
                      ("evicted", Json.Int evicted);
                    ])
              ^ "\n")
          | Protocol.Shutdown ->
            Atomic.set t.d_stop true;
            Protocol.ok ~id ""
        with
        | Diag.Diagnostic d -> Protocol.fail ~id d
        | exn ->
          Protocol.fail ~id
            (Diag.error ~stage:"serve" (Printexc.to_string exn)))
  in
  Mutex.protect t.d_mu (fun () -> t.d_requests <- t.d_requests + 1);
  record_request t req resp ((Unix.gettimeofday () -. t0) *. 1000.);
  resp

(* ---- the socket loop ----------------------------------------------- *)

let serve_conn t conn =
  Fun.protect
    ~finally:(fun () -> try Unix.close conn with Unix.Unix_error _ -> ())
    (fun () ->
      match Protocol.read_frame conn with
      | Error msg -> Log.warn "hlsbd: bad request frame: %s" msg
      | Ok j -> (
        let resp =
          match Protocol.request_of_json j with
          | Ok req -> handle t req
          | Error msg ->
            Protocol.fail ~id:""
              (Diag.error ~stage:"protocol" msg)
        in
        match Protocol.write_frame conn (Protocol.response_to_json resp) with
        | Ok () -> ()
        | Error msg -> Log.warn "hlsbd: response write: %s" msg))

let serve ?max_requests t ~socket =
  let dir = Filename.dirname socket in
  if dir <> "" && dir <> "." then Atomic_file.mkdir_p dir;
  (try Unix.unlink socket with Unix.Unix_error _ | Sys_error _ -> ());
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match
    Unix.bind fd (Unix.ADDR_UNIX socket);
    Unix.listen fd 64
  with
  | exception Unix.Unix_error (e, _, _) ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    Error (Printf.sprintf "bind %s: %s" socket (Unix.error_message e))
  | () ->
    Log.info "hlsbd: listening on %s (store %s)" socket (Store.root t.d_store);
    let served = ref 0 in
    let under_budget () =
      match max_requests with None -> true | Some n -> !served < n
    in
    (* Drain every connection already pending behind the one accept we
       blocked on: the batch is the daemon's scheduling unit, and its
       size is the queue-depth gauge. *)
    let drain_pending first =
      let batch = ref [ first ] in
      served := !served + 1;
      let rec go () =
        if under_budget () then
          match Unix.select [ fd ] [] [] 0. with
          | [ _ ], _, _ -> (
            match Unix.accept fd with
            | conn, _ ->
              batch := conn :: !batch;
              served := !served + 1;
              go ()
            | exception Unix.Unix_error _ -> ())
          | _ -> ()
      in
      go ();
      List.rev !batch
    in
    while Atomic.get t.d_stop = false && under_budget () do
      match Unix.accept fd with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | exception Unix.Unix_error (e, _, _) ->
        Log.warn "hlsbd: accept: %s" (Unix.error_message e);
        Atomic.set t.d_stop true
      | conn, _ ->
        let batch = drain_pending conn in
        Metrics.set_gauge_int "serve.queue_depth" (List.length batch);
        ignore (Pool.map_list (serve_conn t) batch)
    done;
    (try Unix.close fd with Unix.Unix_error _ -> ());
    (try Unix.unlink socket with Unix.Unix_error _ | Sys_error _ -> ());
    Log.info "hlsbd: stopped after %d request(s)" (requests_served t);
    Ok ()
