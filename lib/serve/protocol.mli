(** The versioned [hlsbd/1] wire protocol: newline-delimited JSON over a
    Unix-domain stream socket, one request and one response per
    connection.

    Every request carries the schema tag, a client-chosen id (echoed
    back), a namespace (store isolation), and a verb. Compile-flavoured
    responses carry the artifact bytes verbatim as a JSON string plus
    the store key and whether the bytes came from the store — the
    byte-identity contract is that [p_artifact] for a hit equals the
    [p_artifact] that populated the store. Failures carry the full
    structured diagnostic ({!Hlsb_util.Diag.t}) as data: stage,
    severity, offending entity, message — which is why [Design.generate]
    had to stop flattening diagnostics into [invalid_arg] strings. *)

module Json = Hlsb_telemetry.Json
module Diag = Hlsb_util.Diag

val schema : string
(** ["hlsbd/1"]. A request or response with any other tag is rejected,
    never half-understood. *)

type compile_req = {
  cp_design : string;  (** exact suite design name *)
  cp_recipe : Hlsb_ctrl.Style.recipe;
  cp_target_mhz : float option;
  cp_inject : Hlsb_sched.Schedule.inject option;
}

type cc_req = {
  cc_name : string;  (** design name for the program session *)
  cc_source : string;  (** the C-subset source text itself *)
  cc_recipe : Hlsb_ctrl.Style.recipe;
  cc_plan : Hlsb_transform.Plan.t;
}

type explore_req = {
  ex_design : string;
  ex_budget : int;
  ex_max_probes : int;
}

type verb =
  | Compile of compile_req
  | Cc of cc_req
  | Characterize of string  (** device name *)
  | Explore of explore_req
  | Status
  | Gc
  | Shutdown

type request = { q_id : string; q_ns : string; q_verb : verb }

type response = {
  p_id : string;  (** echo of the request id *)
  p_hit : bool;  (** artifact served from the content-addressed store *)
  p_key : string;  (** store key; [""] for control verbs *)
  p_artifact : string;  (** payload bytes; [""] on error *)
  p_error : Diag.t option;  (** [None] iff the request succeeded *)
}

val ok : ?hit:bool -> ?key:string -> id:string -> string -> response
val fail : id:string -> Diag.t -> response

val verb_name : verb -> string
(** ["compile"] | ["cc"] | ["characterize"] | ["explore"] | ["status"]
    | ["gc"] | ["shutdown"] — used in spans, gauges, and ledger labels. *)

(** {1 Codec} *)

val diag_to_json : Diag.t -> Json.t
val diag_of_json : Json.t -> (Diag.t, string) result
(** Lossless round-trip of the structured diagnostic, including the
    entity constructor. *)

val request_to_json : request -> Json.t
val request_of_json : Json.t -> (request, string) result
val response_to_json : response -> Json.t
val response_of_json : Json.t -> (response, string) result

(** {1 Framing}

    One JSON document per line; the encoder never emits a raw newline
    (strings are RFC 8259-escaped), so lines frame documents exactly. *)

val write_frame : Unix.file_descr -> Json.t -> (unit, string) result

val read_frame : Unix.file_descr -> (Json.t, string) result
(** Read up to the first ['\n'] (or EOF) and parse. Refuses frames over
    {!max_frame_bytes}. *)

val max_frame_bytes : int
(** 64 MiB — a generous bound on source files and artifacts that still
    stops a runaway peer from ballooning the daemon. *)
