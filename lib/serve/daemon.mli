(** The hlsbd compile daemon: a long-running process that owns the
    persistent worker {!Hlsb_util.Pool}, keeps one warm
    [Core.Pipeline.session] per (design, device) input, and backs every
    compile-flavoured request with the content-addressed artifact
    {!Store} — so a repeat compile from any client process is a store
    hit returning byte-identical artifact bytes.

    Requests arrive one per connection over a Unix-domain socket in the
    {!Protocol} framing. The accept loop drains every connection already
    pending into a batch (the queue-depth gauge is the batch size) and
    hands the batch to [Pool.map_list], so independent requests compile
    in parallel on the persistent domains while requests for the same
    session serialize on that session's lock.

    Ops surface, per request: a [serve.request] telemetry span tagged
    with verb/ns/key/hit, the [serve.*] gauges
    (queue depth, requests, store hit rate, store bytes/entries), and
    one [hlsb-run/1] ledger record with [r_cmd = "serve"] — fsynced,
    because the daemon turns {!Hlsb_obs.Ledger.sync_env_var} semantics
    on for its own appends. *)

module Json = Hlsb_telemetry.Json

val socket_env_var : string
(** ["HLSBD_SOCKET"]. *)

val default_socket : string
(** [".hlsb/hlsbd.sock"]. *)

val ambient_socket : unit -> string
(** [$HLSBD_SOCKET] when set and non-empty, else {!default_socket}. *)

type t

val create :
  ?budget_bytes:int -> ?store_root:string -> ?ledger:bool -> unit -> t
(** A daemon state: opened store (root defaults to
    {!Store.ambient_root}), empty session table, zeroed request
    counters. [?ledger] (default [true]) controls the per-request ledger
    records — tests turn it off. *)

val store : t -> Store.t
val requests_served : t -> int

val handle : t -> Protocol.request -> Protocol.response
(** Serve one request against the daemon state — the entire protocol
    semantics, independent of any socket, so tests can drive it
    in-process. Store lookup first; on miss, compile in the (created on
    demand) session and publish the artifact before responding. Never
    raises: every failure becomes a [p_error] diagnostic. *)

val status_json : t -> Json.t
(** The [status] verb's artifact: schema, pid, uptime requests, store
    root/budget and {!Store.stats}, hit rate, and the [serve.*] gauge
    values. *)

val serve : ?max_requests:int -> t -> socket:string -> (unit, string) result
(** Bind the socket (replacing a stale file), loop accepting
    connections, and serve until a [shutdown] request (or
    [?max_requests] — tests bound the loop). Each drained batch is
    dispatched over the persistent pool. The socket file is unlinked on
    the way out. *)
