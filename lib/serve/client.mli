(** Client side of the hlsbd protocol: connect to the daemon's Unix
    socket, send one framed request, read the framed response.

    Resolution: the socket comes from [$HLSBD_SOCKET] (else
    [.hlsb/hlsbd.sock]); the store namespace from [$HLSBD_NS] (else a
    per-uid default, so unrelated users sharing a daemon cannot see each
    other's artifacts). A connection failure is an [Error] the caller is
    expected to treat as "no daemon": [hlsbc --daemon] falls back to the
    in-process pipeline, printing the same bytes either way. *)

val ns_env_var : string
(** ["HLSBD_NS"]. *)

val default_ns : unit -> string
(** [$HLSBD_NS] when set and non-empty, else ["uid<euid>"]. *)

val fresh_id : unit -> string
(** A unique-enough request id: pid + a monotonic per-process counter. *)

val request :
  ?socket:string ->
  Protocol.request ->
  (Protocol.response, string) result
(** One round-trip: connect (default socket {!Daemon.ambient_socket}),
    write the request frame, read the response frame, verify the echoed
    id. [Error] covers no-daemon (connect refused / missing socket),
    framing failures, and id mismatches — never raises. *)

val call :
  ?socket:string ->
  ?ns:string ->
  Protocol.verb ->
  (Protocol.response, string) result
(** {!request} with a {!fresh_id} and the ambient namespace. *)

val available : ?socket:string -> unit -> bool
(** True when a daemon answers a [status] request on the socket. *)
