let ns_env_var = "HLSBD_NS"

let default_ns () =
  match Sys.getenv_opt ns_env_var with
  | Some ns when ns <> "" -> Store.sanitize_ns ns
  | _ -> Printf.sprintf "uid%d" (Unix.geteuid ())

let id_counter = Atomic.make 0

let fresh_id () =
  Printf.sprintf "%d-%d" (Unix.getpid ()) (Atomic.fetch_and_add id_counter 1)

let ( let* ) = Result.bind

let request ?socket (req : Protocol.request) =
  let socket =
    match socket with Some s -> s | None -> Daemon.ambient_socket ()
  in
  let fd =
    try Ok (Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0)
    with Unix.Unix_error (e, _, _) ->
      Error (Printf.sprintf "socket: %s" (Unix.error_message e))
  in
  let* fd = fd in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      match Unix.connect fd (Unix.ADDR_UNIX socket) with
      | exception Unix.Unix_error (e, _, _) ->
        Error
          (Printf.sprintf "no daemon on %s: %s" socket (Unix.error_message e))
      | () ->
        let* () = Protocol.write_frame fd (Protocol.request_to_json req) in
        let* j = Protocol.read_frame fd in
        let* resp = Protocol.response_of_json j in
        if resp.Protocol.p_id <> req.Protocol.q_id then
          Error
            (Printf.sprintf "response id %S does not echo request id %S"
               resp.Protocol.p_id req.Protocol.q_id)
        else Ok resp)

let call ?socket ?ns verb =
  let ns = match ns with Some ns -> ns | None -> default_ns () in
  request ?socket { Protocol.q_id = fresh_id (); q_ns = ns; q_verb = verb }

let available ?socket () =
  match call ?socket Protocol.Status with
  | Ok resp -> resp.Protocol.p_error = None
  | Error _ -> false
