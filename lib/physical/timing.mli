(** Static timing analysis over a placed netlist.

    Arrival times propagate through the combinational subgraph; paths start
    at sequential outputs (clk->q) and input ports, and end at sequential
    inputs (setup); I/O port paths are externally constrained. Net delay is
    [t_net_base + t_net_fanout * ln(1+f) + t_net_dist * star_length]
    (source-to-farthest-sink plus sink spread), optionally
    perturbed by a small deterministic jitter that models the run-to-run
    noise of heuristic place & route (the reason §4.1 smooths measured
    delays with their neighbors). *)

type path_step = {
  ps_cell : int;
  ps_cell_name : string;
  ps_arrival : float;  (** arrival at this cell's output, ns *)
  ps_via_net : int option;  (** net taken to reach this cell *)
}

type report = {
  critical_ns : float;  (** worst register-to-register (or port) path, ns *)
  fmax_mhz : float;
  path : path_step list;  (** critical path, source first *)
  worst_net : int option;  (** highest-delay net on the critical path *)
  worst_net_fanout : int;
  worst_net_class : Hlsb_netlist.Netlist.net_class option;
  arrivals : float array;
      (** arrival time at each cell's output (ns); sequential cells report
          clk->q. Used by the characterizer to probe a specific cell. *)
}

val jitter_factor : jitter:float -> seed:int -> int -> float
(** The deterministic per-net perturbation factor ([>= 0.5], 1.0 when
    [jitter <= 0.]): an allocation-free replay of the two splitmix64
    draws [Hlsb_util.Rng.gaussian] would make from a fresh
    [Rng.create ((seed * 1_000_003) + nid)] — exposed so tests can pin
    the equivalence. *)

val net_delay :
  Hlsb_device.Device.t ->
  Hlsb_netlist.Netlist.t ->
  Placement.t ->
  jitter:float ->
  seed:int ->
  int ->
  float
(** Delay of one net under the model above. [jitter] is the relative sigma
    (0. disables); the perturbation is a deterministic function of [seed]
    and the net id. *)

val analyze :
  ?jitter:float ->
  ?seed:int ->
  Hlsb_device.Device.t ->
  Hlsb_netlist.Netlist.t ->
  Placement.t ->
  report
(** Raises [Failure] on a combinational cycle (validate the netlist
    first). Default [jitter] is [0.02], default [seed] is derived from the
    netlist name so a given design is reproducible. Equivalent to
    {!prepare} followed by {!analyze_ctx}. *)

(** {2 Incremental analysis}

    The characterize loop and ECO-style exploration re-run STA against
    placements that barely change between queries. A {!ctx} caches the
    fanin CSR and the per-net delay array for one (netlist, placement)
    pair; {!refresh} re-times only the nets whose endpoint cells moved
    (via {!Placement.set_position}) since the last fill, and
    {!analyze_ctx} runs the arrival propagation over the cached arrays.
    Reports are bit-identical to a fresh {!analyze} of the same
    positions. *)

type ctx

val prepare :
  ?jitter:float ->
  ?seed:int ->
  Hlsb_device.Device.t ->
  Hlsb_netlist.Netlist.t ->
  Placement.t ->
  ctx
(** Build the timing arrays for this placement (same defaults as
    {!analyze}). The context aliases the placement: later position edits
    are picked up by {!refresh}. *)

val refresh : ctx -> int
(** Re-time the nets incident to cells that moved since {!prepare} (or
    the previous [refresh]); returns how many net delays were recomputed
    (0 when nothing moved). *)

val analyze_ctx : ctx -> report
(** Arrival propagation + critical-path reconstruction over the cached
    arrays. Call after {!refresh} when positions changed. *)

val run : ?jitter:float -> ?seed:int -> Hlsb_device.Device.t -> Hlsb_netlist.Netlist.t -> report
(** Place then analyze. *)

val pp_report : Format.formatter -> report -> unit
