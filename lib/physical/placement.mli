(** Topology-driven placement onto the device slice grid.

    Cells are visited in construction order (which the RTL generators emit
    in dataflow order) and packed along a Hilbert space-filling curve over
    the slice grid, so logically adjacent cells land physically adjacent —
    the outcome a timing-driven placer converges to, without its cost.

    A refinement pass then pulls light register cells to the midpoint of
    their drivers and sinks (what a timing-driven placer and phys_opt do):
    a chain of registers inserted across a long route settles at evenly
    spaced waypoints, so pipelining a broadcast genuinely divides its wire
    delay across cycles — the physical mechanism behind §4.1's register
    insertion.

    The property the timing model needs from placement is: a net whose
    sinks occupy total slice area S has a bounding box of half-perimeter
    Θ(√S) — large broadcasts spread over the die and pay wire delay that
    grows with the square root of the broadcast factor (Fig. 9). *)

type t

val place :
  ?max_sweeps:int ->
  ?early_exit:bool ->
  Hlsb_device.Device.t ->
  Hlsb_netlist.Netlist.t ->
  t
(** Pack, then refine with up to [max_sweeps] (default 24) alternating
    relax sweeps. With [early_exit] (default [true]) the refinement stops
    at the first sweep whose largest position update is exactly zero — a
    fixpoint, so the result is bit-identical to running every sweep;
    [~early_exit:false] forces the historical fixed-count behaviour (for
    equivalence tests). Raises [Hlsb_util.Diag.Diagnostic] (stage
    ["place"], entity [Design]) naming the device and the capacity
    constraint if the design does not fit. *)

val position : t -> int -> float * float
(** Centroid of a placed cell in slice-grid units. *)

val set_position : t -> int -> float * float -> unit
(** Move one cell (ECO-style nudge between STA queries). The placement's
    wire-length queries see the new centroid immediately; pair with
    [Timing.refresh] to re-time only the nets the move touched. *)

val footprint_slices : t -> int -> int
(** Slices occupied by a cell (1 minimum; BRAM/DSP cells report their site
    count scaled to slice-equivalents for bbox purposes). *)

val hpwl : t -> int -> float
(** Half-perimeter wire length of a net's bounding box (driver + sinks), in
    slice-grid units. Dangling nets have hpwl 0. *)

val star_length : t -> int -> float
(** Source-to-farthest-sink Manhattan distance plus the sink cells' spread
    radius — the length of the longest branch of the routed net, which is
    what its delay follows. For two-pin nets this equals the Manhattan
    distance; for star-shaped nets it avoids the bounding-box
    overestimate. *)

val bbox : t -> int -> float * float * float * float
(** (xmin, ymin, xmax, ymax) of a net. *)

val overlap_free : t -> bool
(** True if no two cells share a packing slot; holds by construction
    (disjoint curve slots — refined registers are light enough to legalize
    next to their ideal point), exposed for tests. *)

val max_extent : t -> float
(** Largest coordinate used; must be within the die (tests). *)
