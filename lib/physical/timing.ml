module Device = Hlsb_device.Device
module Netlist = Hlsb_netlist.Netlist
module Trace = Hlsb_telemetry.Trace
module Metrics = Hlsb_telemetry.Metrics

type path_step = {
  ps_cell : int;
  ps_cell_name : string;
  ps_arrival : float;
  ps_via_net : int option;
}

type report = {
  critical_ns : float;
  fmax_mhz : float;
  path : path_step list;
  worst_net : int option;
  worst_net_fanout : int;
  worst_net_class : Netlist.net_class option;
  arrivals : float array;
}

(* Allocation-free splitmix64 step, inlined from [Rng.next_int64]: the
   jitter used to spin up a fresh [Rng.t] per net per analyze, which was
   one short-lived box per net in the hottest loop of the flow. The two
   unit floats below replay the exact draws [Rng.gaussian] would make
   from [Rng.create ((seed * 1_000_003) + nid)] — state + golden, mixed,
   top 53 bits scaled — so every delay in every report stays
   bit-identical to the allocating version (Box-Muller with mu=0 reduces
   to [jitter *. z], and [0. +. x] / [x *. 1.] are float identities). *)
let golden = 0x9E3779B97F4A7C15L

let mix64 z =
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L
  in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL
  in
  Int64.logxor z (Int64.shift_right_logical z 31)

let unit_float state =
  Int64.to_float (Int64.shift_right_logical (mix64 state) 11)
  /. 9007199254740992. (* 2^53 *)

let jitter_factor ~jitter ~seed nid =
  if jitter <= 0. then 1.
  else begin
    let s1 = Int64.add (Int64.of_int ((seed * 1_000_003) + nid)) golden in
    let s2 = Int64.add s1 golden in
    let u1 = max 1e-12 (unit_float s1) in
    let u2 = unit_float s2 in
    let z = sqrt (-2. *. log u1) *. cos (2. *. Float.pi *. u2) in
    max 0.5 (1. +. (jitter *. z))
  end

let net_delay (d : Device.t) nl pl ~jitter ~seed nid =
  let f = Netlist.fanout nl nid in
  if f = 0 then 0.
  else begin
    let base =
      d.t_net_base
      +. (d.t_net_fanout *. log (1. +. float_of_int f))
      +. (d.t_net_dist *. Placement.star_length pl nid)
    in
    base *. jitter_factor ~jitter ~seed nid
  end

let default_seed nl = Hashtbl.hash (Netlist.name nl) land 0xFFFFFF

(* ---- incremental STA context ---- *)

type incidence = { inc_off : int array; inc_adj : int array }

type ctx = {
  cx_device : Device.t;
  cx_netlist : Netlist.t;
  cx_pl : Placement.t;
  cx_jitter : float;
  cx_seed : int;
  cx_off : int array;
  cx_arc_pred : int array;
  cx_arc_net : int array;
  cx_ndelay : float array;
  cx_snap_x : float array;  (* cell positions as of the last ndelay fill *)
  cx_snap_y : float array;
  mutable cx_inc : incidence option;
      (* cell -> incident nets CSR, built lazily on the first [refresh]
         so a one-shot [analyze] never pays for it *)
}

let prepare ?(jitter = 0.02) ?seed (d : Device.t) nl pl =
  let seed = match seed with Some s -> s | None -> default_seed nl in
  let n = Netlist.n_cells nl in
  (* Per-cell fanin arcs in CSR form (arc_pred/arc_net flat arrays sliced by
     off): this is the inner loop of every characterization point, and the
     flat int arrays avoid allocating a (pred, net) cons per arc.  Slices are
     filled back-to-front while iterating nets forward, reproducing the
     reverse-insertion order the old per-cell lists had, so tie-breaking on
     equal arrivals is unchanged. *)
  let ndelay = Array.make (Netlist.n_nets nl) 0. in
  let off = Array.make (n + 1) 0 in
  Netlist.iter_nets nl (fun _ net ->
    Array.iter
      (fun s -> off.(s + 1) <- off.(s + 1) + 1)
      net.Netlist.n_sinks);
  for c = 0 to n - 1 do
    off.(c + 1) <- off.(c + 1) + off.(c)
  done;
  let n_arcs = off.(n) in
  let arc_pred = Array.make n_arcs 0 in
  let arc_net = Array.make n_arcs 0 in
  let cursor = Array.init n (fun c -> off.(c + 1)) in
  Netlist.iter_nets nl (fun nid net ->
    ndelay.(nid) <- net_delay d nl pl ~jitter ~seed nid;
    Array.iter
      (fun s ->
        let k = cursor.(s) - 1 in
        cursor.(s) <- k;
        arc_pred.(k) <- net.Netlist.n_driver;
        arc_net.(k) <- nid)
      net.Netlist.n_sinks);
  let snap_x = Array.make n 0. in
  let snap_y = Array.make n 0. in
  for c = 0 to n - 1 do
    let x, y = Placement.position pl c in
    snap_x.(c) <- x;
    snap_y.(c) <- y
  done;
  {
    cx_device = d;
    cx_netlist = nl;
    cx_pl = pl;
    cx_jitter = jitter;
    cx_seed = seed;
    cx_off = off;
    cx_arc_pred = arc_pred;
    cx_arc_net = arc_net;
    cx_ndelay = ndelay;
    cx_snap_x = snap_x;
    cx_snap_y = snap_y;
    cx_inc = None;
  }

let incidence ctx =
  match ctx.cx_inc with
  | Some i -> i
  | None ->
    let nl = ctx.cx_netlist in
    let n = Netlist.n_cells nl in
    let inc_off = Array.make (n + 1) 0 in
    Netlist.iter_nets nl (fun _ net ->
      inc_off.(net.Netlist.n_driver + 1) <- inc_off.(net.Netlist.n_driver + 1) + 1;
      Array.iter
        (fun s -> inc_off.(s + 1) <- inc_off.(s + 1) + 1)
        net.Netlist.n_sinks);
    for c = 0 to n - 1 do
      inc_off.(c + 1) <- inc_off.(c + 1) + inc_off.(c)
    done;
    let inc_adj = Array.make inc_off.(n) 0 in
    let cursor = Array.init n (fun c -> inc_off.(c + 1)) in
    let put c nid =
      let k = cursor.(c) - 1 in
      cursor.(c) <- k;
      inc_adj.(k) <- nid
    in
    Netlist.iter_nets nl (fun nid net ->
      put net.Netlist.n_driver nid;
      Array.iter (fun s -> put s nid) net.Netlist.n_sinks);
    let i = { inc_off; inc_adj } in
    ctx.cx_inc <- Some i;
    i

let refresh ctx =
  (* Re-time only the nets incident to cells whose position changed since
     the last fill: a net's delay depends solely on its own endpoints'
     positions (fanout and jitter are placement-independent), so every
     untouched net keeps a bit-identical delay and a full [prepare] after
     the same moves would produce exactly this array. *)
  let nl = ctx.cx_netlist in
  let n = Netlist.n_cells nl in
  let n_nets = Array.length ctx.cx_ndelay in
  let inc = incidence ctx in
  let dirty = Bytes.make n_nets '\000' in
  let moved = ref 0 in
  for c = 0 to n - 1 do
    let x, y = Placement.position ctx.cx_pl c in
    if x <> ctx.cx_snap_x.(c) || y <> ctx.cx_snap_y.(c) then begin
      incr moved;
      ctx.cx_snap_x.(c) <- x;
      ctx.cx_snap_y.(c) <- y;
      for k = inc.inc_off.(c) to inc.inc_off.(c + 1) - 1 do
        Bytes.unsafe_set dirty inc.inc_adj.(k) '\001'
      done
    end
  done;
  let recomputed = ref 0 in
  if !moved > 0 then
    for nid = 0 to n_nets - 1 do
      if Bytes.unsafe_get dirty nid = '\001' then begin
        ctx.cx_ndelay.(nid) <-
          net_delay ctx.cx_device nl ctx.cx_pl ~jitter:ctx.cx_jitter
            ~seed:ctx.cx_seed nid;
        incr recomputed
      end
    done;
  !recomputed

let analyze_ctx ctx =
  let d = ctx.cx_device in
  let nl = ctx.cx_netlist in
  let off = ctx.cx_off in
  let arc_pred = ctx.cx_arc_pred in
  let arc_net = ctx.cx_arc_net in
  let ndelay = ctx.cx_ndelay in
  let n = Netlist.n_cells nl in
  let n_arcs = off.(n) in
  (* Arrival at each cell's *output*. Sequential cells and input ports
     launch at t_clk_q; combinational cells add their logic delay on top of
     the worst input arrival. Evaluate in dependence order via DFS with
     cycle detection — iteratively, on an explicit stack: a pipeline chain
     tens of thousands of registers deep is a legitimate netlist, and the
     natural recursive DFS overflows the OCaml stack on exactly the designs
     this tool exists to analyze.

     States: 0 unvisited, 1 on the DFS path (first visit done, inputs
     pending), 2 done. A cell is visited twice: the first visit pushes its
     unresolved predecessors (seeing a state-1 predecessor there means a
     genuine combinational cycle — state-1 cells are precisely the current
     DFS path); the revisit, once everything pushed above it has resolved,
     folds its input arrivals in the same ascending-arc order and with the
     same strict-> tie-breaking as the recursive version, so backpointers
     and arrivals are bit-identical. Duplicate stack entries (a cell
     demanded by several consumers before its first visit) are popped as
     no-ops in state 2. *)
  let arrival = Array.make n nan in
  let bp_pred = Array.make n (-1) in
  let bp_net = Array.make n (-1) in
  let state = Array.make n 0 in
  (* Every arc pushes at most one entry and each [eval] pushes one root. *)
  let stack = Array.make (n + n_arcs + 1) 0 in
  let sp = ref 0 in
  let push c =
    stack.(!sp) <- c;
    incr sp
  in
  let eval root =
    if state.(root) <> 2 then begin
      push root;
      while !sp > 0 do
        let c = stack.(!sp - 1) in
        if state.(c) = 2 then decr sp
        else if state.(c) = 0 then begin
          state.(c) <- 1;
          let cell = Netlist.cell nl c in
          match cell.Netlist.c_kind with
          | Netlist.Seq | Netlist.Mem ->
            arrival.(c) <- d.t_clk_q +. cell.Netlist.c_delay;
            state.(c) <- 2;
            decr sp
          | Netlist.Port_in ->
            arrival.(c) <- 0.;
            state.(c) <- 2;
            decr sp
          | Netlist.Port_out | Netlist.Comb ->
            let pending = ref false in
            for k = off.(c) to off.(c + 1) - 1 do
              let p = arc_pred.(k) in
              if state.(p) = 1 then failwith "Timing: combinational cycle"
              else if state.(p) = 0 then begin
                push p;
                pending := true
              end
            done;
            if not !pending then begin
              (* all inputs already resolved: finalize in place *)
              let worst = ref 0. in
              for k = off.(c) to off.(c + 1) - 1 do
                let t = arrival.(arc_pred.(k)) +. ndelay.(arc_net.(k)) in
                if t > !worst then begin
                  worst := t;
                  bp_pred.(c) <- arc_pred.(k);
                  bp_net.(c) <- arc_net.(k)
                end
              done;
              arrival.(c) <- !worst +. cell.Netlist.c_delay;
              state.(c) <- 2;
              decr sp
            end
        end
        else begin
          (* revisit: every predecessor pushed above has resolved *)
          let worst = ref 0. in
          for k = off.(c) to off.(c + 1) - 1 do
            let t = arrival.(arc_pred.(k)) +. ndelay.(arc_net.(k)) in
            if t > !worst then begin
              worst := t;
              bp_pred.(c) <- arc_pred.(k);
              bp_net.(c) <- arc_net.(k)
            end
          done;
          arrival.(c) <- !worst +. (Netlist.cell nl c).Netlist.c_delay;
          state.(c) <- 2;
          decr sp
        end
      done
    end
  in
  let input_arrival pred nid =
    eval pred;
    arrival.(pred) +. ndelay.(nid)
  in
  (* Path endpoints: arrival at the *inputs* of sequential cells and output
     ports, plus setup. *)
  let worst = ref 0. in
  let worst_end = ref None in
  (* I/O port paths are externally constrained (registered at the shell
     boundary), so like a real STA setup they are not clock endpoints. *)
  for c = 0 to n - 1 do
    let cell = Netlist.cell nl c in
    match cell.Netlist.c_kind with
    | Netlist.Seq | Netlist.Mem ->
      for k = off.(c) to off.(c + 1) - 1 do
        let t = input_arrival arc_pred.(k) arc_net.(k) +. d.t_setup in
        if t > !worst then begin
          worst := t;
          worst_end := Some (c, arc_pred.(k), arc_net.(k))
        end
      done
    | Netlist.Comb | Netlist.Port_in | Netlist.Port_out ->
      (* still force evaluation so cycles are reported deterministically *)
      eval c
  done;
  let critical = max !worst (d.t_clk_q +. d.t_setup) in
  (* Reconstruct the critical path by walking best_pred back. *)
  let path =
    match !worst_end with
    | None -> []
    | Some (endpoint, pred, via) ->
      let rec back c via acc =
        let step =
          {
            ps_cell = c;
            ps_cell_name = (Netlist.cell nl c).Netlist.c_name;
            ps_arrival = arrival.(c);
            ps_via_net = via;
          }
        in
        if bp_pred.(c) >= 0 then back bp_pred.(c) (Some bp_net.(c)) (step :: acc)
        else step :: acc
      in
      let end_step =
        {
          ps_cell = endpoint;
          ps_cell_name = (Netlist.cell nl endpoint).Netlist.c_name;
          ps_arrival = input_arrival pred via;
          ps_via_net = Some via;
        }
      in
      back pred (Some via) [ end_step ]
  in
  (* Worst net along the path. *)
  let worst_net, worst_fo, worst_cls =
    List.fold_left
      (fun (wn, wf, wc) step ->
        match step.ps_via_net with
        | None -> (wn, wf, wc)
        | Some nid -> (
          match wn with
          | Some w when ndelay.(w) >= ndelay.(nid) -> (wn, wf, wc)
          | _ ->
            ( Some nid,
              Netlist.fanout nl nid,
              Some (Netlist.net nl nid).Netlist.n_class )))
      (None, 0, None) path
  in
  {
    critical_ns = critical;
    fmax_mhz = 1000. /. critical;
    path;
    worst_net;
    worst_net_fanout = worst_fo;
    worst_net_class = worst_cls;
    arrivals = arrival;
  }

let analyze ?jitter ?seed (d : Device.t) nl pl =
  analyze_ctx (prepare ?jitter ?seed d nl pl)

let run_body ?jitter ?seed d nl =
  let pl = Trace.with_span "place" (fun () -> Placement.place d nl) in
  let r = Trace.with_span "sta" (fun () -> analyze ?jitter ?seed d nl pl) in
  Metrics.incr "timing.runs";
  Metrics.set_gauge "timing.critical_ns" r.critical_ns;
  r

let run ?jitter ?seed d nl =
  if not (Trace.enabled ()) then run_body ?jitter ?seed d nl
  else
    Trace.with_span "timing"
      ~attrs:
        [
          ("netlist", Hlsb_telemetry.Json.Str (Netlist.name nl));
          ("cells", Hlsb_telemetry.Json.Int (Netlist.n_cells nl));
          ("nets", Hlsb_telemetry.Json.Int (Netlist.n_nets nl));
        ]
      (fun () -> run_body ?jitter ?seed d nl)

let pp_report fmt r =
  Format.fprintf fmt "critical %.3f ns -> %.1f MHz (path %d cells" r.critical_ns
    r.fmax_mhz (List.length r.path);
  (match r.worst_net_class with
  | Some c ->
    let cls =
      match c with
      | Netlist.Data -> "data"
      | Netlist.Data_broadcast -> "data-broadcast"
      | Netlist.Ctrl_sync -> "ctrl-sync"
      | Netlist.Ctrl_pipeline -> "ctrl-pipeline"
    in
    Format.fprintf fmt ", worst net fanout %d [%s]" r.worst_net_fanout cls
  | None -> ());
  Format.fprintf fmt ")"
