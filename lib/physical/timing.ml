module Device = Hlsb_device.Device
module Netlist = Hlsb_netlist.Netlist
module Rng = Hlsb_util.Rng
module Trace = Hlsb_telemetry.Trace
module Metrics = Hlsb_telemetry.Metrics

type path_step = {
  ps_cell : int;
  ps_cell_name : string;
  ps_arrival : float;
  ps_via_net : int option;
}

type report = {
  critical_ns : float;
  fmax_mhz : float;
  path : path_step list;
  worst_net : int option;
  worst_net_fanout : int;
  worst_net_class : Netlist.net_class option;
  arrivals : float array;
}

let jitter_factor ~jitter ~seed nid =
  if jitter <= 0. then 1.
  else begin
    let rng = Rng.create ((seed * 1_000_003) + nid) in
    let f = 1. +. Rng.gaussian rng ~mu:0. ~sigma:jitter in
    max 0.5 f
  end

let net_delay (d : Device.t) nl pl ~jitter ~seed nid =
  let f = Netlist.fanout nl nid in
  if f = 0 then 0.
  else begin
    let base =
      d.t_net_base
      +. (d.t_net_fanout *. log (1. +. float_of_int f))
      +. (d.t_net_dist *. Placement.star_length pl nid)
    in
    base *. jitter_factor ~jitter ~seed nid
  end

let default_seed nl = Hashtbl.hash (Netlist.name nl) land 0xFFFFFF

let analyze ?(jitter = 0.02) ?seed (d : Device.t) nl pl =
  let seed = match seed with Some s -> s | None -> default_seed nl in
  let n = Netlist.n_cells nl in
  (* Per-cell fanin arcs in CSR form (arc_pred/arc_net flat arrays sliced by
     off): this is the inner loop of every characterization point, and the
     flat int arrays avoid allocating a (pred, net) cons per arc.  Slices are
     filled back-to-front while iterating nets forward, reproducing the
     reverse-insertion order the old per-cell lists had, so tie-breaking on
     equal arrivals is unchanged. *)
  let ndelay = Array.make (Netlist.n_nets nl) 0. in
  let off = Array.make (n + 1) 0 in
  Netlist.iter_nets nl (fun _ net ->
    Array.iter
      (fun s -> off.(s + 1) <- off.(s + 1) + 1)
      net.Netlist.n_sinks);
  for c = 0 to n - 1 do
    off.(c + 1) <- off.(c + 1) + off.(c)
  done;
  let n_arcs = off.(n) in
  let arc_pred = Array.make n_arcs 0 in
  let arc_net = Array.make n_arcs 0 in
  let cursor = Array.init n (fun c -> off.(c + 1)) in
  Netlist.iter_nets nl (fun nid net ->
    ndelay.(nid) <- net_delay d nl pl ~jitter ~seed nid;
    Array.iter
      (fun s ->
        let k = cursor.(s) - 1 in
        cursor.(s) <- k;
        arc_pred.(k) <- net.Netlist.n_driver;
        arc_net.(k) <- nid)
      net.Netlist.n_sinks);
  (* Arrival at each cell's *output*. Sequential cells and input ports
     launch at t_clk_q; combinational cells add their logic delay on top of
     the worst input arrival. Evaluate in dependence order via DFS with
     cycle detection — iteratively, on an explicit stack: a pipeline chain
     tens of thousands of registers deep is a legitimate netlist, and the
     natural recursive DFS overflows the OCaml stack on exactly the designs
     this tool exists to analyze.

     States: 0 unvisited, 1 on the DFS path (first visit done, inputs
     pending), 2 done. A cell is visited twice: the first visit pushes its
     unresolved predecessors (seeing a state-1 predecessor there means a
     genuine combinational cycle — state-1 cells are precisely the current
     DFS path); the revisit, once everything pushed above it has resolved,
     folds its input arrivals in the same ascending-arc order and with the
     same strict-> tie-breaking as the recursive version, so backpointers
     and arrivals are bit-identical. Duplicate stack entries (a cell
     demanded by several consumers before its first visit) are popped as
     no-ops in state 2. *)
  let arrival = Array.make n nan in
  let bp_pred = Array.make n (-1) in
  let bp_net = Array.make n (-1) in
  let state = Array.make n 0 in
  (* Every arc pushes at most one entry and each [eval] pushes one root. *)
  let stack = Array.make (n + n_arcs + 1) 0 in
  let sp = ref 0 in
  let push c =
    stack.(!sp) <- c;
    incr sp
  in
  let eval root =
    if state.(root) <> 2 then begin
      push root;
      while !sp > 0 do
        let c = stack.(!sp - 1) in
        if state.(c) = 2 then decr sp
        else if state.(c) = 0 then begin
          state.(c) <- 1;
          let cell = Netlist.cell nl c in
          match cell.Netlist.c_kind with
          | Netlist.Seq | Netlist.Mem ->
            arrival.(c) <- d.t_clk_q +. cell.Netlist.c_delay;
            state.(c) <- 2;
            decr sp
          | Netlist.Port_in ->
            arrival.(c) <- 0.;
            state.(c) <- 2;
            decr sp
          | Netlist.Port_out | Netlist.Comb ->
            let pending = ref false in
            for k = off.(c) to off.(c + 1) - 1 do
              let p = arc_pred.(k) in
              if state.(p) = 1 then failwith "Timing: combinational cycle"
              else if state.(p) = 0 then begin
                push p;
                pending := true
              end
            done;
            if not !pending then begin
              (* all inputs already resolved: finalize in place *)
              let worst = ref 0. in
              for k = off.(c) to off.(c + 1) - 1 do
                let t = arrival.(arc_pred.(k)) +. ndelay.(arc_net.(k)) in
                if t > !worst then begin
                  worst := t;
                  bp_pred.(c) <- arc_pred.(k);
                  bp_net.(c) <- arc_net.(k)
                end
              done;
              arrival.(c) <- !worst +. cell.Netlist.c_delay;
              state.(c) <- 2;
              decr sp
            end
        end
        else begin
          (* revisit: every predecessor pushed above has resolved *)
          let worst = ref 0. in
          for k = off.(c) to off.(c + 1) - 1 do
            let t = arrival.(arc_pred.(k)) +. ndelay.(arc_net.(k)) in
            if t > !worst then begin
              worst := t;
              bp_pred.(c) <- arc_pred.(k);
              bp_net.(c) <- arc_net.(k)
            end
          done;
          arrival.(c) <- !worst +. (Netlist.cell nl c).Netlist.c_delay;
          state.(c) <- 2;
          decr sp
        end
      done
    end
  in
  let input_arrival pred nid =
    eval pred;
    arrival.(pred) +. ndelay.(nid)
  in
  (* Path endpoints: arrival at the *inputs* of sequential cells and output
     ports, plus setup. *)
  let worst = ref 0. in
  let worst_end = ref None in
  (* I/O port paths are externally constrained (registered at the shell
     boundary), so like a real STA setup they are not clock endpoints. *)
  for c = 0 to n - 1 do
    let cell = Netlist.cell nl c in
    match cell.Netlist.c_kind with
    | Netlist.Seq | Netlist.Mem ->
      for k = off.(c) to off.(c + 1) - 1 do
        let t = input_arrival arc_pred.(k) arc_net.(k) +. d.t_setup in
        if t > !worst then begin
          worst := t;
          worst_end := Some (c, arc_pred.(k), arc_net.(k))
        end
      done
    | Netlist.Comb | Netlist.Port_in | Netlist.Port_out ->
      (* still force evaluation so cycles are reported deterministically *)
      eval c
  done;
  let critical = max !worst (d.t_clk_q +. d.t_setup) in
  (* Reconstruct the critical path by walking best_pred back. *)
  let path =
    match !worst_end with
    | None -> []
    | Some (endpoint, pred, via) ->
      let rec back c via acc =
        let step =
          {
            ps_cell = c;
            ps_cell_name = (Netlist.cell nl c).Netlist.c_name;
            ps_arrival = arrival.(c);
            ps_via_net = via;
          }
        in
        if bp_pred.(c) >= 0 then back bp_pred.(c) (Some bp_net.(c)) (step :: acc)
        else step :: acc
      in
      let end_step =
        {
          ps_cell = endpoint;
          ps_cell_name = (Netlist.cell nl endpoint).Netlist.c_name;
          ps_arrival = input_arrival pred via;
          ps_via_net = Some via;
        }
      in
      back pred (Some via) [ end_step ]
  in
  (* Worst net along the path. *)
  let worst_net, worst_fo, worst_cls =
    List.fold_left
      (fun (wn, wf, wc) step ->
        match step.ps_via_net with
        | None -> (wn, wf, wc)
        | Some nid -> (
          match wn with
          | Some w when ndelay.(w) >= ndelay.(nid) -> (wn, wf, wc)
          | _ ->
            ( Some nid,
              Netlist.fanout nl nid,
              Some (Netlist.net nl nid).Netlist.n_class )))
      (None, 0, None) path
  in
  {
    critical_ns = critical;
    fmax_mhz = 1000. /. critical;
    path;
    worst_net;
    worst_net_fanout = worst_fo;
    worst_net_class = worst_cls;
    arrivals = arrival;
  }

let run_body ?jitter ?seed d nl =
  let pl = Trace.with_span "place" (fun () -> Placement.place d nl) in
  let r = Trace.with_span "sta" (fun () -> analyze ?jitter ?seed d nl pl) in
  Metrics.incr "timing.runs";
  Metrics.set_gauge "timing.critical_ns" r.critical_ns;
  r

let run ?jitter ?seed d nl =
  if not (Trace.enabled ()) then run_body ?jitter ?seed d nl
  else
    Trace.with_span "timing"
      ~attrs:
        [
          ("netlist", Hlsb_telemetry.Json.Str (Netlist.name nl));
          ("cells", Hlsb_telemetry.Json.Int (Netlist.n_cells nl));
          ("nets", Hlsb_telemetry.Json.Int (Netlist.n_nets nl));
        ]
      (fun () -> run_body ?jitter ?seed d nl)

let pp_report fmt r =
  Format.fprintf fmt "critical %.3f ns -> %.1f MHz (path %d cells" r.critical_ns
    r.fmax_mhz (List.length r.path);
  (match r.worst_net_class with
  | Some c ->
    let cls =
      match c with
      | Netlist.Data -> "data"
      | Netlist.Data_broadcast -> "data-broadcast"
      | Netlist.Ctrl_sync -> "ctrl-sync"
      | Netlist.Ctrl_pipeline -> "ctrl-pipeline"
    in
    Format.fprintf fmt ", worst net fanout %d [%s]" r.worst_net_fanout cls
  | None -> ());
  Format.fprintf fmt ")"
