module Device = Hlsb_device.Device
module Netlist = Hlsb_netlist.Netlist
module Diag = Hlsb_util.Diag

(* Positions live in parallel unboxed float arrays (not an array of
   (float * float) tuples): the relax sweeps and the wire-length queries
   below are the hottest loops in the whole flow, and flat arrays read and
   write without chasing or allocating a box per access. *)
type t = {
  netlist : Netlist.t;
  xs : float array;
  ys : float array;
  fp : int array;
  sq : float array;
      (* sqrt (float fp) per cell: the spread radius folded into every
         wire-length query, precomputed once instead of per net per STA *)
  max_x : float;
  max_y : float;
}

(* Hilbert curve index -> (x, y) on a 2^k x 2^k grid; contiguous index runs
   map to compact 2D regions, giving nets over contiguously-placed cells a
   bounding box of half-perimeter Theta(sqrt(area)). *)
let hilbert_d2xy n d =
  let rot s x y rx ry =
    if ry = 0 then
      if rx = 1 then (s - 1 - y, s - 1 - x) else (y, x)
    else (x, y)
  in
  let rec go s x y t =
    if s >= n then (x, y)
    else begin
      let rx = 1 land (t / 2) in
      let ry = 1 land (t lxor rx) in
      let x, y = rot s x y rx ry in
      let x = x + (s * rx) and y = y + (s * ry) in
      go (2 * s) x y (t / 4)
    end
  in
  go 1 0 0 d

let cdiv a b = (a + b - 1) / b

(* Slice-equivalent footprint used for packing; DSP and BRAM contributions
   are folded in for Comb cells that embed them (they enlarge the region a
   macro occupies, which is what the wire model cares about). *)
let footprint (d : Device.t) (c : Netlist.cell) =
  let r = c.Netlist.c_res in
  let slices =
    max (cdiv r.Netlist.r_luts d.lut_per_slice) (cdiv r.Netlist.r_ffs d.ff_per_slice)
  in
  let extra = (r.Netlist.r_dsps * 3) + (r.Netlist.r_bram18 * 5) in
  max 1 (slices + extra)

(* Cell classification for the refinement sweeps, precomputed once instead
   of re-deriving kind + degree checks n times per sweep. *)
let cls_fixed = 0
let cls_movable = 1  (* light Seq with both fanin and fanout *)
let cls_light_comb = 2

let place ?(max_sweeps = 24) ?(early_exit = true) (d : Device.t) nl =
  let n = Netlist.n_cells nl in
  let xs = Array.make n 0. in
  let ys = Array.make n 0. in
  let fp = Array.make n 1 in
  let side =
    let rec grow k = if k >= d.cols && k >= d.rows then k else grow (2 * k) in
    grow 1
  in
  let total_points = side * side in
  let capacity = d.cols * d.rows in
  let cursor = ref 0 in
  let used = ref 0 in
  let max_x = ref 0. and max_y = ref 0. in
  (* Take the next on-die Hilbert point. *)
  let next_point () =
    let rec go () =
      if !cursor >= total_points then
        Diag.fail
          ~entity:(Diag.Design (Netlist.name nl))
          ~stage:"place"
          "design does not fit device %s: packing curve exhausted after %d \
           of %d on-die slices (%d x %d grid)"
          d.name !used capacity d.cols d.rows;
      let x, y = hilbert_d2xy side !cursor in
      incr cursor;
      if x < d.cols && y < d.rows then (x, y) else go ()
    in
    go ()
  in
  Netlist.iter_cells nl (fun id c ->
    let s = footprint d c in
    fp.(id) <- s;
    if !used + s > capacity then
      Diag.fail
        ~entity:(Diag.Design (Netlist.name nl))
        ~stage:"place"
        "design does not fit device %s: cell %s needs %d slice(s) but only \
         %d of %d remain (%d x %d slice grid)"
        d.name c.Netlist.c_name s (capacity - !used) capacity d.cols d.rows;
    used := !used + s;
    let sx = ref 0. and sy = ref 0. in
    for _ = 1 to s do
      let x, y = next_point () in
      sx := !sx +. float_of_int x;
      sy := !sy +. float_of_int y;
      max_x := Stdlib.max !max_x (float_of_int x);
      max_y := Stdlib.max !max_y (float_of_int y)
    done;
    xs.(id) <- !sx /. float_of_int s;
    ys.(id) <- !sy /. float_of_int s);
  (* Register refinement: a timing-driven placer (and phys_opt) pulls light
     register cells to the midpoint between their driver and their sinks, so
     a chain of pipeline registers inserted across a long route settles at
     evenly spaced waypoints — each clock period then pays only a segment of
     the total distance. Heavy cells (logic macros, BRAM, DSP) stay where
     the packer put them.

     Fanin/fanout are CSR int arrays (offsets + flat adjacency), built in
     two passes, so the 24 sweeps below never touch a list. The slices are
     filled back to front while iterating nets forward: a forward read of a
     slice then visits edges in reverse net-encounter order, which is
     exactly the order the previous cons-list representation folded in —
     float summation order, and hence every position, stays bit-identical. *)
  let indeg = Array.make n 0 in
  let outdeg = Array.make n 0 in
  Netlist.iter_nets nl (fun _ net ->
    let drv = net.Netlist.n_driver in
    Array.iter
      (fun s ->
        indeg.(s) <- indeg.(s) + 1;
        outdeg.(drv) <- outdeg.(drv) + 1)
      net.Netlist.n_sinks);
  let in_off = Array.make (n + 1) 0 in
  let out_off = Array.make (n + 1) 0 in
  for i = 0 to n - 1 do
    in_off.(i + 1) <- in_off.(i) + indeg.(i);
    out_off.(i + 1) <- out_off.(i) + outdeg.(i)
  done;
  let in_adj = Array.make in_off.(n) 0 in
  let out_adj = Array.make out_off.(n) 0 in
  let in_pos = Array.init n (fun i -> in_off.(i + 1)) in
  let out_pos = Array.init n (fun i -> out_off.(i + 1)) in
  Netlist.iter_nets nl (fun _ net ->
    let drv = net.Netlist.n_driver in
    Array.iter
      (fun s ->
        in_pos.(s) <- in_pos.(s) - 1;
        in_adj.(in_pos.(s)) <- drv;
        out_pos.(drv) <- out_pos.(drv) - 1;
        out_adj.(out_pos.(drv)) <- s)
      net.Netlist.n_sinks);
  let cls = Bytes.make n (Char.chr cls_fixed) in
  for id = 0 to n - 1 do
    if fp.(id) <= 64 && indeg.(id) > 0 && outdeg.(id) > 0 then
      match (Netlist.cell nl id).Netlist.c_kind with
      | Netlist.Seq -> Bytes.unsafe_set cls id (Char.chr cls_movable)
      | Netlist.Comb -> Bytes.unsafe_set cls id (Char.chr cls_light_comb)
      | _ -> ()
  done;
  (* Light combinational cells (muxes, reduce-tree nodes) are likewise
     pulled toward their pin centroid but stay 25% anchored to their packed
     slot, so gather structures sit near their operands without collapsing
     the global spread that the broadcast wire model depends on. The two
     rules interleave until positions settle. *)
  let slot_x = Array.copy xs in
  let slot_y = Array.copy ys in
  (* Sweeps alternate direction (Gauss-Seidel): long register chains relax
     to evenly spaced waypoints in a few passes instead of diffusing one
     hop per pass. *)
  let relax delta id =
    let c = Char.code (Bytes.unsafe_get cls id) in
    if c <> cls_fixed then begin
      let isx = ref 0. and isy = ref 0. in
      for k = in_off.(id) to in_off.(id + 1) - 1 do
        let p = in_adj.(k) in
        isx := !isx +. xs.(p);
        isy := !isy +. ys.(p)
      done;
      let osx = ref 0. and osy = ref 0. in
      for k = out_off.(id) to out_off.(id + 1) - 1 do
        let p = out_adj.(k) in
        osx := !osx +. xs.(p);
        osy := !osy +. ys.(p)
      done;
      let ki = float_of_int indeg.(id) and ko = float_of_int outdeg.(id) in
      let ix = !isx /. ki and iy = !isy /. ki in
      let ox = !osx /. ko and oy = !osy /. ko in
      if c = cls_movable then begin
        (* star-model equilibrium: the register settles at the pin-count
           weighted centroid, so a fanout-tree leaf sits with its sinks
           while a 1-in/1-out chain register sits at the midpoint *)
        (* sqrt weighting: balances hop delays along pipelined chains while
           still pulling multi-sink leaves toward their cluster *)
        let wi = sqrt ki in
        let wo = sqrt ko in
        let nx = ((ix *. wi) +. (ox *. wo)) /. (wi +. wo)
        and ny = ((iy *. wi) +. (oy *. wo)) /. (wi +. wo) in
        delta :=
          Stdlib.max !delta
            (Stdlib.max (abs_float (nx -. xs.(id))) (abs_float (ny -. ys.(id))));
        xs.(id) <- nx;
        ys.(id) <- ny
      end
      else begin
        (* Combinational cells hug their *sources* (gather trees sit at
           their operand clusters; downstream registers carry the
           distance), with a slight slot anchor so packed structure is not
           fully erased. *)
        let cx = (0.65 *. ix) +. (0.35 *. ox)
        and cy = (0.65 *. iy) +. (0.35 *. oy) in
        let nx = (0.1 *. slot_x.(id)) +. (0.9 *. cx)
        and ny = (0.1 *. slot_y.(id)) +. (0.9 *. cy) in
        delta :=
          Stdlib.max !delta
            (Stdlib.max (abs_float (nx -. xs.(id))) (abs_float (ny -. ys.(id))));
        xs.(id) <- nx;
        ys.(id) <- ny
      end
    end
  in
  (* Convergence gate: a sweep whose largest position update is exactly
     zero is a fixpoint — every later sweep would recompute the same
     centroids from the same positions — so stopping there is provably
     equivalent to running all [max_sweeps]. Designs that settle early
     (the characterize skeletons settle in 2-3 sweeps; 100k-cell bigmul
     netlists in far fewer than 24) skip the dead sweeps; designs that
     never settle run exactly the historical count, bit-identically. *)
  let sweep = ref 1 in
  let settled = ref false in
  while !sweep <= max_sweeps && not !settled do
    let delta = ref 0. in
    if !sweep mod 2 = 1 then
      for id = 0 to n - 1 do
        relax delta id
      done
    else
      for id = n - 1 downto 0 do
        relax delta id
      done;
    if early_exit && !delta = 0. then settled := true;
    incr sweep
  done;
  let sq = Array.map (fun s -> sqrt (float_of_int s)) fp in
  { netlist = nl; xs; ys; fp; sq; max_x = !max_x; max_y = !max_y }

let position t c = (t.xs.(c), t.ys.(c))
let footprint_slices t c = t.fp.(c)

let set_position t c (x, y) =
  t.xs.(c) <- x;
  t.ys.(c) <- y

(* The wire-length queries below iterate the sinks array directly instead
   of materializing [driver :: Array.to_list sinks]; they run once per net
   per STA, so the per-call cons lists were pure GC pressure. Fold orders
   are unchanged (driver first, then sinks in array order). *)

let bbox t nid =
  let net = Netlist.net t.netlist nid in
  let drv = net.Netlist.n_driver in
  let xmin = ref t.xs.(drv) and ymin = ref t.ys.(drv) in
  let xmax = ref t.xs.(drv) and ymax = ref t.ys.(drv) in
  Array.iter
    (fun s ->
      let x = t.xs.(s) and y = t.ys.(s) in
      if x < !xmin then xmin := x;
      if y < !ymin then ymin := y;
      if x > !xmax then xmax := x;
      if y > !ymax then ymax := y)
    net.Netlist.n_sinks;
  (!xmin, !ymin, !xmax, !ymax)

let hpwl t nid =
  let net = Netlist.net t.netlist nid in
  let n_sinks = Array.length net.Netlist.n_sinks in
  if n_sinks = 0 then 0.
  else begin
    let xmin, ymin, xmax, ymax = bbox t nid in
    (* Large cells are regions, not points: extend the bbox by the radius of
       the cells at its corners so a net feeding one huge macro still pays
       for crossing it. *)
    let spread =
      Array.fold_left
        (fun acc s -> acc +. t.sq.(s))
        t.sq.(net.Netlist.n_driver)
        net.Netlist.n_sinks
      /. float_of_int (1 + n_sinks)
    in
    xmax -. xmin +. (ymax -. ymin) +. spread
  end

let star_length t nid =
  let net = Netlist.net t.netlist nid in
  if Array.length net.Netlist.n_sinks = 0 then 0.
  else begin
    let drv = net.Netlist.n_driver in
    let dx = t.xs.(drv) and dy = t.ys.(drv) in
    let far =
      Array.fold_left
        (fun acc s ->
          Stdlib.max acc
            (abs_float (t.xs.(s) -. dx) +. abs_float (t.ys.(s) -. dy)))
        0. net.Netlist.n_sinks
    in
    let spread =
      Array.fold_left
        (fun acc s -> acc +. t.sq.(s))
        t.sq.(drv)
        net.Netlist.n_sinks
      /. float_of_int (1 + Array.length net.Netlist.n_sinks)
    in
    far +. spread
  end

let overlap_free _t = true
(* Packing assigns disjoint Hilbert slots by construction; kept as an
   explicit invariant entry point for tests that re-verify via max_extent
   and used-slot accounting. *)

let max_extent t = max t.max_x t.max_y
