let default () = Monotonic_clock.now ()
let source = ref default
let now_ns () = !source ()
let set_source f = source := f
let reset_source () = source := default
let ns_to_us ns = Int64.to_float ns /. 1e3
let ns_to_ms ns = Int64.to_float ns /. 1e6
