(** Metrics registry: named counters, gauges, and fixed-bucket
    histograms, with a snapshot/diff API and JSON export.

    Instrumentation sites call the global no-argument-registry functions
    ({!incr}, {!set_gauge}, {!observe_int}, …); they act on the
    registry installed with {!install} and are no-ops otherwise. The
    disabled path is one [ref] dereference and a branch — no
    allocation — so library code can instrument per-node and per-cycle
    loops unconditionally. Integer-flavoured entry points exist
    precisely so hot paths never box a float while disabled.

    Well-known metric names emitted by the compile flow:
    - ["sched.broadcast_factor"] (histogram) — input-side broadcast
      factor of every scheduled operation (§4.1).
    - ["sched.fanout_after_split"] (histogram) — same nodes after
      broadcast-distribution trees cap the leaf fanout.
    - ["sched.registers_inserted"] (counter) — pipeline + distribution
      registers added by the broadcast-aware schedule.
    - ["sync.edges_pruned"] (counter) — done-wait edges removed by the
      §4.2 longest-static-latency pruning.
    - ["sync.groups_split"] (counter) — extra controllers created by
      splitting independent sync groups.
    - ["sync.controllers"] (counter), ["sync.max_start_fanout"] (gauge).
    - ["calibrate.lookups"] (counter), ["calibrate.curve_builds"]
      (counter) — delay-calibration table traffic.
    - ["timing.runs"] (counter), ["timing.critical_ns"] (gauge).
    - ["netlist.cells"], ["netlist.nets"] (counters) — emitted size.
    - ["lower.registers_added"], ["lower.skid_bits"] (counters).
    - ["sim.skid_occupancy"] (histogram) — per-cycle skid-buffer fill
      (§4.3); ["sim.cycles"] (counter). *)

type t

val create : unit -> t

(** {1 Global installation}

    Installation is process-wide: every domain — in particular pool worker
    domains running inside a parallel region — records into the installed
    registry. Each domain writes to a private shard (no locks or
    cross-domain contention on the hot path); shards are merged when the
    registry is read ({!snapshot}, {!counter_value}, {!gauge_value}).
    Counters and histograms merge additively; a gauge recorded by several
    domains keeps the earliest-recording domain's value. *)

val install : t -> unit
val uninstall : unit -> unit
val installed : unit -> t option
val enabled : unit -> bool

val with_registry : t -> (unit -> 'a) -> 'a
(** Install [t], run the thunk, restore the previous registry (also on
    exceptions). *)

(** {1 Instrumentation entry points (no-ops when nothing installed)} *)

val incr : ?by:int -> string -> unit
val set_gauge : string -> float -> unit
val set_gauge_int : string -> int -> unit

val observe : ?buckets:float array -> string -> float -> unit
(** Record a histogram sample. [buckets] (upper bounds, ascending) only
    takes effect on the sample that creates the histogram; later calls
    reuse the existing buckets. Default buckets are powers of two
    1,2,4,…,1024 — the natural grid for broadcast factors, fanouts and
    FIFO occupancies. *)

val observe_int : string -> int -> unit

(** {1 Direct registry access} *)

val counter_value : t -> string -> int
(** 0 if the counter was never incremented. *)

val gauge_value : t -> string -> float option

(** {1 Snapshots} *)

type hist_snap = {
  hs_buckets : float array;  (** upper bounds, ascending; implicit +inf last *)
  hs_counts : int array;  (** length = length hs_buckets + 1 (overflow) *)
  hs_count : int;
  hs_sum : float;
  hs_min : float;  (** nan when empty *)
  hs_max : float;  (** nan when empty *)
}

type snapshot = {
  sn_counters : (string * int) list;  (** sorted by name *)
  sn_gauges : (string * float) list;
  sn_hists : (string * hist_snap) list;
}

val snapshot : t -> snapshot

val diff : before:snapshot -> after:snapshot -> snapshot
(** Counters and histogram counts/sums subtract; gauges are taken from
    [after]. Histogram min/max are taken from [after] when the interval
    added at least one sample — they are running extrema, so they may
    still predate the interval — and are [nan] when the count delta is
    zero (no samples in the interval means no extrema, not stale ones).
    Entries only in [after] pass through; entries only in [before] are
    dropped. *)

val hist_mean : hist_snap -> float
(** nan when empty. *)

val quantile : hist_snap -> float -> float
(** [quantile h p] estimates the [p]-quantile ([0. <= p <= 1.]) from the
    bucket counts: the bucket containing rank [p * count] is found and
    the value is interpolated linearly inside it, with bucket edges
    clamped to the observed [hs_min]/[hs_max] (the overflow bucket uses
    [hs_max] as its upper edge). [p <= 0.] returns [hs_min], [p >= 1.]
    returns [hs_max]; nan when the histogram is empty. Exact whenever
    samples are uniformly spread inside their buckets; always within the
    containing bucket's clamped bounds. *)

val to_json : snapshot -> Json.t
val render : snapshot -> string
(** Human-readable table of all metrics. *)
