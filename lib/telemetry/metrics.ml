type hist = {
  h_buckets : float array;
  h_counts : int array;  (* length = buckets + 1, last is overflow *)
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_min : float;
  mutable h_max : float;
}

(* Each domain records into a private shard, so instrumentation in hot
   loops never takes a lock and never contends with other domains; shards
   are merged only when someone reads the registry (snapshot /
   counter_value / gauge_value).  With a single domain there is exactly one
   shard and behavior is identical to a plain table. *)
type shard = {
  counters : (string, int ref) Hashtbl.t;
  gauges : (string, float ref) Hashtbl.t;
  hists : (string, hist) Hashtbl.t;
}

type t = {
  sh_lock : Mutex.t;
  (* (domain id, shard), in shard-creation order; guarded by [sh_lock].
     The list stays tiny (one entry per domain that ever recorded). *)
  mutable shards : (int * shard) list;
}

let new_shard () =
  {
    counters = Hashtbl.create 16;
    gauges = Hashtbl.create 16;
    hists = Hashtbl.create 16;
  }

let create () = { sh_lock = Mutex.create (); shards = [] }

let locked t f =
  Mutex.lock t.sh_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.sh_lock) f

(* Process-global, unlike [Trace.current]: pool worker domains must see the
   registry the main domain installed, or every observation made inside a
   parallel region is silently dropped (cache-hit counts looked wrong in
   exactly that way before). Reads are merged, so cross-domain visibility
   is safe. *)
let current : t option Atomic.t = Atomic.make None

let install t = Atomic.set current (Some t)
let uninstall () = Atomic.set current None
let installed () = Atomic.get current
let enabled () = Atomic.get current <> None

let with_registry t f =
  let prev = Atomic.get current in
  Atomic.set current (Some t);
  Fun.protect ~finally:(fun () -> Atomic.set current prev) f

(* Fast path: one DLS read and a physical-equality check. The slow path
   (first observation by this domain into this registry) registers a shard
   under the lock. *)
let shard_cache : (t * shard) option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let get_shard t =
  match Domain.DLS.get shard_cache with
  | Some (t', s) when t' == t -> s
  | _ ->
    let id = (Domain.self () :> int) in
    let s =
      locked t (fun () ->
        match List.assoc_opt id t.shards with
        | Some s -> s
        | None ->
          let s = new_shard () in
          t.shards <- t.shards @ [ (id, s) ];
          s)
    in
    Domain.DLS.set shard_cache (Some (t, s));
    s

let default_buckets =
  [| 1.; 2.; 4.; 8.; 16.; 32.; 64.; 128.; 256.; 512.; 1024. |]

let incr ?(by = 1) name =
  match Atomic.get current with
  | None -> ()
  | Some t -> (
    let sh = get_shard t in
    match Hashtbl.find_opt sh.counters name with
    | Some r -> r := !r + by
    | None -> Hashtbl.add sh.counters name (ref by))

let set_gauge name v =
  match Atomic.get current with
  | None -> ()
  | Some t -> (
    let sh = get_shard t in
    match Hashtbl.find_opt sh.gauges name with
    | Some r -> r := v
    | None -> Hashtbl.add sh.gauges name (ref v))

let set_gauge_int name v = set_gauge name (float_of_int v)

let find_bucket buckets v =
  (* buckets are upper bounds, ascending; index of first bound >= v,
     or [length] for the overflow bucket. *)
  let n = Array.length buckets in
  let rec go i = if i >= n then n else if v <= buckets.(i) then i else go (i + 1) in
  go 0

let hist_observe h v =
  let i = find_bucket h.h_buckets v in
  h.h_counts.(i) <- h.h_counts.(i) + 1;
  h.h_count <- h.h_count + 1;
  h.h_sum <- h.h_sum +. v;
  if h.h_count = 1 then begin
    h.h_min <- v;
    h.h_max <- v
  end
  else begin
    if v < h.h_min then h.h_min <- v;
    if v > h.h_max then h.h_max <- v
  end

let observe ?buckets name v =
  match Atomic.get current with
  | None -> ()
  | Some t -> (
    let sh = get_shard t in
    match Hashtbl.find_opt sh.hists name with
    | Some h -> hist_observe h v
    | None ->
      let buckets = match buckets with Some b -> b | None -> default_buckets in
      if Array.length buckets = 0 then
        invalid_arg "Metrics.observe: empty buckets";
      Array.iteri
        (fun i b ->
          if i > 0 && b <= buckets.(i - 1) then
            invalid_arg "Metrics.observe: buckets not ascending")
        buckets;
      let h =
        {
          h_buckets = Array.copy buckets;
          h_counts = Array.make (Array.length buckets + 1) 0;
          h_count = 0;
          h_sum = 0.;
          h_min = nan;
          h_max = nan;
        }
      in
      hist_observe h v;
      Hashtbl.add sh.hists name h)

let observe_int name v =
  match Atomic.get current with
  | None -> ()  (* short-circuit before any float boxing *)
  | Some _ -> observe name (float_of_int v)

(* ---- merged reads ----

   Counters sum across shards. A gauge present in several shards keeps the
   value from the earliest-created shard holding it (the main domain
   installs and records first, so sequential behavior is unchanged; gauges
   set inside parallel regions are last-writer-wins anyway). Histograms
   with identical buckets merge counts/sums/extrema; on a bucket mismatch
   (only possible via explicit per-site [?buckets] disagreement) the
   earliest shard wins. Reads merge under the shard lock, and every
   [Pool.map] joins its workers before returning, so a quiescent-point read
   sees every observation. *)

type hist_snap = {
  hs_buckets : float array;
  hs_counts : int array;
  hs_count : int;
  hs_sum : float;
  hs_min : float;
  hs_max : float;
}

let snap_of_hist h =
  {
    hs_buckets = Array.copy h.h_buckets;
    hs_counts = Array.copy h.h_counts;
    hs_count = h.h_count;
    hs_sum = h.h_sum;
    hs_min = h.h_min;
    hs_max = h.h_max;
  }

let merge_hist a b =
  if a.hs_buckets <> b.hs_buckets then a
  else
    let nan_min x y = if Float.is_nan x then y else if Float.is_nan y then x else Float.min x y in
    let nan_max x y = if Float.is_nan x then y else if Float.is_nan y then x else Float.max x y in
    {
      hs_buckets = a.hs_buckets;
      hs_counts = Array.mapi (fun i c -> c + b.hs_counts.(i)) a.hs_counts;
      hs_count = a.hs_count + b.hs_count;
      hs_sum = a.hs_sum +. b.hs_sum;
      hs_min = nan_min a.hs_min b.hs_min;
      hs_max = nan_max a.hs_max b.hs_max;
    }

(* Call with [t.sh_lock] held. *)
let merged t =
  let counters = Hashtbl.create 16 in
  let gauges = Hashtbl.create 16 in
  let hists = Hashtbl.create 16 in
  List.iter
    (fun (_, sh) ->
      Hashtbl.iter
        (fun k r ->
          match Hashtbl.find_opt counters k with
          | Some tot -> Hashtbl.replace counters k (tot + !r)
          | None -> Hashtbl.add counters k !r)
        sh.counters;
      Hashtbl.iter
        (fun k r ->
          if not (Hashtbl.mem gauges k) then Hashtbl.add gauges k !r)
        sh.gauges;
      Hashtbl.iter
        (fun k h ->
          match Hashtbl.find_opt hists k with
          | Some acc -> Hashtbl.replace hists k (merge_hist acc (snap_of_hist h))
          | None -> Hashtbl.add hists k (snap_of_hist h))
        sh.hists)
    t.shards;
  (counters, gauges, hists)

let counter_value t name =
  locked t (fun () ->
    List.fold_left
      (fun acc (_, sh) ->
        match Hashtbl.find_opt sh.counters name with
        | Some r -> acc + !r
        | None -> acc)
      0 t.shards)

let gauge_value t name =
  locked t (fun () ->
    List.fold_left
      (fun acc (_, sh) ->
        match acc with
        | Some _ -> acc
        | None -> Option.map ( ! ) (Hashtbl.find_opt sh.gauges name))
      None t.shards)

type snapshot = {
  sn_counters : (string * int) list;
  sn_gauges : (string * float) list;
  sn_hists : (string * hist_snap) list;
}

let sorted_bindings tbl f =
  Hashtbl.fold (fun k v acc -> (k, f v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let snapshot t =
  let counters, gauges, hists = locked t (fun () -> merged t) in
  {
    sn_counters = sorted_bindings counters Fun.id;
    sn_gauges = sorted_bindings gauges Fun.id;
    sn_hists = sorted_bindings hists Fun.id;
  }

let diff ~before ~after =
  let counters =
    List.map
      (fun (k, v) ->
        match List.assoc_opt k before.sn_counters with
        | Some v0 -> (k, v - v0)
        | None -> (k, v))
      after.sn_counters
  in
  let hists =
    List.map
      (fun (k, (h : hist_snap)) ->
        match List.assoc_opt k before.sn_hists with
        | Some h0 when Array.length h0.hs_buckets = Array.length h.hs_buckets ->
          let count = h.hs_count - h0.hs_count in
          (* min/max are running extrema, not interval data: when the
             interval added no samples they are whatever [before] left
             behind, so report the interval's (empty) extrema instead of
             stale values masquerading as fresh ones. *)
          let mn, mx = if count = 0 then (nan, nan) else (h.hs_min, h.hs_max) in
          ( k,
            {
              h with
              hs_counts = Array.mapi (fun i c -> c - h0.hs_counts.(i)) h.hs_counts;
              hs_count = count;
              hs_sum = h.hs_sum -. h0.hs_sum;
              hs_min = mn;
              hs_max = mx;
            } )
        | _ -> (k, h))
      after.sn_hists
  in
  { sn_counters = counters; sn_gauges = after.sn_gauges; sn_hists = hists }

let hist_mean h = if h.hs_count = 0 then nan else h.hs_sum /. float_of_int h.hs_count

(* Quantile estimation from bucket counts: find the bucket holding the
   target rank, then interpolate linearly inside it. Bucket edges are
   clamped by the observed extrema, so a histogram whose samples all sit
   in one bucket still reports quantiles inside [min, max], and the
   overflow bucket (no upper bound) uses [hs_max] as its upper edge. *)
let quantile h p =
  if h.hs_count = 0 || Float.is_nan p then nan
  else if p <= 0. then h.hs_min
  else if p >= 1. then h.hs_max
  else begin
    let n = Array.length h.hs_buckets in
    let target = p *. float_of_int h.hs_count in
    let rec go i cum =
      if i > n then h.hs_max
      else
        let c = h.hs_counts.(i) in
        let cum' = cum + c in
        if c > 0 && float_of_int cum' >= target then begin
          let lo =
            let edge = if i = 0 then neg_infinity else h.hs_buckets.(i - 1) in
            Float.max edge h.hs_min
          in
          let hi =
            let edge = if i = n then infinity else h.hs_buckets.(i) in
            Float.min edge h.hs_max
          in
          let frac = (target -. float_of_int cum) /. float_of_int c in
          lo +. (frac *. (hi -. lo))
        end
        else go (i + 1) cum'
    in
    go 0 0
  end

let hist_to_json (h : hist_snap) =
  Json.Obj
    [
      ("buckets", Json.List (Array.to_list h.hs_buckets |> List.map (fun b -> Json.Float b)));
      ("counts", Json.List (Array.to_list h.hs_counts |> List.map (fun c -> Json.Int c)));
      ("count", Json.Int h.hs_count);
      ("sum", Json.Float h.hs_sum);
      ("min", Json.Float h.hs_min);
      ("max", Json.Float h.hs_max);
      ("mean", Json.Float (hist_mean h));
    ]

let to_json s =
  Json.Obj
    [
      ( "counters",
        Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) s.sn_counters) );
      ( "gauges",
        Json.Obj (List.map (fun (k, v) -> (k, Json.Float v)) s.sn_gauges) );
      ("histograms", Json.Obj (List.map (fun (k, h) -> (k, hist_to_json h)) s.sn_hists));
    ]

let render s =
  let buf = Buffer.create 512 in
  let line fmt = Printf.ksprintf (fun l -> Buffer.add_string buf (l ^ "\n")) fmt in
  if s.sn_counters <> [] then begin
    line "counters:";
    List.iter (fun (k, v) -> line "  %-32s %12d" k v) s.sn_counters
  end;
  if s.sn_gauges <> [] then begin
    line "gauges:";
    List.iter (fun (k, v) -> line "  %-32s %12.3f" k v) s.sn_gauges
  end;
  if s.sn_hists <> [] then begin
    line "histograms:";
    List.iter
      (fun (k, h) ->
        line "  %-32s n=%d mean=%.2f min=%.0f max=%.0f" k h.hs_count
          (hist_mean h) h.hs_min h.hs_max;
        let n = Array.length h.hs_buckets in
        for i = 0 to n do
          if h.hs_counts.(i) > 0 then
            let label =
              if i = n then Printf.sprintf ">%g" h.hs_buckets.(n - 1)
              else Printf.sprintf "<=%g" h.hs_buckets.(i)
            in
            line "    %-10s %8d" label h.hs_counts.(i)
        done)
      s.sn_hists
  end;
  Buffer.contents buf
