(** Span-based tracer. Instrumented code wraps regions in
    {!with_span}; when a trace collector is installed the region is
    recorded as a nested monotonic-clock span, otherwise the thunk runs
    directly (the disabled path is an [Atomic] read and a branch — no
    allocation, no clock read).

    Installation is process-wide, like {!Metrics}: spans recorded inside
    pool worker domains ([Hlsb_util.Pool]) land in a private per-domain
    shard — no lock on the recording path, no cross-domain races on the
    span stack — and carry the recording domain's id in {!span.sp_tid}.
    Parentage is per-domain: a span opened on a worker domain is a root
    of that worker's track. Reads ({!spans}, {!find}, exports) merge the
    shards; every [Pool.map] joins its workers before returning, so a
    quiescent-point read sees every span.

    Completed traces export as Chrome [trace_event] JSON — load the
    file in [chrome://tracing] or {{:https://ui.perfetto.dev}Perfetto},
    where each domain renders as its own named track — or render as a
    flat indented text tree. *)

type value = Json.t
(** Span attribute values. *)

type span = {
  sp_id : int;
  sp_name : string;
  sp_attrs : (string * value) list;
  sp_parent : int;  (** [sp_id] of the enclosing span, [-1] for roots *)
  sp_depth : int;  (** 0 for roots *)
  sp_tid : int;  (** id of the domain that recorded the span *)
  sp_start_ns : int64;
  sp_stop_ns : int64;
}

type t

val create : unit -> t

(** {1 Global installation} *)

val install : t -> unit
val uninstall : unit -> unit
val installed : unit -> t option
val enabled : unit -> bool

val with_collector : t -> (unit -> 'a) -> 'a
(** Install [t], run the thunk, restore the previous collector (also on
    exceptions). *)

(** {1 Recording} *)

val with_span : ?attrs:(string * value) list -> string -> (unit -> 'a) -> 'a
(** Run the thunk inside a named span. Nested calls on the same domain
    record parentage. The span is closed even if the thunk raises. *)

val add_attr : string -> value -> unit
(** Attach an attribute to the innermost open span of the calling
    domain; no-op when disabled or outside any span. *)

val current_span_id : unit -> int option
(** [sp_id] of the calling domain's innermost open span — the
    correlation key structured log records carry — or [None] when
    disabled or outside any span. *)

(** {1 Inspection & export} *)

val spans : t -> span list
(** Completed spans from every domain, in start order. Spans still open
    are not listed. *)

val find : t -> string -> span list
(** Completed spans with the given name, in start order. *)

val duration_ns : span -> int64
val duration_ms : span -> float

val total_ns : t -> int64
(** Sum of root-span durations recorded by the domain that created the
    collector. Worker-side roots overlap those regions and are excluded
    so wall-clock is not double-counted. *)

val to_chrome_json : ?process_name:string -> t -> Json.t
(** Chrome [trace_event] "JSON object format": [{"traceEvents": [...]}]
    with one complete ("ph":"X") event per span, microsecond
    timestamps relative to the earliest span, span attributes in
    ["args"], the recording domain in ["tid"], and one [thread_name]
    metadata record per domain ("main" for the collector's owner). *)

val render : t -> string
(** Flat text tree: one line per span, indented by nesting depth, with
    millisecond durations; spans from non-owner domains are marked
    [@dN]. *)
