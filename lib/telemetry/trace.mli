(** Span-based tracer. Instrumented code wraps regions in
    {!with_span}; when a trace collector is installed the region is
    recorded as a nested monotonic-clock span, otherwise the thunk runs
    directly (the disabled path is a [ref] dereference and a branch —
    no allocation, no clock read).

    Completed traces export as Chrome [trace_event] JSON — load the
    file in [chrome://tracing] or {{:https://ui.perfetto.dev}Perfetto}
    — or render as a flat indented text tree. *)

type value = Json.t
(** Span attribute values. *)

type span = {
  sp_id : int;
  sp_name : string;
  sp_attrs : (string * value) list;
  sp_parent : int;  (** [sp_id] of the enclosing span, [-1] for roots *)
  sp_depth : int;  (** 0 for roots *)
  sp_start_ns : int64;
  sp_stop_ns : int64;
}

type t

val create : unit -> t

(** {1 Global installation} *)

val install : t -> unit
val uninstall : unit -> unit
val installed : unit -> t option
val enabled : unit -> bool

val with_collector : t -> (unit -> 'a) -> 'a
(** Install [t], run the thunk, restore the previous collector (also on
    exceptions). *)

(** {1 Recording} *)

val with_span : ?attrs:(string * value) list -> string -> (unit -> 'a) -> 'a
(** Run the thunk inside a named span. Nested calls record parentage.
    The span is closed even if the thunk raises. *)

val add_attr : string -> value -> unit
(** Attach an attribute to the innermost open span; no-op when disabled
    or outside any span. *)

(** {1 Inspection & export} *)

val spans : t -> span list
(** Completed spans in start order. Spans still open are not listed. *)

val find : t -> string -> span list
(** Completed spans with the given name, in start order. *)

val duration_ns : span -> int64
val duration_ms : span -> float

val total_ns : t -> int64
(** Sum of root-span durations. *)

val to_chrome_json : ?process_name:string -> t -> Json.t
(** Chrome [trace_event] "JSON object format": [{"traceEvents": [...]}]
    with one complete ("ph":"X") event per span, microsecond
    timestamps relative to the earliest span, and span attributes in
    ["args"]. *)

val render : t -> string
(** Flat text tree: one line per span, indented by nesting depth, with
    millisecond durations. *)
