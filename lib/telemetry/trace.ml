type value = Json.t

type span = {
  sp_id : int;
  sp_name : string;
  sp_attrs : (string * value) list;
  sp_parent : int;
  sp_depth : int;
  sp_start_ns : int64;
  sp_stop_ns : int64;
}

(* Open spans live on a stack; closing moves them to [done_rev]. *)
type open_span = {
  os_id : int;
  os_name : string;
  mutable os_attrs : (string * value) list;
  os_parent : int;
  os_depth : int;
  os_start_ns : int64;
}

type t = {
  mutable next_id : int;
  mutable stack : open_span list;
  mutable done_rev : span list;
}

let create () = { next_id = 0; stack = []; done_rev = [] }

(* The installed collector is domain-local: spans record only on the domain
   that installed it, so tasks running on pool worker domains (Hlsb_util.Pool)
   see no collector and cannot race on the span stack. *)
let current : t option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let install t = Domain.DLS.set current (Some t)
let uninstall () = Domain.DLS.set current None
let installed () = Domain.DLS.get current
let enabled () = Domain.DLS.get current <> None

let with_collector t f =
  let prev = Domain.DLS.get current in
  Domain.DLS.set current (Some t);
  Fun.protect ~finally:(fun () -> Domain.DLS.set current prev) f

let with_span ?attrs name f =
  match Domain.DLS.get current with
  | None -> f ()
  | Some t ->
    let parent, depth =
      match t.stack with
      | [] -> (-1, 0)
      | p :: _ -> (p.os_id, p.os_depth + 1)
    in
    let os =
      {
        os_id = t.next_id;
        os_name = name;
        os_attrs = (match attrs with Some a -> a | None -> []);
        os_parent = parent;
        os_depth = depth;
        os_start_ns = Clock.now_ns ();
      }
    in
    t.next_id <- t.next_id + 1;
    t.stack <- os :: t.stack;
    let close () =
      let stop = Clock.now_ns () in
      (match t.stack with
      | top :: rest when top.os_id = os.os_id -> t.stack <- rest
      | _ ->
        (* A nested span leaked past its parent (should be impossible
           with [with_span]); drop everything above us. *)
        let rec unwind = function
          | top :: rest when top.os_id <> os.os_id -> unwind rest
          | top :: rest when top.os_id = os.os_id -> rest
          | l -> l
        in
        t.stack <- unwind t.stack);
      t.done_rev <-
        {
          sp_id = os.os_id;
          sp_name = os.os_name;
          sp_attrs = os.os_attrs;
          sp_parent = os.os_parent;
          sp_depth = os.os_depth;
          sp_start_ns = os.os_start_ns;
          sp_stop_ns = stop;
        }
        :: t.done_rev
    in
    Fun.protect ~finally:close f

let add_attr key v =
  match Domain.DLS.get current with
  | None -> ()
  | Some t -> (
    match t.stack with
    | [] -> ()
    | top :: _ -> top.os_attrs <- (key, v) :: top.os_attrs)

let spans t =
  List.sort
    (fun a b -> compare (a.sp_start_ns, a.sp_id) (b.sp_start_ns, b.sp_id))
    t.done_rev

let find t name = List.filter (fun s -> s.sp_name = name) (spans t)

let duration_ns s = Int64.sub s.sp_stop_ns s.sp_start_ns
let duration_ms s = Clock.ns_to_ms (duration_ns s)

let total_ns t =
  List.fold_left
    (fun acc s -> if s.sp_parent = -1 then Int64.add acc (duration_ns s) else acc)
    0L (spans t)

let epoch t =
  List.fold_left
    (fun acc s -> if s.sp_start_ns < acc then s.sp_start_ns else acc)
    Int64.max_int t.done_rev

let to_chrome_json ?(process_name = "hlsb") t =
  let ss = spans t in
  let t0 = epoch t in
  let rel ns = Clock.ns_to_us (Int64.sub ns t0) in
  let meta =
    Json.Obj
      [
        ("name", Json.Str "process_name");
        ("ph", Json.Str "M");
        ("pid", Json.Int 1);
        ("tid", Json.Int 1);
        ("args", Json.Obj [ ("name", Json.Str process_name) ]);
      ]
  in
  let events =
    List.map
      (fun s ->
        Json.Obj
          [
            ("name", Json.Str s.sp_name);
            ("cat", Json.Str "hlsb");
            ("ph", Json.Str "X");
            ("ts", Json.Float (rel s.sp_start_ns));
            ("dur", Json.Float (Clock.ns_to_us (duration_ns s)));
            ("pid", Json.Int 1);
            ("tid", Json.Int 1);
            ("args", Json.Obj s.sp_attrs);
          ])
      ss
  in
  Json.Obj
    [
      ("traceEvents", Json.List (meta :: events));
      ("displayTimeUnit", Json.Str "ms");
    ]

let render t =
  let buf = Buffer.create 256 in
  List.iter
    (fun s ->
      let attrs =
        match s.sp_attrs with
        | [] -> ""
        | a ->
          "  ["
          ^ String.concat ", "
              (List.map (fun (k, v) -> k ^ "=" ^ Json.to_string v) a)
          ^ "]"
      in
      Buffer.add_string buf
        (Printf.sprintf "%s%-*s %9.2f ms%s\n"
           (String.make (2 * s.sp_depth) ' ')
           (32 - (2 * s.sp_depth))
           s.sp_name (duration_ms s) attrs))
    (spans t);
  Buffer.contents buf
