type value = Json.t

type span = {
  sp_id : int;
  sp_name : string;
  sp_attrs : (string * value) list;
  sp_parent : int;
  sp_depth : int;
  sp_tid : int;
  sp_start_ns : int64;
  sp_stop_ns : int64;
}

(* Open spans live on a per-domain stack; closing moves them to the
   shard's done list. *)
type open_span = {
  os_id : int;
  os_name : string;
  mutable os_attrs : (string * value) list;
  os_parent : int;
  os_depth : int;
  os_start_ns : int64;
}

(* Each domain records into a private shard, exactly like [Metrics]:
   span recording in a pool worker touches only that worker's stack, so
   parallel characterization never races on the collector, and each
   shard becomes its own Perfetto track ([sp_tid]). Parentage is
   per-domain: a span opened on a worker is a root of that worker's
   track, not a child of whatever the main domain had open. *)
type shard = {
  sh_tid : int;
  mutable sh_stack : open_span list;
  mutable sh_done : span list;  (* reversed *)
}

type t = {
  tr_next : int Atomic.t;  (* span ids unique across domains *)
  tr_lock : Mutex.t;
  (* (domain id, shard), shard-creation order; guarded by [tr_lock]. *)
  mutable tr_shards : (int * shard) list;
  tr_owner : int;  (* domain that created the collector *)
}

let create () =
  {
    tr_next = Atomic.make 0;
    tr_lock = Mutex.create ();
    tr_shards = [];
    tr_owner = (Domain.self () :> int);
  }

let locked t f =
  Mutex.lock t.tr_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.tr_lock) f

(* Process-global, like [Metrics.current]: pool worker domains must see
   the collector the main domain installed or every span recorded inside
   a parallel region is silently dropped (parallel characterization was
   invisible in traces in exactly that way before). Reads happen at
   quiescent points — every [Pool.map] joins its workers — so merged
   reads are safe. *)
let current : t option Atomic.t = Atomic.make None

let install t = Atomic.set current (Some t)
let uninstall () = Atomic.set current None
let installed () = Atomic.get current
let enabled () = Atomic.get current <> None

let with_collector t f =
  let prev = Atomic.get current in
  Atomic.set current (Some t);
  Fun.protect ~finally:(fun () -> Atomic.set current prev) f

(* Fast path: one DLS read and a physical-equality check (same shape as
   [Metrics.get_shard]). *)
let shard_cache : (t * shard) option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let get_shard t =
  match Domain.DLS.get shard_cache with
  | Some (t', s) when t' == t -> s
  | _ ->
    let id = (Domain.self () :> int) in
    let s =
      locked t (fun () ->
        match List.assoc_opt id t.tr_shards with
        | Some s -> s
        | None ->
          let s = { sh_tid = id; sh_stack = []; sh_done = [] } in
          t.tr_shards <- t.tr_shards @ [ (id, s) ];
          s)
    in
    Domain.DLS.set shard_cache (Some (t, s));
    s

let with_span ?attrs name f =
  match Atomic.get current with
  | None -> f ()
  | Some t ->
    let sh = get_shard t in
    let parent, depth =
      match sh.sh_stack with
      | [] -> (-1, 0)
      | p :: _ -> (p.os_id, p.os_depth + 1)
    in
    let os =
      {
        os_id = Atomic.fetch_and_add t.tr_next 1;
        os_name = name;
        os_attrs = (match attrs with Some a -> a | None -> []);
        os_parent = parent;
        os_depth = depth;
        os_start_ns = Clock.now_ns ();
      }
    in
    sh.sh_stack <- os :: sh.sh_stack;
    let close () =
      let stop = Clock.now_ns () in
      (match sh.sh_stack with
      | top :: rest when top.os_id = os.os_id -> sh.sh_stack <- rest
      | _ ->
        (* A nested span leaked past its parent (should be impossible
           with [with_span]); drop everything above us. *)
        let rec unwind = function
          | top :: rest when top.os_id <> os.os_id -> unwind rest
          | top :: rest when top.os_id = os.os_id -> rest
          | l -> l
        in
        sh.sh_stack <- unwind sh.sh_stack);
      sh.sh_done <-
        {
          sp_id = os.os_id;
          sp_name = os.os_name;
          sp_attrs = os.os_attrs;
          sp_parent = os.os_parent;
          sp_depth = os.os_depth;
          sp_tid = sh.sh_tid;
          sp_start_ns = os.os_start_ns;
          sp_stop_ns = stop;
        }
        :: sh.sh_done
    in
    Fun.protect ~finally:close f

let add_attr key v =
  match Atomic.get current with
  | None -> ()
  | Some t -> (
    let sh = get_shard t in
    match sh.sh_stack with
    | [] -> ()
    | top :: _ -> top.os_attrs <- (key, v) :: top.os_attrs)

let current_span_id () =
  match Atomic.get current with
  | None -> None
  | Some t -> (
    (* Peek only: a domain with an open span necessarily has its shard
       cached; do not create one just to answer "no span open". *)
    match Domain.DLS.get shard_cache with
    | Some (t', s) when t' == t -> (
      match s.sh_stack with [] -> None | os :: _ -> Some os.os_id)
    | _ -> None)

let all_done t =
  locked t (fun () ->
    List.concat_map (fun (_, sh) -> sh.sh_done) t.tr_shards)

let spans t =
  List.sort
    (fun a b -> compare (a.sp_start_ns, a.sp_id) (b.sp_start_ns, b.sp_id))
    (all_done t)

let find t name = List.filter (fun s -> s.sp_name = name) (spans t)

let duration_ns s = Int64.sub s.sp_stop_ns s.sp_start_ns
let duration_ms s = Clock.ns_to_ms (duration_ns s)

(* Only the owning domain's roots: worker-side spans overlap the owner's
   enclosing region, so adding them would double-count wall-clock. *)
let total_ns t =
  List.fold_left
    (fun acc s ->
      if s.sp_parent = -1 && s.sp_tid = t.tr_owner then
        Int64.add acc (duration_ns s)
      else acc)
    0L (spans t)

let epoch t =
  List.fold_left
    (fun acc s -> if s.sp_start_ns < acc then s.sp_start_ns else acc)
    Int64.max_int (all_done t)

let to_chrome_json ?(process_name = "hlsb") t =
  let ss = spans t in
  let t0 = epoch t in
  let rel ns = Clock.ns_to_us (Int64.sub ns t0) in
  let meta_process =
    Json.Obj
      [
        ("name", Json.Str "process_name");
        ("ph", Json.Str "M");
        ("pid", Json.Int 1);
        ("tid", Json.Int t.tr_owner);
        ("args", Json.Obj [ ("name", Json.Str process_name) ]);
      ]
  in
  (* One thread_name record per domain that recorded spans, so parallel
     characterization renders as parallel named tracks in Perfetto. *)
  let tids =
    List.sort_uniq compare (List.map (fun s -> s.sp_tid) ss)
  in
  let meta_threads =
    List.map
      (fun tid ->
        let name =
          if tid = t.tr_owner then "main" else Printf.sprintf "domain %d" tid
        in
        Json.Obj
          [
            ("name", Json.Str "thread_name");
            ("ph", Json.Str "M");
            ("pid", Json.Int 1);
            ("tid", Json.Int tid);
            ("args", Json.Obj [ ("name", Json.Str name) ]);
          ])
      tids
  in
  let events =
    List.map
      (fun s ->
        Json.Obj
          [
            ("name", Json.Str s.sp_name);
            ("cat", Json.Str "hlsb");
            ("ph", Json.Str "X");
            ("ts", Json.Float (rel s.sp_start_ns));
            ("dur", Json.Float (Clock.ns_to_us (duration_ns s)));
            ("pid", Json.Int 1);
            ("tid", Json.Int s.sp_tid);
            ("args", Json.Obj s.sp_attrs);
          ])
      ss
  in
  Json.Obj
    [
      ("traceEvents", Json.List ((meta_process :: meta_threads) @ events));
      ("displayTimeUnit", Json.Str "ms");
    ]

let render t =
  let buf = Buffer.create 256 in
  let owner_only = List.for_all (fun s -> s.sp_tid = t.tr_owner) (spans t) in
  List.iter
    (fun s ->
      let attrs =
        match s.sp_attrs with
        | [] -> ""
        | a ->
          "  ["
          ^ String.concat ", "
              (List.map (fun (k, v) -> k ^ "=" ^ Json.to_string v) a)
          ^ "]"
      in
      let tid =
        if owner_only || s.sp_tid = t.tr_owner then ""
        else Printf.sprintf " @d%d" s.sp_tid
      in
      Buffer.add_string buf
        (Printf.sprintf "%s%-*s %9.2f ms%s%s\n"
           (String.make (2 * s.sp_depth) ' ')
           (32 - (2 * s.sp_depth))
           s.sp_name (duration_ms s) attrs tid))
    (spans t);
  Buffer.contents buf
