(** Minimal JSON tree used by the telemetry exporters and the CLI's
    [--json] output. Self-contained (no external dependency): the
    encoder escapes per RFC 8259, floats are printed with enough
    precision to round-trip, and the parser accepts exactly the
    documents the encoder emits (plus whitespace), which is all the
    test-suite round-trips need. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : ?minify:bool -> t -> string
(** [minify] defaults to [true]; when [false], pretty-prints with
    2-space indentation. *)

val pp : Format.formatter -> t -> unit
(** Pretty-printing (non-minified) on a formatter. *)

val of_string : string -> (t, string) result
(** Parse a JSON document. Numbers with a ['.'], exponent, or out of
    [int] range become [Float]; everything else integral becomes
    [Int]. *)

val member : string -> t -> t option
(** [member key (Obj _)] looks up [key]; [None] on missing key or
    non-object. *)

val equal : t -> t -> bool
(** Structural equality; object fields are compared order-insensitively. *)
