(** Nanosecond monotonic clock backing the tracer. The default source is
    the CLOCK_MONOTONIC stub shipped with Bechamel, so span timestamps
    are immune to wall-clock adjustments and cost no allocation
    ([@@noalloc] external). Tests may substitute a deterministic source. *)

val now_ns : unit -> int64
(** Current time in nanoseconds from an arbitrary (but fixed) origin. *)

val set_source : (unit -> int64) -> unit
(** Replace the clock source (testing). *)

val reset_source : unit -> unit
(** Restore the default monotonic source. *)

val ns_to_us : int64 -> float
(** Convenience: nanoseconds to (fractional) microseconds, the unit of
    Chrome [trace_event] timestamps. *)

val ns_to_ms : int64 -> float
