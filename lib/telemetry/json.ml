type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* JSON has no NaN/Infinity; clamp to null like most encoders. *)
let float_repr f =
  match Float.classify_float f with
  | Float.FP_nan | Float.FP_infinite -> "null"
  | _ ->
    if Float.is_integer f && Float.abs f < 1e15 then
      Printf.sprintf "%.1f" f
    else
      let s = Printf.sprintf "%.17g" f in
      let short = Printf.sprintf "%.12g" f in
      if float_of_string short = f then short else s

let to_string ?(minify = true) v =
  let buf = Buffer.create 256 in
  let nl indent =
    if not minify then begin
      Buffer.add_char buf '\n';
      Buffer.add_string buf (String.make indent ' ')
    end
  in
  let rec go indent = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f -> Buffer.add_string buf (float_repr f)
    | Str s -> escape buf s
    | List [] -> Buffer.add_string buf "[]"
    | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          nl (indent + 2);
          go (indent + 2) item)
        items;
      nl indent;
      Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, item) ->
          if i > 0 then Buffer.add_char buf ',';
          nl (indent + 2);
          escape buf k;
          Buffer.add_char buf ':';
          if not minify then Buffer.add_char buf ' ';
          go (indent + 2) item)
        fields;
      nl indent;
      Buffer.add_char buf '}'
  in
  go 0 v;
  Buffer.contents buf

let pp fmt v = Format.pp_print_string fmt (to_string ~minify:false v)

exception Parse of string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some x when x = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %c" c)
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      v
    end
    else fail ("expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' -> advance ()
        | '\\' ->
          advance ();
          (if !pos >= n then fail "unterminated escape"
           else
             match s.[!pos] with
             | '"' -> Buffer.add_char buf '"'; advance ()
             | '\\' -> Buffer.add_char buf '\\'; advance ()
             | '/' -> Buffer.add_char buf '/'; advance ()
             | 'n' -> Buffer.add_char buf '\n'; advance ()
             | 'r' -> Buffer.add_char buf '\r'; advance ()
             | 't' -> Buffer.add_char buf '\t'; advance ()
             | 'b' -> Buffer.add_char buf '\b'; advance ()
             | 'f' -> Buffer.add_char buf '\012'; advance ()
             | 'u' ->
               advance ();
               if !pos + 4 > n then fail "short \\u escape";
               let code = int_of_string ("0x" ^ String.sub s !pos 4) in
               pos := !pos + 4;
               (* Only BMP code points below 0x80 are emitted raw by our
                  encoder; decode those, keep others as replacement. *)
               if code < 0x80 then Buffer.add_char buf (Char.chr code)
               else Buffer.add_string buf "\xef\xbf\xbd"
             | c -> fail (Printf.sprintf "bad escape \\%c" c));
          go ()
        | c -> Buffer.add_char buf c; advance (); go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let numchar c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && numchar s.[!pos] do
      advance ()
    done;
    let lit = String.sub s start (!pos - start) in
    if String.contains lit '.' || String.contains lit 'e' || String.contains lit 'E'
    then Float (float_of_string lit)
    else
      match int_of_string_opt lit with
      | Some i -> Int i
      | None -> Float (float_of_string lit)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let rec fields acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); fields ((k, v) :: acc)
          | Some '}' -> advance (); List.rev ((k, v) :: acc)
          | _ -> fail "expected , or }"
        in
        Obj (fields [])
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let rec items acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); items (v :: acc)
          | Some ']' -> advance (); List.rev (v :: acc)
          | _ -> fail "expected , or ]"
        in
        List (items [])
      end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected %c" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse msg -> Error msg
  | exception Failure msg -> Error msg

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let rec equal a b =
  match (a, b) with
  | Null, Null -> true
  | Bool x, Bool y -> x = y
  | Int x, Int y -> x = y
  | Float x, Float y -> x = y || (Float.is_nan x && Float.is_nan y)
  | Str x, Str y -> x = y
  | List xs, List ys ->
    List.length xs = List.length ys && List.for_all2 equal xs ys
  | Obj xs, Obj ys ->
    let sort = List.sort (fun (k1, _) (k2, _) -> compare k1 k2) in
    let xs = sort xs and ys = sort ys in
    List.length xs = List.length ys
    && List.for_all2 (fun (k1, v1) (k2, v2) -> k1 = k2 && equal v1 v2) xs ys
  | _ -> false
