open Hlsb_ir

(* Wide-arithmetic workload family: big-integer modular multiply /
   squaring in the style of the VDF FPGA modular-squaring entries.

   The datapath is the classic low-latency structure those designs use:

     1. the operands are split into [limb]-bit limbs; every pair of limbs
        feeds a DSP-mapped partial-product multiplier (limb <= 9 keeps
        each product within one 18-bit DSP input port, latency 1);
     2. the partial products land in weight columns and are reduced by
        carry-save compressor layers — each 3:2 compressor is two XORs
        (sum) plus a three-AND/two-OR majority (carry), with the carry
        word promoted to the next column through a free Concat shift;
        a column holding six or more values takes two 3:2 groups in the
        same layer (the 6:3 arrangement);
     3. a wide reduction stage folds the upper columns back into the
        lower half using the pseudo-Mersenne identity
        2^(n*limb) === 3 (mod 2^(n*limb) - 3), i.e. each high column is
        tripled (v + (v << 1)) and re-enters at weight w - n;
     4. a limb-granular carry-propagate tail ripples the column sums into
        output digits — deliberately *not* one monolithic wide adder,
        which is exactly the structure the VDF entries exist to avoid.

   Every limb is read by [n] multipliers, so the generator manufactures
   the paper's implicit data broadcasts at fanouts far beyond the Table-1
   suite; the parameter sweep below pushes lowered netlists past 100k
   cells. The builder is a pure function of its parameters: same
   arguments, byte-identical DAG, at any job count. *)

let cdiv a b = (a + b - 1) / b
let limbs ~bits ~limb = cdiv bits limb

(* Lowered-netlist cell count grows quadratically in the limb count
   (n^2 partial products, ~n^2 compressors, plus their pipeline
   registers); the 14 n^2 coefficient is measured on the lowered
   netlists (original recipe, xcvu9p) and is only a coarse pre-compile
   estimate for picking sweep points. *)
let approx_cells ~bits ~limb ~lanes =
  let n = limbs ~bits ~limb in
  lanes * 14 * n * n

let kernel ?(bits = 256) ?(limb = 8) ?(square = true) ?(lane = 0) () =
  if limb < 2 || limb > 9 then
    invalid_arg "Bigmul.kernel: limb must be in 2..9 (single-DSP products)";
  if bits < 2 * limb then invalid_arg "Bigmul.kernel: bits < 2*limb";
  let n = limbs ~bits ~limb in
  let word_w = n * limb in
  let pw = 2 * limb in
  let dag = Dag.create () in
  let word_dt = Dtype.Uint word_w in
  let width_of v = Dtype.width (Dag.dtype dag v) in
  let a_fifo =
    Dag.add_fifo dag ~name:(Printf.sprintf "a%d" lane) ~dtype:word_dt ~depth:8
  in
  let a_word = Dag.fifo_read dag ~fifo:a_fifo in
  let b_word =
    if square then a_word
    else
      Dag.fifo_read dag
        ~fifo:
          (Dag.add_fifo dag
             ~name:(Printf.sprintf "b%d" lane)
             ~dtype:word_dt ~depth:8)
  in
  let limb_of word i =
    Dag.op dag
      (Op.Slice (((i + 1) * limb) - 1, i * limb))
      ~dtype:(Dtype.Uint limb) [ word ]
  in
  let a = Array.init n (limb_of a_word) in
  let b = if square then a else Array.init n (limb_of b_word) in
  let zero1 = Dag.const dag ~dtype:(Dtype.Uint 1) 0L in
  (* v << 1, as wiring: Concat with a zero bit (high part first). *)
  let shl1 v =
    Dag.op dag Op.Concat ~dtype:(Dtype.Uint (width_of v + 1)) [ v; zero1 ]
  in
  (* 3:2 carry-save compressor over product words. *)
  let csa x y z =
    let w = max (width_of x) (max (width_of y) (width_of z)) in
    let dt = Dtype.Uint w in
    let sum = Dag.op dag Op.Xor ~dtype:dt [ Dag.op dag Op.Xor ~dtype:dt [ x; y ]; z ] in
    let xy = Dag.op dag Op.And_ ~dtype:dt [ x; y ] in
    let xz = Dag.op dag Op.And_ ~dtype:dt [ x; z ] in
    let yz = Dag.op dag Op.And_ ~dtype:dt [ y; z ] in
    let maj =
      Dag.op dag Op.Or_ ~dtype:dt [ Dag.op dag Op.Or_ ~dtype:dt [ xy; xz ]; yz ]
    in
    (sum, shl1 maj)
  in
  (* Partial-product rows: one single-DSP multiplier per limb pair. A
     squaring reads each a-limb 2n times — the implicit broadcast. *)
  let ncols = 2 * n in
  let cols = Array.make ncols [] in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      let p = Dag.op dag Op.Mul ~dtype:(Dtype.Uint pw) [ a.(i); b.(j) ] in
      cols.(i + j) <- p :: cols.(i + j)
    done
  done;
  let cols = ref (Array.map List.rev cols) in
  (* Compressor-tree layers: every column splits into 3:2 groups; carries
     enter the next column in the *next* layer (Dadda discipline). A carry
     out of the top column would carry weight 2^(2n*limb) = 9 (mod M);
     re-enter it at its reduced weight n instead of widening the grid. *)
  let reduced = ref false in
  while not !reduced do
    let prev = !cols in
    let next = Array.make ncols [] in
    let changed = ref false in
    for w = 0 to ncols - 1 do
      let rec go = function
        | x :: y :: z :: rest ->
          changed := true;
          let sum, carry = csa x y z in
          next.(w) <- sum :: next.(w);
          let cw = if w + 1 < ncols then w + 1 else n in
          next.(cw) <- carry :: next.(cw);
          go rest
        | rest -> List.iter (fun v -> next.(w) <- v :: next.(w)) rest
      in
      go prev.(w)
    done;
    cols := Array.map List.rev next;
    reduced := not !changed
  done;
  (* Per-column carry-save output: at most two values per column now. *)
  let col_value w =
    match !cols.(w) with
    | [] -> None
    | [ v ] -> Some v
    | [ x; y ] ->
      let wd = 1 + max (width_of x) (width_of y) in
      Some (Dag.op dag Op.Add ~dtype:(Dtype.Uint wd) [ x; y ])
    | _ -> assert false
  in
  (* Wide reduction stage: fold columns >= n into the low half via
     2^(n*limb) === 3 (mod M): triple and re-enter at weight w - n. *)
  let low = Array.make n [] in
  for w = ncols - 1 downto 0 do
    match col_value w with
    | None -> ()
    | Some v ->
      if w < n then low.(w) <- v :: low.(w)
      else begin
        let tripled =
          Dag.op dag Op.Add ~dtype:(Dtype.Uint (width_of v + 2)) [ v; shl1 v ]
        in
        low.(w - n) <- tripled :: low.(w - n)
      end
  done;
  (* Limb-granular carry-propagate tail: ripple the folded columns into
     digits, the carry of each limb entering the next column's sum. *)
  let carry = ref None in
  let digits = ref [] in
  for w = 0 to n - 1 do
    let vs = low.(w) @ Option.to_list !carry in
    let sum =
      match vs with
      | [] -> Dag.const dag ~dtype:(Dtype.Uint limb) 0L
      | first :: rest ->
        List.fold_left
          (fun acc v ->
            let wd = 1 + max (width_of acc) (width_of v) in
            Dag.op dag Op.Add ~dtype:(Dtype.Uint wd) [ acc; v ])
          first rest
    in
    let sw = width_of sum in
    let digit =
      if sw <= limb then sum
      else Dag.op dag (Op.Slice (limb - 1, 0)) ~dtype:(Dtype.Uint limb) [ sum ]
    in
    carry :=
      if sw > limb then
        Some (Dag.op dag (Op.Slice (sw - 1, limb)) ~dtype:(Dtype.Uint (sw - limb)) [ sum ])
      else None;
    digits := digit :: !digits
  done;
  (* !digits is already most-significant first. *)
  let result = Dag.op dag Op.Concat ~dtype:word_dt !digits in
  let out =
    Dag.add_fifo dag ~name:(Printf.sprintf "r%d" lane) ~dtype:word_dt ~depth:8
  in
  ignore (Dag.fifo_write dag ~fifo:out ~value:result);
  Kernel.create
    ~name:(Printf.sprintf "bm%d_%d" bits lane)
    ~trip_count:8192 dag

let dataflow ?(bits = 256) ?(limb = 8) ?(square = true) ?(lanes = 2) () =
  if lanes < 1 then invalid_arg "Bigmul.dataflow: lanes < 1";
  let df = Dataflow.create () in
  let word_dt = Dtype.Uint (limbs ~bits ~limb * limb) in
  let procs =
    List.init lanes (fun lane ->
      let k = kernel ~bits ~limb ~square ~lane () in
      let p = Dataflow.add_process df ~name:k.Kernel.name ~kernel:k () in
      ignore
        (Dataflow.add_channel df
           ~name:(Printf.sprintf "a%d" lane)
           ~src:(-1) ~dst:p ~dtype:word_dt ~depth:8 ());
      if not square then
        ignore
          (Dataflow.add_channel df
             ~name:(Printf.sprintf "b%d" lane)
             ~src:(-1) ~dst:p ~dtype:word_dt ~depth:8 ());
      ignore
        (Dataflow.add_channel df
           ~name:(Printf.sprintf "r%d" lane)
           ~src:p ~dst:(-1) ~dtype:word_dt ~depth:8 ());
      p)
  in
  (* The lanes advance one operand per initiation in lockstep (the VDF
     harness feeds them from one command stream): a start-synchronization
     group — the pipeline-control broadcast of section 4.3. *)
  if lanes > 1 then Dataflow.add_sync_group df procs;
  df

(* Sweep points for the scale bench, CI smoke, and the fuzz generators.
   Cell counts are measured on the lowered netlists (original recipe,
   xcvu9p, which the largest point fills to ~90% of its slices — the
   Dtype 512-bit width cap bounds a single lane near 60k cells, so scale
   beyond that comes from extra lanes):

     bm128      ~7k cells      bm256x2   ~29k cells   (the Suite entry)
     bm420x2   ~104k cells  (the >=100k acceptance point)               *)
let sweep =
  [
    ("bm128", (128, 8, 1));
    ("bm256x2", (256, 8, 2));
    ("bm420x2", (420, 7, 2));
  ]

let build_point ~bits ~limb ~lanes () = dataflow ~bits ~limb ~lanes ()

let spec =
  Spec.make ~name:"Modular Squaring" ~broadcast:"Pipe. Ctrl. & Data"
    ~device:Hlsb_device.Device.ultrascale_plus
    ~build:(fun () -> dataflow ())
    ~paper:
      {
        (* VDF-FPGA-style wide-arithmetic entry, not a Table-1 row: the
           reference numbers follow the round-1 low-latency squarers
           (DSP-bound, modest BRAM, ~150 -> ~250 MHz once the broadcast
           structure is pipelined). *)
        Spec.p_lut = (34, 36);
        p_ff = (29, 38);
        p_bram = (2, 2);
        p_dsp = (61, 61);
        p_freq = (146, 251);
      }
