(** The nine Table-1 benchmarks in the paper's row order, followed by the
    wide-arithmetic modular-squaring workload ({!Bigmul}) that scales the
    broadcast structure past the Table-1 sizes. *)

val all : Spec.t list
val find : string -> Spec.t option
