let all =
  [
    Genome.spec;
    Lstm.spec;
    Face_detect.spec;
    Matmul.spec;
    Stream_buffer.spec;
    Stencil.spec;
    Vector_arith.spec;
    Hbm_stencil.spec;
    Pattern_match.spec;
    Bigmul.spec;
  ]

let find name = List.find_opt (fun s -> s.Spec.sp_name = name) all
