(** Chaining-aware operation scheduling, in two modes:

    - [Baseline] uses the fanout-blind HLS delay library (§2): an operator
      costs the same whether it feeds one consumer or a thousand, so long
      chains form across broadcast sources and the post-route clock pays for
      it (Fig. 2's add+sub example).
    - [Broadcast_aware] uses the calibrated model of §4.1: each node's
      delay is looked up at its broadcast factor (how many times its value
      is read in the same cycle), over-long chains split at the broadcast,
      and operators whose calibrated delay alone exceeds the target get
      extra internal pipeline stages for downstream retiming to use.

    Scheduling is ASAP with operator chaining under a target clock period.
    Broadcast factors depend on cycle assignment and vice versa, so the
    broadcast-aware mode starts from a conservative factor (all consumers)
    and relaxes it with a re-scheduling pass using the factors the first
    pass implies. *)

open Hlsb_ir

type mode =
  | Baseline
  | Broadcast_aware of Hlsb_delay.Calibrate.t

type inject = {
  inj_top : int;
      (** how many of the widest-read value-producing nodes get forced
          distribution stages (ties broken by node id, deterministic) *)
  inj_levels : int;  (** extra register levels per selected value *)
}
(** Register injection on the worst broadcast chains: the Fmax explorer's
    generalization of the fixed [tree_threshold] policy. Lowering
    realizes the extra [e_bcast_levels] as deeper pipelined fanout trees
    (broadcast-aware recipes) or register chains (baseline recipes).
    [inj_top = 0] or [inj_levels = 0] is a no-op. *)

type entry = {
  e_cycle : int;  (** cycle in which the node starts *)
  e_start : float;  (** chain offset within the cycle, ns *)
  e_delay : float;  (** per-stage delay the scheduler budgeted *)
  e_latency : int;
      (** register stages after this node: intrinsic + added_pipe +
          bcast_levels *)
  e_added_pipe : int;
      (** §4.1 stages added because the calibrated delay alone exceeds the
          target (realized as operator/address pipelining) *)
  e_bcast_levels : int;
      (** distribution stages reserved for this node's own widely-read
          value (realized as a pipelined fanout tree) *)
  e_factor : int;  (** input-side broadcast factor used for the delay lookup *)
}

type t = {
  kernel : Kernel.t;
  mode_label : string;
  target_ns : float;
  entries : entry array;  (** indexed by DAG node id *)
  depth : int;  (** pipeline depth in cycles (latest finish, exclusive) *)
}

val run : ?target_mhz:float -> ?inject:inject -> mode -> Kernel.t -> t
(** Default target is 300 MHz (more aggressive than any of the paper's
    original designs achieve, so the schedule, not the target, binds).
    [?inject] (default none) forces extra distribution stages on the
    widest-read values — see {!inject}. *)

val finish_cycle : t -> Dag.node -> int
(** First cycle in which the node's result is available to consumers. *)

val chain_ok : t -> bool
(** True if no within-cycle chain exceeds the target period (under the
    delays the scheduler itself used). Tests assert this for both modes. *)

val same_cycle_factor : t -> Dag.node -> int
(** Number of reads of this node's value by consumers scheduled in the
    node's own result cycle (the physical comb fanout of the value). *)

val registers_inserted : t -> int
(** Total added pipeline stages (the §4.1 register modules), for overhead
    reporting ("pipeline length 9 -> 10" in §5.2). *)
