open Hlsb_ir
module Calibrate = Hlsb_delay.Calibrate
module Oplib = Hlsb_delay.Oplib
module Trace = Hlsb_telemetry.Trace
module Metrics = Hlsb_telemetry.Metrics

type mode =
  | Baseline
  | Broadcast_aware of Calibrate.t

type inject = {
  inj_top : int;
  inj_levels : int;
}

type entry = {
  e_cycle : int;
  e_start : float;
  e_delay : float;
  e_latency : int;
  e_added_pipe : int;
  e_bcast_levels : int;
  e_factor : int;
}

type t = {
  kernel : Kernel.t;
  mode_label : string;
  target_ns : float;
  entries : entry array;
  depth : int;
}

let eps = 1e-9

(* A value read by at least this many instructions gets its own broadcast
   distribution stage(s) under the aware flow — the paper's "insert register
   modules to the source code". *)
let tree_threshold = 16

let leaf_fanout = 8

(* Register levels the RTL generator will spend distributing a broadcast of
   the given read count (pipelined fanout tree). *)
let tree_levels reads =
  if reads <= 64 then 1 else if reads <= 512 then 2 else 3

let intrinsic_latency dag v =
  match Dag.kind dag v with
  | Dag.Operation o -> Oplib.latency_cycles o (Dag.dtype dag v)
  | Dag.Load _ -> 1 (* synchronous BRAM read *)
  | Dag.Input _ | Dag.Const _ | Dag.Store _ | Dag.Fifo_read _
  | Dag.Fifo_write _ | Dag.Output _ ->
    0

let produces_value dag v =
  match Dag.kind dag v with
  | Dag.Store _ | Dag.Fifo_write _ | Dag.Output _ | Dag.Const _ -> false
  | Dag.Input _ | Dag.Operation _ | Dag.Load _ | Dag.Fifo_read _ -> true

(* The operator delay lookup is keyed on the *input-side* broadcast factor:
   the operator reading a widely-shared variable is the one whose input net
   carries the broadcast (Fig. 2: the add after `source`). *)
let node_delay mode dag v ~factor =
  let dt = Dag.dtype dag v in
  match Dag.kind dag v with
  | Dag.Input _ | Dag.Const _ -> 0.
  | Dag.Fifo_read _ | Dag.Fifo_write _ -> 0.55 (* FIFO interface logic *)
  | Dag.Output _ -> 0.05
  | Dag.Operation o -> (
    match mode with
    | Baseline -> Oplib.predicted o dt
    | Broadcast_aware cal -> Calibrate.op_delay cal o dt ~factor)
  | Dag.Load b -> (
    let buf = Dag.buffer dag b in
    match mode with
    | Baseline -> Oplib.mem_read_predicted
    | Broadcast_aware cal ->
      Calibrate.mem_read_delay cal
        ~width:(Dtype.width buf.Dag.b_dtype)
        ~depth:buf.Dag.b_depth)
  | Dag.Store b -> (
    let buf = Dag.buffer dag b in
    match mode with
    | Baseline -> Oplib.mem_write_predicted
    | Broadcast_aware cal ->
      Calibrate.mem_write_delay cal
        ~width:(Dtype.width buf.Dag.b_dtype)
        ~depth:buf.Dag.b_depth)

(* One ASAP pass. [reads.(a)] is the read count used both for the delay
   factor of consumers of [a] and for deciding whether [a]'s value gets
   broadcast-distribution stages. *)
(* [extra.(v)] is forced distribution levels on node [v]'s value beyond
   what the read-count policy decides — the explorer's register-injection
   axis. Zero everywhere reproduces the policy schedule exactly. *)
let pass ~mode ~target ~extra (k : Kernel.t) reads =
  let dag = k.Kernel.dag in
  let n = Dag.n_nodes dag in
  let aware = match mode with Baseline -> false | Broadcast_aware _ -> true in
  let entries =
    Array.make n
      {
        e_cycle = 0;
        e_start = 0.;
        e_delay = 0.;
        e_latency = 0;
        e_added_pipe = 0;
        e_bcast_levels = 0;
        e_factor = 1;
      }
  in
  let tree'd a = aware && produces_value dag a && reads.(a) >= tree_threshold in
  Dag.iter dag (fun v ->
    (* Input-side broadcast factor: the largest fanout among this node's
       argument nets; tree-distributed arguments arrive from a leaf register
       driving at most [leaf_fanout] readers. *)
    let factor =
      List.fold_left
        (fun acc a ->
          let f = if tree'd a then min reads.(a) leaf_fanout else reads.(a) in
          max acc f)
        1 (Dag.args dag v)
    in
    let raw_delay = node_delay mode dag v ~factor in
    let intrinsic = intrinsic_latency dag v in
    (* §4.1: an operator whose calibrated delay alone exceeds the target
       gets additional pipelining; downstream retiming (placement
       refinement + fanout trees) spreads the delay over the stages.
       Accesses to buffers spanning many physical BRAM units always get
       distribution stages ("additional pipelining will be added to
       variables interacting with the buffer"). *)
    let mem_units =
      match Dag.kind dag v with
      | Dag.Load b | Dag.Store b ->
        let buf = Dag.buffer dag b in
        Hlsb_device.Device.bram18_for
          ~width:(Dtype.width buf.Dag.b_dtype)
          ~depth:buf.Dag.b_depth
      | Dag.Input _ | Dag.Const _ | Dag.Operation _ | Dag.Fifo_read _
      | Dag.Fifo_write _ | Dag.Output _ ->
        0
    in
    let mem_floor =
      if not aware then 0
      else if mem_units > 1024 then 2
      else if mem_units > 16 then 1
      else 0
    in
    let added_split =
      let by_delay =
        if aware && raw_delay > target then
          int_of_float (ceil (raw_delay /. target)) - 1
        else 0
      in
      max by_delay mem_floor
    in
    (* Broadcast distribution stages for this node's own value. *)
    let added_bcast =
      (if tree'd v then tree_levels reads.(v) else 0) + extra.(v)
    in
    let delay = raw_delay /. float_of_int (added_split + 1) in
    let latency = intrinsic + added_split + added_bcast in
    let ready =
      List.fold_left
        (fun acc a ->
          let ea = entries.(a) in
          let t_avail =
            if ea.e_latency > 0 then
              float_of_int (ea.e_cycle + ea.e_latency) *. target
            else
              (float_of_int ea.e_cycle *. target) +. ea.e_start +. ea.e_delay
          in
          max acc t_avail)
        0. (Dag.args dag v)
    in
    let cycle = int_of_float ((ready +. eps) /. target) in
    let offset = ready -. (float_of_int cycle *. target) in
    let offset = if offset < 0. then 0. else offset in
    let cycle, offset =
      if offset +. delay > target +. eps && offset > eps then (cycle + 1, 0.)
      else (cycle, offset)
    in
    entries.(v) <-
      {
        e_cycle = cycle;
        e_start = offset;
        e_delay = delay;
        e_latency = latency;
        e_added_pipe = added_split;
        e_bcast_levels = added_bcast;
        e_factor = factor;
      });
  entries

let result_cycle entries v = entries.(v).e_cycle + entries.(v).e_latency

(* Reads of each node's value by consumers scheduled in its result cycle
   (later consumers read a registered copy, so they do not load the comb
   net). *)
let same_cycle_reads entries dag =
  let n = Dag.n_nodes dag in
  let counts = Array.make n 0 in
  Dag.iter dag (fun u ->
    List.iter
      (fun a ->
        if entries.(u).e_cycle = result_cycle entries a then
          counts.(a) <- counts.(a) + 1)
      (Dag.args dag u));
  counts

(* The scheduler budgets chains against the target minus a clock
   uncertainty margin, like the commercial tool's default. *)
let clock_uncertainty = 0.18

let label_of_mode = function
  | Baseline -> "baseline"
  | Broadcast_aware _ -> "broadcast-aware"

(* Feed the telemetry registry (§4.1's quantities): the raw read count of
   every value and the input-side factor the schedule actually budgeted
   after distribution trees capped the leaf fanout. *)
let record_metrics t =
  match Metrics.installed () with
  | None -> ()
  | Some _ ->
    let dag = t.kernel.Kernel.dag in
    Dag.iter dag (fun v ->
      if produces_value dag v then begin
        let reads = Dag.broadcast_factor dag v in
        if reads > 0 then Metrics.observe_int "sched.broadcast_factor" reads
      end;
      Metrics.observe_int "sched.fanout_after_split" t.entries.(v).e_factor);
    let regs =
      Array.fold_left
        (fun acc e -> acc + e.e_added_pipe + e.e_bcast_levels)
        0 t.entries
    in
    Metrics.incr "sched.kernels";
    Metrics.incr ~by:regs "sched.registers_inserted"

(* The injection set: the [inj_top] widest-read value-producing nodes,
   ties broken by node id so the choice is deterministic. Each selected
   value gets [inj_levels] forced distribution stages — the explorer's
   generalization of the one-shot tree_threshold policy. *)
let injection_levels inject dag n total_reads =
  let extra = Array.make n 0 in
  (match inject with
  | None -> ()
  | Some { inj_top; inj_levels } when inj_top <= 0 || inj_levels <= 0 -> ()
  | Some { inj_top; inj_levels } ->
    let cands = ref [] in
    Dag.iter dag (fun v ->
      if produces_value dag v && total_reads.(v) >= 2 then cands := v :: !cands);
    let sorted =
      List.sort
        (fun a b ->
          match compare total_reads.(b) total_reads.(a) with
          | 0 -> compare a b
          | c -> c)
        !cands
    in
    List.iteri (fun i v -> if i < inj_top then extra.(v) <- inj_levels) sorted);
  extra

let run_body ~target_mhz ~inject mode (k : Kernel.t) =
  if target_mhz <= 0. then invalid_arg "Schedule.run: target <= 0";
  let target = 1000. /. target_mhz *. (1. -. clock_uncertainty) in
  let dag = k.Kernel.dag in
  let n = Dag.n_nodes dag in
  (* Conservative first estimate: every read lands in one cycle. *)
  let total_reads = Array.init n (fun v -> Dag.broadcast_factor dag v) in
  let extra = injection_levels inject dag n total_reads in
  let entries =
    match mode with
    | Baseline -> pass ~mode ~target ~extra k total_reads
    | Broadcast_aware _ ->
      let e1 = pass ~mode ~target ~extra k total_reads in
      (* Refine: only same-cycle readers load the net; +1 for the boundary
         register when the value also has later consumers. *)
      let sc = same_cycle_reads e1 dag in
      let refined =
        Array.mapi
          (fun v c ->
            let later =
              List.exists
                (fun u -> e1.(u).e_cycle > result_cycle e1 v)
                (Dag.consumers dag v)
            in
            (* Values that were given distribution stages keep their full
               read count: the tree still has to reach every reader. *)
            if
              produces_value dag v
              && total_reads.(v) >= tree_threshold
            then total_reads.(v)
            else if later then c + 1
            else max 1 c)
          sc
      in
      pass ~mode ~target ~extra k refined
  in
  (* Source nodes (inputs, constants, FIFO reads) are staged as late as
     possible: a value first consumed in cycle c is read/registered in
     cycle c-1, not held live from cycle 0. This is both what the HLS tool
     emits and what gives the Fig. 17 width profile its waist. *)
  Dag.iter dag (fun v ->
    match Dag.kind dag v with
    | Dag.Input _ | Dag.Const _ | Dag.Fifo_read _ ->
      let consumers = Dag.consumers dag v in
      if consumers <> [] then begin
        let first_use =
          List.fold_left
            (fun acc u -> min acc entries.(u).e_cycle)
            max_int consumers
        in
        let e = entries.(v) in
        let late = max e.e_cycle (first_use - 1 - e.e_latency) in
        entries.(v) <- { e with e_cycle = late; e_start = 0. }
      end
    | Dag.Operation _ | Dag.Load _ | Dag.Store _ | Dag.Fifo_write _
    | Dag.Output _ ->
      ());
  let depth =
    let m = ref 0 in
    Dag.iter dag (fun v -> m := max !m (result_cycle entries v));
    !m + 1
  in
  let t =
    { kernel = k; mode_label = label_of_mode mode; target_ns = target; entries; depth }
  in
  record_metrics t;
  t

let run ?(target_mhz = 300.) ?inject mode (k : Kernel.t) =
  if not (Trace.enabled ()) then run_body ~target_mhz ~inject mode k
  else
    Trace.with_span "schedule"
      ~attrs:
        [
          ("kernel", Hlsb_telemetry.Json.Str k.Kernel.name);
          ("mode", Hlsb_telemetry.Json.Str (label_of_mode mode));
        ]
      (fun () -> run_body ~target_mhz ~inject mode k)

let finish_cycle t v = result_cycle t.entries v

let chain_ok t =
  Array.for_all
    (fun e -> e.e_start +. e.e_delay <= max t.target_ns e.e_delay +. 1e-6)
    t.entries

let same_cycle_factor t v =
  let dag = t.kernel.Kernel.dag in
  let rc = result_cycle t.entries v in
  List.fold_left
    (fun acc u ->
      let reads =
        List.length (List.filter (fun a -> a = v) (Dag.args dag u))
      in
      if t.entries.(u).e_cycle = rc then acc + reads else acc)
    0 (Dag.consumers dag v)

let registers_inserted t =
  Array.fold_left
    (fun acc e -> acc + e.e_added_pipe + e.e_bcast_levels)
    0 t.entries
