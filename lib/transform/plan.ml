module Ast = Hlsb_frontend.Ast
module Diag = Hlsb_util.Diag

type item =
  | Source of Pass.request
  | Pragmas
  | Channel_reuse

type t = item list

let identity = []
let is_identity p = p = []

let item_to_string = function
  | Source r -> Pass.request_to_string r
  | Pragmas -> "pragmas"
  | Channel_reuse -> "channel-reuse"

let to_string p = String.concat ";" (List.map item_to_string p)

let parse_item tok =
  let open Pass in
  let err () = Error (Printf.sprintf "bad transform item %S" tok) in
  let key, value =
    match String.index_opt tok '=' with
    | Some i ->
      ( String.sub tok 0 i,
        Some (String.sub tok (i + 1) (String.length tok - i - 1)) )
    | None -> (tok, None)
  in
  let int_of s = int_of_string_opt s in
  match (key, value) with
  | "pragmas", None -> Ok Pragmas
  | "channel-reuse", None -> Ok Channel_reuse
  | "fission", None -> Ok (Source (Fission { f_loop = None }))
  | "fission", Some l when l <> "" -> Ok (Source (Fission { f_loop = Some l }))
  | "fusion", None -> Ok (Source (Fusion { fu_loop = None }))
  | "fusion", Some l when l <> "" -> Ok (Source (Fusion { fu_loop = Some l }))
  | "stream", None -> Ok (Source (Stream_insert { si_array = None }))
  | "stream", Some a when a <> "" ->
    Ok (Source (Stream_insert { si_array = Some a }))
  | "unroll", Some v -> (
    match String.split_on_char ':' v with
    | [ n ] -> (
      match int_of n with
      | Some f -> Ok (Source (Unroll { u_loop = None; u_factor = f }))
      | None -> err ())
    | [ l; n ] when l <> "" -> (
      match int_of n with
      | Some f -> Ok (Source (Unroll { u_loop = Some l; u_factor = f }))
      | None -> err ())
    | _ -> err ())
  | "partition", Some v -> (
    match String.split_on_char ':' v with
    | [ "cyclic"; n ] -> (
      match int_of n with
      | Some f -> Ok (Source (Partition { p_array = None; p_factor = f }))
      | None -> err ())
    | [ "cyclic"; a; n ] when a <> "" -> (
      match int_of n with
      | Some f -> Ok (Source (Partition { p_array = Some a; p_factor = f }))
      | None -> err ())
    | _ -> err ())
  | _ -> err ()

let of_string s =
  let toks =
    String.split_on_char ';' s |> List.map String.trim
    |> List.filter (fun t -> t <> "")
  in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | tok :: rest -> (
      match parse_item tok with
      | Ok item -> go (item :: acc) rest
      | Error e -> Error e)
  in
  go [] toks

let source_requests p =
  List.filter_map (function Source r -> Some r | _ -> None) p

let has_channel_reuse p = List.mem Channel_reuse p

let apply_source plan program =
  try
    Ok
      (List.fold_left
         (fun prog item ->
           match item with
           | Channel_reuse -> prog
           | Source r -> Pass.apply r prog
           | Pragmas ->
             let reqs, _warns = Pass.requests_of_pragmas prog in
             List.fold_left (fun prog r -> Pass.apply r prog) prog reqs)
         program plan)
  with Diag.Diagnostic d -> Error d
