open Hlsb_ir
module Metrics = Hlsb_telemetry.Metrics

type stats = {
  rs_merged : int;
  rs_channels_before : int;
  rs_channels_after : int;
  rs_broadcast_before : int;
  rs_broadcast_after : int;
}

let fifo_id_by_name dag name =
  let r = ref None in
  Array.iteri
    (fun i f -> if f.Dag.f_name = name then r := Some i)
    (Dag.fifos dag);
  !r

let nodes_on_fifo dag ~write fifo_id =
  let acc = ref [] in
  Dag.iter dag (fun v ->
      match (Dag.kind dag v, write) with
      | Dag.Fifo_write f, true when f = fifo_id -> acc := v :: !acc
      | Dag.Fifo_read f, false when f = fifo_id -> acc := v :: !acc
      | _ -> ());
  List.rev !acc

(* Copy a kernel's DAG, skipping the nodes in [drop], remapping any use
   of node [from_] to node [to_], and dropping the named fifos. Nodes in
   [drop] must be unconsumed (FIFO endpoints), and [to_] must precede
   every consumer of [from_] — the caller picks the earlier read as the
   survivor so this holds. Returns the kernel and the old->new node map. *)
let copy_kernel (k : Kernel.t) ~drop ~subst ~drop_fifos =
  let dag = k.Kernel.dag in
  let d' = Dag.create () in
  Array.iter
    (fun (b : Dag.buffer) ->
      ignore
        (Dag.add_buffer d' ~name:b.Dag.b_name ~dtype:b.Dag.b_dtype
           ~depth:b.Dag.b_depth ~partition:b.Dag.b_partition))
    (Dag.buffers dag);
  let fifo_map = Hashtbl.create 8 in
  Array.iteri
    (fun i (f : Dag.fifo) ->
      if not (List.mem f.Dag.f_name drop_fifos) then
        Hashtbl.add fifo_map i
          (Dag.add_fifo d' ~name:f.Dag.f_name ~dtype:f.Dag.f_dtype
             ~depth:f.Dag.f_depth))
    (Dag.fifos dag);
  let node_map = Hashtbl.create 64 in
  let map_node v =
    let v = match List.assoc_opt v subst with Some t -> t | None -> v in
    Hashtbl.find node_map v
  in
  Dag.iter dag (fun v ->
      if not (List.mem v drop) then begin
        let dtype = Dag.dtype dag v in
        let margs () = List.map map_node (Dag.args dag v) in
        let v' =
          match Dag.kind dag v with
          | Dag.Input name -> Dag.input d' ~name ~dtype
          | Dag.Const c -> Dag.const d' ~dtype c
          | Dag.Operation op -> Dag.op d' op ~dtype (margs ())
          | Dag.Load b -> (
            match margs () with
            | [ index ] -> Dag.load d' ~buffer:b ~index
            | _ -> invalid_arg "Reuse.copy_kernel: load arity")
          | Dag.Store b -> (
            match margs () with
            | [ index; value ] -> Dag.store d' ~buffer:b ~index ~value
            | _ -> invalid_arg "Reuse.copy_kernel: store arity")
          | Dag.Fifo_read f -> Dag.fifo_read d' ~fifo:(Hashtbl.find fifo_map f)
          | Dag.Fifo_write f -> (
            match margs () with
            | [ value ] ->
              Dag.fifo_write d' ~fifo:(Hashtbl.find fifo_map f) ~value
            | _ -> invalid_arg "Reuse.copy_kernel: fifo_write arity")
          | Dag.Output name -> (
            match margs () with
            | [ value ] -> Dag.output d' ~name ~value
            | _ -> invalid_arg "Reuse.copy_kernel: output arity")
        in
        Hashtbl.add node_map v v'
      end);
  ( Kernel.create ~name:k.Kernel.name ~ii:k.Kernel.ii
      ~trip_count:k.Kernel.trip_count d',
    node_map )

type candidate = {
  keep : int;  (** surviving channel index *)
  dupe : int;  (** redundant channel index, dropped *)
  cd_src : int;
  cd_dst : int;
  w_dupe : Dag.node;  (** producer's redundant write node *)
  value : Dag.node;  (** the shared value in the producer DAG *)
  r_keep : Dag.node;  (** consumer's surviving read node *)
  r_dupe : Dag.node;  (** consumer's redundant read node *)
}

let find_candidate df =
  let channels = Dataflow.channels df in
  let procs = Dataflow.processes df in
  let nc = Array.length channels in
  let result = ref None in
  for i = 0 to nc - 1 do
    for j = 0 to nc - 1 do
      if !result = None && i <> j then begin
        let ci = channels.(i) and cj = channels.(j) in
        if
          ci.Dataflow.c_src >= 0
          && ci.Dataflow.c_src = cj.Dataflow.c_src
          && ci.Dataflow.c_dst >= 0
          && ci.Dataflow.c_dst = cj.Dataflow.c_dst
          && ci.Dataflow.c_dtype = cj.Dataflow.c_dtype
        then
          match
            ( procs.(ci.Dataflow.c_src).Dataflow.p_kernel,
              procs.(ci.Dataflow.c_dst).Dataflow.p_kernel )
          with
          | Some pk, Some ck -> (
            let pdag = pk.Kernel.dag and cdag = ck.Kernel.dag in
            match
              ( fifo_id_by_name pdag ci.Dataflow.c_name,
                fifo_id_by_name pdag cj.Dataflow.c_name,
                fifo_id_by_name cdag ci.Dataflow.c_name,
                fifo_id_by_name cdag cj.Dataflow.c_name )
            with
            | Some pfi, Some pfj, Some cfi, Some cfj -> (
              match
                ( nodes_on_fifo pdag ~write:true pfi,
                  nodes_on_fifo pdag ~write:true pfj,
                  nodes_on_fifo pdag ~write:false pfi,
                  nodes_on_fifo pdag ~write:false pfj,
                  nodes_on_fifo cdag ~write:false cfi,
                  nodes_on_fifo cdag ~write:false cfj,
                  nodes_on_fifo cdag ~write:true cfi,
                  nodes_on_fifo cdag ~write:true cfj )
              with
              | [ wi ], [ wj ], [], [], [ ri ], [ rj ], [], []
                when Dag.args pdag wi = Dag.args pdag wj && ri < rj ->
                result :=
                  Some
                    {
                      keep = i;
                      dupe = j;
                      cd_src = ci.Dataflow.c_src;
                      cd_dst = ci.Dataflow.c_dst;
                      w_dupe = wj;
                      value = List.hd (Dag.args pdag wi);
                      r_keep = ri;
                      r_dupe = rj;
                    }
              | _ -> ())
            | _ -> ())
          | _ -> ()
      end
    done
  done;
  !result

let merge df cand =
  let channels = Dataflow.channels df in
  let procs = Dataflow.processes df in
  let dupe_name = channels.(cand.dupe).Dataflow.c_name in
  let pk = Option.get procs.(cand.cd_src).Dataflow.p_kernel in
  let ck = Option.get procs.(cand.cd_dst).Dataflow.p_kernel in
  let bf_before = Dag.broadcast_factor pk.Kernel.dag cand.value in
  let pk', pmap =
    copy_kernel pk ~drop:[ cand.w_dupe ] ~subst:[] ~drop_fifos:[ dupe_name ]
  in
  let ck', _ =
    copy_kernel ck ~drop:[ cand.r_dupe ]
      ~subst:[ (cand.r_dupe, cand.r_keep) ]
      ~drop_fifos:[ dupe_name ]
  in
  let bf_after =
    Dag.broadcast_factor pk'.Kernel.dag (Hashtbl.find pmap cand.value)
  in
  let df' = Dataflow.create () in
  Array.iteri
    (fun idx (p : Dataflow.process) ->
      let kernel =
        if idx = cand.cd_src then Some pk'
        else if idx = cand.cd_dst then Some ck'
        else p.Dataflow.p_kernel
      in
      ignore
        (Dataflow.add_process df' ~name:p.Dataflow.p_name
           ?latency:p.Dataflow.p_latency ?kernel ()))
    procs;
  Array.iteri
    (fun idx (c : Dataflow.channel) ->
      if idx <> cand.dupe then
        ignore
          (Dataflow.add_channel df' ~name:c.Dataflow.c_name
             ~src:c.Dataflow.c_src ~dst:c.Dataflow.c_dst
             ~dtype:c.Dataflow.c_dtype ~depth:c.Dataflow.c_depth ()))
    channels;
  List.iter (Dataflow.add_sync_group df') (Dataflow.sync_groups df);
  (df', bf_before, bf_after)

let run df =
  let channels_before = Dataflow.n_channels df in
  let rec go df merged bf_before bf_after budget =
    if budget = 0 then (df, merged, bf_before, bf_after)
    else
      match find_candidate df with
      | None -> (df, merged, bf_before, bf_after)
      | Some cand ->
        let df', b0, b1 = merge df cand in
        go df' (merged + 1) (bf_before + b0) (bf_after + b1) (budget - 1)
  in
  let df', merged, bf_before, bf_after = go df 0 0 0 channels_before in
  let stats =
    {
      rs_merged = merged;
      rs_channels_before = channels_before;
      rs_channels_after = Dataflow.n_channels df';
      rs_broadcast_before = bf_before;
      rs_broadcast_after = bf_after;
    }
  in
  if merged > 0 then begin
    Metrics.incr ~by:merged "transform.reuse.merged";
    Metrics.set_gauge_int "transform.reuse.channels_before" channels_before;
    Metrics.set_gauge_int "transform.reuse.channels_after"
      stats.rs_channels_after;
    Metrics.set_gauge_int "transform.reuse.broadcast_before" bf_before;
    Metrics.set_gauge_int "transform.reuse.broadcast_after" bf_after
  end;
  (df', stats)
