(** Typed source-to-source passes over {!Hlsb_frontend.Ast} — the
    transformations that *create* the paper's implicit broadcasts (loop
    unroll, cyclic array partitioning, loop fission/fusion, stream
    insertion), made explicit and composable so one source elaborates
    into a family of variants.

    Every pass is a total function [Ast.program -> Ast.program]: an
    applicable request rewrites the program, an inapplicable one (factor
    not dividing the trip count, dependence-carrying fission, no
    matching loop/array, ...) raises [Diag.Diagnostic] with stage
    ["transform"] — callers go through {!Plan.apply_source}, which
    returns the payload as a [result]. *)

module Ast = Hlsb_frontend.Ast
module Diag = Hlsb_util.Diag

type request =
  | Unroll of { u_loop : string option; u_factor : int }
      (** Unroll loops over variable [u_loop] (all loops when [None]) by
          [u_factor]: full body replication when the factor covers the
          trip count, else a factor-wide partial unroll (the factor must
          divide the trip count). [unroll] pragmas on a rewritten loop
          are dropped; [pipeline] pragmas stay on the residual loop. *)
  | Partition of { p_array : string option; p_factor : int }
      (** Cyclic-partition the named local/param array (or every
          BRAM-sized array when [None]) into [p_factor] banks, by
          normalizing an [#pragma HLS array_partition variable=a cyclic
          factor=N] that elaboration honours on the buffer. *)
  | Fission of { f_loop : string option }
      (** Split the matching loop's body at every dependence-free point
          into consecutive loops. *)
  | Fusion of { fu_loop : string option }
      (** Merge adjacent loops with identical headers and pragmas whose
          bodies share no dependences. *)
  | Stream_insert of { si_array : string option }
      (** Replace a write-then-read intermediate array between two
          adjacent identically-bounded loops with a [stream<ty>] FIFO. *)

val request_to_string : request -> string
(** Canonical plan-grammar token ({!Plan.of_string} round-trips it). *)

val apply : request -> Ast.program -> Ast.program
(** Raises [Diag.Diagnostic] (stage ["transform"]) when inapplicable. *)

val requests_of_pragmas : Ast.program -> request list * Diag.t list
(** Interpret the pragma strings the parser left on
    [Ast.for_loop.fl_pragmas] (and free-standing [Pragma_stmt]s) as
    typed requests: [unroll factor=N] and [array_partition cyclic
    factor=N] become requests, [pipeline]/[dataflow] are known no-ops,
    anything else yields a [Diag] warning instead of being silently
    ignored. *)
