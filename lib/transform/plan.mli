(** A transform plan: an ordered, serializable composition of
    {!Pass.request}s plus the IR-level channel-reuse step — the unit the
    pipeline caches on and the CLI accepts via
    [hlsbc cc --transform 'unroll=4;partition=cyclic:4;fission'].

    Grammar (items separated by [;], whitespace ignored, empty = identity):
    {v
    item := unroll=N | unroll=LOOP:N
          | partition=cyclic:N | partition=cyclic:ARRAY:N
          | fission | fission=LOOP
          | fusion | fusion=LOOP
          | stream | stream=ARRAY
          | pragmas            (apply the requests implied by #pragmas)
          | channel-reuse      (IR-level, runs on the elaborated network)
    v} *)

module Ast = Hlsb_frontend.Ast
module Diag = Hlsb_util.Diag

type item =
  | Source of Pass.request
  | Pragmas  (** apply the typed requests parsed from the source pragmas *)
  | Channel_reuse  (** {!Reuse.run} on the elaborated [Ir.Dataflow] *)

type t = item list

val identity : t
val is_identity : t -> bool

val of_string : string -> (t, string) result
(** Parse the plan grammar above. [to_string (of_string s)] is canonical:
    a cache key equal for equal plans. *)

val to_string : t -> string
(** Canonical rendering; [""] for the identity plan. *)

val source_requests : t -> Pass.request list
val has_channel_reuse : t -> bool

val apply_source : t -> Ast.program -> (Ast.program, Diag.t) result
(** Run the source-level items in order ([Pragmas] expands via
    {!Pass.requests_of_pragmas} at its position). An inapplicable request
    surfaces as the [Error] payload; [Channel_reuse] items are skipped
    here (the pipeline runs them after elaboration). *)
