module Ast = Hlsb_frontend.Ast
module Elab = Hlsb_frontend.Elab
module Diag = Hlsb_util.Diag

let fail fmt = Diag.fail ~stage:"transform" fmt

type request =
  | Unroll of { u_loop : string option; u_factor : int }
  | Partition of { p_array : string option; p_factor : int }
  | Fission of { f_loop : string option }
  | Fusion of { fu_loop : string option }
  | Stream_insert of { si_array : string option }

let request_to_string = function
  | Unroll { u_loop = None; u_factor } -> Printf.sprintf "unroll=%d" u_factor
  | Unroll { u_loop = Some l; u_factor } ->
    Printf.sprintf "unroll=%s:%d" l u_factor
  | Partition { p_array = None; p_factor } ->
    Printf.sprintf "partition=cyclic:%d" p_factor
  | Partition { p_array = Some a; p_factor } ->
    Printf.sprintf "partition=cyclic:%s:%d" a p_factor
  | Fission { f_loop = None } -> "fission"
  | Fission { f_loop = Some l } -> "fission=" ^ l
  | Fusion { fu_loop = None } -> "fusion"
  | Fusion { fu_loop = Some l } -> "fusion=" ^ l
  | Stream_insert { si_array = None } -> "stream"
  | Stream_insert { si_array = Some a } -> "stream=" ^ a

(* ---- expression/statement utilities ---- *)

let rec subst_expr v repl (e : Ast.expr) : Ast.expr =
  match e with
  | Ast.Var name when name = v -> repl
  | Ast.Int_const _ | Ast.Float_const _ | Ast.Var _ -> e
  | Ast.Field (b, f) -> Ast.Field (subst_expr v repl b, f)
  | Ast.Index (b, i) -> Ast.Index (subst_expr v repl b, subst_expr v repl i)
  | Ast.Binop (op, a, b) ->
    Ast.Binop (op, subst_expr v repl a, subst_expr v repl b)
  | Ast.Unop (op, a) -> Ast.Unop (op, subst_expr v repl a)
  | Ast.Ternary (c, t, f) ->
    Ast.Ternary (subst_expr v repl c, subst_expr v repl t, subst_expr v repl f)
  | Ast.Call (fn, args) -> Ast.Call (fn, List.map (subst_expr v repl) args)
  | Ast.Method (obj, m, args) ->
    Ast.Method (obj, m, List.map (subst_expr v repl) args)

(* Substitute [Var v := repl] through a block, honouring shadowing: a
   redeclaration of [v] hides it for the rest of the block, and a nested
   loop over [v] hides it in that loop's body. *)
let rec subst_stmts v repl stmts =
  match stmts with
  | [] -> []
  | s :: rest ->
    let s' = subst_stmt v repl s in
    let shadowed =
      match s with
      | Ast.Decl (_, n, _, _) | Ast.Stream_decl (_, n) -> n = v
      | _ -> false
    in
    if shadowed then s' :: rest else s' :: subst_stmts v repl rest

and subst_stmt v repl (s : Ast.stmt) : Ast.stmt =
  match s with
  | Ast.Pragma_stmt _ | Ast.Stream_decl _ -> s
  | Ast.Decl (ty, n, sz, init) ->
    Ast.Decl (ty, n, sz, Option.map (subst_expr v repl) init)
  | Ast.Assign (l, r) -> Ast.Assign (subst_expr v repl l, subst_expr v repl r)
  | Ast.Plus_assign (l, r) ->
    Ast.Plus_assign (subst_expr v repl l, subst_expr v repl r)
  | Ast.Expr_stmt e -> Ast.Expr_stmt (subst_expr v repl e)
  | Ast.Return e -> Ast.Return (Option.map (subst_expr v repl) e)
  | Ast.If (c, t, e) ->
    Ast.If (subst_expr v repl c, subst_stmts v repl t, subst_stmts v repl e)
  | Ast.For fl ->
    if fl.Ast.fl_var = v then s
    else Ast.For { fl with Ast.fl_body = subst_stmts v repl fl.Ast.fl_body }

(* Rewrite every loop in the program: [on_for] returns [Some stmts] to
   replace the loop (the replacement is not revisited), or [None] to keep
   it and recurse into its body. *)
let rec rewrite_stmts on_for stmts =
  List.concat_map
    (fun s ->
      match s with
      | Ast.For fl -> (
        match on_for fl with
        | Some repl -> repl
        | None ->
          [ Ast.For { fl with Ast.fl_body = rewrite_stmts on_for fl.Ast.fl_body } ])
      | Ast.If (c, t, e) ->
        [ Ast.If (c, rewrite_stmts on_for t, rewrite_stmts on_for e) ]
      | s -> [ s ])
    stmts

let rewrite_program on_for (p : Ast.program) =
  List.map (fun f -> { f with Ast.f_body = rewrite_stmts on_for f.Ast.f_body }) p

(* ---- dependence summaries (fission / fusion legality) ---- *)

module SS = Set.Make (String)

type usage = {
  defs : SS.t;  (** scalar names written *)
  uses : SS.t;  (** names read *)
  streams : SS.t;  (** streams touched (order-sensitive resources) *)
  writes : SS.t;  (** array roots written *)
  arrays : SS.t;  (** array roots touched at all *)
}

let u_empty =
  {
    defs = SS.empty;
    uses = SS.empty;
    streams = SS.empty;
    writes = SS.empty;
    arrays = SS.empty;
  }

let u_union a b =
  {
    defs = SS.union a.defs b.defs;
    uses = SS.union a.uses b.uses;
    streams = SS.union a.streams b.streams;
    writes = SS.union a.writes b.writes;
    arrays = SS.union a.arrays b.arrays;
  }

let rec expr_root = function
  | Ast.Var v -> v
  | Ast.Field (e, _) | Ast.Index (e, _) -> expr_root e
  | _ -> "?"

let rec expr_usage u (e : Ast.expr) =
  match e with
  | Ast.Int_const _ | Ast.Float_const _ -> u
  | Ast.Var n -> { u with uses = SS.add n u.uses }
  | Ast.Field (b, _) -> expr_usage u b
  | Ast.Index (b, i) ->
    let u = { u with arrays = SS.add (expr_root b) u.arrays } in
    expr_usage (expr_usage u b) i
  | Ast.Binop (_, a, b) -> expr_usage (expr_usage u a) b
  | Ast.Unop (_, a) -> expr_usage u a
  | Ast.Ternary (c, t, f) -> expr_usage (expr_usage (expr_usage u c) t) f
  | Ast.Call (_, args) -> List.fold_left expr_usage u args
  | Ast.Method (obj, meth, args) -> (
    let u = { u with streams = SS.add obj u.streams } in
    match (meth, args) with
    | "read", [ Ast.Unop (Ast.U_addr, Ast.Var t) ] ->
      { u with defs = SS.add t u.defs }
    | _ -> List.fold_left expr_usage u args)

let rec stmt_usage u (s : Ast.stmt) =
  match s with
  | Ast.Pragma_stmt _ -> u
  | Ast.Decl (_, n, _, init) ->
    let u = match init with Some e -> expr_usage u e | None -> u in
    { u with defs = SS.add n u.defs }
  | Ast.Stream_decl (_, n) ->
    { u with defs = SS.add n u.defs; streams = SS.add n u.streams }
  | Ast.Assign (lhs, rhs) | Ast.Plus_assign (lhs, rhs) -> (
    let u = expr_usage u rhs in
    let u =
      match s with Ast.Plus_assign _ -> expr_usage u lhs | _ -> u
    in
    match lhs with
    | Ast.Var n -> { u with defs = SS.add n u.defs }
    | Ast.Index (b, i) ->
      let root = expr_root b in
      let u = expr_usage u i in
      {
        u with
        writes = SS.add root u.writes;
        arrays = SS.add root u.arrays;
      }
    | Ast.Field _ -> { u with defs = SS.add (expr_root lhs) u.defs }
    | lhs ->
      (* unsupported target: be conservative, treat as def+use of root *)
      let root = expr_root lhs in
      { u with defs = SS.add root u.defs; uses = SS.add root u.uses })
  | Ast.Expr_stmt e -> expr_usage u e
  | Ast.Return e ->
    let u = match e with Some e -> expr_usage u e | None -> u in
    (* outputs are emitted in order; keep all returns in one group *)
    { u with streams = SS.add "%return" u.streams }
  | Ast.If (c, t, e) ->
    let u = expr_usage u c in
    let u = List.fold_left stmt_usage u t in
    List.fold_left stmt_usage u e
  | Ast.For fl ->
    let u = List.fold_left stmt_usage u fl.Ast.fl_body in
    { u with defs = SS.add fl.Ast.fl_var u.defs }

let stmts_usage stmts = List.fold_left stmt_usage u_empty stmts

(* Running group [a] entirely before group [b] (fission) — or interleaving
   them per iteration (fusion) — preserves semantics only when neither
   group's effects feed the other. *)
let independent a b =
  SS.is_empty (SS.inter a.defs b.uses)
  && SS.is_empty (SS.inter b.defs a.uses)
  && SS.is_empty (SS.inter a.streams b.streams)
  && SS.is_empty (SS.inter a.writes b.arrays)
  && SS.is_empty (SS.inter b.writes a.arrays)

(* ---- unroll ---- *)

let strip_unroll_pragmas pragmas =
  List.filter (fun p -> not (Elab.pragma_is "unroll" p)) pragmas

let unroll ~loop ~factor program =
  if factor < 2 then fail "unroll factor must be >= 2 (got %d)" factor;
  let applied = ref 0 in
  let on_for (fl : Ast.for_loop) =
    let matches =
      match loop with None -> true | Some v -> v = fl.Ast.fl_var
    in
    if not matches then None
    else begin
      let trips = Int64.to_int (Int64.sub fl.Ast.fl_hi fl.Ast.fl_lo) in
      if trips <= 0 then
        fail "cannot unroll loop over %s: non-positive trip count %d"
          fl.Ast.fl_var trips;
      if factor >= trips then begin
        incr applied;
        Some
          (List.concat
             (List.init trips (fun j ->
                  subst_stmts fl.Ast.fl_var
                    (Ast.Int_const (Int64.add fl.Ast.fl_lo (Int64.of_int j)))
                    fl.Ast.fl_body)))
      end
      else if trips mod factor <> 0 then (
        match loop with
        | Some v ->
          fail "unroll factor %d does not divide the %d trips of loop %s"
            factor trips v
        | None -> None (* not eligible; keep scanning *))
      else begin
        incr applied;
        let body =
          List.concat
            (List.init factor (fun j ->
                 let idx =
                   Ast.Binop
                     ( Ast.B_add,
                       Ast.Binop
                         ( Ast.B_mul,
                           Ast.Var fl.Ast.fl_var,
                           Ast.Int_const (Int64.of_int factor) ),
                       Ast.Int_const (Int64.add fl.Ast.fl_lo (Int64.of_int j))
                     )
                 in
                 subst_stmts fl.Ast.fl_var idx fl.Ast.fl_body))
        in
        Some
          [
            Ast.For
              {
                Ast.fl_var = fl.Ast.fl_var;
                fl_lo = 0L;
                fl_hi = Int64.of_int (trips / factor);
                fl_pragmas = strip_unroll_pragmas fl.Ast.fl_pragmas;
                fl_body = body;
              };
          ]
      end
    end
  in
  let p' = rewrite_program on_for program in
  (if !applied = 0 then
     match loop with
     | Some v -> fail "no loop over %s to unroll" v
     | None -> fail "no loop whose trip count factor %d divides" factor);
  p'

(* ---- cyclic array partitioning ---- *)

let partition ~array ~factor program =
  if factor < 2 then fail "partition factor must be >= 2 (got %d)" factor;
  let rec sized_decls acc stmts =
    List.fold_left
      (fun acc s ->
        match s with
        | Ast.Decl (_, n, Some size, _) -> (n, size) :: acc
        | Ast.For fl -> sized_decls acc fl.Ast.fl_body
        | Ast.If (_, t, e) -> sized_decls (sized_decls acc t) e
        | _ -> acc)
      acc stmts
  in
  let applied = ref 0 in
  let program' =
    List.map
      (fun f ->
        let arrays =
          List.filter_map
            (function Ast.P_array (_, n, s) -> Some (n, s) | _ -> None)
            f.Ast.f_params
          @ sized_decls [] f.Ast.f_body
          |> List.sort_uniq compare
        in
        let targets =
          match array with
          | Some n -> List.filter (fun (a, _) -> a = n) arrays
          | None ->
            List.filter (fun (_, s) -> s >= Elab.buffer_threshold) arrays
        in
        List.iter
          (fun (n, size) ->
            if size < Elab.buffer_threshold then
              fail
                "array %s[%d] is below the BRAM threshold (%d); partitioning \
                 a register file is meaningless"
                n size Elab.buffer_threshold;
            if factor > size then
              fail "partition factor %d exceeds the %d words of %s" factor
                size n)
          targets;
        if targets = [] then f
        else begin
          applied := !applied + List.length targets;
          let target_names = List.map fst targets in
          (* drop stale top-level partition pragmas for the same arrays *)
          let body =
            List.filter
              (function
                | Ast.Pragma_stmt p ->
                  not
                    (Elab.pragma_is "array_partition" p
                    && match Elab.pragma_value_raw "variable" p with
                       | Some v -> List.mem v target_names
                       | None -> false)
                | _ -> true)
              f.Ast.f_body
          in
          let pragmas =
            List.map
              (fun (n, _) ->
                Ast.Pragma_stmt
                  (Printf.sprintf
                     "HLS array_partition variable=%s cyclic factor=%d" n
                     factor))
              targets
          in
          { f with Ast.f_body = pragmas @ body }
        end)
      program
  in
  (if !applied = 0 then
     match array with
     | Some n -> fail "no array named %s to partition" n
     | None ->
       fail "no BRAM-sized array (>= %d words) to partition"
         Elab.buffer_threshold);
  program'

(* ---- loop fission ---- *)

let fission ~loop program =
  let applied = ref 0 in
  let on_for (fl : Ast.for_loop) =
    let matches =
      match loop with None -> true | Some v -> v = fl.Ast.fl_var
    in
    if not matches then None
    else begin
      let stmts = Array.of_list fl.Ast.fl_body in
      let n = Array.length stmts in
      (* named requests report why; anonymous ones keep scanning *)
      if n < 2 then
        if loop = None then None
        else
          fail "loop over %s has fewer than two statements; nothing to fission"
            fl.Ast.fl_var
      else begin
        let pre = Array.make (n + 1) u_empty in
        for i = 0 to n - 1 do
          pre.(i + 1) <- u_union pre.(i) (stmt_usage u_empty stmts.(i))
        done;
        let suf = Array.make (n + 1) u_empty in
        for i = n - 1 downto 0 do
          suf.(i) <- u_union (stmt_usage u_empty stmts.(i)) suf.(i + 1)
        done;
        let boundaries = ref [] in
        for i = n - 1 downto 1 do
          if independent pre.(i) suf.(i) then boundaries := i :: !boundaries
        done;
        match !boundaries with
        | [] ->
          if loop = None then None
          else
            fail
              "fission of loop over %s is blocked by cross-statement \
               dependences"
              fl.Ast.fl_var
        | bs ->
          incr applied;
          let groups = ref [] and cur = ref [] in
          for i = 0 to n - 1 do
            if List.mem i bs then begin
              groups := List.rev !cur :: !groups;
              cur := []
            end;
            cur := stmts.(i) :: !cur
          done;
          groups := List.rev !cur :: !groups;
          Some
            (List.rev_map
               (fun g -> Ast.For { fl with Ast.fl_body = g })
               !groups)
      end
    end
  in
  let p' = rewrite_program on_for program in
  (if !applied = 0 then
     match loop with
     | Some v -> fail "no loop over %s to fission" v
     | None -> fail "no fissionable loop: every loop body carries dependences");
  p'

(* ---- loop fusion ---- *)

let fusion ~loop program =
  let applied = ref 0 in
  let rec fuse_stmts stmts =
    match stmts with
    | Ast.For a :: Ast.For b :: rest
      when (match loop with None -> true | Some v -> v = a.Ast.fl_var)
           && a.Ast.fl_var = b.Ast.fl_var
           && a.Ast.fl_lo = b.Ast.fl_lo
           && a.Ast.fl_hi = b.Ast.fl_hi
           && a.Ast.fl_pragmas = b.Ast.fl_pragmas
           && independent (stmts_usage a.Ast.fl_body)
                (stmts_usage b.Ast.fl_body) ->
      incr applied;
      fuse_stmts
        (Ast.For { a with Ast.fl_body = a.Ast.fl_body @ b.Ast.fl_body }
        :: rest)
    | s :: rest ->
      let s' =
        match s with
        | Ast.For fl -> Ast.For { fl with Ast.fl_body = fuse_stmts fl.Ast.fl_body }
        | Ast.If (c, t, e) -> Ast.If (c, fuse_stmts t, fuse_stmts e)
        | s -> s
      in
      s' :: fuse_stmts rest
    | [] -> []
  in
  let p' =
    List.map (fun f -> { f with Ast.f_body = fuse_stmts f.Ast.f_body }) program
  in
  (if !applied = 0 then
     match loop with
     | Some v -> fail "no fusable adjacent loop pair over %s" v
     | None ->
       fail
         "no fusable adjacent loops (need identical headers and pragmas, \
          and independent bodies)");
  p'

(* ---- stream (FIFO) insertion ---- *)

let rec count_mentions name (e : Ast.expr) =
  match e with
  | Ast.Var n -> if n = name then 1 else 0
  | Ast.Int_const _ | Ast.Float_const _ -> 0
  | Ast.Field (b, _) -> count_mentions name b
  | Ast.Index (b, i) -> count_mentions name b + count_mentions name i
  | Ast.Binop (_, a, b) -> count_mentions name a + count_mentions name b
  | Ast.Unop (_, a) -> count_mentions name a
  | Ast.Ternary (c, t, f) ->
    count_mentions name c + count_mentions name t + count_mentions name f
  | Ast.Call (_, args) ->
    List.fold_left (fun acc a -> acc + count_mentions name a) 0 args
  | Ast.Method (obj, _, args) ->
    (if obj = name then 1 else 0)
    + List.fold_left (fun acc a -> acc + count_mentions name a) 0 args

let rec stmt_mentions name (s : Ast.stmt) =
  match s with
  | Ast.Pragma_stmt _ -> 0
  | Ast.Decl (_, n, _, init) ->
    (if n = name then 1 else 0)
    + (match init with Some e -> count_mentions name e | None -> 0)
  | Ast.Stream_decl (_, n) -> if n = name then 1 else 0
  | Ast.Assign (l, r) | Ast.Plus_assign (l, r) ->
    count_mentions name l + count_mentions name r
  | Ast.Expr_stmt e -> count_mentions name e
  | Ast.Return e -> (
    match e with Some e -> count_mentions name e | None -> 0)
  | Ast.If (c, t, e) ->
    count_mentions name c
    + List.fold_left (fun acc s -> acc + stmt_mentions name s) 0 t
    + List.fold_left (fun acc s -> acc + stmt_mentions name s) 0 e
  | Ast.For fl ->
    List.fold_left (fun acc s -> acc + stmt_mentions name s) 0 fl.Ast.fl_body

let stmts_mentions name stmts =
  List.fold_left (fun acc s -> acc + stmt_mentions name s) 0 stmts

(* Bottom-up expression rewrite with a partial function tried at every
   node (children first, so the match sees already-rewritten subtrees). *)
let rec map_expr fe (e : Ast.expr) =
  let e =
    match e with
    | Ast.Int_const _ | Ast.Float_const _ | Ast.Var _ -> e
    | Ast.Field (b, f) -> Ast.Field (map_expr fe b, f)
    | Ast.Index (b, i) -> Ast.Index (map_expr fe b, map_expr fe i)
    | Ast.Binop (op, a, b) -> Ast.Binop (op, map_expr fe a, map_expr fe b)
    | Ast.Unop (op, a) -> Ast.Unop (op, map_expr fe a)
    | Ast.Ternary (c, t, f) ->
      Ast.Ternary (map_expr fe c, map_expr fe t, map_expr fe f)
    | Ast.Call (fn, args) -> Ast.Call (fn, List.map (map_expr fe) args)
    | Ast.Method (obj, m, args) ->
      Ast.Method (obj, m, List.map (map_expr fe) args)
  in
  match fe e with Some e' -> e' | None -> e

let rec map_stmt_exprs fe (s : Ast.stmt) =
  match s with
  | Ast.Pragma_stmt _ | Ast.Stream_decl _ -> s
  | Ast.Decl (ty, n, sz, init) ->
    Ast.Decl (ty, n, sz, Option.map (map_expr fe) init)
  | Ast.Assign (l, r) -> Ast.Assign (map_expr fe l, map_expr fe r)
  | Ast.Plus_assign (l, r) -> Ast.Plus_assign (map_expr fe l, map_expr fe r)
  | Ast.Expr_stmt e -> Ast.Expr_stmt (map_expr fe e)
  | Ast.Return e -> Ast.Return (Option.map (map_expr fe) e)
  | Ast.If (c, t, e) ->
    Ast.If
      (map_expr fe c, List.map (map_stmt_exprs fe) t,
       List.map (map_stmt_exprs fe) e)
  | Ast.For fl ->
    Ast.For { fl with Ast.fl_body = List.map (map_stmt_exprs fe) fl.Ast.fl_body }

let stream_insert ~array program =
  let applied = ref false in
  let try_block stmts =
    let arr = Array.of_list stmts in
    let n = Array.length arr in
    let found = ref None in
    for j = 0 to n - 2 do
      if !found = None then
        match (arr.(j), arr.(j + 1)) with
        | Ast.For l1, Ast.For l2
          when l1.Ast.fl_lo = l2.Ast.fl_lo && l1.Ast.fl_hi = l2.Ast.fl_hi ->
          for d = 0 to j - 1 do
            if !found = None then
              match arr.(d) with
              | Ast.Decl (ty, a, Some _, None)
                when (match array with None -> true | Some n -> n = a) ->
                (* producer loop: exactly one a[i] = e store, nothing else *)
                let write_ok =
                  stmts_mentions a l1.Ast.fl_body = 1
                  && List.exists
                       (function
                         | Ast.Assign (Ast.Index (Ast.Var a', Ast.Var v), rhs)
                           ->
                           a' = a && v = l1.Ast.fl_var
                           && count_mentions a rhs = 0
                         | _ -> false)
                       l1.Ast.fl_body
                in
                (* consumer loop: exactly one a[i] read *)
                let read_ok =
                  stmts_mentions a l2.Ast.fl_body = 1
                  && List.exists
                       (fun s -> stmt_mentions a s = 1)
                       l2.Ast.fl_body
                in
                (* nowhere else in the block *)
                let elsewhere = ref 0 in
                Array.iteri
                  (fun k s ->
                    if k <> d && k <> j && k <> j + 1 then
                      elsewhere := !elsewhere + stmt_mentions a s)
                  arr;
                if write_ok && read_ok && !elsewhere = 0 then
                  found := Some (d, j, ty, a)
              | _ -> ()
          done
        | _ -> ()
    done;
    match !found with
    | None -> None
    | Some (d, j, ty, a) ->
      let l1 = match arr.(j) with Ast.For l -> l | _ -> assert false in
      let l2 =
        match arr.(j + 1) with Ast.For l -> l | _ -> assert false
      in
      let body1 =
        List.map
          (fun s ->
            match s with
            | Ast.Assign (Ast.Index (Ast.Var a', Ast.Var v), rhs)
              when a' = a && v = l1.Ast.fl_var ->
              Ast.Expr_stmt (Ast.Method (a, "write", [ rhs ]))
            | s -> s)
          l1.Ast.fl_body
      in
      let reads = ref 0 in
      let body2 =
        List.map
          (map_stmt_exprs (function
            | Ast.Index (Ast.Var a', Ast.Var v)
              when a' = a && v = l2.Ast.fl_var ->
              incr reads;
              Some (Ast.Method (a, "read", []))
            | _ -> None))
          l2.Ast.fl_body
      in
      if !reads <> 1 then None
      else begin
        arr.(d) <- Ast.Stream_decl (ty, a);
        arr.(j) <- Ast.For { l1 with Ast.fl_body = body1 };
        arr.(j + 1) <- Ast.For { l2 with Ast.fl_body = body2 };
        Some (Array.to_list arr)
      end
  in
  let program' =
    List.map
      (fun f ->
        if !applied then f
        else
          match try_block f.Ast.f_body with
          | Some body ->
            applied := true;
            { f with Ast.f_body = body }
          | None -> f)
      program
  in
  (if not !applied then
     match array with
     | Some a ->
       fail
         "array %s is not stream-insertable (need a single a[i] store in \
          one loop, a single a[i] read in the next, identical bounds, no \
          other uses)"
         a
     | None -> fail "no stream-insertable intermediate array found");
  program'

(* ---- dispatcher + pragma interpretation ---- *)

let apply r p =
  match r with
  | Unroll { u_loop; u_factor } -> unroll ~loop:u_loop ~factor:u_factor p
  | Partition { p_array; p_factor } ->
    partition ~array:p_array ~factor:p_factor p
  | Fission { f_loop } -> fission ~loop:f_loop p
  | Fusion { fu_loop } -> fusion ~loop:fu_loop p
  | Stream_insert { si_array } -> stream_insert ~array:si_array p

let requests_of_pragmas (p : Ast.program) =
  let reqs = ref [] and warns = ref [] in
  let warn fmt =
    Printf.ksprintf
      (fun m -> warns := Diag.warning ~stage:"transform" m :: !warns)
      fmt
  in
  let note ~loop s =
    if Elab.pragma_is "pipeline" s || Elab.pragma_is "dataflow" s then ()
    else if Elab.pragma_is "unroll" s then (
      match loop with
      | Some (fl : Ast.for_loop) ->
        let trips = Int64.to_int (Int64.sub fl.Ast.fl_hi fl.Ast.fl_lo) in
        let factor = Option.value ~default:trips (Elab.pragma_factor s) in
        reqs := Unroll { u_loop = Some fl.Ast.fl_var; u_factor = factor } :: !reqs
      | None -> warn "unroll pragma outside a loop: #pragma %s" s)
    else if Elab.pragma_is "array_partition" s then (
      match Elab.pragma_factor s with
      | Some f ->
        reqs :=
          Partition { p_array = Elab.pragma_value_raw "variable" s; p_factor = f }
          :: !reqs
      | None -> warn "array_partition pragma without factor=N: #pragma %s" s)
    else warn "unknown pragma (ignored by elaboration): #pragma %s" s
  in
  let rec walk stmts =
    List.iter
      (fun s ->
        match s with
        | Ast.Pragma_stmt s -> note ~loop:None s
        | Ast.For fl ->
          List.iter (note ~loop:(Some fl)) fl.Ast.fl_pragmas;
          walk fl.Ast.fl_body
        | Ast.If (_, t, e) ->
          walk t;
          walk e
        | _ -> ())
      stmts
  in
  List.iter (fun f -> walk f.Ast.f_body) p;
  (List.rev !reqs, List.rev !warns)
