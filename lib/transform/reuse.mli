(** PPN-style channel reuse on [Ir.Dataflow] (Alias' channel-merging
    idea): when one producer writes the *same value* to several channels
    consumed by the same process, the communication is over-wide — the
    value is broadcast across redundant FIFOs. This pass detects such
    channel pairs and narrows them to one channel before [Sync] pruning
    ever sees the network, rebuilding the producer DAG (one write
    instead of two) and the consumer DAG (the surviving read feeds both
    former consumers).

    The merge is conservative: both channels must have the same producer
    and consumer process and the same dtype, the producer must write each
    exactly once per firing with the identical value node, and the
    consumer must read each exactly once. Anything else is left alone, so
    the pass is semantics-preserving and idempotent. *)

type stats = {
  rs_merged : int;  (** channel pairs narrowed to one *)
  rs_channels_before : int;
  rs_channels_after : int;
  rs_broadcast_before : int;
      (** summed broadcast factor of the duplicated producer values
          before merging (each feeds >= 2 FIFO writes) *)
  rs_broadcast_after : int;
      (** same values' broadcast factor after merging *)
}

val run : Hlsb_ir.Dataflow.t -> Hlsb_ir.Dataflow.t * stats
(** Merge until fixpoint. Returns the input network unchanged (same
    value, not a copy) when nothing merges. Also records
    [transform.reuse.*] metrics when a registry is installed. *)
