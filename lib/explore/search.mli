(** The iterative target-frequency search at the heart of the explorer:
    compile at a target, read the achieved Fmax back, re-target. One
    call explores one configuration through an opaque oracle
    [target_mhz -> achieved_mhz], so the algorithm is testable on
    synthetic curves without compiling anything.

    The search has two phases. {b Bracket}: probe the starting target
    [t0]; while the achieved frequency keeps up with the target (within
    [tol]), raise the target geometrically until it no longer does —
    [lo] is the last target the design met, [hi] the first it missed.
    If even [t0] is missed, the achieved value itself bounds the
    bracket from below. {b Bisect}: shrink [(lo, hi)] by halving,
    keeping the invariant that [lo] is always met and [hi] never is,
    until the bracket is relatively tighter than [tol] or the probe
    budget runs out.

    Every probe is recorded; the configuration's frequency is the best
    {e achieved} value over all probes (not the converged target), so a
    lucky early probe is never thrown away. *)

type probe = {
  p_target : float;  (** target frequency given to the oracle, MHz *)
  p_achieved : float;  (** Fmax the oracle reported back, MHz *)
}

type outcome = {
  o_probes : probe list;  (** every oracle call, in order *)
  o_brackets : (float * float) list;
      (** the (lo, hi) bracket after each bisection step, in order — lo
          never decreases, hi never increases (tests assert this) *)
  o_best_target : float;  (** the target whose probe achieved [o_best] *)
  o_best_achieved : float;  (** best achieved Fmax over all probes *)
  o_converged : bool;  (** bracket tightened within [tol] in budget *)
}

val run :
  ?t0:float ->
  ?tol:float ->
  ?max_probes:int ->
  ?hi_cap:float ->
  (float -> float) ->
  outcome
(** [run oracle] searches the target bracket. Defaults: [t0] = 300 MHz
    (the pipeline's schedule default, so the first probe of an untuned
    configuration reproduces the static compile), [tol] = 0.02,
    [max_probes] = 5, [hi_cap] = 1200 MHz (stop raising targets past
    any device's reach). The oracle is called between 1 and
    [max_probes] times. Deterministic: same oracle, same sequence. *)
