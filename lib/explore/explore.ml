module Pipeline = Core.Pipeline
module Style = Hlsb_ctrl.Style
module Schedule = Hlsb_sched.Schedule
module Plan = Hlsb_transform.Plan
module Diag = Hlsb_util.Diag
module Metrics = Hlsb_telemetry.Metrics
module Clock = Hlsb_telemetry.Clock
module Json = Hlsb_telemetry.Json

(* ---------------- configurations ---------------- *)

type config = {
  cf_recipe : Style.recipe;
  cf_plan : Plan.t;
  cf_inject : Schedule.inject option;
}

let config_label cf =
  Style.to_string cf.cf_recipe
  ^ (match Plan.to_string cf.cf_plan with
    | "" -> ""
    | p -> "+plan[" ^ p ^ "]")
  ^
  match cf.cf_inject with
  | None -> ""
  | Some { Schedule.inj_top; inj_levels } ->
    Printf.sprintf "+inj%dx%d" inj_top inj_levels

(* Injection sweep over the worst broadcast chains: how many values get
   forced stages x how many levels each. Small corner first — one extra
   level on the single widest value is the cheapest plausible win. *)
let injections =
  [
    { Schedule.inj_top = 1; inj_levels = 1 };
    { Schedule.inj_top = 2; inj_levels = 1 };
    { Schedule.inj_top = 1; inj_levels = 2 };
    { Schedule.inj_top = 4; inj_levels = 1 };
    { Schedule.inj_top = 2; inj_levels = 2 };
    { Schedule.inj_top = 4; inj_levels = 2 };
  ]

let space ~plans =
  let plans = List.filter (fun p -> not (Plan.is_identity p)) plans in
  let base =
    { cf_recipe = Style.optimized; cf_plan = Plan.identity; cf_inject = None }
  in
  (base :: List.map (fun p -> { base with cf_plan = p }) plans)
  @ List.map (fun i -> { base with cf_inject = Some i }) injections
  @ [
      { base with cf_recipe = Style.sched_only };
      { base with cf_recipe = Style.ctrl_only };
      { base with cf_recipe = Style.original };
    ]
  @ List.concat_map
      (fun p ->
        List.map
          (fun i -> { base with cf_plan = p; cf_inject = Some i })
          injections)
      plans

let rec take n = function
  | [] -> []
  | _ when n <= 0 -> []
  | x :: tl -> x :: take (n - 1) tl

(* ---------------- Pareto front ---------------- *)

module Front = struct
  type point = {
    pt_label : string;
    pt_fmax : float;
    pt_area : float;
    pt_cost : int;
  }

  let dominates a b =
    a.pt_fmax >= b.pt_fmax && a.pt_area <= b.pt_area && a.pt_cost <= b.pt_cost
    && (a.pt_fmax > b.pt_fmax || a.pt_area < b.pt_area || a.pt_cost < b.pt_cost)

  let front pts =
    List.filter (fun p -> not (List.exists (fun q -> dominates q p) pts)) pts

  let better p best =
    if p.pt_fmax <> best.pt_fmax then p.pt_fmax > best.pt_fmax
    else if p.pt_area <> best.pt_area then p.pt_area < best.pt_area
    else if p.pt_cost <> best.pt_cost then p.pt_cost < best.pt_cost
    else p.pt_label < best.pt_label

  let winner pts =
    match front pts with
    | [] -> None
    | p0 :: rest ->
      Some
        (List.fold_left
           (fun best p -> if better p best then p else best)
           p0 rest)
end

(* ---------------- results ---------------- *)

type config_result = {
  cr_config : config;
  cr_label : string;
  cr_fmax : float;
  cr_area : float;
  cr_probes : int;
  cr_ms : float;
  cr_outcome : Search.outcome;
  cr_result : Pipeline.result;
}

type report = {
  ep_design : string;
  ep_static : Pipeline.result;
  ep_configs : config_result list;
  ep_front : config_result list;
  ep_winner : config_result;
  ep_stage_runs : (string * int) list;
  ep_probes : int;
  ep_hit_rate : float;
  ep_ms : float;
}

let slug name =
  String.map
    (fun c ->
      match c with
      | 'A' .. 'Z' -> Char.lowercase_ascii c
      | 'a' .. 'z' | '0' .. '9' | '.' -> c
      | _ -> '-')
    name

(* Per-design gauges plus global counters: the quantities the run ledger
   and the bench "explore" section carry. *)
let record_metrics rp =
  if Metrics.enabled () then begin
    let g k v = Metrics.set_gauge ("explore." ^ slug rp.ep_design ^ "." ^ k) v in
    let gi k v =
      Metrics.set_gauge_int ("explore." ^ slug rp.ep_design ^ "." ^ k) v
    in
    gi "configs" (List.length rp.ep_configs);
    gi "probes" rp.ep_probes;
    g "best_mhz" rp.ep_winner.cr_fmax;
    g "static_mhz" rp.ep_static.Pipeline.fr_fmax_mhz;
    g "search_ms" rp.ep_ms;
    g "cache_hit_rate" rp.ep_hit_rate;
    gi "elaborate_runs"
      (Option.value ~default:0 (List.assoc_opt "elaborate" rp.ep_stage_runs));
    Metrics.incr ~by:(List.length rp.ep_configs) "explore.configs";
    Metrics.incr ~by:rp.ep_probes "explore.probes"
  end

let run_design ?(budget = 8) ?(t0 = 300.) ?(tol = 0.02) ?(max_probes = 5)
    ?(plans = []) session ~name =
  let start = Clock.now_ns () in
  let ms_since t = Clock.ns_to_ms (Int64.sub (Clock.now_ns ()) t) in
  (* The untuned static compile: the bar the search must clear (and does,
     by construction: the first configuration's first probe at the
     default t0 reproduces this exact schedule). *)
  let static = Pipeline.run_exn session ~recipe:Style.optimized in
  let configs = take budget (space ~plans) in
  let probes_total = ref 0 in
  let results =
    List.filter_map
      (fun cf ->
        let c0 = Clock.now_ns () in
        let seen = Hashtbl.create 8 in
        let oracle target =
          let r =
            Pipeline.run_exn ~plan:cf.cf_plan ~target_mhz:target
              ?inject:cf.cf_inject session ~recipe:cf.cf_recipe
          in
          Hashtbl.replace seen target r;
          r.Pipeline.fr_fmax_mhz
        in
        match Search.run ~t0 ~tol ~max_probes oracle with
        | o ->
          let best = Hashtbl.find seen o.Search.o_best_target in
          let probes = List.length o.Search.o_probes in
          probes_total := !probes_total + probes;
          Some
            {
              cr_config = cf;
              cr_label = config_label cf;
              cr_fmax = o.Search.o_best_achieved;
              cr_area =
                best.Pipeline.fr_lut_pct +. best.Pipeline.fr_ff_pct;
              cr_probes = probes;
              cr_ms = ms_since c0;
              cr_outcome = o;
              cr_result = best;
            }
        | exception Diag.Diagnostic _ ->
          (* an unbuildable configuration is pruned, not fatal *)
          None)
      configs
  in
  if results = [] then
    raise
      (Diag.Diagnostic
         (Diag.error ~stage:"explore"
            (Printf.sprintf "no configuration of %s compiled" name)));
  let to_point r =
    {
      Front.pt_label = r.cr_label;
      pt_fmax = r.cr_fmax;
      pt_area = r.cr_area;
      pt_cost = r.cr_probes;
    }
  in
  let pts = List.map to_point results in
  let front_labels =
    List.map (fun p -> p.Front.pt_label) (Front.front pts)
  in
  let winner_label =
    match Front.winner pts with
    | Some w -> w.Front.pt_label
    | None -> assert false
  in
  let stage_runs = Pipeline.stage_runs session in
  let ran = List.fold_left (fun acc (_, c) -> acc + c) 0 stage_runs in
  (* Work a cold run would do: the static compile plus every probe, each
     paying the seven datapath stages (elaborate..report). *)
  let cold = (!probes_total + 1) * 7 in
  let rp =
    {
      ep_design = name;
      ep_static = static;
      ep_configs = results;
      ep_front =
        List.filter (fun r -> List.mem r.cr_label front_labels) results;
      ep_winner = List.find (fun r -> r.cr_label = winner_label) results;
      ep_stage_runs = stage_runs;
      ep_probes = !probes_total;
      ep_hit_rate =
        (if cold = 0 then 0. else Float.max 0. (1. -. (float_of_int ran /. float_of_int cold)));
      ep_ms = ms_since start;
    }
  in
  record_metrics rp;
  rp

(* ---------------- rendering ---------------- *)

let summary rp =
  let buf = Buffer.create 1024 in
  let static = rp.ep_static.Pipeline.fr_fmax_mhz in
  let w = rp.ep_winner in
  Buffer.add_string buf
    (Printf.sprintf
       "%s: best %.1f MHz [%s] vs static optimized %.1f MHz (%+.1f%%)\n"
       rp.ep_design w.cr_fmax w.cr_label static
       (100. *. (w.cr_fmax -. static) /. static));
  Buffer.add_string buf
    (Printf.sprintf
       "  %d config(s), %d probe(s), %.0f ms; cache hit rate %.0f%%, stage \
        runs: %s\n"
       (List.length rp.ep_configs)
       rp.ep_probes rp.ep_ms
       (100. *. rp.ep_hit_rate)
       (String.concat ", "
          (List.map
             (fun (s, c) -> Printf.sprintf "%s=%d" s c)
             rp.ep_stage_runs)));
  Buffer.add_string buf "  pareto front (fmax MHz / area % / probes):\n";
  List.iter
    (fun r ->
      Buffer.add_string buf
        (Printf.sprintf "    %-36s %7.1f %6.1f %3d%s\n" r.cr_label r.cr_fmax
           r.cr_area r.cr_probes
           (if r.cr_label = w.cr_label then "  <- winner" else "")))
    rp.ep_front;
  Buffer.contents buf

let config_result_to_json r =
  Json.Obj
    [
      ("label", Json.Str r.cr_label);
      ("fmax_mhz", Json.Float r.cr_fmax);
      ("area_pct", Json.Float r.cr_area);
      ("probes", Json.Int r.cr_probes);
      ("search_ms", Json.Float r.cr_ms);
      ("converged", Json.Bool r.cr_outcome.Search.o_converged);
      ("best_target_mhz", Json.Float r.cr_outcome.Search.o_best_target);
    ]

let report_to_json rp =
  Json.Obj
    [
      ("design", Json.Str rp.ep_design);
      ("static_mhz", Json.Float rp.ep_static.Pipeline.fr_fmax_mhz);
      ("best_mhz", Json.Float rp.ep_winner.cr_fmax);
      ("winner", Json.Str rp.ep_winner.cr_label);
      ("probes", Json.Int rp.ep_probes);
      ("search_ms", Json.Float rp.ep_ms);
      ("cache_hit_rate", Json.Float rp.ep_hit_rate);
      ( "stage_runs",
        Json.Obj
          (List.map (fun (s, c) -> (s, Json.Int c)) rp.ep_stage_runs) );
      ("configs", Json.List (List.map config_result_to_json rp.ep_configs));
      ( "front",
        Json.List (List.map (fun r -> Json.Str r.cr_label) rp.ep_front) );
    ]

(* ---------------- frequency_log output ---------------- *)

let rec ensure_dir dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    ensure_dir (Filename.dirname dir);
    try Sys.mkdir dir 0o755
    with Sys_error _ when Sys.file_exists dir -> ()
  end

let write_text ~path text =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc text)

let config_log rp r =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "# design: %s\n# config: %s\n# probe  target_mhz  achieved_mhz\n"
       rp.ep_design r.cr_label);
  List.iteri
    (fun i (p : Search.probe) ->
      Buffer.add_string buf
        (Printf.sprintf "%-7d  %10.2f  %12.2f\n" (i + 1) p.Search.p_target
           p.Search.p_achieved))
    r.cr_outcome.Search.o_probes;
  (match List.rev r.cr_outcome.Search.o_brackets with
  | (lo, hi) :: _ ->
    Buffer.add_string buf (Printf.sprintf "# bracket  [%.2f, %.2f]\n" lo hi)
  | [] -> ());
  Buffer.add_string buf
    (Printf.sprintf "# best %.2f MHz @ target %.2f, converged=%b, probes=%d, %.1f ms\n"
       r.cr_fmax r.cr_outcome.Search.o_best_target
       r.cr_outcome.Search.o_converged r.cr_probes r.cr_ms);
  Buffer.contents buf

let write_logs ~dir rp =
  let fdir = Filename.concat dir "frequency_log" in
  ensure_dir fdir;
  let log_paths =
    List.map
      (fun r ->
        let path =
          Filename.concat fdir
            (Printf.sprintf "%s__%s.txt" (slug rp.ep_design) (slug r.cr_label))
        in
        write_text ~path (config_log rp r);
        path)
      rp.ep_configs
  in
  let summary_path =
    Filename.concat dir (slug rp.ep_design ^ ".summary.json")
  in
  write_text ~path:summary_path
    (Json.to_string ~minify:false (report_to_json rp) ^ "\n");
  log_paths @ [ summary_path ]
