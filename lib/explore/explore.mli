(** Search-driven Fmax auto-tuning of one design (ROADMAP item 2): an
    iterative exploration driver that, inside a single compile
    {!Core.Pipeline.session},

    - enumerates a typed configuration space — {!Hlsb_ctrl.Style} recipe
      knobs, register injection on the worst broadcast chains
      ({!Hlsb_sched.Schedule.inject}, generalizing the one-shot
      [tree_threshold] policy), and {!Hlsb_transform.Plan} variants,
    - binary-searches each configuration's [target_mhz] bracket with
      {!Search} until achieved-vs-target converges within a tolerance,
    - and prunes dominated configurations on an (Fmax, area,
      search-cost) front.

    Because every configuration runs in the same session, elaboration is
    paid once and schedules are shared wherever the (plan, target,
    injection, sched-mode) key repeats; the report carries the session's
    stage-run counters and a cache-hit rate proving it. *)

module Pipeline = Core.Pipeline
module Style = Hlsb_ctrl.Style
module Schedule = Hlsb_sched.Schedule
module Plan = Hlsb_transform.Plan

(** {1 The configuration space} *)

type config = {
  cf_recipe : Style.recipe;
  cf_plan : Plan.t;  (** identity for IR-level sessions *)
  cf_inject : Schedule.inject option;
}

val config_label : config -> string
(** Deterministic, filename-safe-ish label, e.g.
    ["optimized+inj2x1"] or ["optimized+plan[partition=cyclic:4]"]. *)

val space : plans:Plan.t list -> config list
(** The enumeration order (trim with the budget): the static
    [optimized] point first — so the explorer's best can never fall
    below the static recipe — then transform-plan variants, register
    injections, the other named recipes, and finally plan x injection
    products. [plans] lists extra transform plans to consider (identity
    is always implicit; only meaningful on program sessions). *)

(** {1 Pareto pruning}

    Pure and synthetic-testable: the qcheck property that the winner is
    never dominated runs against this module directly. *)

module Front : sig
  type point = {
    pt_label : string;
    pt_fmax : float;  (** maximize *)
    pt_area : float;  (** minimize *)
    pt_cost : int;  (** search cost in probes; minimize *)
  }

  val dominates : point -> point -> bool
  (** [dominates a b]: [a] is no worse on all three axes and strictly
      better on at least one. *)

  val front : point list -> point list
  (** The non-dominated subset, in input order. *)

  val winner : point list -> point option
  (** Highest Fmax on the front; ties broken by smaller area, then
      fewer probes, then label — deterministic at any job count. *)
end

(** {1 Results} *)

type config_result = {
  cr_config : config;
  cr_label : string;
  cr_fmax : float;  (** best achieved Fmax over the search, MHz *)
  cr_area : float;  (** LUT%% + FF%% at the best probe *)
  cr_probes : int;
  cr_ms : float;  (** wall-clock of this configuration's search *)
  cr_outcome : Search.outcome;
  cr_result : Pipeline.result;  (** the best probe's compile result *)
}

type report = {
  ep_design : string;
  ep_static : Pipeline.result;
      (** the untuned static [optimized] compile, for comparison *)
  ep_configs : config_result list;  (** in trial order *)
  ep_front : config_result list;  (** non-dominated configurations *)
  ep_winner : config_result;
  ep_stage_runs : (string * int) list;
      (** the session's {!Pipeline.stage_runs} after the whole search —
          [elaborate] must be 1 however many configurations ran *)
  ep_probes : int;  (** oracle compiles over all configurations *)
  ep_hit_rate : float;
      (** fraction of per-compile stage work served from session caches *)
  ep_ms : float;  (** wall-clock of the whole design's search *)
}

val run_design :
  ?budget:int ->
  ?t0:float ->
  ?tol:float ->
  ?max_probes:int ->
  ?plans:Plan.t list ->
  Pipeline.session ->
  name:string ->
  report
(** Explore one design inside the given session: compile the static
    baseline, then search up to [budget] configurations (default 8)
    with up to [max_probes] compiles each (default 5). Configurations
    whose compile fails with a diagnostic are skipped. Also publishes
    [explore.*] gauges into the installed metrics registry (configs,
    probes, best/static MHz, search ms, cache-hit rate, elaborate
    runs). Deterministic for a given session kind and parameters. *)

val slug : string -> string
(** Lowercase, [a-z0-9-] design-name slug used in the [explore.*] gauge
    names and log filenames, e.g. ["Vector Arithmetic"] ->
    ["vector-arithmetic"]. *)

val summary : report -> string
(** Human-readable per-design summary: winner vs static, the front, and
    the session-reuse counters. *)

val report_to_json : report -> Hlsb_telemetry.Json.t

val write_logs : dir:string -> report -> string list
(** Write one [frequency_log/<design>__<config>.txt] per configuration
    under [dir] (each probe's target and achieved MHz, the converged
    bracket, the best point) plus [<design>.summary.json]; returns the
    paths written. Creates directories as needed. *)
