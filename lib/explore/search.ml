type probe = {
  p_target : float;
  p_achieved : float;
}

type outcome = {
  o_probes : probe list;
  o_brackets : (float * float) list;
  o_best_target : float;
  o_best_achieved : float;
  o_converged : bool;
}

let run ?(t0 = 300.) ?(tol = 0.02) ?(max_probes = 5) ?(hi_cap = 1200.) oracle =
  if t0 <= 0. then invalid_arg "Search.run: t0 <= 0";
  if tol <= 0. then invalid_arg "Search.run: tol <= 0";
  if max_probes < 1 then invalid_arg "Search.run: max_probes < 1";
  let probes = ref [] in
  let brackets = ref [] in
  let best = ref (t0, neg_infinity) in
  let n = ref 0 in
  let probe t =
    incr n;
    let a = oracle t in
    probes := { p_target = t; p_achieved = a } :: !probes;
    if a > snd !best then best := (t, a);
    a
  in
  (* "met" within the relative tolerance: re-targeting below this margin
     cannot move the schedule meaningfully. *)
  let meets t a = a >= t *. (1. -. tol) in
  let a0 = probe t0 in
  let lo0, hi0 =
    if meets t0 a0 then begin
      (* Walk the target up geometrically until the design misses it. *)
      let rec up lo t =
        if !n >= max_probes || t > hi_cap then (lo, lo)
        else
          let a = probe t in
          if meets t a then up t (t *. 1.6) else (lo, t)
      in
      up t0 (t0 *. 1.6)
    end
    else
      (* Even t0 is out of reach: the achieved value bounds what is
         realistic, the failed target bounds it from above. *)
      (Float.min a0 t0, t0)
  in
  let lo = ref lo0 and hi = ref hi0 in
  while !hi -. !lo > tol *. !lo && !n < max_probes do
    let mid = 0.5 *. (!lo +. !hi) in
    let a = probe mid in
    if meets mid a then lo := mid else hi := mid;
    brackets := (!lo, !hi) :: !brackets
  done;
  {
    o_probes = List.rev !probes;
    o_brackets = List.rev !brackets;
    o_best_target = fst !best;
    o_best_achieved = snd !best;
    o_converged = !hi -. !lo <= tol *. !lo;
  }
