module Pipeline = Core.Pipeline
module Suite = Hlsb_designs.Suite
module Spec = Hlsb_designs.Spec
module Pool = Hlsb_util.Pool
module Table = Hlsb_util.Table

let run_explore ?subset ?jobs ?budget ?t0 ?tol ?max_probes () =
  let specs =
    match subset with
    | None -> Suite.all
    | Some names ->
      List.map
        (fun n ->
          match Suite.find n with
          | Some s -> s
          | None -> invalid_arg ("run_explore: unknown design " ^ n))
        names
  in
  Pool.map_list ?jobs
    (fun (s : Spec.t) ->
      let session = Pipeline.of_spec s in
      Explore.run_design ?budget ?t0 ?tol ?max_probes session
        ~name:s.Spec.sp_name)
    specs

let render_explore reports =
  let tbl =
    Table.create
      ~headers:
        [
          ("design", Table.Left);
          ("static", Table.Right);
          ("best", Table.Right);
          ("gain", Table.Right);
          ("winner", Table.Left);
          ("cfgs", Table.Right);
          ("probes", Table.Right);
          ("ms", Table.Right);
          ("elab", Table.Right);
          ("hit%", Table.Right);
        ]
  in
  List.iter
    (fun (rp : Explore.report) ->
      let static = rp.Explore.ep_static.Pipeline.fr_fmax_mhz in
      let w = rp.Explore.ep_winner in
      Table.add_row tbl
        [
          rp.Explore.ep_design;
          Printf.sprintf "%.1f" static;
          Printf.sprintf "%.1f" w.Explore.cr_fmax;
          Printf.sprintf "%+.1f%%"
            (100. *. (w.Explore.cr_fmax -. static) /. static);
          w.Explore.cr_label;
          string_of_int (List.length rp.Explore.ep_configs);
          string_of_int rp.Explore.ep_probes;
          Printf.sprintf "%.0f" rp.Explore.ep_ms;
          string_of_int
            (Option.value ~default:0
               (List.assoc_opt "elaborate" rp.Explore.ep_stage_runs));
          Printf.sprintf "%.0f" (100. *. rp.Explore.ep_hit_rate);
        ])
    reports;
  Table.render tbl
