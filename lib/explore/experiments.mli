(** Suite-level exploration driver: one {!Explore.run_design} per
    benchmark, each with its own compile session, fanned out over the
    {!Hlsb_util.Pool} — sessions are not shared across domains, so the
    per-design session reuse (elaborate = 1) and the winner are
    identical at any job count. *)

val run_explore :
  ?subset:string list ->
  ?jobs:int ->
  ?budget:int ->
  ?t0:float ->
  ?tol:float ->
  ?max_probes:int ->
  unit ->
  Explore.report list
(** Explore every Table-1 design (or the named [subset], resolved
    through {!Hlsb_designs.Suite.find}), in suite order regardless of
    job count. Raises [Invalid_argument] on an unknown subset name. *)

val render_explore : Explore.report list -> string
(** The winners table: per design, static vs searched-best Fmax, the
    winning configuration, and the search cost (configs, probes, wall
    ms, elaborate runs). *)
