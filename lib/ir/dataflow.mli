(** Dataflow process networks — the granularity at which HLS infers
    parallelism and (over-)synchronization (§3.2). Processes are streaming
    kernels; channels are FIFOs; a [sync_group] is a set of processes the
    source code expressed in one loop, which the HLS tool pedantically
    synchronizes every iteration (Fig. 5a / 6a). *)

type process = {
  p_name : string;
  p_latency : int option;
      (** completion latency in cycles if statically known; [None] for
          dynamic-latency modules (which §4.2 cannot prune) *)
  p_kernel : Kernel.t option;  (** underlying kernel, when materialized *)
}

type channel = {
  c_name : string;
  c_src : int;  (** producer process, or -1 for an external input port *)
  c_dst : int;  (** consumer process, or -1 for an external output port *)
  c_dtype : Dtype.t;
  c_depth : int;
}

type t

val create : unit -> t

val add_process :
  t -> name:string -> ?latency:int -> ?kernel:Kernel.t -> unit -> int

val add_channel :
  t ->
  name:string ->
  src:int ->
  dst:int ->
  dtype:Dtype.t ->
  ?depth:int ->
  unit ->
  int
(** [src]/[dst] of [-1] denote external ports. *)

val add_sync_group : t -> int list -> unit
(** Declare that these processes were written in one source loop: the HLS
    front end will synchronize all of them each iteration. Raises
    [Invalid_argument] on unknown or duplicate members. *)

val n_processes : t -> int
val n_channels : t -> int
val process : t -> int -> process
val channel : t -> int -> channel
val processes : t -> process array
val channels : t -> channel array
val sync_groups : t -> int list list

val connectivity_components : t -> int array
(** Component index per process, considering channel connectivity only
    (ignoring sync groups): the "elementary flow control units" view used by
    §4.2 to find independent flows glued together by a sync group. *)

type problem = {
  pb_entity : [ `Channel of string | `Process of string ];
  pb_message : string;
}

val problems : t -> problem list
(** Structural well-formedness issues, one per offending entity: channels
    dangling at both ends, processes touching no channel. Empty for a
    valid network. The compile pipeline turns each into a structured
    diagnostic; {!validate} joins them into one legacy error string. *)

val validate : t -> (unit, string) result
