module Vec = Hlsb_util.Vec
module Intgraph = Hlsb_util.Intgraph

type process = {
  p_name : string;
  p_latency : int option;
  p_kernel : Kernel.t option;
}

type channel = {
  c_name : string;
  c_src : int;
  c_dst : int;
  c_dtype : Dtype.t;
  c_depth : int;
}

type t = {
  procs : process Vec.t;
  chans : channel Vec.t;
  mutable groups : int list list; (* reversed *)
}

let create () = { procs = Vec.create (); chans = Vec.create (); groups = [] }

let add_process t ~name ?latency ?kernel () =
  Vec.push t.procs { p_name = name; p_latency = latency; p_kernel = kernel }

let check_endpoint t p what =
  if p < -1 || p >= Vec.length t.procs then
    invalid_arg ("Dataflow.add_channel: bad " ^ what)

let add_channel t ~name ~src ~dst ~dtype ?(depth = 2) () =
  Dtype.validate dtype;
  check_endpoint t src "src";
  check_endpoint t dst "dst";
  if depth < 1 then invalid_arg "Dataflow.add_channel: depth < 1";
  Vec.push t.chans
    { c_name = name; c_src = src; c_dst = dst; c_dtype = dtype; c_depth = depth }

let add_sync_group t members =
  let n = Vec.length t.procs in
  let seen = Hashtbl.create 8 in
  List.iter
    (fun p ->
      if p < 0 || p >= n then invalid_arg "Dataflow.add_sync_group: bad member";
      if Hashtbl.mem seen p then
        invalid_arg "Dataflow.add_sync_group: duplicate member";
      Hashtbl.add seen p ())
    members;
  t.groups <- members :: t.groups

let n_processes t = Vec.length t.procs
let n_channels t = Vec.length t.chans
let process t p = Vec.get t.procs p
let channel t c = Vec.get t.chans c
let processes t = Vec.to_array t.procs
let channels t = Vec.to_array t.chans
let sync_groups t = List.rev t.groups

let connectivity_components t =
  let g = Intgraph.create (Vec.length t.procs) in
  Vec.iteri
    (fun _ c ->
      if c.c_src >= 0 && c.c_dst >= 0 then Intgraph.add_edge g c.c_src c.c_dst)
    t.chans;
  Intgraph.connected_components g

type problem = {
  pb_entity : [ `Channel of string | `Process of string ];
  pb_message : string;
}

let problems t =
  let errors = ref [] in
  let err entity fmt =
    Printf.ksprintf
      (fun s -> errors := { pb_entity = entity; pb_message = s } :: !errors)
      fmt
  in
  Vec.iteri
    (fun i c ->
      if c.c_src = -1 && c.c_dst = -1 then
        err (`Channel c.c_name) "channel %d (%s): dangling at both ends" i
          c.c_name)
    t.chans;
  (* every process should touch at least one channel *)
  let touched = Array.make (Vec.length t.procs) false in
  Vec.iteri
    (fun _ c ->
      if c.c_src >= 0 then touched.(c.c_src) <- true;
      if c.c_dst >= 0 then touched.(c.c_dst) <- true)
    t.chans;
  Array.iteri
    (fun p ok ->
      let name = (Vec.get t.procs p).p_name in
      if not ok then err (`Process name) "process %d (%s): no channels" p name)
    touched;
  List.rev !errors

let validate t =
  match problems t with
  | [] -> Ok ()
  | ps -> Error (String.concat "; " (List.map (fun p -> p.pb_message) ps))
