open Hlsb_ir
module Device = Hlsb_device.Device
module Netlist = Hlsb_netlist.Netlist
module Structs = Hlsb_netlist.Structs
module Calibrate = Hlsb_delay.Calibrate
module Schedule = Hlsb_sched.Schedule
module Style = Hlsb_ctrl.Style
module Sync = Hlsb_ctrl.Sync
module Diag = Hlsb_util.Diag
module Trace = Hlsb_telemetry.Trace
module Metrics = Hlsb_telemetry.Metrics
module Json = Hlsb_telemetry.Json

type kernel_info = {
  ki_name : string;
  ki_depth : int;
  ki_registers_added : int;
  ki_skid_bits : int;
}

type t = {
  netlist : Netlist.t;
  device : Device.t;
  recipe : Style.recipe;
  kernels : kernel_info list;
  sync_groups_emitted : int;
  max_sync_fanout : int;
}

type datapath = {
  dp_netlist : Netlist.t;
  dp_lowered : Lower.t option array;
}

let schedule_mode device (recipe : Style.recipe) =
  match recipe.Style.sched with
  | Style.Sched_hls -> Schedule.Baseline
  | Style.Sched_aware -> Schedule.Broadcast_aware (Calibrate.shared device)

(* ---- stage: schedule ---- *)

let schedule_processes ?(target_mhz = 300.) ?inject ~device ~recipe
    (df : Dataflow.t) =
  let mode = schedule_mode device recipe in
  let n_procs = Dataflow.n_processes df in
  Array.init n_procs (fun p ->
    Option.map
      (fun kernel -> Schedule.run ~target_mhz ?inject mode kernel)
      (Dataflow.process df p).Dataflow.p_kernel)

(* ---- stage: lower (kernels to macro cells, then channel wiring) ---- *)

let lower_processes ~device ~recipe ~name (df : Dataflow.t)
    (scheds : Schedule.t option array) =
  let nl = Netlist.create ~name in
  let fanout_trees = recipe.Style.sched = Style.Sched_aware in
  let n_procs = Dataflow.n_processes df in
  let lowered = Array.make n_procs None in
  (* Lower kernels process-by-process so placement clusters each process. *)
  for p = 0 to n_procs - 1 do
    match scheds.(p) with
    | None -> ()
    | Some sched ->
      lowered.(p) <-
        Some (Lower.lower device nl ~pipe:recipe.Style.pipe ~fanout_trees sched)
  done;
  (* Wire channels: writer interface -> reader FIFO cell, matched by name. *)
  Trace.with_span "wire_channels" (fun () ->
  Array.iter
    (fun (c : Dataflow.channel) ->
      let find_iface p ifaces =
        List.find_opt (fun (n, _, _) -> n = c.Dataflow.c_name) (ifaces p)
      in
      let proc_name p = (Dataflow.process df p).Dataflow.p_name in
      let missing_fifo ~side p =
        Diag.fail ~stage:"lower"
          ~entity:(Diag.Channel c.Dataflow.c_name)
          "channel %s has no matching FIFO %s interface in kernel %s"
          c.Dataflow.c_name side (proc_name p)
      in
      let wr =
        if c.Dataflow.c_src < 0 then None
        else
          Option.bind lowered.(c.Dataflow.c_src) (fun lw ->
            find_iface lw (fun lw -> lw.Lower.lw_fifo_write_ifaces))
      in
      let rd =
        if c.Dataflow.c_dst < 0 then None
        else
          Option.bind lowered.(c.Dataflow.c_dst) (fun lw ->
            find_iface lw (fun lw -> lw.Lower.lw_fifo_read_ifaces))
      in
      match (wr, rd) with
      | Some (_, wcell, width), Some (_, rcell, _) ->
        ignore
          (Netlist.add_net nl
             ~name:("chan_" ^ c.Dataflow.c_name)
             ~driver:wcell ~sinks:[ rcell ] ~width ())
      | Some (_, wcell, width), None when c.Dataflow.c_dst < 0 ->
        let port =
          Netlist.add_cell nl
            ~name:("port_" ^ c.Dataflow.c_name)
            ~kind:Netlist.Port_out ~delay:0. ~res:Netlist.zero_res
        in
        ignore
          (Netlist.add_net nl
             ~name:("chan_" ^ c.Dataflow.c_name)
             ~driver:wcell ~sinks:[ port ] ~width ())
      | None, _ when c.Dataflow.c_src < 0 -> () (* external input: fed by port *)
      | None, _ -> missing_fifo ~side:"write" c.Dataflow.c_src
      | Some _, None -> missing_fifo ~side:"read" c.Dataflow.c_dst)
    (Dataflow.channels df));
  { dp_netlist = nl; dp_lowered = lowered }

(* ---- stage: sync (controllers over the lowered datapath) ---- *)

let emit_sync ~device ~recipe (df : Dataflow.t) (dp : datapath) =
  let nl = dp.dp_netlist in
  let lowered = dp.dp_lowered in
  let n_groups = ref 0 in
  let max_fanout = ref 0 in
  Trace.with_span "sync_controllers" (fun () ->
  let df_sync =
    match recipe.Style.sync with
    | Style.Sync_naive -> df
    | Style.Sync_pruned -> Sync.split_independent df
  in
  List.iter
    (fun group ->
      let members =
        List.filter_map
          (fun p -> Option.map (fun lw -> (p, lw)) lowered.(p))
          group
      in
      if List.length members > 1 then begin
        incr n_groups;
        let wait_procs =
          match recipe.Style.sync with
          | Style.Sync_naive -> List.map fst members
          | Style.Sync_pruned ->
            (Sync.longest_latency_wait df_sync (List.map fst members)).Sync.waited
        in
        Metrics.incr
          ~by:(max 0 (List.length members - List.length wait_procs))
          "sync.edges_pruned";
        let dones =
          List.filter_map
            (fun p ->
              Option.map (fun lw -> lw.Lower.lw_done)
                (if List.mem p wait_procs then lowered.(p) else None))
            wait_procs
        in
        let root =
          match dones with
          | [] -> None
          | _ ->
            Some
              (Structs.add_and_tree device nl
                 ~name:(Printf.sprintf "sync%d" !n_groups)
                 ~inputs:dones)
        in
        (* FSM state register holding the aggregated condition; its output
           is the broadcast next-start (Fig. 6). *)
        match root with
        | None -> ()
        | Some root_cell ->
          let fsm =
            Netlist.add_cell nl
              ~name:(Printf.sprintf "sync%d_fsm" !n_groups)
              ~kind:Netlist.Seq ~delay:0.
              ~res:(Hlsb_netlist.Macro.fsm ~states:4)
          in
          ignore
            (Netlist.add_net nl ~cls:Netlist.Ctrl_sync
               ~name:(Printf.sprintf "sync%d_cond" !n_groups)
               ~driver:root_cell ~sinks:[ fsm ] ~width:1 ());
          let start_sinks =
            List.concat_map (fun (_, lw) -> lw.Lower.lw_start_sinks) members
          in
          max_fanout := max !max_fanout (List.length start_sinks);
          if start_sinks <> [] then begin
            (* each member kernel registers the incoming start in its own
               controller, so the broadcast takes two registered hops *)
            let hop =
              Structs.add_register nl
                ~name:(Printf.sprintf "sync%d_hop" !n_groups)
                ~width:1
            in
            ignore
              (Netlist.add_net nl ~cls:Netlist.Ctrl_sync
                 ~name:(Printf.sprintf "sync%d_s0" !n_groups)
                 ~driver:fsm ~sinks:[ hop ] ~width:1 ());
            ignore
              (Netlist.add_net nl ~cls:Netlist.Ctrl_sync
                 ~name:(Printf.sprintf "sync%d_start" !n_groups)
                 ~driver:hop ~sinks:start_sinks ~width:1 ())
          end
      end)
    (Dataflow.sync_groups df_sync));
  let kernels =
    Array.to_list lowered
    |> List.filter_map
         (Option.map (fun lw ->
            {
              ki_name = lw.Lower.lw_name;
              ki_depth = lw.Lower.lw_depth;
              ki_registers_added = lw.Lower.lw_registers_added;
              ki_skid_bits = lw.Lower.lw_skid_bits;
            }))
  in
  if Metrics.enabled () then begin
    Metrics.incr ~by:(Netlist.n_cells nl) "netlist.cells";
    Metrics.incr ~by:(Netlist.n_nets nl) "netlist.nets";
    Metrics.incr ~by:!n_groups "sync.controllers";
    Metrics.set_gauge_int "sync.max_start_fanout" !max_fanout;
    Array.iter
      (fun lw ->
        match lw with
        | None -> ()
        | Some lw ->
          Metrics.incr ~by:lw.Lower.lw_registers_added "lower.registers_added";
          Metrics.incr ~by:lw.Lower.lw_skid_bits "lower.skid_bits")
      lowered
  end;
  {
    netlist = nl;
    device;
    recipe;
    kernels;
    sync_groups_emitted = !n_groups;
    max_sync_fanout = !max_fanout;
  }

(* ---- legacy single-call entry point ---- *)

let generate_body ~target_mhz ~device ~recipe ~name (df : Dataflow.t) =
  (match Dataflow.problems df with
  | [] -> ()
  | { Dataflow.pb_entity; pb_message } :: _ ->
    let entity =
      match pb_entity with
      | `Channel n -> Diag.Channel n
      | `Process n -> Diag.Process n
    in
    raise (Diag.Diagnostic (Diag.error ~entity ~stage:"elaborate" pb_message)));
  let scheds = schedule_processes ~target_mhz ~device ~recipe df in
  let dp = lower_processes ~device ~recipe ~name df scheds in
  emit_sync ~device ~recipe df dp

let generate ?(target_mhz = 300.) ~device ~recipe ~name (df : Dataflow.t) =
  (* Malformed inputs raise [Diag.Diagnostic] with the stage and the
     offending kernel/channel/process intact. This used to be flattened
     into an [Invalid_argument] string "for backward compatibility",
     which destroyed exactly the structure the compile service needs to
     return machine-readable error responses. *)
  let body () = generate_body ~target_mhz ~device ~recipe ~name df in
  if not (Trace.enabled ()) then body ()
  else
    Trace.with_span "generate"
      ~attrs:
        [
          ("design", Json.Str name); ("recipe", Json.Str (Style.label recipe));
        ]
      body

let kernel_dataflow kernel =
  let df = Dataflow.create () in
  let p =
    Dataflow.add_process df ~name:kernel.Kernel.name ~kernel ()
  in
  (* Anchor channel so the network validates; external-input channels with
     no matching FIFO are legal and skipped by the wiring pass. *)
  ignore
    (Dataflow.add_channel df
       ~name:(kernel.Kernel.name ^ "_anchor")
       ~src:(-1) ~dst:p ~dtype:(Dtype.Uint 8) ());
  df

let single_kernel ?(target_mhz = 300.) ~device ~recipe kernel =
  generate ~target_mhz ~device ~recipe
    ~name:(kernel.Kernel.name ^ "_" ^ Style.label recipe)
    (kernel_dataflow kernel)
