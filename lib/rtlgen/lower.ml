open Hlsb_ir
module Device = Hlsb_device.Device
module Netlist = Hlsb_netlist.Netlist
module Macro = Hlsb_netlist.Macro
module Structs = Hlsb_netlist.Structs
module Oplib = Hlsb_delay.Oplib
module Schedule = Hlsb_sched.Schedule
module Sched_report = Hlsb_sched.Report
module Style = Hlsb_ctrl.Style
module Skid = Hlsb_ctrl.Skid

type t = {
  lw_name : string;
  lw_depth : int;
  lw_done : int;
  lw_start_sinks : int list;
  lw_fifo_write_ifaces : (string * int * int) list;
  lw_fifo_read_ifaces : (string * int * int) list;
  lw_seq_cells : int list;
  lw_skid_bits : int;
  lw_registers_added : int;
}

(* Per-node lowering result: the cell whose output carries the node's value
   after its intrinsic/added latency, plus the cells at which this node's
   *inputs* arrive (a Load's address arrives at every BRAM unit). *)
type slot = {
  s_result : int option;  (** None for Const and value-less nodes *)
  s_arg_sinks : int list;  (** cells consuming this node's argument nets *)
}

let big_fanout = 8

let lower_body (d : Device.t) nl ~pipe ~fanout_trees (sched : Schedule.t) =
  let k = sched.Schedule.kernel in
  let dag = k.Kernel.dag in
  let kname = k.Kernel.name in
  let n = Dag.n_nodes dag in
  let entries = sched.Schedule.entries in
  let cname fmt = Printf.ksprintf (fun s -> kname ^ "." ^ s) fmt in
  let slots = Array.make n { s_result = None; s_arg_sinks = [] } in
  let seq_cells = ref [] in
  let start_sinks = ref [] in
  let fifo_rd = ref [] and fifo_wr = ref [] in
  let registers_added = ref 0 in
  let add_seq c = seq_cells := c :: !seq_cells in
  let new_reg name width =
    let c = Structs.add_register nl ~name ~width in
    add_seq c;
    c
  in
  (* Register chain of given length after a producer cell. *)
  let chain_after producer name width length =
    let rec go prev i acc =
      if i > length then List.rev acc
      else begin
        let r = new_reg (Printf.sprintf "%s_p%d" name i) width in
        ignore
          (Netlist.add_net nl
             ~name:(Printf.sprintf "%s_pn%d" name i)
             ~driver:prev ~sinks:[ r ] ~width ());
        go r (i + 1) (r :: acc)
      end
    in
    go producer 1 []
  in
  (* Memory banks are shared across all loads/stores of one buffer. Under
     the broadcast-aware flow, banks spanning many units get their read
     cascade pipelined (the BRAM output registers §4.1's added latency
     enables). *)
  let banks = Hashtbl.create 4 in
  let get_banks b =
    match Hashtbl.find_opt banks b with
    | Some mbs -> mbs
    | None ->
      let buf = Dag.buffer dag b in
      let p = buf.Dag.b_partition in
      let mbs =
        if p <= 1 then begin
          let units =
            Device.bram18_for
              ~width:(Dtype.width buf.Dag.b_dtype)
              ~depth:buf.Dag.b_depth
          in
          let read_pipeline = fanout_trees && units > 16 in
          [|
            Structs.add_membank d nl ~read_pipeline
              ~name:(cname "%s" buf.Dag.b_name)
              ~width:(Dtype.width buf.Dag.b_dtype)
              ~depth:buf.Dag.b_depth ();
          |]
        end
        else
          (* Cyclic array partitioning (§3.1): [p] independent banks of
             [depth/p] words each. The same data/address source must now
             reach every bank — partitioning multiplies the memories a
             broadcast serves, while each bank's own write net narrows. *)
          Array.init p (fun bk ->
            let depth = (buf.Dag.b_depth + p - 1) / p in
            let units =
              Device.bram18_for ~width:(Dtype.width buf.Dag.b_dtype) ~depth
            in
            let read_pipeline = fanout_trees && units > 16 in
            Structs.add_membank d nl ~read_pipeline
              ~name:(cname "%s_bk%d" buf.Dag.b_name bk)
              ~width:(Dtype.width buf.Dag.b_dtype)
              ~depth ())
      in
      Array.iter (fun mb -> Array.iter add_seq mb.Structs.mb_units) mbs;
      Hashtbl.add banks b mbs;
      mbs
  in
  (* ---- pass 1: cells per node ---- *)
  Dag.iter dag (fun v ->
    let e = entries.(v) in
    let dt = Dag.dtype dag v in
    let w = Dtype.width dt in
    let slot =
      match Dag.kind dag v with
      | Dag.Const _ -> { s_result = None; s_arg_sinks = [] }
      | Dag.Input name ->
        (* Data inputs are loaded by the datapath as it runs; only control
           interfaces (FIFO reads, the iteration counter) listen to the
           controller's start. *)
        let c = new_reg (cname "in_%s" name) w in
        { s_result = Some c; s_arg_sinks = [] }
      | Dag.Operation o ->
        (* Internal stages: intrinsic pipelining + §4.1 split stages. The
           broadcast-distribution stages are realized in the wiring pass as
           a fanout tree instead. The macro's combinational delay is spread
           across its internal stages (DSP MREG/PREG, float-core stages,
           retiming over the split registers). *)
        let internal = e.Schedule.e_latency - e.Schedule.e_bcast_levels in
        let c =
          Netlist.add_cell nl
            ~name:(cname "%s_%d" (Op.to_string o) v)
            ~kind:Netlist.Comb
            ~delay:(Oplib.logic_delay d o dt /. float_of_int (internal + 1))
            ~res:(Oplib.resources o dt)
        in
        let result =
          if internal > 0 then begin
            registers_added := !registers_added + e.Schedule.e_added_pipe;
            match List.rev (chain_after c (cname "r%d" v) w internal) with
            | last :: _ -> last
            | [] -> c
          end
          else c
        in
        { s_result = Some result; s_arg_sinks = [ c ] }
      | Dag.Load b when Array.length (get_banks b) > 1 ->
        (* partitioned read: the address reaches every bank's units, a
           bank-select mux funnels the read data back to one register *)
        let mbs = get_banks b in
        let all_units =
          Array.to_list mbs
          |> List.concat_map (fun mb -> Array.to_list mb.Structs.mb_units)
        in
        let mux =
          Netlist.add_cell nl
            ~name:(cname "ld%d_bmux" v)
            ~kind:Netlist.Comb ~delay:0.05 ~res:(Macro.logic w)
        in
        Array.iteri
          (fun bk mb ->
            ignore
              (Netlist.add_net nl
                 ~name:(cname "ld%d_bk%d" v bk)
                 ~driver:mb.Structs.mb_read_out ~sinks:[ mux ] ~width:w ()))
          mbs;
        let out = new_reg (cname "ld%d_q" v) w in
        ignore
          (Netlist.add_net nl
             ~name:(cname "ld%d_d" v)
             ~driver:mux ~sinks:[ out ] ~width:w ());
        let extra =
          max 0 (e.Schedule.e_added_pipe - mbs.(0).Structs.mb_read_latency)
        in
        let result =
          if extra > 0 then begin
            registers_added := !registers_added + extra;
            match List.rev (chain_after out (cname "ld%d" v) w extra) with
            | last :: _ -> last
            | [] -> out
          end
          else out
        in
        { s_result = Some result; s_arg_sinks = all_units }
      | Dag.Load b ->
        let mb = (get_banks b).(0) in
        let units = Array.to_list mb.Structs.mb_units in
        (* Synchronous read: one output register, plus any added stages. *)
        let out = new_reg (cname "ld%d_q" v) w in
        ignore
          (Netlist.add_net nl
             ~name:(cname "ld%d_d" v)
             ~driver:mb.Structs.mb_read_out ~sinks:[ out ] ~width:w ());
        let added = e.Schedule.e_added_pipe in
        if fanout_trees && added > 0 && mb.Structs.mb_n_units > 16 then begin
          (* Spend the added latency on pipelining the address broadcast —
             that is where the wire delay lives for big buffers. *)
          registers_added := !registers_added + added;
          let addr_root =
            Netlist.add_cell nl
              ~name:(cname "ld%d_addr" v)
              ~kind:Netlist.Comb ~delay:0.05 ~res:(Macro.logic 16)
          in
          ignore
            (Structs.add_fanout_tree nl
               ~name:(cname "ld%d_atree" v)
               ~driver:addr_root ~sinks:units ~width:16 ~levels:added
               ~leaf_fanout:16);
          { s_result = Some out; s_arg_sinks = [ addr_root ] }
        end
        else begin
          let extra =
            max 0 (e.Schedule.e_added_pipe - mb.Structs.mb_read_latency)
          in
          let result =
            if extra > 0 then begin
              registers_added := !registers_added + extra;
              match List.rev (chain_after out (cname "ld%d" v) w extra) with
              | last :: _ -> last
              | [] -> out
            end
            else out
          in
          { s_result = Some result; s_arg_sinks = units }
        end
      | Dag.Store b when Array.length (get_banks b) > 1 ->
        (* partitioned write: one bundle source, one write net per bank —
           each net narrower than the unpartitioned broadcast would be *)
        let mbs = get_banks b in
        let bundle_w = w + 16 in
        let st =
          Netlist.add_cell nl ~name:(cname "st%d" v) ~kind:Netlist.Comb
            ~delay:0.10 ~res:(Macro.logic bundle_w)
        in
        Array.iteri
          (fun bk mb ->
            let units = Array.to_list mb.Structs.mb_units in
            let cls =
              if mb.Structs.mb_n_units >= big_fanout then
                Netlist.Data_broadcast
              else Netlist.Data
            in
            ignore
              (Netlist.add_net nl ~cls
                 ~name:(cname "st%d_w%d" v bk)
                 ~driver:st ~sinks:units ~width:bundle_w ()))
          mbs;
        { s_result = None; s_arg_sinks = [ st ] }
      | Dag.Store b ->
        let mb = (get_banks b).(0) in
        (* Bundle value+address; the bundle cell is the broadcast source of
           Fig. 4 (a raw mid-chain net under the baseline flow). *)
        let bundle_w = w + 16 in
        let st =
          Netlist.add_cell nl ~name:(cname "st%d" v) ~kind:Netlist.Comb
            ~delay:0.10 ~res:(Macro.logic bundle_w)
        in
        let units = Array.to_list mb.Structs.mb_units in
        let added = e.Schedule.e_added_pipe in
        if fanout_trees && added > 0 && mb.Structs.mb_n_units > 1 then begin
          registers_added := !registers_added + added;
          ignore
            (Structs.add_fanout_tree nl ~name:(cname "st%d_tree" v) ~driver:st
               ~sinks:units ~width:bundle_w ~levels:added ~leaf_fanout:16)
        end
        else begin
          let cls =
            if mb.Structs.mb_n_units >= big_fanout then Netlist.Data_broadcast
            else Netlist.Data
          in
          ignore
            (Netlist.add_net nl ~cls
               ~name:(cname "st%d_w" v)
               ~driver:st ~sinks:units ~width:bundle_w ())
        end;
        { s_result = None; s_arg_sinks = [ st ] }
      | Dag.Fifo_read f ->
        let fd = Dag.fifo dag f in
        let c =
          Netlist.add_cell nl
            ~name:(cname "fifo_%s" fd.Dag.f_name)
            ~kind:Netlist.Seq ~delay:0.2
            ~res:(Macro.fifo ~width:w ~depth:fd.Dag.f_depth)
        in
        add_seq c;
        start_sinks := c :: !start_sinks;
        fifo_rd := (fd.Dag.f_name, c, w) :: !fifo_rd;
        { s_result = Some c; s_arg_sinks = [] }
      | Dag.Fifo_write f ->
        (* The FIFO write interface is registered (the macro's input
           stage), so cross-kernel channel wires start at a register and
           do not extend the producer's datapath cycle. *)
        let fd = Dag.fifo dag f in
        let c =
          Netlist.add_cell nl
            ~name:(cname "wr_%s" fd.Dag.f_name)
            ~kind:Netlist.Seq ~delay:0.2
            ~res:(Netlist.add_res (Macro.logic w) (Macro.register w))
        in
        add_seq c;
        fifo_wr := (fd.Dag.f_name, c, w) :: !fifo_wr;
        { s_result = None; s_arg_sinks = [ c ] }
      | Dag.Output name ->
        let c =
          Netlist.add_cell nl ~name:(cname "out_%s" name)
            ~kind:Netlist.Port_out ~delay:0. ~res:Netlist.zero_res
        in
        { s_result = None; s_arg_sinks = [ c ] }
    in
    slots.(v) <- slot);
  (* ---- pass 2: nets (args -> consumers), with cross-cycle registers ---- *)
  (* Boundary register chains, per producer node, extended lazily. *)
  let chains : (int, (int, int) Hashtbl.t) Hashtbl.t = Hashtbl.create 16 in
  let chain_reg v j =
    (* register holding v's value j cycles after its result cycle *)
    let table =
      match Hashtbl.find_opt chains v with
      | Some t -> t
      | None ->
        let t = Hashtbl.create 4 in
        Hashtbl.add chains v t;
        t
    in
    let rec get j =
      match Hashtbl.find_opt table j with
      | Some c -> c
      | None ->
        let w = Dtype.width (Dag.dtype dag v) in
        let prev =
          if j = 1 then Option.get slots.(v).s_result else get (j - 1)
        in
        let r = new_reg (cname "v%d_s%d" v j) w in
        ignore
          (Netlist.add_net nl
             ~name:(cname "v%d_sn%d" v j)
             ~driver:prev ~sinks:[ r ] ~width:w ());
        Hashtbl.replace table j r;
        r
    in
    get j
  in
  (* Cycle at which v's value leaves its internal pipeline; the remaining
     e_bcast_levels stages up to the scheduler's result cycle belong to the
     distribution tree built here. *)
  let internal_done_cycle v =
    Schedule.finish_cycle sched v - entries.(v).Schedule.e_bcast_levels
  in
  (* Group each node's consumers by cycle distance. *)
  Dag.iter dag (fun v ->
    match slots.(v).s_result with
    | None -> ()
    | Some rc ->
      let w = Dtype.width (Dag.dtype dag v) in
      let rcyc = internal_done_cycle v in
      let groups = Hashtbl.create 4 in
      List.iter
        (fun u ->
          match slots.(u).s_arg_sinks with
          | [] -> ()
          | ucells ->
            (* one sink entry per read (multiplicity matters for fanout) *)
            let reads =
              List.length (List.filter (fun a -> a = v) (Dag.args dag u))
            in
            let j = max 0 (entries.(u).Schedule.e_cycle - rcyc) in
            let cur = Option.value ~default:[] (Hashtbl.find_opt groups j) in
            let repeated =
              List.concat (List.init reads (fun _ -> ucells))
            in
            Hashtbl.replace groups j (repeated @ cur))
        (Dag.consumers dag v);
      let js = Hashtbl.fold (fun j _ acc -> j :: acc) groups [] in
      List.iter
        (fun j ->
          let sinks = List.rev (Hashtbl.find groups j) in
          let cls =
            if List.length sinks >= big_fanout then Netlist.Data_broadcast
            else Netlist.Data
          in
          if j = 0 then
            (* Consumers chained directly to the producer — under the
               baseline flow this is the raw mid-chain broadcast of §3.1. *)
            ignore
              (Netlist.add_net nl ~cls
                 ~name:(cname "v%d_c0" v)
                 ~driver:rc ~sinks ~width:w ())
          else if fanout_trees && List.length sinks > 16 then begin
            registers_added := !registers_added + j;
            ignore
              (Structs.add_fanout_tree nl
                 ~name:(cname "v%d_ft%d" v j)
                 ~driver:rc ~sinks ~width:w ~levels:j ~leaf_fanout:8)
          end
          else begin
            let reg = chain_reg v j in
            ignore
              (Netlist.add_net nl ~cls
                 ~name:(cname "v%d_c%d" v j)
                 ~driver:reg ~sinks ~width:w ())
          end)
        (List.sort compare js));
  (* Iteration counter feeding the done flag: created before control
     generation so the stall net reaches it too. *)
  let counter = new_reg (cname "iter_cnt") 16 in
  start_sinks := counter :: !start_sinks;
  (* ---- pass 3: pipeline control ---- *)
  let depth = sched.Schedule.depth in
  let skid_bits = ref 0 in
  (match pipe with
  | Style.Stall ->
    (* FIFO status -> stall logic -> every sequential element (Fig. 8). *)
    let stall =
      Netlist.add_cell nl ~name:(cname "stall_logic") ~kind:Netlist.Comb
        ~delay:(2. *. d.Device.t_lut)
        ~res:(Macro.logic (4 + List.length !fifo_rd + List.length !fifo_wr))
    in
    List.iter
      (fun (name, c, _) ->
        ignore
          (Netlist.add_net nl ~cls:Netlist.Ctrl_pipeline
             ~name:(cname "full_%s" name)
             ~driver:c ~sinks:[ stall ] ~width:1 ()))
      !fifo_rd;
    let sinks = List.rev !seq_cells in
    if sinks <> [] then
      ignore
        (Netlist.add_net nl ~cls:Netlist.Ctrl_pipeline ~name:(cname "stall")
           ~driver:stall ~sinks ~width:1 ())
  | Style.Skid { min_area } ->
    (* Valid-bit chain accompanying the data (always-flowing pipeline). *)
    let valids = Structs.add_reg_chain nl ~name:(cname "valid") ~width:1 ~length:(max 1 depth) in
    List.iter add_seq valids;
    let widths = Sched_report.stage_widths sched in
    let out_width = max 1 (Kernel.data_width_out k) in
    let plan =
      if min_area then Skid.min_area ~widths ~out_width
      else Skid.end_only ~widths ~out_width
    in
    (* Back-pressure is registered every few stages; the buffers absorb the
       extra in-flight entries. *)
    let ctrl_stages = max 2 (depth / 8) in
    let first_fifo = ref None in
    List.iter
      (fun (pos, depth_entries, width) ->
        (* a zero-width segment still carries its valid bit *)
        let width = max 1 width in
        let entries_total = depth_entries + ctrl_stages in
        let c =
          Netlist.add_cell nl
            ~name:(cname "skid_%d" pos)
            ~kind:Netlist.Seq ~delay:0.2
            ~res:(Macro.fifo ~width ~depth:entries_total)
        in
        add_seq c;
        skid_bits := !skid_bits + (entries_total * width);
        if !first_fifo = None then first_fifo := Some c;
        (* data entering the skid buffer comes from the nearest valid reg *)
        let src =
          let idx = min (pos - 1) (List.length valids - 1) in
          List.nth valids idx
        in
        ignore
          (Netlist.add_net nl
             ~name:(cname "skid_in_%d" pos)
             ~driver:src ~sinks:[ c ] ~width ()))
      plan.Skid.depths;
    (* Occupancy of the first buffer gates upstream reads, through a short
       register pipeline (local nets only — no broadcast). *)
    (match !first_fifo with
    | None -> ()
    | Some f ->
      let hops = Structs.add_reg_chain nl ~name:(cname "bp") ~width:1 ~length:ctrl_stages in
      List.iter add_seq hops;
      (match hops with
      | first :: _ ->
        ignore
          (Netlist.add_net nl ~cls:Netlist.Ctrl_pipeline
             ~name:(cname "bp_src")
             ~driver:f ~sinks:[ first ] ~width:1 ())
      | [] -> ());
      let gate =
        Netlist.add_cell nl ~name:(cname "read_gate") ~kind:Netlist.Comb
          ~delay:d.Device.t_lut ~res:(Macro.logic 4)
      in
      let last_hop = List.nth hops (List.length hops - 1) in
      ignore
        (Netlist.add_net nl ~cls:Netlist.Ctrl_pipeline
           ~name:(cname "bp_gate")
           ~driver:last_hop ~sinks:[ gate ] ~width:1 ());
      let read_sinks = List.map (fun (_, c, _) -> c) !fifo_rd in
      if read_sinks <> [] then
        ignore
          (Netlist.add_net nl ~cls:Netlist.Ctrl_pipeline
             ~name:(cname "read_en")
             ~driver:gate ~sinks:read_sinks ~width:1 ())));
  (* ---- done flag ---- *)
  let done_cell =
    Netlist.add_cell nl ~name:(cname "done") ~kind:Netlist.Comb
      ~delay:(2. *. d.Device.t_lut) ~res:(Macro.logic 16)
  in
  ignore
    (Netlist.add_net nl ~cls:Netlist.Ctrl_sync ~name:(cname "cnt_q")
       ~driver:counter ~sinks:[ done_cell ] ~width:16 ());
  {
    lw_name = kname;
    lw_depth = depth;
    lw_done = done_cell;
    lw_start_sinks = List.rev !start_sinks;
    lw_fifo_write_ifaces = List.rev !fifo_wr;
    lw_fifo_read_ifaces = List.rev !fifo_rd;
    lw_seq_cells = List.rev !seq_cells;
    lw_skid_bits = !skid_bits;
    lw_registers_added = !registers_added;
  }

let lower d nl ~pipe ~fanout_trees (sched : Schedule.t) =
  let module Trace = Hlsb_telemetry.Trace in
  if not (Trace.enabled ()) then lower_body d nl ~pipe ~fanout_trees sched
  else
    Trace.with_span "lower"
      ~attrs:
        [
          ( "kernel",
            Hlsb_telemetry.Json.Str sched.Schedule.kernel.Hlsb_ir.Kernel.name );
          ("depth", Hlsb_telemetry.Json.Int sched.Schedule.depth);
        ]
      (fun () -> lower_body d nl ~pipe ~fanout_trees sched)
