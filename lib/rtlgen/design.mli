(** Top-level RTL generation for a dataflow design: schedules every kernel,
    lowers them into one netlist, wires cross-kernel FIFO channels by name,
    and emits the synchronization controllers — naive (one AND-tree over
    every done in a sync group, one start broadcast to every member,
    Fig. 6) or pruned (§4.2: independent flows get their own controller;
    parallel modules wait only on the longest static latency).

    The work is exposed both as the legacy single-call {!generate} and as
    the three staged functions the compile pipeline ([Core.Pipeline]) runs
    and caches individually: {!schedule_processes} (pure per-kernel
    scheduling, reusable across recipes that share a [sched_mode]),
    {!lower_processes} (netlist emission + channel wiring) and
    {!emit_sync} (controller emission, completing a {!t}). *)

type kernel_info = {
  ki_name : string;
  ki_depth : int;
  ki_registers_added : int;
  ki_skid_bits : int;
}

type t = {
  netlist : Hlsb_netlist.Netlist.t;
  device : Hlsb_device.Device.t;
  recipe : Hlsb_ctrl.Style.recipe;
  kernels : kernel_info list;
  sync_groups_emitted : int;
  max_sync_fanout : int;  (** largest start-broadcast fanout emitted *)
}

type datapath = {
  dp_netlist : Hlsb_netlist.Netlist.t;
  dp_lowered : Lower.t option array;  (** indexed by process id *)
}
(** Artifact of the [lower] stage: the netlist holding every kernel's
    datapath with channels wired, before synchronization controllers.
    [emit_sync] appends to [dp_netlist] in place — a datapath feeds
    exactly one {!emit_sync} call. *)

val schedule_mode :
  Hlsb_device.Device.t -> Hlsb_ctrl.Style.recipe -> Hlsb_sched.Schedule.mode

val schedule_processes :
  ?target_mhz:float ->
  ?inject:Hlsb_sched.Schedule.inject ->
  device:Hlsb_device.Device.t ->
  recipe:Hlsb_ctrl.Style.recipe ->
  Hlsb_ir.Dataflow.t ->
  Hlsb_sched.Schedule.t option array
(** Schedule every kernel process ([None] for kernel-less processes).
    Depends only on the recipe's [sched] mode (plus the target clock and
    any register injection), so the pipeline reuses the result across
    recipes that agree on them. *)

val lower_processes :
  device:Hlsb_device.Device.t ->
  recipe:Hlsb_ctrl.Style.recipe ->
  name:string ->
  Hlsb_ir.Dataflow.t ->
  Hlsb_sched.Schedule.t option array ->
  datapath
(** Lower the scheduled kernels into a fresh netlist and wire the
    cross-kernel FIFO channels. Raises {!Hlsb_util.Diag.Diagnostic}
    (stage ["lower"], entity [Channel]) naming both the channel and the
    offending kernel when an endpoint lacks the matching FIFO interface. *)

val emit_sync :
  device:Hlsb_device.Device.t ->
  recipe:Hlsb_ctrl.Style.recipe ->
  Hlsb_ir.Dataflow.t ->
  datapath ->
  t
(** Emit the synchronization controllers into the datapath's netlist and
    assemble the design record. *)

val generate :
  ?target_mhz:float ->
  device:Hlsb_device.Device.t ->
  recipe:Hlsb_ctrl.Style.recipe ->
  name:string ->
  Hlsb_ir.Dataflow.t ->
  t
(** The staged functions above in sequence, after validating the network.
    Raises {!Hlsb_util.Diag.Diagnostic} if the dataflow network fails
    validation (stage ["elaborate"], naming the offending channel or
    process) or a channel endpoint kernel lacks the correspondingly-named
    FIFO (stage ["lower"]) — the same structured payload the pipeline API
    returns as data, so callers like the compile daemon can render
    machine-readable error responses. *)

val kernel_dataflow : Hlsb_ir.Kernel.t -> Hlsb_ir.Dataflow.t
(** Wrap one kernel in a single-process dataflow network (with the anchor
    input channel that makes it validate), as {!single_kernel} does. *)

val single_kernel :
  ?target_mhz:float ->
  device:Hlsb_device.Device.t ->
  recipe:Hlsb_ctrl.Style.recipe ->
  Hlsb_ir.Kernel.t ->
  t
(** Convenience wrapper for designs that are one pipelined kernel. *)
