(** Elaboration: the parsed C subset becomes the IR the rest of the flow
    consumes. A kernel function becomes a {!Hlsb_ir.Kernel.t} (its
    pipelined loop body as an operation DAG, unrolled loops replicated,
    arrays mapped to register files or BRAM buffers); a
    [#pragma HLS dataflow] function becomes a {!Hlsb_ir.Dataflow.t} whose
    processes are the called kernels, glued into one sync group exactly as
    the front end the paper studies does (§3.2). *)

exception Error of string

val kernel_of_func : Ast.program -> Ast.func -> Hlsb_ir.Kernel.t
(** Elaborate one kernel function. The program is supplied for context
    (future inlining); only [func] is elaborated. Raises {!Error} on
    unsupported constructs with a message naming the construct. *)

val dataflow_of_func : Ast.program -> Ast.func -> Hlsb_ir.Dataflow.t
(** Elaborate a [#pragma HLS dataflow] region: its body must consist of
    stream declarations and calls to kernel functions defined in the same
    program. Channels are matched by stream-argument name; all called
    processes land in one sync group (the paper's over-synchronization,
    which {!Hlsb_ctrl.Sync.split_independent} then prunes). *)

val buffer_threshold : int
(** Array size (elements) at or above which a local array maps to BRAM
    rather than a register file. *)

val pragma_is : string -> string -> bool
(** [pragma_is kind p] — the pragma text [p] is [#pragma HLS <kind> ...]
    (case-insensitive, requires the "hls" prefix word). *)

val pragma_factor : string -> int option
(** [factor=N] value of a pragma, if present and well-formed. *)

val pragma_value_raw : string -> string -> string option
(** [pragma_value_raw key p] — the case-preserved value of [key=value]
    in pragma text [p] (keys matched case-insensitively). Use for values
    that name identifiers, e.g. [variable=NAME]. *)
