open Hlsb_ir

type error = {
  err_message : string;
  err_line : int option;
}

let pp_error fmt e =
  match e.err_line with
  | Some l -> Format.fprintf fmt "line %d: %s" l e.err_message
  | None -> Format.pp_print_string fmt e.err_message

let wrap f =
  try Ok (f ()) with
  | Lexer.Error (msg, line) -> Error { err_message = msg; err_line = Some line }
  | Parser.Error (msg, line) -> Error { err_message = msg; err_line = Some line }
  | Elab.Error msg -> Error { err_message = msg; err_line = None }

let parse src = wrap (fun () -> Parser.program (Lexer.tokenize src))

let has_dataflow_pragma (f : Ast.func) =
  List.exists
    (function
      | Ast.Pragma_stmt p ->
        List.mem "dataflow"
          (String.split_on_char ' ' (String.lowercase_ascii p))
      | _ -> false)
    f.Ast.f_body

let kernel_of_program ?name program =
  wrap (fun () ->
    let f =
      match name with
      | Some n -> (
        match List.find_opt (fun f -> f.Ast.f_name = n) program with
        | Some f -> f
        | None -> raise (Elab.Error (Printf.sprintf "no function named %s" n)))
      | None -> (
        match List.filter (fun f -> not (has_dataflow_pragma f)) program with
        | [ f ] -> f
        | [] -> raise (Elab.Error "no kernel function found")
        | fs ->
          raise
            (Elab.Error
               (Printf.sprintf "%d kernel functions found; pass ~name"
                  (List.length fs))))
    in
    Elab.kernel_of_func program f)

let kernel_of_string ?name src =
  match parse src with
  | Error e -> Error e
  | Ok program -> kernel_of_program ?name program

(* Elaborate a chosen top function into a dataflow network; raises the
   Elab/parser exceptions, [wrap] at the callers turns them into errors. *)
let design_of_top program top_f =
    if has_dataflow_pragma top_f then Elab.dataflow_of_func program top_f
    else begin
      (* wrap a single kernel into a one-process network *)
      let kernel = Elab.kernel_of_func program top_f in
      let df = Dataflow.create () in
      let p = Dataflow.add_process df ~name:kernel.Kernel.name ~kernel () in
      let dag = kernel.Kernel.dag in
      let reads = Hashtbl.create 4 and writes = Hashtbl.create 4 in
      Dag.iter dag (fun v ->
        match Dag.kind dag v with
        | Dag.Fifo_read f ->
          Hashtbl.replace reads (Dag.fifo dag f).Dag.f_name
            (Dag.fifo dag f).Dag.f_dtype
        | Dag.Fifo_write f ->
          Hashtbl.replace writes (Dag.fifo dag f).Dag.f_name
            (Dag.fifo dag f).Dag.f_dtype
        | _ -> ());
      (* a fifo both written and read by the kernel is internal (stream
         insertion creates these): it is not a port of the network *)
      Hashtbl.iter
        (fun name dtype ->
          if not (Hashtbl.mem writes name) then
            ignore (Dataflow.add_channel df ~name ~src:(-1) ~dst:p ~dtype ()))
        reads;
      Hashtbl.iter
        (fun name dtype ->
          if not (Hashtbl.mem reads name) then
            ignore (Dataflow.add_channel df ~name ~src:p ~dst:(-1) ~dtype ()))
        writes;
      df
    end

let design_of_program ?top program =
  wrap (fun () ->
    let top_f =
      match top with
      | Some n -> (
        match List.find_opt (fun f -> f.Ast.f_name = n) program with
        | Some f -> f
        | None -> raise (Elab.Error (Printf.sprintf "no function named %s" n)))
      | None -> (
        match List.filter has_dataflow_pragma program with
        | [ f ] -> f
        | [] -> (
          match List.rev program with
          | f :: _ -> f
          | [] -> raise (Elab.Error "empty program"))
        | _ -> raise (Elab.Error "several dataflow regions; pass ~top"))
    in
    design_of_top program top_f)

let design_of_string ?top src =
  match parse src with
  | Error e -> Error e
  | Ok program -> design_of_program ?top program
