(* Abstract syntax of the C subset. Types only; construction happens in
   {!Parser}, consumption in {!Elab}. *)

type ctype =
  | C_bool
  | C_int of int * bool  (* width, signed *)
  | C_float
  | C_double

type binop =
  | B_add
  | B_sub
  | B_mul
  | B_div
  | B_mod
  | B_and
  | B_or
  | B_xor
  | B_shl
  | B_shr
  | B_lt
  | B_le
  | B_gt
  | B_ge
  | B_eq
  | B_ne
  | B_land
  | B_lor

type unop =
  | U_neg
  | U_lnot
  | U_bnot
  | U_addr  (* &x, used only in fifo.read(&x) *)

type expr =
  | Int_const of int64
  | Float_const of float
  | Var of string
  | Field of expr * string  (* prev[j].x *)
  | Index of expr * expr
  | Binop of binop * expr * expr
  | Unop of unop * expr
  | Ternary of expr * expr * expr
  | Call of string * expr list  (* abs, min, max, log2 *)
  | Method of string * string * expr list  (* fifo.read(), fifo.write(v) *)

type stmt =
  | Decl of ctype * string * int option * expr option
      (* type, name, array size, initializer *)
  | Stream_decl of ctype * string
  | Assign of expr * expr
  | Plus_assign of expr * expr
  | Expr_stmt of expr
  | For of for_loop
  | If of expr * stmt list * stmt list
  | Return of expr option
  | Pragma_stmt of string

and for_loop = {
  fl_var : string;
  fl_lo : int64;
  fl_hi : int64;  (* exclusive bound: var < fl_hi *)
  fl_pragmas : string list;  (* pragmas attached before/inside the loop *)
  fl_body : stmt list;
}

type param =
  | P_stream of ctype * string
  | P_scalar of ctype * string
  | P_array of ctype * string * int

type func = {
  f_name : string;
  f_ret : ctype option;
  f_params : param list;
  f_body : stmt list;
}

type program = func list

(* ---- source printer ----

   Emits legal, re-parsable source: [parse (to_source p)] is structurally
   equal to [p] for any parser-produced program. Two caveats, both outside
   what the parser itself can produce: a negative [Int_const] re-parses as
   [Unop (U_neg, ...)] and float literals are printed without exponents
   (the lexer accepts only [digits.digits] forms). *)

let ctype_to_string = function
  | C_bool -> "bool"
  | C_float -> "float"
  | C_double -> "double"
  | C_int (w, signed) ->
    let base =
      match w with
      | 8 -> "char"
      | 16 -> "short"
      | 32 -> "int"
      | 64 -> "long"
      | w -> invalid_arg (Printf.sprintf "Ast.ctype_to_string: width %d" w)
    in
    if signed then base else "unsigned " ^ base

(* The lexer has no exponent form, so floats must print as digits.digits. *)
let float_literal v =
  let s = Printf.sprintf "%.17g" v in
  let plain =
    if String.contains s 'e' || String.contains s 'n' || String.contains s 'i'
    then Printf.sprintf "%.20f" v
    else s
  in
  if String.contains plain '.' then plain else plain ^ ".0"

let binop_prec = function
  | B_lor -> 1
  | B_land -> 2
  | B_or -> 3
  | B_xor -> 4
  | B_and -> 5
  | B_eq | B_ne -> 6
  | B_lt | B_le | B_gt | B_ge -> 7
  | B_shl | B_shr -> 8
  | B_add | B_sub -> 9
  | B_mul | B_div | B_mod -> 10

let binop_to_string = function
  | B_add -> "+"
  | B_sub -> "-"
  | B_mul -> "*"
  | B_div -> "/"
  | B_mod -> "%"
  | B_and -> "&"
  | B_or -> "|"
  | B_xor -> "^"
  | B_shl -> "<<"
  | B_shr -> ">>"
  | B_lt -> "<"
  | B_le -> "<="
  | B_gt -> ">"
  | B_ge -> ">="
  | B_eq -> "=="
  | B_ne -> "!="
  | B_land -> "&&"
  | B_lor -> "||"

let unop_to_string = function
  | U_neg -> "-"
  | U_lnot -> "!"
  | U_bnot -> "~"
  | U_addr -> "&"

(* [level] is the minimum precedence the context requires; parenthesize
   whenever this node binds looser. Parentheses are AST-transparent in the
   parser, so extra ones never break the round trip. *)
let rec expr_to_buf buf level e =
  let paren needed body =
    if level > needed then begin
      Buffer.add_char buf '(';
      body ();
      Buffer.add_char buf ')'
    end
    else body ()
  in
  match e with
  | Int_const v ->
    if Int64.compare v 0L < 0 then begin
      (* re-parses as U_neg of the magnitude; parser never produces this *)
      Buffer.add_char buf '(';
      Buffer.add_string buf (Int64.to_string v);
      Buffer.add_char buf ')'
    end
    else Buffer.add_string buf (Int64.to_string v)
  | Float_const v -> Buffer.add_string buf (float_literal v)
  | Var name -> Buffer.add_string buf name
  | Field (base, f) ->
    paren 12 (fun () ->
      expr_to_buf buf 12 base;
      Buffer.add_char buf '.';
      Buffer.add_string buf f)
  | Index (base, idx) ->
    paren 12 (fun () ->
      expr_to_buf buf 12 base;
      Buffer.add_char buf '[';
      expr_to_buf buf 0 idx;
      Buffer.add_char buf ']')
  | Binop (op, a, b) ->
    let p = binop_prec op in
    paren p (fun () ->
      expr_to_buf buf p a;
      Buffer.add_char buf ' ';
      Buffer.add_string buf (binop_to_string op);
      Buffer.add_char buf ' ';
      expr_to_buf buf (p + 1) b)
  | Unop (op, a) ->
    paren 11 (fun () ->
      Buffer.add_string buf (unop_to_string op);
      expr_to_buf buf 12 a)
  | Ternary (c, t, f) ->
    paren 0 (fun () ->
      expr_to_buf buf 1 c;
      Buffer.add_string buf " ? ";
      expr_to_buf buf 1 t;
      Buffer.add_string buf " : ";
      expr_to_buf buf 1 f)
  | Call (fn, args) ->
    paren 12 (fun () ->
      Buffer.add_string buf fn;
      args_to_buf buf args)
  | Method (obj, meth, args) ->
    paren 12 (fun () ->
      Buffer.add_string buf obj;
      Buffer.add_char buf '.';
      Buffer.add_string buf meth;
      args_to_buf buf args)

and args_to_buf buf args =
  Buffer.add_char buf '(';
  List.iteri
    (fun i a ->
      if i > 0 then Buffer.add_string buf ", ";
      expr_to_buf buf 0 a)
    args;
  Buffer.add_char buf ')'

let expr_to_string e =
  let buf = Buffer.create 64 in
  expr_to_buf buf 0 e;
  Buffer.contents buf

let rec stmt_to_buf buf indent s =
  let pad () = Buffer.add_string buf (String.make indent ' ') in
  let line fmt = Printf.ksprintf (fun t -> pad (); Buffer.add_string buf t; Buffer.add_char buf '\n') fmt in
  match s with
  | Decl (ty, name, size, init) ->
    pad ();
    Buffer.add_string buf (ctype_to_string ty);
    Buffer.add_char buf ' ';
    Buffer.add_string buf name;
    (match size with
    | Some n -> Buffer.add_string buf (Printf.sprintf "[%d]" n)
    | None -> ());
    (match init with
    | Some e ->
      Buffer.add_string buf " = ";
      expr_to_buf buf 0 e
    | None -> ());
    Buffer.add_string buf ";\n"
  | Stream_decl (ty, name) -> line "stream<%s> %s;" (ctype_to_string ty) name
  | Assign (lhs, rhs) -> line "%s = %s;" (expr_to_string lhs) (expr_to_string rhs)
  | Plus_assign (lhs, rhs) ->
    line "%s += %s;" (expr_to_string lhs) (expr_to_string rhs)
  | Expr_stmt e -> line "%s;" (expr_to_string e)
  | Return None -> line "return;"
  | Return (Some e) -> line "return %s;" (expr_to_string e)
  | Pragma_stmt p -> line "#pragma %s" p
  | If (cond, then_, else_) ->
    line "if (%s) {" (expr_to_string cond);
    List.iter (stmt_to_buf buf (indent + 2)) then_;
    if else_ = [] then line "}"
    else begin
      line "} else {";
      List.iter (stmt_to_buf buf (indent + 2)) else_;
      line "}"
    end
  | For fl ->
    line "for (int %s = %Ld; %s < %Ld; %s++) {" fl.fl_var fl.fl_lo fl.fl_var
      fl.fl_hi fl.fl_var;
    (* leading pragmas re-attach to the loop via the parser's split_pragmas *)
    List.iter
      (fun p ->
        Buffer.add_string buf (String.make (indent + 2) ' ');
        Buffer.add_string buf ("#pragma " ^ p);
        Buffer.add_char buf '\n')
      fl.fl_pragmas;
    List.iter (stmt_to_buf buf (indent + 2)) fl.fl_body;
    line "}"

let param_to_string = function
  | P_stream (ty, name) -> Printf.sprintf "stream<%s> &%s" (ctype_to_string ty) name
  | P_scalar (ty, name) -> Printf.sprintf "%s %s" (ctype_to_string ty) name
  | P_array (ty, name, size) ->
    Printf.sprintf "%s %s[%d]" (ctype_to_string ty) name size

let func_to_buf buf f =
  let ret = match f.f_ret with None -> "void" | Some t -> ctype_to_string t in
  Buffer.add_string buf ret;
  Buffer.add_char buf ' ';
  Buffer.add_string buf f.f_name;
  Buffer.add_char buf '(';
  List.iteri
    (fun i p ->
      if i > 0 then Buffer.add_string buf ", ";
      Buffer.add_string buf (param_to_string p))
    f.f_params;
  Buffer.add_string buf ") {\n";
  List.iter (stmt_to_buf buf 2) f.f_body;
  Buffer.add_string buf "}\n"

let to_source (p : program) =
  let buf = Buffer.create 1024 in
  List.iteri
    (fun i f ->
      if i > 0 then Buffer.add_char buf '\n';
      func_to_buf buf f)
    p;
  Buffer.contents buf

let pp fmt p = Format.pp_print_string fmt (to_source p)
