(** Front end for a C subset rich enough to express every code snippet in
    the paper (Figs. 1, 3, 5, 7, 13, 18) and compile it through the flow.

    Accepted language, informally:

    {v
    program   := function*
    function  := type name '(' params ')' '{' stmt* '}'
    params    := (stream '<' type '>' ['&'] name | type name ['[' INT ']'])*
    stmt      := '#pragma' ... | type name ['[' INT ']'] ['=' expr] ';'
               | 'stream' '<' type '>' name ';'
               | lvalue ('=' | '+=') expr ';' | expr ';'
               | 'for' '(' 'int' i '=' INT ';' i '<' INT ';' i '++' ')' block
               | 'if' '(' expr ')' block ['else' block] | 'return' [expr] ';'
    expr      := C expressions with + - * / % & | ^ << >> comparisons
                 && || ! ~ ternary, abs/min/max/log2 calls,
                 s.read() / s.read(&x) / s.write(e), a[i], a[i].field
    v}

    Pragmas: [#pragma HLS pipeline [II=n]] marks the pipelined loop (its
    trip count becomes the kernel's); [#pragma HLS unroll [factor=n]]
    fully unrolls; [#pragma HLS dataflow] marks a network region whose
    body is kernel calls over shared streams.

    Types: [bool], [char]/[short]/[int]/[long] (+ [unsigned]), [float],
    [double], and the aliases [data_t]/[int8_t]/[int16_t]/[int32_t]/
    [uint32_t]/[uint64_t]. Arrays of at least {!Elab.buffer_threshold}
    elements map to BRAM buffers, smaller ones to register files. *)

type error = {
  err_message : string;
  err_line : int option;
}

val pp_error : Format.formatter -> error -> unit

val parse : string -> (Ast.program, error) result
(** Lex + parse. *)

val has_dataflow_pragma : Ast.func -> bool
(** The function body carries a [#pragma HLS dataflow]. *)

val kernel_of_program :
  ?name:string -> Ast.program -> (Hlsb_ir.Kernel.t, error) result
(** Elaborate an already-parsed program containing exactly one kernel
    function (or, with [name], the named function) to a kernel. Programs
    produced by {!Hlsb_transform} plans flow through here unchanged. *)

val kernel_of_string :
  ?name:string -> string -> (Hlsb_ir.Kernel.t, error) result
(** Compile source text containing exactly one kernel function (or, with
    [name], the named function) to a kernel. *)

val design_of_program :
  ?top:string -> Ast.program -> (Hlsb_ir.Dataflow.t, error) result
(** Elaborate an already-parsed (and possibly transformed) program whose
    [top] function (default: the last function, or the only
    [#pragma HLS dataflow] function) describes a dataflow network; a
    single kernel function is wrapped into a one-process network. *)

val design_of_string :
  ?top:string -> string -> (Hlsb_ir.Dataflow.t, error) result
(** [parse] + {!design_of_program}. *)
