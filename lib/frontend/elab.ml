open Hlsb_ir

exception Error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

let buffer_threshold = 256

let dtype_of_ctype = function
  | Ast.C_bool -> Dtype.Bool
  | Ast.C_int (w, true) -> Dtype.Int w
  | Ast.C_int (w, false) -> Dtype.Uint w
  | Ast.C_float -> Dtype.Float32
  | Ast.C_double -> Dtype.Float64

(* What a name is bound to during elaboration. *)
type binding =
  | Scalar of Dag.node
  | Const_int of int64
  | Reg_array of Dag.node option array
  | Buffer of int
  | Stream of int
  | Param_array of Ast.ctype  (** unsized/lazy input array (e.g. prev[j].x) *)

type ctx = {
  dag : Dag.t;
  env : (string, binding) Hashtbl.t;
  lazy_inputs : (string, Dag.node) Hashtbl.t;
  partitions : (string, int) Hashtbl.t;
      (** array name -> cyclic partition factor, from array_partition pragmas *)
  mutable trip_count : int;
  mutable in_branch : bool;  (** side effects forbidden inside if-branches *)
}

let lookup ctx name =
  match Hashtbl.find_opt ctx.env name with
  | Some b -> b
  | None -> fail "undeclared identifier %s" name

let is_float_node ctx n = Dtype.is_float (Dag.dtype ctx.dag n)

let as_node ctx ~like v =
  match v with
  | Scalar n -> n
  | Const_int i ->
    let dtype =
      match like with
      | Some n -> Dag.dtype ctx.dag n
      | None -> Dtype.Int 32
    in
    let dtype = if Dtype.is_float dtype then Dtype.Int 32 else dtype in
    Dag.const ctx.dag ~dtype i
  | Reg_array _ | Buffer _ | Stream _ | Param_array _ ->
    fail "expected a scalar value"

let lazy_input ctx name ctype =
  match Hashtbl.find_opt ctx.lazy_inputs name with
  | Some n -> n
  | None ->
    let n = Dag.input ctx.dag ~name ~dtype:(dtype_of_ctype ctype) in
    Hashtbl.add ctx.lazy_inputs name n;
    n

let const_index ctx = function
  | Const_int i -> Int64.to_int i
  | Scalar n -> (
    match Dag.kind ctx.dag n with
    | Dag.Const v -> Int64.to_int v
    | _ -> fail "register-array index must be a compile-time constant")
  | _ -> fail "bad array index"

(* Mangled name of an lvalue path (for struct fields over params):
   prev[j].x with j = 3 becomes "prev.x[3]" on the parallel array
   "prev.x". *)
let rec base_path = function
  | Ast.Var v -> v
  | Ast.Field (e, f) -> base_path e ^ "." ^ f
  | Ast.Index (e, _) -> base_path e
  | _ -> fail "unsupported lvalue shape"

let result_dtype ctx op a b =
  let da = Dag.dtype ctx.dag a and db = Dag.dtype ctx.dag b in
  ignore op;
  if Dtype.is_float da then da
  else if Dtype.is_float db then db
  else if Dtype.width da >= Dtype.width db then da
  else db

let rec eval ctx (e : Ast.expr) : binding =
  match e with
  | Ast.Int_const v -> Const_int v
  | Ast.Float_const v ->
    Scalar (Dag.const ctx.dag ~dtype:Dtype.Float32 (Int64.of_float (v *. 1e6)))
  | Ast.Var name -> (
    match lookup ctx name with
    | Const_int _ as c -> c
    | Scalar _ as s -> s
    | other -> other)
  | Ast.Field (base, field) -> (
    (* fields of parameters / parameter arrays: parallel lazy inputs *)
    match base with
    | Ast.Var v -> (
      match Hashtbl.find_opt ctx.env v with
      | Some (Param_array _) -> fail "field access on array %s needs an index" v
      | Some (Scalar _) | None ->
        Scalar (lazy_input ctx (v ^ "." ^ field) (Ast.C_int (32, true)))
      | Some (Const_int _ | Reg_array _ | Buffer _ | Stream _) ->
        fail "field access on %s is not supported" v)
    | Ast.Index (Ast.Var v, idx) ->
      let i = const_index ctx (eval ctx idx) in
      (match Hashtbl.find_opt ctx.env v with
      | Some (Param_array ty) ->
        Scalar (lazy_input ctx (Printf.sprintf "%s.%s[%d]" v field i) ty)
      | Some _ | None ->
        Scalar
          (lazy_input ctx
             (Printf.sprintf "%s.%s[%d]" v field i)
             (Ast.C_int (32, true))))
    | _ -> fail "unsupported field access")
  | Ast.Index (base, idx) -> (
    let name = base_path base in
    match lookup ctx name with
    | Buffer b ->
      let idx_n = as_node ctx ~like:None (eval ctx idx) in
      Scalar (Dag.load ctx.dag ~buffer:b ~index:idx_n)
    | Reg_array arr -> (
      let i = const_index ctx (eval ctx idx) in
      if i < 0 || i >= Array.length arr then
        fail "index %d out of bounds for %s" i name;
      match arr.(i) with
      | Some n -> Scalar n
      | None -> fail "%s[%d] read before assignment" name i)
    | Param_array ty ->
      let i = const_index ctx (eval ctx idx) in
      Scalar (lazy_input ctx (Printf.sprintf "%s[%d]" name i) ty)
    | Scalar _ | Const_int _ | Stream _ -> fail "%s is not an array" name)
  | Ast.Binop (op, a, b) -> eval_binop ctx op a b
  | Ast.Unop (op, a) -> eval_unop ctx op a
  | Ast.Ternary (c, t, f) ->
    let cn = as_node ctx ~like:None (eval ctx c) in
    let tv = eval ctx t in
    let fv = eval ctx f in
    let tn = as_node ctx ~like:None tv in
    let fn = as_node ctx ~like:(Some tn) fv in
    let dtype = Dag.dtype ctx.dag tn in
    Scalar (Dag.op ctx.dag Op.Select ~dtype [ cn; tn; fn ])
  | Ast.Call (fn, args) -> eval_call ctx fn args
  | Ast.Method (obj, meth, args) -> eval_method ctx obj meth args

and eval_binop ctx op a b =
  (* constant folding keeps loop-index arithmetic out of the DAG *)
  let va = eval ctx a and vb = eval ctx b in
  match (va, vb, op) with
  | Const_int x, Const_int y, Ast.B_add -> Const_int (Int64.add x y)
  | Const_int x, Const_int y, Ast.B_sub -> Const_int (Int64.sub x y)
  | Const_int x, Const_int y, Ast.B_mul -> Const_int (Int64.mul x y)
  | Const_int x, Const_int y, Ast.B_div when y <> 0L -> Const_int (Int64.div x y)
  | Const_int x, Const_int y, Ast.B_mod when y <> 0L -> Const_int (Int64.rem x y)
  | Const_int x, Const_int y, Ast.B_shl ->
    Const_int (Int64.shift_left x (Int64.to_int y))
  | Const_int x, Const_int y, Ast.B_shr ->
    Const_int (Int64.shift_right x (Int64.to_int y))
  | _ ->
    let na = as_node ctx ~like:None va in
    let nb = as_node ctx ~like:(Some na) vb in
    let fl = is_float_node ctx na || is_float_node ctx nb in
    let dtype = result_dtype ctx op na nb in
    let mk o = Scalar (Dag.op ctx.dag o ~dtype [ na; nb ]) in
    let cmp c fc =
      Scalar
        (Dag.op ctx.dag (if fl then Op.Fcmp fc else Op.Icmp c) ~dtype:Dtype.Bool
           [ na; nb ])
    in
    (match op with
    | Ast.B_add -> mk (if fl then Op.Fadd else Op.Add)
    | Ast.B_sub -> mk (if fl then Op.Fsub else Op.Sub)
    | Ast.B_mul -> mk (if fl then Op.Fmul else Op.Mul)
    | Ast.B_div -> mk (if fl then Op.Fdiv else Op.Div)
    | Ast.B_mod ->
      if fl then fail "%% on floats is not supported";
      (* a - (a / b) * b *)
      let q = Dag.op ctx.dag Op.Div ~dtype [ na; nb ] in
      let p = Dag.op ctx.dag Op.Mul ~dtype [ q; nb ] in
      Scalar (Dag.op ctx.dag Op.Sub ~dtype [ na; p ])
    | Ast.B_and -> mk Op.And_
    | Ast.B_or -> mk Op.Or_
    | Ast.B_xor -> mk Op.Xor
    | Ast.B_shl -> mk Op.Shl
    | Ast.B_shr -> mk Op.Shr
    | Ast.B_lt -> cmp Op.Lt Op.Lt
    | Ast.B_le -> cmp Op.Le Op.Le
    | Ast.B_gt -> cmp Op.Gt Op.Gt
    | Ast.B_ge -> cmp Op.Ge Op.Ge
    | Ast.B_eq -> cmp Op.Eq Op.Eq
    | Ast.B_ne -> cmp Op.Ne Op.Ne
    | Ast.B_land ->
      Scalar (Dag.op ctx.dag Op.And_ ~dtype:Dtype.Bool [ na; nb ])
    | Ast.B_lor -> Scalar (Dag.op ctx.dag Op.Or_ ~dtype:Dtype.Bool [ na; nb ]))

and eval_unop ctx op a =
  match (op, eval ctx a) with
  | Ast.U_neg, Const_int v -> Const_int (Int64.neg v)
  | Ast.U_neg, v ->
    let n = as_node ctx ~like:None v in
    let dtype = Dag.dtype ctx.dag n in
    let zero =
      if Dtype.is_float dtype then Dag.const ctx.dag ~dtype 0L
      else Dag.const ctx.dag ~dtype 0L
    in
    Scalar
      (Dag.op ctx.dag (if Dtype.is_float dtype then Op.Fsub else Op.Sub) ~dtype
         [ zero; n ])
  | Ast.U_lnot, v ->
    let n = as_node ctx ~like:None v in
    Scalar (Dag.op ctx.dag Op.Not ~dtype:Dtype.Bool [ n ])
  | Ast.U_bnot, v ->
    let n = as_node ctx ~like:None v in
    Scalar (Dag.op ctx.dag Op.Not ~dtype:(Dag.dtype ctx.dag n) [ n ])
  | Ast.U_addr, _ -> fail "& is only supported in stream.read(&x)"

and eval_call ctx fn args =
  let nodes () = List.map (fun a -> as_node ctx ~like:None (eval ctx a)) args in
  match (fn, nodes ()) with
  | "abs", [ x ] -> Scalar (Dag.op ctx.dag Op.Abs ~dtype:(Dag.dtype ctx.dag x) [ x ])
  | "min", [ a; b ] -> Scalar (Dag.op ctx.dag Op.Min ~dtype:(result_dtype ctx Ast.B_add a b) [ a; b ])
  | "max", [ a; b ] -> Scalar (Dag.op ctx.dag Op.Max ~dtype:(result_dtype ctx Ast.B_add a b) [ a; b ])
  | "log2", [ x ] -> Scalar (Dag.op ctx.dag Op.Log2 ~dtype:(Dag.dtype ctx.dag x) [ x ])
  | ("abs" | "min" | "max" | "log2"), _ -> fail "wrong arity for %s" fn
  | _, _ -> fail "unknown function %s (kernel calls belong in dataflow regions)" fn

and eval_method ctx obj meth args =
  match (lookup ctx obj, meth, args) with
  | Stream f, "read", [] -> Scalar (Dag.fifo_read ctx.dag ~fifo:f)
  | Stream f, "read", [ Ast.Unop (Ast.U_addr, Ast.Var target) ] ->
    if ctx.in_branch then fail "stream reads inside if-branches are not supported";
    let n = Dag.fifo_read ctx.dag ~fifo:f in
    Hashtbl.replace ctx.env target (Scalar n);
    Scalar n
  | Stream f, "write", [ v ] ->
    if ctx.in_branch then fail "stream writes inside if-branches are not supported";
    let n = as_node ctx ~like:None (eval ctx v) in
    ignore (Dag.fifo_write ctx.dag ~fifo:f ~value:n);
    Scalar n
  | Stream _, m, _ -> fail "unsupported stream method .%s" m
  | _, _, _ -> fail "%s is not a stream" obj

(* ---- statements ---- *)

let pragma_words p =
  String.split_on_char ' ' p
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun s -> s <> "")
  |> List.map String.lowercase_ascii

let pragma_is kind p =
  match pragma_words p with
  | "hls" :: rest -> List.mem kind rest
  | _ -> false

let pragma_factor p =
  (* "unroll factor=8" *)
  List.find_map
    (fun w ->
      match String.index_opt w '=' with
      | Some i when String.sub w 0 i = "factor" ->
        int_of_string_opt (String.sub w (i + 1) (String.length w - i - 1))
      | _ -> None)
    (pragma_words p)

(* Raw (case-preserving) "key=value" lookup, for values that carry
   identifiers — array names in [array_partition variable=NAME]. *)
let pragma_value_raw key p =
  String.split_on_char ' ' p
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun s -> s <> "")
  |> List.find_map (fun w ->
       match String.index_opt w '=' with
       | Some i when String.lowercase_ascii (String.sub w 0 i) = key ->
         Some (String.sub w (i + 1) (String.length w - i - 1))
       | _ -> None)

(* array_partition pragmas anywhere in the function body (free-standing or
   attached to a loop) set the cyclic banking factor of the named buffer. *)
let rec collect_partitions tbl stmts =
  List.iter
    (fun s ->
      match s with
      | Ast.Pragma_stmt p -> note_partition tbl p
      | Ast.For fl ->
        List.iter (note_partition tbl) fl.Ast.fl_pragmas;
        collect_partitions tbl fl.Ast.fl_body
      | Ast.If (_, t, e) ->
        collect_partitions tbl t;
        collect_partitions tbl e
      | _ -> ())
    stmts

and note_partition tbl p =
  if pragma_is "array_partition" p then
    match (pragma_value_raw "variable" p, pragma_factor p) with
    | Some name, Some f when f >= 1 -> Hashtbl.replace tbl name f
    | _ -> ()

let partition_of ctx name size =
  match Hashtbl.find_opt ctx.partitions name with
  | Some f -> max 1 (min f size)
  | None -> 1

let rec exec ctx (s : Ast.stmt) =
  match s with
  | Ast.Pragma_stmt _ -> () (* free-standing pragmas outside loops: ignored *)
  | Ast.Stream_decl (ty, name) ->
    let f =
      Dag.add_fifo ctx.dag ~name ~dtype:(dtype_of_ctype ty) ~depth:16
    in
    Hashtbl.replace ctx.env name (Stream f)
  | Ast.Decl (ty, name, None, init) ->
    let b =
      match init with
      | None ->
        Scalar (Dag.input ctx.dag ~name ~dtype:(dtype_of_ctype ty))
      | Some e -> (
        match eval ctx e with
        | Const_int v ->
          Scalar (Dag.const ctx.dag ~dtype:(dtype_of_ctype ty) v)
        | v -> Scalar (as_node ctx ~like:None v))
    in
    Hashtbl.replace ctx.env name b
  | Ast.Decl (ty, name, Some size, init) ->
    if init <> None then fail "array initializers are not supported";
    if size >= buffer_threshold then begin
      let b =
        Dag.add_buffer ctx.dag ~name ~dtype:(dtype_of_ctype ty) ~depth:size
          ~partition:(partition_of ctx name size)
      in
      Hashtbl.replace ctx.env name (Buffer b)
    end
    else Hashtbl.replace ctx.env name (Reg_array (Array.make size None))
  | Ast.Assign (lhs, rhs) -> assign ctx lhs (eval ctx rhs)
  | Ast.Plus_assign (lhs, rhs) ->
    let sum = eval_binop ctx Ast.B_add lhs rhs in
    assign ctx lhs sum
  | Ast.Expr_stmt e -> ignore (eval ctx e)
  | Ast.Return None -> ()
  | Ast.Return (Some e) ->
    let n = as_node ctx ~like:None (eval ctx e) in
    ignore (Dag.output ctx.dag ~name:"return" ~value:n)
  | Ast.If (cond, then_, else_) -> exec_if ctx cond then_ else_
  | Ast.For fl -> exec_for ctx fl

and assign ctx lhs v =
  match lhs with
  | Ast.Var name | Ast.Field (Ast.Var name, _) when lhs = Ast.Var name -> (
    match Hashtbl.find_opt ctx.env name with
    | Some (Buffer _ | Stream _ | Reg_array _ | Param_array _) ->
      fail "cannot assign a scalar to %s" name
    | Some _ | None -> Hashtbl.replace ctx.env name (Scalar (as_node ctx ~like:None v)))
  | Ast.Field _ ->
    let name = base_path lhs in
    Hashtbl.replace ctx.env name (Scalar (as_node ctx ~like:None v))
  | Ast.Index (base, idx) -> (
    let name = base_path base in
    match lookup ctx name with
    | Buffer b ->
      if ctx.in_branch then
        fail "memory stores inside if-branches are not supported; use a ternary";
      let idx_n = as_node ctx ~like:None (eval ctx idx) in
      let vn = as_node ctx ~like:None v in
      ignore (Dag.store ctx.dag ~buffer:b ~index:idx_n ~value:vn)
    | Reg_array arr ->
      let i = const_index ctx (eval ctx idx) in
      if i < 0 || i >= Array.length arr then
        fail "index %d out of bounds for %s" i name;
      arr.(i) <- Some (as_node ctx ~like:None v)
    | Param_array _ -> fail "parameter array %s is read-only" name
    | Scalar _ | Const_int _ | Stream _ -> fail "%s is not an array" name)
  | _ -> fail "unsupported assignment target"

and exec_if ctx cond then_ else_ =
  let cn = as_node ctx ~like:None (eval ctx cond) in
  (* run each branch on a snapshot, then merge changed scalars and
     register-array slots with selects *)
  let snapshot () =
    let copy = Hashtbl.copy ctx.env in
    (* deep-copy register arrays so branch writes do not leak *)
    Hashtbl.iter
      (fun k v ->
        match v with
        | Reg_array arr -> Hashtbl.replace copy k (Reg_array (Array.copy arr))
        | _ -> ())
      ctx.env;
    copy
  in
  let base = snapshot () in
  let was_in_branch = ctx.in_branch in
  ctx.in_branch <- true;
  List.iter (exec ctx) then_;
  let then_env = ctx.env |> Hashtbl.copy in
  Hashtbl.iter
    (fun k v ->
      match v with
      | Reg_array arr -> Hashtbl.replace then_env k (Reg_array (Array.copy arr))
      | _ -> ())
    ctx.env;
  (* restore, run else *)
  Hashtbl.reset ctx.env;
  Hashtbl.iter (fun k v -> Hashtbl.replace ctx.env k v) base;
  List.iter (exec ctx) else_;
  ctx.in_branch <- was_in_branch;
  (* merge: for every name bound in either branch, select *)
  let merge_scalar k tv ev =
    let tn = as_node ctx ~like:None tv in
    let en = as_node ctx ~like:(Some tn) ev in
    if tn = en then ()
    else
      Hashtbl.replace ctx.env k
        (Scalar
           (Dag.op ctx.dag Op.Select ~dtype:(Dag.dtype ctx.dag tn) [ cn; tn; en ]))
  in
  Hashtbl.iter
    (fun k tv ->
      match (tv, Hashtbl.find_opt ctx.env k) with
      | (Scalar _ | Const_int _), Some ((Scalar _ | Const_int _) as ev) ->
        merge_scalar k tv ev
      | (Scalar _ | Const_int _), None -> () (* then-branch-local temp *)
      | Reg_array tarr, Some (Reg_array earr)
        when Array.length tarr = Array.length earr ->
        let merged =
          Array.init (Array.length tarr) (fun i ->
            match (tarr.(i), earr.(i)) with
            | Some tn, Some en when tn <> en ->
              Some
                (Dag.op ctx.dag Op.Select ~dtype:(Dag.dtype ctx.dag tn)
                   [ cn; tn; en ])
            | Some tn, None -> Some tn
            | t, _ -> t)
        in
        Hashtbl.replace ctx.env k (Reg_array merged)
      | _ -> ())
    then_env

and exec_for ctx fl =
  let trips = Int64.to_int (Int64.sub fl.Ast.fl_hi fl.Ast.fl_lo) in
  if trips <= 0 then fail "loop over %s has a non-positive trip count" fl.Ast.fl_var;
  let pipeline = List.exists (pragma_is "pipeline") fl.Ast.fl_pragmas in
  let unroll = List.exists (pragma_is "unroll") fl.Ast.fl_pragmas in
  let factor =
    List.find_map pragma_factor fl.Ast.fl_pragmas
    |> Option.value ~default:trips
  in
  if pipeline && not unroll then begin
    (* the pipelined loop: one body instance, a dynamic iteration index *)
    ctx.trip_count <- max ctx.trip_count trips;
    let saved = Hashtbl.find_opt ctx.env fl.Ast.fl_var in
    Hashtbl.replace ctx.env fl.Ast.fl_var
      (Scalar (Dag.input ctx.dag ~name:fl.Ast.fl_var ~dtype:(Dtype.Int 32)));
    List.iter (exec ctx) fl.Ast.fl_body;
    (match saved with
    | Some b -> Hashtbl.replace ctx.env fl.Ast.fl_var b
    | None -> Hashtbl.remove ctx.env fl.Ast.fl_var)
  end
  else begin
    (* unrolled (explicitly, or implicitly inside a pipelined region) *)
    if (not unroll) && trips > 1024 then
      fail "loop over %s must be unrolled or pipelined" fl.Ast.fl_var;
    let n = min trips factor in
    if n <> trips then
      fail "partial unrolling (factor %d of %d trips) is not supported" n trips;
    let saved = Hashtbl.find_opt ctx.env fl.Ast.fl_var in
    for j = 0 to trips - 1 do
      Hashtbl.replace ctx.env fl.Ast.fl_var
        (Const_int (Int64.add fl.Ast.fl_lo (Int64.of_int j)));
      List.iter (exec ctx) fl.Ast.fl_body
    done;
    match saved with
    | Some b -> Hashtbl.replace ctx.env fl.Ast.fl_var b
    | None -> Hashtbl.remove ctx.env fl.Ast.fl_var
  end

(* ---- entry points ---- *)

let bind_params ?(stream_names = fun s -> s) ctx params =
  List.iter
    (fun p ->
      match p with
      | Ast.P_stream (ty, name) ->
        (* the fifo carries the caller-visible channel name; the body still
           refers to the formal *)
        let f =
          Dag.add_fifo ctx.dag ~name:(stream_names name)
            ~dtype:(dtype_of_ctype ty) ~depth:16
        in
        Hashtbl.replace ctx.env name (Stream f)
      | Ast.P_scalar (ty, name) ->
        Hashtbl.replace ctx.env name
          (Scalar (Dag.input ctx.dag ~name ~dtype:(dtype_of_ctype ty)))
      | Ast.P_array (ty, name, size) ->
        if size >= buffer_threshold then begin
          let b =
            Dag.add_buffer ctx.dag ~name ~dtype:(dtype_of_ctype ty) ~depth:size
              ~partition:(partition_of ctx name size)
          in
          Hashtbl.replace ctx.env name (Buffer b)
        end
        else Hashtbl.replace ctx.env name (Param_array ty))
    params

let kernel_of_func_named ?stream_names ~name _program (f : Ast.func) =
  let partitions = Hashtbl.create 8 in
  collect_partitions partitions f.Ast.f_body;
  let ctx =
    {
      dag = Dag.create ();
      env = Hashtbl.create 32;
      lazy_inputs = Hashtbl.create 32;
      partitions;
      trip_count = 1;
      in_branch = false;
    }
  in
  bind_params ?stream_names ctx f.Ast.f_params;
  ignore name;
  List.iter (exec ctx) f.Ast.f_body;
  (try Kernel.create ~name ~trip_count:ctx.trip_count ctx.dag
   with Invalid_argument msg -> fail "invalid kernel %s: %s" name msg)

let kernel_of_func program (f : Ast.func) =
  kernel_of_func_named ~name:f.Ast.f_name program f

let dataflow_of_func program (f : Ast.func) =
  let has_dataflow =
    List.exists
      (function Ast.Pragma_stmt p -> pragma_is "dataflow" p | _ -> false)
      f.Ast.f_body
  in
  if not has_dataflow then
    fail "%s is not a #pragma HLS dataflow region" f.Ast.f_name;
  let df = Dataflow.create () in
  (* stream endpoints discovered while walking the calls *)
  let writers = Hashtbl.create 8 and readers = Hashtbl.create 8 in
  let stream_types = Hashtbl.create 8 in
  List.iter
    (function
      | Ast.Stream_decl (ty, name) -> Hashtbl.replace stream_types name ty
      | _ -> ())
    f.Ast.f_body;
  List.iter
    (fun p ->
      match p with
      | Ast.P_stream (ty, name) -> Hashtbl.replace stream_types name ty
      | Ast.P_scalar _ | Ast.P_array _ -> ())
    f.Ast.f_params;
  let procs = ref [] in
  let call_idx = ref 0 in
  List.iter
    (fun stmt ->
      match stmt with
      | Ast.Pragma_stmt _ | Ast.Stream_decl _ -> ()
      | Ast.Expr_stmt (Ast.Call (callee, args)) -> (
        match List.find_opt (fun g -> g.Ast.f_name = callee) program with
        | None -> fail "call to undefined kernel %s" callee
        | Some g ->
          incr call_idx;
          (* elaborate the callee with its stream params renamed to the
             caller's channel names, so netlist wiring matches by name *)
          let renames =
            List.map2
              (fun p a ->
                match (p, a) with
                | Ast.P_stream (_, formal), Ast.Var actual -> (formal, actual)
                | Ast.P_stream _, _ ->
                  fail "stream argument of %s must be a stream name" callee
                | (Ast.P_scalar (_, formal) | Ast.P_array (_, formal, _)), _ ->
                  (formal, formal))
              g.Ast.f_params args
          in
          let inst_name = Printf.sprintf "%s_%d" g.Ast.f_name !call_idx in
          let stream_names formal =
            Option.value ~default:formal (List.assoc_opt formal renames)
          in
          let kernel =
            kernel_of_func_named ~stream_names ~name:inst_name program g
          in
          let proc = Dataflow.add_process df ~name:inst_name ~kernel () in
          procs := proc :: !procs;
          (* record channel directions from the kernel's fifo usage *)
          let dag = kernel.Kernel.dag in
          Dag.iter dag (fun v ->
            match Dag.kind dag v with
            | Dag.Fifo_read fifo ->
              Hashtbl.replace readers (Dag.fifo dag fifo).Dag.f_name proc
            | Dag.Fifo_write fifo ->
              Hashtbl.replace writers (Dag.fifo dag fifo).Dag.f_name proc
            | _ -> ()))
      | _ ->
        fail "a dataflow region may contain only stream declarations and kernel calls")
    f.Ast.f_body;
  (* channels: every stream name seen anywhere *)
  let names = Hashtbl.create 8 in
  Hashtbl.iter (fun k _ -> Hashtbl.replace names k ()) writers;
  Hashtbl.iter (fun k _ -> Hashtbl.replace names k ()) readers;
  let sorted = Hashtbl.fold (fun k () acc -> k :: acc) names [] |> List.sort compare in
  List.iter
    (fun name ->
      let src = Option.value ~default:(-1) (Hashtbl.find_opt writers name) in
      let dst = Option.value ~default:(-1) (Hashtbl.find_opt readers name) in
      let ty =
        Option.value ~default:(Ast.C_int (32, true))
          (Hashtbl.find_opt stream_types name)
      in
      ignore
        (Dataflow.add_channel df ~name ~src ~dst ~dtype:(dtype_of_ctype ty)
           ~depth:16 ()))
    sorted;
  (* the front end synchronizes everything in the region: one sync group *)
  (match !procs with
  | [] | [ _ ] -> ()
  | ps -> Dataflow.add_sync_group df (List.sort compare ps));
  df
