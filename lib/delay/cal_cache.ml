(* Persistent on-disk store for characterization curves.

   Characterizing one operator costs a full netlist build + placement + STA
   per grid point; the raw measured curves are a pure function of the device
   timing model, the skeleton generators, and the grids, so they can be
   reused across processes.  One JSON file per device holds every raw curve
   measured on it; smoothing is applied in memory by [Calibrate] (it depends
   on the window, which is deliberately not part of the key).

   A file is valid only if its schema version, device fingerprint, and both
   grids match the running binary exactly — anything else is treated as a
   miss and silently re-characterized.  Bump [schema_version] whenever
   [Characterize], [Timing], or [Placement] change measured values. *)

module Device = Hlsb_device.Device
module Json = Hlsb_telemetry.Json

let schema_version = 1

let env_var = "HLSB_CACHE_DIR"

(* Resolution: $HLSB_CACHE_DIR ("" disables caching entirely), else
   $XDG_CACHE_HOME/hlsb, else $HOME/.cache/hlsb, else disabled. *)
let ambient_dir () =
  match Sys.getenv_opt env_var with
  | Some "" -> None
  | Some d -> Some d
  | None -> (
    let base =
      match Sys.getenv_opt "XDG_CACHE_HOME" with
      | Some d when d <> "" -> Some d
      | _ -> (
        match Sys.getenv_opt "HOME" with
        | Some h when h <> "" -> Some (Filename.concat h ".cache")
        | _ -> None)
    in
    Option.map (fun b -> Filename.concat b "hlsb") base)

(* Everything that feeds the delay model: a device renamed or retimed must
   not reuse curves measured under the old numbers. *)
let fingerprint (d : Device.t) =
  Printf.sprintf "%s|%s|%dx%d|s%d.%d|b%d|d%d|%g|%g|%g|%g|%g|%g" d.Device.name
    d.Device.family d.Device.cols d.Device.rows d.Device.lut_per_slice
    d.Device.ff_per_slice d.Device.bram_col_every d.Device.dsp_col_every
    d.Device.t_clk_q d.Device.t_setup d.Device.t_lut d.Device.t_net_base
    d.Device.t_net_fanout d.Device.t_net_dist

type entry = {
  e_ops : (string * float array) list;  (* "op/dtype" -> raw arith curve *)
  e_mem_wr : float array option;
  e_mem_rd : float array option;
}

let empty = { e_ops = []; e_mem_wr = None; e_mem_rd = None }

let file_name (d : Device.t) =
  Printf.sprintf "cal-v%d-%s.json" schema_version d.Device.name

let file_path ~dir d = Filename.concat dir (file_name d)

let int_grid_json g = Json.List (Array.to_list g |> List.map (fun v -> Json.Int v))

let curve_json c = Json.List (Array.to_list c |> List.map (fun v -> Json.Float v))

(* Keys are sorted so the file bytes are canonical: the in-memory assoc
   list is in insertion order, which depends on characterization order and
   hence on the job count, and byte-identical caches across job counts is a
   determinism guarantee we test for. *)
let to_json ~factor_grid ~unit_grid d e =
  let mem =
    List.filter_map
      (fun (k, v) -> Option.map (fun c -> (k, curve_json c)) v)
      [ ("write", e.e_mem_wr); ("read", e.e_mem_rd) ]
  in
  let ops =
    List.sort (fun (a, _) (b, _) -> String.compare a b) e.e_ops
  in
  Json.Obj
    [
      ("schema", Json.Int schema_version);
      ("device", Json.Str d.Device.name);
      ("fingerprint", Json.Str (fingerprint d));
      ("factor_grid", int_grid_json factor_grid);
      ("unit_grid", int_grid_json unit_grid);
      ("ops", Json.Obj (List.map (fun (k, c) -> (k, curve_json c)) ops));
      ("mem", Json.Obj mem);
    ]

let curve_of_json ~len = function
  | Json.List items when List.length items = len ->
    let ok = ref true in
    let arr =
      Array.of_list
        (List.map
           (function
             | Json.Float f -> f
             | Json.Int i -> float_of_int i
             | _ ->
               ok := false;
               0.)
           items)
    in
    if !ok then Some arr else None
  | _ -> None

let grid_matches json g =
  match json with
  | Some (Json.List items) ->
    List.length items = Array.length g
    && List.for_all2 (fun j v -> j = Json.Int v) items (Array.to_list g)
  | _ -> false

let of_json ~factor_grid ~unit_grid d json =
  let check name v = Json.member name json = Some v in
  if
    check "schema" (Json.Int schema_version)
    && check "device" (Json.Str d.Device.name)
    && check "fingerprint" (Json.Str (fingerprint d))
    && grid_matches (Json.member "factor_grid" json) factor_grid
    && grid_matches (Json.member "unit_grid" json) unit_grid
  then begin
    let ops =
      match Json.member "ops" json with
      | Some (Json.Obj fields) ->
        List.filter_map
          (fun (k, v) ->
            Option.map
              (fun c -> (k, c))
              (curve_of_json ~len:(Array.length factor_grid) v))
          fields
      | _ -> []
    in
    let mem k =
      Option.bind (Json.member "mem" json) (Json.member k)
      |> Option.map (curve_of_json ~len:(Array.length unit_grid))
      |> Option.join
    in
    Some { e_ops = ops; e_mem_wr = mem "write"; e_mem_rd = mem "read" }
  end
  else None

let read_file path =
  match open_in_bin path with
  | exception Sys_error _ -> None
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> Some (really_input_string ic (in_channel_length ic)))

let load ~dir ~factor_grid ~unit_grid d =
  let path = file_path ~dir d in
  match read_file path with
  | None -> None
  | Some text -> (
    match Json.of_string text with
    | Error _ -> None
    | Ok json -> of_json ~factor_grid ~unit_grid d json)

(* Atomic write-then-rename through the shared hardened writer. The
   temp name used to carry only the domain id, which is 0 in every
   process's initial domain: a daemon and a stray CLI invocation storing
   the same device could open the same [.tmp.0] path and publish a torn
   mixture of both payloads. [Atomic_file] keys the temp name on
   pid + domain + a random suffix instead. *)
let store ~dir ~factor_grid ~unit_grid d e =
  Hlsb_util.Atomic_file.write_exn ~path:(file_path ~dir d)
    (Json.to_string ~minify:false (to_json ~factor_grid ~unit_grid d e) ^ "\n")

let is_cache_file name =
  String.length name > 4
  && String.sub name 0 4 = "cal-"
  && Filename.check_suffix name ".json"

let entries ~dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> []
  | files ->
    Array.to_list files
    |> List.filter is_cache_file
    |> List.sort compare
    |> List.map (fun f -> Filename.concat dir f)

let clear ~dir =
  let files = entries ~dir in
  List.iter (fun p -> try Sys.remove p with Sys_error _ -> ()) files;
  List.length files

type summary = {
  s_path : string;
  s_device : string;
  s_schema : int;
  s_valid : bool;  (* fingerprint + grids match a known device *)
  s_ops : string list;
  s_has_mem_wr : bool;
  s_has_mem_rd : bool;
}

let summarize ~factor_grid ~unit_grid path =
  match read_file path with
  | None -> None
  | Some text -> (
    match Json.of_string text with
    | Error _ -> None
    | Ok json ->
      let str k =
        match Json.member k json with Some (Json.Str s) -> s | _ -> "?"
      in
      let schema =
        match Json.member "schema" json with Some (Json.Int i) -> i | _ -> -1
      in
      let device = str "device" in
      let parsed =
        Option.bind (Device.find device) (fun d ->
          of_json ~factor_grid ~unit_grid d json)
      in
      let ops, wr, rd =
        match parsed with
        | Some e -> (List.map fst e.e_ops, e.e_mem_wr <> None, e.e_mem_rd <> None)
        | None -> ([], false, false)
      in
      Some
        {
          s_path = path;
          s_device = device;
          s_schema = schema;
          s_valid = parsed <> None;
          s_ops = List.sort compare ops;
          s_has_mem_wr = wr;
          s_has_mem_rd = rd;
        })
