(** Persistent on-disk store for characterization curves.

    Characterizing one operator costs a full netlist build + placement + STA
    per grid point; the raw measured curves are a pure function of the
    device timing model, the skeleton generators, and the grids, so they can
    be reused across processes. One JSON file per device holds every raw
    curve measured on it; smoothing is applied in memory by {!Calibrate}
    (it depends on the window, which is deliberately not part of the key).

    A file is valid only if its schema version, device fingerprint, and
    both grids match the running binary exactly — anything else is treated
    as a miss and silently re-characterized. *)

val schema_version : int
(** Bump whenever [Characterize], [Timing], or [Placement] change measured
    values; stale files are ignored and overwritten. *)

val env_var : string
(** ["HLSB_CACHE_DIR"] — overrides the cache directory; set to the empty
    string to disable caching entirely. *)

val ambient_dir : unit -> string option
(** [$HLSB_CACHE_DIR], else [$XDG_CACHE_HOME/hlsb], else
    [$HOME/.cache/hlsb]; [None] when caching is disabled or no base
    directory can be resolved. *)

val fingerprint : Hlsb_device.Device.t -> string
(** Every device field that feeds the delay model, flattened; a device
    renamed or retimed must not reuse curves measured under old numbers. *)

type entry = {
  e_ops : (string * float array) list;  (** "op/dtype" -> raw arith curve *)
  e_mem_wr : float array option;
  e_mem_rd : float array option;
}

val empty : entry

val file_path : dir:string -> Hlsb_device.Device.t -> string

val load :
  dir:string ->
  factor_grid:int array ->
  unit_grid:int array ->
  Hlsb_device.Device.t ->
  entry option
(** [None] on a missing, unparsable, or invalid (schema / fingerprint /
    grid mismatch) file. *)

val store :
  dir:string ->
  factor_grid:int array ->
  unit_grid:int array ->
  Hlsb_device.Device.t ->
  entry ->
  unit
(** Atomic write-then-rename via {!Hlsb_util.Atomic_file} (temp name
    keyed on pid + domain + random suffix, so concurrent writers in
    different processes never share a temp path); creates [dir] as
    needed. *)

val entries : dir:string -> string list
(** Paths of the cache files in [dir], sorted. *)

val clear : dir:string -> int
(** Remove every cache file in [dir]; returns how many were removed. *)

type summary = {
  s_path : string;
  s_device : string;
  s_schema : int;
  s_valid : bool;  (** schema + fingerprint + grids match a known device *)
  s_ops : string list;
  s_has_mem_wr : bool;
  s_has_mem_rd : bool;
}

val summarize :
  factor_grid:int array -> unit_grid:int array -> string -> summary option
(** Inspect one cache file without loading it into a calibrator. *)
