(** Skeleton-design characterization (§4.1): "we implement skeleton
    broadcast structures on an empty FPGA to obtain the post-routed delay".

    For arithmetic, one source register feeds [factor] operator instances
    (e.g. 64 adders with a common first operand); for memories, one source
    register writes a buffer that spans many physical BRAM units. The
    skeleton is placed and timed by the physical backend, and the measured
    delay is the register-to-register combinational time — what the HLS
    scheduler *should* have budgeted for the operator at that broadcast
    factor. *)

open Hlsb_ir

type point = {
  factor : int;  (** broadcast factor (arith) or BRAM-unit count (mem) *)
  measured : float;  (** post-route delay, ns *)
}

val arith : Hlsb_device.Device.t -> Op.t -> Dtype.t -> factor:int -> float
(** Measured delay of one operator at the given broadcast factor. *)

val arith_curve :
  ?jobs:int ->
  Hlsb_device.Device.t ->
  Op.t ->
  Dtype.t ->
  factors:int array ->
  point array
(** Per-factor skeleton runs are independent and fan out across the
    {!Hlsb_util.Pool} (default job count); results are index-ordered, so the
    curve is identical for every job count. *)

val mem_write : Hlsb_device.Device.t -> units:int -> float
(** Measured delay of a register -> every-BRAM-unit store, for a buffer
    spanning that many physical BRAM18 units. The unit count — not the
    logical width/depth split — is what determines the broadcast cost, so
    curves are characterized once per device over unit counts. *)

val mem_read : Hlsb_device.Device.t -> units:int -> float
(** Measured delay of a BRAM-units -> cascade-mux -> register load. *)

val mem_write_curve :
  ?jobs:int -> Hlsb_device.Device.t -> units:int array -> point array

val mem_read_curve :
  ?jobs:int -> Hlsb_device.Device.t -> units:int array -> point array
