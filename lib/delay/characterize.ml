open Hlsb_ir
module Pool = Hlsb_util.Pool
module Device = Hlsb_device.Device
module Netlist = Hlsb_netlist.Netlist
module Structs = Hlsb_netlist.Structs
module Placement = Hlsb_physical.Placement
module Timing = Hlsb_physical.Timing

type point = {
  factor : int;
  measured : float;
}

let comb_time (d : Device.t) (r : Timing.report) =
  r.Timing.critical_ns -. d.Device.t_clk_q -. d.Device.t_setup

let arith (d : Device.t) op dt ~factor =
  if factor < 1 then invalid_arg "Characterize.arith: factor < 1";
  let w = Dtype.width dt in
  let nl =
    Netlist.create
      ~name:(Printf.sprintf "skel_%s_%s_f%d" (Op.to_string op) (Dtype.to_string dt) factor)
  in
  let src = Structs.add_register nl ~name:"src" ~width:w in
  let logic = Oplib.stage_delay d op dt in
  let res = Oplib.resources op dt in
  let ops =
    List.init factor (fun i ->
      Netlist.add_cell nl
        ~name:(Printf.sprintf "op%d" i)
        ~kind:Netlist.Comb ~delay:logic ~res)
  in
  (* Per-instance second operand and output register, as in the paper's
     64-adder skeleton. *)
  List.iteri
    (fun i opc ->
      let opnd = Structs.add_register nl ~name:(Printf.sprintf "b%d" i) ~width:w in
      let out = Structs.add_register nl ~name:(Printf.sprintf "q%d" i) ~width:w in
      ignore
        (Netlist.add_net nl
           ~name:(Printf.sprintf "opnd%d" i)
           ~driver:opnd ~sinks:[ opc ] ~width:w ());
      ignore
        (Netlist.add_net nl
           ~name:(Printf.sprintf "out%d" i)
           ~driver:opc ~sinks:[ out ] ~width:w ()))
    ops;
  ignore
    (Netlist.add_net nl ~cls:Netlist.Data_broadcast ~name:"bcast" ~driver:src
       ~sinks:ops ~width:w ());
  let report = Timing.run d nl in
  (* Operator delay as HLS accounts for it: everything from the source
     register's output up to and including the operator's own logic — its
     input net (the broadcast) but not its output net, which belongs to the
     next operator in a chain. *)
  List.fold_left
    (fun acc opc ->
      max acc (report.Timing.arrivals.(opc) -. d.Device.t_clk_q))
    0. ops

(* Every grid point is an independent netlist build + placement + STA run,
   so curves fan the points out across the Pool; ordering (and therefore
   the result) is identical at any job count. *)
let arith_curve ?jobs d op dt ~factors =
  Pool.map ?jobs
    (fun f -> { factor = f; measured = arith d op dt ~factor:f })
    factors

(* One BRAM18 holds 512 words of 36 bits; a [units]-unit skeleton is a
   36-bit buffer deep enough to span exactly that many units. *)
let mem_skeleton (d : Device.t) ~units ~read =
  if units < 1 then invalid_arg "Characterize.mem_skeleton: units < 1";
  let width = 36 and depth = units * 512 in
  let nl =
    Netlist.create
      ~name:
        (Printf.sprintf "skel_mem_%s_u%d" (if read then "rd" else "wr") units)
  in
  let mb = Structs.add_membank d nl ~name:"buf" ~width ~depth () in
  if read then begin
    let out = Structs.add_register nl ~name:"capture" ~width in
    ignore
      (Netlist.add_net nl ~name:"rdata" ~driver:mb.Structs.mb_read_out
         ~sinks:[ out ] ~width ())
  end
  else begin
    let src = Structs.add_register nl ~name:"src" ~width in
    ignore (Structs.connect_write nl ~name:"wdata" ~driver:src mb ~width)
  end;
  let report = Timing.run d nl in
  (comb_time d report, mb.Structs.mb_n_units)

let mem_write d ~units = fst (mem_skeleton d ~units ~read:false)
let mem_read d ~units = fst (mem_skeleton d ~units ~read:true)

let mem_curve ?jobs d ~units ~read =
  Pool.map ?jobs
    (fun u ->
      let measured, n = mem_skeleton d ~units:u ~read in
      { factor = n; measured })
    units

let mem_write_curve ?jobs d ~units = mem_curve ?jobs d ~units ~read:false
let mem_read_curve ?jobs d ~units = mem_curve ?jobs d ~units ~read:true
