(** Calibrated delay model (§4.1): for each (operator, datatype) the
    measured broadcast-delay curve is sampled on a log-spaced factor grid,
    each point is averaged with its neighbours to suppress backend noise,
    and the calibrated delay is

      max(HLS-predicted, smoothed measurement)

    — matching the paper's choice ("we choose the maximum between the
    HLS-predicted delay and our experimented results"), which keeps the
    tool conservative where the vendor model already is (float multiply)
    and fixes it where it is blind (large broadcasts). *)

open Hlsb_ir

type t

val create : ?window:int -> ?cache_dir:string -> Hlsb_device.Device.t -> t
(** [window] is the neighbour-smoothing half-width (default 1). Curves are
    characterized lazily and cached per (op, dtype). When [cache_dir] is
    given, raw curves are also persisted there (see {!Cal_cache}) and
    reloaded on later runs instead of being re-characterized. *)

val device : t -> Hlsb_device.Device.t

val cache_dir : t -> string option
(** The on-disk cache directory this instance persists to, if any. *)

val factor_grid : int array
(** The log-spaced broadcast factors at which curves are sampled. *)

val unit_grid : int array
(** BRAM18 unit counts at which memory curves are sampled (once per device
    — the unit count, not the width/depth split, sets the broadcast cost). *)

val depth_grid : int array
(** The unit grid expressed as 36-bit-buffer depths, for presentation. *)

val op_delay : t -> Op.t -> Dtype.t -> factor:int -> float
(** Calibrated delay at any factor >= 1 (log-interpolated between grid
    points, clamped beyond). *)

val op_predicted : t -> Op.t -> Dtype.t -> float
(** The fanout-blind HLS prediction, for comparison columns. *)

val op_measured : t -> Op.t -> Dtype.t -> factor:int -> float
(** Raw (unsmoothed) measurement, interpolated like {!op_delay}. *)

val mem_write_delay : t -> width:int -> depth:int -> float
(** Calibrated store delay for a buffer of the given geometry. *)

val mem_read_delay : t -> width:int -> depth:int -> float

type curve_row = {
  cr_factor : int;
  cr_predicted : float;
  cr_measured : float;
  cr_calibrated : float;
}

val op_curve : t -> Op.t -> Dtype.t -> curve_row list
(** The Fig. 9 series for one operator. *)

val mem_curve : t -> width:int -> curve_row list
(** The Fig. 9 BRAM-access series; [cr_factor] is the equivalent 36-bit
    buffer depth in words. Uses the write path (the harsher of the two). *)

val warm : ?ops:(Op.t * Dtype.t) list -> ?mem:bool -> t -> unit
(** Force characterization (or cache load) of the given operator curves and,
    when [mem] is true (default), the memory curves — used by
    [hlsbc calibrate --warm] to populate the persistent cache ahead of
    time. *)

val shared : ?window:int -> Hlsb_device.Device.t -> t
(** A process-wide memoized instance per (device, window): characterization
    curves are expensive, and every design on the same device can reuse
    them. Shared instances persist to the ambient cache directory
    ({!Cal_cache.ambient_dir}) when one is available. Thread-safe. *)
