open Hlsb_ir
module Device = Hlsb_device.Device
module Stats = Hlsb_util.Stats
module Metrics = Hlsb_telemetry.Metrics

type curves = {
  raw : float array;
  smoothed : float array;
}

(* Thread-safe via an immutable snapshot: the whole curve table lives in one
   immutable record behind an [Atomic], so warm lookups are a plain
   [Atomic.get] plus an assoc scan — no lock, no serialization across
   domains.  Inserts copy-and-CAS; a same-key race wastes one rebuild but
   both results are identical (characterization is deterministic), so
   whichever insert wins is indistinguishable and the loser adopts it.

   Persistence is batched: builds enqueue their cache updates and the first
   domain through [flush] drains everything queued so far into a single
   load-merge-store, so n concurrent builds cost O(1) disk round-trips, not
   n.  Flushing is still synchronous with respect to the caller — when a
   build returns, its curve is durable — which is what lets a fresh process
   over the same directory start warm. *)
type store = {
  s_ops : (string * curves) list;  (* "op/dtype" -> curves *)
  s_mem_wr : curves option;
  s_mem_rd : curves option;
}

type t = {
  dev : Device.t;
  window : int;
  cache_dir : string option;
  store : store Atomic.t;
  disk : Cal_cache.entry option Atomic.t;  (* lazily loaded once *)
  pending : (Cal_cache.entry -> Cal_cache.entry) list Atomic.t;
  persist_lock : Mutex.t;
  (* Last entry we wrote and the file signature right after writing it;
     guarded by [persist_lock]. Lets [flush] skip re-parsing the file when
     nobody else has touched it since our own store. *)
  mutable persisted : (Cal_cache.entry * (float * int)) option;
}

let factor_grid = [| 1; 2; 4; 8; 16; 32; 64; 128; 256; 512 |]
let unit_grid = [| 1; 4; 16; 64; 256; 1024; 4096 |]
let depth_grid = Array.map (fun u -> u * 512) unit_grid

let empty_store = { s_ops = []; s_mem_wr = None; s_mem_rd = None }

let create ?(window = 1) ?cache_dir dev =
  if window < 0 then invalid_arg "Calibrate.create: negative window";
  {
    dev;
    window;
    cache_dir;
    store = Atomic.make empty_store;
    disk = Atomic.make None;
    pending = Atomic.make [];
    persist_lock = Mutex.create ();
    persisted = None;
  }

let device t = t.dev
let cache_dir t = t.cache_dir

let op_key op dt = Op.to_string op ^ "/" ^ Dtype.to_string dt

(* Racing loads are fine: the file parse is idempotent, both racers produce
   the same entry, and the CAS loser just adopts the winner's copy. *)
let disk_entry t =
  match Atomic.get t.disk with
  | Some e -> e
  | None ->
    let e =
      match t.cache_dir with
      | None -> Cal_cache.empty
      | Some dir -> (
        match Cal_cache.load ~dir ~factor_grid ~unit_grid t.dev with
        | Some e -> e
        | None -> Cal_cache.empty)
    in
    if Atomic.compare_and_set t.disk None (Some e) then e
    else match Atomic.get t.disk with Some e' -> e' | None -> e

let file_sig path =
  match Unix.stat path with
  | s -> Some (s.Unix.st_mtime, s.Unix.st_size)
  | exception Unix.Unix_error _ -> None
  | exception Sys_error _ -> None

(* Drain every queued update into one load-merge-store. Merging over the
   freshest on-disk state keeps concurrent processes warming different ops
   from clobbering each other's keys; the signature check skips the reparse
   in the common case where the last writer was us. *)
let flush t dir =
  Mutex.lock t.persist_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.persist_lock)
    (fun () ->
      match List.rev (Atomic.exchange t.pending []) with
      | [] ->
        (* Whoever held the lock before us drained our update and stored it
           before releasing, so it is already durable. *)
        ()
      | updates ->
        let path = Cal_cache.file_path ~dir t.dev in
        let base =
          match t.persisted with
          | Some (e, s) when file_sig path = Some s -> e
          | _ -> (
            match Cal_cache.load ~dir ~factor_grid ~unit_grid t.dev with
            | Some e -> e
            | None -> Cal_cache.empty)
        in
        let merged = List.fold_left (fun e u -> u e) base updates in
        (match Cal_cache.store ~dir ~factor_grid ~unit_grid t.dev merged with
        | () ->
          Metrics.incr "calibrate.cache_writes";
          t.persisted <- Option.map (fun s -> (merged, s)) (file_sig path)
        | exception Sys_error _ -> ()))

let persist t update =
  match t.cache_dir with
  | None -> ()
  | Some dir ->
    let rec push () =
      let cur = Atomic.get t.pending in
      if not (Atomic.compare_and_set t.pending cur (update :: cur)) then
        push ()
    in
    push ();
    flush t dir

let smooth t raw = Stats.smooth_neighbors ~window:t.window raw

let rec insert_op t key c =
  let s = Atomic.get t.store in
  match List.assoc_opt key s.s_ops with
  | Some c' -> c'
  | None ->
    if Atomic.compare_and_set t.store s { s with s_ops = (key, c) :: s.s_ops }
    then c
    else insert_op t key c

let rec insert_mem t ~read c =
  let s = Atomic.get t.store in
  match if read then s.s_mem_rd else s.s_mem_wr with
  | Some c' -> c'
  | None ->
    let s' =
      if read then { s with s_mem_rd = Some c }
      else { s with s_mem_wr = Some c }
    in
    if Atomic.compare_and_set t.store s s' then c else insert_mem t ~read c

let op_curves t op dt =
  let key = op_key op dt in
  match List.assoc_opt key (Atomic.get t.store).s_ops with
  | Some c -> c
  | None -> (
    match List.assoc_opt key (disk_entry t).Cal_cache.e_ops with
    | Some raw ->
      Metrics.incr "calibrate.cache_hits";
      insert_op t key { raw; smoothed = smooth t raw }
    | None ->
      Metrics.incr "calibrate.curve_builds";
      if t.cache_dir <> None then Metrics.incr "calibrate.cache_misses";
      let pts = Characterize.arith_curve t.dev op dt ~factors:factor_grid in
      let raw = Array.map (fun p -> p.Characterize.measured) pts in
      let c = { raw; smoothed = smooth t raw } in
      persist t (fun e ->
        {
          e with
          Cal_cache.e_ops =
            (key, raw) :: List.remove_assoc key e.Cal_cache.e_ops;
        });
      insert_op t key c)

let mem_curves t ~read =
  let s = Atomic.get t.store in
  match if read then s.s_mem_rd else s.s_mem_wr with
  | Some c -> c
  | None -> (
    let disk = disk_entry t in
    let stored =
      if read then disk.Cal_cache.e_mem_rd else disk.Cal_cache.e_mem_wr
    in
    match stored with
    | Some raw ->
      Metrics.incr "calibrate.cache_hits";
      insert_mem t ~read { raw; smoothed = smooth t raw }
    | None ->
      Metrics.incr "calibrate.curve_builds";
      if t.cache_dir <> None then Metrics.incr "calibrate.cache_misses";
      let pts =
        if read then Characterize.mem_read_curve t.dev ~units:unit_grid
        else Characterize.mem_write_curve t.dev ~units:unit_grid
      in
      let raw = Array.map (fun p -> p.Characterize.measured) pts in
      let c = { raw; smoothed = smooth t raw } in
      persist t (fun e ->
        if read then { e with Cal_cache.e_mem_rd = Some raw }
        else { e with Cal_cache.e_mem_wr = Some raw });
      insert_mem t ~read c)

(* Log-linear interpolation over a positive grid. Clamp outside. *)
let interp grid values x =
  let n = Array.length grid in
  if x <= grid.(0) then values.(0)
  else if x >= grid.(n - 1) then values.(n - 1)
  else begin
    let rec find i = if grid.(i + 1) >= x then i else find (i + 1) in
    let i = find 0 in
    let x0 = log (float_of_int grid.(i)) and x1 = log (float_of_int grid.(i + 1)) in
    let fx = log (float_of_int x) in
    let frac = (fx -. x0) /. (x1 -. x0) in
    (values.(i) *. (1. -. frac)) +. (values.(i + 1) *. frac)
  end

let op_predicted _t op dt = Oplib.predicted op dt

let op_delay t op dt ~factor =
  if factor < 1 then invalid_arg "Calibrate.op_delay: factor < 1";
  Metrics.incr "calibrate.lookups";
  let c = op_curves t op dt in
  let measured = interp factor_grid c.smoothed factor in
  max (Oplib.predicted op dt) measured

let op_measured t op dt ~factor =
  let c = op_curves t op dt in
  interp factor_grid c.raw factor

let units_of ~width ~depth = Device.bram18_for ~width ~depth

let mem_write_delay t ~width ~depth =
  Metrics.incr "calibrate.lookups";
  let c = mem_curves t ~read:false in
  let u = units_of ~width ~depth in
  max Oplib.mem_write_predicted (interp unit_grid c.smoothed u)

let mem_read_delay t ~width ~depth =
  Metrics.incr "calibrate.lookups";
  let c = mem_curves t ~read:true in
  let u = units_of ~width ~depth in
  max Oplib.mem_read_predicted (interp unit_grid c.smoothed u)

type curve_row = {
  cr_factor : int;
  cr_predicted : float;
  cr_measured : float;
  cr_calibrated : float;
}

let op_curve t op dt =
  let c = op_curves t op dt in
  let pred = Oplib.predicted op dt in
  Array.to_list
    (Array.mapi
       (fun i f ->
         {
           cr_factor = f;
           cr_predicted = pred;
           cr_measured = c.raw.(i);
           cr_calibrated = max pred c.smoothed.(i);
         })
       factor_grid)

let mem_curve t ~width =
  ignore width;
  let c = mem_curves t ~read:false in
  Array.to_list
    (Array.mapi
       (fun i depth ->
         {
           cr_factor = depth;
           cr_predicted = Oplib.mem_write_predicted;
           cr_measured = c.raw.(i);
           cr_calibrated = max Oplib.mem_write_predicted c.smoothed.(i);
         })
       depth_grid)

(* Build (or load) every curve a set of designs is likely to touch. *)
let warm ?(ops = []) ?(mem = true) t =
  List.iter (fun (op, dt) -> ignore (op_curves t op dt)) ops;
  if mem then begin
    ignore (mem_curves t ~read:false);
    ignore (mem_curves t ~read:true)
  end

let shared_table : (string * int, t) Hashtbl.t = Hashtbl.create 4
let shared_lock = Mutex.create ()

let shared ?(window = 1) dev =
  Mutex.lock shared_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock shared_lock)
    (fun () ->
      let key = (dev.Device.name, window) in
      match Hashtbl.find_opt shared_table key with
      | Some t -> t
      | None ->
        let t = create ~window ?cache_dir:(Cal_cache.ambient_dir ()) dev in
        Hashtbl.add shared_table key t;
        t)
