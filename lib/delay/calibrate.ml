open Hlsb_ir
module Device = Hlsb_device.Device
module Stats = Hlsb_util.Stats
module Metrics = Hlsb_telemetry.Metrics

type curves = {
  raw : float array;
  smoothed : float array;
}

(* Thread-safe: curve tables are read and filled under [lock] so a shared
   instance can serve concurrent compiles on pool worker domains.  Builds
   (characterization) run outside the lock — distinct keys characterize in
   parallel; a same-key race wastes one rebuild but both results are
   identical, so whichever insert wins is indistinguishable. *)
type t = {
  dev : Device.t;
  window : int;
  cache_dir : string option;
  lock : Mutex.t;
  op_cache : (string, curves) Hashtbl.t;
  mutable mem_wr : curves option;
  mutable mem_rd : curves option;
  mutable disk : Cal_cache.entry option;  (* lazily loaded once *)
}

let factor_grid = [| 1; 2; 4; 8; 16; 32; 64; 128; 256; 512 |]
let unit_grid = [| 1; 4; 16; 64; 256; 1024; 4096 |]
let depth_grid = Array.map (fun u -> u * 512) unit_grid

let create ?(window = 1) ?cache_dir dev =
  if window < 0 then invalid_arg "Calibrate.create: negative window";
  {
    dev;
    window;
    cache_dir;
    lock = Mutex.create ();
    op_cache = Hashtbl.create 16;
    mem_wr = None;
    mem_rd = None;
    disk = None;
  }

let device t = t.dev
let cache_dir t = t.cache_dir

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let op_key op dt = Op.to_string op ^ "/" ^ Dtype.to_string dt

(* Call with [t.lock] held. *)
let disk_entry t =
  match t.disk with
  | Some e -> e
  | None ->
    let e =
      match t.cache_dir with
      | None -> Cal_cache.empty
      | Some dir -> (
        match Cal_cache.load ~dir ~factor_grid ~unit_grid t.dev with
        | Some e -> e
        | None -> Cal_cache.empty)
    in
    t.disk <- Some e;
    e

let persist t update =
  match t.cache_dir with
  | None -> ()
  | Some dir ->
    locked t (fun () ->
      (* Merge over the freshest on-disk state so concurrent processes
         warming different ops do not clobber each other's keys. *)
      let base =
        match Cal_cache.load ~dir ~factor_grid ~unit_grid t.dev with
        | Some e -> e
        | None -> Cal_cache.empty
      in
      let merged = update base in
      t.disk <- Some merged;
      match Cal_cache.store ~dir ~factor_grid ~unit_grid t.dev merged with
      | () -> Metrics.incr "calibrate.cache_writes"
      | exception Sys_error _ -> ())

let smooth t raw = Stats.smooth_neighbors ~window:t.window raw

let op_curves t op dt =
  let key = op_key op dt in
  let cached =
    locked t (fun () ->
      match Hashtbl.find_opt t.op_cache key with
      | Some c -> Some c
      | None -> (
        match List.assoc_opt key (disk_entry t).Cal_cache.e_ops with
        | Some raw ->
          Metrics.incr "calibrate.cache_hits";
          let c = { raw; smoothed = smooth t raw } in
          Hashtbl.add t.op_cache key c;
          Some c
        | None -> None))
  in
  match cached with
  | Some c -> c
  | None ->
    Metrics.incr "calibrate.curve_builds";
    if t.cache_dir <> None then Metrics.incr "calibrate.cache_misses";
    let pts = Characterize.arith_curve t.dev op dt ~factors:factor_grid in
    let raw = Array.map (fun p -> p.Characterize.measured) pts in
    let c = { raw; smoothed = smooth t raw } in
    persist t (fun e ->
      { e with Cal_cache.e_ops = (key, raw) :: List.remove_assoc key e.Cal_cache.e_ops });
    locked t (fun () ->
      match Hashtbl.find_opt t.op_cache key with
      | Some c' -> c'
      | None ->
        Hashtbl.add t.op_cache key c;
        c)

let mem_curves t ~read =
  let cached =
    locked t (fun () ->
      match if read then t.mem_rd else t.mem_wr with
      | Some c -> Some c
      | None -> (
        let disk = disk_entry t in
        let stored =
          if read then disk.Cal_cache.e_mem_rd else disk.Cal_cache.e_mem_wr
        in
        match stored with
        | Some raw ->
          Metrics.incr "calibrate.cache_hits";
          let c = { raw; smoothed = smooth t raw } in
          if read then t.mem_rd <- Some c else t.mem_wr <- Some c;
          Some c
        | None -> None))
  in
  match cached with
  | Some c -> c
  | None ->
    Metrics.incr "calibrate.curve_builds";
    if t.cache_dir <> None then Metrics.incr "calibrate.cache_misses";
    let pts =
      if read then Characterize.mem_read_curve t.dev ~units:unit_grid
      else Characterize.mem_write_curve t.dev ~units:unit_grid
    in
    let raw = Array.map (fun p -> p.Characterize.measured) pts in
    let c = { raw; smoothed = smooth t raw } in
    persist t (fun e ->
      if read then { e with Cal_cache.e_mem_rd = Some raw }
      else { e with Cal_cache.e_mem_wr = Some raw });
    locked t (fun () ->
      let existing = if read then t.mem_rd else t.mem_wr in
      match existing with
      | Some c' -> c'
      | None ->
        if read then t.mem_rd <- Some c else t.mem_wr <- Some c;
        c)

(* Log-linear interpolation over a positive grid. Clamp outside. *)
let interp grid values x =
  let n = Array.length grid in
  if x <= grid.(0) then values.(0)
  else if x >= grid.(n - 1) then values.(n - 1)
  else begin
    let rec find i = if grid.(i + 1) >= x then i else find (i + 1) in
    let i = find 0 in
    let x0 = log (float_of_int grid.(i)) and x1 = log (float_of_int grid.(i + 1)) in
    let fx = log (float_of_int x) in
    let frac = (fx -. x0) /. (x1 -. x0) in
    (values.(i) *. (1. -. frac)) +. (values.(i + 1) *. frac)
  end

let op_predicted _t op dt = Oplib.predicted op dt

let op_delay t op dt ~factor =
  if factor < 1 then invalid_arg "Calibrate.op_delay: factor < 1";
  Metrics.incr "calibrate.lookups";
  let c = op_curves t op dt in
  let measured = interp factor_grid c.smoothed factor in
  max (Oplib.predicted op dt) measured

let op_measured t op dt ~factor =
  let c = op_curves t op dt in
  interp factor_grid c.raw factor

let units_of ~width ~depth = Device.bram18_for ~width ~depth

let mem_write_delay t ~width ~depth =
  Metrics.incr "calibrate.lookups";
  let c = mem_curves t ~read:false in
  let u = units_of ~width ~depth in
  max Oplib.mem_write_predicted (interp unit_grid c.smoothed u)

let mem_read_delay t ~width ~depth =
  Metrics.incr "calibrate.lookups";
  let c = mem_curves t ~read:true in
  let u = units_of ~width ~depth in
  max Oplib.mem_read_predicted (interp unit_grid c.smoothed u)

type curve_row = {
  cr_factor : int;
  cr_predicted : float;
  cr_measured : float;
  cr_calibrated : float;
}

let op_curve t op dt =
  let c = op_curves t op dt in
  let pred = Oplib.predicted op dt in
  Array.to_list
    (Array.mapi
       (fun i f ->
         {
           cr_factor = f;
           cr_predicted = pred;
           cr_measured = c.raw.(i);
           cr_calibrated = max pred c.smoothed.(i);
         })
       factor_grid)

let mem_curve t ~width =
  ignore width;
  let c = mem_curves t ~read:false in
  Array.to_list
    (Array.mapi
       (fun i depth ->
         {
           cr_factor = depth;
           cr_predicted = Oplib.mem_write_predicted;
           cr_measured = c.raw.(i);
           cr_calibrated = max Oplib.mem_write_predicted c.smoothed.(i);
         })
       depth_grid)

(* Build (or load) every curve a set of designs is likely to touch. *)
let warm ?(ops = []) ?(mem = true) t =
  List.iter (fun (op, dt) -> ignore (op_curves t op dt)) ops;
  if mem then begin
    ignore (mem_curves t ~read:false);
    ignore (mem_curves t ~read:true)
  end

let shared_table : (string * int, t) Hashtbl.t = Hashtbl.create 4
let shared_lock = Mutex.create ()

let shared ?(window = 1) dev =
  Mutex.lock shared_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock shared_lock)
    (fun () ->
      let key = (dev.Device.name, window) in
      match Hashtbl.find_opt shared_table key with
      | Some t -> t
      | None ->
        let t = create ~window ?cache_dir:(Cal_cache.ambient_dir ()) dev in
        Hashtbl.add shared_table key t;
        t)
