open Hlsb_ir
module Device = Hlsb_device.Device
module Stats = Hlsb_util.Stats
module Metrics = Hlsb_telemetry.Metrics

type curves = {
  raw : float array;
  smoothed : float array;
}

type t = {
  dev : Device.t;
  window : int;
  op_cache : (string, curves) Hashtbl.t;
  mutable mem_wr : curves option;
  mutable mem_rd : curves option;
}

let factor_grid = [| 1; 2; 4; 8; 16; 32; 64; 128; 256; 512 |]
let unit_grid = [| 1; 4; 16; 64; 256; 1024; 4096 |]
let depth_grid = Array.map (fun u -> u * 512) unit_grid

let create ?(window = 1) dev =
  if window < 0 then invalid_arg "Calibrate.create: negative window";
  { dev; window; op_cache = Hashtbl.create 16; mem_wr = None; mem_rd = None }

let device t = t.dev

let op_key op dt = Op.to_string op ^ "/" ^ Dtype.to_string dt

let op_curves t op dt =
  let key = op_key op dt in
  match Hashtbl.find_opt t.op_cache key with
  | Some c -> c
  | None ->
    Metrics.incr "calibrate.curve_builds";
    let pts = Characterize.arith_curve t.dev op dt ~factors:factor_grid in
    let raw = Array.map (fun p -> p.Characterize.measured) pts in
    let smoothed = Stats.smooth_neighbors ~window:t.window raw in
    let c = { raw; smoothed } in
    Hashtbl.add t.op_cache key c;
    c

let mem_curves t ~read =
  let cached = if read then t.mem_rd else t.mem_wr in
  match cached with
  | Some c -> c
  | None ->
    Metrics.incr "calibrate.curve_builds";
    let pts =
      if read then Characterize.mem_read_curve t.dev ~units:unit_grid
      else Characterize.mem_write_curve t.dev ~units:unit_grid
    in
    let raw = Array.map (fun p -> p.Characterize.measured) pts in
    let smoothed = Stats.smooth_neighbors ~window:t.window raw in
    let c = { raw; smoothed } in
    if read then t.mem_rd <- Some c else t.mem_wr <- Some c;
    c

(* Log-linear interpolation over a positive grid. Clamp outside. *)
let interp grid values x =
  let n = Array.length grid in
  if x <= grid.(0) then values.(0)
  else if x >= grid.(n - 1) then values.(n - 1)
  else begin
    let rec find i = if grid.(i + 1) >= x then i else find (i + 1) in
    let i = find 0 in
    let x0 = log (float_of_int grid.(i)) and x1 = log (float_of_int grid.(i + 1)) in
    let fx = log (float_of_int x) in
    let frac = (fx -. x0) /. (x1 -. x0) in
    (values.(i) *. (1. -. frac)) +. (values.(i + 1) *. frac)
  end

let op_predicted _t op dt = Oplib.predicted op dt

let op_delay t op dt ~factor =
  if factor < 1 then invalid_arg "Calibrate.op_delay: factor < 1";
  Metrics.incr "calibrate.lookups";
  let c = op_curves t op dt in
  let measured = interp factor_grid c.smoothed factor in
  max (Oplib.predicted op dt) measured

let op_measured t op dt ~factor =
  let c = op_curves t op dt in
  interp factor_grid c.raw factor

let units_of ~width ~depth = Device.bram18_for ~width ~depth

let mem_write_delay t ~width ~depth =
  Metrics.incr "calibrate.lookups";
  let c = mem_curves t ~read:false in
  let u = units_of ~width ~depth in
  max Oplib.mem_write_predicted (interp unit_grid c.smoothed u)

let mem_read_delay t ~width ~depth =
  Metrics.incr "calibrate.lookups";
  let c = mem_curves t ~read:true in
  let u = units_of ~width ~depth in
  max Oplib.mem_read_predicted (interp unit_grid c.smoothed u)

type curve_row = {
  cr_factor : int;
  cr_predicted : float;
  cr_measured : float;
  cr_calibrated : float;
}

let op_curve t op dt =
  let c = op_curves t op dt in
  let pred = Oplib.predicted op dt in
  Array.to_list
    (Array.mapi
       (fun i f ->
         {
           cr_factor = f;
           cr_predicted = pred;
           cr_measured = c.raw.(i);
           cr_calibrated = max pred c.smoothed.(i);
         })
       factor_grid)

let mem_curve t ~width =
  ignore width;
  let c = mem_curves t ~read:false in
  Array.to_list
    (Array.mapi
       (fun i depth ->
         {
           cr_factor = depth;
           cr_predicted = Oplib.mem_write_predicted;
           cr_measured = c.raw.(i);
           cr_calibrated = max Oplib.mem_write_predicted c.smoothed.(i);
         })
       depth_grid)

let shared_table : (string * int, t) Hashtbl.t = Hashtbl.create 4

let shared ?(window = 1) dev =
  let key = (dev.Device.name, window) in
  match Hashtbl.find_opt shared_table key with
  | Some t -> t
  | None ->
    let t = create ~window dev in
    Hashtbl.add shared_table key t;
    t
