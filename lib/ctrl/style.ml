type pipeline_ctrl =
  | Stall
  | Skid of { min_area : bool }

type sync_strategy =
  | Sync_naive
  | Sync_pruned

type sched_mode =
  | Sched_hls
  | Sched_aware

type recipe = {
  sched : sched_mode;
  pipe : pipeline_ctrl;
  sync : sync_strategy;
}

let original = { sched = Sched_hls; pipe = Stall; sync = Sync_naive }

let optimized =
  { sched = Sched_aware; pipe = Skid { min_area = true }; sync = Sync_pruned }

let sched_only = { sched = Sched_aware; pipe = Stall; sync = Sync_naive }

let ctrl_only =
  { sched = Sched_hls; pipe = Skid { min_area = true }; sync = Sync_pruned }

(* The CLI-facing recipe names, in the order help text lists them. *)
let named =
  [
    ("original", original);
    ("optimized", optimized);
    ("sched-only", sched_only);
    ("ctrl-only", ctrl_only);
  ]

let names = List.map fst named

let label r =
  let s = match r.sched with Sched_hls -> "hls" | Sched_aware -> "aware" in
  let p =
    match r.pipe with
    | Stall -> "stall"
    | Skid { min_area = true } -> "skid-min"
    | Skid { min_area = false } -> "skid"
  in
  let y = match r.sync with Sync_naive -> "naive" | Sync_pruned -> "pruned" in
  Printf.sprintf "%s/%s/%s" s p y

let to_string r =
  match List.find_opt (fun (_, r') -> r' = r) named with
  | Some (n, _) -> n
  | None -> label r

let of_string s =
  match List.assoc_opt (String.lowercase_ascii (String.trim s)) named with
  | Some r -> Ok r
  | None ->
    Error
      (Hlsb_util.Diag.error ~stage:"recipe"
         (Printf.sprintf "unknown recipe %S (expected one of: %s)" s
            (String.concat " | " names)))
