(** Control-generation strategy switches threaded through the RTL
    generator; each Table-1 "Orig" column uses the first constructor of
    each type, each "Opt" column the alternative the paper proposes. *)

type pipeline_ctrl =
  | Stall  (** broadcast empty/full-derived stall to every stage (§3.3) *)
  | Skid of { min_area : bool }
      (** always-flowing pipeline + skid buffer(s); [min_area] enables the
          Fig. 12 multi-level split *)

type sync_strategy =
  | Sync_naive  (** AND all dones, broadcast start to all (§3.2) *)
  | Sync_pruned  (** split independent flows + longest-latency wait (§4.2) *)

type sched_mode =
  | Sched_hls  (** fanout-blind delay model *)
  | Sched_aware  (** §4.1 calibrated model *)

type recipe = {
  sched : sched_mode;
  pipe : pipeline_ctrl;
  sync : sync_strategy;
}

val original : recipe
(** What the commercial HLS flow emits today. *)

val optimized : recipe
(** All three of the paper's techniques enabled (min-area skid control). *)

val sched_only : recipe
(** §4.1 scheduling alone: broadcast-aware schedule, original control. *)

val ctrl_only : recipe
(** §4.2/§4.3 control alone: HLS schedule, skid + pruned sync. *)

val label : recipe -> string

val names : string list
(** The CLI-facing recipe names: ["original"], ["optimized"],
    ["sched-only"], ["ctrl-only"]. *)

val to_string : recipe -> string
(** The CLI name of a named recipe; falls back to {!label} for recipes
    with no name. [to_string r] round-trips through {!of_string} for
    every name in {!names}. *)

val of_string : string -> (recipe, Hlsb_util.Diag.t) result
(** Parse a CLI recipe name (case-insensitive, surrounding whitespace
    ignored). Unknown names return a structured stage-["recipe"]
    diagnostic listing the accepted names — the one parser shared by
    [hlsbc compile], [cc], [fuzz] and [explore]. *)
