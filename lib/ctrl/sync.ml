open Hlsb_ir
module Metrics = Hlsb_telemetry.Metrics

let split_independent (df : Dataflow.t) =
  let comp = Dataflow.connectivity_components df in
  let out = Dataflow.create () in
  Array.iter
    (fun (p : Dataflow.process) ->
      ignore
        (Dataflow.add_process out ~name:p.Dataflow.p_name
           ?latency:p.Dataflow.p_latency ?kernel:p.Dataflow.p_kernel ()))
    (Dataflow.processes df);
  Array.iter
    (fun (c : Dataflow.channel) ->
      ignore
        (Dataflow.add_channel out ~name:c.Dataflow.c_name ~src:c.Dataflow.c_src
           ~dst:c.Dataflow.c_dst ~dtype:c.Dataflow.c_dtype
           ~depth:c.Dataflow.c_depth ()))
    (Dataflow.channels df);
  List.iter
    (fun group ->
      (* Partition the group by channel-connectivity component. *)
      let by_comp = Hashtbl.create 8 in
      List.iter
        (fun p ->
          let c = comp.(p) in
          let members = Option.value ~default:[] (Hashtbl.find_opt by_comp c) in
          Hashtbl.replace by_comp c (p :: members))
        group;
      (* Deterministic order: by smallest member. *)
      let split =
        Hashtbl.fold (fun _ members acc -> List.rev members :: acc) by_comp []
        |> List.sort compare
      in
      Metrics.incr ~by:(max 0 (List.length split - 1)) "sync.groups_split";
      List.iter (fun members -> Dataflow.add_sync_group out members) split)
    (Dataflow.sync_groups df);
  out

type wait_set = {
  waited : int list;
  skipped : int list;
}

let longest_latency_wait (df : Dataflow.t) group =
  if group = [] then invalid_arg "Sync.longest_latency_wait: empty group";
  let static, dynamic =
    List.partition
      (fun p -> (Dataflow.process df p).Dataflow.p_latency <> None)
      group
  in
  match static with
  | [] -> { waited = group; skipped = [] }
  | _ ->
    let lat p =
      match (Dataflow.process df p).Dataflow.p_latency with
      | Some l -> l
      | None -> assert false
    in
    let max_lat = List.fold_left (fun acc p -> max acc (lat p)) 0 static in
    (* One representative with the maximal latency suffices. *)
    let rep =
      List.find (fun p -> lat p = max_lat) (List.sort compare static)
    in
    let skipped = List.filter (fun p -> p <> rep) static in
    { waited = List.sort compare (rep :: dynamic); skipped }

type cost = {
  reduce_fanin : int;
  start_fanout : int;
}

let group_cost ~wait ~started =
  { reduce_fanin = List.length wait; start_fanout = List.length started }

let total_sync_fanout (df : Dataflow.t) =
  List.fold_left
    (fun acc group -> acc + (2 * List.length group))
    0 (Dataflow.sync_groups df)

type latency_bound =
  | Exact of int
  | Between of int * int
  | Unknown

let bounds_of = function
  | Exact l -> (l, l)
  | Between (lo, hi) -> (lo, hi)
  | Unknown -> (max_int, max_int) (* never dominated; handled separately *)

let prune_with_bounds members =
  if members = [] then invalid_arg "Sync.prune_with_bounds: empty group";
  let seen = Hashtbl.create 8 in
  List.iter
    (fun (id, b) ->
      if Hashtbl.mem seen id then
        invalid_arg "Sync.prune_with_bounds: duplicate member";
      Hashtbl.add seen id ();
      match b with
      | Between (lo, hi) when lo > hi ->
        invalid_arg "Sync.prune_with_bounds: inverted interval"
      | Exact l when l < 0 ->
        invalid_arg "Sync.prune_with_bounds: negative latency"
      | Exact _ | Between _ | Unknown -> ())
    members;
  let bounded =
    List.filter (fun (_, b) -> b <> Unknown) members
  in
  match bounded with
  | [] -> { waited = List.map fst members; skipped = [] }
  | _ ->
    (* anchor: greatest lower bound, smallest id on ties *)
    let anchor_id, anchor_b =
      List.fold_left
        (fun (bid, bb) (id, b) ->
          let blo, _ = bounds_of bb and lo, _ = bounds_of b in
          if lo > blo || (lo = blo && id < bid) then (id, b) else (bid, bb))
        (List.hd bounded) (List.tl bounded)
    in
    let anchor_lo, _ = bounds_of anchor_b in
    let skipped =
      List.filter_map
        (fun (id, b) ->
          if id = anchor_id then None
          else
            match b with
            | Unknown -> None
            | Exact _ | Between _ ->
              let _, hi = bounds_of b in
              if hi <= anchor_lo then Some id else None)
        members
    in
    let waited =
      List.filter_map
        (fun (id, _) -> if List.mem id skipped then None else Some id)
        members
    in
    { waited = List.sort compare waited; skipped = List.sort compare skipped }

let bound_of_trip_count ~ii ~depth ~trip_lo ~trip_hi =
  if ii < 1 || depth < 1 || trip_lo < 1 || trip_hi < trip_lo then
    invalid_arg "Sync.bound_of_trip_count";
  let lat trips = depth + (ii * (trips - 1)) in
  if trip_lo = trip_hi then Exact (lat trip_lo)
  else Between (lat trip_lo, lat trip_hi)
