(** QCheck bridge: expose the fuzz generators, printers, and shrinker as
    [QCheck] arbitraries so the differential oracles run under
    [dune runtest] alongside the hand-written unit tests.

    The qcheck shrinker reuses {!Shrink.candidates}, so a failing
    property reports the same local minimum the standalone campaign
    would. *)

val arbitrary : Gen.kind -> Gen.t QCheck.arbitrary
(** Cases of the given shape, seeded from qcheck's [Random.State]. *)

val oracle_test : ?count:int -> Oracle.name -> QCheck.Test.t
(** A qcheck property asserting the oracle passes on every generated
    case of its kind. [count] defaults to 30. *)

val passes : Oracle.name -> Gen.t -> bool
(** [true] iff the oracle returns [Pass] — convenience for plain
    asserts. *)
