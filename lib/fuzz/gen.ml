module Rng = Hlsb_util.Rng
module Json = Hlsb_telemetry.Json
module Plan = Hlsb_transform.Plan
open Hlsb_ir

type gate =
  | Empty
  | Credit

type pipe_case = {
  pc_stages : int;
  pc_ctrl_delay : int;
  pc_gate : gate;
  pc_n : int;
  pc_slack : int;
  pc_ready_seed : int;
  pc_ready_duty : int;
}

type net_case = {
  nc_chains : int list;
  nc_depth_seed : int;
  nc_groups : (int * int list) list;
  nc_tokens : int;
  nc_ready_seed : int;
  nc_ready_duty : int;
}

type kern_shape =
  | Sdag
  | Swide

type kern_case = {
  kc_seed : int;
  kc_ops : int;
  kc_width : int;
  kc_recipe : int;
  kc_shape : kern_shape;
}

type src_case = {
  sc_seed : int;
  sc_strands : int;
  sc_trips : int;
  sc_big : bool;
  sc_plan : string;
}

type t =
  | Pipe of pipe_case
  | Net of net_case
  | Kern of kern_case
  | Src of src_case

type kind =
  | Kpipe
  | Knet
  | Kkern
  | Ksrc

let kind_of = function
  | Pipe _ -> Kpipe
  | Net _ -> Knet
  | Kern _ -> Kkern
  | Src _ -> Ksrc

let recipes =
  let open Hlsb_ctrl.Style in
  [|
    original;
    optimized;
    { sched = Sched_aware; pipe = Stall; sync = Sync_naive };
    { sched = Sched_hls; pipe = Skid { min_area = true }; sync = Sync_pruned };
  |]

(* ---------------- validity ---------------- *)

let valid_pipe c =
  c.pc_stages >= 1 && c.pc_ctrl_delay >= 0 && c.pc_n >= 1 && c.pc_slack >= 0
  && c.pc_ready_duty >= 1 && c.pc_ready_duty <= 4

let valid_net c =
  let n_chains = List.length c.nc_chains in
  n_chains >= 1
  && List.for_all (fun l -> l >= 1) c.nc_chains
  && c.nc_tokens >= 1
  && c.nc_ready_duty >= 1
  && c.nc_ready_duty <= 4
  &&
  let lengths = Array.of_list c.nc_chains in
  let positions_distinct =
    let ps = List.map fst c.nc_groups in
    List.length (List.sort_uniq compare ps) = List.length ps
  in
  positions_distinct
  && List.for_all
       (fun (pos, members) ->
         pos >= 0
         && List.length members >= 2
         && List.sort_uniq compare members = members
         && List.for_all
              (fun ch -> ch >= 0 && ch < n_chains && lengths.(ch) > pos)
              members)
       c.nc_groups

let valid_kern c =
  c.kc_seed >= 0 && c.kc_ops >= 1
  && (c.kc_width = 8 || c.kc_width = 16 || c.kc_width = 32)
  && c.kc_recipe >= 0
  && c.kc_recipe < Array.length recipes

let valid_src c =
  c.sc_seed >= 0
  && c.sc_strands >= 1
  && c.sc_strands <= 3
  && c.sc_trips >= 2
  && c.sc_trips <= 8
  && match Plan.of_string c.sc_plan with Ok _ -> true | Error _ -> false

let valid = function
  | Pipe c -> valid_pipe c
  | Net c -> valid_net c
  | Kern c -> valid_kern c
  | Src c -> valid_src c

(* ---------------- deterministic builders ---------------- *)

(* Readiness patterns carry a liveness floor — one guaranteed-ready cycle
   in every four — so every generated scenario drains within the sim
   cycle limits and "never completes" is always a bug, never a
   pathological pattern. *)

let ready_fn ~seed ~duty =
  let rng = Rng.create seed in
  let pattern = Array.init 1024 (fun _ -> Rng.int rng 4 < duty) in
  fun cycle -> cycle land 3 = 3 || pattern.(cycle land 1023)

let net_ready_fn ~seed ~duty =
  let rng = Rng.create seed in
  let pattern = Array.init 2048 (fun _ -> Rng.int rng 4 < duty) in
  fun ~chan ~cycle ->
    (chan + cycle) land 3 = 3 || pattern.(((chan * 37) + cycle) land 2047)

let build_net (c : net_case) =
  let df = Dataflow.create () in
  let depth_rng = Rng.create c.nc_depth_seed in
  let dtypes = [| Dtype.Int 8; Dtype.Int 16; Dtype.Int 32; Dtype.Uint 8 |] in
  let chain_procs =
    List.mapi
      (fun ci len ->
        let dt = dtypes.(Rng.int depth_rng (Array.length dtypes)) in
        let procs =
          List.init len (fun pi ->
            Dataflow.add_process df ~name:(Printf.sprintf "c%dp%d" ci pi) ())
        in
        let arr = Array.of_list procs in
        ignore
          (Dataflow.add_channel df
             ~name:(Printf.sprintf "c%d_in" ci)
             ~src:(-1) ~dst:arr.(0) ~dtype:dt
             ~depth:(1 + Rng.int depth_rng 4)
             ());
        for pi = 0 to len - 2 do
          ignore
            (Dataflow.add_channel df
               ~name:(Printf.sprintf "c%d_%d_%d" ci pi (pi + 1))
               ~src:arr.(pi)
               ~dst:arr.(pi + 1)
               ~dtype:dt
               ~depth:(1 + Rng.int depth_rng 4)
               ())
        done;
        ignore
          (Dataflow.add_channel df
             ~name:(Printf.sprintf "c%d_out" ci)
             ~src:arr.(len - 1)
             ~dst:(-1) ~dtype:dt
             ~depth:(1 + Rng.int depth_rng 4)
             ());
        arr)
      c.nc_chains
  in
  let chains = Array.of_list chain_procs in
  List.iter
    (fun (pos, members) ->
      Dataflow.add_sync_group df
        (List.map (fun ch -> chains.(ch).(pos)) members))
    c.nc_groups;
  df

let op_pool = [| Op.Add; Op.Sub; Op.Mul; Op.And_; Op.Or_; Op.Xor; Op.Min; Op.Max |]
let unary_pool = [| Op.Not; Op.Abs |]

(* The wide shape reuses the modular-squaring datapath generator: a
   partial-product grid plus compressor tree, i.e. the broadcast-heavy
   structure the scale workloads stress, at fuzz-friendly sizes. All
   parameters are a deterministic function of the case. *)
let build_wide (c : kern_case) =
  let limb = 4 in
  let bits = Stdlib.max (2 * limb) (c.kc_width * (1 + (c.kc_ops mod 4))) in
  Hlsb_designs.Bigmul.kernel ~bits ~limb ~lane:(c.kc_seed land 0xFF) ()

let build_dag (c : kern_case) =
  let rng = Rng.create c.kc_seed in
  let dt = Dtype.Int c.kc_width in
  let dag = Dag.create () in
  let n_in = 1 + Rng.int rng 3 in
  let sources =
    Array.init n_in (fun i ->
      let f =
        Dag.add_fifo dag ~name:(Printf.sprintf "i%d" i) ~dtype:dt ~depth:8
      in
      Dag.fifo_read dag ~fifo:f)
  in
  let values = ref (Array.to_list sources) in
  let n_values = ref n_in in
  let pick_recent () =
    (* bias toward recent values so the DAG grows depth, not just width *)
    let window = min 8 !n_values in
    List.nth !values (Rng.int rng window)
  in
  for j = 0 to c.kc_ops - 1 do
    let a = if j < n_in then sources.(j) else pick_recent () in
    let node =
      if Rng.int rng 6 = 0 then
        Dag.op dag unary_pool.(Rng.int rng (Array.length unary_pool)) ~dtype:dt [ a ]
      else
        let b = pick_recent () in
        Dag.op dag op_pool.(Rng.int rng (Array.length op_pool)) ~dtype:dt [ a; b ]
    in
    values := node :: !values;
    incr n_values
  done;
  (* every value nobody reads leaves through an output FIFO, so the DAG
     has no dangling datapath and at least one output *)
  let n_out = ref 0 in
  List.iter
    (fun node ->
      if Dag.consumers dag node = [] then begin
        let f =
          Dag.add_fifo dag ~name:(Printf.sprintf "o%d" !n_out) ~dtype:dt ~depth:8
        in
        ignore (Dag.fifo_write dag ~fifo:f ~value:node);
        incr n_out
      end)
    (List.rev !values);
  Kernel.create ~name:(Printf.sprintf "fz%d" c.kc_seed) dag

let build_kernel (c : kern_case) =
  match c.kc_shape with
  | Sdag -> build_dag c
  | Swide -> build_wide c

(* Source programs are independent "strands" — each a stream-in/stream-out
   flow with its own loops — so fission, fusion and stream insertion have
   genuine targets and per-stream (Kahn) semantics is well-defined. The
   text is deterministic in the case; the transform plan rides along as
   its canonical string. *)

let src_shape rng = Rng.int rng 4

let src_strand b ~params ~shape ~s ~t ~k =
  let p name = Buffer.add_string params (Printf.sprintf "stream<int> &%s, " name) in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  match shape with
  | 0 ->
    (* stream-insertable: intermediate array between twin loops *)
    p (Printf.sprintf "in%d" s);
    p (Printf.sprintf "out%d" s);
    line "  int t%d[%d];" s t;
    line "  for (int i%d = 0; i%d < %d; i%d++) {" s s t s;
    line "    t%d[i%d] = in%d.read() * %d + %d;" s s s (k ()) (k ());
    line "  }";
    line "  for (int i%d = 0; i%d < %d; i%d++) {" s s t s;
    line "    out%d.write(t%d[i%d] + %d);" s s s (k ());
    line "  }"
  | 1 ->
    (* straight-through single loop *)
    p (Printf.sprintf "in%d" s);
    p (Printf.sprintf "out%d" s);
    line "  for (int i%d = 0; i%d < %d; i%d++) {" s s t s;
    line "    int v%d = in%d.read();" s s;
    line "    out%d.write(v%d * %d - %d);" s s (k ()) (k ());
    line "  }"
  | 2 ->
    (* fission target: two stream-disjoint statements in one loop *)
    p (Printf.sprintf "in%d" s);
    p (Printf.sprintf "inx%d" s);
    p (Printf.sprintf "out%d" s);
    p (Printf.sprintf "outx%d" s);
    line "  for (int i%d = 0; i%d < %d; i%d++) {" s s t s;
    line "    out%d.write(in%d.read() + %d);" s s (k ());
    line "    outx%d.write(inx%d.read() * %d);" s s (k ());
    line "  }"
  | _ ->
    (* fusion target: adjacent twin-header loops over disjoint streams *)
    p (Printf.sprintf "in%d" s);
    p (Printf.sprintf "inx%d" s);
    p (Printf.sprintf "out%d" s);
    p (Printf.sprintf "outx%d" s);
    line "  for (int i%d = 0; i%d < %d; i%d++) {" s s t s;
    line "    out%d.write(in%d.read() + %d);" s s (k ());
    line "  }";
    line "  for (int i%d = 0; i%d < %d; i%d++) {" s s t s;
    line "    outx%d.write(inx%d.read() - %d);" s s (k ());
    line "  }"

let src_source (c : src_case) =
  let rng = Rng.create c.sc_seed in
  let k () = 1 + Rng.int rng 9 in
  let body = Buffer.create 512 and params = Buffer.create 128 in
  for s = 0 to c.sc_strands - 1 do
    src_strand body ~params ~shape:(src_shape rng) ~s ~t:c.sc_trips ~k
  done;
  if c.sc_big then begin
    (* one BRAM-sized strand (>= Elab.buffer_threshold words) so cyclic
       partitioning has a legal target *)
    Buffer.add_string params "stream<int> &inb, stream<int> &outb, ";
    Buffer.add_string body
      (Printf.sprintf
         "  int tb[256];\n\
         \  for (int ib = 0; ib < 256; ib++) {\n\
         \    tb[ib] = inb.read() + %d;\n\
         \  }\n\
         \  for (int ib = 0; ib < 256; ib++) {\n\
         \    outb.write(tb[ib] * %d);\n\
         \  }\n"
         (k ()) (k ()))
  end;
  let params = Buffer.contents params in
  let params = String.sub params 0 (String.length params - 2) in
  Printf.sprintf "void fz(%s) {\n%s}\n" params (Buffer.contents body)

(* ---------------- generation ---------------- *)

let gen_pipe rng =
  {
    pc_stages = 1 + Rng.int rng 12;
    pc_ctrl_delay = Rng.int rng 4;
    pc_gate = (if Rng.bool rng then Empty else Credit);
    pc_n = 1 + Rng.int rng 50;
    pc_slack = Rng.int rng 4;
    pc_ready_seed = Rng.int rng 1_000_000;
    pc_ready_duty = 1 + Rng.int rng 4;
  }

let gen_net rng =
  let n_chains = 1 + Rng.int rng 4 in
  let chains = List.init n_chains (fun _ -> 1 + Rng.int rng 4) in
  let lengths = Array.of_list chains in
  let max_len = Array.fold_left max 0 lengths in
  let groups = ref [] in
  for pos = 0 to max_len - 1 do
    if Rng.int rng 3 = 0 then begin
      let eligible =
        List.filter (fun ch -> lengths.(ch) > pos) (List.init n_chains Fun.id)
      in
      let members = List.filter (fun _ -> Rng.bool rng) eligible in
      if List.length members >= 2 then groups := (pos, members) :: !groups
    end
  done;
  {
    nc_chains = chains;
    nc_depth_seed = Rng.int rng 1_000_000;
    nc_groups = List.rev !groups;
    nc_tokens = 1 + Rng.int rng 12;
    nc_ready_seed = Rng.int rng 1_000_000;
    nc_ready_duty = 1 + Rng.int rng 4;
  }

let gen_kern rng =
  {
    kc_seed = Rng.int rng 1_000_000;
    kc_ops = 1 + Rng.int rng 24;
    kc_width = [| 8; 16; 32 |].(Rng.int rng 3);
    kc_recipe = Rng.int rng (Array.length recipes);
    (* one case in four exercises the wide-arithmetic datapath *)
    kc_shape = (if Rng.int rng 4 = 0 then Swide else Sdag);
  }

let gen_src rng =
  let sc_seed = Rng.int rng 1_000_000 in
  let sc_strands = 1 + Rng.int rng 3 in
  let sc_trips = [| 2; 3; 4; 6; 8 |].(Rng.int rng 5) in
  let sc_big = Rng.int rng 4 = 0 in
  (* item pool over names the source can actually contain; inapplicable
     picks are still legal plans (the oracle treats their structured
     rejection as a pass) *)
  let strand () = Rng.int rng sc_strands in
  let factor () = if Rng.bool rng then 2 else sc_trips in
  let pool =
    [|
      (fun () -> Printf.sprintf "unroll=%d" (factor ()));
      (fun () -> Printf.sprintf "unroll=i%d:%d" (strand ()) (factor ()));
      (fun () -> "fission");
      (fun () -> Printf.sprintf "fission=i%d" (strand ()));
      (fun () -> "fusion");
      (fun () -> Printf.sprintf "fusion=i%d" (strand ()));
      (fun () -> "stream");
      (fun () -> Printf.sprintf "stream=t%d" (strand ()));
      (fun () -> "pragmas");
    |]
  in
  let big_pool =
    [|
      (fun () -> "partition=cyclic:2");
      (fun () -> Printf.sprintf "partition=cyclic:tb:%d" (1 lsl (1 + Rng.int rng 3)));
      (fun () -> "stream=tb");
      (fun () -> "unroll=ib:4");
    |]
  in
  let n_items = Rng.int rng 3 in
  let items =
    List.init n_items (fun _ ->
      if sc_big && Rng.int rng 3 = 0 then
        big_pool.(Rng.int rng (Array.length big_pool)) ()
      else pool.(Rng.int rng (Array.length pool)) ())
  in
  {
    sc_seed;
    sc_strands;
    sc_trips;
    sc_big;
    sc_plan = String.concat ";" (List.sort_uniq compare items);
  }

let generate kind rng =
  match kind with
  | Kpipe -> Pipe (gen_pipe rng)
  | Knet -> Net (gen_net rng)
  | Kkern -> Kern (gen_kern rng)
  | Ksrc -> Src (gen_src rng)

(* ---------------- serialization ---------------- *)

let gate_to_string = function
  | Empty -> "empty"
  | Credit -> "credit"

let to_json = function
  | Pipe c ->
    Json.Obj
      [
        ("kind", Json.Str "pipe");
        ("stages", Json.Int c.pc_stages);
        ("ctrl_delay", Json.Int c.pc_ctrl_delay);
        ("gate", Json.Str (gate_to_string c.pc_gate));
        ("n", Json.Int c.pc_n);
        ("slack", Json.Int c.pc_slack);
        ("ready_seed", Json.Int c.pc_ready_seed);
        ("ready_duty", Json.Int c.pc_ready_duty);
      ]
  | Net c ->
    Json.Obj
      [
        ("kind", Json.Str "net");
        ("chains", Json.List (List.map (fun l -> Json.Int l) c.nc_chains));
        ("depth_seed", Json.Int c.nc_depth_seed);
        ( "groups",
          Json.List
            (List.map
               (fun (pos, members) ->
                 Json.Obj
                   [
                     ("pos", Json.Int pos);
                     ( "chains",
                       Json.List (List.map (fun m -> Json.Int m) members) );
                   ])
               c.nc_groups) );
        ("tokens", Json.Int c.nc_tokens);
        ("ready_seed", Json.Int c.nc_ready_seed);
        ("ready_duty", Json.Int c.nc_ready_duty);
      ]
  | Kern c ->
    Json.Obj
      (List.concat
         [
           [
             ("kind", Json.Str "kern");
             ("seed", Json.Int c.kc_seed);
             ("ops", Json.Int c.kc_ops);
             ("width", Json.Int c.kc_width);
             ("recipe", Json.Int c.kc_recipe);
           ];
           (* legacy reproducer files predate the shape field; omit the
              default so they stay byte-stable under a round-trip *)
           (match c.kc_shape with
           | Sdag -> []
           | Swide -> [ ("shape", Json.Str "wide") ]);
         ])
  | Src c ->
    Json.Obj
      [
        ("kind", Json.Str "src");
        ("seed", Json.Int c.sc_seed);
        ("strands", Json.Int c.sc_strands);
        ("trips", Json.Int c.sc_trips);
        ("big", Json.Bool c.sc_big);
        ("plan", Json.Str c.sc_plan);
      ]

let get_int j key =
  match Json.member key j with
  | Some (Json.Int i) -> Ok i
  | _ -> Error (Printf.sprintf "missing or non-integer field %S" key)

let ( let* ) r f =
  match r with
  | Ok v -> f v
  | Error _ as e -> e

let of_json j =
  let* () =
    match j with
    | Json.Obj _ -> Ok ()
    | _ -> Error "case is not a JSON object"
  in
  let case =
    match Json.member "kind" j with
    | Some (Json.Str "pipe") ->
      let* pc_stages = get_int j "stages" in
      let* pc_ctrl_delay = get_int j "ctrl_delay" in
      let* pc_gate =
        match Json.member "gate" j with
        | Some (Json.Str "empty") -> Ok Empty
        | Some (Json.Str "credit") -> Ok Credit
        | _ -> Error "bad gate"
      in
      let* pc_n = get_int j "n" in
      let* pc_slack = get_int j "slack" in
      let* pc_ready_seed = get_int j "ready_seed" in
      let* pc_ready_duty = get_int j "ready_duty" in
      Ok
        (Pipe
           {
             pc_stages;
             pc_ctrl_delay;
             pc_gate;
             pc_n;
             pc_slack;
             pc_ready_seed;
             pc_ready_duty;
           })
    | Some (Json.Str "net") ->
      let* nc_chains =
        match Json.member "chains" j with
        | Some (Json.List l) ->
          List.fold_right
            (fun x acc ->
              let* acc = acc in
              match x with
              | Json.Int i -> Ok (i :: acc)
              | _ -> Error "bad chain length")
            l (Ok [])
        | _ -> Error "missing chains"
      in
      let* nc_depth_seed = get_int j "depth_seed" in
      let* nc_groups =
        match Json.member "groups" j with
        | Some (Json.List l) ->
          List.fold_right
            (fun g acc ->
              let* acc = acc in
              let* pos = get_int g "pos" in
              let* members =
                match Json.member "chains" g with
                | Some (Json.List ms) ->
                  List.fold_right
                    (fun x macc ->
                      let* macc = macc in
                      match x with
                      | Json.Int i -> Ok (i :: macc)
                      | _ -> Error "bad group member")
                    ms (Ok [])
                | _ -> Error "missing group chains"
              in
              Ok ((pos, members) :: acc))
            l (Ok [])
        | _ -> Error "missing groups"
      in
      let* nc_tokens = get_int j "tokens" in
      let* nc_ready_seed = get_int j "ready_seed" in
      let* nc_ready_duty = get_int j "ready_duty" in
      Ok
        (Net
           {
             nc_chains;
             nc_depth_seed;
             nc_groups;
             nc_tokens;
             nc_ready_seed;
             nc_ready_duty;
           })
    | Some (Json.Str "kern") ->
      let* kc_seed = get_int j "seed" in
      let* kc_ops = get_int j "ops" in
      let* kc_width = get_int j "width" in
      let* kc_recipe = get_int j "recipe" in
      let* kc_shape =
        match Json.member "shape" j with
        | None -> Ok Sdag
        | Some (Json.Str "dag") -> Ok Sdag
        | Some (Json.Str "wide") -> Ok Swide
        | Some _ -> Error "bad kern shape"
      in
      Ok (Kern { kc_seed; kc_ops; kc_width; kc_recipe; kc_shape })
    | Some (Json.Str "src") ->
      let* sc_seed = get_int j "seed" in
      let* sc_strands = get_int j "strands" in
      let* sc_trips = get_int j "trips" in
      let* sc_big =
        match Json.member "big" j with
        | Some (Json.Bool b) -> Ok b
        | None -> Ok false
        | Some _ -> Error "bad big flag"
      in
      let* sc_plan =
        match Json.member "plan" j with
        | Some (Json.Str s) -> Ok s
        | _ -> Error "missing plan field"
      in
      Ok (Src { sc_seed; sc_strands; sc_trips; sc_big; sc_plan })
    | _ -> Error "unknown or missing case kind"
  in
  let* case = case in
  if valid case then Ok case else Error "case fails the well-formedness check"

let to_string = function
  | Pipe c ->
    Printf.sprintf
      "pipe{stages=%d ctrl_delay=%d gate=%s n=%d slack=%d seed=%d duty=%d/4}"
      c.pc_stages c.pc_ctrl_delay (gate_to_string c.pc_gate) c.pc_n c.pc_slack
      c.pc_ready_seed c.pc_ready_duty
  | Net c ->
    Printf.sprintf "net{chains=[%s] groups=[%s] tokens=%d seed=%d duty=%d/4}"
      (String.concat ";" (List.map string_of_int c.nc_chains))
      (String.concat ";"
         (List.map
            (fun (pos, ms) ->
              Printf.sprintf "@%d:{%s}" pos
                (String.concat "," (List.map string_of_int ms)))
            c.nc_groups))
      c.nc_tokens c.nc_ready_seed c.nc_ready_duty
  | Kern c ->
    Printf.sprintf "kern{seed=%d ops=%d width=%d recipe=%s%s}" c.kc_seed
      c.kc_ops c.kc_width
      (Hlsb_ctrl.Style.label recipes.(c.kc_recipe))
      (match c.kc_shape with
      | Sdag -> ""
      | Swide -> " shape=wide")
  | Src c ->
    Printf.sprintf "src{seed=%d strands=%d trips=%d%s plan=%S}" c.sc_seed
      c.sc_strands c.sc_trips
      (if c.sc_big then " big" else "")
      c.sc_plan
