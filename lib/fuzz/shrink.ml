(* Integer shrink targets, most aggressive first, all within [lo, v). *)
let shrink_int ~lo v =
  List.sort_uniq compare [ lo; v / 2; v - 1 ]
  |> List.filter (fun x -> x >= lo && x < v)

let pipe_candidates (c : Gen.pipe_case) =
  let open Gen in
  List.concat
    [
      List.map (fun n -> Pipe { c with pc_n = n }) (shrink_int ~lo:1 c.pc_n);
      List.map
        (fun s -> Pipe { c with pc_stages = s })
        (shrink_int ~lo:1 c.pc_stages);
      List.map
        (fun d -> Pipe { c with pc_ctrl_delay = d })
        (shrink_int ~lo:0 c.pc_ctrl_delay);
      List.map
        (fun s -> Pipe { c with pc_slack = s })
        (shrink_int ~lo:0 c.pc_slack);
      (* a fully-ready downstream is the simplest back-pressure pattern *)
      (if c.pc_ready_duty < 4 then [ Pipe { c with pc_ready_duty = 4 } ] else []);
      (if c.pc_ready_seed <> 0 then [ Pipe { c with pc_ready_seed = 0 } ] else []);
    ]

(* Remove chain [i]: groups lose the member and renumber those above it;
   groups that fall below two members disappear. *)
let drop_chain (c : Gen.net_case) i =
  let open Gen in
  let chains = List.filteri (fun j _ -> j <> i) c.nc_chains in
  let groups =
    List.filter_map
      (fun (pos, members) ->
        let members =
          List.filter_map
            (fun m ->
              if m = i then None else if m > i then Some (m - 1) else Some m)
            members
        in
        if List.length members >= 2 then Some (pos, members) else None)
      c.nc_groups
  in
  { c with nc_chains = chains; nc_groups = groups }

(* Shorten chain [i] by one process: groups at the now-invalid tail
   position lose the member. *)
let shorten_chain (c : Gen.net_case) i =
  let open Gen in
  let chains = List.mapi (fun j l -> if j = i then l - 1 else l) c.nc_chains in
  let new_len = List.nth chains i in
  let groups =
    List.filter_map
      (fun (pos, members) ->
        let members =
          if pos >= new_len then List.filter (fun m -> m <> i) members
          else members
        in
        if List.length members >= 2 then Some (pos, members) else None)
      c.nc_groups
  in
  { c with nc_chains = chains; nc_groups = groups }

let net_candidates (c : Gen.net_case) =
  let open Gen in
  let n_chains = List.length c.nc_chains in
  List.concat
    [
      (if n_chains > 1 then
         List.init n_chains (fun i -> Net (drop_chain c i))
       else []);
      List.concat
        (List.mapi
           (fun i l -> if l > 1 then [ Net (shorten_chain c i) ] else [])
           c.nc_chains);
      List.mapi (fun i _ -> Net { c with nc_groups = List.filteri (fun j _ -> j <> i) c.nc_groups }) c.nc_groups;
      List.map
        (fun t -> Net { c with nc_tokens = t })
        (shrink_int ~lo:1 c.nc_tokens);
      (if c.nc_ready_duty < 4 then [ Net { c with nc_ready_duty = 4 } ] else []);
      (if c.nc_ready_seed <> 0 then [ Net { c with nc_ready_seed = 0 } ] else []);
      (if c.nc_depth_seed <> 0 then [ Net { c with nc_depth_seed = 0 } ] else []);
    ]

let kern_candidates (c : Gen.kern_case) =
  let open Gen in
  List.concat
    [
      (* the random DAG is the simpler datapath: try it first *)
      (if c.kc_shape = Swide then [ Kern { c with kc_shape = Sdag } ] else []);
      List.map (fun o -> Kern { c with kc_ops = o }) (shrink_int ~lo:1 c.kc_ops);
      (if c.kc_width > 8 then [ Kern { c with kc_width = 8 } ] else []);
    ]

(* Shrink the plan before the program: a minimal reproducer should name
   the one transform item that breaks semantics, on the least source that
   shows it. *)
let src_candidates (c : Gen.src_case) =
  let open Gen in
  let module Plan = Hlsb_transform.Plan in
  let items =
    match Plan.of_string c.sc_plan with
    | Ok p -> p
    | Error _ -> []
  in
  let drop i = Plan.to_string (List.filteri (fun j _ -> j <> i) items) in
  List.concat
    [
      List.mapi (fun i _ -> Src { c with sc_plan = drop i }) items;
      List.map (fun s -> Src { c with sc_strands = s }) (shrink_int ~lo:1 c.sc_strands);
      (if c.sc_big then [ Src { c with sc_big = false } ] else []);
      List.map (fun t -> Src { c with sc_trips = t }) (shrink_int ~lo:2 c.sc_trips);
      (if c.sc_seed <> 0 then [ Src { c with sc_seed = 0 } ] else []);
    ]

let candidates case =
  let cands =
    match case with
    | Gen.Pipe c -> pipe_candidates c
    | Gen.Net c -> net_candidates c
    | Gen.Kern c -> kern_candidates c
    | Gen.Src c -> src_candidates c
  in
  List.filter Gen.valid cands

let minimize ~check failing =
  let fail_msg c =
    match check c with
    | Oracle.Fail msg -> Some msg
    | Oracle.Pass -> None
  in
  let msg0 =
    match fail_msg failing with
    | Some m -> m
    | None -> invalid_arg "Shrink.minimize: the starting case does not fail"
  in
  let rec go case msg steps =
    if steps >= 500 then (case, msg, steps)
    else
      let next =
        List.find_map
          (fun cand ->
            match fail_msg cand with
            | Some m -> Some (cand, m)
            | None -> None)
          (candidates case)
      in
      match next with
      | Some (cand, m) -> go cand m (steps + 1)
      | None -> (case, msg, steps)
  in
  go failing msg0 0
