open Hlsb_ir

type result = {
  ex_outputs : (string * int64 list) list;
  ex_reads : (string * int) list;
  ex_leftover : (string * int) list;
}

exception Stuck of string

let stuck fmt = Printf.ksprintf (fun s -> raise (Stuck s)) fmt

let mask_of w =
  if w >= 64 then -1L else Int64.sub (Int64.shift_left 1L w) 1L

(* Arithmetic is evaluated at full int64 width: both sides of an
   equivalence check run the same operators on the same token values, so
   a shared overflow convention is all that correctness needs. *)
let eval_op dag v op args =
  let bool b = if b then 1L else 0L in
  let f = Int64.float_of_bits and fb = Int64.bits_of_float in
  let icmp c a b =
    match c with
    | Op.Lt -> a < b
    | Op.Le -> a <= b
    | Op.Gt -> a > b
    | Op.Ge -> a >= b
    | Op.Eq -> a = b
    | Op.Ne -> Int64.compare a b <> 0
  in
  match (op, args) with
  | Op.Add, [ a; b ] -> Int64.add a b
  | Op.Sub, [ a; b ] -> Int64.sub a b
  | Op.Mul, [ a; b ] -> Int64.mul a b
  | Op.Div, [ a; b ] -> if b = 0L then 0L else Int64.div a b
  | Op.Fadd, [ a; b ] -> fb (f a +. f b)
  | Op.Fsub, [ a; b ] -> fb (f a -. f b)
  | Op.Fmul, [ a; b ] -> fb (f a *. f b)
  | Op.Fdiv, [ a; b ] -> fb (f a /. f b)
  | Op.And_, [ a; b ] -> Int64.logand a b
  | Op.Or_, [ a; b ] -> Int64.logor a b
  | Op.Xor, [ a; b ] -> Int64.logxor a b
  | Op.Not, [ a ] -> Int64.lognot a
  | Op.Shl, [ a; b ] -> Int64.shift_left a (Int64.to_int b land 63)
  | Op.Shr, [ a; b ] -> (
    let s = Int64.to_int b land 63 in
    match Dag.dtype dag v with
    | Dtype.Uint _ -> Int64.shift_right_logical a s
    | _ -> Int64.shift_right a s)
  | Op.Icmp c, [ a; b ] -> bool (icmp c a b)
  | Op.Fcmp c, [ a; b ] -> bool (icmp c (fb (f a)) (fb (f b)))
  | Op.Select, [ c; a; b ] -> if c <> 0L then a else b
  | Op.Min, [ a; b ] -> if a < b then a else b
  | Op.Max, [ a; b ] -> if a > b then a else b
  | Op.Abs, [ a ] -> Int64.abs a
  | Op.Log2, [ a ] ->
    if a <= 0L then 0L
    else begin
      let r = ref 0 in
      let x = ref a in
      while !x > 1L do
        x := Int64.shift_right_logical !x 1;
        incr r
      done;
      Int64.of_int !r
    end
  | Op.Concat, args ->
    List.fold_left2
      (fun acc node value ->
        let w = min 63 (Dtype.width (Dag.dtype dag node)) in
        Int64.logor (Int64.shift_left acc w) (Int64.logand value (mask_of w)))
      0L (Dag.args dag v) args
  | Op.Slice (hi, lo), [ a ] ->
    Int64.logand (Int64.shift_right_logical a lo) (mask_of (hi - lo + 1))
  | op, args ->
    stuck "operator %s applied to %d argument(s)" (Op.to_string op)
      (List.length args)

let run dag ~inputs =
  let fifos = Dag.fifos dag in
  let nf = Array.length fifos in
  let written = Array.make nf false and read_too = Array.make nf false in
  Dag.iter dag (fun v ->
    match Dag.kind dag v with
    | Dag.Fifo_read f -> read_too.(f) <- true
    | Dag.Fifo_write f -> written.(f) <- true
    | _ -> ());
  let queues = Array.init nf (fun _ -> Queue.create ()) in
  let logs = Array.make nf [] in
  let reads = Array.make nf 0 in
  let mems : (int * int64, int64) Hashtbl.t = Hashtbl.create 64 in
  let named_outputs = ref [] in
  let values = Array.make (Dag.n_nodes dag) 0L in
  Dag.iter dag (fun v ->
    let args = List.map (fun a -> values.(a)) (Dag.args dag v) in
    let r =
      match (Dag.kind dag v, args) with
      | Dag.Input name, [] -> inputs ("input:" ^ name) 0
      | Dag.Const c, [] -> c
      | Dag.Operation op, args -> eval_op dag v op args
      | Dag.Load b, [ idx ] -> (
        match Hashtbl.find_opt mems (b, idx) with
        | Some x -> x
        | None -> 0L)
      | Dag.Store b, [ idx; x ] ->
        Hashtbl.replace mems (b, idx) x;
        x
      | Dag.Fifo_read f, [] ->
        let name = fifos.(f).Dag.f_name in
        if written.(f) then (
          match Queue.take_opt queues.(f) with
          | Some x -> x
          | None -> stuck "read of internal fifo %s before any write" name)
        else begin
          let i = reads.(f) in
          reads.(f) <- i + 1;
          inputs name i
        end
      | Dag.Fifo_write f, [ x ] ->
        if read_too.(f) then Queue.push x queues.(f)
        else logs.(f) <- x :: logs.(f);
        x
      | Dag.Output name, [ x ] ->
        named_outputs := ("return:" ^ name, [ x ]) :: !named_outputs;
        x
      | _, args -> stuck "node %d has unexpected arity %d" v (List.length args)
    in
    values.(v) <- r);
  let by_name l = List.sort (fun (a, _) (b, _) -> compare a b) l in
  let collect pred f =
    let acc = ref [] in
    Array.iteri
      (fun i fifo ->
        if pred i then acc := (fifo.Dag.f_name, f i) :: !acc)
      fifos;
    !acc
  in
  {
    ex_outputs =
      by_name
        (collect
           (fun i -> written.(i) && not read_too.(i))
           (fun i -> List.rev logs.(i))
        @ !named_outputs);
    ex_reads =
      by_name (collect (fun i -> read_too.(i) && not written.(i)) (fun i -> reads.(i)));
    ex_leftover =
      by_name
        (List.filter
           (fun (_, n) -> n > 0)
           (collect
              (fun i -> written.(i) && read_too.(i))
              (fun i -> Queue.length queues.(i))));
  }

let diff a b =
  let show l =
    let l = if List.length l > 8 then List.filteri (fun i _ -> i < 8) l else l in
    "[" ^ String.concat ";" (List.map Int64.to_string l) ^ "]"
  in
  let rec streams = function
    | [], [] -> None
    | (n, _) :: _, [] | [], (n, _) :: _ ->
      Some (Printf.sprintf "output stream %s exists on only one side" n)
    | (n0, v0) :: r0, (n1, v1) :: r1 ->
      if n0 <> n1 then
        Some (Printf.sprintf "output streams differ: %s vs %s" n0 n1)
      else if v0 <> v1 then
        Some
          (Printf.sprintf "stream %s delivered %s vs %s" n0 (show v0) (show v1))
      else streams (r0, r1)
  in
  match streams (a.ex_outputs, b.ex_outputs) with
  | Some _ as d -> d
  | None ->
    if a.ex_reads <> b.ex_reads then
      Some
        (Printf.sprintf "input consumption differs: %s vs %s"
           (String.concat ","
              (List.map (fun (n, c) -> Printf.sprintf "%s:%d" n c) a.ex_reads))
           (String.concat ","
              (List.map (fun (n, c) -> Printf.sprintf "%s:%d" n c) b.ex_reads)))
    else (
      match (a.ex_leftover, b.ex_leftover) with
      | [], [] -> None
      | (n, k) :: _, _ | _, (n, k) :: _ ->
        Some (Printf.sprintf "internal fifo %s left %d undrained token(s)" n k))
