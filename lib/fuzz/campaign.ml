module Rng = Hlsb_util.Rng
module Json = Hlsb_telemetry.Json
module Metrics = Hlsb_telemetry.Metrics

type failure = {
  fl_oracle : Oracle.name;
  fl_seed : int;
  fl_index : int;
  fl_original : Gen.t;
  fl_case : Gen.t;
  fl_message : string;
  fl_shrink_steps : int;
}

type report = {
  rp_seed : int;
  rp_runs : int;
  rp_oracles : Oracle.name list;
  rp_counts : (Oracle.name * int) list;
  rp_failures : failure list;
}

let run ?(oracles = Oracle.all) ?(log = fun _ -> ()) ~seed ~runs () =
  if runs < 1 then invalid_arg "Campaign.run: runs < 1";
  if oracles = [] then invalid_arg "Campaign.run: no oracles selected";
  let oracle_arr = Array.of_list oracles in
  let n_oracles = Array.length oracle_arr in
  let counts = Array.make n_oracles 0 in
  let failures = ref [] in
  let campaign_rng = Rng.create seed in
  for i = 0 to runs - 1 do
    let oracle = oracle_arr.(i mod n_oracles) in
    let rng = Rng.split campaign_rng in
    let case = Gen.generate (Oracle.kind oracle) rng in
    counts.(i mod n_oracles) <- counts.(i mod n_oracles) + 1;
    Metrics.incr "fuzz.runs";
    Metrics.incr ("fuzz.runs." ^ Oracle.to_string oracle);
    match Oracle.check oracle case with
    | Oracle.Pass -> ()
    | Oracle.Fail _ ->
      Metrics.incr "fuzz.failures";
      let minimized, message, steps =
        Shrink.minimize ~check:(Oracle.check oracle) case
      in
      Metrics.incr ~by:steps "fuzz.shrink_steps";
      let fl =
        {
          fl_oracle = oracle;
          fl_seed = seed;
          fl_index = i;
          fl_original = case;
          fl_case = minimized;
          fl_message = message;
          fl_shrink_steps = steps;
        }
      in
      failures := fl :: !failures;
      log
        (Printf.sprintf "[%s] run %d: %s\n  minimized (%d steps): %s"
           (Oracle.to_string oracle) i message steps
           (Gen.to_string minimized))
  done;
  {
    rp_seed = seed;
    rp_runs = runs;
    rp_oracles = oracles;
    rp_counts = List.mapi (fun i o -> (o, counts.(i))) oracles;
    rp_failures = List.rev !failures;
  }

let summary r =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "fuzz campaign: seed %d, %d runs over %d oracle(s)\n"
       r.rp_seed r.rp_runs (List.length r.rp_oracles));
  List.iter
    (fun (o, n) ->
      Buffer.add_string b
        (Printf.sprintf "  %-12s %4d run(s)  %s\n" (Oracle.to_string o) n
           (Oracle.describe o)))
    r.rp_counts;
  (match r.rp_failures with
  | [] -> Buffer.add_string b "no oracle violations\n"
  | fls ->
    Buffer.add_string b
      (Printf.sprintf "%d oracle violation(s):\n" (List.length fls));
    List.iter
      (fun fl ->
        Buffer.add_string b
          (Printf.sprintf "  [%s] run %d (%d shrink steps): %s\n    case: %s\n"
             (Oracle.to_string fl.fl_oracle)
             fl.fl_index fl.fl_shrink_steps fl.fl_message
             (Gen.to_string fl.fl_case)))
      fls);
  Buffer.contents b

(* ---------------- reproducers ---------------- *)

let schema = "hlsb-fuzz-repro/1"

let failure_to_json fl =
  Json.Obj
    [
      ("schema", Json.Str schema);
      ("oracle", Json.Str (Oracle.to_string fl.fl_oracle));
      ("seed", Json.Int fl.fl_seed);
      ("index", Json.Int fl.fl_index);
      ("message", Json.Str fl.fl_message);
      ("shrink_steps", Json.Int fl.fl_shrink_steps);
      ("case", Gen.to_json fl.fl_case);
      ("original_case", Gen.to_json fl.fl_original);
    ]

let ( let* ) r f =
  match r with
  | Ok v -> f v
  | Error _ as e -> e

let failure_of_json j =
  let* () =
    match Json.member "schema" j with
    | Some (Json.Str s) when s = schema -> Ok ()
    | Some (Json.Str s) -> Error (Printf.sprintf "unknown schema %S" s)
    | _ -> Error "missing schema field"
  in
  let* fl_oracle =
    match Json.member "oracle" j with
    | Some (Json.Str s) -> (
      match Oracle.of_string s with
      | Some o -> Ok o
      | None -> Error (Printf.sprintf "unknown oracle %S" s))
    | _ -> Error "missing oracle field"
  in
  let int_field key =
    match Json.member key j with
    | Some (Json.Int i) -> Ok i
    | _ -> Error (Printf.sprintf "missing integer field %S" key)
  in
  let* fl_seed = int_field "seed" in
  let* fl_index = int_field "index" in
  let* fl_shrink_steps = int_field "shrink_steps" in
  let* fl_message =
    match Json.member "message" j with
    | Some (Json.Str s) -> Ok s
    | _ -> Error "missing message field"
  in
  let* fl_case =
    match Json.member "case" j with
    | Some c -> Gen.of_json c
    | None -> Error "missing case field"
  in
  let* fl_original =
    match Json.member "original_case" j with
    | Some c -> Gen.of_json c
    | None -> Ok fl_case
  in
  Ok
    {
      fl_oracle;
      fl_seed;
      fl_index;
      fl_original;
      fl_case;
      fl_message;
      fl_shrink_steps;
    }

let write_file ~path text =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc text)

let write_repros ~dir report =
  if report.rp_failures = [] then []
  else begin
    if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
    List.mapi
      (fun i fl ->
        let path =
          if i = 0 then Filename.concat dir (Printf.sprintf "repro-%d.json" fl.fl_seed)
          else
            Filename.concat dir
              (Printf.sprintf "repro-%d-%d.json" fl.fl_seed fl.fl_index)
        in
        write_file ~path
          (Json.to_string ~minify:false (failure_to_json fl) ^ "\n");
        path)
      report.rp_failures
  end

let replay_file path =
  let* text =
    match open_in path with
    | exception Sys_error msg -> Error msg
    | ic ->
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> Ok (really_input_string ic (in_channel_length ic)))
  in
  let* j = Json.of_string text in
  let* fl = failure_of_json j in
  Ok (fl, Oracle.check fl.fl_oracle fl.fl_case)
