(** Deterministic reference evaluator for kernel DAGs — the semantic
    ground truth of the transform-equivalence oracle.

    [run] evaluates every node of a {!Hlsb_ir.Dag.t} once, in topological
    (= id) order — one "firing" of the kernel. External input FIFOs (read
    but never written in the DAG) draw an unbounded stream from the
    [inputs] function; FIFOs both written and read are internal (stream
    insertion creates these) and behave as queues whose reads pop earlier
    writes of the same firing. Buffers are zero-initialized word stores.

    Two programs are Kahn-equivalent for the oracle when their [run]
    results agree per stream: same values in the same order on every
    external output, same read counts on every external input, and no
    tokens stranded in internal FIFOs. Cross-stream interleaving is
    deliberately not compared — fission/fusion legally reorder accesses
    to {e distinct} streams. *)

type result = {
  ex_outputs : (string * int64 list) list;
      (** per external output FIFO (written, never read): values in write
          order; [Output] nodes appear as [("return:" ^ name, [v])].
          Sorted by name. *)
  ex_reads : (string * int) list;
      (** per external input FIFO: how many tokens were consumed. Sorted. *)
  ex_leftover : (string * int) list;
      (** internal FIFOs holding undrained tokens after the firing (only
          non-empty ones listed). Sorted. *)
}

exception Stuck of string
(** A read of an internal FIFO found its queue empty: the DAG's
    topological order runs a consumer before its producer has written. *)

val run : Hlsb_ir.Dag.t -> inputs:(string -> int -> int64) -> result
(** [run dag ~inputs] with [inputs name idx] supplying token [idx] of
    external input FIFO [name] (and the value of [Input] nodes, queried
    as ["input:" ^ name] at index 0). Raises {!Stuck} as above. *)

val diff : result -> result -> string option
(** [None] when equivalent in the sense above; otherwise a one-line
    description of the first divergence found. *)
