module Rng = Hlsb_util.Rng

let arbitrary kind =
  QCheck.make
    ~print:Gen.to_string
    ~shrink:(fun case -> QCheck.Iter.of_list (Shrink.candidates case))
    (fun st -> Gen.generate kind (Rng.create (Random.State.bits st)))

let passes name case =
  match Oracle.check name case with
  | Oracle.Pass -> true
  | Oracle.Fail _ -> false

let oracle_test ?(count = 30) name =
  QCheck.Test.make ~count
    ~name:(Printf.sprintf "oracle:%s" (Oracle.to_string name))
    (arbitrary (Oracle.kind name))
    (fun case ->
      match Oracle.check name case with
      | Oracle.Pass -> true
      | Oracle.Fail msg -> QCheck.Test.fail_report msg)
