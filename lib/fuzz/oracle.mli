(** Cross-layer differential oracles.

    Each oracle takes a well-formed {!Gen.t} case, runs two (or more)
    independent implementations of the same contract against it, and
    compares their observable behavior:

    - [Stall_skid]: stall-controlled and skid-controlled pipelines
      deliver the same output sequence when the skid buffer is
      provisioned at [Skid.required_depth] (§4.3), the skid never
      overflows at that depth, and the stall path's occupancy telemetry
      is truthful (non-zero once anything was delivered).
    - [Network]: [Sim.Network.run] completes on live networks, conserves
      tokens on every channel ([produced - consumed = occupancy]),
      fires every process exactly [tokens] times, and agrees with the
      [sync:false] reference — exactly on sync-free graphs, and
      stream-for-stream (never slower decoupled) on barriered ones
      (§4.2).
    - [Cache]: a [Core.Pipeline] session serving a recompile from cache
      byte-matches a fresh single-use session (result JSON equality).
    - [Jobs]: compile results are invariant under the [Pool] job count —
      a parallel fan-out over recipes byte-matches the sequential one
      (placement, timing and calibration must not be schedule-sensitive).

    A check never raises on a well-formed case: an escaping exception is
    itself reported as a [Fail]. *)

type verdict =
  | Pass
  | Fail of string  (** human-readable description of the divergence *)

type name =
  | Stall_skid
  | Network
  | Cache
  | Jobs
  | Transform
      (** a source case's transform plan either rejects with a structured
          ["transform"] diagnostic or preserves per-stream semantics: the
          transformed kernel matches the baseline under the {!Exec}
          reference evaluator (same output streams, same input
          consumption, nothing stranded in inserted FIFOs), and the
          transformed design still elaborates into a network that
          completes and conserves tokens *)

val all : name list

val to_string : name -> string
(** ["stall-skid"], ["network"], ["cache"], ["jobs"], ["transform"] —
    the CLI's [--oracle] vocabulary. *)

val of_string : string -> name option
val describe : name -> string

val kind : name -> Gen.kind
(** Which case shape the oracle consumes. *)

val check : name -> Gen.t -> verdict
(** Run the oracle. Returns [Fail] (never raises) on divergence, on an
    escaped exception, or on a case of the wrong kind. *)
