(** Fuzzing campaigns: drive the generators against the oracles, shrink
    every failure, and read/write replayable reproducer files.

    A campaign is deterministic in its [seed]: run [i] derives an
    independent RNG from the campaign seed, generates a case of the
    shape its (round-robin-selected) oracle consumes, and checks it.
    Failures are minimized with {!Shrink.minimize} before being
    reported.

    Telemetry (no-ops unless a [Metrics] registry is installed):
    [fuzz.runs], [fuzz.failures], [fuzz.shrink_steps], and per-oracle
    [fuzz.runs.<oracle>]. *)

type failure = {
  fl_oracle : Oracle.name;
  fl_seed : int;  (** campaign seed *)
  fl_index : int;  (** run index within the campaign *)
  fl_original : Gen.t;  (** the case as generated *)
  fl_case : Gen.t;  (** the minimized case *)
  fl_message : string;  (** the minimized case's failure message *)
  fl_shrink_steps : int;
}

type report = {
  rp_seed : int;
  rp_runs : int;
  rp_oracles : Oracle.name list;
  rp_counts : (Oracle.name * int) list;  (** runs per oracle *)
  rp_failures : failure list;  (** in discovery order *)
}

val run :
  ?oracles:Oracle.name list ->
  ?log:(string -> unit) ->
  seed:int ->
  runs:int ->
  unit ->
  report
(** [oracles] defaults to {!Oracle.all}; [log] (default silent) receives
    a line per discovered failure as the campaign progresses. Raises
    [Invalid_argument] if [runs < 1] or [oracles] is empty. *)

val summary : report -> string
(** Human-readable campaign summary (runs per oracle, failures). *)

(** {1 Reproducers} *)

val failure_to_json : failure -> Hlsb_telemetry.Json.t
val failure_of_json : Hlsb_telemetry.Json.t -> (failure, string) result

val write_repros : dir:string -> report -> string list
(** Write one reproducer file per failure into [dir] (created if
    missing): the first failure of campaign seed S lands in
    [repro-S.json], later ones in [repro-S-<index>.json]. Returns the
    paths written. *)

val replay_file : string -> (failure * Oracle.verdict, string) result
(** Parse a reproducer file and re-run its oracle on the minimized
    case. [Ok (failure, Pass)] means the recorded bug no longer
    reproduces. *)
