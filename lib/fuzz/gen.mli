(** Seeded random generation of well-formed fuzz cases.

    A case is a small, JSON-serializable description of one randomized
    scenario for the differential oracles ({!Oracle}): a pipeline shape
    for [Sim.Pipeline], a dataflow process network for [Sim.Network], or
    a kernel DAG for the compile pipeline. Cases carry generation
    parameters (sizes + seeds), and every builder is deterministic in
    its case — so a reproducer file need only store the case, and
    replaying it re-creates the exact failing design.

    Generators only emit {e legal} scenarios (the contract every oracle
    assumes): ready patterns are guaranteed live (at least one ready
    cycle in every four), networks are DAG-shaped chains whose sync
    groups only span independent processes at one chain position (a
    barrier over dependent processes would genuinely deadlock), and
    kernel DAGs pass [Dag.validate]. {!valid} re-checks those
    invariants; the shrinker filters its candidates through it. *)

module Rng = Hlsb_util.Rng

type gate =
  | Empty  (** §4.3's literal stop-while-non-empty read gate *)
  | Credit  (** watermark/credit flow control *)

type pipe_case = {
  pc_stages : int;  (** pipeline depth N, >= 1 *)
  pc_ctrl_delay : int;  (** registers on the back-pressure path, >= 0 *)
  pc_gate : gate;
  pc_n : int;  (** input tokens, >= 1 *)
  pc_slack : int;  (** extra skid depth beyond the provisioned bound, >= 0 *)
  pc_ready_seed : int;
  pc_ready_duty : int;  (** 1..4: downstream ready >= duty/4 of cycles *)
}

type net_case = {
  nc_chains : int list;  (** independent chains, by process count (>= 1) *)
  nc_depth_seed : int;  (** derives per-channel FIFO depths in 1..4 *)
  nc_groups : (int * int list) list;
      (** sync groups as (chain position, >= 2 distinct chain indices);
          positions are distinct across groups and within every member
          chain's length, so barriers never span dependent processes *)
  nc_tokens : int;  (** tokens each external output must deliver, >= 1 *)
  nc_ready_seed : int;
  nc_ready_duty : int;
}

type kern_shape =
  | Sdag  (** random op DAG between FIFOs (the original shape) *)
  | Swide
      (** a small wide-arithmetic modular-squaring datapath
          ({!Hlsb_designs.Bigmul.kernel}): partial-product grid plus
          compressor tree, sized from the case's width and op count *)

type kern_case = {
  kc_seed : int;  (** DAG-shape seed; the builder is deterministic in it *)
  kc_ops : int;  (** datapath operation count, >= 1 *)
  kc_width : int;  (** operand width: 8, 16 or 32 *)
  kc_recipe : int;  (** index into {!recipes} *)
  kc_shape : kern_shape;
      (** datapath family; serialized as an optional ["shape"] field so
          reproducer files from before the field (absent = [Sdag]) still
          load *)
}

type src_case = {
  sc_seed : int;  (** program-shape and constant seed *)
  sc_strands : int;  (** independent stream-in/stream-out flows, 1..3 *)
  sc_trips : int;  (** loop trip count, 2..8 *)
  sc_big : bool;
      (** append a BRAM-sized strand (256-word intermediate array) so
          cyclic partitioning has a legal target *)
  sc_plan : string;  (** transform plan, {!Hlsb_transform.Plan} grammar *)
}

type t =
  | Pipe of pipe_case
  | Net of net_case
  | Kern of kern_case
  | Src of src_case

type kind =
  | Kpipe
  | Knet
  | Kkern
  | Ksrc

val kind_of : t -> kind
val generate : kind -> Rng.t -> t

val valid : t -> bool
(** Structural legality per the generator contract above. *)

(** {1 Deterministic builders} *)

val ready_fn : seed:int -> duty:int -> int -> bool
(** Downstream readiness pattern: pseudo-random at the given duty, with a
    liveness floor of one guaranteed-ready cycle in every four. *)

val net_ready_fn : seed:int -> duty:int -> chan:int -> cycle:int -> bool
(** Per-channel sink readiness with the same liveness floor. *)

val build_net : net_case -> Hlsb_ir.Dataflow.t
(** Chains of processes ([ext_in -> p0 -> ... -> ext_out]) plus the
    case's sync groups. The result passes [Dataflow.problems]. *)

val build_kernel : kern_case -> Hlsb_ir.Kernel.t
(** Random op DAG between input and output FIFOs; passes
    [Dag.validate] (enforced by [Kernel.create]). *)

val src_source : src_case -> string
(** Deterministic C-subset source for the case: one kernel of
    [sc_strands] independent stream flows whose shapes give the
    transform passes genuine targets (intermediate arrays for [stream=],
    split-point loops for [fission], twin-header loop pairs for
    [fusion]). The text always parses; the case's plan may still be
    inapplicable to it, which the transform oracle treats as a pass. *)

val recipes : Hlsb_ctrl.Style.recipe array
(** The four recipe corners ([original], [optimized], sched-only,
    ctrl-only) that {!kern_case.kc_recipe} indexes. *)

(** {1 Serialization} *)

val to_json : t -> Hlsb_telemetry.Json.t
val of_json : Hlsb_telemetry.Json.t -> (t, string) result
val to_string : t -> string
(** Compact one-line rendering for failure messages. *)
