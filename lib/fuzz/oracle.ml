module Pipeline = Hlsb_sim.Pipeline
module Network = Hlsb_sim.Network
module Skid = Hlsb_ctrl.Skid
module Pool = Hlsb_util.Pool
module Json = Hlsb_telemetry.Json
module Device = Hlsb_device.Device
module Frontend = Hlsb_frontend.Frontend
module Kernel = Hlsb_ir.Kernel
module Plan = Hlsb_transform.Plan

type verdict =
  | Pass
  | Fail of string

type name =
  | Stall_skid
  | Network
  | Cache
  | Jobs
  | Transform

let all = [ Stall_skid; Network; Cache; Jobs; Transform ]

let to_string = function
  | Stall_skid -> "stall-skid"
  | Network -> "network"
  | Cache -> "cache"
  | Jobs -> "jobs"
  | Transform -> "transform"

let of_string = function
  | "stall-skid" -> Some Stall_skid
  | "network" -> Some Network
  | "cache" -> Some Cache
  | "jobs" -> Some Jobs
  | "transform" -> Some Transform
  | _ -> None

let describe = function
  | Stall_skid ->
    "stall control == skid control at Skid.required_depth (§4.3), with \
     truthful occupancy stats"
  | Network ->
    "Network.run completes, conserves tokens, and agrees with the \
     sync:false reference (§4.2)"
  | Cache -> "Core.Pipeline cached sessions byte-match fresh compiles"
  | Jobs -> "compile results are invariant under the Pool job count"
  | Transform ->
    "transform plans preserve per-stream semantics: transformed kernels \
     match the baseline under Exec, and their networks still complete"

let kind = function
  | Stall_skid -> Gen.Kpipe
  | Network -> Gen.Knet
  | Cache | Jobs -> Gen.Kkern
  | Transform -> Gen.Ksrc

let failf fmt = Printf.ksprintf (fun s -> Fail s) fmt

let show_ints l =
  let l = if List.length l > 12 then List.filteri (fun i _ -> i < 12) l else l in
  "[" ^ String.concat ";" (List.map string_of_int l) ^ ";...]"

(* ---------------- stall vs skid (§4.3) ---------------- *)

let check_pipe (c : Gen.pipe_case) =
  let ready = Gen.ready_fn ~seed:c.Gen.pc_ready_seed ~duty:c.Gen.pc_ready_duty in
  let inputs = List.init c.Gen.pc_n Fun.id in
  let f x = (x * 7) + 1 in
  let expected = List.map f inputs in
  let stall =
    Pipeline.run_stall ~stages:c.Gen.pc_stages ~inputs ~ready ~f
  in
  if stall.Pipeline.outputs <> expected then
    failf "stall control lost or reordered tokens: delivered %d of %d (%s)"
      (List.length stall.Pipeline.outputs)
      c.Gen.pc_n
      (show_ints stall.Pipeline.outputs)
  else if stall.Pipeline.overflow then
    Fail "stall control reported an output-FIFO overflow"
  else if stall.Pipeline.max_occupancy < 1 then
    failf
      "stall occupancy telemetry reads always-empty (max_occupancy %d) \
       despite %d delivered tokens"
      stall.Pipeline.max_occupancy (List.length stall.Pipeline.outputs)
  else if stall.Pipeline.max_occupancy > 2 then
    failf "stall max_occupancy %d exceeds its depth-2 output FIFO"
      stall.Pipeline.max_occupancy
  else begin
    let required =
      Skid.required_depth ~pipeline_depth:c.Gen.pc_stages
        ~ctrl_stages:c.Gen.pc_ctrl_delay ()
    in
    (* Gate_empty is safe at exactly the paper's bound; the credit gate
       matches stall throughput from twice that depth (see Pipeline.gate). *)
    let gate, depth =
      match c.Gen.pc_gate with
      | Gen.Empty -> (Pipeline.Gate_empty, required + c.Gen.pc_slack)
      | Gen.Credit -> (Pipeline.Gate_credit, (2 * required) + c.Gen.pc_slack)
    in
    let skid =
      Pipeline.run_skid ~stages:c.Gen.pc_stages ~skid_depth:depth
        ~ctrl_delay:c.Gen.pc_ctrl_delay ~gate ~inputs ~ready ~f
    in
    if skid.Pipeline.outputs <> stall.Pipeline.outputs then
      failf "skid delivery diverged from stall: %s vs %s"
        (show_ints skid.Pipeline.outputs)
        (show_ints stall.Pipeline.outputs)
    else if skid.Pipeline.overflow then
      failf "skid overflowed at provisioned depth %d (required %d)" depth
        required
    else if skid.Pipeline.max_occupancy > depth then
      failf "skid max_occupancy %d exceeds its depth %d"
        skid.Pipeline.max_occupancy depth
    else
      match c.Gen.pc_gate with
      | Gen.Credit
        when abs (stall.Pipeline.cycles - skid.Pipeline.cycles)
             > (2 * (c.Gen.pc_stages + c.Gen.pc_ctrl_delay)) + 8 ->
        failf "credit-gated skid throughput diverged: %d vs %d cycles"
          skid.Pipeline.cycles stall.Pipeline.cycles
      | _ -> Pass
  end

(* ---------------- network conservation + sync pruning (§4.2) -------- *)

let check_net (c : Gen.net_case) =
  let df = Gen.build_net c in
  let ready =
    Gen.net_ready_fn ~seed:c.Gen.nc_ready_seed ~duty:c.Gen.nc_ready_duty
  in
  let tokens = c.Gen.nc_tokens in
  let r = Network.run df ~tokens ~ready in
  let n_chan = Hlsb_ir.Dataflow.n_channels df in
  let conservation (r : Network.result) label =
    let bad = ref None in
    for ch = 0 to n_chan - 1 do
      if
        !bad = None
        && r.Network.produced.(ch) - r.Network.consumed.(ch)
           <> r.Network.occupancy.(ch)
      then bad := Some ch
    done;
    match !bad with
    | Some ch ->
      Some
        (Printf.sprintf
           "%s: channel %d violates conservation: produced %d - consumed %d \
            <> occupancy %d"
           label ch r.Network.produced.(ch) r.Network.consumed.(ch)
           r.Network.occupancy.(ch))
    | None -> None
  in
  let expected_stream = List.init tokens Fun.id in
  if r.Network.status <> Network.Completed then
    failf "barriered run did not complete: %s after %d cycles"
      (Network.status_label r.Network.status)
      r.Network.cycles
  else
    match conservation r "barriered run" with
    | Some msg -> Fail msg
    | None -> (
      match
        List.find_opt
          (fun (_, stream) -> stream <> expected_stream)
          r.Network.delivered
      with
      | Some (ch, stream) ->
        failf "output channel %d delivered %s, expected 0..%d" ch
          (show_ints stream) (tokens - 1)
      | None ->
        if Array.exists (fun f -> f <> tokens) r.Network.fired then
          failf "a process fired %s times, expected %d for all"
            (show_ints (Array.to_list r.Network.fired))
            tokens
        else begin
          let r0 = Network.run ~sync:false df ~tokens ~ready in
          if r0.Network.status <> Network.Completed then
            failf "sync:false reference did not complete: %s"
              (Network.status_label r0.Network.status)
          else if r0.Network.delivered <> r.Network.delivered then
            Fail "sync:false reference delivered different streams"
          else if r0.Network.cycles > r.Network.cycles then
            failf
              "decoupled run was slower than the barriered one: %d vs %d \
               cycles"
              r0.Network.cycles r.Network.cycles
          else if
            c.Gen.nc_groups = []
            && (r0.Network.cycles, r0.Network.fired, r0.Network.occupancy)
               <> (r.Network.cycles, r.Network.fired, r.Network.occupancy)
          then
            Fail
              "sync-free graph: sync:true and sync:false runs are not \
               identical"
          else Pass
        end)

(* ---------------- compile-layer oracles ---------------- *)

let device = Device.ultrascale_plus

let compile_json kernel recipe =
  let session = Core.Pipeline.of_kernel ~device kernel in
  match Core.Pipeline.run session ~recipe with
  | Ok r -> Ok (Json.to_string (Core.Pipeline.result_to_json r))
  | Error d -> Error (Hlsb_util.Diag.to_string d)

let check_cache (c : Gen.kern_case) =
  let recipe = Gen.recipes.(c.Gen.kc_recipe) in
  let kernel = Gen.build_kernel c in
  let session = Core.Pipeline.of_kernel ~device kernel in
  let run label =
    match Core.Pipeline.run session ~recipe with
    | Ok r -> Ok (Json.to_string (Core.Pipeline.result_to_json r))
    | Error d -> Error (label ^ ": " ^ Hlsb_util.Diag.to_string d)
  in
  match run "first compile" with
  | Error msg -> Fail msg
  | Ok first -> (
    match run "cached recompile" with
    | Error msg -> Fail msg
    | Ok cached ->
      if cached <> first then
        Fail "cached session recompile diverged from its own first compile"
      else (
        match compile_json (Gen.build_kernel c) recipe with
        | Error msg -> Fail ("fresh compile: " ^ msg)
        | Ok fresh ->
          if fresh <> first then
            Fail "cached session result does not byte-match a fresh compile"
          else Pass))

let jobs_recipes = [| 0; 1 |]

let check_jobs (c : Gen.kern_case) =
  (* Each task rebuilds the kernel: the DAG caches consumer lists
     internally, so sharing one kernel value across domains would race. *)
  let compile_all ~jobs =
    Pool.map ~jobs
      (fun idx ->
        match compile_json (Gen.build_kernel c) Gen.recipes.(idx) with
        | Ok s -> s
        | Error msg -> "error: " ^ msg)
      jobs_recipes
  in
  let seq = compile_all ~jobs:1 in
  let par = compile_all ~jobs:2 in
  let rec first_diff i =
    if i >= Array.length seq then None
    else if seq.(i) <> par.(i) then Some i
    else first_diff (i + 1)
  in
  match Array.find_opt (String.starts_with ~prefix:"error: ") seq with
  | Some msg -> Fail msg
  | None -> (
    match first_diff 0 with
    | Some i ->
      failf "recipe %s compiles differently at jobs=1 vs jobs=2"
        (Hlsb_ctrl.Style.label Gen.recipes.(jobs_recipes.(i)))
    | None -> Pass)

(* ---------------- transform semantic equivalence ---------------- *)

let show_frontend_error e = Format.asprintf "%a" Frontend.pp_error e

(* Baseline and transformed programs must agree stream-for-stream under
   the Exec reference semantics; an inapplicable plan item is a legal
   outcome (a structured stage:"transform" rejection), not a divergence. *)
let check_transform (c : Gen.src_case) =
  let src = Gen.src_source c in
  match Frontend.parse src with
  | Error e -> failf "generated source does not parse: %s" (show_frontend_error e)
  | Ok program -> (
    match Plan.of_string c.Gen.sc_plan with
    | Error msg -> failf "generated plan does not parse: %s" msg
    | Ok plan -> (
      match Plan.apply_source plan program with
      | Error _ -> Pass
      | Ok program' -> (
        let kernel label p =
          match Frontend.kernel_of_program p with
          | Ok k -> Ok k
          | Error e ->
            Error
              (Printf.sprintf "%s does not elaborate: %s" label
                 (show_frontend_error e))
        in
        match (kernel "baseline" program, kernel "transformed program" program') with
        | Error m, _ | _, Error m -> Fail m
        | Ok k0, Ok k1 -> (
          let inputs name i =
            Int64.of_int (Hashtbl.hash (c.Gen.sc_seed, name, i) land 0xFFFF)
          in
          let r0 = Exec.run k0.Kernel.dag ~inputs in
          let r1 = Exec.run k1.Kernel.dag ~inputs in
          match Exec.diff r0 r1 with
          | Some msg ->
            failf "plan %S broke stream semantics: %s" c.Gen.sc_plan msg
          | None -> (
            (* the transformed program must still form a live network *)
            match Frontend.design_of_program program' with
            | Error e ->
              failf "transformed design does not elaborate: %s"
                (show_frontend_error e)
            | Ok df ->
              let r =
                Network.run df ~tokens:3 ~ready:(fun ~chan:_ ~cycle:_ -> true)
              in
              if r.Network.status <> Network.Completed then
                failf "transformed network did not complete: %s after %d cycles"
                  (Network.status_label r.Network.status)
                  r.Network.cycles
              else begin
                let bad = ref None in
                Array.iteri
                  (fun ch p ->
                    if
                      !bad = None
                      && p - r.Network.consumed.(ch) <> r.Network.occupancy.(ch)
                    then bad := Some ch)
                  r.Network.produced;
                match !bad with
                | Some ch ->
                  failf
                    "transformed network violates conservation on channel %d"
                    ch
                | None -> Pass
              end)))))

let check name case =
  let wrong_kind () =
    failf "oracle %s expects a %s case, got %s" (to_string name)
      (match kind name with
      | Gen.Kpipe -> "pipe"
      | Gen.Knet -> "net"
      | Gen.Kkern -> "kern"
      | Gen.Ksrc -> "src")
      (Gen.to_string case)
  in
  try
    match (name, case) with
    | Stall_skid, Gen.Pipe c -> check_pipe c
    | Network, Gen.Net c -> check_net c
    | Cache, Gen.Kern c -> check_cache c
    | Jobs, Gen.Kern c -> check_jobs c
    | Transform, Gen.Src c -> check_transform c
    | (Stall_skid | Network | Cache | Jobs | Transform), _ -> wrong_kind ()
  with e ->
    failf "oracle %s raised on a well-formed case: %s" (to_string name)
      (Printexc.to_string e)
