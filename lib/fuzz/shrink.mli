(** Greedy reducer for failing fuzz cases.

    {!candidates} proposes strictly smaller well-formed variants of a
    case, ordered most-aggressive first (halvings before decrements,
    structure drops before parameter tweaks). {!minimize} repeatedly
    replaces the case with its first still-failing candidate until none
    fails — a greedy descent that ends on a local minimum: a case whose
    every single-step reduction passes the oracle. *)

val candidates : Gen.t -> Gen.t list
(** Strictly smaller variants, all of which satisfy [Gen.valid]. Empty
    for a fully minimal case. *)

val minimize :
  check:(Gen.t -> Oracle.verdict) -> Gen.t -> Gen.t * string * int
(** [minimize ~check failing] walks candidates greedily and returns the
    minimized case, the failure message it still produces, and the
    number of successful shrink steps taken. [failing] must fail
    [check]; its message is returned when no candidate fails. Capped at
    500 steps. *)
