open Hlsb_ir
module Device = Hlsb_device.Device
module Calibrate = Hlsb_delay.Calibrate
module Schedule = Hlsb_sched.Schedule
module Sched_report = Hlsb_sched.Report
module Style = Hlsb_ctrl.Style
module Skid = Hlsb_ctrl.Skid
module Timing = Hlsb_physical.Timing
module Design = Hlsb_rtlgen.Design
module Spec = Hlsb_designs.Spec
module Table = Hlsb_util.Table
module Pool = Hlsb_util.Pool

(* ---------- Table 1 ---------- *)

type table1_row = {
  t1_name : string;
  t1_broadcast : string;
  t1_device : string;
  t1_orig : Flow.result;
  t1_opt : Flow.result;
  t1_paper : Spec.paper_numbers;
}

let run_table1 ?subset ?jobs () =
  let specs =
    match subset with
    | None -> Hlsb_designs.Suite.all
    | Some names ->
      List.filter
        (fun s -> List.mem s.Spec.sp_name names)
        Hlsb_designs.Suite.all
  in
  (* Each benchmark compiles twice (original/optimized recipes) through
     one pipeline session, so elaboration is shared; rows are
     independent, so fan them out across the pool. *)
  Pool.map_list ?jobs
    (fun spec ->
      let session = Pipeline.of_spec spec in
      let orig = Pipeline.run_exn session ~recipe:Style.original in
      let opt = Pipeline.run_exn session ~recipe:Style.optimized in
      {
        t1_name = spec.Spec.sp_name;
        t1_broadcast = spec.Spec.sp_broadcast;
        t1_device = spec.Spec.sp_device.Device.board;
        t1_orig = orig;
        t1_opt = opt;
        t1_paper = spec.Spec.sp_paper;
      })
    specs

let pct v = Printf.sprintf "%.0f" v
let mhz v = Printf.sprintf "%.0f" v

let render_table1 rows =
  let t =
    Table.create
      ~headers:
        [
          ("Application", Table.Left);
          ("Broadcast type", Table.Left);
          ("Target FPGA", Table.Left);
          ("LUT O/P", Table.Right);
          ("FF O/P", Table.Right);
          ("BRAM O/P", Table.Right);
          ("DSP O/P", Table.Right);
          ("Freq Orig", Table.Right);
          ("Freq Opt", Table.Right);
          ("Diff", Table.Right);
          ("Paper O->P", Table.Right);
        ]
  in
  List.iter
    (fun r ->
      let po, pp = r.t1_paper.Spec.p_freq in
      Table.add_row t
        [
          r.t1_name;
          r.t1_broadcast;
          r.t1_device;
          pct r.t1_orig.Flow.fr_lut_pct ^ "/" ^ pct r.t1_opt.Flow.fr_lut_pct;
          pct r.t1_orig.Flow.fr_ff_pct ^ "/" ^ pct r.t1_opt.Flow.fr_ff_pct;
          pct r.t1_orig.Flow.fr_bram_pct ^ "/" ^ pct r.t1_opt.Flow.fr_bram_pct;
          pct r.t1_orig.Flow.fr_dsp_pct ^ "/" ^ pct r.t1_opt.Flow.fr_dsp_pct;
          mhz r.t1_orig.Flow.fr_fmax_mhz;
          mhz r.t1_opt.Flow.fr_fmax_mhz;
          Printf.sprintf "%.0f%%"
            (Flow.improvement_pct ~orig:r.t1_orig ~opt:r.t1_opt);
          Printf.sprintf "%d->%d (%d%%)" po pp (100 * (pp - po) / po);
        ])
    rows;
  Table.render t

(* ---------- Tables 2 and 3 ---------- *)

type variant_row = {
  vr_label : string;
  vr_result : Flow.result;
  vr_paper_mhz : int option;
}

let run_table2 ?(width = 512) () =
  let build () = Hlsb_designs.Vector_arith.dataflow ~width () in
  let dev = Device.ultrascale_plus in
  (* one session: all three variants are Sched_aware, so they share both
     the elaboration and the schedule artifact *)
  let session =
    Pipeline.create ~device:dev ~name:"vector_arith" ~build ()
  in
  let compile recipe = Pipeline.run_exn session ~recipe in
  [
    {
      vr_label = "Stall";
      vr_result =
        compile { Style.sched = Style.Sched_aware; pipe = Style.Stall; sync = Style.Sync_naive };
      vr_paper_mhz = Some 195;
    };
    {
      vr_label = "Skid Buffer";
      vr_result =
        compile
          {
            Style.sched = Style.Sched_aware;
            pipe = Style.Skid { min_area = false };
            sync = Style.Sync_pruned;
          };
      vr_paper_mhz = Some 299;
    };
    {
      vr_label = "Min-Area Skid Buf.";
      vr_result =
        compile
          {
            Style.sched = Style.Sched_aware;
            pipe = Style.Skid { min_area = true };
            sync = Style.Sync_pruned;
          };
      vr_paper_mhz = Some 301;
    };
  ]

let run_table3 () =
  let dev = Device.virtex7_690t in
  let session =
    Pipeline.create ~device:dev ~name:"pattern_match"
      ~build:(fun () -> Hlsb_designs.Pattern_match.dataflow ())
      ()
  in
  let compile recipe = Pipeline.run_exn session ~recipe in
  [
    {
      vr_label = "Original";
      vr_result = compile Style.original;
      vr_paper_mhz = Some 187;
    };
    {
      vr_label = "Opt. Data";
      vr_result =
        compile
          { Style.sched = Style.Sched_aware; pipe = Style.Stall; sync = Style.Sync_naive };
      vr_paper_mhz = Some 208;
    };
    {
      vr_label = "Opt. Data & Ctrl";
      vr_result = compile Style.optimized;
      vr_paper_mhz = Some 278;
    };
  ]

let render_variants ~title rows =
  let t =
    Table.create
      ~headers:
        [
          ("Implementation", Table.Left);
          ("Frequency", Table.Right);
          ("LUT", Table.Right);
          ("FF", Table.Right);
          ("BRAM", Table.Right);
          ("DSP", Table.Right);
          ("Paper MHz", Table.Right);
        ]
  in
  List.iter
    (fun r ->
      Table.add_row t
        [
          r.vr_label;
          Printf.sprintf "%.0f MHz" r.vr_result.Flow.fr_fmax_mhz;
          Printf.sprintf "%.1f%%" r.vr_result.Flow.fr_lut_pct;
          Printf.sprintf "%.1f%%" r.vr_result.Flow.fr_ff_pct;
          Printf.sprintf "%.2f%%" r.vr_result.Flow.fr_bram_pct;
          Printf.sprintf "%.1f%%" r.vr_result.Flow.fr_dsp_pct;
          (match r.vr_paper_mhz with Some m -> string_of_int m | None -> "-");
        ])
    rows;
  title ^ "\n" ^ Table.render t

(* ---------- Fig. 9 ---------- *)

type fig9_series = {
  f9_label : string;
  f9_rows : Calibrate.curve_row list;
}

let run_fig9 ?(device = Device.ultrascale_plus) ?jobs () =
  let cal = Calibrate.shared device in
  (* The three curve families are distinct calibration keys, so they
     characterize concurrently on the shared instance. *)
  Pool.map_list ?jobs
    (fun (label, build) -> { f9_label = label; f9_rows = build () })
    [
      ("add (int32)", fun () -> Calibrate.op_curve cal Op.Add (Dtype.Int 32));
      ("BRAM write (int32 buffer)", fun () -> Calibrate.mem_curve cal ~width:32);
      ("mul (float32)", fun () -> Calibrate.op_curve cal Op.Fmul Dtype.Float32);
    ]

let render_fig9 series =
  String.concat "\n"
    (List.map
       (fun s ->
         let t =
           Table.create
             ~headers:
               [
                 ("factor", Table.Right);
                 ("HLS est (ns)", Table.Right);
                 ("measured (ns)", Table.Right);
                 ("calibrated (ns)", Table.Right);
               ]
         in
         List.iter
           (fun (r : Calibrate.curve_row) ->
             Table.add_row t
               [
                 string_of_int r.Calibrate.cr_factor;
                 Printf.sprintf "%.2f" r.Calibrate.cr_predicted;
                 Printf.sprintf "%.2f" r.Calibrate.cr_measured;
                 Printf.sprintf "%.2f" r.Calibrate.cr_calibrated;
               ])
           s.f9_rows;
         s.f9_label ^ "\n" ^ Table.render t)
       series)

(* ---------- Fig. 15 ---------- *)

type fig15_row = {
  f15_unroll : int;
  f15_hls_est_ns : float;
  f15_our_est_ns : float;
  f15_actual_ns : float;
  f15_orig_mhz : float;
  f15_opt_mhz : float;
}

let array_max a = Array.fold_left max 0. a

let run_fig15 ?(factors = [ 8; 16; 32; 64; 128 ]) ?jobs () =
  let dev = Device.ultrascale_plus in
  let cal = Calibrate.shared dev in
  (* Shared calibrate is warmed by the first unroll point; the per-factor
     schedule + compile pairs are independent. *)
  Pool.map_list ?jobs
    (fun unroll ->
      let kernel () =
        Hlsb_designs.Genome.kernel ~back_search_count:unroll ~lane:0 ()
      in
      let baseline = Schedule.run Schedule.Baseline (kernel ()) in
      let hls_est = array_max (Sched_report.chain_delays baseline) in
      let our_est =
        array_max (Sched_report.chain_delays_calibrated cal baseline)
      in
      (* actual delay of the baseline schedule's critical path, post route;
         pipeline control held fixed (skid) to isolate the data broadcast *)
      let pipe = Style.Skid { min_area = true } in
      let session = Pipeline.of_kernel ~device:dev (kernel ()) in
      let orig =
        Pipeline.run_exn session
          ~recipe:{ Style.sched = Style.Sched_hls; pipe; sync = Style.Sync_naive }
      in
      let opt =
        Pipeline.run_exn session
          ~recipe:{ Style.sched = Style.Sched_aware; pipe; sync = Style.Sync_naive }
      in
      {
        f15_unroll = unroll;
        f15_hls_est_ns = hls_est;
        f15_our_est_ns = our_est;
        f15_actual_ns = orig.Flow.fr_critical_ns;
        f15_orig_mhz = orig.Flow.fr_fmax_mhz;
        f15_opt_mhz = opt.Flow.fr_fmax_mhz;
      })
    factors

let render_fig15 rows =
  let t =
    Table.create
      ~headers:
        [
          ("unroll", Table.Right);
          ("HLS est (ns)", Table.Right);
          ("our est (ns)", Table.Right);
          ("actual (ns)", Table.Right);
          ("Fmax HLS sched", Table.Right);
          ("Fmax our sched", Table.Right);
        ]
  in
  List.iter
    (fun r ->
      Table.add_row t
        [
          string_of_int r.f15_unroll;
          Printf.sprintf "%.2f" r.f15_hls_est_ns;
          Printf.sprintf "%.2f" r.f15_our_est_ns;
          Printf.sprintf "%.2f" r.f15_actual_ns;
          Printf.sprintf "%.0f MHz" r.f15_orig_mhz;
          Printf.sprintf "%.0f MHz" r.f15_opt_mhz;
        ])
    rows;
  Table.render t

(* ---------- Fig. 16 ---------- *)

type fig16_row = {
  f16_iterations : int;
  f16_stages : int;
  f16_stall_mhz : float;
  f16_skid_mhz : float;
}

let run_fig16 ?(iterations = [ 1; 2; 4; 8 ]) ?jobs () =
  let dev = Device.ultrascale_plus in
  Pool.map_list ?jobs
    (fun iters ->
      (* stall and skid agree on Sched_aware, so the session reuses both
         the elaborated network and the schedule between them *)
      let session =
        Pipeline.create ~device:dev
          ~name:(Printf.sprintf "stencil_x%d" iters)
          ~build:(fun () -> Hlsb_designs.Stencil.dataflow ~iterations:iters ())
          ()
      in
      let stall =
        Pipeline.run_exn session
          ~recipe:{ Style.sched = Style.Sched_aware; pipe = Style.Stall; sync = Style.Sync_naive }
      in
      let skid =
        Pipeline.run_exn session
          ~recipe:
            {
              Style.sched = Style.Sched_aware;
              pipe = Style.Skid { min_area = true };
              sync = Style.Sync_naive;
            }
      in
      let stages =
        List.fold_left
          (fun acc (k : Design.kernel_info) -> acc + k.Design.ki_depth)
          0 stall.Flow.fr_design.Design.kernels
      in
      {
        f16_iterations = iters;
        f16_stages = stages;
        f16_stall_mhz = stall.Flow.fr_fmax_mhz;
        f16_skid_mhz = skid.Flow.fr_fmax_mhz;
      })
    iterations

let render_fig16 rows =
  let t =
    Table.create
      ~headers:
        [
          ("iterations", Table.Right);
          ("stages", Table.Right);
          ("stall Fmax", Table.Right);
          ("skid Fmax", Table.Right);
        ]
  in
  List.iter
    (fun r ->
      Table.add_row t
        [
          string_of_int r.f16_iterations;
          string_of_int r.f16_stages;
          Printf.sprintf "%.0f MHz" r.f16_stall_mhz;
          Printf.sprintf "%.0f MHz" r.f16_skid_mhz;
        ])
    rows;
  Table.render t

(* ---------- Fig. 17 ---------- *)

type fig17_result = {
  f17_widths : int array;
  f17_out_width : int;
  f17_end_only_bits : int;
  f17_min_area_bits : int;
  f17_cuts : int list;
}

let run_fig17 ?(width = 32) () =
  let dev = Device.ultrascale_plus in
  let kernel = Hlsb_designs.Vector_arith.single_kernel ~width () in
  let sched =
    Schedule.run (Schedule.Broadcast_aware (Calibrate.shared dev)) kernel
  in
  let widths = Sched_report.stage_widths sched in
  let out_width = max 1 (Kernel.data_width_out kernel) in
  let end_only = Skid.end_only ~widths ~out_width in
  let best = Skid.min_area ~widths ~out_width in
  {
    f17_widths = widths;
    f17_out_width = out_width;
    f17_end_only_bits = end_only.Skid.cost_bits;
    f17_min_area_bits = best.Skid.cost_bits;
    f17_cuts = best.Skid.cuts;
  }

let render_fig17 r =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "live bits per stage boundary:\n  ";
  Array.iteri
    (fun i w ->
      Buffer.add_string buf (Printf.sprintf "%d:%d " (i + 1) w);
      if (i + 1) mod 12 = 0 then Buffer.add_string buf "\n  ")
    r.f17_widths;
  Buffer.add_string buf
    (Printf.sprintf "\noutput width: %d bits\n" r.f17_out_width);
  Buffer.add_string buf
    (Printf.sprintf "end-only skid buffer: %d bits\n" r.f17_end_only_bits);
  Buffer.add_string buf
    (Printf.sprintf "min-area skid buffers: %d bits (cuts at %s) -> %.1fx smaller\n"
       r.f17_min_area_bits
       (String.concat ", " (List.map string_of_int r.f17_cuts))
       (float_of_int r.f17_end_only_bits /. float_of_int (max 1 r.f17_min_area_bits)));
  Buffer.contents buf

(* ---------- Fig. 19 ---------- *)

type fig19_row = {
  f19_words : int;
  f19_bram_pct : float;
  f19_orig_mhz : float;
  f19_data_opt_mhz : float;
  f19_full_opt_mhz : float;
}

let run_fig19 ?(sizes = [ 8192; 16384; 32768; 65536; 131072 ]) ?jobs () =
  let dev = Device.ultrascale_plus in
  Pool.map_list ?jobs
    (fun words ->
      let session =
        Pipeline.create ~device:dev
          ~name:(Printf.sprintf "stream_buffer_%d" words)
          ~build:(fun () ->
            Hlsb_designs.Stream_buffer.dataflow ~depth_words:words ())
          ()
      in
      let compile recipe name =
        Pipeline.run_exn session ~recipe
          ~name:(Printf.sprintf "stream_buffer_%d_%s" words name)
      in
      let orig = compile Style.original "orig" in
      let data_opt =
        compile
          { Style.sched = Style.Sched_aware; pipe = Style.Stall; sync = Style.Sync_naive }
          "dataopt"
      in
      let full = compile Style.optimized "fullopt" in
      {
        f19_words = words;
        f19_bram_pct = full.Flow.fr_bram_pct;
        f19_orig_mhz = orig.Flow.fr_fmax_mhz;
        f19_data_opt_mhz = data_opt.Flow.fr_fmax_mhz;
        f19_full_opt_mhz = full.Flow.fr_fmax_mhz;
      })
    sizes

let render_fig19 rows =
  let t =
    Table.create
      ~headers:
        [
          ("buffer (512b words)", Table.Right);
          ("BRAM %", Table.Right);
          ("original", Table.Right);
          ("data opt only", Table.Right);
          ("data+ctrl opt", Table.Right);
        ]
  in
  List.iter
    (fun r ->
      Table.add_row t
        [
          string_of_int r.f19_words;
          Printf.sprintf "%.0f%%" r.f19_bram_pct;
          Printf.sprintf "%.0f MHz" r.f19_orig_mhz;
          Printf.sprintf "%.0f MHz" r.f19_data_opt_mhz;
          Printf.sprintf "%.0f MHz" r.f19_full_opt_mhz;
        ])
    rows;
  Table.render t

(* ---------- Ablations ---------- *)

type ablation_row = {
  ab_label : string;
  ab_value : float;
  ab_unit : string;
}

let run_ablations () =
  let dev = Device.ultrascale_plus in
  let rows = ref [] in
  let push label value unit_ = rows := { ab_label = label; ab_value = value; ab_unit = unit_ } :: !rows in
  (* 1. smoothing window: registers inserted + Fmax on genome *)
  List.iter
    (fun window ->
      (* shared, cache-backed instances: one per (device, window) *)
      let cal = Calibrate.shared ~window dev in
      let kernel = Hlsb_designs.Genome.kernel ~lane:0 () in
      let sched = Schedule.run (Schedule.Broadcast_aware cal) kernel in
      push
        (Printf.sprintf "smoothing window %d: registers inserted" window)
        (float_of_int (Schedule.registers_inserted sched))
        "regs")
    [ 0; 1; 2 ];
  (* 2. skid placement: end-only vs min-area buffer bits on Fig. 17 *)
  let f17 = run_fig17 () in
  push "skid end-only buffer" (float_of_int f17.f17_end_only_bits) "bits";
  push "skid min-area buffer" (float_of_int f17.f17_min_area_bits) "bits";
  (* 3. sync pruning granularity on the HBM stencil *)
  let hbm_session =
    Pipeline.create ~device:Device.alveo_u50 ~name:"hbm_stencil"
      ~build:(fun () -> Hlsb_designs.Hbm_stencil.dataflow ())
      ()
  in
  let compile recipe name = Pipeline.run_exn hbm_session ~recipe ~name in
  let naive =
    compile
      { Style.sched = Style.Sched_aware; pipe = Style.Skid { min_area = true }; sync = Style.Sync_naive }
      "hbm_naive"
  in
  let pruned = compile Style.optimized "hbm_pruned" in
  push "hbm stencil, naive sync" naive.Flow.fr_fmax_mhz "MHz";
  push "hbm stencil, pruned sync" pruned.Flow.fr_fmax_mhz "MHz";
  List.rev !rows

let render_ablations rows =
  let t =
    Table.create
      ~headers:[ ("ablation", Table.Left); ("value", Table.Right); ("unit", Table.Left) ]
  in
  List.iter
    (fun r ->
      Table.add_row t
        [ r.ab_label; Printf.sprintf "%.1f" r.ab_value; r.ab_unit ])
    rows;
  Table.render t

(* ---------- Scale: wide-arithmetic 100k-cell workloads ---------- *)

module Placement = Hlsb_physical.Placement
module Netlist = Hlsb_netlist.Netlist

type scale_row = {
  sc_label : string;
  sc_bits : int;
  sc_limb : int;
  sc_lanes : int;
  sc_cells : int;
  sc_nets : int;
  sc_fmax_mhz : float;
  sc_stage_ms : (string * float) list;
  sc_total_ms : float;
  sc_cells_per_sec : float;
  sc_sta_full_ms : float;
  sc_sta_refresh_ms : float;
  sc_refreshed_nets : int;
}

let wall_ms f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, (Unix.gettimeofday () -. t0) *. 1e3)

let run_scale ?(points = Hlsb_designs.Bigmul.sweep) ?jobs () =
  let dev = Device.ultrascale_plus in
  Pool.map_list ?jobs
    (fun (label, (bits, limb, lanes)) ->
      let session =
        Pipeline.create ~device:dev ~name:label
          ~build:(fun () ->
            Hlsb_designs.Bigmul.build_point ~bits ~limb ~lanes ())
          ()
      in
      let res = Pipeline.run_exn session ~recipe:Style.original in
      let stage_ms =
        List.filter_map
          (fun (sr : Pipeline.stage_record) ->
            if sr.Pipeline.sr_status = Pipeline.Ran then
              Some (Pipeline.stage_name sr.Pipeline.sr_stage, sr.Pipeline.sr_ms)
            else None)
          (Pipeline.last_run session)
      in
      let total_ms =
        List.fold_left (fun acc (_, ms) -> acc +. ms) 0. stage_ms
      in
      let nl = res.Flow.fr_design.Design.netlist in
      let cells = Netlist.n_cells nl in
      (* The incremental-STA hot path: prepare a timing context once, then
         an ECO-style nudge of a handful of cells re-times only the nets
         those cells touch instead of the whole design. *)
      let pl = Placement.place dev nl in
      let ctx = Timing.prepare dev nl pl in
      (* per-query cost without a context: rebuild the arrays, re-time
         every net, propagate *)
      let full, full_ms = wall_ms (fun () -> Timing.analyze dev nl pl) in
      let nudged =
        List.sort_uniq compare [ 0; cells / 3; cells / 2; cells - 1 ]
      in
      List.iter
        (fun c ->
          let x, y = Placement.position pl c in
          Placement.set_position pl c (x +. 0.5, y +. 0.5))
        nudged;
      let (dirty, incr), refresh_ms =
        wall_ms (fun () ->
          let d = Timing.refresh ctx in
          (d, Timing.analyze_ctx ctx))
      in
      (* a nudge this small must not lose timing visibility *)
      assert (incr.Timing.critical_ns > 0. && full.Timing.critical_ns > 0.);
      {
        sc_label = label;
        sc_bits = bits;
        sc_limb = limb;
        sc_lanes = lanes;
        sc_cells = cells;
        sc_nets = Netlist.n_nets nl;
        sc_fmax_mhz = res.Flow.fr_fmax_mhz;
        sc_stage_ms = stage_ms;
        sc_total_ms = total_ms;
        sc_cells_per_sec =
          (if total_ms > 0. then float_of_int cells /. (total_ms /. 1e3)
           else 0.);
        sc_sta_full_ms = full_ms;
        sc_sta_refresh_ms = refresh_ms;
        sc_refreshed_nets = dirty;
      })
    points

let render_scale rows =
  let stage ms_list name =
    match List.assoc_opt name ms_list with
    | Some ms -> Printf.sprintf "%.1f" ms
    | None -> "-"
  in
  let t =
    Table.create
      ~headers:
        [
          ("workload", Table.Left);
          ("bits x lanes", Table.Right);
          ("cells", Table.Right);
          ("nets", Table.Right);
          ("Fmax", Table.Right);
          ("lower ms", Table.Right);
          ("place ms", Table.Right);
          ("sta ms", Table.Right);
          ("total ms", Table.Right);
          ("kcells/s", Table.Right);
          ("STA full ms", Table.Right);
          ("STA incr ms", Table.Right);
          ("nets re-timed", Table.Right);
        ]
  in
  List.iter
    (fun r ->
      Table.add_row t
        [
          r.sc_label;
          Printf.sprintf "%dx%d" r.sc_bits r.sc_lanes;
          string_of_int r.sc_cells;
          string_of_int r.sc_nets;
          Printf.sprintf "%.0f MHz" r.sc_fmax_mhz;
          stage r.sc_stage_ms "lower";
          stage r.sc_stage_ms "place";
          stage r.sc_stage_ms "sta";
          Printf.sprintf "%.1f" r.sc_total_ms;
          Printf.sprintf "%.0f" (r.sc_cells_per_sec /. 1e3);
          Printf.sprintf "%.2f" r.sc_sta_full_ms;
          Printf.sprintf "%.2f" r.sc_sta_refresh_ms;
          string_of_int r.sc_refreshed_nets;
        ])
    rows;
  Table.render t
