module Device = Hlsb_device.Device
module Netlist = Hlsb_netlist.Netlist
module Timing = Hlsb_physical.Timing
module Design = Hlsb_rtlgen.Design
module Style = Hlsb_ctrl.Style
module Spec = Hlsb_designs.Spec
module Trace = Hlsb_telemetry.Trace
module Metrics = Hlsb_telemetry.Metrics
module Json = Hlsb_telemetry.Json

type result = {
  fr_label : string;
  fr_recipe : Style.recipe;
  fr_fmax_mhz : float;
  fr_critical_ns : float;
  fr_lut_pct : float;
  fr_ff_pct : float;
  fr_bram_pct : float;
  fr_dsp_pct : float;
  fr_design : Design.t;
  fr_timing : Timing.report;
}

let of_design name (design : Design.t) =
  let report = Timing.run design.Design.device design.Design.netlist in
  let lut, ff, bram, dsp =
    Trace.with_span "utilization" (fun () ->
      Netlist.utilization design.Design.netlist design.Design.device)
  in
  if Metrics.enabled () then begin
    Metrics.incr "flow.compiles";
    Metrics.set_gauge "flow.fmax_mhz" report.Timing.fmax_mhz;
    Metrics.set_gauge "flow.critical_ns" report.Timing.critical_ns;
    Metrics.set_gauge "flow.lut_pct" (100. *. lut);
    Metrics.set_gauge "flow.ff_pct" (100. *. ff)
  end;
  {
    fr_label = name ^ " [" ^ Style.label design.Design.recipe ^ "]";
    fr_recipe = design.Design.recipe;
    fr_fmax_mhz = report.Timing.fmax_mhz;
    fr_critical_ns = report.Timing.critical_ns;
    fr_lut_pct = 100. *. lut;
    fr_ff_pct = 100. *. ff;
    fr_bram_pct = 100. *. bram;
    fr_dsp_pct = 100. *. dsp;
    fr_design = design;
    fr_timing = report;
  }

let in_compile_span ~name ~recipe f =
  if not (Trace.enabled ()) then f ()
  else
    Trace.with_span "compile"
      ~attrs:[ ("design", Json.Str name); ("recipe", Json.Str (Style.label recipe)) ]
      f

let compile ?target_mhz ~device ~recipe ~name df =
  in_compile_span ~name ~recipe (fun () ->
    of_design name (Design.generate ?target_mhz ~device ~recipe ~name df))

let compile_kernel ?target_mhz ~device ~recipe kernel =
  in_compile_span ~name:kernel.Hlsb_ir.Kernel.name ~recipe (fun () ->
    of_design kernel.Hlsb_ir.Kernel.name
      (Design.single_kernel ?target_mhz ~device ~recipe kernel))

let compile_spec ?target_mhz ~recipe (spec : Spec.t) =
  in_compile_span ~name:spec.Spec.sp_name ~recipe (fun () ->
    let df =
      Trace.with_span "elaborate" (fun () -> spec.Spec.sp_build ())
    in
    of_design spec.Spec.sp_name
      (Design.generate ?target_mhz ~device:spec.Spec.sp_device ~recipe
         ~name:spec.Spec.sp_name df))

let improvement_pct ~orig ~opt =
  100. *. ((opt.fr_fmax_mhz /. orig.fr_fmax_mhz) -. 1.)

let result_to_json r =
  Json.Obj
    [
      ("label", Json.Str r.fr_label);
      ("recipe", Json.Str (Style.label r.fr_recipe));
      ("fmax_mhz", Json.Float r.fr_fmax_mhz);
      ("critical_ns", Json.Float r.fr_critical_ns);
      ("lut_pct", Json.Float r.fr_lut_pct);
      ("ff_pct", Json.Float r.fr_ff_pct);
      ("bram_pct", Json.Float r.fr_bram_pct);
      ("dsp_pct", Json.Float r.fr_dsp_pct);
      ("cells", Json.Int (Netlist.n_cells r.fr_design.Design.netlist));
      ("nets", Json.Int (Netlist.n_nets r.fr_design.Design.netlist));
      ( "kernels",
        Json.List
          (List.map
             (fun (k : Design.kernel_info) ->
               Json.Obj
                 [
                   ("name", Json.Str k.Design.ki_name);
                   ("depth", Json.Int k.Design.ki_depth);
                   ("registers_added", Json.Int k.Design.ki_registers_added);
                   ("skid_bits", Json.Int k.Design.ki_skid_bits);
                 ])
             r.fr_design.Design.kernels) );
      ("sync_groups", Json.Int r.fr_design.Design.sync_groups_emitted);
      ("max_sync_fanout", Json.Int r.fr_design.Design.max_sync_fanout);
    ]

let summary r =
  Printf.sprintf
    "%-40s %6.1f MHz  (%.2f ns)  LUT %5.1f%%  FF %5.1f%%  BRAM %5.1f%%  DSP %5.1f%%"
    r.fr_label r.fr_fmax_mhz r.fr_critical_ns r.fr_lut_pct r.fr_ff_pct
    r.fr_bram_pct r.fr_dsp_pct
