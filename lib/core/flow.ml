module Timing = Hlsb_physical.Timing
module Design = Hlsb_rtlgen.Design
module Style = Hlsb_ctrl.Style
module Spec = Hlsb_designs.Spec
module Trace = Hlsb_telemetry.Trace
module Json = Hlsb_telemetry.Json

type result = Pipeline.result = {
  fr_label : string;
  fr_recipe : Style.recipe;
  fr_fmax_mhz : float;
  fr_critical_ns : float;
  fr_lut_pct : float;
  fr_ff_pct : float;
  fr_bram_pct : float;
  fr_dsp_pct : float;
  fr_design : Design.t;
  fr_timing : Timing.report;
}

let of_design name (design : Design.t) =
  let report = Timing.run design.Design.device design.Design.netlist in
  Pipeline.finish ~name design report

let in_compile_span ~name ~recipe f =
  if not (Trace.enabled ()) then f ()
  else
    Trace.with_span "compile"
      ~attrs:[ ("design", Json.Str name); ("recipe", Json.Str (Style.label recipe)) ]
      f

let compile ?target_mhz ~device ~recipe ~name df =
  in_compile_span ~name ~recipe (fun () ->
    of_design name (Design.generate ?target_mhz ~device ~recipe ~name df))

let compile_kernel ?target_mhz ~device ~recipe kernel =
  in_compile_span ~name:kernel.Hlsb_ir.Kernel.name ~recipe (fun () ->
    of_design kernel.Hlsb_ir.Kernel.name
      (Design.single_kernel ?target_mhz ~device ~recipe kernel))

let compile_spec ?target_mhz ~recipe (spec : Spec.t) =
  in_compile_span ~name:spec.Spec.sp_name ~recipe (fun () ->
    let df =
      Trace.with_span "elaborate" (fun () -> spec.Spec.sp_build ())
    in
    of_design spec.Spec.sp_name
      (Design.generate ?target_mhz ~device:spec.Spec.sp_device ~recipe
         ~name:spec.Spec.sp_name df))

let improvement_pct ~orig ~opt =
  let base = orig.fr_fmax_mhz in
  if not (Float.is_finite base) || base <= 0. then 0.
  else
    let pct = 100. *. ((opt.fr_fmax_mhz /. base) -. 1.) in
    if Float.is_finite pct then pct else 0.

let result_to_json = Pipeline.result_to_json

let summary r =
  Printf.sprintf
    "%-40s %6.1f MHz  (%.2f ns)  LUT %5.1f%%  FF %5.1f%%  BRAM %5.1f%%  DSP %5.1f%%"
    r.fr_label r.fr_fmax_mhz r.fr_critical_ns r.fr_lut_pct r.fr_ff_pct
    r.fr_bram_pct r.fr_dsp_pct
