(** End-to-end compilation flows: dataflow design -> schedule -> RTL ->
    placement -> timing, under a given optimization recipe. This is the
    library's primary entry point: compile a design with
    {!Hlsb_ctrl.Style.original} to see what today's HLS emits, with
    {!Hlsb_ctrl.Style.optimized} to apply the paper's three techniques. *)

type result = Pipeline.result = {
  fr_label : string;
  fr_recipe : Hlsb_ctrl.Style.recipe;
  fr_fmax_mhz : float;
  fr_critical_ns : float;
  fr_lut_pct : float;
  fr_ff_pct : float;
  fr_bram_pct : float;
  fr_dsp_pct : float;
  fr_design : Hlsb_rtlgen.Design.t;
  fr_timing : Hlsb_physical.Timing.report;
}

val compile :
  ?target_mhz:float ->
  device:Hlsb_device.Device.t ->
  recipe:Hlsb_ctrl.Style.recipe ->
  name:string ->
  Hlsb_ir.Dataflow.t ->
  result

val compile_kernel :
  ?target_mhz:float ->
  device:Hlsb_device.Device.t ->
  recipe:Hlsb_ctrl.Style.recipe ->
  Hlsb_ir.Kernel.t ->
  result

val compile_spec :
  ?target_mhz:float -> recipe:Hlsb_ctrl.Style.recipe -> Hlsb_designs.Spec.t -> result
(** Builds the benchmark on its paper-designated device. *)

val improvement_pct : orig:result -> opt:result -> float
(** Relative Fmax gain in percent, the paper's "Diff" column. Returns
    [0.] when the baseline Fmax is zero or non-finite (a degenerate
    compile) instead of letting [inf]/[nan] reach the report tables. *)

val summary : result -> string

val result_to_json : result -> Hlsb_telemetry.Json.t
(** The record as JSON (Fmax, critical ns, utilization percentages,
    per-kernel depth/registers/skid bits) — the payload of
    [hlsbc compile --json] and [hlsbc profile]. *)
