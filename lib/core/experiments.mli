(** Drivers that regenerate every table and figure of the paper's
    evaluation (§5). Each [run_*] returns typed rows; each [render_*]
    formats them in the paper's layout. The bench executable calls these;
    EXPERIMENTS.md records their output against the paper's numbers. *)

type table1_row = {
  t1_name : string;
  t1_broadcast : string;
  t1_device : string;
  t1_orig : Flow.result;
  t1_opt : Flow.result;
  t1_paper : Hlsb_designs.Spec.paper_numbers;
}

val run_table1 : ?subset:string list -> ?jobs:int -> unit -> table1_row list
(** All nine benchmarks (or the named subset), original vs optimized.
    Benchmarks compile independently and fan out across the
    {!Hlsb_util.Pool}; rows come back in benchmark order regardless of the
    job count. *)

val render_table1 : table1_row list -> string

type variant_row = {
  vr_label : string;
  vr_result : Flow.result;
  vr_paper_mhz : int option;
}

val run_table2 : ?width:int -> unit -> variant_row list
(** 512-wide vector product: stall / skid / min-area skid (§5.4). *)

val run_table3 : unit -> variant_row list
(** Pattern matching: original / data-opt / data+ctrl-opt (§5.5). *)

val render_variants : title:string -> variant_row list -> string

type fig9_series = {
  f9_label : string;
  f9_rows : Hlsb_delay.Calibrate.curve_row list;
}

val run_fig9 :
  ?device:Hlsb_device.Device.t -> ?jobs:int -> unit -> fig9_series list
(** Delay vs broadcast factor: int add, BRAM write (by depth), float mul. *)

val render_fig9 : fig9_series list -> string

type fig15_row = {
  f15_unroll : int;
  f15_hls_est_ns : float;  (** the HLS tool's view of the worst chain *)
  f15_our_est_ns : float;  (** same chain under calibrated delays *)
  f15_actual_ns : float;  (** post-route critical path of that schedule *)
  f15_orig_mhz : float;  (** Fig. 15b: baseline schedule *)
  f15_opt_mhz : float;  (** Fig. 15b: broadcast-aware schedule *)
}

val run_fig15 : ?factors:int list -> ?jobs:int -> unit -> fig15_row list
val render_fig15 : fig15_row list -> string

type fig16_row = {
  f16_iterations : int;
  f16_stages : int;
  f16_stall_mhz : float;
  f16_skid_mhz : float;
}

val run_fig16 : ?iterations:int list -> ?jobs:int -> unit -> fig16_row list
val render_fig16 : fig16_row list -> string

type fig17_result = {
  f17_widths : int array;  (** live bits at each stage boundary *)
  f17_out_width : int;
  f17_end_only_bits : int;
  f17_min_area_bits : int;
  f17_cuts : int list;
}

val run_fig17 : ?width:int -> unit -> fig17_result
val render_fig17 : fig17_result -> string

type fig19_row = {
  f19_words : int;
  f19_bram_pct : float;
  f19_orig_mhz : float;
  f19_data_opt_mhz : float;
  f19_full_opt_mhz : float;
}

val run_fig19 : ?sizes:int list -> ?jobs:int -> unit -> fig19_row list
val render_fig19 : fig19_row list -> string

type ablation_row = {
  ab_label : string;
  ab_value : float;
  ab_unit : string;
}

val run_ablations : unit -> ablation_row list
(** The DESIGN.md §8 design-choice ablations: smoothing window, skid
    placement strategy, sync pruning granularity. *)

val render_ablations : ablation_row list -> string

type scale_row = {
  sc_label : string;
  sc_bits : int;  (** operand width per lane *)
  sc_limb : int;
  sc_lanes : int;
  sc_cells : int;
  sc_nets : int;
  sc_fmax_mhz : float;
  sc_stage_ms : (string * float) list;
      (** wall-clock of each pipeline stage that actually ran *)
  sc_total_ms : float;  (** elaborate -> report, sum of the above *)
  sc_cells_per_sec : float;  (** cells / total compile seconds *)
  sc_sta_full_ms : float;
      (** a context-free {!Hlsb_physical.Timing.analyze} query: rebuild
          the arrays, re-time every net, propagate *)
  sc_sta_refresh_ms : float;
      (** re-time + re-propagate after a 4-cell ECO nudge *)
  sc_refreshed_nets : int;  (** net delays recomputed by that refresh *)
}

val run_scale :
  ?points:(string * (int * int * int)) list -> ?jobs:int -> unit -> scale_row list
(** Compile the {!Hlsb_designs.Bigmul} wide-arithmetic sweep (default
    [Bigmul.sweep]: ~7k, ~29k and ~104k cells) end to end, recording
    per-stage wall-clock and compile throughput, then exercise the
    incremental-STA path ({!Hlsb_physical.Timing.prepare} /
    [refresh] / [analyze_ctx]) against a small placement nudge. Each
    [points] element is [(label, (bits, limb, lanes))]. *)

val render_scale : scale_row list -> string
