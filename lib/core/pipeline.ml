module Device = Hlsb_device.Device
module Netlist = Hlsb_netlist.Netlist
module Export = Hlsb_netlist.Export
module Placement = Hlsb_physical.Placement
module Timing = Hlsb_physical.Timing
module Design = Hlsb_rtlgen.Design
module Schedule = Hlsb_sched.Schedule
module Sched_report = Hlsb_sched.Report
module Style = Hlsb_ctrl.Style
module Spec = Hlsb_designs.Spec
module Dataflow = Hlsb_ir.Dataflow
module Dag = Hlsb_ir.Dag
module Kernel = Hlsb_ir.Kernel
module Diag = Hlsb_util.Diag
module Table = Hlsb_util.Table
module Trace = Hlsb_telemetry.Trace
module Metrics = Hlsb_telemetry.Metrics
module Clock = Hlsb_telemetry.Clock
module Json = Hlsb_telemetry.Json
module Log = Hlsb_obs.Log
module Ast = Hlsb_frontend.Ast
module Frontend = Hlsb_frontend.Frontend
module Pass = Hlsb_transform.Pass
module Plan = Hlsb_transform.Plan
module Reuse = Hlsb_transform.Reuse

(* ---------------- stages ---------------- *)

type stage =
  | Transform
  | Elaborate
  | Classify
  | Schedule
  | Lower
  | Sync
  | Place
  | Sta
  | Report

let stages =
  [ Transform; Elaborate; Classify; Schedule; Lower; Sync; Place; Sta; Report ]

let stage_name = function
  | Transform -> "transform"
  | Elaborate -> "elaborate"
  | Classify -> "classify"
  | Schedule -> "schedule"
  | Lower -> "lower"
  | Sync -> "sync"
  | Place -> "place"
  | Sta -> "sta"
  | Report -> "report"

let stage_of_name n =
  List.find_opt (fun s -> stage_name s = n) stages

let describe = function
  | Transform ->
    "apply the source-to-source transform plan (unroll/partition/fission/...)"
  | Elaborate -> "build the dataflow process network and validate it"
  | Classify -> "source-level broadcast classification (on demand)"
  | Schedule ->
    "chaining-aware scheduling of every kernel (cached per sched mode)"
  | Lower -> "lower scheduled kernels to the macro netlist, wire channels"
  | Sync -> "emit synchronization controllers (naive or pruned)"
  | Place -> "pack the netlist onto the device slice grid"
  | Sta -> "static timing analysis: critical path and Fmax"
  | Report -> "utilization and the compile result record"

(* ---------------- result record (Flow.result aliases this) ----------- *)

type result = {
  fr_label : string;
  fr_recipe : Style.recipe;
  fr_fmax_mhz : float;
  fr_critical_ns : float;
  fr_lut_pct : float;
  fr_ff_pct : float;
  fr_bram_pct : float;
  fr_dsp_pct : float;
  fr_design : Design.t;
  fr_timing : Timing.report;
}

let finish ~name (design : Design.t) (report : Timing.report) =
  let lut, ff, bram, dsp =
    Trace.with_span "utilization" (fun () ->
      Netlist.utilization design.Design.netlist design.Design.device)
  in
  if Metrics.enabled () then begin
    Metrics.incr "flow.compiles";
    Metrics.set_gauge "flow.fmax_mhz" report.Timing.fmax_mhz;
    Metrics.set_gauge "flow.critical_ns" report.Timing.critical_ns;
    Metrics.set_gauge "flow.lut_pct" (100. *. lut);
    Metrics.set_gauge "flow.ff_pct" (100. *. ff)
  end;
  {
    fr_label = name ^ " [" ^ Style.label design.Design.recipe ^ "]";
    fr_recipe = design.Design.recipe;
    fr_fmax_mhz = report.Timing.fmax_mhz;
    fr_critical_ns = report.Timing.critical_ns;
    fr_lut_pct = 100. *. lut;
    fr_ff_pct = 100. *. ff;
    fr_bram_pct = 100. *. bram;
    fr_dsp_pct = 100. *. dsp;
    fr_design = design;
    fr_timing = report;
  }

let result_to_json r =
  Json.Obj
    [
      ("label", Json.Str r.fr_label);
      ("recipe", Json.Str (Style.label r.fr_recipe));
      ("fmax_mhz", Json.Float r.fr_fmax_mhz);
      ("critical_ns", Json.Float r.fr_critical_ns);
      ("lut_pct", Json.Float r.fr_lut_pct);
      ("ff_pct", Json.Float r.fr_ff_pct);
      ("bram_pct", Json.Float r.fr_bram_pct);
      ("dsp_pct", Json.Float r.fr_dsp_pct);
      ("cells", Json.Int (Netlist.n_cells r.fr_design.Design.netlist));
      ("nets", Json.Int (Netlist.n_nets r.fr_design.Design.netlist));
      ( "kernels",
        Json.List
          (List.map
             (fun (k : Design.kernel_info) ->
               Json.Obj
                 [
                   ("name", Json.Str k.Design.ki_name);
                   ("depth", Json.Int k.Design.ki_depth);
                   ("registers_added", Json.Int k.Design.ki_registers_added);
                   ("skid_bits", Json.Int k.Design.ki_skid_bits);
                 ])
             r.fr_design.Design.kernels) );
      ("sync_groups", Json.Int r.fr_design.Design.sync_groups_emitted);
      ("max_sync_fanout", Json.Int r.fr_design.Design.max_sync_fanout);
    ]

(* ---------------- sessions ---------------- *)

type status = Ran | Cached | Skipped | Failed

type stage_record = {
  sr_stage : stage;
  sr_status : status;
  sr_ms : float;
}

type compiled = {
  co_design : Design.t;
  co_placement : Placement.t;
  co_timing : Timing.report;
  co_result : result;
}

type session = {
  ss_device : Device.t;
  ss_name : string;
  ss_target_mhz : float option;
  ss_kernel_naming : bool;
  ss_build : unit -> Dataflow.t;
  ss_program : Ast.program option;
      (** source program (cc sessions); [None] for IR-level sessions *)
  ss_top : string option;
  mutable ss_transformed : (string * Ast.program) list;
      (** plan key -> transformed program *)
  mutable ss_dfs : (string * Dataflow.t) list;  (** plan key -> network *)
  mutable ss_classify : (string * Classify.report) list;  (** by plan key *)
  mutable ss_scheds :
    ((string * Style.sched_mode) * Schedule.t option array) list;
      (** (plan key, sched mode) -> schedules *)
  mutable ss_compiled : (string * compiled) list;
  ss_counts : (string, int) Hashtbl.t;
  mutable ss_last : stage_record list;  (** reversed while a run records *)
  mutable ss_diags : Diag.t list;  (** reversed *)
}

let create ?target_mhz ~device ~name ~build () =
  {
    ss_device = device;
    ss_name = name;
    ss_target_mhz = target_mhz;
    ss_kernel_naming = false;
    ss_build = build;
    ss_program = None;
    ss_top = None;
    ss_transformed = [];
    ss_dfs = [];
    ss_classify = [];
    ss_scheds = [];
    ss_compiled = [];
    ss_counts = Hashtbl.create 8;
    ss_last = [];
    ss_diags = [];
  }

let of_program ?target_mhz ?top ~device ~name program =
  {
    (create ?target_mhz ~device ~name
       ~build:(fun () -> invalid_arg "program session has no IR build")
       ())
    with
    ss_program = Some program;
    ss_top = top;
  }

let of_spec ?target_mhz (spec : Spec.t) =
  create ?target_mhz ~device:spec.Spec.sp_device ~name:spec.Spec.sp_name
    ~build:spec.Spec.sp_build ()

let of_kernel ?target_mhz ~device kernel =
  {
    (create ?target_mhz ~device ~name:kernel.Kernel.name
       ~build:(fun () -> Design.kernel_dataflow kernel)
       ())
    with
    ss_kernel_naming = true;
  }

(* ---------------- stage execution machinery ---------------- *)

let record t stage status ms =
  t.ss_last <- { sr_stage = stage; sr_status = status; sr_ms = ms } :: t.ss_last

(* Run one stage body: telemetry span + run counters around it, stray
   [Invalid_argument]/[Failure] from deep inside the pass promoted to a
   structured diagnostic carrying the stage name. *)
let exec t ~recipe stage f =
  let name = stage_name stage in
  let count () =
    Hashtbl.replace t.ss_counts name
      (1 + Option.value ~default:0 (Hashtbl.find_opt t.ss_counts name));
    Metrics.incr "pipeline.stage_runs";
    Metrics.incr ("pipeline.stage_runs." ^ name)
  in
  let body () =
    let t0 = Clock.now_ns () in
    match f () with
    | v ->
      count ();
      let ms = Clock.ns_to_ms (Int64.sub (Clock.now_ns ()) t0) in
      record t stage Ran ms;
      Log.debug
        ~attrs:
          [ ("stage", Json.Str name); ("design", Json.Str t.ss_name) ]
        "stage %s: %.1f ms" name ms;
      v
    | exception e ->
      count ();
      record t stage Failed (Clock.ns_to_ms (Int64.sub (Clock.now_ns ()) t0));
      let d =
        match e with
        | Diag.Diagnostic d -> d
        | Invalid_argument msg | Failure msg -> Diag.error ~stage:name msg
        | e -> raise e
      in
      t.ss_diags <- d :: t.ss_diags;
      Log.error
        ~attrs:
          [ ("stage", Json.Str name); ("design", Json.Str t.ss_name) ]
        "stage %s failed: %s" name (Diag.to_string d);
      raise (Diag.Diagnostic d)
  in
  if not (Trace.enabled ()) then body ()
  else
    Trace.with_span ("stage." ^ name)
      ~attrs:
        [
          ("design", Json.Str t.ss_name);
          ("recipe", Json.Str (Style.label recipe));
        ]
      body

let cached t stage =
  Metrics.incr "pipeline.cache_hits";
  Log.debug
    ~attrs:
      [
        ("stage", Json.Str (stage_name stage)); ("design", Json.Str t.ss_name);
      ]
    "stage %s: cache hit" (stage_name stage);
  record t stage Cached 0.

(* ---------------- cached upstream artifacts ---------------- *)

let plan_key plan = Plan.to_string plan

(* Per-run tuning (target-frequency override + register injection) joins
   the cache keys. Both default to [None], rendering as "", so untuned
   runs key — and therefore cache — exactly as before the explorer
   existed. *)
let tuning_key ~target_mhz ~inject =
  (match target_mhz with
  | None -> ""
  | Some t -> Printf.sprintf "@%g" t)
  ^
  match inject with
  | None -> ""
  | Some { Schedule.inj_top; inj_levels } ->
    Printf.sprintf "+inj%d:%d" inj_top inj_levels

let plan_has_source plan =
  List.exists
    (function Plan.Source _ | Plan.Pragmas -> true | Plan.Channel_reuse -> false)
    plan

(* The [transform] stage: source-level plan items applied to the
   session's program, cached per canonical plan key. IR-level sessions
   have no program: the stage is skipped for plans with no source items
   (identity, pure channel-reuse) and fails for the rest. *)
let transformed t ~recipe ~plan =
  match t.ss_program with
  | None ->
    if plan_has_source plan then
      raise
        (Diag.Diagnostic
           (Diag.error ~stage:"transform"
              (Printf.sprintf
                 "plan %S transforms source, but this session was built from \
                  IR; source plans need a program session (hlsbc cc)"
                 (Plan.to_string plan))))
    else None
  | Some program -> (
    let key = plan_key plan in
    match List.assoc_opt key t.ss_transformed with
    | Some p ->
      cached t Transform;
      Some p
    | None ->
      exec t ~recipe Transform (fun () ->
        (* surface unknown-pragma warnings once per plan, whether or not
           the plan replays the pragmas as requests *)
        let _, warns = Pass.requests_of_pragmas program in
        List.iter (fun w -> t.ss_diags <- w :: t.ss_diags) warns;
        match Plan.apply_source plan program with
        | Ok p ->
          t.ss_transformed <- (key, p) :: t.ss_transformed;
          Some p
        | Error d -> raise (Diag.Diagnostic d)))

let elaborate ?(plan = Plan.identity) t ~recipe =
  let prog = transformed t ~recipe ~plan in
  let key = plan_key plan in
  match List.assoc_opt key t.ss_dfs with
  | Some df ->
    cached t Elaborate;
    df
  | None ->
    exec t ~recipe Elaborate (fun () ->
      let df =
        match prog with
        | None -> t.ss_build ()
        | Some p -> (
          match Frontend.design_of_program ?top:t.ss_top p with
          | Ok df -> df
          | Error e ->
            raise
              (Diag.Diagnostic
                 (Diag.error ~stage:"elaborate"
                    (Format.asprintf "%a" Frontend.pp_error e))))
      in
      let df =
        if Plan.has_channel_reuse plan then fst (Reuse.run df) else df
      in
      (match Dataflow.problems df with
      | [] -> ()
      | { Dataflow.pb_entity; pb_message } :: _ ->
        let entity =
          match pb_entity with
          | `Channel n -> Diag.Channel n
          | `Process n -> Diag.Process n
        in
        raise
          (Diag.Diagnostic (Diag.error ~entity ~stage:"elaborate" pb_message)));
      t.ss_dfs <- (key, df) :: t.ss_dfs;
      df)

let scheduled ?(plan = Plan.identity) ?target_mhz ?inject t ~recipe df =
  let key =
    (plan_key plan ^ tuning_key ~target_mhz ~inject, recipe.Style.sched)
  in
  match List.assoc_opt key t.ss_scheds with
  | Some scheds ->
    cached t Schedule;
    scheds
  | None ->
    exec t ~recipe Schedule (fun () ->
      let target =
        match target_mhz with Some _ -> target_mhz | None -> t.ss_target_mhz
      in
      let scheds =
        Design.schedule_processes ?target_mhz:target ?inject
          ~device:t.ss_device ~recipe df
      in
      t.ss_scheds <- (key, scheds) :: t.ss_scheds;
      scheds)

let classify_report ?(plan = Plan.identity) t =
  let key = plan_key plan in
  match List.assoc_opt key t.ss_classify with
  | Some r ->
    cached t Classify;
    r
  | None ->
    let recipe = Style.original in
    let df = elaborate ~plan t ~recipe in
    exec t ~recipe Classify (fun () ->
      let r = Classify.analyze ~device:t.ss_device df in
      t.ss_classify <- (key, r) :: t.ss_classify;
      r)

(* ---------------- the full pipeline ---------------- *)

let effective_names ?name t ~recipe =
  (* label: what the result record is titled after; netlist: the design
     name the netlist (and so the timing seed) is derived from. They
     differ only for single-kernel sessions, matching the legacy
     [Flow.compile_kernel] behaviour. *)
  let label = Option.value ~default:t.ss_name name in
  let netlist =
    if t.ss_kernel_naming then t.ss_name ^ "_" ^ Style.label recipe else label
  in
  (label, netlist)

(* broadcast.* gauges: the source-level broadcast profile of the network
   this run compiles — the quantity transform plans are meant to move.
   Recorded per compile (inside whatever metrics registry is installed)
   so a ledger record always reflects the compiled variant. *)
let record_broadcast_gauges df =
  if Metrics.enabled () then begin
    let nodes = ref 0 and total = ref 0 and worst = ref 0 and banks = ref 0 in
    Array.iter
      (fun (p : Dataflow.process) ->
        match p.Dataflow.p_kernel with
        | None -> ()
        | Some k ->
          let dag = k.Kernel.dag in
          Dag.iter dag (fun v ->
            let reads = Dag.broadcast_factor dag v in
            if reads >= 2 then begin
              incr nodes;
              total := !total + reads
            end;
            if reads > !worst then worst := reads);
          Array.iter
            (fun (b : Dag.buffer) -> banks := !banks + b.Dag.b_partition)
            (Dag.buffers dag))
      (Dataflow.processes df);
    Metrics.set_gauge_int "broadcast.nodes" !nodes;
    Metrics.set_gauge_int "broadcast.total_reads" !total;
    Metrics.set_gauge_int "broadcast.worst_fanout" !worst;
    Metrics.set_gauge_int "broadcast.mem_banks" !banks;
    Metrics.set_gauge_int "broadcast.channels" (Dataflow.n_channels df)
  end

let compile_key ~netlist_name ~plan ~tuning recipe =
  Style.label recipe ^ "|" ^ netlist_name
  ^ (match plan_key plan with "" -> "" | k -> "|" ^ k)
  ^ match tuning with "" -> "" | k -> "|" ^ k

let compiled_exn ?name ?(plan = Plan.identity) ?target_mhz ?inject t ~recipe =
  t.ss_last <- [];
  let label, netlist_name = effective_names ?name t ~recipe in
  let tuning = tuning_key ~target_mhz ~inject in
  let key = compile_key ~netlist_name ~plan ~tuning recipe in
  match List.assoc_opt key t.ss_compiled with
  | Some c ->
    if t.ss_program <> None then cached t Transform;
    List.iter
      (fun s -> if s <> Classify && s <> Transform then cached t s)
      [ Elaborate; Schedule; Lower; Sync; Place; Sta; Report ];
    c
  | None ->
    Metrics.incr "pipeline.cache_misses";
    let body () =
      let df = elaborate ~plan t ~recipe in
      record_broadcast_gauges df;
      let scheds = scheduled ~plan ?target_mhz ?inject t ~recipe df in
      let dp =
        exec t ~recipe Lower (fun () ->
          Design.lower_processes ~device:t.ss_device ~recipe ~name:netlist_name
            df scheds)
      in
      let design =
        exec t ~recipe Sync (fun () ->
          Design.emit_sync ~device:t.ss_device ~recipe df dp)
      in
      let placement =
        exec t ~recipe Place (fun () ->
          Placement.place t.ss_device design.Design.netlist)
      in
      let timing =
        exec t ~recipe Sta (fun () ->
          let r =
            Timing.analyze t.ss_device design.Design.netlist placement
          in
          Metrics.incr "timing.runs";
          Metrics.set_gauge "timing.critical_ns" r.Timing.critical_ns;
          r)
      in
      let result =
        exec t ~recipe Report (fun () -> finish ~name:label design timing)
      in
      let c =
        {
          co_design = design;
          co_placement = placement;
          co_timing = timing;
          co_result = result;
        }
      in
      t.ss_compiled <- (key, c) :: t.ss_compiled;
      c
    in
    if not (Trace.enabled ()) then body ()
    else
      Trace.with_span "pipeline"
        ~attrs:
          [
            ("design", Json.Str netlist_name);
            ("recipe", Json.Str (Style.label recipe));
          ]
        body

(* Session persistence hooks: the compile daemon keys its on-disk
   artifact store off the exact same strings the in-memory caches use,
   so a store key distinguishes precisely what the session caches
   distinguish (recipe, run name, plan, target override, injection). *)
let cache_key ?name ?(plan = Plan.identity) ?target_mhz ?inject t ~recipe =
  let _, netlist_name = effective_names ?name t ~recipe in
  let tuning = tuning_key ~target_mhz ~inject in
  compile_key ~netlist_name ~plan ~tuning recipe

let session_name t = t.ss_name
let session_device t = t.ss_device

let run_exn ?name ?plan ?target_mhz ?inject t ~recipe =
  (compiled_exn ?name ?plan ?target_mhz ?inject t ~recipe).co_result

let run ?name ?plan ?target_mhz ?inject t ~recipe =
  match run_exn ?name ?plan ?target_mhz ?inject t ~recipe with
  | r -> Ok r
  | exception Diag.Diagnostic d -> Error d

(* ---------------- observability ---------------- *)

let stage_runs t =
  List.filter_map
    (fun s ->
      let n = stage_name s in
      Option.map (fun c -> (n, c)) (Hashtbl.find_opt t.ss_counts n))
    stages

let last_run t =
  let recorded = List.rev t.ss_last in
  List.map
    (fun s ->
      match List.find_opt (fun r -> r.sr_stage = s) recorded with
      | Some r -> r
      | None -> { sr_stage = s; sr_status = Skipped; sr_ms = 0. })
    stages

let diagnostics t = List.rev t.ss_diags

let status_label = function
  | Ran -> "ran"
  | Cached -> "cached"
  | Skipped -> "skipped"
  | Failed -> "FAILED"

let explain t =
  let tbl =
    Table.create
      ~headers:
        [
          ("stage", Table.Left);
          ("status", Table.Left);
          ("time", Table.Right);
          ("what", Table.Left);
        ]
  in
  List.iter
    (fun r ->
      Table.add_row tbl
        [
          stage_name r.sr_stage;
          status_label r.sr_status;
          (if r.sr_status = Ran || r.sr_status = Failed then
             Printf.sprintf "%.1f ms" r.sr_ms
           else "-");
          describe r.sr_stage;
        ])
    (last_run t);
  let buf = Buffer.create 512 in
  Buffer.add_string buf (Table.render tbl);
  (match diagnostics t with
  | [] -> ()
  | ds ->
    Buffer.add_string buf "\ndiagnostics:\n";
    List.iter
      (fun d -> Buffer.add_string buf ("  " ^ Diag.to_string d ^ "\n"))
      ds);
  Buffer.contents buf

(* ---------------- artifact dumps ---------------- *)

let dump_extension = function
  | Transform -> "c"
  | Elaborate | Place | Sta | Report -> "json"
  | Classify | Schedule -> "txt"
  | Lower | Sync -> "dot"

let dataflow_to_json df =
  Json.Obj
    [
      ( "processes",
        Json.List
          (Array.to_list (Dataflow.processes df)
          |> List.map (fun (p : Dataflow.process) ->
               Json.Obj
                 [
                   ("name", Json.Str p.Dataflow.p_name);
                   ( "latency",
                     match p.Dataflow.p_latency with
                     | None -> Json.Null
                     | Some l -> Json.Int l );
                   ( "kernel",
                     match p.Dataflow.p_kernel with
                     | None -> Json.Null
                     | Some k -> Json.Str k.Kernel.name );
                 ])) );
      ( "channels",
        Json.List
          (Array.to_list (Dataflow.channels df)
          |> List.map (fun (c : Dataflow.channel) ->
               Json.Obj
                 [
                   ("name", Json.Str c.Dataflow.c_name);
                   ("src", Json.Int c.Dataflow.c_src);
                   ("dst", Json.Int c.Dataflow.c_dst);
                   ("depth", Json.Int c.Dataflow.c_depth);
                 ])) );
      ( "sync_groups",
        Json.List
          (List.map
             (fun g -> Json.List (List.map (fun p -> Json.Int p) g))
             (Dataflow.sync_groups df)) );
    ]

let timing_to_json (r : Timing.report) =
  Json.Obj
    [
      ("critical_ns", Json.Float r.Timing.critical_ns);
      ("fmax_mhz", Json.Float r.Timing.fmax_mhz);
      ("worst_net_fanout", Json.Int r.Timing.worst_net_fanout);
      ( "path",
        Json.List
          (List.map
             (fun (st : Timing.path_step) ->
               Json.Obj
                 [
                   ("cell", Json.Str st.Timing.ps_cell_name);
                   ("arrival_ns", Json.Float st.Timing.ps_arrival);
                   ( "via_net",
                     match st.Timing.ps_via_net with
                     | None -> Json.Null
                     | Some n -> Json.Int n );
                 ])
             r.Timing.path) );
    ]

let dump_after ?name ?(plan = Plan.identity) t ~recipe stage =
  let render () =
    match stage with
    | Transform -> (
      match transformed t ~recipe ~plan with
      | Some p -> Ast.to_source p
      | None ->
        "/* IR-level session: no source program to transform (source plans \
         apply to hlsbc cc sessions) */\n")
    | Elaborate ->
      let df = elaborate ~plan t ~recipe in
      Json.to_string ~minify:false (dataflow_to_json df) ^ "\n"
    | Classify -> Classify.to_string (classify_report ~plan t)
    | Schedule ->
      let df = elaborate ~plan t ~recipe in
      let scheds = scheduled ~plan t ~recipe df in
      let buf = Buffer.create 1024 in
      Array.iteri
        (fun p sched ->
          match sched with
          | None -> ()
          | Some sched ->
            Buffer.add_string buf
              (Printf.sprintf "== process %d: %s ==\n"
                 p (Dataflow.process df p).Dataflow.p_name);
            Buffer.add_string buf (Sched_report.to_string sched))
        scheds;
      Buffer.contents buf
    | Lower ->
      (* a fresh datapath: the cached design's netlist already carries the
         sync controllers, and this dump is specifically the pre-sync view *)
      let df = elaborate ~plan t ~recipe in
      let scheds = scheduled ~plan t ~recipe df in
      let _, netlist_name = effective_names ?name t ~recipe in
      let dp =
        exec t ~recipe Lower (fun () ->
          Design.lower_processes ~device:t.ss_device ~recipe ~name:netlist_name
            df scheds)
      in
      Export.to_dot dp.Design.dp_netlist
    | Sync ->
      let c = compiled_exn ?name ~plan t ~recipe in
      Export.to_dot c.co_design.Design.netlist
    | Place ->
      let c = compiled_exn ?name ~plan t ~recipe in
      Json.to_string ~minify:false
        (Json.Obj
           [
             ("cells", Json.Int (Netlist.n_cells c.co_design.Design.netlist));
             ("nets", Json.Int (Netlist.n_nets c.co_design.Design.netlist));
             ("max_extent", Json.Float (Placement.max_extent c.co_placement));
             ( "overlap_free",
               Json.Bool (Placement.overlap_free c.co_placement) );
           ])
      ^ "\n"
    | Sta ->
      let c = compiled_exn ?name ~plan t ~recipe in
      Json.to_string ~minify:false (timing_to_json c.co_timing) ^ "\n"
    | Report ->
      let c = compiled_exn ?name ~plan t ~recipe in
      Json.to_string ~minify:false (result_to_json c.co_result) ^ "\n"
  in
  match render () with
  | text -> Ok text
  | exception Diag.Diagnostic d -> Error d
