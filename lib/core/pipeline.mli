(** The staged compile pipeline: the flow as an explicit list of named
    stages ([elaborate], [classify], [schedule], [lower], [sync],
    [place], [sta], [report]), each a function between typed stage
    artifacts carried in a compile {!session}, each wrapped in a
    telemetry span and per-stage run counters, and each reporting
    failures as structured diagnostics ({!Hlsb_util.Diag.t}) instead of
    letting [Invalid_argument]/[Failure] escape from deep inside rtlgen.

    A session caches upstream artifacts keyed by the inputs that
    actually affect them: elaboration is shared by every compile of the
    session, scheduling is shared between recipes that agree on
    [sched_mode], and a (recipe, name) pair that was already compiled is
    served entirely from cache. Compiling the same design under
    [Style.original] and [Style.optimized] — or sweeping buffer sizes
    over recipes, as the Fig-19 driver does — therefore elaborates once
    instead of once per recipe point.

    [Flow.compile]/[compile_spec]/[compile_kernel] remain as thin
    compatibility wrappers with byte-identical results (asserted by the
    staged-vs-legacy equivalence tests). *)

module Diag = Hlsb_util.Diag

(** {1 Stages} *)

type stage =
  | Transform
      (** source-to-source transform plan (unroll / partition / fission /
          fusion / stream insertion), {!Hlsb_transform.Plan.t}-keyed *)
  | Elaborate  (** build + validate the dataflow network *)
  | Classify  (** source-level broadcast classification (on demand) *)
  | Schedule  (** per-kernel chaining-aware scheduling *)
  | Lower  (** netlist emission + channel wiring *)
  | Sync  (** synchronization controllers *)
  | Place  (** placement onto the device grid *)
  | Sta  (** static timing analysis *)
  | Report  (** utilization + result record assembly *)

val stages : stage list
(** In execution order. *)

val stage_name : stage -> string
val stage_of_name : string -> stage option
val describe : stage -> string

(** {1 Results} *)

type result = {
  fr_label : string;
  fr_recipe : Hlsb_ctrl.Style.recipe;
  fr_fmax_mhz : float;
  fr_critical_ns : float;
  fr_lut_pct : float;
  fr_ff_pct : float;
  fr_bram_pct : float;
  fr_dsp_pct : float;
  fr_design : Hlsb_rtlgen.Design.t;
  fr_timing : Hlsb_physical.Timing.report;
}
(** The compile result record ([Flow.result] is an alias of this type). *)

val result_to_json : result -> Hlsb_telemetry.Json.t

val finish :
  name:string -> Hlsb_rtlgen.Design.t -> Hlsb_physical.Timing.report -> result
(** The [report] stage body: utilization + record assembly (shared with
    the legacy [Flow] wrappers so both paths emit identical records and
    metrics). *)

(** {1 Sessions} *)

type session

val create :
  ?target_mhz:float ->
  device:Hlsb_device.Device.t ->
  name:string ->
  build:(unit -> Hlsb_ir.Dataflow.t) ->
  unit ->
  session

val of_program :
  ?target_mhz:float ->
  ?top:string ->
  device:Hlsb_device.Device.t ->
  name:string ->
  Hlsb_frontend.Ast.program ->
  session
(** Session over a parsed source program — the [hlsbc cc] entry point.
    Each compile may carry a transform {!Hlsb_transform.Plan.t}: the
    [transform] stage applies its source items (cached per canonical plan
    key), elaboration then runs [Frontend.design_of_program] on the
    transformed program (plus the IR-level channel-reuse pass when the
    plan asks for it). The identity plan compiles exactly what
    [Frontend.design_of_string] would. *)

val of_spec : ?target_mhz:float -> Hlsb_designs.Spec.t -> session
(** Session elaborating the benchmark on its paper-designated device. *)

val of_kernel :
  ?target_mhz:float -> device:Hlsb_device.Device.t -> Hlsb_ir.Kernel.t -> session
(** Single-kernel session. Matches [Flow.compile_kernel] naming: the
    netlist is named [<kernel>_<recipe label>] per run, the result label
    after the kernel alone. *)

val cache_key :
  ?name:string ->
  ?plan:Hlsb_transform.Plan.t ->
  ?target_mhz:float ->
  ?inject:Hlsb_sched.Schedule.inject ->
  session ->
  recipe:Hlsb_ctrl.Style.recipe ->
  string
(** The exact key {!run} files its compiled artifact under in the
    session cache — recipe label, effective design name, canonical plan
    string, and the tuning suffix (target override + injection), with
    the defaulted axes rendering as empty so untuned keys match the
    pre-explorer spelling byte for byte. The compile daemon derives its
    on-disk content-addressed store keys from this same string (plus the
    device fingerprint and input identity), which is what makes a
    daemon store hit equivalent to an in-session cache hit. *)

val session_name : session -> string
val session_device : session -> Hlsb_device.Device.t
(** The session's design name and target device, for callers (the
    compile service) that persist session artifacts externally. *)

val run :
  ?name:string ->
  ?plan:Hlsb_transform.Plan.t ->
  ?target_mhz:float ->
  ?inject:Hlsb_sched.Schedule.inject ->
  session ->
  recipe:Hlsb_ctrl.Style.recipe ->
  (result, Diag.t) Stdlib.result
(** Compile under [recipe], reusing every cached artifact the recipe
    permits. [?name] overrides the design name for this run only (the
    Fig-19 sweep labels each recipe point); it keys the downstream
    artifact cache together with the recipe. [?plan] (default identity)
    selects the transform variant to compile: every artifact cache is
    additionally keyed by the plan's canonical string, so recompiling a
    plan hits cache end to end while a new plan shares nothing
    downstream of the source. A plan with source items on an IR-level
    session fails with a stage-["transform"] diagnostic.

    [?target_mhz] overrides the session's schedule target for this run
    only and [?inject] forces extra distribution registers on the
    widest-read values ({!Hlsb_sched.Schedule.inject}) — the explorer's
    two tuning axes. Both join the schedule and compile cache keys, and
    both default to [None], under which every key is byte-identical to
    an untuned run (the staged-vs-legacy equivalence tests rely on
    this). No [Invalid_argument] or [Failure] escapes: malformed inputs
    surface as [Error d] with stage and entity names. *)

val run_exn :
  ?name:string ->
  ?plan:Hlsb_transform.Plan.t ->
  ?target_mhz:float ->
  ?inject:Hlsb_sched.Schedule.inject ->
  session ->
  recipe:Hlsb_ctrl.Style.recipe ->
  result
(** [run], raising [Diag.Diagnostic] on error (for drivers that only
    ever compile known-good designs). *)

val classify_report : ?plan:Hlsb_transform.Plan.t -> session -> Classify.report
(** The [classify] stage: cached after the first call (per plan),
    counted in {!stage_runs}. Raises [Diag.Diagnostic] if elaboration
    fails. *)

(** {1 Observability} *)

val stage_runs : session -> (string * int) list
(** Stage name -> number of times its body actually executed over the
    session's lifetime (cache hits do not count), sorted by stage order.
    The two-recipe-session test asserts [elaborate = 1] here. *)

type status = Ran | Cached | Skipped | Failed

type stage_record = {
  sr_stage : stage;
  sr_status : status;
  sr_ms : float;  (** wall-clock of the stage body; 0 unless [Ran] *)
}

val status_label : status -> string
(** ["ran"] | ["cached"] | ["skipped"] | ["FAILED"] — the spelling used
    by {!explain} and by the run-ledger records. *)

val last_run : session -> stage_record list
(** Stage records of the most recent {!run}, in stage order. Stages the
    run never reached (or that only run on demand, like [classify]) are
    reported [Skipped]. *)

val explain : session -> string
(** Per-stage table of the last run (status + timing) followed by any
    diagnostics collected — the payload of [hlsbc compile --explain]. *)

val diagnostics : session -> Diag.t list
(** Every diagnostic the session has collected, oldest first. *)

(** {1 Artifact dumps} *)

val dump_extension : stage -> string
(** ["dot"], ["json"] or ["txt"] — the natural format of each stage's
    artifact dump. *)

val dump_after :
  ?name:string ->
  ?plan:Hlsb_transform.Plan.t ->
  session ->
  recipe:Hlsb_ctrl.Style.recipe ->
  stage ->
  (string, Diag.t) Stdlib.result
(** Render the artifact produced by the given stage under [recipe]:
    transform -> the transformed C source (a comment for IR-level
    sessions); elaborate -> dataflow JSON; classify -> text report;
    schedule -> per-kernel schedule reports; lower -> pre-sync netlist
    DOT; sync -> full netlist DOT; place -> placement summary JSON; sta
    -> timing report JSON; report -> result JSON. Runs (or reuses)
    exactly the stages needed. *)
