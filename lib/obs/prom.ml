module Metrics = Hlsb_telemetry.Metrics

let metric_name ?(prefix = "hlsb_") name =
  let sane =
    String.map
      (fun c ->
        match c with
        | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> c
        | _ -> '_')
      name
  in
  prefix ^ sane

(* Prometheus accepts Go-style float literals; "NaN"/"+Inf" are the
   spec's spellings for the non-finite cases. *)
let float_str v =
  if Float.is_nan v then "NaN"
  else if v = infinity then "+Inf"
  else if v = neg_infinity then "-Inf"
  else if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.17g" v

let of_snapshot ?prefix (s : Metrics.snapshot) =
  let buf = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun l -> Buffer.add_string buf (l ^ "\n")) fmt in
  List.iter
    (fun (k, v) ->
      let n = metric_name ?prefix k in
      line "# TYPE %s counter" n;
      line "%s %d" n v)
    s.Metrics.sn_counters;
  List.iter
    (fun (k, v) ->
      let n = metric_name ?prefix k in
      line "# TYPE %s gauge" n;
      line "%s %s" n (float_str v))
    s.Metrics.sn_gauges;
  List.iter
    (fun (k, (h : Metrics.hist_snap)) ->
      let n = metric_name ?prefix k in
      line "# TYPE %s histogram" n;
      let cum = ref 0 in
      Array.iteri
        (fun i b ->
          cum := !cum + h.Metrics.hs_counts.(i);
          line "%s_bucket{le=\"%s\"} %d" n (float_str b) !cum)
        h.Metrics.hs_buckets;
      line "%s_bucket{le=\"+Inf\"} %d" n h.Metrics.hs_count;
      line "%s_sum %s" n (float_str h.Metrics.hs_sum);
      line "%s_count %d" n h.Metrics.hs_count)
    s.Metrics.sn_hists;
  Buffer.contents buf
