(** Structured, leveled event log.

    Library and CLI code emits events through {!debug}/{!info}/{!warn}/
    {!error} instead of ad-hoc [Printf.eprintf]. Every record carries
    the wall-clock time, the level, the recording domain id, and the id
    of the enclosing telemetry span ({!Hlsb_telemetry.Trace.current_span_id})
    when one is open — so a log line taken during a compile can be
    joined back to the exact pipeline stage that produced it.

    The threshold and format come from the [HLSB_LOG] environment
    variable — a comma-separated mix of a level name ([debug] | [info]
    | [warn] | [error] | [off]) and a format name ([text] | [json]) —
    or from {!set_level}/{!set_format} (the [--log-level] flag). The
    default is [warn,text] on stderr. In [json] format each record is
    one JSON object per line (JSONL):

    {v {"ts":1754556748.123,"level":"info","tid":0,"span":17,
    "msg":"stage sta: 41.3 ms","stage":"sta"} v}

    Below-threshold calls skip both formatting and I/O; emission takes a
    mutex, so records from pool worker domains never interleave. *)

type level = Debug | Info | Warn | Error | Off

val level_name : level -> string
val level_of_string : string -> (level, string) result

type format = Text | Jsonl

(** {1 Configuration} *)

val set_level : level -> unit
val current_level : unit -> level
(** Defaults to the [HLSB_LOG] environment variable, then [Warn]. *)

val set_format : format -> unit

val set_sink : (string -> unit) -> unit
(** Redirect rendered records (one line each, no trailing newline) away
    from stderr — tests and the future daemon use this. *)

val reset_sink : unit -> unit
(** Restore the stderr sink. *)

val would_log : level -> bool
(** True when a record at [level] would be emitted. Use to guard
    expensive attribute construction. *)

(** {1 Emission} *)

val debug : ?attrs:(string * Hlsb_telemetry.Json.t) list -> ('a, unit, string, unit) format4 -> 'a
val info : ?attrs:(string * Hlsb_telemetry.Json.t) list -> ('a, unit, string, unit) format4 -> 'a
val warn : ?attrs:(string * Hlsb_telemetry.Json.t) list -> ('a, unit, string, unit) format4 -> 'a
val error : ?attrs:(string * Hlsb_telemetry.Json.t) list -> ('a, unit, string, unit) format4 -> 'a

val parse_spec : string -> (level option * format option, string) result
(** Parse an [HLSB_LOG]-style spec ("debug", "info,json", "json", ...).
    Exposed for the CLI flag and tests. *)

val env_var : string
(** ["HLSB_LOG"]. *)
