module Json = Hlsb_telemetry.Json
module Metrics = Hlsb_telemetry.Metrics
module Table = Hlsb_util.Table
module Ledger = Ledger

let ms_str ms =
  if ms >= 1000. then Printf.sprintf "%.2f s" (ms /. 1000.)
  else Printf.sprintf "%.1f ms" ms

let time_str epoch_s =
  let tm = Unix.gmtime epoch_s in
  Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02dZ" (tm.Unix.tm_year + 1900)
    (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min
    tm.Unix.tm_sec

let opt_str = Option.value ~default:"-"

(* Rebuild a metrics snapshot from the record's JSON so the quantile
   estimator can run on a run loaded back from disk. *)
let snapshot_of_json j =
  let counters =
    match Json.member "counters" j with
    | Some (Json.Obj fields) ->
      List.filter_map
        (fun (k, v) -> match v with Json.Int i -> Some (k, i) | _ -> None)
        fields
    | _ -> []
  in
  let gauges =
    match Json.member "gauges" j with
    | Some (Json.Obj fields) ->
      List.filter_map
        (fun (k, v) ->
          match v with
          | Json.Float f -> Some (k, f)
          | Json.Int i -> Some (k, float_of_int i)
          | _ -> None)
        fields
    | _ -> []
  in
  let num = function
    | Json.Float f -> Some f
    | Json.Int i -> Some (float_of_int i)
    | _ -> None
  in
  let hists =
    match Json.member "histograms" j with
    | Some (Json.Obj fields) ->
      List.filter_map
        (fun (k, h) ->
          match (Json.member "buckets" h, Json.member "counts" h) with
          | Some (Json.List bs), Some (Json.List cs) ->
            let buckets = Array.of_list (List.filter_map num bs) in
            let counts =
              Array.of_list
                (List.filter_map
                   (function Json.Int i -> Some i | _ -> None)
                   cs)
            in
            if Array.length counts = Array.length buckets + 1 then
              Some
                ( k,
                  {
                    Metrics.hs_buckets = buckets;
                    hs_counts = counts;
                    hs_count =
                      (match Json.member "count" h with
                      | Some (Json.Int c) -> c
                      | _ -> Array.fold_left ( + ) 0 counts);
                    hs_sum =
                      Option.value ~default:nan
                        (Option.bind (Json.member "sum" h) num);
                    hs_min =
                      Option.value ~default:nan
                        (Option.bind (Json.member "min" h) num);
                    hs_max =
                      Option.value ~default:nan
                        (Option.bind (Json.member "max" h) num);
                  } )
            else None
          | _ -> None)
        fields
    | _ -> []
  in
  {
    Metrics.sn_counters = counters;
    sn_gauges = gauges;
    sn_hists = hists;
  }

let snapshot_of_run (run : Ledger.run) =
  Option.map snapshot_of_json run.Ledger.r_metrics

(* ---- report ---- *)

let stage_table (run : Ledger.run) =
  let total = Ledger.total_ms run in
  let tbl =
    Table.create
      ~headers:
        [
          ("stage", Table.Left);
          ("status", Table.Left);
          ("time", Table.Right);
          ("share", Table.Right);
        ]
  in
  List.iter
    (fun (st : Ledger.stage_ms) ->
      Table.add_row tbl
        [
          st.Ledger.st_name;
          st.Ledger.st_status;
          (if st.Ledger.st_status = "ran" || st.Ledger.st_status = "FAILED"
           then ms_str st.Ledger.st_ms
           else "-");
          (if st.Ledger.st_status = "ran" && total > 0. then
             Printf.sprintf "%.0f%%" (100. *. st.Ledger.st_ms /. total)
           else "-");
        ])
    run.Ledger.r_stages;
  Table.add_rule tbl;
  Table.add_row tbl [ "total"; ""; ms_str total; "" ];
  Table.render tbl

let report ?(top = 12) (run : Ledger.run) =
  let buf = Buffer.create 2048 in
  let line fmt = Printf.ksprintf (fun l -> Buffer.add_string buf (l ^ "\n")) fmt in
  line "run %s" run.Ledger.r_id;
  line "  time:   %s" (time_str run.Ledger.r_time_s);
  line "  cmd:    %s%s" run.Ledger.r_cmd
    (if run.Ledger.r_label <> "" then "  (" ^ run.Ledger.r_label ^ ")" else "");
  line "  git:    %s" (opt_str run.Ledger.r_git_rev);
  line "  device: %s  recipe: %s"
    (opt_str run.Ledger.r_device)
    (opt_str run.Ledger.r_recipe);
  line "  jobs:   %d (cores %d)" run.Ledger.r_jobs run.Ledger.r_cores;
  if run.Ledger.r_stages <> [] then begin
    line "";
    Buffer.add_string buf (stage_table run)
  end;
  if run.Ledger.r_results <> [] then begin
    line "";
    line "designs:";
    List.iter
      (fun r ->
        line "  %-40s %s%s"
          (Ledger.result_label r)
          (match Ledger.result_fmax r with
          | Some f -> Printf.sprintf "%6.1f MHz" f
          | None -> "     ?")
          (match Ledger.result_critical_ns r with
          | Some c -> Printf.sprintf "  (%.2f ns)" c
          | None -> ""))
      run.Ledger.r_results
  end;
  if run.Ledger.r_cache <> [] then begin
    line "";
    line "cache traffic:";
    List.iter
      (fun (k, v) -> line "  %-32s %10d" k v)
      run.Ledger.r_cache
  end;
  (match run.Ledger.r_metrics with
  | None -> ()
  | Some m ->
    let snap = snapshot_of_json m in
    if snap.Metrics.sn_counters <> [] then begin
      line "";
      line "top counters:";
      snap.Metrics.sn_counters
      |> List.sort (fun (_, a) (_, b) -> compare b a)
      |> List.filteri (fun i _ -> i < top)
      |> List.iter (fun (k, v) -> line "  %-32s %10d" k v)
    end;
    if snap.Metrics.sn_hists <> [] then begin
      line "";
      line "histograms (p50 / p95 / p99):";
      snap.Metrics.sn_hists
      |> List.filteri (fun i _ -> i < top)
      |> List.iter (fun (k, h) ->
           line "  %-32s n=%-8d %8.1f %8.1f %8.1f" k h.Metrics.hs_count
             (Metrics.quantile h 0.50) (Metrics.quantile h 0.95)
             (Metrics.quantile h 0.99))
    end);
  Buffer.contents buf

let summary_line (run : Ledger.run) =
  Printf.sprintf "%-28s %-20s %-10s %10s  %s" run.Ledger.r_id
    (time_str run.Ledger.r_time_s) run.Ledger.r_cmd
    (ms_str (Ledger.total_ms run))
    run.Ledger.r_label

(* ---- diff ---- *)

let assoc_stage name (run : Ledger.run) =
  List.find_opt (fun (st : Ledger.stage_ms) -> st.Ledger.st_name = name)
    run.Ledger.r_stages

let stage_names a b =
  let names (r : Ledger.run) =
    List.map (fun (st : Ledger.stage_ms) -> st.Ledger.st_name) r.Ledger.r_stages
  in
  (* keep [a]'s order, then anything only [b] has *)
  names a @ List.filter (fun n -> not (List.mem n (names a))) (names b)

let ratio_str base cur =
  if base > 0. then Printf.sprintf "%.2fx" (cur /. base) else "-"

let diff (a : Ledger.run) (b : Ledger.run) =
  let buf = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun l -> Buffer.add_string buf (l ^ "\n")) fmt in
  line "A: %s  (%s, %s)" a.Ledger.r_id (time_str a.Ledger.r_time_s)
    a.Ledger.r_cmd;
  line "B: %s  (%s, %s)" b.Ledger.r_id (time_str b.Ledger.r_time_s)
    b.Ledger.r_cmd;
  (match (a.Ledger.r_git_rev, b.Ledger.r_git_rev) with
  | Some ra, Some rb when ra <> rb -> line "git: %s -> %s" ra rb
  | _ -> ());
  line "";
  let tbl =
    Table.create
      ~headers:
        [
          ("stage", Table.Left);
          ("A", Table.Right);
          ("B", Table.Right);
          ("delta", Table.Right);
          ("ratio", Table.Right);
        ]
  in
  List.iter
    (fun name ->
      let cell r =
        match assoc_stage name r with
        | Some st when st.Ledger.st_status = "ran" -> Some st.Ledger.st_ms
        | _ -> None
      in
      match (cell a, cell b) with
      | Some ma, Some mb ->
        Table.add_row tbl
          [
            name;
            ms_str ma;
            ms_str mb;
            Printf.sprintf "%+.1f ms" (mb -. ma);
            ratio_str ma mb;
          ]
      | Some ma, None -> Table.add_row tbl [ name; ms_str ma; "-"; "-"; "-" ]
      | None, Some mb -> Table.add_row tbl [ name; "-"; ms_str mb; "-"; "-" ]
      | None, None -> ())
    (stage_names a b);
  let ta = Ledger.total_ms a and tb = Ledger.total_ms b in
  Table.add_rule tbl;
  Table.add_row tbl
    [
      "total";
      ms_str ta;
      ms_str tb;
      Printf.sprintf "%+.1f ms" (tb -. ta);
      ratio_str ta tb;
    ];
  Buffer.add_string buf (Table.render tbl);
  (* Fmax side-by-side for designs both runs compiled *)
  let fmax_pairs =
    List.filter_map
      (fun ra ->
        let la = Ledger.result_label ra in
        List.find_opt (fun rb -> Ledger.result_label rb = la)
          b.Ledger.r_results
        |> Option.map (fun rb -> (la, Ledger.result_fmax ra, Ledger.result_fmax rb)))
      a.Ledger.r_results
  in
  if fmax_pairs <> [] then begin
    line "";
    line "fmax:";
    List.iter
      (fun (label, fa, fb) ->
        match (fa, fb) with
        | Some fa, Some fb ->
          line "  %-40s %6.1f -> %6.1f MHz  (%+.1f)" label fa fb (fb -. fa)
        | _ -> ())
      fmax_pairs
  end;
  Buffer.contents buf

(* ---- regress ---- *)

type verdict = {
  v_ok : bool;
  v_failures : string list;
  v_table : string;
}

let regress ?(min_ms = 1.0) ~(baseline : Ledger.run) ~(current : Ledger.run)
    ~max_slowdown_pct () =
  let limit = 1. +. (max_slowdown_pct /. 100.) in
  let failures = ref [] in
  let fail fmt = Printf.ksprintf (fun m -> failures := m :: !failures) fmt in
  let tbl =
    Table.create
      ~headers:
        [
          ("stage", Table.Left);
          ("baseline", Table.Right);
          ("current", Table.Right);
          ("ratio", Table.Right);
          ("limit", Table.Right);
          ("verdict", Table.Left);
        ]
  in
  let check_row name base cur =
    let ratio = if base > 0. then cur /. base else 1. in
    let breach = base >= min_ms && ratio > limit in
    Table.add_row tbl
      [
        name;
        ms_str base;
        ms_str cur;
        Printf.sprintf "%.2fx" ratio;
        (if base >= min_ms then Printf.sprintf "%.2fx" limit else "(skip)");
        (if base < min_ms then "ignored" else if breach then "REGRESSED" else "ok");
      ];
    if breach then
      fail "stage %s regressed: %.1f ms -> %.1f ms (%.2fx > %.2fx)" name base
        cur ratio limit
  in
  let compared = ref 0 in
  List.iter
    (fun name ->
      match (assoc_stage name baseline, assoc_stage name current) with
      | Some b, Some c
        when b.Ledger.st_status = "ran" && c.Ledger.st_status = "ran" ->
        incr compared;
        check_row name b.Ledger.st_ms c.Ledger.st_ms
      | _ -> ())
    (stage_names baseline current);
  (* A baseline with stage timings and no overlap with the current run
     means the wrong runs are being compared (e.g. a fuzz record against
     a compile baseline) — an OK verdict there would be vacuous. *)
  if !compared = 0 && baseline.Ledger.r_stages <> [] then
    fail "no stage ran in both runs (baseline cmd %S, current cmd %S)"
      baseline.Ledger.r_cmd current.Ledger.r_cmd;
  let tb = Ledger.total_ms baseline and tc = Ledger.total_ms current in
  if tb > 0. then begin
    Table.add_rule tbl;
    check_row "total" tb tc
  end;
  (* Fmax: deterministic model output, so any drop beyond the margin on a
     shared design is a real quality regression, not machine noise. *)
  List.iter
    (fun rb ->
      let label = Ledger.result_label rb in
      match
        List.find_opt (fun rc -> Ledger.result_label rc = label)
          current.Ledger.r_results
      with
      | None -> ()
      | Some rc -> (
        match (Ledger.result_fmax rb, Ledger.result_fmax rc) with
        | Some fb, Some fc when fb > 0. ->
          if fc < fb /. limit then
            fail "fmax of %s dropped: %.1f -> %.1f MHz (more than %.0f%%)"
              label fb fc max_slowdown_pct
        | _ -> ()))
    baseline.Ledger.r_results;
  {
    v_ok = !failures = [];
    v_failures = List.rev !failures;
    v_table = Table.render tbl;
  }
