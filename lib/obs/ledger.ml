module Json = Hlsb_telemetry.Json
module Pool = Hlsb_util.Pool

let schema = "hlsb-run/1"
let env_var = "HLSB_LEDGER"
let default_path = Filename.concat ".hlsb" "ledger.jsonl"

type stage_ms = { st_name : string; st_status : string; st_ms : float }

type run = {
  r_id : string;
  r_time_s : float;
  r_cmd : string;
  r_label : string;
  r_git_rev : string option;
  r_device : string option;
  r_fingerprint : string option;
  r_recipe : string option;
  r_jobs : int;
  r_cores : int;
  r_stages : stage_ms list;
  r_results : Json.t list;
  r_cache : (string * int) list;
  r_metrics : Json.t option;
}

(* ---- git rev, without a subprocess ---- *)

let read_file path =
  match open_in_bin path with
  | exception Sys_error _ -> None
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> Some (really_input_string ic (in_channel_length ic)))

let first_line s =
  match String.index_opt s '\n' with
  | Some i -> String.sub s 0 i
  | None -> s

let rec find_git_dir dir =
  let cand = Filename.concat dir ".git" in
  if Sys.file_exists cand then
    (* worktrees store "gitdir: PATH" in a plain .git file *)
    if Sys.is_directory cand then Some cand
    else
      Option.bind (read_file cand) (fun text ->
        let line = String.trim (first_line text) in
        if String.starts_with ~prefix:"gitdir:" line then
          Some
            (String.trim
               (String.sub line 7 (String.length line - 7)))
        else None)
  else
    let parent = Filename.dirname dir in
    if parent = dir then None else find_git_dir parent

let resolve_ref git_dir refname =
  let direct = Filename.concat git_dir refname in
  match read_file direct with
  | Some text -> Some (String.trim (first_line text))
  | None -> (
    (* packed refs: "HASH refs/heads/main" lines *)
    match read_file (Filename.concat git_dir "packed-refs") with
    | None -> None
    | Some text ->
      String.split_on_char '\n' text
      |> List.find_map (fun line ->
           match String.index_opt line ' ' with
           | Some i
             when String.sub line (i + 1) (String.length line - i - 1)
                  = refname ->
             Some (String.sub line 0 i)
           | _ -> None))

let git_rev () =
  match find_git_dir (Sys.getcwd ()) with
  | None -> None
  | Some git_dir -> (
    match read_file (Filename.concat git_dir "HEAD") with
    | None -> None
    | Some head -> (
      let head = String.trim (first_line head) in
      if String.starts_with ~prefix:"ref:" head then
        let refname =
          String.trim (String.sub head 4 (String.length head - 4))
        in
        resolve_ref git_dir refname
      else if head <> "" then Some head
      else None))

(* ---- record assembly ---- *)

let fresh_id ~cmd time_s =
  (* ms-resolution time + pid: unique enough to name a run across the
     processes that can realistically share one ledger. *)
  Printf.sprintf "%s-%010x-%04x" cmd
    (Int64.to_int (Int64.rem (Int64.of_float (time_s *. 1000.)) 0xff_ffff_ffffL))
    (Unix.getpid () land 0xffff)

let make ?git_rev:(rev = git_rev ()) ?device ?fingerprint ?recipe
    ?(stages = []) ?(results = []) ?(cache = []) ?metrics ~cmd ~label () =
  let time_s = Unix.gettimeofday () in
  {
    r_id = fresh_id ~cmd time_s;
    r_time_s = time_s;
    r_cmd = cmd;
    r_label = label;
    r_git_rev = rev;
    r_device = device;
    r_fingerprint = fingerprint;
    r_recipe = recipe;
    r_jobs = Pool.default_jobs ();
    r_cores = Domain.recommended_domain_count ();
    r_stages = stages;
    r_results = results;
    r_cache = List.sort (fun (a, _) (b, _) -> compare a b) cache;
    r_metrics = metrics;
  }

let total_ms run =
  List.fold_left
    (fun acc st -> if st.st_status = "ran" then acc +. st.st_ms else acc)
    0. run.r_stages

let result_label j =
  match Json.member "label" j with Some (Json.Str s) -> s | _ -> "?"

let member_float name j =
  match Json.member name j with
  | Some (Json.Float f) -> Some f
  | Some (Json.Int i) -> Some (float_of_int i)
  | _ -> None

let result_fmax j = member_float "fmax_mhz" j
let result_critical_ns j = member_float "critical_ns" j

(* ---- JSON codec ---- *)

let opt_str = function None -> Json.Null | Some s -> Json.Str s

let to_json r =
  Json.Obj
    [
      ("schema", Json.Str schema);
      ("id", Json.Str r.r_id);
      ("time_unix_s", Json.Float r.r_time_s);
      ("cmd", Json.Str r.r_cmd);
      ("label", Json.Str r.r_label);
      ("git_rev", opt_str r.r_git_rev);
      ("device", opt_str r.r_device);
      ("device_fingerprint", opt_str r.r_fingerprint);
      ("recipe", opt_str r.r_recipe);
      ("jobs", Json.Int r.r_jobs);
      ("cores", Json.Int r.r_cores);
      ( "stages",
        Json.List
          (List.map
             (fun st ->
               Json.Obj
                 [
                   ("stage", Json.Str st.st_name);
                   ("status", Json.Str st.st_status);
                   ("ms", Json.Float st.st_ms);
                 ])
             r.r_stages) );
      ("results", Json.List r.r_results);
      ("cache", Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) r.r_cache));
      ( "metrics",
        match r.r_metrics with None -> Json.Null | Some m -> m );
    ]

let str_member name j =
  match Json.member name j with Some (Json.Str s) -> Some s | _ -> None

let int_member name j =
  match Json.member name j with Some (Json.Int i) -> Some i | _ -> None

let of_json j =
  match Json.member "schema" j with
  | Some (Json.Str s) when s = schema ->
    let stages =
      match Json.member "stages" j with
      | Some (Json.List items) ->
        List.filter_map
          (fun it ->
            match (str_member "stage" it, str_member "status" it) with
            | Some name, Some status ->
              Some
                {
                  st_name = name;
                  st_status = status;
                  st_ms = Option.value ~default:0. (member_float "ms" it);
                }
            | _ -> None)
          items
      | _ -> []
    in
    let results =
      match Json.member "results" j with
      | Some (Json.List items) -> items
      | _ -> []
    in
    let cache =
      match Json.member "cache" j with
      | Some (Json.Obj fields) ->
        List.filter_map
          (fun (k, v) -> match v with Json.Int i -> Some (k, i) | _ -> None)
          fields
      | _ -> []
    in
    Ok
      {
        r_id = Option.value ~default:"?" (str_member "id" j);
        r_time_s = Option.value ~default:0. (member_float "time_unix_s" j);
        r_cmd = Option.value ~default:"?" (str_member "cmd" j);
        r_label = Option.value ~default:"" (str_member "label" j);
        r_git_rev = str_member "git_rev" j;
        r_device = str_member "device" j;
        r_fingerprint = str_member "device_fingerprint" j;
        r_recipe = str_member "recipe" j;
        r_jobs = Option.value ~default:1 (int_member "jobs" j);
        r_cores = Option.value ~default:1 (int_member "cores" j);
        r_stages = stages;
        r_results = results;
        r_cache = cache;
        r_metrics =
          (match Json.member "metrics" j with
          | None | Some Json.Null -> None
          | Some m -> Some m);
      }
  | Some (Json.Str other) ->
    Error (Printf.sprintf "unexpected schema %S (want %s)" other schema)
  | _ -> Error "missing schema field"

(* ---- the on-disk ledger ---- *)

let ambient_path () =
  match Sys.getenv_opt env_var with
  | Some "" | Some "off" | Some "OFF" | Some "0" -> None
  | Some p -> Some p
  | None -> Some default_path

let enabled () = ambient_path () <> None

let rec mkdir_p dir =
  if dir <> "" && dir <> "/" && dir <> "." && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Sys.mkdir dir 0o755 with Sys_error _ -> ()
  end

(* Opt-in durability for daemon mode: a long-running compile service is
   exactly the process whose ledger survives crashes, so it can ask for
   an fsync per record. Everything else keeps the cheap default. *)
let sync_env_var = "HLSB_LEDGER_SYNC"

let sync_requested () =
  match Sys.getenv_opt sync_env_var with
  | Some ("1" | "true" | "on" | "yes") -> true
  | _ -> false

(* One locked single-buffer write per record: the advisory lock
   serializes concurrent writers (same guarantee Cal_cache gets from
   write-then-rename, adapted to an append-only file) and the whole
   line goes down in one [Unix.write]. A short or failed write used to
   leave a torn line for every later reader to skip — now the file is
   truncated back to its pre-append length (we still hold the lock, and
   O_APPEND writes land at the end, so the recorded length is exact)
   and the append is reported as failed instead of half-published. *)
let append_line ?(sync = sync_requested ()) ~path line =
  mkdir_p (Filename.dirname path);
  match
    Unix.openfile path [ Unix.O_WRONLY; Unix.O_APPEND; Unix.O_CREAT ] 0o644
  with
  | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
  | fd ->
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () ->
        match Unix.lockf fd Unix.F_LOCK 0 with
        | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
        | () ->
          Fun.protect
            ~finally:(fun () ->
              try Unix.lockf fd Unix.F_ULOCK 0 with Unix.Unix_error _ -> ())
            (fun () ->
              let b = Bytes.unsafe_of_string line in
              let len = Bytes.length b in
              let before = (Unix.fstat fd).Unix.st_size in
              let rollback () =
                try Unix.ftruncate fd before with Unix.Unix_error _ -> ()
              in
              match Unix.write fd b 0 len with
              | n when n = len ->
                if sync then (
                  match Unix.fsync fd with
                  | () -> Ok path
                  | exception Unix.Unix_error (e, _, _) ->
                    Error (Unix.error_message e))
                else Ok path
              | n ->
                rollback ();
                Error (Printf.sprintf "short write (%d of %d bytes)" n len)
              | exception Unix.Unix_error (e, _, _) ->
                rollback ();
                Error (Unix.error_message e)))

let append ?path ?sync run =
  match (path, ambient_path ()) with
  | None, None -> Error "ledger disabled (HLSB_LEDGER=off)"
  | Some p, _ | None, Some p ->
    append_line ?sync ~path:p (Json.to_string (to_json run) ^ "\n")

let load ~path =
  if not (Sys.file_exists path) then Ok []
  else
    match read_file path with
    | None -> Error (Printf.sprintf "cannot read %s" path)
    | Some text ->
      Ok
        (String.split_on_char '\n' text
        |> List.filter_map (fun line ->
             if String.trim line = "" then None
             else
               match Json.of_string line with
               | Error _ -> None
               | Ok j -> (
                 match of_json j with Ok r -> Some r | Error _ -> None)))

let resolve runs ref_ =
  let n = List.length runs in
  let nth_opt i = if i >= 0 && i < n then Some (List.nth runs i) else None in
  let by_index i =
    (* positive: 1-based from the oldest; negative: from the newest *)
    if i > 0 then nth_opt (i - 1) else if i < 0 then nth_opt (n + i) else None
  in
  let back k =
    (* "last~k": k steps back from the newest, dash-free so it survives
       option parsing as a positional argument *)
    match nth_opt (n - 1 - k) with
    | Some r -> Ok r
    | None ->
      Error
        (Printf.sprintf "last~%d out of range (%d run(s) in ledger)" k n)
  in
  if n = 0 then Error "ledger is empty"
  else
    match String.lowercase_ascii ref_ with
    | "last" | "latest" -> Ok (List.nth runs (n - 1))
    | low
      when String.starts_with ~prefix:"last~" low
           && int_of_string_opt
                (String.sub low 5 (String.length low - 5))
              <> None ->
      back (int_of_string (String.sub low 5 (String.length low - 5)))
    | _ -> (
      match int_of_string_opt ref_ with
      | Some i -> (
        match by_index i with
        | Some r -> Ok r
        | None ->
          Error
            (Printf.sprintf "run index %d out of range (%d run(s) in ledger)"
               i n))
      | None -> (
        match
          List.filter (fun r -> String.starts_with ~prefix:ref_ r.r_id) runs
        with
        | [ r ] -> Ok r
        | [] -> Error (Printf.sprintf "no run with id prefix %S" ref_)
        | _ :: _ -> Error (Printf.sprintf "run id prefix %S is ambiguous" ref_)))
