(** Prometheus text-format exposition (version 0.0.4) of a metrics
    snapshot, so the coming [hlsbd] daemon can scrape itself: counters
    become [counter] families, gauges [gauge], and bucketed histograms
    full [histogram] families with cumulative [le] buckets, [_sum] and
    [_count]. Metric names are sanitized ([sched.broadcast_factor] ->
    [hlsb_sched_broadcast_factor]). *)

val metric_name : ?prefix:string -> string -> string
(** Sanitize a registry name into a legal Prometheus metric name:
    characters outside [[a-zA-Z0-9_:]] become ['_'], and [?prefix]
    (default ["hlsb_"]) is prepended. *)

val of_snapshot : ?prefix:string -> Hlsb_telemetry.Metrics.snapshot -> string
(** The full exposition: one [# TYPE] line per family, samples in
    snapshot (alphabetical) order, histograms with cumulative buckets
    ending at [le="+Inf"]. Non-finite values render as Prometheus'
    [NaN]/[+Inf]/[-Inf] literals. *)
