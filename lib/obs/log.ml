module Json = Hlsb_telemetry.Json
module Trace = Hlsb_telemetry.Trace

type level = Debug | Info | Warn | Error | Off

let level_name = function
  | Debug -> "debug"
  | Info -> "info"
  | Warn -> "warn"
  | Error -> "error"
  | Off -> "off"

let level_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "debug" -> Ok Debug
  | "info" -> Ok Info
  | "warn" | "warning" -> Ok Warn
  | "error" -> Ok Error
  | "off" | "none" -> Ok Off
  | other -> Error (Printf.sprintf "unknown log level %S" other)

(* Numeric rank for threshold comparison; [Off] outranks everything so
   nothing passes it. *)
let rank = function Debug -> 0 | Info -> 1 | Warn -> 2 | Error -> 3 | Off -> 4

type format = Text | Jsonl

let env_var = "HLSB_LOG"

let parse_spec s : (level option * format option, string) result =
  let tokens =
    String.split_on_char ',' s
    |> List.map String.trim
    |> List.filter (( <> ) "")
  in
  List.fold_left
    (fun (acc : (level option * format option, string) result) tok ->
      match acc with
      | (Stdlib.Error _ : (_, string) result) as e -> e
      | Stdlib.Ok (lvl, fmt) -> (
        match String.lowercase_ascii tok with
        | "json" | "jsonl" -> Stdlib.Ok (lvl, Some Jsonl)
        | "text" -> Stdlib.Ok (lvl, Some Text)
        | _ -> (
          match level_of_string tok with
          | Stdlib.Ok l -> Stdlib.Ok (Some l, fmt)
          | Stdlib.Error e -> Stdlib.Error e)))
    (Stdlib.Ok (None, None))
    tokens

(* Ambient configuration from HLSB_LOG, read once. A malformed spec must
   not take the process down (it is environment, not a flag): fall back
   to the defaults silently — there is no log to complain into yet. *)
let env_level, env_format =
  match Sys.getenv_opt env_var with
  | None -> (None, None)
  | Some s -> ( match parse_spec s with Ok lf -> lf | Error _ -> (None, None))

let threshold = Atomic.make (Option.value ~default:Warn env_level)
let fmt = Atomic.make (Option.value ~default:Text env_format)

let set_level l = Atomic.set threshold l
let current_level () = Atomic.get threshold
let set_format f = Atomic.set fmt f

let stderr_sink line =
  output_string stderr (line ^ "\n");
  flush stderr

let sink = Atomic.make stderr_sink
let set_sink f = Atomic.set sink f
let reset_sink () = Atomic.set sink stderr_sink

let would_log level =
  level <> Off && rank level >= rank (Atomic.get threshold)

(* Emission is serialized so records from pool worker domains never
   interleave mid-line on a shared sink. *)
let emit_lock = Mutex.create ()

let render_text level ~attrs msg =
  let attr_s =
    match attrs with
    | [] -> ""
    | a ->
      " ["
      ^ String.concat ", "
          (List.map (fun (k, v) -> k ^ "=" ^ Json.to_string v) a)
      ^ "]"
  in
  Printf.sprintf "hlsb %-5s %s%s" (level_name level) msg attr_s

let render_json level ~attrs msg =
  let span =
    match Trace.current_span_id () with
    | None -> Json.Null
    | Some id -> Json.Int id
  in
  Json.to_string
    (Json.Obj
       (("ts", Json.Float (Unix.gettimeofday ()))
        :: ("level", Json.Str (level_name level))
        :: ("tid", Json.Int (Domain.self () :> int))
        :: ("span", span)
        :: ("msg", Json.Str msg)
        :: attrs))

let emit level ~attrs msg =
  let line =
    match Atomic.get fmt with
    | Text -> render_text level ~attrs msg
    | Jsonl -> render_json level ~attrs msg
  in
  Mutex.lock emit_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock emit_lock)
    (fun () -> (Atomic.get sink) line)

let logf level ?(attrs = []) f =
  if would_log level then Printf.ksprintf (fun msg -> emit level ~attrs msg) f
  else Printf.ikfprintf (fun () -> ()) () f

let debug ?attrs f = logf Debug ?attrs f
let info ?attrs f = logf Info ?attrs f
let warn ?attrs f = logf Warn ?attrs f
let error ?attrs f = logf Error ?attrs f
