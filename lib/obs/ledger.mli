(** The persistent run ledger: one versioned [hlsb-run/1] JSON record
    per compile / characterization / fuzz / bench invocation, appended
    to an append-only JSONL file so runs from different processes (and
    different days) can be compared, diffed, and gated on.

    The ledger is the durable complement of [Hlsb_telemetry]: spans and
    counters die with the process; the record assembled from them —
    per-stage wall-clock from [Core.Pipeline.last_run], the full metrics
    snapshot, cache hit/miss traffic, per-design Fmax — survives in
    [.hlsb/ledger.jsonl] and feeds [hlsbc obs report|diff|regress].

    Resolution of the ledger path: the [HLSB_LEDGER] environment
    variable ([off] or the empty string disables the ledger entirely; a
    path names the file), else [.hlsb/ledger.jsonl] under the current
    directory. When disabled, callers are expected to skip record
    assembly too ({!enabled}), so the compile path pays nothing.

    Appends serialize under an advisory file lock and go down as one
    [write] of the fully-assembled line — the append-only analog of
    [Cal_cache]'s write-then-rename discipline — so concurrent writers
    never interleave records. A short or failed write is rolled back by
    truncating the file to its pre-append length (the lock is still
    held), so a failed append leaves no torn line behind; what malformed
    lines can still arise (a crash between write and truncate, hand
    editing) are skipped on load, never fatal. Daemon mode can
    additionally opt into one [fsync] per record with
    [HLSB_LEDGER_SYNC=1], making each acknowledged record durable. *)

module Json = Hlsb_telemetry.Json

val schema : string
(** ["hlsb-run/1"]. *)

val env_var : string
(** ["HLSB_LEDGER"]. *)

type stage_ms = {
  st_name : string;  (** pipeline stage or bench section name *)
  st_status : string;  (** "ran" | "cached" | "skipped" | "FAILED" *)
  st_ms : float;  (** wall-clock of the stage body; 0 unless ran *)
}

type run = {
  r_id : string;  (** unique-enough: time + pid *)
  r_time_s : float;  (** unix epoch seconds at assembly *)
  r_cmd : string;  (** compile | cc | profile | fuzz | bench | ... *)
  r_label : string;
  r_git_rev : string option;  (** HEAD commit of the enclosing checkout *)
  r_device : string option;
  r_fingerprint : string option;  (** device timing-model fingerprint *)
  r_recipe : string option;  (** recipe hash ([Style.label]) *)
  r_jobs : int;
  r_cores : int;
  r_stages : stage_ms list;
  r_results : Json.t list;  (** per-design compile result records *)
  r_cache : (string * int) list;  (** cache hit/miss counters, sorted *)
  r_metrics : Json.t option;  (** full [Metrics.to_json] snapshot *)
}

val make :
  ?git_rev:string option ->
  ?device:string ->
  ?fingerprint:string ->
  ?recipe:string ->
  ?stages:stage_ms list ->
  ?results:Json.t list ->
  ?cache:(string * int) list ->
  ?metrics:Json.t ->
  cmd:string ->
  label:string ->
  unit ->
  run
(** Assemble a record: stamps the id and time, resolves the git rev from
    the working directory (unless [?git_rev] overrides it), and fills
    jobs/cores from the ambient pool configuration. *)

val total_ms : run -> float
(** Sum of the ["ran"] stages' wall-clock. *)

val result_label : Json.t -> string
val result_fmax : Json.t -> float option
val result_critical_ns : Json.t -> float option
(** Accessors into the per-design result records. *)

val to_json : run -> Json.t
val of_json : Json.t -> (run, string) result
(** Tolerant parse: unknown fields are ignored; a wrong or missing
    ["schema"] is an error. *)

(** {1 The on-disk ledger} *)

val enabled : unit -> bool
(** False when [HLSB_LEDGER] is [off] or empty — callers skip record
    assembly entirely, so a disabled ledger costs nothing. *)

val ambient_path : unit -> string option
(** The resolved ledger file, [None] when disabled. *)

val default_path : string
(** [".hlsb/ledger.jsonl"] — what [hlsbc obs] reads when [HLSB_LEDGER]
    is unset or disabled and no [--ledger] flag is given. *)

val sync_env_var : string
(** ["HLSB_LEDGER_SYNC"] — set to [1]/[true]/[on]/[yes] to fsync after
    every appended record (the daemon sets this for its own appends). *)

val append : ?path:string -> ?sync:bool -> run -> (string, string) result
(** Append one record (creating the directory and file as needed) and
    return the path written. [Error] carries the system message; ledger
    failures must never take a compile down, so callers log and move
    on. [?path] overrides the ambient resolution (tests, [--ledger]);
    [?sync] overrides the [HLSB_LEDGER_SYNC] resolution. *)

val load : path:string -> (run list, string) result
(** All well-formed records, oldest first. Malformed lines are skipped.
    A missing file is [Ok []]; an unreadable one is [Error]. *)

val git_rev : unit -> string option
(** HEAD commit hash of the checkout enclosing the current directory
    (plain read of [.git], no subprocess). *)

val resolve : run list -> string -> (run, string) result
(** Resolve a run reference against a ledger, for the CLI: ["last"] or
    [-1] is the newest record, [-2] the one before, ["last~1"] a
    dash-free spelling of [-2] (so it parses as a positional argument),
    [1] the oldest, and any other string matches by id prefix
    (ambiguity is an error). *)
