(** Analysis over ledger records: the renderers behind
    [hlsbc obs report | diff | regress].

    [report] shows one run: header, per-stage time tree, per-design
    Fmax, cache traffic, and the top metrics (counters by value,
    histograms with p50/p95/p99 from {!Hlsb_telemetry.Metrics.quantile}).

    [diff] puts two runs side by side, stage by stage.

    [regress] is the perf-regression sentinel: the current run fails
    against a baseline when any comparable stage (or the total) is more
    than [max_slowdown_pct] percent slower, or any shared design's Fmax
    drops by more than the same margin. Stages below [min_ms] in the
    baseline are ignored — sub-millisecond stages are timer noise, not
    signal. *)

module Ledger = Ledger

val report : ?top:int -> Ledger.run -> string
(** [?top] bounds the number of metric counters/histograms shown
    (default 12). *)

val summary_line : Ledger.run -> string
(** One line per run for [hlsbc obs list]: id, age, cmd, label, total. *)

val snapshot_of_run : Ledger.run -> Hlsb_telemetry.Metrics.snapshot option
(** Rebuild a metrics snapshot from the record's embedded
    [Metrics.to_json] payload (so quantiles and Prometheus exposition
    work on runs loaded back from disk). [None] when the record carries
    no metrics. *)

val diff : Ledger.run -> Ledger.run -> string

type verdict = {
  v_ok : bool;
  v_failures : string list;  (** one human-readable line per breach *)
  v_table : string;  (** the full comparison table *)
}

val regress :
  ?min_ms:float ->
  baseline:Ledger.run ->
  current:Ledger.run ->
  max_slowdown_pct:float ->
  unit ->
  verdict
(** [min_ms] defaults to 1.0. A stage is compared only when it ran in
    both runs and its baseline time is at least [min_ms]. *)
