(** Crash- and concurrency-safe whole-file writes, shared by every
    on-disk store in the tree ([Hlsb_delay.Cal_cache], the compile
    service's artifact store).

    The contract is write-then-rename: the payload goes to a temporary
    file in the destination directory and is renamed over the target, so
    readers only ever observe a complete file. The temporary name embeds
    the process id, the domain id, and a random suffix — two *processes*
    (a daemon and a stray CLI invocation) or two domains writing the
    same target concurrently each use distinct temp paths, so neither
    can publish the other's half-written bytes. (The previous
    [Cal_cache] scheme keyed the temp name on the domain id alone, which
    collides across processes: both sides open the same [.tmp.0] file
    and the slower writer renames a torn mixture into place.) *)

val write : path:string -> string -> (unit, string) result
(** Atomically replace [path] with the given bytes (creating parent
    directories as needed). On success the rename has happened; on
    [Error msg] the target is untouched and the temporary file has been
    removed. Concurrent writers of the same [path] serialize at the
    rename: the last rename wins with a complete file either way. *)

val write_exn : path:string -> string -> unit
(** [write], raising [Sys_error] on failure. *)

val mkdir_p : string -> unit
(** Create a directory and its parents; existing directories are fine.
    Races with concurrent creators are benign. *)

val read : string -> string option
(** Whole-file read; [None] if the file cannot be opened. *)

val temp_suffix : unit -> string
(** The collision-resistant suffix used for temp names:
    ["<pid>.<domain>.<random hex>"]. Exposed for the concurrency tests,
    which assert two processes never produce the same suffix. *)
