(* Domain-based work pool for independent, deterministic tasks.

   Results are returned in input order no matter how work is interleaved
   across domains, so [map f a] is observably identical to [Array.map f a]
   for pure [f] at any job count.  Job count resolution, in priority order:
   an explicit [?jobs] argument, [set_default_jobs], the [HLSB_JOBS]
   environment variable, then [Domain.recommended_domain_count].

   Nested calls (a task that itself calls [map]) run sequentially in the
   calling worker rather than spawning a second tier of domains, which
   bounds the total domain count at [jobs] regardless of call depth. *)

let env_var = "HLSB_JOBS"

let override : int option Atomic.t = Atomic.make None

let set_default_jobs n =
  if n < 1 then invalid_arg "Pool.set_default_jobs: jobs < 1";
  Atomic.set override (Some n)

let env_jobs () =
  match Sys.getenv_opt env_var with
  | None -> None
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 -> Some n
    | _ -> None)

let default_jobs () =
  match Atomic.get override with
  | Some n -> n
  | None -> (
    match env_jobs () with
    | Some n -> n
    | None -> max 1 (Domain.recommended_domain_count ()))

(* True inside a pool worker domain: used to degrade nested maps to
   sequential execution. *)
let in_worker : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

let sequential_map f arr = Array.map f arr

let map ?jobs f arr =
  let n = Array.length arr in
  let jobs =
    let j = match jobs with Some j -> max 1 j | None -> default_jobs () in
    min j n
  in
  if jobs <= 1 || n <= 1 || Domain.DLS.get in_worker then sequential_map f arr
  else begin
    let results = Array.make n None in
    let error = Atomic.make None in
    let next = Atomic.make 0 in
    let body () =
      let continue = ref true in
      while !continue do
        let i = Atomic.fetch_and_add next 1 in
        if i >= n || Atomic.get error <> None then continue := false
        else
          match f arr.(i) with
          | v -> results.(i) <- Some v
          | exception e -> ignore (Atomic.compare_and_set error None (Some e))
      done
    in
    let worker () =
      Domain.DLS.set in_worker true;
      body ()
    in
    let domains = Array.init (jobs - 1) (fun _ -> Domain.spawn worker) in
    (* The calling domain is the [jobs]-th worker; it is not flagged as one
       so a task running here may still see ambient per-domain state. *)
    (try body () with e -> ignore (Atomic.compare_and_set error None (Some e)));
    Array.iter Domain.join domains;
    match Atomic.get error with
    | Some e -> raise e
    | None ->
      Array.map (function Some v -> v | None -> assert false) results
  end

let mapi ?jobs f arr =
  map ?jobs (fun (i, x) -> f i x) (Array.mapi (fun i x -> (i, x)) arr)

let map_list ?jobs f xs = Array.to_list (map ?jobs f (Array.of_list xs))

let iter ?jobs f arr = ignore (map ?jobs (fun x -> f x) arr)
