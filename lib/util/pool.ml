(* Persistent domain-based work pool for independent, deterministic tasks.

   Results are returned in input order no matter how work is interleaved
   across domains, so [map f a] is observably identical to [Array.map f a]
   for pure [f] at any job count.  Job count resolution, in priority order:
   an explicit [?jobs] argument, [set_default_jobs], the [HLSB_JOBS]
   environment variable, then [Domain.recommended_domain_count].

   Worker domains are spawned once and reused across every [map] call:
   spawn-per-batch scheduling was measurably a pessimization (each spawn
   pays domain setup plus a minor-heap, and a fan-out of small batches pays
   it over and over).  Workers block on a condition variable between
   batches, so an idle pool costs nothing.  Work is handed out in index
   chunks rather than one element at a time, bounding contention on the
   shared cursor to O(jobs) instead of O(n).

   Nested calls (a task that itself calls [map], on a worker or on the
   calling domain while a map is in flight) run sequentially rather than
   deadlocking on the busy workers or spawning a second tier of domains,
   which bounds the total domain count at [jobs] regardless of call
   depth. *)

let env_var = "HLSB_JOBS"

let override : int option Atomic.t = Atomic.make None

let set_default_jobs n =
  if n < 1 then invalid_arg "Pool.set_default_jobs: jobs < 1";
  Atomic.set override (Some n)

let parse_jobs s =
  match int_of_string_opt (String.trim s) with
  | Some n when n >= 1 -> Ok n
  | Some n -> Error (Printf.sprintf "job count must be >= 1, got %d" n)
  | None -> Error (Printf.sprintf "not an integer: %S" s)

(* A malformed HLSB_JOBS must not take the whole run down (it is ambient
   environment, not an explicit flag), and silently guessing a parallel
   job count would be worse: degrade to sequential and say so, once. *)
let env_warned = Atomic.make false

let env_jobs () =
  match Sys.getenv_opt env_var with
  | None -> None
  | Some s -> (
    match parse_jobs s with
    | Ok n -> Some n
    | Error why ->
      if not (Atomic.exchange env_warned true) then
        prerr_endline
          (Diag.to_string
             (Diag.warning ~stage:"pool"
                (Printf.sprintf "ignoring %s=%S (%s); running with 1 job"
                   env_var s why)));
      Some 1)

let hw_jobs () = max 1 (Domain.recommended_domain_count ())

(* The ambient default is capped at the hardware core count: OCaml 5 minor
   collections synchronize every running domain, so oversubscribing domains
   beyond cores pays stop-the-world scheduling latency per GC with no
   parallelism to gain (measured ~1.8x at 2 domains on 1 core). An explicit
   [?jobs] at a call site is taken as an instruction and honored as
   given. *)
let default_jobs () =
  let requested =
    match Atomic.get override with
    | Some n -> n
    | None -> ( match env_jobs () with Some n -> n | None -> hw_jobs ())
  in
  min requested (hw_jobs ())

(* True inside a pool worker domain: used to degrade nested maps to
   sequential execution. *)
let in_worker : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

(* True on the calling domain while one of its maps is in flight: a nested
   map from a task running on the caller must not try to reuse the (busy)
   persistent workers. *)
let in_map : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

let sequential_map f arr = Array.map f arr

(* ---- persistent workers ---- *)

type worker = {
  w_mutex : Mutex.t;
  w_cond : Condition.t;
  mutable w_job : (unit -> unit) option;  (* guarded by [w_mutex] *)
  mutable w_busy : bool;  (* guarded by [w_mutex] *)
  mutable w_quit : bool;  (* guarded by [w_mutex] *)
  mutable w_domain : unit Domain.t option;
}

(* Jobs are wrapped so they never raise (map bodies capture exceptions into
   a shared cell); the [try] here is a last-resort guard that keeps a
   misbehaving job from killing the worker loop. *)
let worker_loop w () =
  Domain.DLS.set in_worker true;
  let rec loop () =
    Mutex.lock w.w_mutex;
    let rec await () =
      if w.w_quit then None
      else
        match w.w_job with
        | Some f -> Some f
        | None ->
          Condition.wait w.w_cond w.w_mutex;
          await ()
    in
    match await () with
    | None -> Mutex.unlock w.w_mutex
    | Some f ->
      w.w_busy <- true;
      Mutex.unlock w.w_mutex;
      (try f () with _ -> ());
      Mutex.lock w.w_mutex;
      w.w_job <- None;
      w.w_busy <- false;
      Condition.broadcast w.w_cond;
      Mutex.unlock w.w_mutex;
      loop ()
  in
  loop ()

let new_worker () =
  let w =
    {
      w_mutex = Mutex.create ();
      w_cond = Condition.create ();
      w_job = None;
      w_busy = false;
      w_quit = false;
      w_domain = None;
    }
  in
  w.w_domain <- Some (Domain.spawn (worker_loop w));
  w

let workers : worker list ref = ref []
let workers_mutex = Mutex.create ()
let shutdown_registered = ref false  (* guarded by [workers_mutex] *)

(* Only one map at a time hands work to the shared workers; a concurrent
   top-level map from another domain falls back to sequential execution
   instead of blocking. *)
let pool_busy = Atomic.make false

let shutdown () =
  Mutex.lock workers_mutex;
  let ws = !workers in
  workers := [];
  Mutex.unlock workers_mutex;
  List.iter
    (fun w ->
      Mutex.lock w.w_mutex;
      w.w_quit <- true;
      Condition.broadcast w.w_cond;
      Mutex.unlock w.w_mutex)
    ws;
  List.iter
    (fun w -> match w.w_domain with Some d -> Domain.join d | None -> ())
    ws

(* Grow the pool to [k] workers and return [k] of them. All returned
   workers are idle: jobs are only ever submitted under [pool_busy], and
   every submitter waits for its workers before releasing it. *)
let acquire k =
  Mutex.lock workers_mutex;
  if not !shutdown_registered then begin
    shutdown_registered := true;
    at_exit shutdown
  end;
  while List.length !workers < k do
    workers := new_worker () :: !workers
  done;
  let ws = List.filteri (fun i _ -> i < k) !workers in
  Mutex.unlock workers_mutex;
  ws

let submit w f =
  Mutex.lock w.w_mutex;
  w.w_job <- Some f;
  Condition.broadcast w.w_cond;
  Mutex.unlock w.w_mutex

let wait_idle w =
  Mutex.lock w.w_mutex;
  while w.w_busy || w.w_job <> None do
    Condition.wait w.w_cond w.w_mutex
  done;
  Mutex.unlock w.w_mutex

(* ---- parallel map ---- *)

(* A few chunks per worker: large enough that the shared cursor is touched
   O(jobs) times, small enough that an unlucky slow chunk still leaves work
   for the other domains to steal. *)
let chunk_for ~n ~jobs = max 1 (n / (jobs * 4))

let map ?jobs f arr =
  let n = Array.length arr in
  let jobs =
    let j = match jobs with Some j -> max 1 j | None -> default_jobs () in
    min j n
  in
  if jobs <= 1 || n <= 1 || Domain.DLS.get in_worker || Domain.DLS.get in_map
  then sequential_map f arr
  else if not (Atomic.compare_and_set pool_busy false true) then
    sequential_map f arr
  else
    Fun.protect
      ~finally:(fun () -> Atomic.set pool_busy false)
      (fun () ->
        Domain.DLS.set in_map true;
        Fun.protect
          ~finally:(fun () -> Domain.DLS.set in_map false)
          (fun () ->
            let results = Array.make n None in
            let error = Atomic.make None in
            let next = Atomic.make 0 in
            let chunk = chunk_for ~n ~jobs in
            let body () =
              let continue = ref true in
              while !continue do
                let start = Atomic.fetch_and_add next chunk in
                if start >= n || Atomic.get error <> None then continue := false
                else begin
                  let stop = min n (start + chunk) in
                  let i = ref start in
                  while !i < stop && Atomic.get error = None do
                    (match f arr.(!i) with
                    | v -> results.(!i) <- Some v
                    | exception e ->
                      ignore (Atomic.compare_and_set error None (Some e)));
                    incr i
                  done
                end
              done
            in
            let ws = acquire (jobs - 1) in
            List.iter (fun w -> submit w body) ws;
            (* The calling domain is the [jobs]-th worker; it is not flagged
               as one so a task running here may still see ambient
               per-domain state. *)
            (try body ()
             with e -> ignore (Atomic.compare_and_set error None (Some e)));
            List.iter wait_idle ws;
            match Atomic.get error with
            | Some e -> raise e
            | None ->
              Array.map (function Some v -> v | None -> assert false) results))

let mapi ?jobs f arr =
  map ?jobs (fun (i, x) -> f i x) (Array.mapi (fun i x -> (i, x)) arr)

let map_list ?jobs f xs = Array.to_list (map ?jobs f (Array.of_list xs))

let iter ?jobs f arr = ignore (map ?jobs (fun x -> f x) arr)
