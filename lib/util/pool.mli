(** Domain-based work pool for independent, deterministic tasks.

    Results come back in input order no matter how work interleaves across
    domains, so [map f a] is observably identical to [Array.map f a] for
    pure [f] at any job count. Job count resolution, in priority order: an
    explicit [?jobs] argument, {!set_default_jobs}, the [HLSB_JOBS]
    environment variable, then [Domain.recommended_domain_count].

    Worker domains are spawned once, kept parked on a condition variable
    between batches, and reused by every subsequent [map]; work is claimed
    in index chunks so contention on the shared cursor is O(jobs), not
    O(n).

    Nested calls (a task that itself calls [map]) run sequentially inside
    the calling worker rather than spawning a second tier of domains, which
    bounds the total domain count at [jobs] regardless of call depth. *)

val env_var : string
(** ["HLSB_JOBS"] — overrides the default job count when set to an integer
    >= 1. A malformed value (non-integer, or < 1) is reported once as a
    diagnostic on stderr and treated as 1. *)

val parse_jobs : string -> (int, string) result
(** Parse a job count as accepted via [HLSB_JOBS]: an integer >= 1,
    surrounding whitespace ignored. The error case carries a
    human-readable reason. *)

val set_default_jobs : int -> unit
(** Process-wide default job count (e.g. from a [--jobs] flag). Takes
    precedence over [HLSB_JOBS]. Raises [Invalid_argument] if [n < 1]. *)

val default_jobs : unit -> int
(** The job count used when [?jobs] is omitted: the requested default
    ({!set_default_jobs}, then [HLSB_JOBS], then the core count), capped at
    [Domain.recommended_domain_count] — OCaml 5 minor collections
    synchronize every running domain, so oversubscribing domains beyond
    cores costs stop-the-world latency per GC with nothing to gain. An
    explicit [?jobs] argument bypasses the cap (tests rely on exercising
    real multi-domain schedules regardless of the machine). *)

val map : ?jobs:int -> ('a -> 'b) -> 'a array -> 'b array
(** Parallel [Array.map] with deterministic, index-ordered results. Runs
    sequentially when [jobs <= 1], the input has fewer than two elements, or
    the call is nested inside another pool task. If any task raises, one of
    the raised exceptions is re-raised after all domains join. *)

val mapi : ?jobs:int -> (int -> 'a -> 'b) -> 'a array -> 'b array

val map_list : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list

val iter : ?jobs:int -> ('a -> unit) -> 'a array -> unit
