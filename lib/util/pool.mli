(** Domain-based work pool for independent, deterministic tasks.

    Results come back in input order no matter how work interleaves across
    domains, so [map f a] is observably identical to [Array.map f a] for
    pure [f] at any job count. Job count resolution, in priority order: an
    explicit [?jobs] argument, {!set_default_jobs}, the [HLSB_JOBS]
    environment variable, then [Domain.recommended_domain_count].

    Nested calls (a task that itself calls [map]) run sequentially inside
    the calling worker rather than spawning a second tier of domains, which
    bounds the total domain count at [jobs] regardless of call depth. *)

val env_var : string
(** ["HLSB_JOBS"] — overrides the default job count when set to an integer
    >= 1. *)

val set_default_jobs : int -> unit
(** Process-wide default job count (e.g. from a [--jobs] flag). Takes
    precedence over [HLSB_JOBS]. Raises [Invalid_argument] if [n < 1]. *)

val default_jobs : unit -> int
(** The job count used when [?jobs] is omitted. *)

val map : ?jobs:int -> ('a -> 'b) -> 'a array -> 'b array
(** Parallel [Array.map] with deterministic, index-ordered results. Runs
    sequentially when [jobs <= 1], the input has fewer than two elements, or
    the call is nested inside another pool task. If any task raises, one of
    the raised exceptions is re-raised after all domains join. *)

val mapi : ?jobs:int -> (int -> 'a -> 'b) -> 'a array -> 'b array

val map_list : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list

val iter : ?jobs:int -> ('a -> unit) -> 'a array -> unit
