(* Whole-file atomic writes via write-then-rename.

   The temp suffix must differ between any two concurrent writers of the
   same target, across domains AND processes. pid + domain id covers
   every live writer pair except pid reuse after a crash left a stale
   temp file behind; the random component makes that harmless too (the
   stale file is skipped, not appended to: O_EXCL below). *)

let rec mkdir_p dir =
  if
    dir <> "" && dir <> "/" && dir <> "."
    && not (Sys.file_exists dir)
  then begin
    mkdir_p (Filename.dirname dir);
    try Sys.mkdir dir 0o755 with Sys_error _ -> ()
  end

(* Seeded per process from pid + wall clock: forked children and
   re-executed workers draw distinct sequences. Protected by a mutex so
   concurrent domains do not tear the generator state. *)
let rng = lazy (Random.State.make [| Unix.getpid (); int_of_float (Unix.gettimeofday () *. 1e6) |])
let rng_mutex = Mutex.create ()

let random_bits () =
  Mutex.protect rng_mutex (fun () -> Random.State.bits (Lazy.force rng))

let temp_suffix () =
  Printf.sprintf "%d.%d.%08x" (Unix.getpid ())
    (Domain.self () :> int)
    (random_bits () land 0xffff_ffff)

let read path =
  match open_in_bin path with
  | exception Sys_error _ -> None
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> Some (really_input_string ic (in_channel_length ic)))

let write ~path contents =
  mkdir_p (Filename.dirname path);
  (* O_EXCL: a leftover temp file from a crashed writer with the same
     suffix (pid reuse) must not be silently overwritten mid-rename by
     someone else — draw a fresh suffix instead. *)
  let rec open_temp attempts =
    let tmp = Printf.sprintf "%s.tmp.%s" path (temp_suffix ()) in
    match
      Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_EXCL ] 0o644
    with
    | fd -> Ok (tmp, fd)
    | exception Unix.Unix_error (Unix.EEXIST, _, _) when attempts > 0 ->
      open_temp (attempts - 1)
    | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
  in
  match open_temp 8 with
  | Error _ as e -> e
  | Ok (tmp, fd) -> (
    let cleanup () = try Sys.remove tmp with Sys_error _ -> () in
    let written =
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          let b = Bytes.unsafe_of_string contents in
          let len = Bytes.length b in
          let rec write_all off =
            if off >= len then Ok ()
            else
              match Unix.write fd b off (len - off) with
              | n -> write_all (off + n)
              | exception Unix.Unix_error (e, _, _) ->
                Error (Unix.error_message e)
          in
          write_all 0)
    in
    match written with
    | Error msg ->
      cleanup ();
      Error msg
    | Ok () -> (
      match Sys.rename tmp path with
      | () -> Ok ()
      | exception Sys_error msg ->
        cleanup ();
        Error msg))

let write_exn ~path contents =
  match write ~path contents with
  | Ok () -> ()
  | Error msg -> raise (Sys_error (Printf.sprintf "%s: %s" path msg))
