(** Structured compile diagnostics. Passes deep inside the flow report
    failures as a {!t} carrying the pipeline stage that detected the
    problem, a severity, and the offending design entity (kernel,
    channel, net, process), instead of letting a bare
    [Invalid_argument]/[Failure] escape with a context-free string.

    The staged pipeline ([Core.Pipeline]) catches {!Diagnostic} at stage
    boundaries and returns the payload as a [Result]; the legacy
    [Flow.compile]/[Design.generate] entry points let it propagate
    unchanged, so even pre-pipeline callers (and the compile daemon's
    error responses) see the stage and entity rather than a flattened
    [Invalid_argument] string. *)

type severity = Error | Warning

type entity =
  | Kernel of string
  | Channel of string
  | Net of string
  | Process of string
  | Design of string

type t = {
  d_stage : string;  (** pipeline stage that detected the problem *)
  d_severity : severity;
  d_entity : entity option;  (** offending design object, when known *)
  d_message : string;
}

exception Diagnostic of t
(** Structured escape hatch for code deep inside a pass. Raisers use
    {!fail}; stage runners catch it and surface the payload. *)

val error : ?entity:entity -> stage:string -> string -> t
val warning : ?entity:entity -> stage:string -> string -> t

val fail : ?entity:entity -> stage:string -> ('a, unit, string, 'b) format4 -> 'a
(** [fail ~stage fmt ...] raises {!Diagnostic} with an [Error] payload. *)

val entity_label : entity -> string
(** ["kernel foo"], ["channel bar"], ... *)

val severity_label : severity -> string

val to_string : t -> string
(** One-line rendering: [error[stage] channel c: message]. *)
