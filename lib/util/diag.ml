type severity = Error | Warning

type entity =
  | Kernel of string
  | Channel of string
  | Net of string
  | Process of string
  | Design of string

type t = {
  d_stage : string;
  d_severity : severity;
  d_entity : entity option;
  d_message : string;
}

exception Diagnostic of t

let error ?entity ~stage message =
  { d_stage = stage; d_severity = Error; d_entity = entity; d_message = message }

let warning ?entity ~stage message =
  {
    d_stage = stage;
    d_severity = Warning;
    d_entity = entity;
    d_message = message;
  }

let fail ?entity ~stage fmt =
  Printf.ksprintf (fun msg -> raise (Diagnostic (error ?entity ~stage msg))) fmt

let entity_label = function
  | Kernel n -> "kernel " ^ n
  | Channel n -> "channel " ^ n
  | Net n -> "net " ^ n
  | Process n -> "process " ^ n
  | Design n -> "design " ^ n

let severity_label = function Error -> "error" | Warning -> "warning"

let to_string d =
  Printf.sprintf "%s[%s]%s %s"
    (severity_label d.d_severity)
    d.d_stage
    (match d.d_entity with
    | None -> ""
    | Some e -> " " ^ entity_label e ^ ":")
    d.d_message

let () =
  Printexc.register_printer (function
    | Diagnostic d -> Some (to_string d)
    | _ -> None)
