(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation section (printed in the paper's layout, with the paper's
   numbers alongside), then times each experiment driver with Bechamel.

   The whole run is executed under an installed telemetry collector:
   every experiment driver is a span (the single source of truth for the
   per-experiment times printed below), and on exit a machine-readable
   profile is written — a Chrome trace_event file plus a metrics
   snapshot. Set HLSB_PROFILE_DIR to choose the output directory
   (default: current directory); set it to the empty string to skip.

   Sections:
     table1  - Table 1: nine benchmarks, original vs optimized
     table2  - Table 2: 512-wide vector product control variants
     table3  - Table 3: pattern matching optimization steps
     fig9    - delay vs broadcast factor calibration curves
     fig15   - genome case study: estimates and Fmax vs unroll factor
     fig16   - Jacobi super-pipeline: stall vs skid control
     fig17   - per-stage widths + min-area skid buffer DP
     fig19   - stream buffer Fmax vs size, three optimization levels
     ablation- design-choice ablations from DESIGN.md section 8 *)

module Experiments = Core.Experiments
module Trace = Hlsb_telemetry.Trace
module Metrics = Hlsb_telemetry.Metrics
module Json = Hlsb_telemetry.Json

let section title = Printf.printf "\n===== %s =====\n%!" title

(* Span-based timing: the experiment runs inside a span on the installed
   collector, and the printed time is read back from that span. *)
let timed name f =
  let r = Trace.with_span name f in
  (match Trace.installed () with
  | None -> ()
  | Some t -> (
    match List.rev (Trace.find t name) with
    | s :: _ ->
      Printf.printf "[%s completed in %.1fs]\n%!" name
        (Trace.duration_ms s /. 1e3)
    | [] -> ()));
  r

let run_all_experiments () =
  section "Table 1: timing improvements and post-implementation resources";
  let t1 = timed "table1" (fun () -> Experiments.run_table1 ()) in
  print_string (Experiments.render_table1 t1);
  Printf.printf
    "paper: 53%% average frequency gain; measured average: %.0f%%\n"
    (List.fold_left
       (fun acc (r : Experiments.table1_row) ->
         acc
         +. Core.Flow.improvement_pct ~orig:r.Experiments.t1_orig
              ~opt:r.Experiments.t1_opt)
       0. t1
    /. float_of_int (List.length t1));

  section "Table 2: 512-wide vector product (stall / skid / min-area skid)";
  let t2 = timed "table2" (fun () -> Experiments.run_table2 ()) in
  print_string (Experiments.render_variants ~title:"(paper: 195 / 299 / 301 MHz)" t2);

  section "Table 3: pattern matching (original / data opt / data+ctrl opt)";
  let t3 = timed "table3" (fun () -> Experiments.run_table3 ()) in
  print_string (Experiments.render_variants ~title:"(paper: 187 / 208 / 278 MHz)" t3);

  section "Figure 9: delay vs broadcast factor (HLS est / measured / calibrated)";
  let f9 = timed "fig9" (fun () -> Experiments.run_fig9 ()) in
  print_string (Experiments.render_fig9 f9);

  section "Figure 15: genome case study (delay estimates and Fmax vs unroll)";
  let f15 = timed "fig15" (fun () -> Experiments.run_fig15 ()) in
  print_string (Experiments.render_fig15 f15);
  print_string
    "(paper Fig. 15b: HLS schedule degrades with unroll; the broadcast-aware\n\
    \ schedule holds its frequency — orig 264 -> opt 341 MHz at unroll 64)\n";

  section "Figure 16: Jacobi super-pipeline Fmax vs iterations (stall vs skid)";
  let f16 = timed "fig16" (fun () -> Experiments.run_fig16 ()) in
  print_string (Experiments.render_fig16 f16);
  print_string "(paper: stall falls to 120 MHz by 8 iterations; skid holds ~253 MHz)\n";

  section "Figure 17: stage widths and min-area skid buffers (32-wide (a.b)*c)";
  let f17 = timed "fig17" (fun () -> Experiments.run_fig17 ()) in
  print_string (Experiments.render_fig17 f17);
  print_string "(paper: 63488 bits end-only vs 7968 bits split = 8.0x)\n";

  section "Figure 19: stream buffer Fmax vs buffer size";
  let f19 = timed "fig19" (fun () -> Experiments.run_fig19 ()) in
  print_string (Experiments.render_fig19 f19);
  print_string
    "(paper: original collapses with size; only data+ctrl optimization scales)\n";

  section "Ablations (DESIGN.md section 8)";
  let ab = timed "ablation" (fun () -> Experiments.run_ablations ()) in
  print_string (Experiments.render_ablations ab)

(* ---- Bechamel micro-timing of each experiment driver ---- *)

let bechamel_suite () =
  let open Bechamel in
  let open Toolkit in
  section "Bechamel: wall-time of each experiment driver (reduced sizes)";
  let tests =
    Test.make_grouped ~name:"experiments"
      [
        Test.make ~name:"table1_row" (Staged.stage (fun () ->
          ignore (Experiments.run_table1 ~subset:[ "LSTM Network" ] ())));
        Test.make ~name:"table2" (Staged.stage (fun () ->
          ignore (Experiments.run_table2 ~width:64 ())));
        Test.make ~name:"table3" (Staged.stage (fun () ->
          ignore (Experiments.run_table3 ())));
        Test.make ~name:"fig9" (Staged.stage (fun () ->
          ignore (Experiments.run_fig9 ())));
        Test.make ~name:"fig15" (Staged.stage (fun () ->
          ignore (Experiments.run_fig15 ~factors:[ 16 ] ())));
        Test.make ~name:"fig16" (Staged.stage (fun () ->
          ignore (Experiments.run_fig16 ~iterations:[ 1 ] ())));
        Test.make ~name:"fig17" (Staged.stage (fun () ->
          ignore (Experiments.run_fig17 ())));
        Test.make ~name:"fig19" (Staged.stage (fun () ->
          ignore (Experiments.run_fig19 ~sizes:[ 8192 ] ())));
      ]
  in
  let cfg =
    Benchmark.cfg ~limit:8 ~quota:(Time.second 1.0) ~stabilize:false ()
  in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name result ->
      match Analyze.OLS.estimates result with
      | Some [ est ] -> rows := (name, est /. 1e6) :: !rows
      | _ -> ())
    results;
  List.iter
    (fun (name, ms) -> Printf.printf "  %-28s %10.2f ms/run\n" name ms)
    (List.sort compare !rows)

let write_text ~path text =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc text)

let write_profile trace registry =
  match Sys.getenv_opt "HLSB_PROFILE_DIR" with
  | Some "" -> ()
  | dir ->
    let dir = Option.value ~default:"." dir in
    let trace_path = Filename.concat dir "bench-profile.trace.json" in
    let metrics_path = Filename.concat dir "bench-profile.metrics.json" in
    write_text ~path:trace_path
      (Json.to_string (Trace.to_chrome_json ~process_name:"hlsb bench" trace));
    write_text ~path:metrics_path
      (Json.to_string ~minify:false (Metrics.to_json (Metrics.snapshot registry)));
    Printf.printf "profile: %s (chrome://tracing / Perfetto), %s\n" trace_path
      metrics_path

let () =
  Printf.printf
    "Broadcast-aware HLS timing optimization - evaluation reproduction\n\
     (DAC 2020: Analysis and Optimization of the Implicit Broadcasts in\n\
    \ FPGA HLS to Improve Maximum Frequency)\n";
  let trace = Trace.create () in
  let registry = Metrics.create () in
  Trace.with_collector trace (fun () ->
    Metrics.with_registry registry (fun () ->
      Trace.with_span "evaluation" run_all_experiments;
      Trace.with_span "bechamel" bechamel_suite));
  Printf.printf "\nTotal evaluation time: %.1fs\n"
    (Int64.to_float (Trace.total_ns trace) /. 1e9);
  write_profile trace registry
