(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation section (printed in the paper's layout, with the paper's
   numbers alongside), then times each experiment driver with Bechamel.

   The whole run is executed under an installed telemetry collector:
   every experiment driver is a span (the single source of truth for the
   per-experiment times printed below), and on exit a machine-readable
   profile is written — a Chrome trace_event file plus a metrics
   snapshot. Set HLSB_PROFILE_DIR to choose the output directory
   (default: current directory); set it to the empty string to skip.

   Options:
     --jobs N        worker domains for parallel sections (default:
                     HLSB_JOBS, then the core count)
     --only a,b,c    run only the named sections
     --json PATH     append a run record (per-section wall-clock from the
                     telemetry spans, plus calibration-cache counters) to
                     PATH; the file accumulates runs so cold/warm and
                     sequential/parallel runs can sit side by side
     --label STR     free-form label stored in the run record
     --no-bechamel   skip the Bechamel micro-timing pass
     --sweep-jobs 1,2,4
                     scaling self-check: run the selected sections once per
                     job count (fresh trace + metrics each, Bechamel
                     skipped), append one labelled record per run to
                     --json, and print a scaling table; exits non-zero if
                     any parallel run is more than 1.25x the first
                     (baseline) run — run against a warm calibration cache
                     so characterization noise does not drown the signal

   Sections:
     table1  - Table 1: nine benchmarks, original vs optimized
     table2  - Table 2: 512-wide vector product control variants
     table3  - Table 3: pattern matching optimization steps
     fig9    - delay vs broadcast factor calibration curves
     fig15   - genome case study: estimates and Fmax vs unroll factor
     fig16   - Jacobi super-pipeline: stall vs skid control
     fig17   - per-stage widths + min-area skid buffer DP
     fig19   - stream buffer Fmax vs size, three optimization levels
     ablation- design-choice ablations from DESIGN.md section 8
     scale   - wide-arithmetic modular-squaring sweep (up to >100k cells):
               per-stage compile wall-clock, cells/sec, and the
               incremental-STA refresh cost, also exported as
               "scale."-prefixed gauges into the run record and ledger
     explore - search-driven Fmax auto-tuning of two Table-1 designs:
               configurations/sec and session cache reuse, exported as
               "explore."-prefixed gauges into the run record and ledger *)

module Experiments = Core.Experiments
module Explore = Hlsb_explore.Explore
module Explore_experiments = Hlsb_explore.Experiments
module Pool = Hlsb_util.Pool
module Trace = Hlsb_telemetry.Trace
module Metrics = Hlsb_telemetry.Metrics
module Json = Hlsb_telemetry.Json
module Ledger = Hlsb_obs.Ledger

let section title = Printf.printf "\n===== %s =====\n%!" title

(* Span-based timing: the experiment runs inside a span on the installed
   collector, and the printed time is read back from that span. *)
let timed name f =
  let r = Trace.with_span name f in
  (match Trace.installed () with
  | None -> ()
  | Some t -> (
    match List.rev (Trace.find t name) with
    | s :: _ ->
      Printf.printf "[%s completed in %.1fs]\n%!" name
        (Trace.duration_ms s /. 1e3)
    | [] -> ()));
  r

(* Each section is (name, title, body); the body prints its own tables so
   the default full run keeps the paper's layout and ordering. *)
let sections =
  [
    ( "table1",
      "Table 1: timing improvements and post-implementation resources",
      fun () ->
        let t1 = Experiments.run_table1 () in
        print_string (Experiments.render_table1 t1);
        Printf.printf
          "paper: 53%% average frequency gain; measured average: %.0f%%\n"
          (List.fold_left
             (fun acc (r : Experiments.table1_row) ->
               acc
               +. Core.Flow.improvement_pct ~orig:r.Experiments.t1_orig
                    ~opt:r.Experiments.t1_opt)
             0. t1
          /. float_of_int (List.length t1)) );
    ( "table2",
      "Table 2: 512-wide vector product (stall / skid / min-area skid)",
      fun () ->
        print_string
          (Experiments.render_variants ~title:"(paper: 195 / 299 / 301 MHz)"
             (Experiments.run_table2 ())) );
    ( "table3",
      "Table 3: pattern matching (original / data opt / data+ctrl opt)",
      fun () ->
        print_string
          (Experiments.render_variants ~title:"(paper: 187 / 208 / 278 MHz)"
             (Experiments.run_table3 ())) );
    ( "fig9",
      "Figure 9: delay vs broadcast factor (HLS est / measured / calibrated)",
      fun () -> print_string (Experiments.render_fig9 (Experiments.run_fig9 ())) );
    ( "fig15",
      "Figure 15: genome case study (delay estimates and Fmax vs unroll)",
      fun () ->
        print_string (Experiments.render_fig15 (Experiments.run_fig15 ()));
        print_string
          "(paper Fig. 15b: HLS schedule degrades with unroll; the \
           broadcast-aware\n\
          \ schedule holds its frequency — orig 264 -> opt 341 MHz at unroll \
           64)\n" );
    ( "fig16",
      "Figure 16: Jacobi super-pipeline Fmax vs iterations (stall vs skid)",
      fun () ->
        print_string (Experiments.render_fig16 (Experiments.run_fig16 ()));
        print_string
          "(paper: stall falls to 120 MHz by 8 iterations; skid holds ~253 \
           MHz)\n" );
    ( "fig17",
      "Figure 17: stage widths and min-area skid buffers (32-wide (a.b)*c)",
      fun () ->
        print_string (Experiments.render_fig17 (Experiments.run_fig17 ()));
        print_string "(paper: 63488 bits end-only vs 7968 bits split = 8.0x)\n" );
    ( "fig19",
      "Figure 19: stream buffer Fmax vs buffer size",
      fun () ->
        print_string (Experiments.render_fig19 (Experiments.run_fig19 ()));
        print_string
          "(paper: original collapses with size; only data+ctrl optimization \
           scales)\n" );
    ( "ablation",
      "Ablations (DESIGN.md section 8)",
      fun () ->
        print_string (Experiments.render_ablations (Experiments.run_ablations ()))
    );
    ( "scale",
      "Scale: wide-arithmetic workloads through the place/STA hot path",
      fun () ->
        let rows = Experiments.run_scale () in
        print_string (Experiments.render_scale rows);
        (* export as gauges so the run record and the ledger carry the
           compile-throughput numbers machine-readably *)
        List.iter
          (fun (r : Experiments.scale_row) ->
            let g k v =
              Metrics.set_gauge
                (Printf.sprintf "scale.%s.%s" r.Experiments.sc_label k)
                v
            in
            g "cells" (float_of_int r.Experiments.sc_cells);
            g "nets" (float_of_int r.Experiments.sc_nets);
            g "fmax_mhz" r.Experiments.sc_fmax_mhz;
            g "total_ms" r.Experiments.sc_total_ms;
            g "cells_per_sec" r.Experiments.sc_cells_per_sec;
            g "sta_full_ms" r.Experiments.sc_sta_full_ms;
            g "sta_refresh_ms" r.Experiments.sc_sta_refresh_ms;
            g "refreshed_nets" (float_of_int r.Experiments.sc_refreshed_nets);
            List.iter
              (fun (stage, ms) -> g (stage ^ "_ms") ms)
              r.Experiments.sc_stage_ms)
          rows );
    ( "explore",
      "Explore: search-driven Fmax auto-tuning (recipes x injection)",
      fun () ->
        let reports =
          Explore_experiments.run_explore
            ~subset:[ "Vector Arithmetic"; "Pattern Matching" ]
            ~budget:4 ~max_probes:3 ()
        in
        print_string (Explore_experiments.render_explore reports);
        (* run_design already published the explore.* gauges; add the
           search throughput so run records can compare machines *)
        List.iter
          (fun (rp : Explore.report) ->
            if rp.Explore.ep_ms > 0. then
              Metrics.set_gauge
                (Printf.sprintf "explore.%s.configs_per_sec"
                   (Explore.slug rp.Explore.ep_design))
                (1e3
                *. float_of_int (List.length rp.Explore.ep_configs)
                /. rp.Explore.ep_ms))
          reports );
  ]

let run_all_experiments ~only () =
  List.iter
    (fun (name, title, body) ->
      if only = [] || List.mem name only then begin
        section title;
        timed name body
      end)
    sections

(* ---- Bechamel micro-timing of each experiment driver ---- *)

let bechamel_suite () =
  let open Bechamel in
  let open Toolkit in
  section "Bechamel: wall-time of each experiment driver (reduced sizes)";
  let tests =
    Test.make_grouped ~name:"experiments"
      [
        Test.make ~name:"table1_row" (Staged.stage (fun () ->
          ignore (Experiments.run_table1 ~subset:[ "LSTM Network" ] ())));
        Test.make ~name:"table2" (Staged.stage (fun () ->
          ignore (Experiments.run_table2 ~width:64 ())));
        Test.make ~name:"table3" (Staged.stage (fun () ->
          ignore (Experiments.run_table3 ())));
        Test.make ~name:"fig9" (Staged.stage (fun () ->
          ignore (Experiments.run_fig9 ())));
        Test.make ~name:"fig15" (Staged.stage (fun () ->
          ignore (Experiments.run_fig15 ~factors:[ 16 ] ())));
        Test.make ~name:"fig16" (Staged.stage (fun () ->
          ignore (Experiments.run_fig16 ~iterations:[ 1 ] ())));
        Test.make ~name:"fig17" (Staged.stage (fun () ->
          ignore (Experiments.run_fig17 ())));
        Test.make ~name:"fig19" (Staged.stage (fun () ->
          ignore (Experiments.run_fig19 ~sizes:[ 8192 ] ())));
      ]
  in
  let cfg =
    Benchmark.cfg ~limit:8 ~quota:(Time.second 1.0) ~stabilize:false ()
  in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name result ->
      match Analyze.OLS.estimates result with
      | Some [ est ] -> rows := (name, est /. 1e6) :: !rows
      | _ -> ())
    results;
  List.iter
    (fun (name, ms) -> Printf.printf "  %-28s %10.2f ms/run\n" name ms)
    (List.sort compare !rows)

let write_text ~path text =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc text)

let write_profile trace registry =
  match Sys.getenv_opt "HLSB_PROFILE_DIR" with
  | Some "" -> ()
  | dir ->
    let dir = Option.value ~default:"." dir in
    let trace_path = Filename.concat dir "bench-profile.trace.json" in
    let metrics_path = Filename.concat dir "bench-profile.metrics.json" in
    write_text ~path:trace_path
      (Json.to_string (Trace.to_chrome_json ~process_name:"hlsb bench" trace));
    write_text ~path:metrics_path
      (Json.to_string ~minify:false (Metrics.to_json (Metrics.snapshot registry)));
    Printf.printf "profile: %s (chrome://tracing / Perfetto), %s\n" trace_path
      metrics_path

(* ---- Run record: per-section wall-clock appended to a JSON file ---- *)

let section_times trace =
  List.filter_map
    (fun (name, _, _) ->
      match Trace.find trace name with
      | [] -> None
      | spans ->
        let ms =
          List.fold_left (fun acc s -> acc +. Trace.duration_ms s) 0. spans
        in
        Some (name, ms))
    sections

let run_record ~label ~jobs trace registry =
  let snap = Metrics.snapshot registry in
  let counter name =
    List.assoc_opt name snap.Metrics.sn_counters |> Option.value ~default:0
  in
  Json.Obj
    [
      ("label", Json.Str label);
      ("jobs", Json.Int jobs);
      ("effective_jobs", Json.Int (Pool.default_jobs ()));
      ("cores", Json.Int (Domain.recommended_domain_count ()));
      ( "cache_dir",
        match Hlsb_delay.Cal_cache.ambient_dir () with
        | Some d -> Json.Str d
        | None -> Json.Null );
      ( "sections_s",
        Json.Obj
          (List.map (fun (n, ms) -> (n, Json.Float (ms /. 1e3))) (section_times trace)) );
      ("total_s", Json.Float (Int64.to_float (Trace.total_ns trace) /. 1e9));
      ( "calibrate",
        Json.Obj
          [
            ("curve_builds", Json.Int (counter "calibrate.curve_builds"));
            ("cache_hits", Json.Int (counter "calibrate.cache_hits"));
            ("cache_misses", Json.Int (counter "calibrate.cache_misses"));
            ("cache_writes", Json.Int (counter "calibrate.cache_writes"));
          ] );
      ( "pipeline",
        Json.Obj
          (("stage_runs", Json.Int (counter "pipeline.stage_runs"))
           :: ("cache_hits", Json.Int (counter "pipeline.cache_hits"))
           :: ("cache_misses", Json.Int (counter "pipeline.cache_misses"))
           :: List.map
                (fun stage ->
                  let name = Core.Pipeline.stage_name stage in
                  (name, Json.Int (counter ("pipeline.stage_runs." ^ name))))
                Core.Pipeline.stages) );
      ( "scale",
        Json.Obj
          (List.filter_map
             (fun (name, v) ->
               if String.starts_with ~prefix:"scale." name then
                 Some
                   ( String.sub name 6 (String.length name - 6),
                     Json.Float v )
               else None)
             snap.Metrics.sn_gauges) );
      ( "explore",
        Json.Obj
          (List.filter_map
             (fun (name, v) ->
               if String.starts_with ~prefix:"explore." name then
                 Some
                   ( String.sub name 8 (String.length name - 8),
                     Json.Float v )
               else None)
             snap.Metrics.sn_gauges) );
    ]

(* Every bench invocation also leaves one hlsb-run/1 record in the shared
   run ledger (unless HLSB_LEDGER=off): sections become "ran" stages, so
   [hlsbc obs diff/regress] can compare bench passes against compiles and
   against each other. *)
let append_ledger_record ~label trace registry =
  if Ledger.enabled () then begin
    let snap = Metrics.snapshot registry in
    let stages =
      List.map
        (fun (n, ms) -> { Ledger.st_name = n; st_status = "ran"; st_ms = ms })
        (section_times trace)
    in
    let cache =
      List.filter
        (fun (name, _) ->
          String.starts_with ~prefix:"pipeline.cache" name
          || String.starts_with ~prefix:"calibrate." name)
        snap.Metrics.sn_counters
    in
    let record =
      Ledger.make ~stages ~cache ~metrics:(Metrics.to_json snap) ~cmd:"bench"
        ~label ()
    in
    match Ledger.append record with
    | Ok path ->
      Printf.printf "run ledger: appended %s to %s\n" record.Ledger.r_id path
    | Error msg -> Printf.eprintf "run ledger: %s\n" msg
  end

let append_run_record ~path record =
  let existing =
    if Sys.file_exists path then begin
      let ic = open_in_bin path in
      let text =
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      match Json.of_string text with
      | Ok (Json.Obj fields) -> (
        match List.assoc_opt "runs" fields with
        | Some (Json.List runs) -> runs
        | _ -> [])
      | _ -> []
    end
    else []
  in
  let doc =
    Json.Obj
      [
        ("schema", Json.Str "hlsb-bench/1");
        ("runs", Json.List (existing @ [ record ]));
      ]
  in
  write_text ~path (Json.to_string ~minify:false doc ^ "\n");
  Printf.printf "bench record appended to %s\n" path

(* One full pass over the selected sections under a fresh trace + metrics
   registry, so repeated passes (the jobs sweep) never smear into each
   other's timings or counters. *)
let run_suite ~only ~no_bechamel () =
  let trace = Trace.create () in
  let registry = Metrics.create () in
  Trace.with_collector trace (fun () ->
    Metrics.with_registry registry (fun () ->
      Trace.with_span "evaluation" (run_all_experiments ~only);
      if not no_bechamel then Trace.with_span "bechamel" bechamel_suite));
  (trace, registry)

let total_s trace = Int64.to_float (Trace.total_ns trace) /. 1e9

(* The parallel regression guard, runnable locally: the whole point of a
   persistent pool + lock-free calibrate + sharded metrics is that adding
   workers must never make a warm run slower. 1.25x leaves room for
   machine noise (and for 1-core machines, where parallelism can only
   break even) while still catching contention collapses like the 2.2x
   slowdown this check was written against. *)
let sweep_max_ratio = 1.25

let run_sweep ~only ~json_path ~label sweep =
  let base_label = if label <> "" then label else "sweep" in
  let results =
    List.map
      (fun j ->
        Pool.set_default_jobs j;
        let eff = Pool.default_jobs () in
        if eff = j then Printf.printf "\n##### jobs sweep: %d job(s) #####\n%!" j
        else
          Printf.printf
            "\n##### jobs sweep: %d job(s) (capped to %d: machine has %d \
             core(s)) #####\n\
             %!"
            j eff
            (Domain.recommended_domain_count ());
        let trace, registry = run_suite ~only ~no_bechamel:true () in
        let total = total_s trace in
        Printf.printf "\n[jobs=%d total %.2fs]\n%!" j total;
        if json_path <> "" then
          append_run_record ~path:json_path
            (run_record
               ~label:(Printf.sprintf "%s-jobs%d" base_label j)
               ~jobs:j trace registry);
        append_ledger_record
          ~label:(Printf.sprintf "%s-jobs%d" base_label j)
          trace registry;
        (j, total))
      sweep
  in
  match results with
  | [] -> ()
  | (base_jobs, base_total) :: rest ->
    Printf.printf "\n===== scaling (cores: %d) =====\n"
      (Domain.recommended_domain_count ());
    Printf.printf "  %5s %10s %8s\n" "jobs" "total_s" "ratio";
    List.iter
      (fun (j, t) -> Printf.printf "  %5d %10.2f %8.2f\n" j t (t /. base_total))
      results;
    let failures =
      List.filter (fun (_, t) -> t > sweep_max_ratio *. base_total) rest
    in
    if failures = [] then
      Printf.printf
        "scaling self-check: PASS (no run above %.2fx the jobs=%d baseline)\n"
        sweep_max_ratio base_jobs
    else begin
      List.iter
        (fun (j, t) ->
          Printf.printf
            "scaling self-check: FAIL jobs=%d took %.2fs = %.2fx jobs=%d \
             (limit %.2fx)\n"
            j t (t /. base_total) base_jobs sweep_max_ratio)
        failures;
      exit 3
    end

let () =
  let jobs = ref 0 in
  let only = ref [] in
  let json_path = ref "" in
  let label = ref "" in
  let no_bechamel = ref false in
  let sweep = ref [] in
  let split_csv s = String.split_on_char ',' s |> List.filter (( <> ) "") in
  let parse_sweep s =
    sweep :=
      List.map
        (fun v ->
          match int_of_string_opt v with
          | Some j when j >= 1 -> j
          | _ -> raise (Arg.Bad ("bad --sweep-jobs value " ^ v)))
        (split_csv s)
  in
  Arg.parse
    [
      ("--jobs", Arg.Set_int jobs, "N  worker domains for parallel sections");
      ( "--only",
        Arg.String (fun s -> only := split_csv s),
        "a,b,c  run only the named sections" );
      ("--json", Arg.Set_string json_path, "PATH  append a run record to PATH");
      ("--label", Arg.Set_string label, "STR  label stored in the run record");
      ("--no-bechamel", Arg.Set no_bechamel, "  skip the Bechamel pass");
      ( "--sweep-jobs",
        Arg.String parse_sweep,
        "1,2,4  run once per job count and print a scaling table" );
    ]
    (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    "bench [--jobs N] [--only sections] [--json PATH] [--label STR] \
     [--no-bechamel] [--sweep-jobs 1,2,4]";
  if !jobs > 0 then Pool.set_default_jobs !jobs;
  List.iter
    (fun s ->
      if not (List.exists (fun (n, _, _) -> n = s) sections) then begin
        Printf.eprintf "unknown section %S\n" s;
        exit 2
      end)
    !only;
  Printf.printf
    "Broadcast-aware HLS timing optimization - evaluation reproduction\n\
     (DAC 2020: Analysis and Optimization of the Implicit Broadcasts in\n\
    \ FPGA HLS to Improve Maximum Frequency)\n";
  if !sweep <> [] then run_sweep ~only:!only ~json_path:!json_path ~label:!label !sweep
  else begin
    Printf.printf "jobs: %d\n" (Pool.default_jobs ());
    let trace, registry = run_suite ~only:!only ~no_bechamel:!no_bechamel () in
    Printf.printf "\nTotal evaluation time: %.1fs\n" (total_s trace);
    write_profile trace registry;
    let label = if !label <> "" then !label else "run" in
    append_ledger_record ~label trace registry;
    if !json_path <> "" then
      append_run_record ~path:!json_path
        (run_record ~label ~jobs:(Pool.default_jobs ()) trace registry)
  end
