test/t_ctrl.ml: Alcotest Array Dataflow Dtype Gen Hlsb_ctrl Hlsb_ir Hlsb_util List Printf QCheck QCheck_alcotest
