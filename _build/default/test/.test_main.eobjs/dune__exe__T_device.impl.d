test/t_device.ml: Alcotest Hlsb_device List
