test/t_export.ml: Alcotest Core Hlsb_ctrl Hlsb_designs Hlsb_netlist Hlsb_rtlgen List Option Printf String
