test/t_ir.ml: Alcotest Array Dag Dataflow Dtype Hlsb_ir Kernel List Op Printf Transform
