test/t_frontend.ml: Alcotest Array Core Dag Dataflow Hlsb_ctrl Hlsb_device Hlsb_frontend Hlsb_ir Kernel List Op
