test/t_sched.ml: Alcotest Array Dag Dtype Hlsb_delay Hlsb_designs Hlsb_device Hlsb_ir Hlsb_sched Kernel List Op Printf String Transform
