test/test_main.ml: Alcotest T_core T_ctrl T_delay T_designs T_device T_export T_frontend T_ir T_netlist T_physical T_rtlgen T_sched T_sim T_util
