test/t_delay.ml: Alcotest Array Dtype Hlsb_delay Hlsb_device Hlsb_ir List Op Printf
