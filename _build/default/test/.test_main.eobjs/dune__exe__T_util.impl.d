test/t_util.ml: Alcotest Array Gen Hlsb_util List QCheck QCheck_alcotest String
