test/t_physical.ml: Alcotest Hlsb_device Hlsb_netlist Hlsb_physical List Printf QCheck QCheck_alcotest
