test/t_core.ml: Alcotest Core Dag Dtype Hlsb_ctrl Hlsb_designs Hlsb_device Hlsb_ir Hlsb_netlist Hlsb_rtlgen Kernel List Op Option String
