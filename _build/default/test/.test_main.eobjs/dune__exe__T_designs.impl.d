test/t_designs.ml: Alcotest Array Dag Dataflow Hlsb_ctrl Hlsb_designs Hlsb_device Hlsb_ir Hlsb_netlist Hlsb_rtlgen Kernel List
