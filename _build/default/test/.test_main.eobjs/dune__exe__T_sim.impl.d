test/t_sim.ml: Alcotest Array Dataflow Dtype Fun Hlsb_ctrl Hlsb_ir Hlsb_sim Hlsb_util List Printf QCheck QCheck_alcotest
