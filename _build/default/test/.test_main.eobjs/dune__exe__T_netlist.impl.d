test/t_netlist.ml: Alcotest Array Hlsb_device Hlsb_netlist List Printf
