(* Tests for the IR: dtypes, ops, the operation DAG, dataflow networks and
   the broadcast-creating transforms. *)

open Hlsb_ir

let i32 = Dtype.Int 32

(* ---- Dtype ---- *)

let test_dtype_width () =
  Alcotest.(check int) "bool" 1 (Dtype.width Dtype.Bool);
  Alcotest.(check int) "i32" 32 (Dtype.width i32);
  Alcotest.(check int) "u7" 7 (Dtype.width (Dtype.Uint 7));
  Alcotest.(check int) "f32" 32 (Dtype.width Dtype.Float32);
  Alcotest.(check int) "f64" 64 (Dtype.width Dtype.Float64)

let test_dtype_float () =
  Alcotest.(check bool) "f32" true (Dtype.is_float Dtype.Float32);
  Alcotest.(check bool) "i32" false (Dtype.is_float i32)

let test_dtype_validate () =
  Alcotest.check_raises "width 0"
    (Invalid_argument "Dtype: integer width out of [1,512]") (fun () ->
      Dtype.validate (Dtype.Int 0));
  Dtype.validate (Dtype.Uint 512)

let test_dtype_string () =
  Alcotest.(check string) "i32" "i32" (Dtype.to_string i32);
  Alcotest.(check string) "f64" "f64" (Dtype.to_string Dtype.Float64)

(* ---- Op ---- *)

let test_op_arity () =
  Alcotest.(check int) "add" 2 (Op.arity Op.Add);
  Alcotest.(check int) "select" 3 (Op.arity Op.Select);
  Alcotest.(check int) "not" 1 (Op.arity Op.Not);
  Alcotest.(check int) "concat variadic" (-1) (Op.arity Op.Concat)

let test_op_classes () =
  Alcotest.(check bool) "fmul float" true (Op.is_float Op.Fmul);
  Alcotest.(check bool) "add not float" false (Op.is_float Op.Add);
  Alcotest.(check bool) "icmp bool" true (Op.result_is_bool (Op.Icmp Op.Lt));
  Alcotest.(check bool) "add not bool" false (Op.result_is_bool Op.Add)

(* ---- Dag ---- *)

let small_dag () =
  let dag = Dag.create () in
  let a = Dag.input dag ~name:"a" ~dtype:i32 in
  let b = Dag.input dag ~name:"b" ~dtype:i32 in
  let s = Dag.op dag Op.Add ~dtype:i32 [ a; b ] in
  let d = Dag.op dag Op.Sub ~dtype:i32 [ s; a ] in
  ignore (Dag.output dag ~name:"r" ~value:d);
  (dag, a, b, s, d)

let test_dag_basic () =
  let dag, a, _, s, _ = small_dag () in
  Alcotest.(check int) "nodes" 5 (Dag.n_nodes dag);
  Alcotest.(check (list int)) "args of add" [ 0; 1 ] (Dag.args dag s);
  Alcotest.(check bool) "a consumed twice" true (Dag.broadcast_factor dag a = 2);
  Alcotest.(check (list int)) "consumers of a" [ 2; 3 ] (Dag.consumers dag a)

let test_dag_validate_ok () =
  let dag, _, _, _, _ = small_dag () in
  match Dag.validate dag with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let test_dag_arity_check () =
  let dag = Dag.create () in
  let a = Dag.input dag ~name:"a" ~dtype:i32 in
  Alcotest.(check bool) "bad arity rejected" true
    (try
       ignore (Dag.op dag Op.Add ~dtype:i32 [ a ]);
       false
     with Invalid_argument _ -> true)

let test_dag_forward_ref () =
  let dag = Dag.create () in
  Alcotest.(check bool) "forward ref rejected" true
    (try
       ignore (Dag.op dag Op.Not ~dtype:i32 [ 5 ]);
       false
     with Invalid_argument _ -> true)

let test_dag_cmp_forced_bool () =
  let dag = Dag.create () in
  let a = Dag.input dag ~name:"a" ~dtype:i32 in
  let b = Dag.input dag ~name:"b" ~dtype:i32 in
  let c = Dag.op dag (Op.Icmp Op.Lt) ~dtype:i32 [ a; b ] in
  Alcotest.(check bool) "cmp is bool" true (Dag.dtype dag c = Dtype.Bool)

let test_dag_buffer_ops () =
  let dag = Dag.create () in
  let buf = Dag.add_buffer dag ~name:"m" ~dtype:i32 ~depth:1024 ~partition:1 in
  let idx = Dag.input dag ~name:"i" ~dtype:i32 in
  let v = Dag.input dag ~name:"v" ~dtype:i32 in
  let st = Dag.store dag ~buffer:buf ~index:idx ~value:v in
  let ld = Dag.load dag ~buffer:buf ~index:idx in
  Alcotest.(check bool) "store kind" true (Dag.kind dag st = Dag.Store buf);
  Alcotest.(check bool) "load kind" true (Dag.kind dag ld = Dag.Load buf);
  Alcotest.(check bool) "load dtype from buffer" true (Dag.dtype dag ld = i32);
  match Dag.validate dag with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let test_dag_store_width_mismatch () =
  let dag = Dag.create () in
  let buf = Dag.add_buffer dag ~name:"m" ~dtype:(Dtype.Uint 64) ~depth:16 ~partition:1 in
  let idx = Dag.input dag ~name:"i" ~dtype:i32 in
  let v = Dag.input dag ~name:"v" ~dtype:i32 in
  ignore (Dag.store dag ~buffer:buf ~index:idx ~value:v);
  Alcotest.(check bool) "width mismatch caught" true
    (match Dag.validate dag with Error _ -> true | Ok () -> false)

let test_dag_fifo_ops () =
  let dag = Dag.create () in
  let f = Dag.add_fifo dag ~name:"q" ~dtype:i32 ~depth:8 in
  let r = Dag.fifo_read dag ~fifo:f in
  ignore (Dag.fifo_write dag ~fifo:f ~value:r);
  Alcotest.(check int) "one fifo" 1 (Array.length (Dag.fifos dag));
  Alcotest.(check bool) "fifo depth" true ((Dag.fifo dag f).Dag.f_depth = 8)

let test_dag_bad_buffer_params () =
  let dag = Dag.create () in
  Alcotest.(check bool) "depth 0 rejected" true
    (try ignore (Dag.add_buffer dag ~name:"m" ~dtype:i32 ~depth:0 ~partition:1); false
     with Invalid_argument _ -> true)

let test_dag_histogram () =
  let dag, _, _, _, _ = small_dag () in
  let h = Dag.op_histogram dag in
  Alcotest.(check (option int)) "adds" (Some 1) (List.assoc_opt "add" h);
  Alcotest.(check (option int)) "inputs" (Some 2) (List.assoc_opt "input" h)

let test_broadcast_factor_multiplicity () =
  let dag = Dag.create () in
  let a = Dag.input dag ~name:"a" ~dtype:i32 in
  (* a used as both operands: two reads *)
  ignore (Dag.op dag Op.Add ~dtype:i32 [ a; a ]);
  Alcotest.(check int) "a read twice" 2 (Dag.broadcast_factor dag a);
  Alcotest.(check int) "one consumer node" 1 (List.length (Dag.consumers dag a))

(* ---- Transform ---- *)

let test_unrolled_broadcast () =
  let dag = Dag.create () in
  let shared = Dag.input dag ~name:"src" ~dtype:i32 in
  Transform.unrolled dag ~factor:16 (fun j ->
    let p = Dag.input dag ~name:(Printf.sprintf "p%d" j) ~dtype:i32 in
    ignore (Dag.op dag Op.Add ~dtype:i32 [ shared; p ]));
  (* the Fig. 1 pattern: the shared value is read by every body instance *)
  Alcotest.(check int) "fig.1 broadcast" 16 (Dag.broadcast_factor dag shared)

let test_unrolled_bad_factor () =
  let dag = Dag.create () in
  Alcotest.check_raises "factor < 1"
    (Invalid_argument "Transform.unrolled: factor < 1") (fun () ->
      Transform.unrolled dag ~factor:0 (fun _ -> ()))

let test_reduce_tree_depth () =
  let dag = Dag.create () in
  let leaves =
    List.init 8 (fun i -> Dag.input dag ~name:(Printf.sprintf "x%d" i) ~dtype:i32)
  in
  let root = Transform.reduce_tree dag ~op:Op.Add ~dtype:i32 leaves in
  (* 8 leaves -> 7 internal adds, root last *)
  Alcotest.(check int) "nodes" 15 (Dag.n_nodes dag);
  Alcotest.(check int) "root id" 14 root;
  (* balanced: no input feeds the root directly *)
  List.iter
    (fun l ->
      Alcotest.(check bool) "leaf not at root" false
        (List.mem l (Dag.args dag root)))
    leaves

let test_reduce_tree_single () =
  let dag = Dag.create () in
  let x = Dag.input dag ~name:"x" ~dtype:i32 in
  Alcotest.(check int) "singleton is identity" x
    (Transform.reduce_tree dag ~op:Op.Add ~dtype:i32 [ x ])

let test_partitioned_buffers () =
  let dag = Dag.create () in
  let banks =
    Transform.partitioned_buffers dag ~name:"arr" ~dtype:i32 ~depth:100 ~factor:4
  in
  Alcotest.(check int) "bank count" 4 (Array.length banks);
  Array.iter
    (fun b ->
      Alcotest.(check int) "bank depth" 25 (Dag.buffer dag b).Dag.b_depth)
    banks

(* ---- Kernel ---- *)

let test_kernel_create () =
  let dag, _, _, _, _ = small_dag () in
  let k = Kernel.create ~name:"k" dag in
  Alcotest.(check int) "default ii" 1 k.Kernel.ii;
  Alcotest.(check int) "out width" 32 (Kernel.data_width_out k);
  Alcotest.(check int) "in width" 64 (Kernel.data_width_in k)

let test_kernel_bad_ii () =
  let dag, _, _, _, _ = small_dag () in
  Alcotest.check_raises "ii" (Invalid_argument "Kernel.create: ii < 1")
    (fun () -> ignore (Kernel.create ~name:"k" ~ii:0 dag))

(* ---- Dataflow ---- *)

let two_flow_network () =
  (* two independent producer->consumer flows glued by one sync group
     (the Fig. 5a situation) *)
  let df = Dataflow.create () in
  let a1 = Dataflow.add_process df ~name:"a1" () in
  let a2 = Dataflow.add_process df ~name:"a2" () in
  let b1 = Dataflow.add_process df ~name:"b1" () in
  let b2 = Dataflow.add_process df ~name:"b2" () in
  ignore (Dataflow.add_channel df ~name:"ca" ~src:a1 ~dst:a2 ~dtype:i32 ());
  ignore (Dataflow.add_channel df ~name:"cb" ~src:b1 ~dst:b2 ~dtype:i32 ());
  ignore (Dataflow.add_channel df ~name:"ia" ~src:(-1) ~dst:a1 ~dtype:i32 ());
  ignore (Dataflow.add_channel df ~name:"ib" ~src:(-1) ~dst:b1 ~dtype:i32 ());
  ignore (Dataflow.add_channel df ~name:"oa" ~src:a2 ~dst:(-1) ~dtype:i32 ());
  ignore (Dataflow.add_channel df ~name:"ob" ~src:b2 ~dst:(-1) ~dtype:i32 ());
  Dataflow.add_sync_group df [ a1; a2; b1; b2 ];
  df

let test_dataflow_components () =
  let df = two_flow_network () in
  let comp = Dataflow.connectivity_components df in
  Alcotest.(check bool) "a-flow connected" true (comp.(0) = comp.(1));
  Alcotest.(check bool) "b-flow connected" true (comp.(2) = comp.(3));
  Alcotest.(check bool) "flows independent" true (comp.(0) <> comp.(2))

let test_dataflow_validate () =
  let df = two_flow_network () in
  (match Dataflow.validate df with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  let df2 = Dataflow.create () in
  ignore (Dataflow.add_process df2 ~name:"orphan" ());
  Alcotest.(check bool) "orphan process flagged" true
    (match Dataflow.validate df2 with Error _ -> true | Ok () -> false)

let test_dataflow_group_dup () =
  let df = Dataflow.create () in
  let p = Dataflow.add_process df ~name:"p" () in
  Alcotest.check_raises "dup member"
    (Invalid_argument "Dataflow.add_sync_group: duplicate member") (fun () ->
      Dataflow.add_sync_group df [ p; p ])

let suite =
  [
    Alcotest.test_case "dtype width" `Quick test_dtype_width;
    Alcotest.test_case "dtype float" `Quick test_dtype_float;
    Alcotest.test_case "dtype validate" `Quick test_dtype_validate;
    Alcotest.test_case "dtype to_string" `Quick test_dtype_string;
    Alcotest.test_case "op arity" `Quick test_op_arity;
    Alcotest.test_case "op classes" `Quick test_op_classes;
    Alcotest.test_case "dag basic" `Quick test_dag_basic;
    Alcotest.test_case "dag validate ok" `Quick test_dag_validate_ok;
    Alcotest.test_case "dag arity check" `Quick test_dag_arity_check;
    Alcotest.test_case "dag forward ref" `Quick test_dag_forward_ref;
    Alcotest.test_case "dag cmp bool" `Quick test_dag_cmp_forced_bool;
    Alcotest.test_case "dag buffer ops" `Quick test_dag_buffer_ops;
    Alcotest.test_case "dag store width" `Quick test_dag_store_width_mismatch;
    Alcotest.test_case "dag fifo ops" `Quick test_dag_fifo_ops;
    Alcotest.test_case "dag bad buffer" `Quick test_dag_bad_buffer_params;
    Alcotest.test_case "dag histogram" `Quick test_dag_histogram;
    Alcotest.test_case "dag read multiplicity" `Quick test_broadcast_factor_multiplicity;
    Alcotest.test_case "unroll creates broadcast" `Quick test_unrolled_broadcast;
    Alcotest.test_case "unroll bad factor" `Quick test_unrolled_bad_factor;
    Alcotest.test_case "reduce tree shape" `Quick test_reduce_tree_depth;
    Alcotest.test_case "reduce tree single" `Quick test_reduce_tree_single;
    Alcotest.test_case "partitioned buffers" `Quick test_partitioned_buffers;
    Alcotest.test_case "kernel create" `Quick test_kernel_create;
    Alcotest.test_case "kernel bad ii" `Quick test_kernel_bad_ii;
    Alcotest.test_case "dataflow components" `Quick test_dataflow_components;
    Alcotest.test_case "dataflow validate" `Quick test_dataflow_validate;
    Alcotest.test_case "dataflow dup group" `Quick test_dataflow_group_dup;
  ]
