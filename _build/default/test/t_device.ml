(* Device model tests: capacities, grids, BRAM sizing. *)

module Device = Hlsb_device.Device

let test_known_devices () =
  Alcotest.(check int) "four devices" 4 (List.length Device.all);
  List.iter
    (fun (d : Device.t) ->
      Alcotest.(check bool) (d.Device.name ^ " luts") true (d.Device.luts > 0);
      Alcotest.(check bool) (d.Device.name ^ " grid") true
        (d.Device.cols > 0 && d.Device.rows > 0);
      (* the grid covers at least the slice count *)
      Alcotest.(check bool) (d.Device.name ^ " fabric area") true
        (Device.n_slices d * d.Device.lut_per_slice >= d.Device.luts))
    Device.all

let test_find () =
  Alcotest.(check bool) "vu9p" true (Device.find "xcvu9p" <> None);
  Alcotest.(check bool) "unknown" true (Device.find "xc7nope" = None)

let test_vu9p_magnitudes () =
  let d = Device.ultrascale_plus in
  Alcotest.(check int) "luts" 1_182_240 d.Device.luts;
  Alcotest.(check int) "bram18" 4_320 d.Device.bram18;
  Alcotest.(check int) "dsps" 6_840 d.Device.dsps

let test_slices_for_luts () =
  let d = Device.ultrascale_plus in
  Alcotest.(check int) "exact" 1 (Device.slices_for_luts d 8);
  Alcotest.(check int) "round up" 2 (Device.slices_for_luts d 9);
  Alcotest.(check int) "zero" 0 (Device.slices_for_luts d 0)

let test_bram18_for_bits () =
  (* 32 x 512 = 16 kbit fits one unit *)
  Alcotest.(check int) "one unit" 1 (Device.bram18_for ~width:32 ~depth:512);
  (* 32 x 1024 = 32 kbit -> 2 units *)
  Alcotest.(check int) "two units" 2 (Device.bram18_for ~width:32 ~depth:1024)

let test_bram18_for_width () =
  (* 512-bit words need width/36 = 15 units in parallel regardless of depth *)
  Alcotest.(check int) "wide word" 15 (Device.bram18_for ~width:512 ~depth:16);
  (* deep AND wide: bits dominate *)
  Alcotest.(check bool) "deep wide" true
    (Device.bram18_for ~width:512 ~depth:131072 > 3000)

let test_bram18_invalid () =
  Alcotest.check_raises "bad" (Invalid_argument "Device.bram18_for") (fun () ->
    ignore (Device.bram18_for ~width:0 ~depth:4))

let test_timing_constants_sane () =
  List.iter
    (fun (d : Device.t) ->
      Alcotest.(check bool) "clk_q > 0" true (d.Device.t_clk_q > 0.);
      Alcotest.(check bool) "lut delay sane" true
        (d.Device.t_lut > 0.05 && d.Device.t_lut < 0.5);
      Alcotest.(check bool) "dist per unit small" true
        (d.Device.t_net_dist > 0. && d.Device.t_net_dist < 0.1))
    Device.all

let test_7series_slower_than_usplus () =
  (* older parts have slower fabric: this ordering drives the per-board MHz
     differences in Table 1 *)
  let us = Device.ultrascale_plus and z = Device.zynq_7z045 in
  Alcotest.(check bool) "zynq slower" true (z.Device.t_lut > us.Device.t_lut)

let suite =
  [
    Alcotest.test_case "known devices" `Quick test_known_devices;
    Alcotest.test_case "find" `Quick test_find;
    Alcotest.test_case "vu9p magnitudes" `Quick test_vu9p_magnitudes;
    Alcotest.test_case "slices for luts" `Quick test_slices_for_luts;
    Alcotest.test_case "bram by bits" `Quick test_bram18_for_bits;
    Alcotest.test_case "bram by width" `Quick test_bram18_for_width;
    Alcotest.test_case "bram invalid" `Quick test_bram18_invalid;
    Alcotest.test_case "timing constants" `Quick test_timing_constants_sane;
    Alcotest.test_case "7-series slower" `Quick test_7series_slower_than_usplus;
  ]
