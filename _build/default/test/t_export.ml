(* Exporter tests: DOT and structural Verilog. *)

module Netlist = Hlsb_netlist.Netlist
module Export = Hlsb_netlist.Export
module Structs = Hlsb_netlist.Structs

let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  n = 0 || go 0

let sample () =
  let nl = Netlist.create ~name:"samp-le" in
  let src = Structs.add_register nl ~name:"src" ~width:32 in
  let sinks =
    List.init 20 (fun i -> Structs.add_register nl ~name:(Printf.sprintf "s%d" i) ~width:32)
  in
  ignore
    (Netlist.add_net nl ~cls:Netlist.Data_broadcast ~name:"big" ~driver:src
       ~sinks ~width:32 ());
  ignore
    (Netlist.add_net nl ~name:"small" ~driver:src ~sinks:[ List.hd sinks ]
       ~width:32 ());
  nl

let test_dot_shape () =
  let dot = Export.to_dot (sample ()) in
  Alcotest.(check bool) "digraph" true (contains ~needle:"digraph samp_le" dot);
  Alcotest.(check bool) "nodes" true (contains ~needle:"c0 [label=\"src\"" dot);
  (* the 20-fanout net is highlighted *)
  Alcotest.(check bool) "broadcast highlighted" true
    (contains ~needle:"color=red" dot);
  (* edge count: 20 + 1 *)
  let edges =
    String.split_on_char '\n' dot
    |> List.filter (fun l -> contains ~needle:" -> " l)
    |> List.length
  in
  Alcotest.(check int) "edges" 21 edges

let test_dot_threshold () =
  let dot = Export.to_dot ~max_fanout_highlight:100 (sample ()) in
  Alcotest.(check bool) "nothing highlighted" false (contains ~needle:"color=red" dot)

let test_verilog_shape () =
  let v = Export.to_verilog (sample ()) in
  Alcotest.(check bool) "module" true (contains ~needle:"module samp_le" v);
  Alcotest.(check bool) "endmodule" true (contains ~needle:"endmodule" v);
  Alcotest.(check bool) "wire decl" true (contains ~needle:"wire [31:0] n0" v);
  Alcotest.(check bool) "reg instance" true (contains ~needle:"hlsb_reg" v);
  Alcotest.(check bool) "broadcast annotated" true
    (contains ~needle:"[data broadcast]" v);
  Alcotest.(check bool) "clock plumbed" true (contains ~needle:".clk(clk)" v)

let test_verilog_full_design () =
  (* the whole stream buffer design exports without error and mentions its
     memory units *)
  let r =
    Core.Flow.compile_spec ~recipe:Hlsb_ctrl.Style.original
      (Option.get (Hlsb_designs.Suite.find "Pattern Matching"))
  in
  let v = Export.to_verilog r.Core.Flow.fr_design.Hlsb_rtlgen.Design.netlist in
  Alcotest.(check bool) "bram units present" true (contains ~needle:"hlsb_bram18" v);
  Alcotest.(check bool) "nontrivial" true (String.length v > 10_000)

let test_deterministic () =
  let a = Export.to_verilog (sample ()) in
  let b = Export.to_verilog (sample ()) in
  Alcotest.(check string) "stable output" a b

let suite =
  [
    Alcotest.test_case "dot shape" `Quick test_dot_shape;
    Alcotest.test_case "dot threshold" `Quick test_dot_threshold;
    Alcotest.test_case "verilog shape" `Quick test_verilog_shape;
    Alcotest.test_case "verilog full design" `Quick test_verilog_full_design;
    Alcotest.test_case "deterministic" `Quick test_deterministic;
  ]
