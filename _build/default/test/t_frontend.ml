(* C front-end tests: lexing, parsing, elaboration, and the end-to-end
   property that the paper's snippets produce the broadcast structures the
   paper says they do. *)

open Hlsb_ir
module Frontend = Hlsb_frontend.Frontend
module Lexer = Hlsb_frontend.Lexer
module Parser = Hlsb_frontend.Parser
module Token = Hlsb_frontend.Token
module Ast = Hlsb_frontend.Ast

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%a" Frontend.pp_error e

let kernel ?name src = ok (Frontend.kernel_of_string ?name src)

(* ---- lexer ---- *)

let test_lex_basic () =
  let toks = Lexer.tokenize "int x = 42; // comment\nx = x + 0x10;" in
  let kinds = List.map (fun t -> t.Token.tok) toks in
  Alcotest.(check bool) "has int kw" true (List.mem Token.Kw_int kinds);
  Alcotest.(check bool) "hex literal" true (List.mem (Token.Int_lit 16L) kinds);
  Alcotest.(check bool) "comment skipped" true
    (not (List.exists (function Token.Ident "comment" -> true | _ -> false) kinds))

let test_lex_pragma () =
  let toks = Lexer.tokenize "#pragma HLS unroll factor=8\nint x;" in
  match (List.hd toks).Token.tok with
  | Token.Pragma p -> Alcotest.(check string) "pragma text" "HLS unroll factor=8" p
  | t -> Alcotest.failf "expected pragma, got %s" (Token.to_string t)

let test_lex_operators () =
  let toks = Lexer.tokenize "a <= b >> 2 != c && d" in
  let kinds = List.map (fun t -> t.Token.tok) toks in
  Alcotest.(check bool) "le" true (List.mem Token.Le kinds);
  Alcotest.(check bool) "shr" true (List.mem Token.Shr kinds);
  Alcotest.(check bool) "ne" true (List.mem Token.Ne kinds);
  Alcotest.(check bool) "andand" true (List.mem Token.And_and kinds)

let test_lex_float () =
  let toks = Lexer.tokenize "1.5 2f" in
  let kinds = List.map (fun t -> t.Token.tok) toks in
  Alcotest.(check bool) "floats" true
    (List.mem (Token.Float_lit 1.5) kinds && List.mem (Token.Float_lit 2.) kinds)

let test_lex_error_line () =
  Alcotest.(check bool) "line numbers" true
    (try ignore (Lexer.tokenize "int x;\nint @;"); false
     with Lexer.Error (_, 2) -> true)

(* ---- parser ---- *)

let parse_expr s = Parser.expr_of_tokens (Lexer.tokenize s)

let test_parse_precedence () =
  (* a + b * c parses as a + (b * c) *)
  match parse_expr "a + b * c" with
  | Ast.Binop (Ast.B_add, Ast.Var "a", Ast.Binop (Ast.B_mul, _, _)) -> ()
  | _ -> Alcotest.fail "precedence wrong"

let test_parse_ternary () =
  match parse_expr "a < b ? a : b" with
  | Ast.Ternary (Ast.Binop (Ast.B_lt, _, _), Ast.Var "a", Ast.Var "b") -> ()
  | _ -> Alcotest.fail "ternary shape"

let test_parse_method_and_field () =
  (match parse_expr "s.read()" with
  | Ast.Method ("s", "read", []) -> ()
  | _ -> Alcotest.fail "method");
  match parse_expr "prev[j].x" with
  | Ast.Field (Ast.Index (Ast.Var "prev", Ast.Var "j"), "x") -> ()
  | _ -> Alcotest.fail "field of index"

let test_parse_program () =
  let p =
    ok
      (Frontend.parse
         "void f(stream<int> &a) { int x = a.read(); a.write(x); }")
  in
  Alcotest.(check int) "one function" 1 (List.length p);
  Alcotest.(check string) "name" "f" (List.hd p).Ast.f_name

let test_parse_error_message () =
  match Frontend.parse "void f( { }" with
  | Error e -> Alcotest.(check bool) "has line" true (e.Frontend.err_line <> None)
  | Ok _ -> Alcotest.fail "should fail"

(* ---- elaboration ---- *)

let test_elab_fig1_broadcast () =
  let k =
    kernel
      {|
void fig1(stream<int> &q, int foo[512]) {
  int source = q.read();
  int acc = 0;
  for (int i = 0; i < 32; i++) {
#pragma HLS unroll
    acc = acc + (source + foo[i]);
  }
  q.write(acc);
}
|}
  in
  let dag = k.Kernel.dag in
  (* the fifo read (source) is consumed by all 32 unrolled adds *)
  let max_bf = ref 0 in
  Dag.iter dag (fun v -> max_bf := max !max_bf (Dag.broadcast_factor dag v));
  Alcotest.(check int) "32-way broadcast" 32 !max_bf

let test_elab_buffer_vs_regs () =
  let k =
    kernel
      {|
void m(stream<int> &q) {
  int small[8];
  int big[4096];
  for (int i = 0; i < 8; i++) {
#pragma HLS unroll
    small[i] = i;
  }
  for (int i = 0; i < 1024; i++) {
#pragma HLS pipeline
    big[i] = q.read() + small[2];
  }
}
|}
  in
  Alcotest.(check int) "one BRAM buffer" 1 (Array.length (Dag.buffers k.Kernel.dag));
  Alcotest.(check int) "buffer depth" 4096
    (Dag.buffer k.Kernel.dag 0).Dag.b_depth

let test_elab_trip_count () =
  let k =
    kernel
      {|
void t(stream<int> &q) {
  for (int i = 0; i < 777; i++) {
#pragma HLS pipeline
    q.write(q.read());
  }
}
|}
  in
  Alcotest.(check int) "trip count from pipelined loop" 777 k.Kernel.trip_count

let test_elab_if_becomes_select () =
  let k =
    kernel
      {|
void s(stream<int> &q) {
  int x = q.read();
  int y = 0;
  if (x > 10) { y = x; } else { y = 10 - x; }
  q.write(y);
}
|}
  in
  let has_select = ref false in
  Dag.iter k.Kernel.dag (fun v ->
    match Dag.kind k.Kernel.dag v with
    | Dag.Operation Op.Select -> has_select := true
    | _ -> ());
  Alcotest.(check bool) "if lowered to select" true !has_select

let test_elab_read_addr_form () =
  let k =
    kernel
      {|
void r(stream<int> &q, stream<int> &out) {
  int a;
  q.read(&a);
  out.write(a + 1);
}
|}
  in
  let reads = ref 0 in
  Dag.iter k.Kernel.dag (fun v ->
    match Dag.kind k.Kernel.dag v with
    | Dag.Fifo_read _ -> incr reads
    | _ -> ());
  Alcotest.(check int) "one read" 1 !reads

let test_elab_const_folding () =
  let k =
    kernel
      {|
void c(stream<int> &q) {
  int acc = 0;
  for (int i = 0; i < 16; i++) {
#pragma HLS unroll
    acc = acc + i * 2;
  }
  q.write(acc);
}
|}
  in
  (* loop-index arithmetic folds away: no Mul nodes in the DAG *)
  let muls = ref 0 in
  Dag.iter k.Kernel.dag (fun v ->
    match Dag.kind k.Kernel.dag v with
    | Dag.Operation Op.Mul -> incr muls
    | _ -> ());
  Alcotest.(check int) "index math folded" 0 !muls

let test_elab_float_ops () =
  let k =
    kernel
      {|
void f(stream<float> &q) {
  float a = q.read();
  float b = q.read();
  q.write(a * b + 1.5);
}
|}
  in
  let fmuls = ref 0 and fadds = ref 0 in
  Dag.iter k.Kernel.dag (fun v ->
    match Dag.kind k.Kernel.dag v with
    | Dag.Operation Op.Fmul -> incr fmuls
    | Dag.Operation Op.Fadd -> incr fadds
    | _ -> ());
  Alcotest.(check int) "fmul" 1 !fmuls;
  Alcotest.(check int) "fadd" 1 !fadds

let test_elab_errors () =
  let fails src =
    match Frontend.kernel_of_string src with
    | Error _ -> true
    | Ok _ -> false
  in
  Alcotest.(check bool) "undeclared var" true
    (fails "void f(stream<int> &q) { q.write(nope); }");
  Alcotest.(check bool) "store in branch" true
    (fails
       {|
void f(stream<int> &q) {
  int big[4096];
  int x = q.read();
  if (x > 0) { big[0] = x; }
}
|});
  Alcotest.(check bool) "unknown function" true
    (fails "void f(stream<int> &q) { q.write(mystery(1)); }")

(* ---- dataflow regions ---- *)

let fig5a_src =
  {|
void fa(stream<int> &i1, stream<int> &o1) {
  for (int i = 0; i < 64; i++) {
#pragma HLS pipeline
    o1.write(i1.read() + 1);
  }
}
void fb(stream<int> &i2, stream<int> &o2) {
  for (int i = 0; i < 64; i++) {
#pragma HLS pipeline
    o2.write(i2.read() + 2);
  }
}
void top(stream<int> &a, stream<int> &b, stream<int> &x, stream<int> &y) {
#pragma HLS dataflow
  fa(a, x);
  fb(b, y);
}
|}

let test_dataflow_region () =
  let df = ok (Frontend.design_of_string fig5a_src) in
  Alcotest.(check int) "two processes" 2 (Dataflow.n_processes df);
  Alcotest.(check int) "four channels" 4 (Dataflow.n_channels df);
  (* the front end glues everything into one sync group, as the paper
     complains *)
  (match Dataflow.sync_groups df with
  | [ g ] -> Alcotest.(check int) "glued" 2 (List.length g)
  | _ -> Alcotest.fail "one sync group expected");
  (* and pruning splits the two independent flows *)
  let pruned = Hlsb_ctrl.Sync.split_independent df in
  Alcotest.(check int) "pruned into two" 2
    (List.length (Dataflow.sync_groups pruned))

let test_dataflow_compiles () =
  let df = ok (Frontend.design_of_string fig5a_src) in
  let r =
    Core.Flow.compile ~device:Hlsb_device.Device.ultrascale_plus
      ~recipe:Hlsb_ctrl.Style.optimized ~name:"fig5a" df
  in
  Alcotest.(check bool) "sane fmax" true (r.Core.Flow.fr_fmax_mhz > 100.)

let test_single_kernel_design () =
  let df =
    ok
      (Frontend.design_of_string
         "void k(stream<int> &q, stream<int> &o) { o.write(q.read()); }")
  in
  Alcotest.(check int) "one process" 1 (Dataflow.n_processes df);
  Alcotest.(check int) "two channels" 2 (Dataflow.n_channels df)

let suite =
  [
    Alcotest.test_case "lex basic" `Quick test_lex_basic;
    Alcotest.test_case "lex pragma" `Quick test_lex_pragma;
    Alcotest.test_case "lex operators" `Quick test_lex_operators;
    Alcotest.test_case "lex float" `Quick test_lex_float;
    Alcotest.test_case "lex error line" `Quick test_lex_error_line;
    Alcotest.test_case "parse precedence" `Quick test_parse_precedence;
    Alcotest.test_case "parse ternary" `Quick test_parse_ternary;
    Alcotest.test_case "parse method/field" `Quick test_parse_method_and_field;
    Alcotest.test_case "parse program" `Quick test_parse_program;
    Alcotest.test_case "parse error message" `Quick test_parse_error_message;
    Alcotest.test_case "elab fig1 broadcast" `Quick test_elab_fig1_broadcast;
    Alcotest.test_case "elab buffer vs regs" `Quick test_elab_buffer_vs_regs;
    Alcotest.test_case "elab trip count" `Quick test_elab_trip_count;
    Alcotest.test_case "elab if->select" `Quick test_elab_if_becomes_select;
    Alcotest.test_case "elab read(&x)" `Quick test_elab_read_addr_form;
    Alcotest.test_case "elab const folding" `Quick test_elab_const_folding;
    Alcotest.test_case "elab float ops" `Quick test_elab_float_ops;
    Alcotest.test_case "elab errors" `Quick test_elab_errors;
    Alcotest.test_case "dataflow region" `Quick test_dataflow_region;
    Alcotest.test_case "dataflow compiles" `Quick test_dataflow_compiles;
    Alcotest.test_case "single-kernel design" `Quick test_single_kernel_design;
  ]
