(* Netlist structure tests: cells, nets, validation, macros, and the shared
   structures (memory banks, AND trees, fanout trees). *)

module Netlist = Hlsb_netlist.Netlist
module Macro = Hlsb_netlist.Macro
module Structs = Hlsb_netlist.Structs
module Device = Hlsb_device.Device

let dev = Device.ultrascale_plus

let reg nl name = Structs.add_register nl ~name ~width:32

let test_add_cells_nets () =
  let nl = Netlist.create ~name:"t" in
  let a = reg nl "a" in
  let b = reg nl "b" in
  let n = Netlist.add_net nl ~name:"ab" ~driver:a ~sinks:[ b ] ~width:32 () in
  Alcotest.(check int) "cells" 2 (Netlist.n_cells nl);
  Alcotest.(check int) "nets" 1 (Netlist.n_nets nl);
  Alcotest.(check int) "fanout" 1 (Netlist.fanout nl n);
  Alcotest.(check string) "net name" "ab" (Netlist.net nl n).Netlist.n_name

let test_net_checks () =
  let nl = Netlist.create ~name:"t" in
  let a = reg nl "a" in
  Alcotest.(check bool) "bad sink" true
    (try ignore (Netlist.add_net nl ~name:"x" ~driver:a ~sinks:[ 7 ] ~width:1 ()); false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "bad width" true
    (try ignore (Netlist.add_net nl ~name:"x" ~driver:a ~sinks:[] ~width:0 ()); false
     with Invalid_argument _ -> true);
  let port =
    Netlist.add_cell nl ~name:"o" ~kind:Netlist.Port_out ~delay:0.
      ~res:Netlist.zero_res
  in
  Alcotest.(check bool) "port cannot drive" true
    (try ignore (Netlist.add_net nl ~name:"x" ~driver:port ~sinks:[ a ] ~width:1 ()); false
     with Invalid_argument _ -> true)

let test_max_fanout_by_class () =
  let nl = Netlist.create ~name:"t" in
  let a = reg nl "a" in
  let sinks = List.init 10 (fun i -> reg nl (Printf.sprintf "s%d" i)) in
  ignore
    (Netlist.add_net nl ~cls:Netlist.Ctrl_pipeline ~name:"stall" ~driver:a
       ~sinks ~width:1 ());
  ignore (Netlist.add_net nl ~name:"d" ~driver:a ~sinks:[ List.hd sinks ] ~width:1 ());
  (match Netlist.max_fanout_net nl () with
  | Some (_, n) -> Alcotest.(check int) "overall max" 10 (Array.length n.Netlist.n_sinks)
  | None -> Alcotest.fail "no nets");
  match Netlist.max_fanout_net nl ~cls:Netlist.Data () with
  | Some (_, n) -> Alcotest.(check int) "data max" 1 (Array.length n.Netlist.n_sinks)
  | None -> Alcotest.fail "no data nets"

let test_resources_accumulate () =
  let nl = Netlist.create ~name:"t" in
  ignore
    (Netlist.add_cell nl ~name:"m" ~kind:Netlist.Comb ~delay:1.
       ~res:(Macro.float_mul `F32));
  ignore (reg nl "r");
  let r = Netlist.total_resources nl in
  Alcotest.(check int) "dsp" 3 r.Netlist.r_dsps;
  Alcotest.(check int) "ff" (90 + 32) r.Netlist.r_ffs

let test_utilization () =
  let nl = Netlist.create ~name:"t" in
  ignore
    (Netlist.add_cell nl ~name:"big" ~kind:Netlist.Comb ~delay:1.
       ~res:{ Netlist.zero_res with Netlist.r_luts = dev.Device.luts / 2 });
  let lut, _, _, _ = Netlist.utilization nl dev in
  Alcotest.(check (float 0.01)) "half the luts" 0.5 lut

let test_validate_comb_cycle () =
  let nl = Netlist.create ~name:"t" in
  let c1 =
    Netlist.add_cell nl ~name:"c1" ~kind:Netlist.Comb ~delay:0.1
      ~res:Netlist.zero_res
  in
  let c2 =
    Netlist.add_cell nl ~name:"c2" ~kind:Netlist.Comb ~delay:0.1
      ~res:Netlist.zero_res
  in
  ignore (Netlist.add_net nl ~name:"a" ~driver:c1 ~sinks:[ c2 ] ~width:1 ());
  ignore (Netlist.add_net nl ~name:"b" ~driver:c2 ~sinks:[ c1 ] ~width:1 ());
  Alcotest.(check bool) "cycle flagged" true
    (match Netlist.validate nl with Error _ -> true | Ok () -> false)

let test_validate_seq_feedback_ok () =
  (* feedback through a register is legal *)
  let nl = Netlist.create ~name:"t" in
  let r = reg nl "r" in
  let c =
    Netlist.add_cell nl ~name:"c" ~kind:Netlist.Comb ~delay:0.1
      ~res:Netlist.zero_res
  in
  ignore (Netlist.add_net nl ~name:"a" ~driver:r ~sinks:[ c ] ~width:1 ());
  ignore (Netlist.add_net nl ~name:"b" ~driver:c ~sinks:[ r ] ~width:1 ());
  match Netlist.validate nl with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let test_merge () =
  let a = Netlist.create ~name:"a" in
  let b = Netlist.create ~name:"b" in
  let r1 = reg a "r1" in
  ignore r1;
  let r2 = reg b "r2" in
  let r3 = reg b "r3" in
  ignore (Netlist.add_net b ~name:"n" ~driver:r2 ~sinks:[ r3 ] ~width:32 ());
  let cell_map, net_map = Netlist.merge a b in
  Alcotest.(check int) "total cells" 3 (Netlist.n_cells a);
  Alcotest.(check int) "total nets" 1 (Netlist.n_nets a);
  let n = Netlist.net a net_map.(0) in
  Alcotest.(check int) "driver remapped" cell_map.(0) n.Netlist.n_driver

(* ---- Macro ---- *)

let test_macro_int_mul () =
  let r = Macro.int_mul 32 in
  Alcotest.(check int) "32x32 needs 4 dsp48" 4 r.Netlist.r_dsps;
  let r18 = Macro.int_mul 18 in
  Alcotest.(check int) "18x18 fits one" 1 r18.Netlist.r_dsps

let test_macro_fifo_mapping () =
  let small = Macro.fifo ~width:8 ~depth:16 in
  Alcotest.(check int) "small fifo uses no bram" 0 small.Netlist.r_bram18;
  let big = Macro.fifo ~width:512 ~depth:128 in
  Alcotest.(check bool) "big fifo uses bram" true (big.Netlist.r_bram18 > 0)

let test_macro_and_tree_levels () =
  Alcotest.(check int) "1 input" 0 (Macro.and_tree_levels 1);
  Alcotest.(check int) "6 inputs" 1 (Macro.and_tree_levels 6);
  Alcotest.(check int) "7 inputs" 2 (Macro.and_tree_levels 7);
  Alcotest.(check int) "36 inputs" 2 (Macro.and_tree_levels 36);
  Alcotest.(check int) "216" 3 (Macro.and_tree_levels 216)

let test_macro_register () =
  Alcotest.(check int) "ffs" 48 (Macro.register 48).Netlist.r_ffs

(* ---- Structs ---- *)

let test_membank_units () =
  let nl = Netlist.create ~name:"t" in
  let mb = Structs.add_membank dev nl ~name:"m" ~width:32 ~depth:4096 () in
  let expected = Device.bram18_for ~width:32 ~depth:4096 in
  Alcotest.(check int) "unit count" expected mb.Structs.mb_n_units;
  Alcotest.(check int) "unit cells" expected (Array.length mb.Structs.mb_units);
  (* each unit is exactly one BRAM18 *)
  Array.iter
    (fun u ->
      Alcotest.(check int) "one bram each" 1
        (Netlist.cell nl u).Netlist.c_res.Netlist.r_bram18)
    mb.Structs.mb_units;
  Alcotest.(check int) "comb read (no pipeline)" 0 mb.Structs.mb_read_latency

let test_membank_read_pipeline () =
  let nl = Netlist.create ~name:"t" in
  let mb =
    Structs.add_membank dev nl ~read_pipeline:true ~name:"m" ~width:32
      ~depth:(512 * 300) ()
  in
  (* 300 units -> two cascade levels (16:1), both registered *)
  Alcotest.(check bool) "read latency >= 2" true (mb.Structs.mb_read_latency >= 2)

let test_membank_write_broadcast () =
  let nl = Netlist.create ~name:"t" in
  let mb = Structs.add_membank dev nl ~name:"m" ~width:32 ~depth:65536 () in
  let src = Structs.add_register nl ~name:"src" ~width:32 in
  let n = Structs.connect_write nl ~name:"w" ~driver:src mb ~width:32 in
  Alcotest.(check int) "write fanout = units" mb.Structs.mb_n_units
    (Netlist.fanout nl n);
  Alcotest.(check bool) "classed as data broadcast" true
    ((Netlist.net nl n).Netlist.n_class = Netlist.Data_broadcast)

let test_and_tree_structure () =
  let nl = Netlist.create ~name:"t" in
  let inputs = List.init 20 (fun i -> Structs.add_register nl ~name:(Printf.sprintf "d%d" i) ~width:1) in
  let cells_before = Netlist.n_cells nl in
  let root = Structs.add_and_tree dev nl ~name:"sync" ~inputs in
  Alcotest.(check bool) "root is new cell" true (root >= cells_before);
  (* 20 -> 4 -> 1: 5 LUTs *)
  Alcotest.(check int) "lut count" 5 (Netlist.n_cells nl - cells_before);
  (* single input returns identity *)
  let single = Structs.add_and_tree dev nl ~name:"s1" ~inputs:[ root ] in
  Alcotest.(check int) "identity" root single

let test_reg_chain () =
  let nl = Netlist.create ~name:"t" in
  let regs = Structs.add_reg_chain nl ~name:"c" ~width:8 ~length:5 in
  Alcotest.(check int) "five regs" 5 (List.length regs);
  Alcotest.(check int) "four links" 4 (Netlist.n_nets nl)

let test_fanout_tree_reaches_all () =
  let nl = Netlist.create ~name:"t" in
  let src = Structs.add_register nl ~name:"src" ~width:16 in
  let sinks = List.init 100 (fun i -> Structs.add_register nl ~name:(Printf.sprintf "k%d" i) ~width:16) in
  let levels =
    Structs.add_fanout_tree nl ~name:"ft" ~driver:src ~sinks ~width:16
      ~levels:2 ~leaf_fanout:8
  in
  Alcotest.(check int) "levels" 2 levels;
  (* every sink is reachable from src through nets *)
  let n = Netlist.n_cells nl in
  let adj = Array.make n [] in
  Netlist.iter_nets nl (fun _ net ->
    Array.iter
      (fun s -> adj.(net.Netlist.n_driver) <- s :: adj.(net.Netlist.n_driver))
      net.Netlist.n_sinks);
  let seen = Array.make n false in
  let rec dfs v =
    if not seen.(v) then begin
      seen.(v) <- true;
      List.iter dfs adj.(v)
    end
  in
  dfs src;
  List.iter
    (fun s -> Alcotest.(check bool) "sink reached" true seen.(s))
    sinks;
  (* leaf fanout bound respected *)
  Netlist.iter_nets nl (fun _ net ->
    Alcotest.(check bool) "fanout bounded" true
      (Array.length net.Netlist.n_sinks <= 13))

let test_fanout_tree_bad_args () =
  let nl = Netlist.create ~name:"t" in
  let src = Structs.add_register nl ~name:"s" ~width:1 in
  Alcotest.(check bool) "no sinks" true
    (try
       ignore
         (Structs.add_fanout_tree nl ~name:"f" ~driver:src ~sinks:[] ~width:1
            ~levels:1 ~leaf_fanout:4);
       false
     with Invalid_argument _ -> true)

let suite =
  [
    Alcotest.test_case "cells and nets" `Quick test_add_cells_nets;
    Alcotest.test_case "net checks" `Quick test_net_checks;
    Alcotest.test_case "max fanout by class" `Quick test_max_fanout_by_class;
    Alcotest.test_case "resources accumulate" `Quick test_resources_accumulate;
    Alcotest.test_case "utilization" `Quick test_utilization;
    Alcotest.test_case "comb cycle flagged" `Quick test_validate_comb_cycle;
    Alcotest.test_case "seq feedback legal" `Quick test_validate_seq_feedback_ok;
    Alcotest.test_case "merge" `Quick test_merge;
    Alcotest.test_case "macro int mul" `Quick test_macro_int_mul;
    Alcotest.test_case "macro fifo mapping" `Quick test_macro_fifo_mapping;
    Alcotest.test_case "macro and-tree levels" `Quick test_macro_and_tree_levels;
    Alcotest.test_case "macro register" `Quick test_macro_register;
    Alcotest.test_case "membank units" `Quick test_membank_units;
    Alcotest.test_case "membank read pipeline" `Quick test_membank_read_pipeline;
    Alcotest.test_case "membank write broadcast" `Quick test_membank_write_broadcast;
    Alcotest.test_case "and tree structure" `Quick test_and_tree_structure;
    Alcotest.test_case "reg chain" `Quick test_reg_chain;
    Alcotest.test_case "fanout tree reaches all" `Quick test_fanout_tree_reaches_all;
    Alcotest.test_case "fanout tree bad args" `Quick test_fanout_tree_bad_args;
  ]
