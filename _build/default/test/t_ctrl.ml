(* Control-layer tests: skid-buffer sizing and min-area DP (§4.3), sync
   pruning (§4.2). *)

open Hlsb_ir
module Skid = Hlsb_ctrl.Skid
module Sync = Hlsb_ctrl.Sync
module Style = Hlsb_ctrl.Style

(* ---- Skid sizing ---- *)

let test_required_depth () =
  Alcotest.(check int) "N+1" 10 (Skid.required_depth ~pipeline_depth:9 ());
  Alcotest.(check int) "registered backpressure" 13
    (Skid.required_depth ~pipeline_depth:9 ~ctrl_stages:3 ())

let test_end_only_formula () =
  (* BufferArea = (N+1) * w_beta *)
  let widths = [| 100; 100; 100 |] in
  let p = Skid.end_only ~widths ~out_width:64 in
  Alcotest.(check int) "(4+1)*64" (5 * 64) p.Skid.cost_bits;
  Alcotest.(check (list int)) "single cut at N" [ 4 ] p.Skid.cuts

let test_fig17_example () =
  (* the paper's numbers: 61 stages, waist of 32 bits at boundary 56,
     1024-bit output: end-only = 63488 bits, split = 7968 bits *)
  (* boundaries carry the wide vectors except the one-scalar waist right
     after the reduction (boundary 56) *)
  let widths = Array.init 60 (fun i -> if i = 55 then 32 else 1024) in
  let p_end = Skid.end_only ~widths ~out_width:1024 in
  Alcotest.(check int) "end-only 62*1024" 63488 p_end.Skid.cost_bits;
  let p = Skid.min_area ~widths ~out_width:1024 in
  (* optimal: cut at the 32-bit waist then the tail: (56+1)*32 + (5+1)*1024 *)
  Alcotest.(check int) "paper's 7968 bits" 7968 p.Skid.cost_bits;
  Alcotest.(check bool) "cut at the waist" true (List.mem 56 p.Skid.cuts)

let test_min_area_never_worse () =
  let widths = [| 32; 64; 512; 8; 256 |] in
  let e = Skid.end_only ~widths ~out_width:128 in
  let m = Skid.min_area ~widths ~out_width:128 in
  Alcotest.(check bool) "dp <= end-only" true (m.Skid.cost_bits <= e.Skid.cost_bits)

let test_min_area_uniform_no_split () =
  (* with uniform widths, splitting only adds +1 entries per cut: a single
     end buffer is optimal *)
  let widths = Array.make 9 64 in
  let m = Skid.min_area ~widths ~out_width:64 in
  Alcotest.(check (list int)) "no internal cuts" [ 10 ] m.Skid.cuts

let test_plan_depths_consistent () =
  let widths = [| 100; 10; 100 |] in
  let m = Skid.min_area ~widths ~out_width:100 in
  (* cost equals the sum over planned buffers *)
  let total =
    List.fold_left (fun acc (_, d, w) -> acc + (d * w)) 0 m.Skid.depths
  in
  Alcotest.(check int) "cost consistent" m.Skid.cost_bits total;
  (* segment depths cover the whole pipeline *)
  let covered =
    List.fold_left (fun acc (_, d, _) -> acc + (d - 1)) 0 m.Skid.depths
  in
  Alcotest.(check int) "covers all stages" 4 covered

let prop_dp_matches_brute_force =
  QCheck.Test.make ~count:100 ~name:"min-area DP matches brute force"
    QCheck.(
      pair
        (list_of_size (Gen.int_range 1 9) (int_range 1 256))
        (int_range 1 256))
    (fun (widths, out_width) ->
      let widths = Array.of_list widths in
      let dp = Skid.min_area ~widths ~out_width in
      let bf = Skid.brute_force ~widths ~out_width in
      dp.Skid.cost_bits = bf.Skid.cost_bits)

let prop_dp_bounded_by_end_only =
  QCheck.Test.make ~count:200 ~name:"DP never exceeds the end-only buffer"
    QCheck.(
      pair
        (list_of_size (Gen.int_range 0 40) (int_range 1 1024))
        (int_range 1 1024))
    (fun (widths, out_width) ->
      let widths = Array.of_list widths in
      let dp = Skid.min_area ~widths ~out_width in
      let e = Skid.end_only ~widths ~out_width in
      dp.Skid.cost_bits <= e.Skid.cost_bits)

(* ---- Sync pruning ---- *)

let glued_network () =
  let df = Dataflow.create () in
  let ps = List.init 6 (fun i -> Dataflow.add_process df ~name:(Printf.sprintf "p%d" i) ()) in
  let p i = List.nth ps i in
  (* three independent two-process flows *)
  List.iter
    (fun (a, b, n) ->
      ignore
        (Dataflow.add_channel df ~name:("c" ^ n) ~src:(p a) ~dst:(p b)
           ~dtype:(Dtype.Int 32) ());
      ignore
        (Dataflow.add_channel df ~name:("i" ^ n) ~src:(-1) ~dst:(p a)
           ~dtype:(Dtype.Int 32) ());
      ignore
        (Dataflow.add_channel df ~name:("o" ^ n) ~src:(p b) ~dst:(-1)
           ~dtype:(Dtype.Int 32) ()))
    [ (0, 1, "a"); (2, 3, "b"); (4, 5, "c") ];
  Dataflow.add_sync_group df ps;
  df

let test_split_independent () =
  let df = glued_network () in
  Alcotest.(check int) "one glued group" 1 (List.length (Dataflow.sync_groups df));
  let pruned = Sync.split_independent df in
  let groups = Dataflow.sync_groups pruned in
  Alcotest.(check int) "three independent groups" 3 (List.length groups);
  List.iter
    (fun g -> Alcotest.(check int) "two members each" 2 (List.length g))
    groups;
  (* processes and channels unchanged *)
  Alcotest.(check int) "processes kept" 6 (Dataflow.n_processes pruned);
  Alcotest.(check int) "channels kept" 9 (Dataflow.n_channels pruned)

let test_split_preserves_membership () =
  let df = glued_network () in
  let pruned = Sync.split_independent df in
  let all_members =
    List.concat (Dataflow.sync_groups pruned) |> List.sort compare
  in
  Alcotest.(check (list int)) "same members overall" [ 0; 1; 2; 3; 4; 5 ]
    all_members

let test_sync_fanout_reduced () =
  let df = glued_network () in
  let before = Sync.total_sync_fanout df in
  (* splitting keeps total fanout equal here (same members), but the
     largest *single* domain shrinks from 6 to 2 *)
  let pruned = Sync.split_independent df in
  let biggest groups =
    List.fold_left (fun acc g -> max acc (List.length g)) 0 groups
  in
  Alcotest.(check int) "same total" before (Sync.total_sync_fanout pruned);
  Alcotest.(check int) "largest domain 6 before" 6
    (biggest (Dataflow.sync_groups df));
  Alcotest.(check int) "largest domain 2 after" 2
    (biggest (Dataflow.sync_groups pruned))

let latency_network () =
  let df = Dataflow.create () in
  let mk name lat = Dataflow.add_process df ~name ?latency:lat () in
  let a = mk "a" (Some 10) in
  let b = mk "b" (Some 25) in
  let c = mk "c" (Some 25) in
  let d = mk "d" None in
  (df, a, b, c, d)

let test_longest_latency_wait () =
  let df, a, b, c, _ = latency_network () in
  let w = Sync.longest_latency_wait df [ a; b; c ] in
  (* waits on exactly one representative of the max latency *)
  Alcotest.(check (list int)) "wait only the slowest" [ b ] w.Sync.waited;
  Alcotest.(check (list int)) "skip the dominated" [ a; c ]
    (List.sort compare w.Sync.skipped)

let test_longest_latency_keeps_dynamic () =
  let df, a, b, _, d = latency_network () in
  let w = Sync.longest_latency_wait df [ a; b; d ] in
  (* the paper's limitation: dynamic-latency modules cannot be pruned *)
  Alcotest.(check bool) "dynamic kept" true (List.mem d w.Sync.waited);
  Alcotest.(check bool) "slowest static kept" true (List.mem b w.Sync.waited);
  Alcotest.(check bool) "dominated dropped" true (List.mem a w.Sync.skipped)

let test_longest_latency_empty () =
  let df, _, _, _, _ = latency_network () in
  Alcotest.check_raises "empty"
    (Invalid_argument "Sync.longest_latency_wait: empty group") (fun () ->
      ignore (Sync.longest_latency_wait df []))

let test_group_cost () =
  let c = Sync.group_cost ~wait:[ 1; 2; 3 ] ~started:[ 1; 2; 3; 4 ] in
  Alcotest.(check int) "fanin" 3 c.Sync.reduce_fanin;
  Alcotest.(check int) "fanout" 4 c.Sync.start_fanout

(* ---- Style ---- *)

let test_style_labels () =
  Alcotest.(check string) "orig" "hls/stall/naive" (Style.label Style.original);
  Alcotest.(check string) "opt" "aware/skid-min/pruned"
    (Style.label Style.optimized)

let prop_split_is_partition =
  QCheck.Test.make ~count:100 ~name:"pruning partitions every sync group"
    QCheck.(small_nat)
    (fun seed ->
      let rng = Hlsb_util.Rng.create seed in
      let df = Dataflow.create () in
      let n = 3 + Hlsb_util.Rng.int rng 10 in
      let ps = List.init n (fun i -> Dataflow.add_process df ~name:(Printf.sprintf "p%d" i) ()) in
      (* random channels *)
      for _ = 1 to n do
        let a = Hlsb_util.Rng.int rng n and b = Hlsb_util.Rng.int rng n in
        if a <> b then
          ignore
            (Dataflow.add_channel df
               ~name:(Printf.sprintf "c%d%d_%d" a b (Hlsb_util.Rng.int rng 1000))
               ~src:a ~dst:b ~dtype:(Dtype.Int 8) ())
      done;
      Dataflow.add_sync_group df ps;
      let pruned = Sync.split_independent df in
      let members = List.concat (Dataflow.sync_groups pruned) in
      List.sort compare members = List.init n (fun i -> i)
      &&
      (* each new group is within one connectivity component *)
      let comp = Dataflow.connectivity_components pruned in
      List.for_all
        (fun g ->
          match g with
          | [] -> false
          | x :: rest -> List.for_all (fun y -> comp.(y) = comp.(x)) rest)
        (Dataflow.sync_groups pruned))

let suite =
  [
    Alcotest.test_case "required depth" `Quick test_required_depth;
    Alcotest.test_case "end-only formula" `Quick test_end_only_formula;
    Alcotest.test_case "fig17 example" `Quick test_fig17_example;
    Alcotest.test_case "dp never worse" `Quick test_min_area_never_worse;
    Alcotest.test_case "uniform no split" `Quick test_min_area_uniform_no_split;
    Alcotest.test_case "plan depths consistent" `Quick test_plan_depths_consistent;
    Alcotest.test_case "split independent" `Quick test_split_independent;
    Alcotest.test_case "split preserves membership" `Quick
      test_split_preserves_membership;
    Alcotest.test_case "sync domain shrinks" `Quick test_sync_fanout_reduced;
    Alcotest.test_case "longest latency wait" `Quick test_longest_latency_wait;
    Alcotest.test_case "dynamic kept" `Quick test_longest_latency_keeps_dynamic;
    Alcotest.test_case "empty group" `Quick test_longest_latency_empty;
    Alcotest.test_case "group cost" `Quick test_group_cost;
    Alcotest.test_case "style labels" `Quick test_style_labels;
  ]
  @ List.map QCheck_alcotest.to_alcotest
      [ prop_dp_matches_brute_force; prop_dp_bounded_by_end_only; prop_split_is_partition ]

(* ---- interval-latency pruning (§4.2 future work) ---- *)

let test_bounds_exact_matches_classic () =
  let w =
    Sync.prune_with_bounds
      [ (0, Sync.Exact 10); (1, Sync.Exact 25); (2, Sync.Exact 25) ]
  in
  (* anchor = smallest id among max-latency members *)
  Alcotest.(check (list int)) "waited" [ 1 ] w.Sync.waited;
  Alcotest.(check (list int)) "skipped" [ 0; 2 ] w.Sync.skipped

let test_bounds_interval_domination () =
  (* [5,9] is dominated by an anchor whose lower bound is 10; [5,12] is
     not *)
  let w =
    Sync.prune_with_bounds
      [ (0, Sync.Between (10, 20)); (1, Sync.Between (5, 9)); (2, Sync.Between (5, 12)) ]
  in
  Alcotest.(check (list int)) "waited" [ 0; 2 ] w.Sync.waited;
  Alcotest.(check (list int)) "skipped" [ 1 ] w.Sync.skipped

let test_bounds_unknown_kept () =
  let w =
    Sync.prune_with_bounds [ (0, Sync.Unknown); (1, Sync.Exact 100); (2, Sync.Exact 3) ]
  in
  Alcotest.(check bool) "unknown waited" true (List.mem 0 w.Sync.waited);
  Alcotest.(check bool) "slow waited" true (List.mem 1 w.Sync.waited);
  Alcotest.(check (list int)) "fast skipped" [ 2 ] w.Sync.skipped

let test_bounds_all_unknown () =
  let w = Sync.prune_with_bounds [ (0, Sync.Unknown); (1, Sync.Unknown) ] in
  Alcotest.(check (list int)) "all waited" [ 0; 1 ] w.Sync.waited

let test_bounds_errors () =
  Alcotest.(check bool) "inverted" true
    (try ignore (Sync.prune_with_bounds [ (0, Sync.Between (9, 5)) ]); false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "duplicate" true
    (try
       ignore (Sync.prune_with_bounds [ (0, Sync.Exact 1); (0, Sync.Exact 2) ]);
       false
     with Invalid_argument _ -> true)

let test_bound_of_trip_count () =
  Alcotest.(check bool) "exact" true
    (Sync.bound_of_trip_count ~ii:1 ~depth:10 ~trip_lo:5 ~trip_hi:5
    = Sync.Exact 14);
  Alcotest.(check bool) "interval" true
    (Sync.bound_of_trip_count ~ii:2 ~depth:10 ~trip_lo:1 ~trip_hi:4
    = Sync.Between (10, 16))

let prop_bounds_sound =
  QCheck.Test.make ~count:200
    ~name:"interval pruning never skips a possibly-slowest member"
    QCheck.(list_of_size (Gen.int_range 1 8) (pair (int_range 0 30) (int_range 0 30)))
    (fun raw ->
      let members =
        List.mapi
          (fun i (a, b) -> (i, Sync.Between (min a b, max a b)))
          raw
      in
      let w = Sync.prune_with_bounds members in
      (* soundness: for every skipped member s, some waited member w has
         lo_w >= hi_s, so waiting on w always covers s *)
      let bound id = List.assoc id members in
      List.for_all
        (fun s ->
          let s_hi = match bound s with Sync.Between (_, h) -> h | _ -> 0 in
          List.exists
            (fun w_id ->
              match bound w_id with
              | Sync.Between (lo, _) -> lo >= s_hi
              | _ -> false)
            w.Sync.waited)
        w.Sync.skipped)

let interval_suite =
  [
    Alcotest.test_case "bounds exact = classic" `Quick test_bounds_exact_matches_classic;
    Alcotest.test_case "bounds interval domination" `Quick test_bounds_interval_domination;
    Alcotest.test_case "bounds unknown kept" `Quick test_bounds_unknown_kept;
    Alcotest.test_case "bounds all unknown" `Quick test_bounds_all_unknown;
    Alcotest.test_case "bounds errors" `Quick test_bounds_errors;
    Alcotest.test_case "bound of trip count" `Quick test_bound_of_trip_count;
    QCheck_alcotest.to_alcotest prop_bounds_sound;
  ]

let suite = suite @ interval_suite
