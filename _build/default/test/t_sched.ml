(* Scheduler tests: chaining correctness, broadcast-aware splitting,
   register insertion, and the schedule report. *)

open Hlsb_ir
module Schedule = Hlsb_sched.Schedule
module Report = Hlsb_sched.Report
module Calibrate = Hlsb_delay.Calibrate
module Device = Hlsb_device.Device

let dev = Device.ultrascale_plus
let i32 = Dtype.Int 32
let cal () = Calibrate.shared dev
let aware () = Schedule.Broadcast_aware (cal ())

(* a chain of n dependent adds *)
let chain_kernel n =
  let dag = Dag.create () in
  let a = Dag.input dag ~name:"a" ~dtype:i32 in
  let b = Dag.input dag ~name:"b" ~dtype:i32 in
  let rec go prev i =
    if i = 0 then prev
    else go (Dag.op dag Op.Add ~dtype:i32 [ prev; b ]) (i - 1)
  in
  ignore (Dag.output dag ~name:"r" ~value:(go a n));
  Kernel.create ~name:(Printf.sprintf "chain%d" n) dag

(* the Fig. 1 pattern: one shared value into [factor] adders, followed by
   enough chained logic that underestimating the broadcast breaks a cycle *)
let broadcast_kernel factor =
  let dag = Dag.create () in
  let src = Dag.input dag ~name:"src" ~dtype:i32 in
  Transform.unrolled dag ~factor (fun j ->
    let p = Dag.input dag ~name:(Printf.sprintf "p%d" j) ~dtype:i32 in
    let s = Dag.op dag Op.Add ~dtype:i32 [ src; p ] in
    let t = Dag.op dag Op.Sub ~dtype:i32 [ s; p ] in
    let u = Dag.op dag Op.Abs ~dtype:i32 [ t ] in
    ignore (Dag.output dag ~name:(Printf.sprintf "o%d" j) ~value:u));
  Kernel.create ~name:(Printf.sprintf "bcast%d" factor) dag

let test_deps_respected mode () =
  let k = chain_kernel 20 in
  let s = Schedule.run mode k in
  let dag = k.Kernel.dag in
  Dag.iter dag (fun v ->
    List.iter
      (fun a ->
        Alcotest.(check bool) "consumer not before producer" true
          (s.Schedule.entries.(v).Schedule.e_cycle >= s.Schedule.entries.(a).Schedule.e_cycle))
      (Dag.args dag v))

let test_chain_fits_target mode () =
  let s = Schedule.run mode (chain_kernel 30) in
  Alcotest.(check bool) "chains within target" true (Schedule.chain_ok s)

let test_chaining_packs_ops () =
  (* several cheap adds chain in one cycle: depth far below op count *)
  let s = Schedule.run Schedule.Baseline (chain_kernel 12) in
  Alcotest.(check bool) "chaining happened" true (s.Schedule.depth < 12);
  Alcotest.(check bool) "but not everything in cycle 0" true (s.Schedule.depth > 1)

let test_baseline_ignores_broadcast () =
  (* the defining blindness: schedule of factor-64 same as factor-2 *)
  let s2 = Schedule.run Schedule.Baseline (broadcast_kernel 2) in
  let s64 = Schedule.run Schedule.Baseline (broadcast_kernel 64) in
  Alcotest.(check int) "same depth regardless of broadcast" s2.Schedule.depth
    s64.Schedule.depth

let test_aware_adds_latency_for_broadcast () =
  let s2 = Schedule.run (aware ()) (broadcast_kernel 2) in
  let s64 = Schedule.run (aware ()) (broadcast_kernel 64) in
  Alcotest.(check bool) "broadcast gets distribution stages" true
    (s64.Schedule.depth > s2.Schedule.depth)

let test_aware_inserts_registers () =
  let s = Schedule.run (aware ()) (broadcast_kernel 64) in
  Alcotest.(check bool) "registers inserted" true
    (Schedule.registers_inserted s > 0);
  let sb = Schedule.run Schedule.Baseline (broadcast_kernel 64) in
  Alcotest.(check int) "baseline inserts none" 0 (Schedule.registers_inserted sb)

let test_small_overhead () =
  (* §5.2: pipeline 9 -> 10; our overhead should also be ~1-3 stages *)
  let sb = Schedule.run Schedule.Baseline (broadcast_kernel 64) in
  let sa = Schedule.run (aware ()) (broadcast_kernel 64) in
  Alcotest.(check bool) "modest depth cost" true
    (sa.Schedule.depth - sb.Schedule.depth <= 4)

let test_float_latency () =
  let dag = Dag.create () in
  let a = Dag.input dag ~name:"a" ~dtype:Dtype.Float32 in
  let b = Dag.input dag ~name:"b" ~dtype:Dtype.Float32 in
  let m = Dag.op dag Op.Fmul ~dtype:Dtype.Float32 [ a; b ] in
  ignore (Dag.output dag ~name:"r" ~value:m);
  let s = Schedule.run Schedule.Baseline (Kernel.create ~name:"f" dag) in
  Alcotest.(check bool) "fmul takes its pipeline cycles" true
    (Schedule.finish_cycle s m >= 3)

let test_mem_min_distribution () =
  (* stores to multi-unit buffers always get distribution stages (aware) *)
  let dag = Dag.create () in
  let buf = Dag.add_buffer dag ~name:"big" ~dtype:(Dtype.Uint 512) ~depth:65536 ~partition:1 in
  let i = Dag.input dag ~name:"i" ~dtype:i32 in
  let v = Dag.input dag ~name:"v" ~dtype:(Dtype.Uint 512) in
  let st = Dag.store dag ~buffer:buf ~index:i ~value:v in
  let k = Kernel.create ~name:"st" dag in
  let s = Schedule.run (aware ()) k in
  Alcotest.(check bool) "store pipelined" true
    (s.Schedule.entries.(st).Schedule.e_added_pipe >= 1)

let test_same_cycle_factor () =
  let k = broadcast_kernel 8 in
  let s = Schedule.run Schedule.Baseline k in
  (* src (node 0) is read by 8 adds; under the baseline they all land in
     cycle 0 *)
  Alcotest.(check int) "factor" 8 (Schedule.same_cycle_factor s 0)

let test_target_respected () =
  let s = Schedule.run ~target_mhz:150. Schedule.Baseline (chain_kernel 10) in
  Alcotest.(check bool) "slower clock packs more" true
    (s.Schedule.depth <= (Schedule.run ~target_mhz:600. Schedule.Baseline (chain_kernel 10)).Schedule.depth)

let test_bad_target () =
  Alcotest.check_raises "target" (Invalid_argument "Schedule.run: target <= 0")
    (fun () -> ignore (Schedule.run ~target_mhz:0. Schedule.Baseline (chain_kernel 2)))

(* ---- Report ---- *)

let test_report_text () =
  let s = Schedule.run Schedule.Baseline (chain_kernel 5) in
  let text = Report.to_string s in
  Alcotest.(check bool) "mentions kernel" true (String.length text > 40)

let test_report_latency () =
  let s = Schedule.run Schedule.Baseline (chain_kernel 5) in
  Alcotest.(check int) "latency = depth" s.Schedule.depth (Report.latency s)

let test_stage_widths_spindle () =
  (* a dot-product + scalar-broadcast kernel narrows to one value in the
     middle: the Fig. 17 spindle *)
  let k = Hlsb_designs.Vector_arith.single_kernel ~width:16 () in
  let s = Schedule.run (aware ()) k in
  let widths = Report.stage_widths s in
  Alcotest.(check bool) "has boundaries" true (Array.length widths > 3);
  let maxw = Array.fold_left max 0 widths in
  let minw = Array.fold_left min max_int widths in
  Alcotest.(check bool) "spindle shape" true (maxw > 4 * max 1 minw)

let test_chain_delays_bounded () =
  let s = Schedule.run Schedule.Baseline (chain_kernel 10) in
  Array.iter
    (fun d ->
      Alcotest.(check bool) "each cycle within target" true
        (d <= s.Schedule.target_ns +. 1e-6))
    (Report.chain_delays s)

let test_violations_baseline_vs_aware () =
  (* calibrated re-evaluation exposes violations in the baseline broadcast
     schedule, and none in the aware one *)
  let c = cal () in
  let kb = broadcast_kernel 256 in
  let sb = Schedule.run Schedule.Baseline kb in
  let sa = Schedule.run (aware ()) (broadcast_kernel 256) in
  Alcotest.(check bool) "baseline violates under calibrated delays" true
    (Report.violations c sb <> []);
  Alcotest.(check (list (pair int (float 0.001)))) "aware is clean" []
    (Report.violations c sa)

let suite =
  [
    Alcotest.test_case "deps respected (baseline)" `Quick
      (test_deps_respected Schedule.Baseline);
    Alcotest.test_case "deps respected (aware)" `Quick (fun () ->
      test_deps_respected (aware ()) ());
    Alcotest.test_case "chain fits (baseline)" `Quick
      (test_chain_fits_target Schedule.Baseline);
    Alcotest.test_case "chain fits (aware)" `Quick (fun () ->
      test_chain_fits_target (aware ()) ());
    Alcotest.test_case "chaining packs ops" `Quick test_chaining_packs_ops;
    Alcotest.test_case "baseline ignores broadcast" `Quick
      test_baseline_ignores_broadcast;
    Alcotest.test_case "aware adds latency" `Quick
      test_aware_adds_latency_for_broadcast;
    Alcotest.test_case "aware inserts registers" `Quick test_aware_inserts_registers;
    Alcotest.test_case "overhead is small" `Quick test_small_overhead;
    Alcotest.test_case "float latency" `Quick test_float_latency;
    Alcotest.test_case "mem distribution floor" `Quick test_mem_min_distribution;
    Alcotest.test_case "same-cycle factor" `Quick test_same_cycle_factor;
    Alcotest.test_case "target respected" `Quick test_target_respected;
    Alcotest.test_case "bad target" `Quick test_bad_target;
    Alcotest.test_case "report text" `Quick test_report_text;
    Alcotest.test_case "report latency" `Quick test_report_latency;
    Alcotest.test_case "stage widths spindle" `Quick test_stage_widths_spindle;
    Alcotest.test_case "chain delays bounded" `Quick test_chain_delays_bounded;
    Alcotest.test_case "violations baseline vs aware" `Quick
      test_violations_baseline_vs_aware;
  ]
