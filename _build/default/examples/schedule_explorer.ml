(* Schedule explorer: the genome kernel of section 5.2 (Fig. 13/14) under
   both delay models, with the per-cycle chain report the paper's tool
   derives from the HLS .rpt files — showing exactly which cycle the
   fanout-blind model over-packs and where the register module lands.

     dune exec examples/schedule_explorer.exe [unroll]   (default 64) *)

module Schedule = Hlsb_sched.Schedule
module Report = Hlsb_sched.Report
module Calibrate = Hlsb_delay.Calibrate
module Device = Hlsb_device.Device

let () =
  let unroll =
    if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 64
  in
  let device = Device.ultrascale_plus in
  let cal = Calibrate.shared device in
  let kernel () =
    Hlsb_designs.Genome.kernel ~back_search_count:unroll ~lane:0 ()
  in

  let baseline = Schedule.run Schedule.Baseline (kernel ()) in
  let aware = Schedule.run (Schedule.Broadcast_aware cal) (kernel ()) in

  Printf.printf "genome chaining kernel, BACK_SEARCH_COUNT = %d\n\n" unroll;
  Printf.printf "%-22s %8s %14s\n" "schedule" "depth" "regs inserted";
  Printf.printf "%-22s %8d %14d\n" baseline.Schedule.mode_label
    baseline.Schedule.depth
    (Schedule.registers_inserted baseline);
  Printf.printf "%-22s %8d %14d\n" aware.Schedule.mode_label
    aware.Schedule.depth
    (Schedule.registers_inserted aware);

  (* per-cycle chains: what the tool believes vs what the fabric will do *)
  let believed = Report.chain_delays baseline in
  let actual = Report.chain_delays_calibrated cal baseline in
  Printf.printf
    "\nHLS schedule, per-cycle chain delay (believed vs calibrated), target %.2f ns:\n"
    baseline.Schedule.target_ns;
  Array.iteri
    (fun c b ->
      Printf.printf "  cycle %2d: believed %5.2f ns   calibrated %5.2f ns%s\n" c b
        actual.(c)
        (if actual.(c) > baseline.Schedule.target_ns then "   <-- VIOLATION"
         else ""))
    believed;
  (match Report.violations cal baseline with
  | [] -> print_endline "\nno violations (try a larger unroll factor)"
  | vs ->
    Printf.printf
      "\n%d cycle(s) the HLS tool believes are fine will miss timing; the\n\
       broadcast-aware schedule splits them (section 4.1).\n"
      (List.length vs));

  let aware_actual = Report.chain_delays_calibrated cal aware in
  Printf.printf "\nbroadcast-aware schedule, worst calibrated cycle: %.2f ns\n"
    (Array.fold_left max 0. aware_actual);

  (* the first few cycles of the aware schedule, in .rpt style *)
  print_endline "\nschedule report (broadcast-aware, first 2000 chars):";
  let s = Report.to_string aware in
  print_endline (String.sub s 0 (min 2000 (String.length s)))
