(* Quickstart: build the paper's Figure 1 in thirty lines, watch the HLS
   flow mis-schedule it, and fix it with the broadcast-aware flow.

     dune exec examples/quickstart.exe

   The design is a pipelined loop whose body is unrolled 512 times; the
   loop-invariant value [source] is read by every unrolled instance, which
   silently becomes a 512-way broadcast in the datapath (paper section
   3.1). (Broadcast cost is a *spread* phenomenon: at small unroll factors
   the sinks sit close together and nothing goes wrong — scale the factor
   down and watch the two flows converge.) *)

open Hlsb_ir
module Device = Hlsb_device.Device
module Style = Hlsb_ctrl.Style

let i32 = Dtype.Int 32

let build_kernel () =
  let dag = Dag.create () in
  let in_fifo = Dag.add_fifo dag ~name:"in" ~dtype:i32 ~depth:8 in
  let out_fifo = Dag.add_fifo dag ~name:"out" ~dtype:(Dtype.Uint 256) ~depth:8 in
  (* `source` is defined outside the loop body: Fig. 1 line 1 *)
  let source = Dag.fifo_read dag ~fifo:in_fifo in
  let results = ref [] in
  (* #pragma HLS unroll, factor 512: Fig. 1 line 4 *)
  Transform.unrolled dag ~factor:512 (fun j ->
    let foo = Dag.input dag ~name:(Printf.sprintf "foo%d" j) ~dtype:i32 in
    let bar = Dag.input dag ~name:(Printf.sprintf "bar%d" j) ~dtype:i32 in
    (* a[j] = source + foo[j]; b[j] = a[j] - bar[j], then a little more
       per-lane arithmetic so each body instance has real area *)
    (* a[j] = source + foo[j]; b[j] = a[j] - bar[j]: exactly Fig. 2's
       add+sub chain behind the broadcast *)
    let a = Dag.op dag Op.Add ~dtype:i32 [ source; foo ] in
    let b = Dag.op dag Op.Sub ~dtype:i32 [ a; bar ] in
    results := b :: !results);
  (* Fig. 1 stores b[i]; we stream the lane results out in eight packed
     group words (real designs write the array back, they do not reduce) *)
  let lanes = Array.of_list (List.rev !results) in
  let groups =
    List.init 8 (fun g ->
      let members = Array.to_list (Array.sub lanes (g * 64) 64) in
      Transform.reduce_tree dag ~op:Op.Xor ~dtype:i32 members)
  in
  let packed = Dag.op dag Op.Concat ~dtype:(Dtype.Uint 256) groups in
  ignore (Dag.fifo_write dag ~fifo:out_fifo ~value:packed);
  Kernel.create ~name:"fig1" dag

let () =
  let kernel = build_kernel () in
  let device = Device.ultrascale_plus in

  (* 1. the broadcast is already visible at the source level *)
  print_endline "--- source-level broadcast classification ---";
  let df = Dataflow.create () in
  let p = Dataflow.add_process df ~name:"fig1" ~kernel () in
  ignore
    (Dataflow.add_channel df ~name:"in" ~src:(-1) ~dst:p ~dtype:i32 ());
  ignore (Dataflow.add_channel df ~name:"out" ~src:p ~dst:(-1) ~dtype:i32 ());
  print_string (Core.Classify.to_string (Core.Classify.analyze ~device df));

  (* 2. compile with the vendor-style flow and with the paper's flow *)
  print_endline "\n--- compilation: original vs broadcast-aware ---";
  let orig = Core.Flow.compile ~device ~recipe:Style.original ~name:"fig1" df in
  let opt = Core.Flow.compile ~device ~recipe:Style.optimized ~name:"fig1" df in
  print_endline (Core.Flow.summary orig);
  print_endline (Core.Flow.summary opt);
  Printf.printf "frequency gain: %.0f%%\n"
    (Core.Flow.improvement_pct ~orig ~opt);

  (* 3. where did the time go? the original's critical path runs through
     the broadcast *)
  print_endline "\n--- original design's critical path ---";
  List.iter
    (fun (s : Hlsb_physical.Timing.path_step) ->
      Printf.printf "  %-26s arrival %.2f ns\n" s.Hlsb_physical.Timing.ps_cell_name
        s.Hlsb_physical.Timing.ps_arrival)
    orig.Core.Flow.fr_timing.Hlsb_physical.Timing.path
