(* Compiles the paper's own code snippets (Figs. 1, 3, 5a, 13, 18) through
   the C front end and the full flow.

     dune exec examples/paper_snippets.exe *)

module Frontend = Hlsb_frontend.Frontend
module Style = Hlsb_ctrl.Style
module Device = Hlsb_device.Device

let fig1 =
  {|
void fig1(stream<int> &in_fifo, stream<int> &out_fifo, int foo[1024], int bar[1024]) {
  int source = in_fifo.read();
  int a[64];
  int b[64];
  for (int i = 0; i < 64; i++) {
#pragma HLS unroll
    a[i] = source + foo[i];
    b[i] = a[i] - bar[i];
  }
  int acc = 0;
  for (int i = 0; i < 64; i++) {
#pragma HLS unroll
    acc = acc + b[i];
  }
  out_fifo.write(acc);
}
|}

let fig3 =
  {|
void fig3(stream<long> &src) {
  long buffer[73728];
  for (int i = 0; i < 73728; i++) {
#pragma HLS pipeline
    buffer[i] = src.read();
  }
}
|}

let fig13 =
  {|
void chain(stream<int> &anchors, stream<int> &scores,
           int max_dist_x, int max_dist_y, int bw, short avg_qspan,
           int prev[64]) {
  for (int t = 0; t < 4096; t++) {
#pragma HLS pipeline
    int curr_x = anchors.read();
    int curr_y = anchors.read();
    int curr_tag = anchors.read();
    int best = -2147483647;
    for (int j = 0; j < 64; j++) {
#pragma HLS unroll
      int dist_x = prev[j].x - curr_x;
      int dist_y = prev[j].y - curr_y;
      int dd = abs(dist_x - dist_y);
      int min_d = min(dist_y, dist_x);
      int log_dd = log2(dd);
      int temp = min(min_d, prev[j].w);
      int dp_score = temp - dd * avg_qspan - log_dd;
      if ((dist_x == 0 || dist_x > max_dist_x) ||
          (dist_y > max_dist_y || dist_y <= 0) ||
          (dd > bw) || (curr_tag != prev[j].tag)) {
        dp_score = -2147483647;
      }
      best = max(best, dp_score);
    }
    scores.write(best);
  }
}
|}

let fig5a =
  {|
void flow_a(stream<int> &inA, stream<int> &outA1, stream<int> &outA2) {
  for (int i = 0; i < 1024; i++) {
#pragma HLS pipeline
    int a = inA.read();
    outA1.write(a >> 16);
    outA2.write(a & 65535);
  }
}

void flow_b(stream<int> &inB, stream<int> &outB1, stream<int> &outB2) {
  for (int i = 0; i < 1024; i++) {
#pragma HLS pipeline
    int b = inB.read();
    outB1.write(b >> 16);
    outB2.write(b & 65535);
  }
}

void top(stream<int> &inA, stream<int> &inB,
         stream<int> &outA1, stream<int> &outA2,
         stream<int> &outB1, stream<int> &outB2) {
#pragma HLS dataflow
  flow_a(inA, outA1, outA2);
  flow_b(inB, outB1, outB2);
}
|}

let fig18 =
  {|
void stream_buffer(stream<long> &in_fifo, stream<long> &out_fifo) {
  long buffer[65536];
  for (int i = 0; i < 65536; i++) {
#pragma HLS pipeline
    buffer[i] = in_fifo.read();
  }
  for (int i = 0; i < 65536; i++) {
#pragma HLS pipeline
    out_fifo.write(buffer[i]);
  }
}
|}

let compile_and_report label src =
  Printf.printf "--- %s ---\n" label;
  match Frontend.design_of_string src with
  | Error e -> Format.printf "frontend error: %a@." Frontend.pp_error e
  | Ok df ->
    let device = Device.ultrascale_plus in
    print_string (Core.Classify.to_string (Core.Classify.analyze ~device df));
    let orig = Core.Flow.compile ~device ~recipe:Style.original ~name:label df in
    let opt = Core.Flow.compile ~device ~recipe:Style.optimized ~name:label df in
    Printf.printf "original : %.0f MHz\noptimized: %.0f MHz (%+.0f%%)\n\n"
      orig.Core.Flow.fr_fmax_mhz opt.Core.Flow.fr_fmax_mhz
      (Core.Flow.improvement_pct ~orig ~opt)

let () =
  compile_and_report "Fig. 1 (loop unrolling)" fig1;
  compile_and_report "Fig. 3 (large array)" fig3;
  compile_and_report "Fig. 13 (genome chaining)" fig13;
  compile_and_report "Fig. 5a (dataflow sync)" fig5a;
  compile_and_report "Fig. 18 (stream buffer)" fig18
