(* The section 5.3 case study: the HBM stencil's 28 memory ports are
   expressed in one source loop, so the HLS front end synchronizes 28
   completely independent flows every iteration (Fig. 6a). Pruning the
   synchronization — splitting the loop — removes the reduce-broadcast
   structure and more than doubles the headroom, without changing a single
   output token.

     dune exec examples/dataflow_pruning.exe *)

open Hlsb_ir
module Device = Hlsb_device.Device
module Style = Hlsb_ctrl.Style
module Sync = Hlsb_ctrl.Sync
module Network = Hlsb_sim.Network

let () =
  let df = Hlsb_designs.Hbm_stencil.dataflow ~ports:28 () in

  print_endline "--- the glued network (one source loop) ---";
  print_string (Core.Classify.to_string (Core.Classify.analyze ~device:Device.alveo_u50 df));

  (* 1. what the pruning pass does *)
  let pruned = Sync.split_independent df in
  Printf.printf "\nsync groups before pruning: %d (largest: %d members)\n"
    (List.length (Dataflow.sync_groups df))
    (List.fold_left (fun a g -> max a (List.length g)) 0 (Dataflow.sync_groups df));
  Printf.printf "sync groups after pruning:  %d (largest: %d members)\n"
    (List.length (Dataflow.sync_groups pruned))
    (List.fold_left (fun a g -> max a (List.length g)) 0 (Dataflow.sync_groups pruned));

  (* 2. the Fmax consequence *)
  print_endline "\n--- frequency: naive sync vs pruned sync ---";
  let compile recipe tag =
    Core.Flow.compile ~device:Device.alveo_u50 ~recipe ~name:("hbm_" ^ tag) df
  in
  let naive =
    compile
      { Style.sched = Style.Sched_aware; pipe = Style.Skid { min_area = true }; sync = Style.Sync_naive }
      "naive"
  in
  let opt = compile Style.optimized "pruned" in
  print_endline (Core.Flow.summary naive);
  print_endline (Core.Flow.summary opt);
  Printf.printf "gain from pruning alone: %.0f%%  (paper: 191 -> 324 MHz, +70%%)\n"
    (Core.Flow.improvement_pct ~orig:naive ~opt);

  (* 3. the functional non-consequence: every flow's output stream is
     untouched, and decoupled flows ride through each other's stalls *)
  print_endline "\n--- token-level simulation ---";
  let slow_port = 5 in
  let ready ~chan ~cycle =
    (* one port's consumer is slow; the rest are always ready *)
    if chan mod 9 = slow_port then cycle mod 3 = 0 else true
  in
  let glued_run = Network.run df ~tokens:50 ~ready in
  let pruned_run = Network.run pruned ~tokens:50 ~ready in
  Printf.printf "glued:  all flows finish in %d cycles (barrier couples them)\n"
    glued_run.Network.cycles;
  Printf.printf "pruned: all flows finish in %d cycles\n" pruned_run.Network.cycles;
  let same_streams =
    List.for_all2
      (fun (c1, s1) (c2, s2) -> c1 = c2 && s1 = s2)
      glued_run.Network.delivered pruned_run.Network.delivered
  in
  Printf.printf "every output stream identical after pruning: %b\n" same_streams
