(* The Figure 18/19 walkthrough: a design as innocent as a stream buffer
   suffers from BOTH broadcast categories at once — the write data register
   fans out to every BRAM unit (data), and the stall/enable signal fans out
   to every unit and register (pipeline control). This example sweeps the
   buffer size through three optimization levels and then demonstrates, by
   cycle-accurate simulation, that skid-buffer control changes none of the
   pipeline's behaviour — only its clock.

     dune exec examples/stream_buffer_tour.exe *)

module Device = Hlsb_device.Device
module Style = Hlsb_ctrl.Style
module Pipeline = Hlsb_sim.Pipeline
module Table = Hlsb_util.Table

let sweep () =
  print_endline "--- Fmax vs buffer size (Fig. 19) ---";
  let t =
    Table.create
      ~headers:
        [
          ("words x 512b", Table.Right);
          ("original", Table.Right);
          ("data opt", Table.Right);
          ("data+ctrl opt", Table.Right);
          ("critical structure (original)", Table.Left);
        ]
  in
  List.iter
    (fun words ->
      let build () = Hlsb_designs.Stream_buffer.dataflow ~depth_words:words () in
      let compile recipe tag =
        Core.Flow.compile ~device:Device.ultrascale_plus ~recipe
          ~name:(Printf.sprintf "sb%d_%s" words tag)
          (build ())
      in
      let orig = compile Style.original "o" in
      let data_only =
        compile
          { Style.sched = Style.Sched_aware; pipe = Style.Stall; sync = Style.Sync_naive }
          "d"
      in
      let full = compile Style.optimized "f" in
      let structure =
        match orig.Core.Flow.fr_timing.Hlsb_physical.Timing.worst_net_class with
        | Some Hlsb_netlist.Netlist.Ctrl_pipeline -> "stall broadcast"
        | Some Hlsb_netlist.Netlist.Data_broadcast -> "data broadcast"
        | Some Hlsb_netlist.Netlist.Ctrl_sync -> "sync broadcast"
        | Some Hlsb_netlist.Netlist.Data | None -> "plain datapath"
      in
      Table.add_row t
        [
          string_of_int words;
          Printf.sprintf "%.0f MHz" orig.Core.Flow.fr_fmax_mhz;
          Printf.sprintf "%.0f MHz" data_only.Core.Flow.fr_fmax_mhz;
          Printf.sprintf "%.0f MHz" full.Core.Flow.fr_fmax_mhz;
          structure;
        ])
    [ 8192; 32768; 131072 ];
  print_string (Table.render t);
  print_endline
    "Fixing only the data broadcast is not enough: the enable broadcast\n\
     dominates until the control strategy changes too (paper section 5.5)."

let simulate () =
  print_endline "\n--- functional equivalence of the two control strategies ---";
  let inputs = List.init 40 (fun i -> i) in
  (* downstream that keeps pausing *)
  let ready c = c mod 7 <> 3 && c mod 11 <> 0 in
  let stages = 12 in
  let stall = Pipeline.run_stall ~stages ~inputs ~ready ~f:(fun x -> x * x) in
  let skid =
    Pipeline.run_skid ~stages
      ~skid_depth:(2 * (stages + 1))
      ~ctrl_delay:2 ~gate:Pipeline.Gate_credit ~inputs ~ready
      ~f:(fun x -> x * x)
  in
  Printf.printf "stall control: %d outputs in %d cycles\n"
    (List.length stall.Pipeline.outputs)
    stall.Pipeline.cycles;
  Printf.printf "skid control:  %d outputs in %d cycles (max occupancy %d, overflow %b)\n"
    (List.length skid.Pipeline.outputs)
    skid.Pipeline.cycles skid.Pipeline.max_occupancy skid.Pipeline.overflow;
  Printf.printf "output streams identical: %b\n"
    (stall.Pipeline.outputs = skid.Pipeline.outputs);
  (* and the sizing rule matters: *)
  let tight =
    Pipeline.run_skid ~stages ~skid_depth:(stages / 2) ~ctrl_delay:0
      ~gate:Pipeline.Gate_empty ~inputs
      ~ready:(fun c -> c < 5 || c > 70)
      ~f:(fun x -> x * x)
  in
  Printf.printf
    "undersized buffer (N/2 entries) under a long stall: overflow = %b\n"
    tight.Pipeline.overflow

let () =
  sweep ();
  simulate ()
