examples/quickstart.mli:
