examples/paper_snippets.ml: Core Format Hlsb_ctrl Hlsb_device Hlsb_frontend Printf
