examples/schedule_explorer.ml: Array Hlsb_delay Hlsb_designs Hlsb_device Hlsb_sched List Printf String Sys
