examples/paper_snippets.mli:
