examples/dataflow_pruning.ml: Core Dataflow Hlsb_ctrl Hlsb_designs Hlsb_device Hlsb_ir Hlsb_sim List Printf
