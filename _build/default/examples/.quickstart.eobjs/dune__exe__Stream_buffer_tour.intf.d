examples/stream_buffer_tour.mli:
