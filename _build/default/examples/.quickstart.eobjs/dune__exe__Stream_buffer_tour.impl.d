examples/stream_buffer_tour.ml: Core Hlsb_ctrl Hlsb_designs Hlsb_device Hlsb_netlist Hlsb_physical Hlsb_sim Hlsb_util List Printf
