examples/dataflow_pruning.mli:
