examples/quickstart.ml: Array Core Dag Dataflow Dtype Hlsb_ctrl Hlsb_device Hlsb_ir Hlsb_physical Kernel List Op Printf Transform
