(** Synchronization logic pruning (§4.2).

    Case 1 — dataflow over-synchronization (Fig. 5a/6a): processes written
    in one source loop are synchronized every iteration even when their
    flows never touch. The fix rebuilds the flow graph "at the granularity
    of the elementary flow control units", finds the isolated sub-graphs
    inside each sync group, and splits them into separate loops.

    Case 2 — parallel-module synchronization (Fig. 5b/6b): the controller
    ANDs the done of every parallel module before broadcasting the next
    start. When module latencies are statically known from the schedule
    report, it suffices to wait for the longest one; dynamic-latency
    modules must still be waited on (the paper's stated limitation). *)

open Hlsb_ir

val split_independent : Dataflow.t -> Dataflow.t
(** A copy of the network in which every sync group is replaced by one
    group per connected component of the channel graph restricted to that
    group. Processes and channels are unchanged. *)

type wait_set = {
  waited : int list;  (** processes whose done the controller observes *)
  skipped : int list;  (** statically-dominated processes *)
}

val longest_latency_wait : Dataflow.t -> int list -> wait_set
(** The §4.2 case-2 rule for one group of parallel modules: keep all
    dynamic-latency members; among the static ones keep only those whose
    latency equals the maximum (de-duplicated to one representative if it
    also dominates the dynamic set... it never does — dynamic members are
    always kept). Raises [Invalid_argument] on an empty group. *)

type cost = {
  reduce_fanin : int;  (** inputs of the done AND-tree *)
  start_fanout : int;  (** sinks of the broadcast start signal *)
}

val group_cost : wait:int list -> started:int list -> cost
(** Netlist-level cost of one synchronization domain. *)

val total_sync_fanout : Dataflow.t -> int
(** Sum over sync groups of reduce fan-in + start fan-out — the scalar the
    pruning drives down; reported in experiment tables. *)

(** {2 Interval-latency pruning (the paper's §4.2 future work)}

    "Our method cannot handle modules with dynamic latency, but it is
    possible to adopt symbolic execution to handle more situations, for
    example loops with variable bounds." — a module whose trip count is
    variable has a latency *interval* rather than a constant. A member can
    still be pruned whenever some other waited member's lower bound
    dominates its upper bound: the controller provably never waits on it. *)

type latency_bound =
  | Exact of int  (** statically fixed latency *)
  | Between of int * int  (** variable bounds: [lo, hi] cycles, lo <= hi *)
  | Unknown  (** fully dynamic: must always be waited on *)

val prune_with_bounds : (int * latency_bound) list -> wait_set
(** [prune_with_bounds members] keeps every [Unknown] member plus an anchor
    member with the greatest lower bound, and skips exactly those members
    whose upper bound the anchor's lower bound dominates. With only [Exact]
    bounds this coincides with {!longest_latency_wait}. Raises
    [Invalid_argument] on an empty list, duplicate ids, or an inverted
    interval. *)

val bound_of_trip_count :
  ii:int -> depth:int -> trip_lo:int -> trip_hi:int -> latency_bound
(** The symbolic-execution result for a pipelined loop whose trip count is
    only known to lie in [trip_lo, trip_hi]: latency = depth + ii *
    (trips - 1). [trip_lo = trip_hi] yields [Exact]. Raises
    [Invalid_argument] on non-positive ii/depth/trips or inverted range. *)
