type plan = {
  cuts : int list;
  cost_bits : int;
  depths : (int * int * int) list;
}

let required_depth ~pipeline_depth ?(ctrl_stages = 0) () =
  if pipeline_depth < 1 then invalid_arg "Skid.required_depth";
  pipeline_depth + 1 + ctrl_stages

(* Width at 1-based boundary position i of an N-stage pipeline. *)
let width_at widths out_width n i =
  if i = n then out_width
  else if i >= 1 && i < n then widths.(i - 1)
  else invalid_arg "Skid: position out of range"

let plan_of_cuts widths out_width n cuts =
  let rec go prev acc_cost acc_depths = function
    | [] -> (acc_cost, List.rev acc_depths)
    | i :: rest ->
      let w = width_at widths out_width n i in
      let depth = i - prev + 1 in
      go i (acc_cost + (depth * w)) ((i, depth, w) :: acc_depths) rest
  in
  let cost, depths = go 0 0 [] cuts in
  { cuts; cost_bits = cost; depths }

let check widths out_width =
  if out_width < 1 then invalid_arg "Skid: out_width < 1";
  Array.iter (fun w -> if w < 0 then invalid_arg "Skid: negative width") widths

let end_only ~widths ~out_width =
  check widths out_width;
  let n = Array.length widths + 1 in
  plan_of_cuts widths out_width n [ n ]

let min_area ~widths ~out_width =
  check widths out_width;
  let n = Array.length widths + 1 in
  let dp = Array.make (n + 1) max_int in
  let from = Array.make (n + 1) 0 in
  dp.(0) <- 0;
  for i = 1 to n do
    let w = width_at widths out_width n i in
    for prev = 0 to i - 1 do
      if dp.(prev) < max_int then begin
        let c = dp.(prev) + ((i - prev + 1) * w) in
        if c < dp.(i) then begin
          dp.(i) <- c;
          from.(i) <- prev
        end
      end
    done
  done;
  let rec back i acc = if i = 0 then acc else back from.(i) (i :: acc) in
  plan_of_cuts widths out_width n (back n [])

let brute_force ~widths ~out_width =
  check widths out_width;
  let n = Array.length widths + 1 in
  if n - 1 > 16 then invalid_arg "Skid.brute_force: too many boundaries";
  let best = ref None in
  let n_subsets = 1 lsl (n - 1) in
  for mask = 0 to n_subsets - 1 do
    let cuts = ref [ n ] in
    for i = n - 1 downto 1 do
      if mask land (1 lsl (i - 1)) <> 0 then cuts := i :: !cuts
    done;
    let p = plan_of_cuts widths out_width n !cuts in
    match !best with
    | Some b when b.cost_bits <= p.cost_bits -> ()
    | _ -> best := Some p
  done;
  match !best with
  | Some p -> p
  | None -> assert false
