lib/ctrl/style.mli:
