lib/ctrl/skid.mli:
