lib/ctrl/style.ml: Printf
