lib/ctrl/skid.ml: Array List
