lib/ctrl/sync.ml: Array Dataflow Hashtbl Hlsb_ir List Option
