lib/ctrl/sync.mli: Dataflow Hlsb_ir
