(** Skid-buffer-based pipeline control (§4.3).

    Instead of broadcasting a stall signal to every register of an N-stage
    pipeline, the pipeline always flows, each datum carries a valid bit,
    and a bounded bypass FIFO at the end absorbs the data in flight when
    the downstream back-pressures. With buffer depth >= N+1 no overflow can
    occur (+1 because the FIFO's empty flag deasserts one cycle after the
    first element lands). Throughput is identical to stall-based control.

    The buffer can also be split at narrow waists of the datapath
    (Fig. 12): a cut after stage M costs an (M+1)-deep buffer of that
    boundary's width, and the tail needs only (N-M+1) entries of the
    output width. Minimizing total bits over all cut choices is a simple
    dynamic program (the paper: "can be easily solved using dynamic
    programming, and the details are omitted"). *)

type plan = {
  cuts : int list;
      (** boundary positions (1-based, ascending; the last is always N) at
          which a skid buffer is placed *)
  cost_bits : int;  (** total buffer bits *)
  depths : (int * int * int) list;
      (** per buffer: (position, depth, width) *)
}

val required_depth : pipeline_depth:int -> ?ctrl_stages:int -> unit -> int
(** N+1, plus one entry per pipeline stage on the back-pressure path when
    the stop signal itself is registered ([ctrl_stages], default 0). *)

val end_only : widths:int array -> out_width:int -> plan
(** The single end-of-pipeline buffer of Fig. 11. [widths].(i) is the live
    width at the boundary after stage i+1 (length N-1 for an N-stage
    pipeline); [out_width] is the final output width. *)

val min_area : widths:int array -> out_width:int -> plan
(** Optimal multi-level split (Fig. 12) by DP over cut positions;
    [min_area] never costs more than [end_only]. *)

val brute_force : widths:int array -> out_width:int -> plan
(** Exhaustive search over all cut subsets — exponential; only for testing
    the DP on small instances. Raises [Invalid_argument] for more than 20
    boundaries. *)
