type pipeline_ctrl =
  | Stall
  | Skid of { min_area : bool }

type sync_strategy =
  | Sync_naive
  | Sync_pruned

type sched_mode =
  | Sched_hls
  | Sched_aware

type recipe = {
  sched : sched_mode;
  pipe : pipeline_ctrl;
  sync : sync_strategy;
}

let original = { sched = Sched_hls; pipe = Stall; sync = Sync_naive }

let optimized =
  { sched = Sched_aware; pipe = Skid { min_area = true }; sync = Sync_pruned }

let label r =
  let s = match r.sched with Sched_hls -> "hls" | Sched_aware -> "aware" in
  let p =
    match r.pipe with
    | Stall -> "stall"
    | Skid { min_area = true } -> "skid-min"
    | Skid { min_area = false } -> "skid"
  in
  let y = match r.sync with Sync_naive -> "naive" | Sync_pruned -> "pruned" in
  Printf.sprintf "%s/%s/%s" s p y
