(** Control-generation strategy switches threaded through the RTL
    generator; each Table-1 "Orig" column uses the first constructor of
    each type, each "Opt" column the alternative the paper proposes. *)

type pipeline_ctrl =
  | Stall  (** broadcast empty/full-derived stall to every stage (§3.3) *)
  | Skid of { min_area : bool }
      (** always-flowing pipeline + skid buffer(s); [min_area] enables the
          Fig. 12 multi-level split *)

type sync_strategy =
  | Sync_naive  (** AND all dones, broadcast start to all (§3.2) *)
  | Sync_pruned  (** split independent flows + longest-latency wait (§4.2) *)

type sched_mode =
  | Sched_hls  (** fanout-blind delay model *)
  | Sched_aware  (** §4.1 calibrated model *)

type recipe = {
  sched : sched_mode;
  pipe : pipeline_ctrl;
  sync : sync_strategy;
}

val original : recipe
(** What the commercial HLS flow emits today. *)

val optimized : recipe
(** All three of the paper's techniques enabled (min-area skid control). *)

val label : recipe -> string
