module Device = Hlsb_device.Device

type membank = {
  mb_units : int array;
  mb_read_out : int;
  mb_n_units : int;
  mb_read_latency : int;
}

let add_membank (d : Device.t) nl ?(read_pipeline = false) ~name ~width ~depth
    () =
  let n_units = Device.bram18_for ~width ~depth in
  let units =
    Array.init n_units (fun i ->
      Netlist.add_cell nl
        ~name:(Printf.sprintf "%s_u%d" name i)
        ~kind:Netlist.Mem ~delay:0.9 (* BRAM clk-to-dout on top of clk_q *)
        (* each cell is exactly one physical BRAM18 unit of the bank *)
        ~res:{ Netlist.zero_res with Netlist.r_bram18 = 1; r_luts = 2 })
  in
  (* Read-side selection uses the BRAM output-cascade muxes (16:1 per
     level, nearly LUT-free), as vendors infer for deep memories. *)
  let read_latency = ref 0 in
  let rec reduce level cells =
    match cells with
    | [] -> invalid_arg "Structs.add_membank: no units"
    | [ c ] -> c
    | _ ->
      let groups =
        let rec chunk acc cur n = function
          | [] -> List.rev (if cur = [] then acc else List.rev cur :: acc)
          | x :: rest ->
            if n = 16 then chunk (List.rev cur :: acc) [ x ] 1 rest
            else chunk acc (x :: cur) (n + 1) rest
        in
        chunk [] [] 0 cells
      in
      let next =
        List.mapi
          (fun i group ->
            let mux =
              Netlist.add_cell nl
                ~name:(Printf.sprintf "%s_rmux%d_%d" name level i)
                ~kind:Netlist.Comb ~delay:(2. *. d.t_lut)
                ~res:(Macro.logic ((width / 4) + 4))
            in
            List.iteri
              (fun j src ->
                ignore
                  (Netlist.add_net nl
                     ~name:(Printf.sprintf "%s_rnet%d_%d_%d" name level i j)
                     ~driver:src ~sinks:[ mux ] ~width ()))
              group;
            if read_pipeline then begin
              (* BRAM output-stage register: free in the macro *)
              let r =
                Netlist.add_cell nl
                  ~name:(Printf.sprintf "%s_rreg%d_%d" name level i)
                  ~kind:Netlist.Seq ~delay:0. ~res:Netlist.zero_res
              in
              ignore
                (Netlist.add_net nl
                   ~name:(Printf.sprintf "%s_rregn%d_%d" name level i)
                   ~driver:mux ~sinks:[ r ] ~width ());
              r
            end
            else mux)
          groups
      in
      if read_pipeline then incr read_latency;
      reduce (level + 1) next
  in
  let read_out = reduce 0 (Array.to_list units) in
  {
    mb_units = units;
    mb_read_out = read_out;
    mb_n_units = n_units;
    mb_read_latency = !read_latency;
  }

let connect_write nl ?(cls = Netlist.Data_broadcast) ~name ~driver mb ~width =
  Netlist.add_net nl ~cls ~name ~driver ~sinks:(Array.to_list mb.mb_units)
    ~width ()

let add_and_tree (d : Device.t) nl ~name ~inputs =
  match inputs with
  | [] -> invalid_arg "Structs.add_and_tree: empty"
  | [ x ] -> x
  | _ ->
    let rec reduce level cells =
      match cells with
      | [ c ] -> c
      | _ ->
        let rec chunk acc cur n = function
          | [] -> List.rev (if cur = [] then acc else List.rev cur :: acc)
          | x :: rest ->
            if n = 6 then chunk (List.rev cur :: acc) [ x ] 1 rest
            else chunk acc (x :: cur) (n + 1) rest
        in
        let groups = chunk [] [] 0 cells in
        let next =
          List.mapi
            (fun i group ->
              let lut =
                Netlist.add_cell nl
                  ~name:(Printf.sprintf "%s_and%d_%d" name level i)
                  ~kind:Netlist.Comb ~delay:d.t_lut ~res:(Macro.logic 6)
              in
              List.iteri
                (fun j src ->
                  ignore
                    (Netlist.add_net nl ~cls:Netlist.Ctrl_sync
                       ~name:(Printf.sprintf "%s_andnet%d_%d_%d" name level i j)
                       ~driver:src ~sinks:[ lut ] ~width:1 ()))
                group;
              lut)
            groups
        in
        reduce (level + 1) next
    in
    reduce 0 inputs

let add_register nl ~name ~width =
  Netlist.add_cell nl ~name ~kind:Netlist.Seq ~delay:0. ~res:(Macro.register width)

let add_reg_chain nl ~name ~width ~length =
  if length < 1 then invalid_arg "Structs.add_reg_chain: length < 1";
  let regs =
    List.init length (fun i ->
      add_register nl ~name:(Printf.sprintf "%s_%d" name i) ~width)
  in
  let rec link = function
    | a :: (b :: _ as rest) ->
      ignore
        (Netlist.add_net nl
           ~name:(Printf.sprintf "%s_link%d" name a)
           ~driver:a ~sinks:[ b ] ~width ());
      link rest
    | [ _ ] | [] -> ()
  in
  link regs;
  regs

let add_fanout_tree nl ~name ~driver ~sinks ~width ~levels ~leaf_fanout =
  if levels < 1 then invalid_arg "Structs.add_fanout_tree: levels < 1";
  if leaf_fanout < 1 then invalid_arg "Structs.add_fanout_tree: leaf_fanout < 1";
  let n_sinks = List.length sinks in
  if n_sinks = 0 then invalid_arg "Structs.add_fanout_tree: no sinks";
  let n_leaves = (n_sinks + leaf_fanout - 1) / leaf_fanout in
  (* Register counts per level grow geometrically from 1-ish to n_leaves. *)
  let counts =
    Array.init levels (fun i ->
      if i = levels - 1 then n_leaves
      else begin
        let frac = float_of_int (i + 1) /. float_of_int levels in
        max 1 (int_of_float (ceil (float_of_int n_leaves ** frac /. 2.)))
      end)
  in
  let make_level lvl count =
    List.init count (fun i ->
      add_register nl ~name:(Printf.sprintf "%s_l%d_%d" name lvl i) ~width)
  in
  let connect srcs dsts lvl =
    (* Split dsts into |srcs| contiguous groups. *)
    let n_src = List.length srcs and n_dst = List.length dsts in
    let per = (n_dst + n_src - 1) / n_src in
    let dst_arr = Array.of_list dsts in
    List.iteri
      (fun i src ->
        let lo = i * per in
        let hi = min n_dst (lo + per) - 1 in
        if lo <= hi then begin
          let group = Array.to_list (Array.sub dst_arr lo (hi - lo + 1)) in
          ignore
            (Netlist.add_net nl ~cls:Netlist.Data
               ~name:(Printf.sprintf "%s_t%d_%d" name lvl i)
               ~driver:src ~sinks:group ~width ())
        end)
      srcs
  in
  let rec build lvl prev =
    if lvl = levels then connect prev sinks lvl
    else begin
      let level = make_level lvl counts.(lvl) in
      connect prev level lvl;
      build (lvl + 1) level
    end
  in
  build 0 [ driver ];
  levels

let broadcast_register _d nl ?(cls = Netlist.Data) ~name ~driver ~sinks ~width () =
  Netlist.add_net nl ~cls ~name ~driver ~sinks ~width ()
