(** Netlist exporters: GraphViz DOT for inspection of broadcast structure,
    and a flat structural-Verilog view of the macro netlist (one module,
    cells as primitive instances) for interoperability with standard RTL
    tooling. The Verilog is *structural documentation* of the macro
    netlist — each macro cell becomes an opaque instance — rather than a
    synthesizable implementation of the operators themselves. *)

val to_dot :
  ?max_fanout_highlight:int -> Netlist.t -> string
(** GraphViz digraph: cells as nodes (shape by kind), nets as edges
    (colored by class); nets with fanout >= [max_fanout_highlight]
    (default 16) are drawn bold red so broadcast structures stand out. *)

val to_verilog : Netlist.t -> string
(** One flat Verilog module named after the netlist. Sequential cells
    become registered assignments, combinational macros become opaque
    `hlsb_<kind>` instances with input/output ports per net, memory units
    become `hlsb_bram18` instances. Deterministic output (cell order). *)

val write_file : path:string -> string -> unit
(** Write a string to a file (helper for the CLI emit commands). *)
