lib/netlist/netlist.ml: Array Hlsb_device Hlsb_util List Printf String
