lib/netlist/macro.ml: Hlsb_device Netlist
