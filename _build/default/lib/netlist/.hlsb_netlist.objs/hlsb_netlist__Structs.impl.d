lib/netlist/structs.ml: Array Hlsb_device List Macro Netlist Printf
