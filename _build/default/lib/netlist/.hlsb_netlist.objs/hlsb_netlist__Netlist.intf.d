lib/netlist/netlist.mli: Hlsb_device
