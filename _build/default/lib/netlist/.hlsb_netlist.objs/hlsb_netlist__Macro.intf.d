lib/netlist/macro.mli: Netlist
