lib/netlist/structs.mli: Hlsb_device Netlist
