module Vec = Hlsb_util.Vec
module Device = Hlsb_device.Device

type resources = {
  r_luts : int;
  r_ffs : int;
  r_bram18 : int;
  r_dsps : int;
}

let zero_res = { r_luts = 0; r_ffs = 0; r_bram18 = 0; r_dsps = 0 }

let add_res a b =
  {
    r_luts = a.r_luts + b.r_luts;
    r_ffs = a.r_ffs + b.r_ffs;
    r_bram18 = a.r_bram18 + b.r_bram18;
    r_dsps = a.r_dsps + b.r_dsps;
  }

type cell_kind =
  | Comb
  | Seq
  | Mem
  | Port_in
  | Port_out

type net_class =
  | Data
  | Data_broadcast
  | Ctrl_sync
  | Ctrl_pipeline

type cell = {
  c_name : string;
  c_kind : cell_kind;
  c_delay : float;
  c_res : resources;
}

type net = {
  n_name : string;
  n_driver : int;
  n_sinks : int array;
  n_width : int;
  n_class : net_class;
}

type t = {
  nl_name : string;
  cells : cell Vec.t;
  nets : net Vec.t;
}

let create ~name = { nl_name = name; cells = Vec.create (); nets = Vec.create () }
let name t = t.nl_name

let add_cell t ~name ~kind ~delay ~res =
  if delay < 0. then invalid_arg "Netlist.add_cell: negative delay";
  Vec.push t.cells { c_name = name; c_kind = kind; c_delay = delay; c_res = res }

let check_cell t c =
  if c < 0 || c >= Vec.length t.cells then
    invalid_arg "Netlist: cell id out of range"

let add_net t ?(cls = Data) ~name ~driver ~sinks ~width () =
  check_cell t driver;
  List.iter (check_cell t) sinks;
  if width < 1 then invalid_arg "Netlist.add_net: width < 1";
  (match (Vec.get t.cells driver).c_kind with
  | Port_out -> invalid_arg "Netlist.add_net: output port cannot drive"
  | Comb | Seq | Mem | Port_in -> ());
  Vec.push t.nets
    {
      n_name = name;
      n_driver = driver;
      n_sinks = Array.of_list sinks;
      n_width = width;
      n_class = cls;
    }

let n_cells t = Vec.length t.cells
let n_nets t = Vec.length t.nets

let cell t c =
  check_cell t c;
  Vec.get t.cells c

let net t n =
  if n < 0 || n >= Vec.length t.nets then
    invalid_arg "Netlist: net id out of range";
  Vec.get t.nets n

let iter_cells t f = Vec.iteri f t.cells
let iter_nets t f = Vec.iteri f t.nets

let fanout t n = Array.length (net t n).n_sinks

let max_fanout_net t ?cls () =
  let best = ref None in
  iter_nets t (fun id n ->
    let keep = match cls with None -> true | Some c -> n.n_class = c in
    if keep then
      match !best with
      | Some (_, b) when Array.length b.n_sinks >= Array.length n.n_sinks -> ()
      | _ -> best := Some (id, n));
  !best

let total_resources t =
  Vec.fold_left (fun acc c -> add_res acc c.c_res) zero_res t.cells

let utilization t (d : Device.t) =
  let r = total_resources t in
  let frac used cap = if cap = 0 then 0. else float_of_int used /. float_of_int cap in
  (frac r.r_luts d.luts, frac r.r_ffs d.ffs, frac r.r_bram18 d.bram18, frac r.r_dsps d.dsps)

(* Combinational cycle detection: DFS over comb-to-comb edges. *)
let comb_cycle t =
  let n = Vec.length t.cells in
  let adj = Array.make n [] in
  Vec.iteri
    (fun _ net ->
      let d = net.n_driver in
      if (Vec.get t.cells d).c_kind = Comb then
        Array.iter
          (fun s ->
            if (Vec.get t.cells s).c_kind = Comb then adj.(d) <- s :: adj.(d))
          net.n_sinks)
    t.nets;
  let color = Array.make n 0 in
  (* 0 white, 1 grey, 2 black *)
  let rec dfs v =
    if color.(v) = 1 then true
    else if color.(v) = 2 then false
    else begin
      color.(v) <- 1;
      let cyc = List.exists dfs adj.(v) in
      color.(v) <- 2;
      cyc
    end
  in
  let found = ref false in
  for v = 0 to n - 1 do
    if (not !found) && color.(v) = 0 then if dfs v then found := true
  done;
  !found

let validate t =
  let errors = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errors := s :: !errors) fmt in
  Vec.iteri
    (fun id n ->
      if n.n_driver < 0 || n.n_driver >= Vec.length t.cells then
        err "net %d: bad driver" id;
      Array.iter
        (fun s ->
          if s < 0 || s >= Vec.length t.cells then err "net %d: bad sink" id)
        n.n_sinks)
    t.nets;
  if !errors = [] && comb_cycle t then err "combinational cycle detected";
  match !errors with
  | [] -> Ok ()
  | es -> Error (String.concat "; " (List.rev es))

let merge dst src =
  let cell_map = Array.make (Vec.length src.cells) (-1) in
  Vec.iteri
    (fun i c -> cell_map.(i) <- Vec.push dst.cells c)
    src.cells;
  let net_map = Array.make (Vec.length src.nets) (-1) in
  Vec.iteri
    (fun i n ->
      let n' =
        {
          n with
          n_driver = cell_map.(n.n_driver);
          n_sinks = Array.map (fun s -> cell_map.(s)) n.n_sinks;
        }
      in
      net_map.(i) <- Vec.push dst.nets n')
    src.nets;
  (cell_map, net_map)

let stats_string t =
  let r = total_resources t in
  let max_fo =
    match max_fanout_net t () with
    | None -> 0
    | Some (_, n) -> Array.length n.n_sinks
  in
  Printf.sprintf
    "%s: %d cells, %d nets, max fanout %d, %d LUT / %d FF / %d BRAM18 / %d DSP"
    t.nl_name (Vec.length t.cells) (Vec.length t.nets) max_fo r.r_luts r.r_ffs
    r.r_bram18 r.r_dsps
