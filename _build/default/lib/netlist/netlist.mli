(** Macro-cell netlist: the RTL that HLS emits, at the granularity the
    timing analysis needs. A cell is one datapath operator, register bank,
    BRAM bank, DSP block, or control-logic macro; a net connects one driver
    to its sinks. Broadcast structures are simply nets with large sink
    lists — whether they came from the datapath (§3.1) or from control
    (§3.2/3.3) is recorded in [net_class] so reports can attribute timing
    failures to a broadcast category. *)

type resources = {
  r_luts : int;
  r_ffs : int;
  r_bram18 : int;
  r_dsps : int;
}

val zero_res : resources
val add_res : resources -> resources -> resources

type cell_kind =
  | Comb  (** combinational macro (operator, mux, and-tree level) *)
  | Seq  (** register bank: path endpoint + startpoint *)
  | Mem  (** BRAM bank with synchronous read: sequential for timing *)
  | Port_in
  | Port_out

type net_class =
  | Data  (** ordinary datapath net *)
  | Data_broadcast  (** datapath net known to be a §3.1 broadcast source *)
  | Ctrl_sync  (** §3.2 synchronization (done/start) net *)
  | Ctrl_pipeline  (** §3.3 pipeline flow-control (stall/enable) net *)

type cell = private {
  c_name : string;
  c_kind : cell_kind;
  c_delay : float;  (** intrinsic logic delay, ns (Seq: clk->q handled by device) *)
  c_res : resources;
}

type net = private {
  n_name : string;
  n_driver : int;
  n_sinks : int array;
  n_width : int;
  n_class : net_class;
}

type t

val create : name:string -> t
val name : t -> string

val add_cell :
  t ->
  name:string ->
  kind:cell_kind ->
  delay:float ->
  res:resources ->
  int

val add_net :
  t ->
  ?cls:net_class ->
  name:string ->
  driver:int ->
  sinks:int list ->
  width:int ->
  unit ->
  int
(** Raises [Invalid_argument] on out-of-range cells, [width < 1], or a
    driver that is an output port. Empty sink lists are allowed (dangling
    nets are legal RTL and are ignored by timing). *)

val n_cells : t -> int
val n_nets : t -> int
val cell : t -> int -> cell
val net : t -> int -> net
val iter_cells : t -> (int -> cell -> unit) -> unit
val iter_nets : t -> (int -> net -> unit) -> unit

val fanout : t -> int -> int
(** Sink count of a net. *)

val max_fanout_net : t -> ?cls:net_class -> unit -> (int * net) option
(** The highest-fanout net, optionally restricted to one class. *)

val total_resources : t -> resources

val utilization : t -> Hlsb_device.Device.t -> float * float * float * float
(** (lut, ff, bram, dsp) utilization as fractions of the device. *)

val validate : t -> (unit, string) result
(** Checks net endpoints and that no combinational cycle exists (walking
    Comb cells through nets). *)

val merge : t -> t -> int array * int array
(** [merge dst src] appends all cells/nets of [src] into [dst]; returns the
    (cell, net) id translation arrays. Used to stitch per-kernel netlists
    into a top-level design. *)

val stats_string : t -> string
