let sanitize name =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> c
      | _ -> '_')
    name

let kind_shape = function
  | Netlist.Comb -> "box"
  | Netlist.Seq -> "rect"
  | Netlist.Mem -> "box3d"
  | Netlist.Port_in -> "invtriangle"
  | Netlist.Port_out -> "triangle"

let class_color = function
  | Netlist.Data -> "gray40"
  | Netlist.Data_broadcast -> "blue"
  | Netlist.Ctrl_sync -> "darkgreen"
  | Netlist.Ctrl_pipeline -> "orange"

let to_dot ?(max_fanout_highlight = 16) nl =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf "digraph %s {\n  rankdir=LR;\n  node [fontsize=9];\n"
       (sanitize (Netlist.name nl)));
  Netlist.iter_cells nl (fun id c ->
    let style =
      match c.Netlist.c_kind with
      | Netlist.Seq -> ", style=filled, fillcolor=lightblue"
      | Netlist.Mem -> ", style=filled, fillcolor=khaki"
      | Netlist.Comb | Netlist.Port_in | Netlist.Port_out -> ""
    in
    Buffer.add_string buf
      (Printf.sprintf "  c%d [label=\"%s\", shape=%s%s];\n" id
         (sanitize c.Netlist.c_name)
         (kind_shape c.Netlist.c_kind)
         style));
  Netlist.iter_nets nl (fun _ n ->
    let fanout = Array.length n.Netlist.n_sinks in
    let attrs =
      if fanout >= max_fanout_highlight then
        Printf.sprintf "color=red, penwidth=2.0, label=\"%s (fo %d)\""
          (sanitize n.Netlist.n_name) fanout
      else Printf.sprintf "color=%s" (class_color n.Netlist.n_class)
    in
    Array.iter
      (fun s ->
        Buffer.add_string buf
          (Printf.sprintf "  c%d -> c%d [%s];\n" n.Netlist.n_driver s attrs))
      n.Netlist.n_sinks);
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let kind_module (c : Netlist.cell) =
  match c.Netlist.c_kind with
  | Netlist.Comb -> "hlsb_comb"
  | Netlist.Seq -> "hlsb_reg"
  | Netlist.Mem -> "hlsb_bram18"
  | Netlist.Port_in -> "hlsb_port_in"
  | Netlist.Port_out -> "hlsb_port_out"

let to_verilog nl =
  let buf = Buffer.create 8192 in
  let mname = sanitize (Netlist.name nl) in
  Buffer.add_string buf
    (Printf.sprintf
       "// structural export of macro netlist %s\n\
        // cells: %d, nets: %d\n\
        module %s (input wire clk, input wire rst);\n"
       (Netlist.name nl) (Netlist.n_cells nl) (Netlist.n_nets nl) mname);
  (* one wire per net *)
  Netlist.iter_nets nl (fun id n ->
    Buffer.add_string buf
      (Printf.sprintf "  wire [%d:0] n%d; // %s%s\n"
         (max 0 (n.Netlist.n_width - 1))
         id
         (sanitize n.Netlist.n_name)
         (match n.Netlist.n_class with
         | Netlist.Data -> ""
         | Netlist.Data_broadcast -> " [data broadcast]"
         | Netlist.Ctrl_sync -> " [sync]"
         | Netlist.Ctrl_pipeline -> " [pipeline ctrl]")));
  (* per-cell fanin/fanout net lists *)
  let n_cells = Netlist.n_cells nl in
  let fanin = Array.make n_cells [] in
  let fanout = Array.make n_cells [] in
  Netlist.iter_nets nl (fun id n ->
    fanout.(n.Netlist.n_driver) <- id :: fanout.(n.Netlist.n_driver);
    Array.iter (fun s -> fanin.(s) <- id :: fanin.(s)) n.Netlist.n_sinks);
  Netlist.iter_cells nl (fun id c ->
    let ports =
      List.mapi (fun i n -> Printf.sprintf ".i%d(n%d)" i n) (List.rev fanin.(id))
      @ List.mapi
          (fun i n -> Printf.sprintf ".o%d(n%d)" i n)
          (List.rev fanout.(id))
    in
    let ports =
      match c.Netlist.c_kind with
      | Netlist.Seq | Netlist.Mem -> ".clk(clk)" :: ".rst(rst)" :: ports
      | Netlist.Comb | Netlist.Port_in | Netlist.Port_out -> ports
    in
    Buffer.add_string buf
      (Printf.sprintf "  %s #(.DELAY_PS(%d)) u%d_%s (%s);\n" (kind_module c)
         (int_of_float (c.Netlist.c_delay *. 1000.))
         id
         (sanitize c.Netlist.c_name)
         (String.concat ", " ports)));
  Buffer.add_string buf "endmodule\n";
  Buffer.contents buf

let write_file ~path content =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc content)
