(** Resource footprints of the macro cells HLS instantiates, following
    7-series/UltraScale mapping conventions (LUT6 + carry chains, DSP48,
    BRAM18). Logic *delays* live in the delay library; this module only
    answers "how big is it". *)

open Netlist

val int_add : int -> resources
(** Ripple/carry adder of the given width. *)

val int_mul : int -> resources
(** DSP-mapped integer multiplier: ceil(w/27) x ceil(w/18) DSP48 blocks. *)

val int_div : int -> resources
(** LUT-based radix-2 divider (HLS default for variable divisors). *)

val float_add : [ `F32 | `F64 ] -> resources
val float_mul : [ `F32 | `F64 ] -> resources
val float_div : [ `F32 | `F64 ] -> resources

val compare_ : int -> resources
val logic : int -> resources
(** Bitwise and/or/xor/not of the given width. *)

val mux2 : int -> resources
(** 2:1 mux (a C ternary / select). *)

val shifter : int -> resources
(** Barrel shifter. *)

val priority_encoder : int -> resources
(** The [log2] if-else chain. *)

val register : int -> resources

val bram_bank : width:int -> depth:int -> resources
(** Memory bank; BRAM18 units per {!Hlsb_device.Device.bram18_for}. *)

val fifo : width:int -> depth:int -> resources
(** Small/shallow FIFOs map to LUTRAM + control; deep or wide ones to
    BRAM. The threshold (depth > 64 or width*depth > 1024 bits) follows the
    usual HLS implementation choice. *)

val and_tree : int -> resources
(** N-input AND reduction (the "all dones" tree of §3.2). *)

val and_tree_levels : int -> int
(** LUT levels of the reduction: ceil(log6 n), 0 for n <= 1. *)

val fsm : states:int -> resources
(** One-hot FSM state register + next-state logic. *)
