open Netlist

let luts n = { zero_res with r_luts = max 1 n }
let cdiv a b = (a + b - 1) / b

let int_add w = luts w

let int_mul w =
  let dsps = cdiv w 27 * cdiv w 18 in
  { zero_res with r_dsps = dsps; r_luts = w / 4 }

let int_div w = { zero_res with r_luts = w * w / 8; r_ffs = w * 3 }

let float_add = function
  | `F32 -> { zero_res with r_dsps = 2; r_luts = 220; r_ffs = 180 }
  | `F64 -> { zero_res with r_dsps = 3; r_luts = 650; r_ffs = 400 }

let float_mul = function
  | `F32 -> { zero_res with r_dsps = 3; r_luts = 90; r_ffs = 90 }
  | `F64 -> { zero_res with r_dsps = 11; r_luts = 250; r_ffs = 220 }

let float_div = function
  | `F32 -> { zero_res with r_luts = 800; r_ffs = 1300 }
  | `F64 -> { zero_res with r_luts = 3000; r_ffs = 4200 }

let compare_ w = luts (cdiv w 2)
let logic w = luts (cdiv w 2)
let mux2 w = luts w

let shifter w =
  let log2w =
    let rec go n acc = if n <= 1 then acc else go (n / 2) (acc + 1) in
    go w 0
  in
  luts (w * cdiv log2w 2)

let priority_encoder w = luts w
let register w = { zero_res with r_ffs = max 1 w }

let bram_bank ~width ~depth =
  {
    zero_res with
    r_bram18 = Hlsb_device.Device.bram18_for ~width ~depth;
    r_luts = 8 (* address/we glue *);
  }

let fifo ~width ~depth =
  (* shallow FIFOs map to SRL/LUTRAM shift registers regardless of width;
     only deep ones earn BRAM *)
  if depth > 64 then
    {
      zero_res with
      r_bram18 = Hlsb_device.Device.bram18_for ~width ~depth;
      r_luts = 40;
      r_ffs = 24;
    }
  else
    (* SRL/LUTRAM-based *)
    { zero_res with r_luts = (width * cdiv depth 16) + 20; r_ffs = width + 12 }

let and_tree n = if n <= 1 then zero_res else luts (cdiv n 5)

let and_tree_levels n =
  if n <= 1 then 0
  else begin
    let rec go remaining levels =
      if remaining <= 1 then levels else go (cdiv remaining 6) (levels + 1)
    in
    go n 0
  end

let fsm ~states =
  { zero_res with r_ffs = states; r_luts = max 2 (states / 2) }
