(** Canonical multi-cell structures shared by the RTL generator and the
    skeleton-design characterizer, so "a large buffer" or "an all-dones
    tree" means exactly the same netlist in both places.

    A logical buffer larger than one BRAM18 becomes several physically
    scattered memory units (Fig. 4): writes broadcast the data/address to
    every unit; reads come back through a LUT mux tree. *)

type membank = {
  mb_units : int array;  (** Mem cell ids, one per BRAM18 *)
  mb_read_out : int;  (** cell whose output is the read data *)
  mb_n_units : int;
  mb_read_latency : int;  (** registered mux levels (0 when combinational) *)
}

val add_membank :
  Hlsb_device.Device.t ->
  Netlist.t ->
  ?read_pipeline:bool ->
  name:string ->
  width:int ->
  depth:int ->
  unit ->
  membank
(** Adds the memory units plus the read-side cascade-mux tree. With
    [read_pipeline] (default false), the BRAM output registers are enabled
    and each mux level is registered — the extra read latency §4.1 budgets
    for large buffers; the registers cost no fabric (they are in the BRAM
    macro). The caller connects
    write data/address nets to [mb_units] (typically one net fanning out to
    all of them, class [Data_broadcast]) and reads from [mb_read_out]. *)

val connect_write :
  Netlist.t ->
  ?cls:Netlist.net_class ->
  name:string ->
  driver:int ->
  membank ->
  width:int ->
  int
(** One net from [driver] to every memory unit. Default class
    [Data_broadcast]. *)

val add_and_tree :
  Hlsb_device.Device.t ->
  Netlist.t ->
  name:string ->
  inputs:int list ->
  int
(** Balanced 6-input AND reduction over the given driver cells; returns the
    root cell. Nets are classed [Ctrl_sync]. For a single input, returns it
    unchanged. Raises [Invalid_argument] on an empty list. *)

val add_register : Netlist.t -> name:string -> width:int -> int
(** A [Seq] register bank cell. *)

val add_reg_chain :
  Netlist.t -> name:string -> width:int -> length:int -> int list
(** [length] registers connected in series; returns the cell ids in order.
    Used for balancing/pipelining delays. *)

val add_fanout_tree :
  Netlist.t ->
  name:string ->
  driver:int ->
  sinks:int list ->
  width:int ->
  levels:int ->
  leaf_fanout:int ->
  int
(** Pipelined register fanout tree from [driver] to [sinks]: [levels]
    register stages, the last of which is ceil(|sinks| / leaf_fanout)
    duplicate registers each driving a contiguous group of sinks. This is
    the structure phys_opt/retiming produces when §4.1's register insertion
    gives it the latency budget: each clock period pays one tree segment
    instead of the whole broadcast. Returns the number of register stages
    actually inserted (= [levels], for latency accounting). Raises
    [Invalid_argument] if [levels < 1], [leaf_fanout < 1] or [sinks] is
    empty. *)

val broadcast_register :
  Hlsb_device.Device.t ->
  Netlist.t ->
  ?cls:Netlist.net_class ->
  name:string ->
  driver:int ->
  sinks:int list ->
  width:int ->
  unit ->
  int
(** One net from [driver] to all [sinks]; the plain broadcast the HLS
    back-end emits (no fanout tree — the paper leaves replication to the
    physical tools). *)
