(* Abstract syntax of the C subset. Types only; construction happens in
   {!Parser}, consumption in {!Elab}. *)

type ctype =
  | C_bool
  | C_int of int * bool  (* width, signed *)
  | C_float
  | C_double

type binop =
  | B_add
  | B_sub
  | B_mul
  | B_div
  | B_mod
  | B_and
  | B_or
  | B_xor
  | B_shl
  | B_shr
  | B_lt
  | B_le
  | B_gt
  | B_ge
  | B_eq
  | B_ne
  | B_land
  | B_lor

type unop =
  | U_neg
  | U_lnot
  | U_bnot
  | U_addr  (* &x, used only in fifo.read(&x) *)

type expr =
  | Int_const of int64
  | Float_const of float
  | Var of string
  | Field of expr * string  (* prev[j].x *)
  | Index of expr * expr
  | Binop of binop * expr * expr
  | Unop of unop * expr
  | Ternary of expr * expr * expr
  | Call of string * expr list  (* abs, min, max, log2 *)
  | Method of string * string * expr list  (* fifo.read(), fifo.write(v) *)

type stmt =
  | Decl of ctype * string * int option * expr option
      (* type, name, array size, initializer *)
  | Stream_decl of ctype * string
  | Assign of expr * expr
  | Plus_assign of expr * expr
  | Expr_stmt of expr
  | For of for_loop
  | If of expr * stmt list * stmt list
  | Return of expr option
  | Pragma_stmt of string

and for_loop = {
  fl_var : string;
  fl_lo : int64;
  fl_hi : int64;  (* exclusive bound: var < fl_hi *)
  fl_pragmas : string list;  (* pragmas attached before/inside the loop *)
  fl_body : stmt list;
}

type param =
  | P_stream of ctype * string
  | P_scalar of ctype * string
  | P_array of ctype * string * int

type func = {
  f_name : string;
  f_ret : ctype option;
  f_params : param list;
  f_body : stmt list;
}

type program = func list
