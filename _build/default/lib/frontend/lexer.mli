(** Hand-written lexer for the C subset. Handles `//` and `/* */` comments,
    decimal/hex integer literals, float literals, and `#pragma` lines
    (delivered as one token). *)

exception Error of string * int  (** message, line *)

val tokenize : string -> Token.located list
(** Ends with an [Eof] token. Raises {!Error} on an illegal character or an
    unterminated comment. *)
