type t =
  | Ident of string
  | Int_lit of int64
  | Float_lit of float
  | Pragma of string
  | Kw_void
  | Kw_int
  | Kw_short
  | Kw_char
  | Kw_long
  | Kw_float
  | Kw_double
  | Kw_unsigned
  | Kw_bool
  | Kw_for
  | Kw_if
  | Kw_else
  | Kw_return
  | Kw_stream
  | Kw_const
  | Lparen
  | Rparen
  | Lbrace
  | Rbrace
  | Lbracket
  | Rbracket
  | Semi
  | Comma
  | Dot
  | Question
  | Colon
  | Assign
  | Plus
  | Minus
  | Star
  | Slash
  | Percent
  | Amp
  | Pipe
  | Caret
  | Tilde
  | Bang
  | Shl
  | Shr
  | Lt
  | Le
  | Gt
  | Ge
  | Eq
  | Ne
  | And_and
  | Or_or
  | Plus_plus
  | Plus_assign
  | Eof

let to_string = function
  | Ident s -> Printf.sprintf "identifier %S" s
  | Int_lit v -> Printf.sprintf "integer %Ld" v
  | Float_lit v -> Printf.sprintf "float %g" v
  | Pragma s -> Printf.sprintf "#pragma %s" s
  | Kw_void -> "void"
  | Kw_int -> "int"
  | Kw_short -> "short"
  | Kw_char -> "char"
  | Kw_long -> "long"
  | Kw_float -> "float"
  | Kw_double -> "double"
  | Kw_unsigned -> "unsigned"
  | Kw_bool -> "bool"
  | Kw_for -> "for"
  | Kw_if -> "if"
  | Kw_else -> "else"
  | Kw_return -> "return"
  | Kw_stream -> "stream"
  | Kw_const -> "const"
  | Lparen -> "("
  | Rparen -> ")"
  | Lbrace -> "{"
  | Rbrace -> "}"
  | Lbracket -> "["
  | Rbracket -> "]"
  | Semi -> ";"
  | Comma -> ","
  | Dot -> "."
  | Question -> "?"
  | Colon -> ":"
  | Assign -> "="
  | Plus -> "+"
  | Minus -> "-"
  | Star -> "*"
  | Slash -> "/"
  | Percent -> "%"
  | Amp -> "&"
  | Pipe -> "|"
  | Caret -> "^"
  | Tilde -> "~"
  | Bang -> "!"
  | Shl -> "<<"
  | Shr -> ">>"
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | Eq -> "=="
  | Ne -> "!="
  | And_and -> "&&"
  | Or_or -> "||"
  | Plus_plus -> "++"
  | Plus_assign -> "+="
  | Eof -> "end of input"

type located = {
  tok : t;
  line : int;
}
