exception Error of string * int

type state = {
  mutable toks : Token.located list;
}

let peek st =
  match st.toks with
  | [] -> Token.Eof
  | t :: _ -> t.Token.tok

let line st =
  match st.toks with
  | [] -> 0
  | t :: _ -> t.Token.line

let advance st =
  match st.toks with
  | [] -> ()
  | _ :: rest -> st.toks <- rest

let fail st msg = raise (Error (msg, line st))

let expect st tok =
  if peek st = tok then advance st
  else
    fail st
      (Printf.sprintf "expected %s but found %s" (Token.to_string tok)
         (Token.to_string (peek st)))

let expect_ident st =
  match peek st with
  | Token.Ident name ->
    advance st;
    name
  | t -> fail st ("expected an identifier, found " ^ Token.to_string t)

let expect_int st =
  match peek st with
  | Token.Int_lit v ->
    advance st;
    v
  | t -> fail st ("expected an integer literal, found " ^ Token.to_string t)

(* ---- types ---- *)

let rec parse_ctype st =
  match peek st with
  | Token.Kw_const ->
    advance st;
    parse_ctype st
  | Token.Kw_unsigned ->
    advance st;
    (match peek st with
    | Token.Kw_int -> advance st; Ast.C_int (32, false)
    | Token.Kw_short -> advance st; Ast.C_int (16, false)
    | Token.Kw_char -> advance st; Ast.C_int (8, false)
    | Token.Kw_long -> advance st; Ast.C_int (64, false)
    | _ -> Ast.C_int (32, false))
  | Token.Kw_int -> advance st; Ast.C_int (32, true)
  | Token.Kw_short -> advance st; Ast.C_int (16, true)
  | Token.Kw_char -> advance st; Ast.C_int (8, true)
  | Token.Kw_long -> advance st; Ast.C_int (64, true)
  | Token.Kw_float -> advance st; Ast.C_float
  | Token.Kw_bool -> advance st; Ast.C_bool
  | Token.Kw_double -> advance st; Ast.C_double
  | Token.Ident alias
    when alias = "data_t" || alias = "int32_t" || alias = "ap_int" ->
    advance st;
    Ast.C_int (32, true)
  | Token.Ident "int16_t" -> advance st; Ast.C_int (16, true)
  | Token.Ident "int8_t" -> advance st; Ast.C_int (8, true)
  | Token.Ident "uint64_t" -> advance st; Ast.C_int (64, false)
  | Token.Ident "uint32_t" -> advance st; Ast.C_int (32, false)
  | t -> fail st ("expected a type, found " ^ Token.to_string t)

let is_type_start = function
  | Token.Kw_int | Token.Kw_short | Token.Kw_char | Token.Kw_long
  | Token.Kw_float | Token.Kw_double | Token.Kw_unsigned | Token.Kw_bool
  | Token.Kw_const ->
    true
  | Token.Ident ("data_t" | "int32_t" | "int16_t" | "int8_t" | "uint64_t"
                | "uint32_t" | "ap_int") ->
    true
  | _ -> false

(* ---- expressions (precedence climbing) ---- *)

let rec parse_expr st = parse_ternary st

and parse_ternary st =
  let c = parse_lor st in
  if peek st = Token.Question then begin
    advance st;
    let t = parse_expr st in
    expect st Token.Colon;
    let e = parse_ternary st in
    Ast.Ternary (c, t, e)
  end
  else c

and binop_level ops next st =
  let rec loop lhs =
    match List.assoc_opt (peek st) ops with
    | Some op ->
      advance st;
      let rhs = next st in
      loop (Ast.Binop (op, lhs, rhs))
    | None -> lhs
  in
  loop (next st)

and parse_lor st = binop_level [ (Token.Or_or, Ast.B_lor) ] parse_land st
and parse_land st = binop_level [ (Token.And_and, Ast.B_land) ] parse_bor st
and parse_bor st = binop_level [ (Token.Pipe, Ast.B_or) ] parse_bxor st
and parse_bxor st = binop_level [ (Token.Caret, Ast.B_xor) ] parse_band st
and parse_band st = binop_level [ (Token.Amp, Ast.B_and) ] parse_equality st

and parse_equality st =
  binop_level [ (Token.Eq, Ast.B_eq); (Token.Ne, Ast.B_ne) ] parse_relational st

and parse_relational st =
  binop_level
    [
      (Token.Lt, Ast.B_lt);
      (Token.Le, Ast.B_le);
      (Token.Gt, Ast.B_gt);
      (Token.Ge, Ast.B_ge);
    ]
    parse_shift st

and parse_shift st =
  binop_level [ (Token.Shl, Ast.B_shl); (Token.Shr, Ast.B_shr) ] parse_additive st

and parse_additive st =
  binop_level [ (Token.Plus, Ast.B_add); (Token.Minus, Ast.B_sub) ] parse_multiplicative st

and parse_multiplicative st =
  binop_level
    [ (Token.Star, Ast.B_mul); (Token.Slash, Ast.B_div); (Token.Percent, Ast.B_mod) ]
    parse_unary st

and parse_unary st =
  match peek st with
  | Token.Minus ->
    advance st;
    Ast.Unop (Ast.U_neg, parse_unary st)
  | Token.Bang ->
    advance st;
    Ast.Unop (Ast.U_lnot, parse_unary st)
  | Token.Tilde ->
    advance st;
    Ast.Unop (Ast.U_bnot, parse_unary st)
  | Token.Amp ->
    advance st;
    Ast.Unop (Ast.U_addr, parse_unary st)
  | _ -> parse_postfix st

and parse_postfix st =
  let rec loop e =
    match peek st with
    | Token.Lbracket ->
      advance st;
      let idx = parse_expr st in
      expect st Token.Rbracket;
      loop (Ast.Index (e, idx))
    | Token.Dot -> (
      advance st;
      let field = expect_ident st in
      if peek st = Token.Lparen then begin
        (* method call: only on plain identifiers (stream objects) *)
        match e with
        | Ast.Var obj ->
          advance st;
          let args = parse_args st in
          loop (Ast.Method (obj, field, args))
        | _ -> fail st "method call on a non-identifier"
      end
      else loop (Ast.Field (e, field)))
    | _ -> e
  in
  loop (parse_primary st)

and parse_args st =
  if peek st = Token.Rparen then begin
    advance st;
    []
  end
  else begin
    let rec go acc =
      let e = parse_expr st in
      match peek st with
      | Token.Comma ->
        advance st;
        go (e :: acc)
      | Token.Rparen ->
        advance st;
        List.rev (e :: acc)
      | t -> fail st ("expected , or ) in arguments, found " ^ Token.to_string t)
    in
    go []
  end

and parse_primary st =
  match peek st with
  | Token.Int_lit v ->
    advance st;
    Ast.Int_const v
  | Token.Float_lit v ->
    advance st;
    Ast.Float_const v
  | Token.Lparen ->
    advance st;
    let e = parse_expr st in
    expect st Token.Rparen;
    e
  | Token.Ident name ->
    advance st;
    if peek st = Token.Lparen then begin
      advance st;
      let args = parse_args st in
      Ast.Call (name, args)
    end
    else Ast.Var name
  | t -> fail st ("expected an expression, found " ^ Token.to_string t)

(* ---- statements ---- *)

let rec parse_stmt st =
  match peek st with
  | Token.Pragma p ->
    advance st;
    Ast.Pragma_stmt p
  | Token.Kw_return ->
    advance st;
    if peek st = Token.Semi then begin
      advance st;
      Ast.Return None
    end
    else begin
      let e = parse_expr st in
      expect st Token.Semi;
      Ast.Return (Some e)
    end
  | Token.Kw_for -> parse_for st
  | Token.Kw_if -> parse_if st
  | Token.Kw_stream -> (
    (* stream<int> name; *)
    advance st;
    expect st Token.Lt;
    let ty = parse_ctype st in
    expect st Token.Gt;
    let name = expect_ident st in
    expect st Token.Semi;
    Ast.Stream_decl (ty, name))
  | t when is_type_start t ->
    let ty = parse_ctype st in
    let name = expect_ident st in
    let size =
      if peek st = Token.Lbracket then begin
        advance st;
        let v = expect_int st in
        expect st Token.Rbracket;
        Some (Int64.to_int v)
      end
      else None
    in
    let init =
      if peek st = Token.Assign then begin
        advance st;
        Some (parse_expr st)
      end
      else None
    in
    expect st Token.Semi;
    Ast.Decl (ty, name, size, init)
  | _ ->
    (* assignment or expression statement *)
    let lhs = parse_expr st in
    (match peek st with
    | Token.Assign ->
      advance st;
      let rhs = parse_expr st in
      expect st Token.Semi;
      Ast.Assign (lhs, rhs)
    | Token.Plus_assign ->
      advance st;
      let rhs = parse_expr st in
      expect st Token.Semi;
      Ast.Plus_assign (lhs, rhs)
    | Token.Semi ->
      advance st;
      Ast.Expr_stmt lhs
    | t -> fail st ("expected = or ; after expression, found " ^ Token.to_string t))

and parse_block st =
  expect st Token.Lbrace;
  let rec go acc =
    if peek st = Token.Rbrace then begin
      advance st;
      List.rev acc
    end
    else go (parse_stmt st :: acc)
  in
  go []

and parse_stmt_or_block st =
  if peek st = Token.Lbrace then parse_block st else [ parse_stmt st ]

and parse_if st =
  expect st Token.Kw_if;
  expect st Token.Lparen;
  let cond = parse_expr st in
  expect st Token.Rparen;
  let then_ = parse_stmt_or_block st in
  let else_ =
    if peek st = Token.Kw_else then begin
      advance st;
      parse_stmt_or_block st
    end
    else []
  in
  Ast.If (cond, then_, else_)

and parse_for st =
  expect st Token.Kw_for;
  expect st Token.Lparen;
  (match peek st with
  | Token.Kw_int -> advance st
  | t -> fail st ("loop variable must be declared int, found " ^ Token.to_string t));
  let var = expect_ident st in
  expect st Token.Assign;
  let lo = expect_int st in
  expect st Token.Semi;
  let var2 = expect_ident st in
  if var2 <> var then fail st "loop condition must test the loop variable";
  expect st Token.Lt;
  let hi = expect_int st in
  expect st Token.Semi;
  let var3 = expect_ident st in
  if var3 <> var then fail st "loop increment must update the loop variable";
  (match peek st with
  | Token.Plus_plus -> advance st
  | Token.Plus_assign ->
    advance st;
    let step = expect_int st in
    if step <> 1L then fail st "only unit loop steps are supported"
  | t -> fail st ("expected ++ in loop header, found " ^ Token.to_string t));
  expect st Token.Rparen;
  let raw_body = parse_block st in
  (* pragmas written as the first statements of the body attach to the
     loop, per the HLS convention *)
  let rec split_pragmas acc = function
    | Ast.Pragma_stmt p :: rest -> split_pragmas (p :: acc) rest
    | rest -> (List.rev acc, rest)
  in
  let pragmas, body = split_pragmas [] raw_body in
  Ast.For
    { fl_var = var; fl_lo = lo; fl_hi = hi; fl_pragmas = pragmas; fl_body = body }

(* ---- functions / program ---- *)

let parse_param st =
  if peek st = Token.Kw_stream then begin
    advance st;
    expect st Token.Lt;
    let ty = parse_ctype st in
    expect st Token.Gt;
    (* accept `stream<int> &name` like hls::stream references *)
    if peek st = Token.Amp then advance st;
    let name = expect_ident st in
    Ast.P_stream (ty, name)
  end
  else begin
    let ty = parse_ctype st in
    let name = expect_ident st in
    if peek st = Token.Lbracket then begin
      advance st;
      let v = expect_int st in
      expect st Token.Rbracket;
      Ast.P_array (ty, name, Int64.to_int v)
    end
    else Ast.P_scalar (ty, name)
  end

let parse_func st =
  let ret =
    if peek st = Token.Kw_void then begin
      advance st;
      None
    end
    else Some (parse_ctype st)
  in
  let name = expect_ident st in
  expect st Token.Lparen;
  let params =
    if peek st = Token.Rparen then begin
      advance st;
      []
    end
    else begin
      let rec go acc =
        let p = parse_param st in
        match peek st with
        | Token.Comma ->
          advance st;
          go (p :: acc)
        | Token.Rparen ->
          advance st;
          List.rev (p :: acc)
        | t -> fail st ("expected , or ) in parameters, found " ^ Token.to_string t)
      in
      go []
    end
  in
  let body = parse_block st in
  { Ast.f_name = name; f_ret = ret; f_params = params; f_body = body }

let program toks =
  let st = { toks } in
  let rec go acc =
    if peek st = Token.Eof then List.rev acc else go (parse_func st :: acc)
  in
  go []

let expr_of_tokens toks =
  let st = { toks } in
  let e = parse_expr st in
  if peek st <> Token.Eof then fail st "trailing tokens after expression";
  e
