exception Error of string * int

let keywords =
  [
    ("void", Token.Kw_void);
    ("int", Token.Kw_int);
    ("short", Token.Kw_short);
    ("char", Token.Kw_char);
    ("long", Token.Kw_long);
    ("float", Token.Kw_float);
    ("double", Token.Kw_double);
    ("unsigned", Token.Kw_unsigned);
    ("bool", Token.Kw_bool);
    ("for", Token.Kw_for);
    ("if", Token.Kw_if);
    ("else", Token.Kw_else);
    ("return", Token.Kw_return);
    ("stream", Token.Kw_stream);
    ("const", Token.Kw_const);
  ]

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_digit c = c >= '0' && c <= '9'
let is_ident_char c = is_ident_start c || is_digit c

let tokenize src =
  let n = String.length src in
  let pos = ref 0 in
  let line = ref 1 in
  let out = ref [] in
  let peek k = if !pos + k < n then Some src.[!pos + k] else None in
  let cur () = peek 0 in
  let advance () =
    (match cur () with Some '\n' -> incr line | _ -> ());
    incr pos
  in
  let emit tok = out := { Token.tok; line = !line } :: !out in
  let read_while pred =
    let start = !pos in
    while (match cur () with Some c -> pred c | None -> false) do
      advance ()
    done;
    String.sub src start (!pos - start)
  in
  let rec skip_block_comment start_line =
    match (cur (), peek 1) with
    | Some '*', Some '/' ->
      advance ();
      advance ()
    | Some _, _ ->
      advance ();
      skip_block_comment start_line
    | None, _ -> raise (Error ("unterminated /* comment", start_line))
  in
  while !pos < n do
    match cur () with
    | None -> ()
    | Some c -> (
      match c with
      | ' ' | '\t' | '\r' | '\n' -> advance ()
      | '/' when peek 1 = Some '/' ->
        while cur () <> None && cur () <> Some '\n' do
          advance ()
        done
      | '/' when peek 1 = Some '*' ->
        let l = !line in
        advance ();
        advance ();
        skip_block_comment l
      | '#' ->
        (* a preprocessor line; we understand #pragma and #define-free code *)
        let start = !pos in
        while cur () <> None && cur () <> Some '\n' do
          advance ()
        done;
        let text = String.sub src start (!pos - start) in
        let text = String.trim text in
        let body =
          if String.length text > 7 && String.sub text 0 7 = "#pragma" then
            String.trim (String.sub text 7 (String.length text - 7))
          else raise (Error ("unsupported preprocessor line: " ^ text, !line))
        in
        emit (Token.Pragma body)
      | c when is_ident_start c ->
        let word = read_while is_ident_char in
        (match List.assoc_opt word keywords with
        | Some kw -> emit kw
        | None -> emit (Token.Ident word))
      | c when is_digit c ->
        let start_line = !line in
        if c = '0' && (peek 1 = Some 'x' || peek 1 = Some 'X') then begin
          advance ();
          advance ();
          let hex = read_while (fun c -> is_digit c
            || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')) in
          if hex = "" then raise (Error ("bad hex literal", start_line));
          emit (Token.Int_lit (Int64.of_string ("0x" ^ hex)))
        end
        else begin
          let whole = read_while is_digit in
          if cur () = Some '.' && (match peek 1 with Some d -> is_digit d | None -> false)
          then begin
            advance ();
            let frac = read_while is_digit in
            let tail =
              if cur () = Some 'f' || cur () = Some 'F' then begin
                advance ();
                ""
              end
              else ""
            in
            ignore tail;
            emit (Token.Float_lit (float_of_string (whole ^ "." ^ frac)))
          end
          else if cur () = Some 'f' || cur () = Some 'F' then begin
            advance ();
            emit (Token.Float_lit (float_of_string whole))
          end
          else emit (Token.Int_lit (Int64.of_string whole))
        end
      | '(' -> advance (); emit Token.Lparen
      | ')' -> advance (); emit Token.Rparen
      | '{' -> advance (); emit Token.Lbrace
      | '}' -> advance (); emit Token.Rbrace
      | '[' -> advance (); emit Token.Lbracket
      | ']' -> advance (); emit Token.Rbracket
      | ';' -> advance (); emit Token.Semi
      | ',' -> advance (); emit Token.Comma
      | '.' -> advance (); emit Token.Dot
      | '?' -> advance (); emit Token.Question
      | ':' -> advance (); emit Token.Colon
      | '~' -> advance (); emit Token.Tilde
      | '^' -> advance (); emit Token.Caret
      | '%' -> advance (); emit Token.Percent
      | '*' -> advance (); emit Token.Star
      | '/' -> advance (); emit Token.Slash
      | '+' ->
        advance ();
        if cur () = Some '+' then begin advance (); emit Token.Plus_plus end
        else if cur () = Some '=' then begin advance (); emit Token.Plus_assign end
        else emit Token.Plus
      | '-' ->
        advance ();
        if cur () = Some '>' then raise (Error ("-> is not supported", !line))
        else emit Token.Minus
      | '&' ->
        advance ();
        if cur () = Some '&' then begin advance (); emit Token.And_and end
        else emit Token.Amp
      | '|' ->
        advance ();
        if cur () = Some '|' then begin advance (); emit Token.Or_or end
        else emit Token.Pipe
      | '<' ->
        advance ();
        if cur () = Some '<' then begin advance (); emit Token.Shl end
        else if cur () = Some '=' then begin advance (); emit Token.Le end
        else emit Token.Lt
      | '>' ->
        advance ();
        if cur () = Some '>' then begin advance (); emit Token.Shr end
        else if cur () = Some '=' then begin advance (); emit Token.Ge end
        else emit Token.Gt
      | '=' ->
        advance ();
        if cur () = Some '=' then begin advance (); emit Token.Eq end
        else emit Token.Assign
      | '!' ->
        advance ();
        if cur () = Some '=' then begin advance (); emit Token.Ne end
        else emit Token.Bang
      | c -> raise (Error (Printf.sprintf "illegal character %C" c, !line)))
  done;
  emit Token.Eof;
  List.rev !out
