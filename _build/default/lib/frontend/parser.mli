(** Recursive-descent parser for the C subset (see {!Frontend} for the
    grammar). *)

exception Error of string * int  (** message, line *)

val program : Token.located list -> Ast.program
val expr_of_tokens : Token.located list -> Ast.expr
(** Parse a standalone expression (testing convenience). *)
