(** Tokens of the C-subset front end (see {!Frontend} for the accepted
    language). Pragmas arrive as single tokens carrying their text, exactly
    as a real HLS front end treats `#pragma HLS ...` lines. *)

type t =
  | Ident of string
  | Int_lit of int64
  | Float_lit of float
  | Pragma of string  (** text after "#pragma", whitespace-normalized *)
  | Kw_void
  | Kw_int
  | Kw_short
  | Kw_char
  | Kw_long
  | Kw_float
  | Kw_double
  | Kw_unsigned
  | Kw_bool
  | Kw_for
  | Kw_if
  | Kw_else
  | Kw_return
  | Kw_stream
  | Kw_const
  | Lparen
  | Rparen
  | Lbrace
  | Rbrace
  | Lbracket
  | Rbracket
  | Semi
  | Comma
  | Dot
  | Question
  | Colon
  | Assign
  | Plus
  | Minus
  | Star
  | Slash
  | Percent
  | Amp
  | Pipe
  | Caret
  | Tilde
  | Bang
  | Shl
  | Shr
  | Lt
  | Le
  | Gt
  | Ge
  | Eq
  | Ne
  | And_and
  | Or_or
  | Plus_plus
  | Plus_assign
  | Eof

val to_string : t -> string

type located = {
  tok : t;
  line : int;
}
