lib/frontend/frontend.ml: Ast Dag Dataflow Elab Format Hashtbl Hlsb_ir Kernel Lexer List Parser Printf String
