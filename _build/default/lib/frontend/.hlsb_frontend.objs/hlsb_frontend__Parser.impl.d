lib/frontend/parser.ml: Ast Int64 List Printf Token
