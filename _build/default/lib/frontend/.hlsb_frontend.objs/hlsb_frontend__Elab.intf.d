lib/frontend/elab.mli: Ast Hlsb_ir
