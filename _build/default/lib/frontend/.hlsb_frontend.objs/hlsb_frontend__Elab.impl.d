lib/frontend/elab.ml: Array Ast Dag Dataflow Dtype Hashtbl Hlsb_ir Int64 Kernel List Op Option Printf String
