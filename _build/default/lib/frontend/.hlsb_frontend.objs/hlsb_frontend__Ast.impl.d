lib/frontend/ast.ml:
