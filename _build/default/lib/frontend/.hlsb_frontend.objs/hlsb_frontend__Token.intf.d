lib/frontend/token.mli:
