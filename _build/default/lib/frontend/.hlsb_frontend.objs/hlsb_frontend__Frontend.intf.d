lib/frontend/frontend.mli: Ast Format Hlsb_ir
