lib/rtlgen/design.mli: Hlsb_ctrl Hlsb_device Hlsb_ir Hlsb_netlist
