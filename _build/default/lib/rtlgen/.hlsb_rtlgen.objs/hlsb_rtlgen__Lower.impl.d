lib/rtlgen/lower.ml: Array Dag Dtype Hashtbl Hlsb_ctrl Hlsb_delay Hlsb_device Hlsb_ir Hlsb_netlist Hlsb_sched Kernel List Op Option Printf
