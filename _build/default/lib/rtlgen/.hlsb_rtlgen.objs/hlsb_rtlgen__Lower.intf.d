lib/rtlgen/lower.mli: Hlsb_ctrl Hlsb_device Hlsb_netlist Hlsb_sched
