lib/rtlgen/design.ml: Array Dataflow Dtype Hlsb_ctrl Hlsb_delay Hlsb_device Hlsb_ir Hlsb_netlist Hlsb_sched Kernel List Lower Option Printf
