(** Lowers one scheduled kernel to macro cells and nets, reproducing the
    RTL structures the paper dissects:

    - datapath operators become combinational macros; values crossing cycle
      boundaries get pipeline registers (a shift register when consumed
      several cycles later);
    - under the baseline flow a broadcast value is one raw net from its
      producer to every same-cycle reader — mid-chain, where phys_opt
      cannot replicate it (§3.1);
    - under the broadcast-aware flow, values the scheduler re-timed travel
      through pipelined fanout trees, which the placement refinement turns
      into geometric waypoints (§4.1's register insertion);
    - buffers expand to their physical BRAM units with a write broadcast
      and a read mux tree (Fig. 4);
    - stall-based control drives one [Ctrl_pipeline] net from the FIFO
      status logic to *every* sequential cell of the kernel (Fig. 8), while
      skid control keeps the pipeline free-running behind local gates and
      bounded skid FIFOs (§4.3). *)

type t = {
  lw_name : string;
  lw_depth : int;  (** pipeline stages *)
  lw_done : int;  (** cell producing the kernel's done/last-valid flag *)
  lw_start_sinks : int list;  (** cells a controller's start must reach *)
  lw_fifo_write_ifaces : (string * int * int) list;
      (** (fifo name, interface cell, width) for cross-kernel channels *)
  lw_fifo_read_ifaces : (string * int * int) list;
  lw_seq_cells : int list;  (** every sequential cell (stall-net sinks) *)
  lw_skid_bits : int;  (** bits of skid buffering added (0 under stall) *)
  lw_registers_added : int;  (** §4.1 register modules inserted *)
}

val lower :
  Hlsb_device.Device.t ->
  Hlsb_netlist.Netlist.t ->
  pipe:Hlsb_ctrl.Style.pipeline_ctrl ->
  fanout_trees:bool ->
  Hlsb_sched.Schedule.t ->
  t
(** Appends the kernel's cells/nets to the given netlist. [fanout_trees]
    enables the §4.1 pipelined broadcast trees (on for broadcast-aware
    recipes, off for the baseline). *)
