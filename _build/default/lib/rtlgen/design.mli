(** Top-level RTL generation for a dataflow design: schedules every kernel,
    lowers them into one netlist, wires cross-kernel FIFO channels by name,
    and emits the synchronization controllers — naive (one AND-tree over
    every done in a sync group, one start broadcast to every member,
    Fig. 6) or pruned (§4.2: independent flows get their own controller;
    parallel modules wait only on the longest static latency). *)

type kernel_info = {
  ki_name : string;
  ki_depth : int;
  ki_registers_added : int;
  ki_skid_bits : int;
}

type t = {
  netlist : Hlsb_netlist.Netlist.t;
  device : Hlsb_device.Device.t;
  recipe : Hlsb_ctrl.Style.recipe;
  kernels : kernel_info list;
  sync_groups_emitted : int;
  max_sync_fanout : int;  (** largest start-broadcast fanout emitted *)
}

val generate :
  ?target_mhz:float ->
  device:Hlsb_device.Device.t ->
  recipe:Hlsb_ctrl.Style.recipe ->
  name:string ->
  Hlsb_ir.Dataflow.t ->
  t
(** Raises [Invalid_argument] if the dataflow network fails validation or a
    channel endpoint kernel lacks the correspondingly-named FIFO. *)

val single_kernel :
  ?target_mhz:float ->
  device:Hlsb_device.Device.t ->
  recipe:Hlsb_ctrl.Style.recipe ->
  Hlsb_ir.Kernel.t ->
  t
(** Convenience wrapper for designs that are one pipelined kernel. *)
