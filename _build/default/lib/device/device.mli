(** FPGA device models: resource capacities (for the utilization columns of
    Table 1) and the wire-delay constants of the synthetic physical backend.

    The grid abstracts the column-based layout of Xilinx parts: a [cols] x
    [rows] array of slices, with BRAM and DSP columns interleaved every few
    slice columns. Placement distances are measured in slice-grid units and
    converted to nanoseconds by [t_net_dist]. *)

type t = {
  name : string;
  family : string;
  board : string;  (** the board the paper used this part on *)
  luts : int;
  ffs : int;
  bram18 : int;  (** 18 kbit BRAM units *)
  dsps : int;
  cols : int;
  rows : int;
  lut_per_slice : int;
  ff_per_slice : int;
  bram_col_every : int;  (** a BRAM column after every N slice columns *)
  dsp_col_every : int;
  t_clk_q : float;  (** ns, register clock-to-out *)
  t_setup : float;  (** ns, register setup *)
  t_lut : float;  (** ns, one LUT level of logic *)
  t_net_base : float;  (** ns, minimum routed-net delay *)
  t_net_fanout : float;  (** ns coefficient on ln(1 + fanout) *)
  t_net_dist : float;  (** ns per slice-grid unit of half-perimeter *)
}

val ultrascale_plus : t
(** VU9P-class part, the AWS F1 instance FPGA. *)

val zynq_7z045 : t
(** ZC706 board (face detection row of Table 1). *)

val virtex7_690t : t
(** Alpha-Data board (pattern matching row of Table 1). *)

val alveo_u50 : t
(** VU35P-class HBM part (HBM stencil row of Table 1). *)

val all : t list

val n_slices : t -> int
val slices_for_luts : t -> int -> int
(** Slices needed to hold that many LUTs (ceiling). *)

val bram18_bits : int
(** Capacity of one BRAM18 unit, data bits. *)

val bram18_for : width:int -> depth:int -> int
(** BRAM18 units needed for a [width]-bit x [depth]-word memory, accounting
    for both total bits and the max per-unit port width (36). *)

val find : string -> t option
(** Look up a device by [name]. *)

val pp : Format.formatter -> t -> unit
