lib/device/device.ml: Format List
