lib/device/device.mli: Format
