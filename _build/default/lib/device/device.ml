type t = {
  name : string;
  family : string;
  board : string;
  luts : int;
  ffs : int;
  bram18 : int;
  dsps : int;
  cols : int;
  rows : int;
  lut_per_slice : int;
  ff_per_slice : int;
  bram_col_every : int;
  dsp_col_every : int;
  t_clk_q : float;
  t_setup : float;
  t_lut : float;
  t_net_base : float;
  t_net_fanout : float;
  t_net_dist : float;
}

(* Grid dimensions cover the whole fabric in slice-sized tiles: slices plus
   the area of the DSP and BRAM columns (~3 and ~5 tiles per site), so a
   design legal on the real part also fits the model. The placer never
   needs the exact die aspect ratio, only a plausible area. *)

let ultrascale_plus =
  {
    name = "xcvu9p";
    family = "UltraScale+";
    board = "AWS F1";
    luts = 1_182_240;
    ffs = 2_364_480;
    bram18 = 4_320;
    dsps = 6_840;
    cols = 435;
    rows = 436;
    lut_per_slice = 8;
    ff_per_slice = 16;
    bram_col_every = 12;
    dsp_col_every = 9;
    t_clk_q = 0.10;
    t_setup = 0.06;
    t_lut = 0.12;
    t_net_base = 0.25;
    t_net_fanout = 0.12;
    t_net_dist = 0.013;
  }

let zynq_7z045 =
  {
    name = "xc7z045";
    family = "Zynq-7000";
    board = "ZC706";
    luts = 218_600;
    ffs = 437_200;
    bram18 = 1_090;
    dsps = 900;
    cols = 189;
    rows = 190;
    lut_per_slice = 8;
    ff_per_slice = 16;
    bram_col_every = 12;
    dsp_col_every = 10;
    t_clk_q = 0.15;
    t_setup = 0.08;
    t_lut = 0.17;
    t_net_base = 0.36;
    t_net_fanout = 0.15;
    t_net_dist = 0.019;
  }

let virtex7_690t =
  {
    name = "xc7vx690t";
    family = "Virtex-7";
    board = "Alpha-Data ADM-PCIE-7V3";
    luts = 433_200;
    ffs = 866_400;
    bram18 = 2_940;
    dsps = 3_600;
    cols = 283;
    rows = 284;
    lut_per_slice = 8;
    ff_per_slice = 16;
    bram_col_every = 12;
    dsp_col_every = 10;
    t_clk_q = 0.14;
    t_setup = 0.08;
    t_lut = 0.16;
    t_net_base = 0.34;
    t_net_fanout = 0.14;
    t_net_dist = 0.017;
  }

let alveo_u50 =
  {
    name = "xcu50";
    family = "UltraScale+ (HBM)";
    board = "Alveo U50";
    luts = 872_000;
    ffs = 1_743_000;
    bram18 = 2_688;
    dsps = 5_952;
    cols = 375;
    rows = 376;
    lut_per_slice = 8;
    ff_per_slice = 16;
    bram_col_every = 12;
    dsp_col_every = 9;
    t_clk_q = 0.10;
    t_setup = 0.06;
    t_lut = 0.12;
    t_net_base = 0.26;
    t_net_fanout = 0.12;
    t_net_dist = 0.014;
  }

let all = [ ultrascale_plus; zynq_7z045; virtex7_690t; alveo_u50 ]

let n_slices t = t.cols * t.rows

let slices_for_luts t luts = (luts + t.lut_per_slice - 1) / t.lut_per_slice

let bram18_bits = 18 * 1024

let bram18_for ~width ~depth =
  if width <= 0 || depth <= 0 then invalid_arg "Device.bram18_for";
  let by_bits = ((width * depth) + bram18_bits - 1) / bram18_bits in
  (* A BRAM18 exposes at most 36 data bits per port: wide words need
     width/36 units in parallel regardless of total bits. *)
  let by_width = (width + 35) / 36 in
  max by_bits by_width

let find name = List.find_opt (fun d -> d.name = name) all

let pp fmt t =
  Format.fprintf fmt "%s (%s, %s): %d LUT / %d FF / %d BRAM18 / %d DSP"
    t.name t.family t.board t.luts t.ffs t.bram18 t.dsps
