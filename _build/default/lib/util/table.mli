(** Plain-text table rendering for experiment reports (paper-style rows). *)

type align =
  | Left
  | Right

type t

val create : headers:(string * align) list -> t
(** A table with the given column headers and alignments. *)

val add_row : t -> string list -> unit
(** Append a row. Raises [Invalid_argument] if the arity does not match the
    header. *)

val add_rule : t -> unit
(** Append a horizontal rule. *)

val render : t -> string
(** Render with box-drawing separators, columns padded to content width. *)

val pp : Format.formatter -> t -> unit
