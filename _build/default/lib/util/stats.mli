(** Small statistics helpers used by delay characterization and reports. *)

val mean : float list -> float
(** Arithmetic mean. Raises [Invalid_argument] on the empty list. *)

val stddev : float list -> float
(** Population standard deviation. Raises [Invalid_argument] on the empty
    list. *)

val percentile : float -> float list -> float
(** [percentile p xs] is the [p]-th percentile (0. <= p <= 100.) of [xs]
    using linear interpolation between closest ranks. Raises
    [Invalid_argument] on the empty list or out-of-range [p]. *)

val smooth_neighbors : window:int -> float array -> float array
(** [smooth_neighbors ~window xs] averages each point with up to [window]
    neighbours on each side (a centered moving average, truncated at the
    boundaries). [window = 0] is the identity. Used to suppress the random
    noise of the heuristic backend when characterizing broadcast delays
    (paper section 4.1). Raises [Invalid_argument] if [window < 0]. *)

val total_variation : float array -> float
(** Sum of absolute successive differences; smoothing should not increase
    it. *)

val geometric_mean : float list -> float
(** Geometric mean of positive values. Raises [Invalid_argument] on the
    empty list or non-positive entries. *)
