(** Minimal directed-graph algorithms over nodes [0 .. n-1], used for
    dataflow connectivity, netlist traversal and schedule dependence
    checks. *)

type t
(** A directed graph with a fixed number of nodes. *)

val create : int -> t
(** [create n] is an edgeless graph on [n] nodes. *)

val add_edge : t -> int -> int -> unit
(** [add_edge g u v] adds a directed edge u -> v (duplicates allowed, kept).
    Raises [Invalid_argument] on out-of-range nodes. *)

val n_nodes : t -> int

val succs : t -> int -> int list
(** Successors of a node, in insertion order. *)

val preds : t -> int -> int list
(** Predecessors of a node, in insertion order. *)

val topological_order : t -> int list option
(** [Some order] with every edge going forward in [order], or [None] if the
    graph has a cycle. *)

val connected_components : t -> int array
(** Weakly-connected component index per node; components are numbered
    densely from 0 in order of first appearance. *)

val longest_path_lengths : t -> weight:(int -> float) -> float array option
(** [longest_path_lengths g ~weight] is, per node, the largest sum of node
    weights over paths ending at that node (inclusive). [None] on cycles. *)

val reachable_from : t -> int list -> bool array
(** Forward reachability from a set of sources (sources included). *)
