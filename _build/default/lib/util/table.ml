type align =
  | Left
  | Right

type row =
  | Cells of string list
  | Rule

type t = {
  headers : (string * align) list;
  mutable rows : row list; (* reversed *)
}

let create ~headers = { headers; rows = [] }

let add_row t cells =
  if List.length cells <> List.length t.headers then
    invalid_arg "Table.add_row: arity mismatch";
  t.rows <- Cells cells :: t.rows

let add_rule t = t.rows <- Rule :: t.rows

let render t =
  let ncols = List.length t.headers in
  let widths = Array.make ncols 0 in
  let measure cells =
    List.iteri (fun i c -> widths.(i) <- max widths.(i) (String.length c)) cells
  in
  measure (List.map fst t.headers);
  List.iter (function Cells c -> measure c | Rule -> ()) t.rows;
  let pad align width s =
    let n = width - String.length s in
    if n <= 0 then s
    else
      match align with
      | Left -> s ^ String.make n ' '
      | Right -> String.make n ' ' ^ s
  in
  let aligns = List.map snd t.headers in
  let buf = Buffer.create 256 in
  let emit_cells cells =
    Buffer.add_string buf "| ";
    List.iteri
      (fun i (c, a) ->
        if i > 0 then Buffer.add_string buf " | ";
        Buffer.add_string buf (pad a widths.(i) c))
      (List.combine cells aligns);
    Buffer.add_string buf " |\n"
  in
  let emit_rule () =
    Buffer.add_char buf '+';
    Array.iter
      (fun w ->
        Buffer.add_string buf (String.make (w + 2) '-');
        Buffer.add_char buf '+')
      widths;
    Buffer.add_char buf '\n'
  in
  emit_rule ();
  emit_cells (List.map fst t.headers);
  emit_rule ();
  List.iter
    (function Cells c -> emit_cells c | Rule -> emit_rule ())
    (List.rev t.rows);
  emit_rule ();
  Buffer.contents buf

let pp fmt t = Format.pp_print_string fmt (render t)
