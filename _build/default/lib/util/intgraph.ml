type t = {
  n : int;
  succ : int list array; (* reversed insertion order internally *)
  pred : int list array;
}

let create n =
  if n < 0 then invalid_arg "Intgraph.create: negative size";
  { n; succ = Array.make n []; pred = Array.make n [] }

let check t v =
  if v < 0 || v >= t.n then invalid_arg "Intgraph: node out of range"

let add_edge t u v =
  check t u;
  check t v;
  t.succ.(u) <- v :: t.succ.(u);
  t.pred.(v) <- u :: t.pred.(v)

let n_nodes t = t.n

let succs t u =
  check t u;
  List.rev t.succ.(u)

let preds t v =
  check t v;
  List.rev t.pred.(v)

let topological_order t =
  let indeg = Array.make t.n 0 in
  for u = 0 to t.n - 1 do
    List.iter (fun v -> indeg.(v) <- indeg.(v) + 1) t.succ.(u)
  done;
  let queue = Queue.create () in
  for v = 0 to t.n - 1 do
    if indeg.(v) = 0 then Queue.add v queue
  done;
  let order = ref [] in
  let count = ref 0 in
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    order := u :: !order;
    incr count;
    List.iter
      (fun v ->
        indeg.(v) <- indeg.(v) - 1;
        if indeg.(v) = 0 then Queue.add v queue)
      (List.rev t.succ.(u))
  done;
  if !count = t.n then Some (List.rev !order) else None

let connected_components t =
  let comp = Array.make t.n (-1) in
  let next = ref 0 in
  let stack = Stack.create () in
  for start = 0 to t.n - 1 do
    if comp.(start) = -1 then begin
      let c = !next in
      incr next;
      Stack.push start stack;
      comp.(start) <- c;
      while not (Stack.is_empty stack) do
        let u = Stack.pop stack in
        let visit v =
          if comp.(v) = -1 then begin
            comp.(v) <- c;
            Stack.push v stack
          end
        in
        List.iter visit t.succ.(u);
        List.iter visit t.pred.(u)
      done
    end
  done;
  comp

let longest_path_lengths t ~weight =
  match topological_order t with
  | None -> None
  | Some order ->
    let dist = Array.make t.n neg_infinity in
    List.iter
      (fun u ->
        let best_pred =
          List.fold_left (fun acc p -> max acc dist.(p)) 0. t.pred.(u)
        in
        let base = if t.pred.(u) = [] then 0. else best_pred in
        dist.(u) <- base +. weight u)
      order;
    Some dist

let reachable_from t sources =
  let seen = Array.make t.n false in
  let stack = Stack.create () in
  List.iter
    (fun s ->
      check t s;
      if not seen.(s) then begin
        seen.(s) <- true;
        Stack.push s stack
      end)
    sources;
  while not (Stack.is_empty stack) do
    let u = Stack.pop stack in
    List.iter
      (fun v ->
        if not seen.(v) then begin
          seen.(v) <- true;
          Stack.push v stack
        end)
      t.succ.(u)
  done;
  seen
