(** Deterministic splittable PRNG (SplitMix64). Experiments must be
    reproducible run-to-run, so all randomness in the backend flows from
    explicit seeds rather than global state. *)

type t

val create : int -> t
(** A generator seeded from the given integer. *)

val split : t -> t
(** An independent generator derived from [t]'s current state; [t]
    advances. *)

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound). Raises [Invalid_argument] if
    [bound <= 0]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [0, bound). *)

val bool : t -> bool

val gaussian : t -> mu:float -> sigma:float -> float
(** Box–Muller normal deviate. *)
