lib/util/rng.mli:
