lib/util/stats.mli:
