lib/util/intgraph.mli:
