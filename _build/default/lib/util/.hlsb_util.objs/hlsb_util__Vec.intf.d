lib/util/vec.mli:
