lib/util/intgraph.ml: Array List Queue Stack
