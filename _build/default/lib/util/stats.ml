let mean xs =
  match xs with
  | [] -> invalid_arg "Stats.mean: empty"
  | _ -> List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)

let stddev xs =
  match xs with
  | [] -> invalid_arg "Stats.stddev: empty"
  | _ ->
    let m = mean xs in
    let var =
      List.fold_left (fun acc x -> acc +. ((x -. m) ** 2.)) 0. xs
      /. float_of_int (List.length xs)
    in
    sqrt var

let percentile p xs =
  if p < 0. || p > 100. then invalid_arg "Stats.percentile: p out of range";
  match xs with
  | [] -> invalid_arg "Stats.percentile: empty"
  | _ ->
    let arr = Array.of_list xs in
    Array.sort compare arr;
    let n = Array.length arr in
    let rank = p /. 100. *. float_of_int (n - 1) in
    let lo = int_of_float (floor rank) in
    let hi = int_of_float (ceil rank) in
    if lo = hi then arr.(lo)
    else
      let frac = rank -. float_of_int lo in
      (arr.(lo) *. (1. -. frac)) +. (arr.(hi) *. frac)

let smooth_neighbors ~window xs =
  if window < 0 then invalid_arg "Stats.smooth_neighbors: negative window";
  let n = Array.length xs in
  Array.init n (fun i ->
    let lo = max 0 (i - window) and hi = min (n - 1) (i + window) in
    let sum = ref 0. in
    for j = lo to hi do
      sum := !sum +. xs.(j)
    done;
    !sum /. float_of_int (hi - lo + 1))

let total_variation xs =
  let acc = ref 0. in
  for i = 1 to Array.length xs - 1 do
    acc := !acc +. abs_float (xs.(i) -. xs.(i - 1))
  done;
  !acc

let geometric_mean xs =
  match xs with
  | [] -> invalid_arg "Stats.geometric_mean: empty"
  | _ ->
    let log_sum =
      List.fold_left
        (fun acc x ->
          if x <= 0. then invalid_arg "Stats.geometric_mean: non-positive"
          else acc +. log x)
        0. xs
    in
    exp (log_sum /. float_of_int (List.length xs))
