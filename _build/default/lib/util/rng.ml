type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let next_int64 t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t = { state = next_int64 t }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound <= 0";
  let v = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
  v mod bound

let float t bound =
  let v = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  v /. 9007199254740992. *. bound (* 2^53 *)

let bool t = Int64.logand (next_int64 t) 1L = 1L

let gaussian t ~mu ~sigma =
  let u1 = max 1e-12 (float t 1.) in
  let u2 = float t 1. in
  let z = sqrt (-2. *. log u1) *. cos (2. *. Float.pi *. u2) in
  mu +. (sigma *. z)
