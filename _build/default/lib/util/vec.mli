(** Growable array (OCaml 5.1 lacks [Dynarray]); used by graph builders. *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val push : 'a t -> 'a -> int
(** Appends and returns the index of the new element. *)

val get : 'a t -> int -> 'a
val set : 'a t -> int -> 'a -> unit
val to_array : 'a t -> 'a array
val iteri : (int -> 'a -> unit) -> 'a t -> unit
val fold_left : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc
