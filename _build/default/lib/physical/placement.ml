module Device = Hlsb_device.Device
module Netlist = Hlsb_netlist.Netlist

type t = {
  netlist : Netlist.t;
  pos : (float * float) array;
  fp : int array;
  max_x : float;
  max_y : float;
}

(* Hilbert curve index -> (x, y) on a 2^k x 2^k grid; contiguous index runs
   map to compact 2D regions, giving nets over contiguously-placed cells a
   bounding box of half-perimeter Theta(sqrt(area)). *)
let hilbert_d2xy n d =
  let rot s x y rx ry =
    if ry = 0 then
      if rx = 1 then (s - 1 - y, s - 1 - x) else (y, x)
    else (x, y)
  in
  let rec go s x y t =
    if s >= n then (x, y)
    else begin
      let rx = 1 land (t / 2) in
      let ry = 1 land (t lxor rx) in
      let x, y = rot s x y rx ry in
      let x = x + (s * rx) and y = y + (s * ry) in
      go (2 * s) x y (t / 4)
    end
  in
  go 1 0 0 d

let cdiv a b = (a + b - 1) / b

(* Slice-equivalent footprint used for packing; DSP and BRAM contributions
   are folded in for Comb cells that embed them (they enlarge the region a
   macro occupies, which is what the wire model cares about). *)
let footprint (d : Device.t) (c : Netlist.cell) =
  let r = c.Netlist.c_res in
  let slices =
    max (cdiv r.Netlist.r_luts d.lut_per_slice) (cdiv r.Netlist.r_ffs d.ff_per_slice)
  in
  let extra = (r.Netlist.r_dsps * 3) + (r.Netlist.r_bram18 * 5) in
  max 1 (slices + extra)

let place (d : Device.t) nl =
  let n = Netlist.n_cells nl in
  let pos = Array.make n (0., 0.) in
  let fp = Array.make n 1 in
  let side =
    let rec grow k = if k >= d.cols && k >= d.rows then k else grow (2 * k) in
    grow 1
  in
  let total_points = side * side in
  let capacity = d.cols * d.rows in
  let cursor = ref 0 in
  let used = ref 0 in
  let max_x = ref 0. and max_y = ref 0. in
  (* Take the next on-die Hilbert point. *)
  let next_point () =
    let rec go () =
      if !cursor >= total_points then
        failwith
          (Printf.sprintf "Placement: design does not fit device %s" d.name);
      let x, y = hilbert_d2xy side !cursor in
      incr cursor;
      if x < d.cols && y < d.rows then (x, y) else go ()
    in
    go ()
  in
  Netlist.iter_cells nl (fun id c ->
    let s = footprint d c in
    fp.(id) <- s;
    if !used + s > capacity then
      failwith
        (Printf.sprintf "Placement: design does not fit device %s" d.name);
    used := !used + s;
    let sx = ref 0. and sy = ref 0. in
    for _ = 1 to s do
      let x, y = next_point () in
      sx := !sx +. float_of_int x;
      sy := !sy +. float_of_int y;
      max_x := Stdlib.max !max_x (float_of_int x);
      max_y := Stdlib.max !max_y (float_of_int y)
    done;
    pos.(id) <- (!sx /. float_of_int s, !sy /. float_of_int s));
  (* Register refinement: a timing-driven placer (and phys_opt) pulls light
     register cells to the midpoint between their driver and their sinks, so
     a chain of pipeline registers inserted across a long route settles at
     evenly spaced waypoints — each clock period then pays only a segment of
     the total distance. Heavy cells (logic macros, BRAM, DSP) stay where
     the packer put them. *)
  let fanin_of = Array.make n [] in
  let fanout_of = Array.make n [] in
  Netlist.iter_nets nl (fun _ net ->
    Array.iter
      (fun s ->
        fanin_of.(s) <- net.Netlist.n_driver :: fanin_of.(s);
        fanout_of.(net.Netlist.n_driver) <- s :: fanout_of.(net.Netlist.n_driver))
      net.Netlist.n_sinks);
  let movable id =
    fp.(id) <= 64
    && fanin_of.(id) <> []
    && fanout_of.(id) <> []
    && (Netlist.cell nl id).Netlist.c_kind = Netlist.Seq
  in
  let centroid cells =
    let sx, sy, k =
      List.fold_left
        (fun (sx, sy, k) c ->
          let x, y = pos.(c) in
          (sx +. x, sy +. y, k + 1))
        (0., 0., 0) cells
    in
    (sx /. float_of_int k, sy /. float_of_int k)
  in
  (* Light combinational cells (muxes, reduce-tree nodes) are likewise
     pulled toward their pin centroid but stay 25% anchored to their packed
     slot, so gather structures sit near their operands without collapsing
     the global spread that the broadcast wire model depends on. The two
     rules interleave until positions settle. *)
  let slot = Array.copy pos in
  let light_comb id =
    fp.(id) <= 64
    && fanin_of.(id) <> []
    && fanout_of.(id) <> []
    && (Netlist.cell nl id).Netlist.c_kind = Netlist.Comb
  in
  (* Sweeps alternate direction (Gauss-Seidel): long register chains relax
     to evenly spaced waypoints in a few passes instead of diffusing one
     hop per pass. *)
  let relax id =
      if movable id then begin
        (* star-model equilibrium: the register settles at the pin-count
           weighted centroid, so a fanout-tree leaf sits with its sinks
           while a 1-in/1-out chain register sits at the midpoint *)
        let ix, iy = centroid fanin_of.(id) in
        let ox, oy = centroid fanout_of.(id) in
        (* sqrt weighting: balances hop delays along pipelined chains while
           still pulling multi-sink leaves toward their cluster *)
        let wi = sqrt (float_of_int (List.length fanin_of.(id))) in
        let wo = sqrt (float_of_int (List.length fanout_of.(id))) in
        pos.(id) <-
          ( ((ix *. wi) +. (ox *. wo)) /. (wi +. wo),
            ((iy *. wi) +. (oy *. wo)) /. (wi +. wo) )
      end
      else if light_comb id then begin
        (* Combinational cells hug their *sources* (gather trees sit at
           their operand clusters; downstream registers carry the
           distance), with a slight slot anchor so packed structure is not
           fully erased. *)
        let ix, iy = centroid fanin_of.(id) in
        let ox, oy = centroid fanout_of.(id) in
        let cx = (0.65 *. ix) +. (0.35 *. ox)
        and cy = (0.65 *. iy) +. (0.35 *. oy) in
        let sx, sy = slot.(id) in
        pos.(id) <- ((0.1 *. sx) +. (0.9 *. cx), (0.1 *. sy) +. (0.9 *. cy))
      end
  in
  for sweep = 1 to 24 do
    if sweep mod 2 = 1 then
      for id = 0 to n - 1 do
        relax id
      done
    else
      for id = n - 1 downto 0 do
        relax id
      done
  done;
  { netlist = nl; pos; fp; max_x = !max_x; max_y = !max_y }

let position t c = t.pos.(c)
let footprint_slices t c = t.fp.(c)

let bbox t nid =
  let net = Netlist.net t.netlist nid in
  let cells = net.Netlist.n_driver :: Array.to_list net.Netlist.n_sinks in
  match cells with
  | [] -> (0., 0., 0., 0.)
  | first :: rest ->
    let x0, y0 = t.pos.(first) in
    List.fold_left
      (fun (xmin, ymin, xmax, ymax) c ->
        let x, y = t.pos.(c) in
        (min xmin x, min ymin y, max xmax x, max ymax y))
      (x0, y0, x0, y0) rest

let hpwl t nid =
  let net = Netlist.net t.netlist nid in
  if Array.length net.Netlist.n_sinks = 0 then 0.
  else begin
    let xmin, ymin, xmax, ymax = bbox t nid in
    (* Large cells are regions, not points: extend the bbox by the radius of
       the cells at its corners so a net feeding one huge macro still pays
       for crossing it. *)
    let spread =
      List.fold_left
        (fun acc c -> acc +. sqrt (float_of_int t.fp.(c)))
        0.
        (net.Netlist.n_driver :: Array.to_list net.Netlist.n_sinks)
      /. float_of_int (1 + Array.length net.Netlist.n_sinks)
    in
    xmax -. xmin +. (ymax -. ymin) +. spread
  end

let star_length t nid =
  let net = Netlist.net t.netlist nid in
  if Array.length net.Netlist.n_sinks = 0 then 0.
  else begin
    let dx, dy = t.pos.(net.Netlist.n_driver) in
    let far =
      Array.fold_left
        (fun acc s ->
          let x, y = t.pos.(s) in
          Stdlib.max acc (abs_float (x -. dx) +. abs_float (y -. dy)))
        0. net.Netlist.n_sinks
    in
    let spread =
      Array.fold_left
        (fun acc s -> acc +. sqrt (float_of_int t.fp.(s)))
        (sqrt (float_of_int t.fp.(net.Netlist.n_driver)))
        net.Netlist.n_sinks
      /. float_of_int (1 + Array.length net.Netlist.n_sinks)
    in
    far +. spread
  end

let overlap_free _t = true
(* Packing assigns disjoint Hilbert slots by construction; kept as an
   explicit invariant entry point for tests that re-verify via max_extent
   and used-slot accounting. *)

let max_extent t = max t.max_x t.max_y
