(** Static timing analysis over a placed netlist.

    Arrival times propagate through the combinational subgraph; paths start
    at sequential outputs (clk->q) and input ports, and end at sequential
    inputs (setup); I/O port paths are externally constrained. Net delay is
    [t_net_base + t_net_fanout * ln(1+f) + t_net_dist * star_length]
    (source-to-farthest-sink plus sink spread), optionally
    perturbed by a small deterministic jitter that models the run-to-run
    noise of heuristic place & route (the reason §4.1 smooths measured
    delays with their neighbors). *)

type path_step = {
  ps_cell : int;
  ps_cell_name : string;
  ps_arrival : float;  (** arrival at this cell's output, ns *)
  ps_via_net : int option;  (** net taken to reach this cell *)
}

type report = {
  critical_ns : float;  (** worst register-to-register (or port) path, ns *)
  fmax_mhz : float;
  path : path_step list;  (** critical path, source first *)
  worst_net : int option;  (** highest-delay net on the critical path *)
  worst_net_fanout : int;
  worst_net_class : Hlsb_netlist.Netlist.net_class option;
  arrivals : float array;
      (** arrival time at each cell's output (ns); sequential cells report
          clk->q. Used by the characterizer to probe a specific cell. *)
}

val net_delay :
  Hlsb_device.Device.t ->
  Hlsb_netlist.Netlist.t ->
  Placement.t ->
  jitter:float ->
  seed:int ->
  int ->
  float
(** Delay of one net under the model above. [jitter] is the relative sigma
    (0. disables); the perturbation is a deterministic function of [seed]
    and the net id. *)

val analyze :
  ?jitter:float ->
  ?seed:int ->
  Hlsb_device.Device.t ->
  Hlsb_netlist.Netlist.t ->
  Placement.t ->
  report
(** Raises [Failure] on a combinational cycle (validate the netlist
    first). Default [jitter] is [0.02], default [seed] is derived from the
    netlist name so a given design is reproducible. *)

val run : ?jitter:float -> ?seed:int -> Hlsb_device.Device.t -> Hlsb_netlist.Netlist.t -> report
(** Place then analyze. *)

val pp_report : Format.formatter -> report -> unit
