lib/physical/timing.mli: Format Hlsb_device Hlsb_netlist Placement
