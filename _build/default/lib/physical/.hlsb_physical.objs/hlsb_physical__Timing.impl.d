lib/physical/timing.ml: Array Format Hashtbl Hlsb_device Hlsb_netlist Hlsb_util List Placement
