lib/physical/placement.ml: Array Hlsb_device Hlsb_netlist List Printf Stdlib
