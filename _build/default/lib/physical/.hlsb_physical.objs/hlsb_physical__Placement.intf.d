lib/physical/placement.mli: Hlsb_device Hlsb_netlist
