open Hlsb_ir
module Device = Hlsb_device.Device
module Macro = Hlsb_netlist.Macro
module Netlist = Hlsb_netlist.Netlist

(* Reference logic delays on UltraScale+; other devices scale by their LUT
   speed. Values track the orders of magnitude in Vivado's datasheets and
   the paper (int sub predicted at 0.78 ns in section 5.2). *)

let f32_or_f64 dt = match dt with Dtype.Float64 -> `F64 | _ -> `F32

(* Full combinational delay of each macro (UltraScale+ reference); the
   intrinsic pipeline registers divide it into per-stage delays. *)
let base_logic op dt =
  let w = Dtype.width dt in
  let fw = float_of_int w in
  match op with
  | Op.Add | Op.Sub -> 0.10 +. (0.007 *. fw)
  | Op.Mul -> 2.60 +. (0.01 *. fw)
  | Op.Div -> 1.50 +. (0.42 *. fw)
  | Op.Fadd | Op.Fsub -> ( match f32_or_f64 dt with `F32 -> 4.30 | `F64 -> 7.50)
  | Op.Fmul -> (match f32_or_f64 dt with `F32 -> 3.60 | `F64 -> 6.50)
  | Op.Fdiv -> (match f32_or_f64 dt with `F32 -> 14.0 | `F64 -> 31.0)
  | Op.And_ | Op.Or_ | Op.Xor | Op.Not -> 0.12
  | Op.Shl | Op.Shr -> 0.24 +. (0.002 *. fw)
  | Op.Icmp _ -> 0.10 +. (0.005 *. fw)
  | Op.Fcmp _ -> 1.10
  | Op.Select -> 0.13
  | Op.Min | Op.Max | Op.Abs -> 0.22 +. (0.009 *. fw)
  | Op.Log2 -> 0.30 +. (0.005 *. fw)
  | Op.Concat | Op.Slice _ -> 0.02

let logic_delay (d : Device.t) op dt =
  base_logic op dt *. (d.Device.t_lut /. 0.12)

let rec stage_delay d op dt =
  logic_delay d op dt /. float_of_int (latency_cycles op dt + 1)

(* HLS prediction (per stage) = logic + a fixed "typical small net" routing
   allowance. For floating point the tool is deliberately conservative
   (Fig. 9, multiplication panel). *)
and predicted op dt =
  let stage = base_logic op dt /. float_of_int (latency_cycles op dt + 1) in
  match op with
  | Op.Fmul -> stage *. 2.6
  | Op.Fadd | Op.Fsub | Op.Fdiv -> stage *. 1.9
  | Op.Add | Op.Sub | Op.Mul | Op.Div | Op.And_ | Op.Or_ | Op.Xor | Op.Not
  | Op.Shl | Op.Shr | Op.Icmp _ | Op.Fcmp _ | Op.Select | Op.Min | Op.Max
  | Op.Abs | Op.Log2 | Op.Concat | Op.Slice _ ->
    stage +. 0.45

and latency_cycles op dt =
  match op with
  | Op.Fadd | Op.Fsub -> ( match f32_or_f64 dt with `F32 -> 4 | `F64 -> 7)
  | Op.Fmul -> (match f32_or_f64 dt with `F32 -> 3 | `F64 -> 6)
  | Op.Fdiv -> (match f32_or_f64 dt with `F32 -> 12 | `F64 -> 28)
  | Op.Fcmp _ -> 1
  | Op.Mul -> if Dtype.width dt <= 18 then 1 else 2
  | Op.Div -> max 2 (Dtype.width dt / 4)
  | Op.Add | Op.Sub | Op.And_ | Op.Or_ | Op.Xor | Op.Not | Op.Shl | Op.Shr
  | Op.Icmp _ | Op.Select | Op.Min | Op.Max | Op.Abs | Op.Log2 | Op.Concat
  | Op.Slice _ ->
    0

let resources op dt : Netlist.resources =
  let w = Dtype.width dt in
  match op with
  | Op.Add | Op.Sub -> Macro.int_add w
  | Op.Mul -> Macro.int_mul w
  | Op.Div -> Macro.int_div w
  | Op.Fadd | Op.Fsub -> Macro.float_add (f32_or_f64 dt)
  | Op.Fmul -> Macro.float_mul (f32_or_f64 dt)
  | Op.Fdiv -> Macro.float_div (f32_or_f64 dt)
  | Op.And_ | Op.Or_ | Op.Xor | Op.Not -> Macro.logic w
  | Op.Shl | Op.Shr -> Macro.shifter w
  | Op.Icmp _ -> Macro.compare_ w
  | Op.Fcmp _ -> Macro.compare_ 32
  | Op.Select -> Macro.mux2 w
  | Op.Min | Op.Max | Op.Abs ->
    Netlist.add_res (Macro.compare_ w) (Macro.mux2 w)
  | Op.Log2 -> Macro.priority_encoder w
  | Op.Concat | Op.Slice _ -> Netlist.zero_res

let mem_read_predicted = 2.32
let mem_write_predicted = 1.85
