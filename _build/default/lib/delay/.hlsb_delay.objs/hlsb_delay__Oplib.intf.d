lib/delay/oplib.mli: Dtype Hlsb_device Hlsb_ir Hlsb_netlist Op
