lib/delay/characterize.mli: Dtype Hlsb_device Hlsb_ir Op
