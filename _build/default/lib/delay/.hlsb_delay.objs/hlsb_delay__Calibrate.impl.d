lib/delay/calibrate.ml: Array Characterize Dtype Hashtbl Hlsb_device Hlsb_ir Hlsb_util Op Oplib
