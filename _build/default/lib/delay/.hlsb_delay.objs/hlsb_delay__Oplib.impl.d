lib/delay/oplib.ml: Dtype Hlsb_device Hlsb_ir Hlsb_netlist Op
