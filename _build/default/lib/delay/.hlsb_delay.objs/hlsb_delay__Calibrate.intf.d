lib/delay/calibrate.mli: Dtype Hlsb_device Hlsb_ir Op
