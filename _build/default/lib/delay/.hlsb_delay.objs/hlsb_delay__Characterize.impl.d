lib/delay/characterize.ml: Array Dtype Hlsb_device Hlsb_ir Hlsb_netlist Hlsb_physical List Op Oplib Printf
