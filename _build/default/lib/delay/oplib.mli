(** The HLS tool's pre-characterized operator delay library — deliberately
    *fanout-blind*, like the commercial tool the paper studies (§2): "the
    predicted delay by HLS tools for a certain operator is fixed regardless
    of the actual environment."

    Two views of each operator:
    - [predicted]: what the HLS scheduler believes (logic + typical
      small-net routing; conservative for floating point, exactly the
      Fig. 9 behaviour);
    - [logic_delay]: the intrinsic cell delay used when the macro cell is
      instantiated in a netlist — the physical backend adds real net delays
      on top. *)

open Hlsb_ir

val predicted : Op.t -> Dtype.t -> float
(** HLS-estimated combinational delay, ns. For multi-cycle float operators
    this is the per-stage delay after the operator's internal pipelining. *)

val logic_delay : Hlsb_device.Device.t -> Op.t -> Dtype.t -> float
(** Full combinational delay of the operator macro on the given device
    (scales with the device's LUT speed relative to UltraScale+). *)

val stage_delay : Hlsb_device.Device.t -> Op.t -> Dtype.t -> float
(** Per-stage delay once the macro's intrinsic pipeline registers are in
    place: [logic_delay / (latency_cycles + 1)]. This is what one clock
    period of the operator costs. *)

val latency_cycles : Op.t -> Dtype.t -> int
(** Internal pipeline depth of the operator macro (0 = pure
    combinational). Float add/mul are pipelined as HLS does by default. *)

val resources : Op.t -> Dtype.t -> Hlsb_netlist.Netlist.resources
(** Macro footprint for netlist generation. *)

val mem_read_predicted : float
(** HLS-estimated BRAM read delay, ns — one number for any buffer size
    (the §3.1 limitation). *)

val mem_write_predicted : float
