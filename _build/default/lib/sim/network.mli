(** Token-level simulation of a dataflow process network under sync-group
    barriers — demonstrates the two §4.2 facts:

    - pruning (splitting a sync group into its independent components)
      never changes any flow's output stream;
    - it can only improve throughput: a barrier couples independent flows,
      so back-pressure on one flow stalls the others.

    Each process fires at most once per cycle, consuming one token from
    every input channel and producing one on every output channel. A sync
    group is a barrier: either every member of the group fires this cycle
    or none does. External outputs (channels with dst = -1) consume tokens
    according to a per-channel readiness pattern. *)

type result = {
  cycles : int;  (** cycles until every external output delivered [tokens] *)
  fired : int array;  (** per-process firing count *)
  delivered : (int * int list) list;
      (** per external-output channel: the token sequence numbers received *)
  deadlocked : bool;  (** hit the cycle limit before completing *)
}

val run :
  ?sync:bool ->
  Hlsb_ir.Dataflow.t ->
  tokens:int ->
  ready:(chan:int -> cycle:int -> bool) ->
  result
(** [sync] (default true) applies the network's sync groups as barriers;
    [sync:false] ignores them (an idealized fully-decoupled run, useful as
    a reference). External input channels (src = -1) always have data. *)
