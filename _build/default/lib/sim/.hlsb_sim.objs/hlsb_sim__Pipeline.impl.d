lib/sim/pipeline.ml: Array Fifo List
