lib/sim/network.mli: Hlsb_ir
