lib/sim/network.ml: Array Dataflow Hlsb_ir List
