lib/sim/fifo.mli:
