lib/sim/fifo.ml: List Queue
