lib/sim/pipeline.mli:
