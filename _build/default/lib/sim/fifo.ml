type 'a t = {
  d : int;
  q : 'a Queue.t;
  mutable overflow : bool;
  mutable high_water : int;
}

let create ~depth =
  if depth < 1 then invalid_arg "Fifo.create: depth < 1";
  { d = depth; q = Queue.create (); overflow = false; high_water = 0 }

let depth t = t.d
let length t = Queue.length t.q
let is_empty t = Queue.is_empty t.q
let is_full t = Queue.length t.q >= t.d

let push t x =
  if is_full t then t.overflow <- true
  else begin
    Queue.add x t.q;
    t.high_water <- max t.high_water (Queue.length t.q)
  end

let pop t = Queue.take_opt t.q
let peek t = Queue.peek_opt t.q
let overflowed t = t.overflow
let max_occupancy t = t.high_water
let to_list t = List.of_seq (Queue.to_seq t.q)
