(** Bounded FIFO used by the cycle-accurate pipeline models. Push onto a
    full FIFO records an overflow (the failure skid sizing must prevent)
    instead of raising, so simulations can report it. *)

type 'a t

val create : depth:int -> 'a t
(** Raises [Invalid_argument] if [depth < 1]. *)

val depth : 'a t -> int
val length : 'a t -> int
val is_empty : 'a t -> bool
val is_full : 'a t -> bool

val push : 'a t -> 'a -> unit
(** Appends; on a full FIFO the element is dropped and the overflow flag
    set. *)

val pop : 'a t -> 'a option
val peek : 'a t -> 'a option

val overflowed : 'a t -> bool
val max_occupancy : 'a t -> int
(** High-water mark over the FIFO's lifetime. *)

val to_list : 'a t -> 'a list
(** Front first. *)
