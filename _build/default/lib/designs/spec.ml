open Hlsb_ir

type paper_numbers = {
  p_lut : int * int;
  p_ff : int * int;
  p_bram : int * int;
  p_dsp : int * int;
  p_freq : int * int;
}

type t = {
  sp_name : string;
  sp_broadcast : string;
  sp_device : Hlsb_device.Device.t;
  sp_build : unit -> Dataflow.t;
  sp_paper : paper_numbers;
}

let make ~name ~broadcast ~device ~build ~paper =
  {
    sp_name = name;
    sp_broadcast = broadcast;
    sp_device = device;
    sp_build = build;
    sp_paper = paper;
  }
