lib/designs/spec.mli: Dataflow Hlsb_device Hlsb_ir
