lib/designs/genome.ml: Dag Dataflow Dtype Hlsb_device Hlsb_ir Kernel Op Printf Spec Transform
