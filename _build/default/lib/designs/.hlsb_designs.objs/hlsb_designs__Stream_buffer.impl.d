lib/designs/stream_buffer.ml: Dag Dataflow Dtype Hlsb_device Hlsb_ir Kernel Spec
