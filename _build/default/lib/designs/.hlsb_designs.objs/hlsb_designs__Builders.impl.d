lib/designs/builders.ml: Dag Dtype Hlsb_ir Int64 List Op Printf String Transform
