lib/designs/suite.ml: Face_detect Genome Hbm_stencil List Lstm Matmul Pattern_match Spec Stencil Stream_buffer Vector_arith
