lib/designs/suite.mli: Spec
