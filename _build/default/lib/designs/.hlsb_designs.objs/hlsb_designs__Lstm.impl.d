lib/designs/lstm.ml: Builders Dag Dataflow Dtype Hlsb_device Hlsb_ir Kernel List Op Printf Spec
