lib/designs/builders.mli: Dag Dtype Hlsb_ir
