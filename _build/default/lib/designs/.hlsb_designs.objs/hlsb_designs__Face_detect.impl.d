lib/designs/face_detect.ml: Builders Dag Dataflow Dtype Hlsb_device Hlsb_ir Int64 Kernel List Op Printf Spec
