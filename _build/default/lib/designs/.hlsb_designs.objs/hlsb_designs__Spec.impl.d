lib/designs/spec.ml: Dataflow Hlsb_device Hlsb_ir
