lib/designs/genome.mli: Dataflow Hlsb_ir Kernel Spec
