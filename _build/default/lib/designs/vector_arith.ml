open Hlsb_ir

(* The 512-wide vector product of §5.4 / Table 2: (a . b) * c. Parallel
   dot-product PEs are synchronized by the controller (Fig. 5b), the final
   scalar broadcasts to the c-side multipliers, and the whole datapath is a
   deep pipeline behind FIFO flow control. Fig. 17 uses the 32-wide
   configuration of the same design. *)

let pe_kernel ~pe ~width =
  let dag = Dag.create () in
  let f32 = Dtype.Float32 in
  let a_fifo = Dag.add_fifo dag ~name:(Printf.sprintf "va_a%d" pe) ~dtype:f32 ~depth:16 in
  let out_fifo = Dag.add_fifo dag ~name:(Printf.sprintf "va_p%d" pe) ~dtype:f32 ~depth:16 in
  let a = Dag.fifo_read dag ~fifo:a_fifo in
  let prods = Builders.dot_lanes dag ~prefix:(Printf.sprintf "pe%d" pe) ~lanes:width ~dtype:f32 ~shared:a in
  let dot = Builders.reduce_sum dag ~dtype:f32 prods in
  ignore (Dag.fifo_write dag ~fifo:out_fifo ~value:dot);
  Kernel.create ~name:(Printf.sprintf "va_pe%d" pe) ~trip_count:4096 dag

let scale_kernel ~pes ~out_width =
  let dag = Dag.create () in
  let f32 = Dtype.Float32 in
  let partials =
    List.init pes (fun pe ->
      Dag.fifo_read dag
        ~fifo:(Dag.add_fifo dag ~name:(Printf.sprintf "va_p%d" pe) ~dtype:f32 ~depth:16))
  in
  let scalar = Builders.reduce_sum dag ~dtype:f32 partials in
  (* the dot-product scalar broadcasts to every c-side multiplier *)
  let outs =
    List.init out_width (fun i ->
      let c = Dag.input dag ~name:(Printf.sprintf "c%d" i) ~dtype:f32 in
      Dag.op dag Op.Fmul ~dtype:f32 [ scalar; c ])
  in
  let packed =
    Dag.op dag Op.Concat
      ~dtype:(Dtype.Uint (32 * min 16 out_width))
      (List.filteri (fun i _ -> i < 16) outs)
  in
  let out_fifo =
    Dag.add_fifo dag ~name:"va_out" ~dtype:(Dag.dtype dag packed) ~depth:16
  in
  ignore (Dag.fifo_write dag ~fifo:out_fifo ~value:packed);
  ignore (Builders.reduce_sum dag ~dtype:f32 outs |> fun s ->
          Dag.output dag ~name:"va_check" ~value:s);
  Kernel.create ~name:"va_scale" ~trip_count:4096 dag

let dataflow ?(width = 512) ?(pes = 4) () =
  let df = Dataflow.create () in
  let f32 = Dtype.Float32 in
  let per_pe = width / pes in
  let scale =
    Dataflow.add_process df ~name:"va_scale"
      ~kernel:(scale_kernel ~pes ~out_width:width)
      ~latency:(12 + per_pe) ()
  in
  let pe_procs =
    List.init pes (fun pe ->
      let p =
        Dataflow.add_process df
          ~name:(Printf.sprintf "va_pe%d" pe)
          ~kernel:(pe_kernel ~pe ~width:per_pe)
          ~latency:(20 + (4 * pe)) ()
      in
      ignore
        (Dataflow.add_channel df
           ~name:(Printf.sprintf "va_a%d" pe)
           ~src:(-1) ~dst:p ~dtype:f32 ~depth:16 ());
      ignore
        (Dataflow.add_channel df
           ~name:(Printf.sprintf "va_p%d" pe)
           ~src:p ~dst:scale ~dtype:f32 ~depth:16 ());
      p)
  in
  ignore
    (Dataflow.add_channel df ~name:"va_out" ~src:scale ~dst:(-1)
       ~dtype:(Dtype.Uint 512) ~depth:16 ());
  (* the controller synchronizes the parallel PEs every call (Fig. 5b) *)
  Dataflow.add_sync_group df (pe_procs @ [ scale ]);
  df

let spec =
  Spec.make ~name:"Vector Arithmetic" ~broadcast:"Pipe. Ctrl. & Sync."
    ~device:Hlsb_device.Device.ultrascale_plus
    ~build:(fun () -> dataflow ())
    ~paper:
      {
        Spec.p_lut = (17, 17);
        p_ff = (16, 15);
        p_bram = (0, 1);
        p_dsp = (60, 60);
        p_freq = (195, 301);
      }

(* Fig. 17's single-pipeline configuration: the whole (a . b) * c datapath
   in one kernel, so the schedule's per-stage live widths show the spindle
   shape (wide product vector, one-scalar waist at the end of the reduction,
   wide again on the c side). *)
let single_kernel ?(width = 32) () =
  let dag = Dag.create () in
  let f32 = Dtype.Float32 in
  let a_fifo = Dag.add_fifo dag ~name:"dsk_a" ~dtype:f32 ~depth:16 in
  let a = Dag.fifo_read dag ~fifo:a_fifo in
  let prods = Builders.dot_lanes dag ~prefix:"dsk" ~lanes:width ~dtype:f32 ~shared:a in
  let scalar = Builders.reduce_sum dag ~dtype:f32 prods in
  let outs =
    List.init width (fun i ->
      let c = Dag.input dag ~name:(Printf.sprintf "dsk_c%d" i) ~dtype:f32 in
      Dag.op dag Op.Fmul ~dtype:f32 [ scalar; c ])
  in
  let packed =
    Dag.op dag Op.Concat
      ~dtype:(Dtype.Uint (32 * min 16 width))
      (List.filteri (fun i _ -> i < 16) outs)
  in
  let out_fifo =
    Dag.add_fifo dag ~name:"dsk_out" ~dtype:(Dag.dtype dag packed) ~depth:16
  in
  ignore (Dag.fifo_write dag ~fifo:out_fifo ~value:packed);
  Kernel.create ~name:(Printf.sprintf "dot_scale_w%d" width) ~trip_count:4096 dag
