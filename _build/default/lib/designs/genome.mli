(** Genome sequencing chaining kernel [1] (Fig. 13): a pipelined loop whose
    body is unrolled BACK_SEARCH_COUNT times, so the loop-invariant anchor
    coordinates (curr.x, curr.y, avg_qspan, thresholds) broadcast to every
    unrolled comparator lane — the canonical data broadcast (§3.1). The
    accelerator runs several independent lanes, each its own control
    domain. *)

open Hlsb_ir

val kernel : ?back_search_count:int -> lane:int -> unit -> Kernel.t
(** One chaining lane (default unroll factor 64, the paper's setting). *)

val dataflow : ?back_search_count:int -> ?lanes:int -> unit -> Dataflow.t
(** [lanes] independent chaining lanes (default 4). *)

val spec : Spec.t
