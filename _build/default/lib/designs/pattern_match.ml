open Hlsb_ir

(* Pattern matching from the composable-accelerator generator [4]: parallel
   PEs each score the shared input window against a stored pattern (data
   broadcast of the window characters inside each PE), and the controller
   synchronizes all PEs before combining scores (Fig. 6b). *)

let pe_kernel ~pe ~taps =
  let dag = Dag.create () in
  let i8 = Dtype.Int 8 in
  let i32 = Dtype.Int 32 in
  let in_fifo =
    Dag.add_fifo dag ~name:(Printf.sprintf "pm_in%d" pe) ~dtype:(Dtype.Uint 64) ~depth:16
  in
  let out_fifo =
    Dag.add_fifo dag ~name:(Printf.sprintf "pm_s%d" pe) ~dtype:i32 ~depth:16
  in
  let word = Dag.fifo_read dag ~fifo:in_fifo in
  let chars =
    Builders.scatter_word dag ~word ~parts:8
    |> List.map (fun c -> Dag.op dag (Op.Slice (7, 0)) ~dtype:i8 [ c ])
  in
  (* pattern in BRAM *)
  let pat_buf =
    Dag.add_buffer dag
      ~name:(Printf.sprintf "pattern%d" pe)
      ~dtype:(Dtype.Uint 64) ~depth:4096 ~partition:1
  in
  let pidx = Dag.input dag ~name:(Printf.sprintf "pidx%d" pe) ~dtype:i32 in
  let pat_word = Dag.load dag ~buffer:pat_buf ~index:pidx in
  let pat_chars =
    Builders.scatter_word dag ~word:pat_word ~parts:8
    |> List.map (fun c -> Dag.op dag (Op.Slice (7, 0)) ~dtype:i8 [ c ])
  in
  (* each input character is compared at many tap offsets: the window
     broadcast *)
  let window =
    List.concat (List.init (taps / 8) (fun _ -> chars))
  in
  let pattern =
    List.concat (List.init (taps / 8) (fun _ -> pat_chars))
  in
  let score = Builders.compare_score dag ~prefix:(Printf.sprintf "pm%d" pe) ~dtype:i8 ~window ~pattern in
  let score32 = Dag.op dag (Op.Slice (7, 0)) ~dtype:i32 [ score ] in
  ignore (Dag.fifo_write dag ~fifo:out_fifo ~value:score32);
  Kernel.create ~name:(Printf.sprintf "pm_pe%d" pe) ~trip_count:65536 dag

let combine_kernel ~pes =
  let dag = Dag.create () in
  let i32 = Dtype.Int 32 in
  let scores =
    List.init pes (fun pe ->
      Dag.fifo_read dag
        ~fifo:(Dag.add_fifo dag ~name:(Printf.sprintf "pm_s%d" pe) ~dtype:i32 ~depth:16))
  in
  let best = Transform.reduce_tree dag ~op:Op.Max ~dtype:i32 scores in
  let out = Dag.add_fifo dag ~name:"pm_out" ~dtype:i32 ~depth:16 in
  ignore (Dag.fifo_write dag ~fifo:out ~value:best);
  Kernel.create ~name:"pm_combine" ~trip_count:65536 dag

let dataflow ?(pes = 16) ?(taps = 64) () =
  let df = Dataflow.create () in
  let i32 = Dtype.Int 32 in
  let combine =
    Dataflow.add_process df ~name:"pm_combine" ~kernel:(combine_kernel ~pes)
      ~latency:8 ()
  in
  let pe_procs =
    List.init pes (fun pe ->
      let k = pe_kernel ~pe ~taps in
      (* PE latencies are static and unequal: pruning waits only on the
         longest one (§4.2 case 2) *)
      let p =
        Dataflow.add_process df ~name:k.Kernel.name ~kernel:k
          ~latency:(10 + (2 * (pe mod 5)))
          ()
      in
      ignore
        (Dataflow.add_channel df
           ~name:(Printf.sprintf "pm_in%d" pe)
           ~src:(-1) ~dst:p ~dtype:(Dtype.Uint 64) ~depth:16 ());
      ignore
        (Dataflow.add_channel df
           ~name:(Printf.sprintf "pm_s%d" pe)
           ~src:p ~dst:combine ~dtype:i32 ~depth:16 ());
      p)
  in
  ignore
    (Dataflow.add_channel df ~name:"pm_out" ~src:combine ~dst:(-1) ~dtype:i32
       ~depth:16 ());
  Dataflow.add_sync_group df (pe_procs @ [ combine ]);
  df

let spec =
  Spec.make ~name:"Pattern Matching" ~broadcast:"Data & Sync."
    ~device:Hlsb_device.Device.virtex7_690t
    ~build:(fun () -> dataflow ())
    ~paper:
      {
        Spec.p_lut = (17, 17);
        p_ff = (5, 7);
        p_bram = (9, 9);
        p_dsp = (0, 0);
        p_freq = (187, 278);
      }
