open Hlsb_ir

(* SODA-generated Jacobi 2D stencil [2]: line buffers feed a 3x3 window
   whose taps broadcast to a vector of float multiply-add lanes; §5.4
   concatenates several stencil iterations into one super-pipeline, all
   under a single flow-control domain — so under stall control the
   stall/enable net fans out to every stage of every iteration, and Fmax
   collapses as iterations are added (Fig. 16). *)

let kernel ?(iterations = 1) ?(lanes = 16) () =
  let dag = Dag.create () in
  let f32 = Dtype.Float32 in
  let i32 = Dtype.Int 32 in
  let word_t = Dtype.Uint 512 in
  let in_fifo = Dag.add_fifo dag ~name:"st_in" ~dtype:word_t ~depth:16 in
  let out_fifo = Dag.add_fifo dag ~name:"st_out" ~dtype:word_t ~depth:16 in
  let col = Dag.input dag ~name:"col" ~dtype:i32 in
  let third = Dag.const dag ~dtype:f32 1051372203L in
  let rec iterate it word =
    if it = iterations then word
    else begin
      (* two line buffers give the three vertical taps *)
      let row1 =
        Builders.line_buffer dag
          ~name:(Printf.sprintf "it%d_line0" it)
          ~dtype:word_t ~depth:4096 ~write:word ~index:col
      in
      let row2 =
        Builders.line_buffer dag
          ~name:(Printf.sprintf "it%d_line1" it)
          ~dtype:word_t ~depth:4096 ~write:row1 ~index:col
      in
      let taps w = Builders.scatter_word dag ~word:w ~parts:lanes in
      let t0 = taps word and t1 = taps row1 and t2 = taps row2 in
      let as_f32 n = Dag.op dag (Op.Slice (31, 0)) ~dtype:f32 [ n ] in
      let outs =
        List.init lanes (fun l ->
          let w_c = as_f32 (List.nth t1 l) in
          let w_n = as_f32 (List.nth t0 l) in
          let w_s = as_f32 (List.nth t2 l) in
          let w_e = as_f32 (List.nth t1 ((l + 1) mod lanes)) in
          let w_w = as_f32 (List.nth t1 ((l + lanes - 1) mod lanes)) in
          (* 5-point weighted sum *)
          let p1 = Dag.op dag Op.Fmul ~dtype:f32 [ w_c; third ] in
          let s1 = Dag.op dag Op.Fadd ~dtype:f32 [ w_n; w_s ] in
          let s2 = Dag.op dag Op.Fadd ~dtype:f32 [ w_e; w_w ] in
          let s3 = Dag.op dag Op.Fadd ~dtype:f32 [ s1; s2 ] in
          let p2 = Dag.op dag Op.Fmul ~dtype:f32 [ s3; third ] in
          Dag.op dag Op.Fadd ~dtype:f32 [ p1; p2 ])
      in
      let packed = Dag.op dag Op.Concat ~dtype:word_t outs in
      iterate (it + 1) packed
    end
  in
  let first = Dag.fifo_read dag ~fifo:in_fifo in
  let final = iterate 0 first in
  ignore (Dag.fifo_write dag ~fifo:out_fifo ~value:final);
  Kernel.create
    ~name:(Printf.sprintf "stencil_x%d" iterations)
    ~trip_count:1048576 dag

let dataflow ?iterations ?lanes () =
  let df = Dataflow.create () in
  let k = kernel ?iterations ?lanes () in
  let p = Dataflow.add_process df ~name:k.Kernel.name ~kernel:k () in
  ignore
    (Dataflow.add_channel df ~name:"st_in" ~src:(-1) ~dst:p
       ~dtype:(Dtype.Uint 512) ~depth:16 ());
  ignore
    (Dataflow.add_channel df ~name:"st_out" ~src:p ~dst:(-1)
       ~dtype:(Dtype.Uint 512) ~depth:16 ());
  df

let spec =
  (* Table 1's stencil row is the big configuration. *)
  Spec.make ~name:"Stencil" ~broadcast:"Pipe. Ctrl."
    ~device:Hlsb_device.Device.ultrascale_plus
    ~build:(fun () -> dataflow ~iterations:8 ())
    ~paper:
      {
        Spec.p_lut = (40, 40);
        p_ff = (41, 41);
        p_bram = (30, 29);
        p_dsp = (83, 83);
        p_freq = (120, 253);
      }
