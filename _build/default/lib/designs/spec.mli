(** A Table-1 benchmark entry: how to build it, which device the paper used,
    and the paper's reported numbers (for the paper-vs-measured columns of
    EXPERIMENTS.md). *)

open Hlsb_ir

type paper_numbers = {
  p_lut : int * int;  (** original, optimized utilization %% *)
  p_ff : int * int;
  p_bram : int * int;
  p_dsp : int * int;
  p_freq : int * int;  (** original, optimized MHz *)
}

type t = {
  sp_name : string;
  sp_broadcast : string;  (** the paper's "Broadcast type" column *)
  sp_device : Hlsb_device.Device.t;
  sp_build : unit -> Dataflow.t;
  sp_paper : paper_numbers;
}

val make :
  name:string ->
  broadcast:string ->
  device:Hlsb_device.Device.t ->
  build:(unit -> Dataflow.t) ->
  paper:paper_numbers ->
  t
