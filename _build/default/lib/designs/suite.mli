(** The nine Table-1 benchmarks, in the paper's row order. *)

val all : Spec.t list
val find : string -> Spec.t option
