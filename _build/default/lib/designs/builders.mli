(** Shared DAG-construction combinators for the benchmark generators: the
    architectural idioms (dot-product lanes, reduction trees, line buffers,
    wide-word scatter) that the paper's benchmarks are made of. *)

open Hlsb_ir

val dot_lanes :
  Dag.t ->
  prefix:string ->
  lanes:int ->
  dtype:Dtype.t ->
  shared:Dag.node ->
  Dag.node list
(** [lanes] multipliers, each taking [shared] (the broadcast source) and a
    private input; float dtypes use [Fmul], integers [Mul]. *)

val reduce_sum : Dag.t -> dtype:Dtype.t -> Dag.node list -> Dag.node
(** Balanced adder tree ([Fadd] for floats, [Add] for integers). *)

val line_buffer :
  Dag.t ->
  name:string ->
  dtype:Dtype.t ->
  depth:int ->
  write:Dag.node ->
  index:Dag.node ->
  Dag.node
(** Declares a buffer, stores [write] at [index], and returns a load from
    the same buffer at [index] — the stencil line-buffer idiom (store the
    incoming row, read back the delayed one). *)

val scatter_word :
  Dag.t -> word:Dag.node -> parts:int -> Dag.node list
(** Slices a wide word into [parts] equal fields (the 512-bit HBM word into
    8 x 64-bit lanes of §5.3). Raises [Invalid_argument] if the width does
    not divide. *)

val compare_score :
  Dag.t ->
  prefix:string ->
  dtype:Dtype.t ->
  window:Dag.node list ->
  pattern:Dag.node list ->
  Dag.node
(** Per-element equality, select of a weight, and a sum — a pattern-match /
    classifier scoring unit. Windows and patterns must have equal length. *)
