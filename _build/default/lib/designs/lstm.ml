open Hlsb_ir

(* CLINK-style LSTM inference [9]: N = 256 nodes, floating point. Each gate
   computes w . [x, h] with a vector of multipliers fed by the *shared*
   current input element — a data broadcast — followed by an adder tree and
   the elementwise nonlinearity (approximated by a bounded rational chain,
   as HLS implements hard sigmoids). Four gates run as separate processes
   feeding an elementwise combine kernel. *)

let gate_kernel ~gate ~lanes =
  let dag = Dag.create () in
  let f32 = Dtype.Float32 in
  let in_fifo =
    Dag.add_fifo dag ~name:(Printf.sprintf "x_%s" gate) ~dtype:f32 ~depth:16
  in
  let out_fifo =
    Dag.add_fifo dag ~name:(Printf.sprintf "g_%s" gate) ~dtype:f32 ~depth:16
  in
  let x = Dag.fifo_read dag ~fifo:in_fifo in
  let h = Dag.input dag ~name:(Printf.sprintf "h_%s" gate) ~dtype:f32 in
  (* weights stream from BRAM *)
  let wbuf =
    Dag.add_buffer dag
      ~name:(Printf.sprintf "w_%s" gate)
      ~dtype:(Dtype.Uint 512) ~depth:2048 ~partition:1
  in
  let widx = Dag.input dag ~name:(Printf.sprintf "widx_%s" gate) ~dtype:(Dtype.Int 32) in
  let wword = Dag.load dag ~buffer:wbuf ~index:widx in
  let weights = Builders.scatter_word dag ~word:wword ~parts:16 in
  (* x (and h) broadcast to every multiplier lane *)
  let x_prods = Builders.dot_lanes dag ~prefix:(gate ^ "x") ~lanes ~dtype:f32 ~shared:x in
  let h_prods = Builders.dot_lanes dag ~prefix:(gate ^ "h") ~lanes ~dtype:f32 ~shared:h in
  (* weights modulate a subset of lanes *)
  let weighted =
    List.mapi
      (fun i p ->
        let w = List.nth weights (i mod 16) in
        let wf = Dag.op dag (Op.Slice (31, 0)) ~dtype:f32 [ w ] in
        Dag.op dag Op.Fmul ~dtype:f32 [ p; wf ])
      x_prods
  in
  let acc = Builders.reduce_sum dag ~dtype:f32 (weighted @ h_prods) in
  (* hard-sigmoid-ish nonlinearity: scale, clamp via min/max against consts *)
  let quarter = Dag.const dag ~dtype:f32 1048576L in
  let half = Dag.const dag ~dtype:f32 2097152L in
  let one = Dag.const dag ~dtype:f32 4194304L in
  let zero = Dag.const dag ~dtype:f32 0L in
  let scaled = Dag.op dag Op.Fmul ~dtype:f32 [ acc; quarter ] in
  let shifted = Dag.op dag Op.Fadd ~dtype:f32 [ scaled; half ] in
  let lt = Dag.op dag (Op.Fcmp Op.Lt) ~dtype:Dtype.Bool [ shifted; zero ] in
  let lo = Dag.op dag Op.Select ~dtype:f32 [ lt; zero; shifted ] in
  let gt = Dag.op dag (Op.Fcmp Op.Gt) ~dtype:Dtype.Bool [ lo; one ] in
  let out = Dag.op dag Op.Select ~dtype:f32 [ gt; one; lo ] in
  ignore (Dag.fifo_write dag ~fifo:out_fifo ~value:out);
  Kernel.create ~name:(Printf.sprintf "lstm_%s" gate) ~trip_count:256 dag

let combine_kernel () =
  let dag = Dag.create () in
  let f32 = Dtype.Float32 in
  let read g = Dag.fifo_read dag ~fifo:(Dag.add_fifo dag ~name:("g_" ^ g) ~dtype:f32 ~depth:16) in
  let i = read "i" and f = read "f" and o = read "o" and g = read "g" in
  let c_prev = Dag.input dag ~name:"c_prev" ~dtype:f32 in
  let fc = Dag.op dag Op.Fmul ~dtype:f32 [ f; c_prev ] in
  let ig = Dag.op dag Op.Fmul ~dtype:f32 [ i; g ] in
  let c = Dag.op dag Op.Fadd ~dtype:f32 [ fc; ig ] in
  let h = Dag.op dag Op.Fmul ~dtype:f32 [ o; c ] in
  let out = Dag.add_fifo dag ~name:"h_out" ~dtype:f32 ~depth:16 in
  ignore (Dag.fifo_write dag ~fifo:out ~value:h);
  Kernel.create ~name:"lstm_combine" ~trip_count:256 dag

let dataflow ?(lanes = 24) () =
  let df = Dataflow.create () in
  let f32 = Dtype.Float32 in
  let gates = [ "i"; "f"; "o"; "g" ] in
  let combine = Dataflow.add_process df ~name:"lstm_combine" ~kernel:(combine_kernel ()) () in
  List.iter
    (fun gate ->
      let p =
        Dataflow.add_process df
          ~name:(Printf.sprintf "lstm_%s" gate)
          ~kernel:(gate_kernel ~gate ~lanes)
          ()
      in
      ignore
        (Dataflow.add_channel df
           ~name:(Printf.sprintf "x_%s" gate)
           ~src:(-1) ~dst:p ~dtype:f32 ~depth:16 ());
      ignore
        (Dataflow.add_channel df
           ~name:(Printf.sprintf "g_%s" gate)
           ~src:p ~dst:combine ~dtype:f32 ~depth:16 ()))
    gates;
  ignore
    (Dataflow.add_channel df ~name:"h_out" ~src:combine ~dst:(-1) ~dtype:f32
       ~depth:16 ());
  df

let spec =
  Spec.make ~name:"LSTM Network" ~broadcast:"Data"
    ~device:Hlsb_device.Device.ultrascale_plus
    ~build:(fun () -> dataflow ())
    ~paper:
      {
        Spec.p_lut = (8, 9);
        p_ff = (6, 6);
        p_bram = (2, 2);
        p_dsp = (14, 14);
        p_freq = (285, 325);
      }
