open Hlsb_ir

let kernel ?(back_search_count = 64) ~lane () =
  let dag = Dag.create () in
  let i32 = Dtype.Int 32 in
  let i16 = Dtype.Int 16 in
  let in_fifo = Dag.add_fifo dag ~name:(Printf.sprintf "gin%d" lane) ~dtype:(Dtype.Uint 128) ~depth:16 in
  let out_fifo = Dag.add_fifo dag ~name:(Printf.sprintf "gout%d" lane) ~dtype:i32 ~depth:16 in
  let anchor = Dag.fifo_read dag ~fifo:in_fifo in
  (* anchor word carries curr.x / curr.y / tag / qspan *)
  let curr_x = Dag.op dag (Op.Slice (31, 0)) ~dtype:i32 [ anchor ] in
  let curr_y = Dag.op dag (Op.Slice (63, 32)) ~dtype:i32 [ anchor ] in
  let curr_tag = Dag.op dag (Op.Slice (95, 64)) ~dtype:i32 [ anchor ] in
  let avg_qspan = Dag.op dag (Op.Slice (111, 96)) ~dtype:i16 [ anchor ] in
  let max_dist_x = Dag.input dag ~name:(Printf.sprintf "max_dist_x%d" lane) ~dtype:i32 in
  let max_dist_y = Dag.input dag ~name:(Printf.sprintf "max_dist_y%d" lane) ~dtype:i32 in
  let bw = Dag.input dag ~name:(Printf.sprintf "bw%d" lane) ~dtype:i32 in
  let neg_inf = Dag.const dag ~dtype:i32 (-2147483648L) in
  (* The previous-anchor window lives in BRAM; the running window is also
     kept in registers for the unrolled comparators. *)
  let window_buf =
    Dag.add_buffer dag
      ~name:(Printf.sprintf "window%d" lane)
      ~dtype:(Dtype.Uint 128) ~depth:8192 ~partition:1
  in
  let widx = Dag.input dag ~name:(Printf.sprintf "widx%d" lane) ~dtype:i32 in
  ignore (Dag.store dag ~buffer:window_buf ~index:widx ~value:anchor);
  let scores = ref [] in
  Transform.unrolled dag ~factor:back_search_count (fun j ->
    let prev_x = Dag.input dag ~name:(Printf.sprintf "prev%d_x%d" lane j) ~dtype:i32 in
    let prev_y = Dag.input dag ~name:(Printf.sprintf "prev%d_y%d" lane j) ~dtype:i32 in
    let prev_w = Dag.input dag ~name:(Printf.sprintf "prev%d_w%d" lane j) ~dtype:i16 in
    let prev_tag = Dag.input dag ~name:(Printf.sprintf "prev%d_t%d" lane j) ~dtype:i32 in
    (* Fig. 13 lines 6-14: every lane reads the shared curr.* values. *)
    let dist_x = Dag.op dag Op.Sub ~dtype:i32 [ prev_x; curr_x ] in
    let dist_y = Dag.op dag Op.Sub ~dtype:i32 [ prev_y; curr_y ] in
    let dd0 = Dag.op dag Op.Sub ~dtype:i32 [ dist_x; dist_y ] in
    let dd = Dag.op dag Op.Abs ~dtype:i32 [ dd0 ] in
    let min_d = Dag.op dag Op.Min ~dtype:i32 [ dist_y; dist_x ] in
    let log_dd = Dag.op dag Op.Log2 ~dtype:i32 [ dd ] in
    let dd16 = Dag.op dag (Op.Slice (15, 0)) ~dtype:i16 [ dd ] in
    let m = Dag.op dag Op.Mul ~dtype:i16 [ dd16; avg_qspan ] in
    let m32 = Dag.op dag (Op.Slice (15, 0)) ~dtype:i32 [ m ] in
    let temp = Dag.op dag Op.Min ~dtype:i32 [ min_d; prev_w ] in
    let t1 = Dag.op dag Op.Sub ~dtype:i32 [ temp; m32 ] in
    let score = Dag.op dag Op.Sub ~dtype:i32 [ t1; log_dd ] in
    (* Fig. 13 lines 15-18: the guard conditions, all reading shared
       thresholds. *)
    let zero = Dag.const dag ~dtype:i32 0L in
    let c1 = Dag.op dag (Op.Icmp Op.Eq) ~dtype:Dtype.Bool [ dist_x; zero ] in
    let c2 = Dag.op dag (Op.Icmp Op.Gt) ~dtype:Dtype.Bool [ dist_x; max_dist_x ] in
    let c3 = Dag.op dag (Op.Icmp Op.Gt) ~dtype:Dtype.Bool [ dist_y; max_dist_y ] in
    let c4 = Dag.op dag (Op.Icmp Op.Le) ~dtype:Dtype.Bool [ dist_y; zero ] in
    let c5 = Dag.op dag (Op.Icmp Op.Gt) ~dtype:Dtype.Bool [ dd; bw ] in
    let c6 = Dag.op dag (Op.Icmp Op.Ne) ~dtype:Dtype.Bool [ curr_tag; prev_tag ] in
    let or1 = Dag.op dag Op.Or_ ~dtype:Dtype.Bool [ c1; c2 ] in
    let or2 = Dag.op dag Op.Or_ ~dtype:Dtype.Bool [ c3; c4 ] in
    let or3 = Dag.op dag Op.Or_ ~dtype:Dtype.Bool [ c5; c6 ] in
    let or4 = Dag.op dag Op.Or_ ~dtype:Dtype.Bool [ or1; or2 ] in
    let guard = Dag.op dag Op.Or_ ~dtype:Dtype.Bool [ or4; or3 ] in
    let final = Dag.op dag Op.Select ~dtype:i32 [ guard; neg_inf; score ] in
    scores := final :: !scores);
  let best = Transform.reduce_tree dag ~op:Op.Max ~dtype:i32 !scores in
  ignore (Dag.fifo_write dag ~fifo:out_fifo ~value:best);
  Kernel.create ~name:(Printf.sprintf "genome_lane%d" lane) ~trip_count:4096 dag

let dataflow ?(back_search_count = 64) ?(lanes = 4) () =
  let df = Dataflow.create () in
  for lane = 0 to lanes - 1 do
    let k = kernel ~back_search_count ~lane () in
    let p = Dataflow.add_process df ~name:k.Kernel.name ~kernel:k () in
    ignore
      (Dataflow.add_channel df
         ~name:(Printf.sprintf "gin%d" lane)
         ~src:(-1) ~dst:p ~dtype:(Dtype.Uint 128) ~depth:16 ());
    ignore
      (Dataflow.add_channel df
         ~name:(Printf.sprintf "gout%d" lane)
         ~src:p ~dst:(-1) ~dtype:(Dtype.Int 32) ~depth:16 ())
  done;
  df

let spec =
  Spec.make ~name:"Genome Sequencing" ~broadcast:"Data"
    ~device:Hlsb_device.Device.ultrascale_plus
    ~build:(fun () -> dataflow ())
    ~paper:
      {
        Spec.p_lut = (22, 22);
        p_ff = (11, 12);
        p_bram = (6, 6);
        p_dsp = (8, 8);
        p_freq = (264, 341);
      }
