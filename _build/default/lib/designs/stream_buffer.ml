open Hlsb_ir

(* The stream buffer of Fig. 18: data streams into a very large on-chip
   buffer and back out. The write data register fans out to every BRAM unit
   (data broadcast, Fig. 4) and under stall control the enable signal fans
   out to every unit as well (pipeline-control broadcast) — the design the
   paper uses to show that *both* must be fixed (Fig. 19). *)

let kernel ?(depth_words = 131072) ?(width = 512) () =
  let dag = Dag.create () in
  let dt = Dtype.Uint width in
  let i32 = Dtype.Int 32 in
  let in_fifo = Dag.add_fifo dag ~name:"sb_in" ~dtype:dt ~depth:16 in
  let out_fifo = Dag.add_fifo dag ~name:"sb_out" ~dtype:dt ~depth:16 in
  let buf =
    Dag.add_buffer dag ~name:"big_buffer" ~dtype:dt ~depth:depth_words
      ~partition:1
  in
  let wr_i = Dag.input dag ~name:"wr_i" ~dtype:i32 in
  let rd_i = Dag.input dag ~name:"rd_i" ~dtype:i32 in
  let data = Dag.fifo_read dag ~fifo:in_fifo in
  ignore (Dag.store dag ~buffer:buf ~index:wr_i ~value:data);
  let out = Dag.load dag ~buffer:buf ~index:rd_i in
  ignore (Dag.fifo_write dag ~fifo:out_fifo ~value:out);
  Kernel.create ~name:"stream_buffer" ~trip_count:depth_words dag

let dataflow ?depth_words ?width () =
  let df = Dataflow.create () in
  let k = kernel ?depth_words ?width () in
  let p = Dataflow.add_process df ~name:k.Kernel.name ~kernel:k () in
  let dt = Dtype.Uint (match width with Some w -> w | None -> 512) in
  ignore
    (Dataflow.add_channel df ~name:"sb_in" ~src:(-1) ~dst:p ~dtype:dt
       ~depth:16 ());
  ignore
    (Dataflow.add_channel df ~name:"sb_out" ~src:p ~dst:(-1) ~dtype:dt
       ~depth:16 ());
  df

let spec =
  Spec.make ~name:"Stream Buffer" ~broadcast:"Pipe. Ctrl. & Data"
    ~device:Hlsb_device.Device.ultrascale_plus
    ~build:(fun () -> dataflow ())
    ~paper:
      {
        Spec.p_lut = (1, 1);
        p_ff = (1, 1);
        p_bram = (95, 95);
        p_dsp = (0, 0);
        p_freq = (154, 281);
      }
