open Hlsb_ir

let mul_op dt = if Dtype.is_float dt then Op.Fmul else Op.Mul
let add_op dt = if Dtype.is_float dt then Op.Fadd else Op.Add

let dot_lanes dag ~prefix ~lanes ~dtype ~shared =
  List.init lanes (fun i ->
    let priv =
      Dag.input dag ~name:(Printf.sprintf "%s_in%d" prefix i) ~dtype
    in
    Dag.op dag (mul_op dtype) ~dtype [ shared; priv ])

let reduce_sum dag ~dtype nodes =
  Transform.reduce_tree dag ~op:(add_op dtype) ~dtype nodes

let line_buffer dag ~name ~dtype ~depth ~write ~index =
  let buf = Dag.add_buffer dag ~name ~dtype ~depth ~partition:1 in
  ignore (Dag.store dag ~buffer:buf ~index ~value:write);
  Dag.load dag ~buffer:buf ~index

let scatter_word dag ~word ~parts =
  let w = Dtype.width (Dag.dtype dag word) in
  if parts < 1 || w mod parts <> 0 then
    invalid_arg "Builders.scatter_word: width does not divide";
  let pw = w / parts in
  List.init parts (fun i ->
    Dag.op dag
      (Op.Slice (((i + 1) * pw) - 1, i * pw))
      ~dtype:(Dtype.Uint pw)
      [ word ])

let compare_score dag ~prefix ~dtype ~window ~pattern =
  if List.length window <> List.length pattern then
    invalid_arg "Builders.compare_score: length mismatch";
  let scores =
    List.map2
      (fun wv pv ->
        let eq = Dag.op dag (Op.Icmp Op.Eq) ~dtype:Dtype.Bool [ wv; pv ] in
        let weight =
          Dag.const dag ~dtype (Int64.of_int (7 + String.length prefix))
        in
        let zero = Dag.const dag ~dtype 0L in
        Dag.op dag Op.Select ~dtype [ eq; weight; zero ])
      window pattern
  in
  reduce_sum dag ~dtype scores
