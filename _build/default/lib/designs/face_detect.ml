open Hlsb_ir

(* Rosetta face detection [10, 11] on the ZC706: a sliding image window held
   in a register array is read by every parallel Haar classifier stage — the
   shared window pixels are the data broadcast — while line buffers in BRAM
   feed the window. Fixed point throughout. *)

let kernel ?(classifiers = 20) ?(window = 32) () =
  let dag = Dag.create () in
  let i16 = Dtype.Int 16 in
  let i32 = Dtype.Int 32 in
  let in_fifo = Dag.add_fifo dag ~name:"pix_in" ~dtype:(Dtype.Uint 64) ~depth:16 in
  let out_fifo = Dag.add_fifo dag ~name:"face_out" ~dtype:i32 ~depth:16 in
  let word = Dag.fifo_read dag ~fifo:in_fifo in
  let col = Dag.input dag ~name:"col" ~dtype:i32 in
  (* three image-row line buffers *)
  let rows =
    List.init 3 (fun r ->
      Builders.line_buffer dag
        ~name:(Printf.sprintf "line%d" r)
        ~dtype:(Dtype.Uint 64) ~depth:8192 ~write:word ~index:col)
  in
  (* window pixels: slices of the buffered rows, shared by every
     classifier *)
  let window_pixels =
    List.concat_map
      (fun row -> Builders.scatter_word dag ~word:row ~parts:4)
      rows
    |> List.map (fun p -> Dag.op dag (Op.Slice (15, 0)) ~dtype:i16 [ p ])
  in
  let n_pix = List.length window_pixels in
  let scores =
    List.init classifiers (fun c ->
      (* each classifier takes a weighted sum of a spread of shared window
         pixels against per-classifier thresholds *)
      let taps =
        List.init (min window n_pix) (fun t ->
          List.nth window_pixels ((c + (t * 3)) mod n_pix))
      in
      let weighted =
        List.mapi
          (fun t p ->
            let w = Dag.const dag ~dtype:i16 (Int64.of_int ((t * 5) + c + 1)) in
            Dag.op dag Op.Mul ~dtype:i16 [ p; w ])
          taps
      in
      let sum = Builders.reduce_sum dag ~dtype:i16 weighted in
      let sum32 = Dag.op dag (Op.Slice (15, 0)) ~dtype:i32 [ sum ] in
      let thresh = Dag.const dag ~dtype:i32 (Int64.of_int (1000 + (c * 37))) in
      let pass = Dag.op dag (Op.Icmp Op.Gt) ~dtype:Dtype.Bool [ sum32; thresh ] in
      let one = Dag.const dag ~dtype:i32 1L in
      let zero = Dag.const dag ~dtype:i32 0L in
      Dag.op dag Op.Select ~dtype:i32 [ pass; one; zero ])
  in
  let votes = Builders.reduce_sum dag ~dtype:i32 scores in
  ignore (Dag.fifo_write dag ~fifo:out_fifo ~value:votes);
  Kernel.create ~name:"face_detect" ~trip_count:76800 dag

let dataflow ?classifiers ?window () =
  let df = Dataflow.create () in
  let k = kernel ?classifiers ?window () in
  let p = Dataflow.add_process df ~name:k.Kernel.name ~kernel:k () in
  ignore
    (Dataflow.add_channel df ~name:"pix_in" ~src:(-1) ~dst:p
       ~dtype:(Dtype.Uint 64) ~depth:16 ());
  ignore
    (Dataflow.add_channel df ~name:"face_out" ~src:p ~dst:(-1)
       ~dtype:(Dtype.Int 32) ~depth:16 ());
  df

let spec =
  Spec.make ~name:"Face Detection" ~broadcast:"Data"
    ~device:Hlsb_device.Device.zynq_7z045
    ~build:(fun () -> dataflow ())
    ~paper:
      {
        Spec.p_lut = (21, 22);
        p_ff = (14, 15);
        p_bram = (16, 16);
        p_dsp = (9, 9);
        p_freq = (220, 273);
      }
