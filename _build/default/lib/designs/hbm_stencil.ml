open Hlsb_ir

(* HBM-based Jacobi stencil (§5.3): 28 independent HBM pseudo-channels each
   deliver 512-bit words that are scattered into 8 64-bit FIFOs. The SODA
   compiler expresses all 28 flows in one loop, so the HLS front end
   synchronizes all of them every iteration (Fig. 6a) even though the flows
   never touch — the sync broadcast that §4.2 prunes by splitting the loop. *)

let port_kernel ~port =
  let dag = Dag.create () in
  let f32 = Dtype.Float32 in
  let word_t = Dtype.Uint 512 in
  let in_fifo =
    Dag.add_fifo dag ~name:(Printf.sprintf "hbm%d" port) ~dtype:word_t ~depth:16
  in
  let word = Dag.fifo_read dag ~fifo:in_fifo in
  (* per-port reorder buffer *)
  let buf =
    Dag.add_buffer dag
      ~name:(Printf.sprintf "reorder%d" port)
      ~dtype:word_t ~depth:1024 ~partition:1
  in
  let idx = Dag.input dag ~name:(Printf.sprintf "ridx%d" port) ~dtype:(Dtype.Int 32) in
  ignore (Dag.store dag ~buffer:buf ~index:idx ~value:word);
  let delayed = Dag.load dag ~buffer:buf ~index:idx in
  let lanes = Builders.scatter_word dag ~word:delayed ~parts:8 in
  (* each 64-bit lane feeds two float stencil taps of the port's compute
     stage before streaming out (the SODA datapath the ports exist for) *)
  let third = Dag.const dag ~dtype:f32 1051372203L in
  List.iteri
    (fun lane v ->
      let lo = Dag.op dag (Op.Slice (31, 0)) ~dtype:f32 [ v ] in
      let hi = Dag.op dag (Op.Slice (63, 32)) ~dtype:f32 [ v ] in
      let s1 = Dag.op dag Op.Fadd ~dtype:f32 [ lo; hi ] in
      let p1 = Dag.op dag Op.Fmul ~dtype:f32 [ s1; third ] in
      let p2 = Dag.op dag Op.Fmul ~dtype:f32 [ lo; third ] in
      let s2 = Dag.op dag Op.Fadd ~dtype:f32 [ p1; p2 ] in
      let s3 = Dag.op dag Op.Fadd ~dtype:f32 [ s2; hi ] in
      let f =
        Dag.add_fifo dag
          ~name:(Printf.sprintf "flow%d_%d" port lane)
          ~dtype:f32 ~depth:16
      in
      ignore (Dag.fifo_write dag ~fifo:f ~value:s3))
    lanes;
  Kernel.create ~name:(Printf.sprintf "hbm_port%d" port) ~trip_count:65536 dag

let dataflow ?(ports = 28) () =
  let df = Dataflow.create () in
  let procs =
    List.init ports (fun port ->
      let k = port_kernel ~port in
      let p = Dataflow.add_process df ~name:k.Kernel.name ~kernel:k ~latency:(6 + (port mod 3)) () in
      ignore
        (Dataflow.add_channel df
           ~name:(Printf.sprintf "hbm%d" port)
           ~src:(-1) ~dst:p ~dtype:(Dtype.Uint 512) ~depth:16 ());
      for lane = 0 to 7 do
        ignore
          (Dataflow.add_channel df
             ~name:(Printf.sprintf "flow%d_%d" port lane)
             ~src:p ~dst:(-1) ~dtype:Dtype.Float32 ~depth:16 ())
      done;
      p)
  in
  (* one source loop = one sync domain over every port (Fig. 6a) *)
  Dataflow.add_sync_group df procs;
  df

let spec =
  Spec.make ~name:"HBM-Based Stencil" ~broadcast:"Pipe. Ctrl. & Sync."
    ~device:Hlsb_device.Device.alveo_u50
    ~build:(fun () -> dataflow ())
    ~paper:
      {
        Spec.p_lut = (21, 23);
        p_ff = (23, 23);
        p_bram = (34, 31);
        p_dsp = (37, 37);
        p_freq = (191, 324);
      }
