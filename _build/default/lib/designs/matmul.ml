open Hlsb_ir

(* Blocked matrix multiply from the composable-accelerator generator [4],
   with the parallelism pushed up as the paper does ("we further increase
   the parallelism ... to expose the problem"). PE clusters are separate
   dataflow kernels (the generator's composition), so each has its own
   flow-control domain; within a cluster the streamed A element broadcasts
   to every multiplier lane (data broadcast), and the whole cluster is a
   deep FIFO-controlled pipeline (pipeline-control broadcast). *)

let cluster_kernel ?(pes = 4) ?(dot_width = 60) ~cluster () =
  let dag = Dag.create () in
  let f32 = Dtype.Float32 in
  let a_fifo =
    Dag.add_fifo dag ~name:(Printf.sprintf "a_in%d" cluster) ~dtype:f32 ~depth:16
  in
  let out_fifo =
    Dag.add_fifo dag
      ~name:(Printf.sprintf "part%d" cluster)
      ~dtype:(Dtype.Uint 128) ~depth:16
  in
  let a = Dag.fifo_read dag ~fifo:a_fifo in
  (* per-cluster B tile in BRAM *)
  let b_buf =
    Dag.add_buffer dag
      ~name:(Printf.sprintf "b_tile%d" cluster)
      ~dtype:(Dtype.Uint 512) ~depth:4096 ~partition:1
  in
  let bidx = Dag.input dag ~name:(Printf.sprintf "bidx%d" cluster) ~dtype:(Dtype.Int 32) in
  let bword = Dag.load dag ~buffer:b_buf ~index:bidx in
  let b_slices = Builders.scatter_word dag ~word:bword ~parts:16 in
  let partials =
    List.init pes (fun pe ->
      let prods =
        List.init dot_width (fun i ->
          let b =
            let s = List.nth b_slices ((pe + i) mod 16) in
            Dag.op dag (Op.Slice (31, 0)) ~dtype:f32 [ s ]
          in
          let priv =
            Dag.input dag
              ~name:(Printf.sprintf "b%d_%d_%d" cluster pe i)
              ~dtype:f32
          in
          let ab = Dag.op dag Op.Fmul ~dtype:f32 [ a; priv ] in
          Dag.op dag Op.Fadd ~dtype:f32 [ ab; b ])
      in
      Builders.reduce_sum dag ~dtype:f32 prods)
  in
  let packed = Dag.op dag Op.Concat ~dtype:(Dtype.Uint 128) partials in
  ignore (Dag.fifo_write dag ~fifo:out_fifo ~value:packed);
  Kernel.create ~name:(Printf.sprintf "mm_cluster%d" cluster) ~trip_count:65536 dag

let collect_kernel ~clusters =
  let dag = Dag.create () in
  let words =
    List.init clusters (fun c ->
      Dag.fifo_read dag
        ~fifo:
          (Dag.add_fifo dag
             ~name:(Printf.sprintf "part%d" c)
             ~dtype:(Dtype.Uint 128) ~depth:16))
  in
  let packed = Dag.op dag Op.Concat ~dtype:(Dtype.Uint 512) words in
  let out = Dag.add_fifo dag ~name:"c_out" ~dtype:(Dtype.Uint 512) ~depth:16 in
  ignore (Dag.fifo_write dag ~fifo:out ~value:packed);
  Kernel.create ~name:"mm_collect" ~trip_count:65536 dag

let dataflow ?(clusters = 4) ?(pes = 4) ?(dot_width = 60) () =
  let df = Dataflow.create () in
  let collect =
    Dataflow.add_process df ~name:"mm_collect" ~kernel:(collect_kernel ~clusters) ()
  in
  for c = 0 to clusters - 1 do
    let k = cluster_kernel ~pes ~dot_width ~cluster:c () in
    let p = Dataflow.add_process df ~name:k.Kernel.name ~kernel:k () in
    ignore
      (Dataflow.add_channel df
         ~name:(Printf.sprintf "a_in%d" c)
         ~src:(-1) ~dst:p ~dtype:Dtype.Float32 ~depth:16 ());
    ignore
      (Dataflow.add_channel df
         ~name:(Printf.sprintf "part%d" c)
         ~src:p ~dst:collect ~dtype:(Dtype.Uint 128) ~depth:16 ())
  done;
  ignore
    (Dataflow.add_channel df ~name:"c_out" ~src:collect ~dst:(-1)
       ~dtype:(Dtype.Uint 512) ~depth:16 ());
  df

let spec =
  Spec.make ~name:"Matrix Multiply" ~broadcast:"Pipe. Ctrl. & Data"
    ~device:Hlsb_device.Device.ultrascale_plus
    ~build:(fun () -> dataflow ())
    ~paper:
      {
        Spec.p_lut = (23, 23);
        p_ff = (24, 27);
        p_bram = (25, 25);
        p_dsp = (74, 74);
        p_freq = (202, 299);
      }
