open Hlsb_ir
module Calibrate = Hlsb_delay.Calibrate

let to_string (s : Schedule.t) =
  let dag = s.Schedule.kernel.Kernel.dag in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "schedule %s [%s] target %.2f ns, depth %d\n"
       s.Schedule.kernel.Kernel.name s.Schedule.mode_label s.Schedule.target_ns
       s.Schedule.depth);
  for c = 0 to s.Schedule.depth - 1 do
    let any = ref false in
    Dag.iter dag (fun v ->
      let e = s.Schedule.entries.(v) in
      if e.Schedule.e_cycle = c then begin
        if not !any then begin
          Buffer.add_string buf (Printf.sprintf "cycle %d:\n" c);
          any := true
        end;
        Buffer.add_string buf
          (Printf.sprintf "  %%%-4d %-14s start %5.2f  delay %5.2f  fo %-4d%s\n"
             v (Dag.node_name dag v) e.Schedule.e_start e.Schedule.e_delay
             e.Schedule.e_factor
             (if e.Schedule.e_added_pipe > 0 then
                Printf.sprintf "  (+%d pipe)" e.Schedule.e_added_pipe
              else ""))
      end)
  done;
  Buffer.contents buf

let latency (s : Schedule.t) = s.Schedule.depth

let stage_widths (s : Schedule.t) =
  let dag = s.Schedule.kernel.Kernel.dag in
  let nb = max 0 (s.Schedule.depth - 1) in
  let widths = Array.make nb 0 in
  Dag.iter dag (fun v ->
    let def = s.Schedule.entries.(v).Schedule.e_cycle in
    let last_use =
      List.fold_left
        (fun acc u -> max acc s.Schedule.entries.(u).Schedule.e_cycle)
        def (Dag.consumers dag v)
    in
    let w = Dtype.width (Dag.dtype dag v) in
    (* value occupies pipeline storage across boundaries def..last_use-1
       (including the operator's own internal stages) *)
    for b = def to min (last_use - 1) (nb - 1) do
      if b >= 0 then widths.(b) <- widths.(b) + w
    done);
  widths

let chain_delays (s : Schedule.t) =
  let dag = s.Schedule.kernel.Kernel.dag in
  let delays = Array.make s.Schedule.depth 0. in
  Dag.iter dag (fun v ->
    let e = s.Schedule.entries.(v) in
    let finish = e.Schedule.e_start +. e.Schedule.e_delay in
    if e.Schedule.e_cycle < s.Schedule.depth then
      delays.(e.Schedule.e_cycle) <- max delays.(e.Schedule.e_cycle) finish);
  delays

let chain_delays_calibrated cal (s : Schedule.t) =
  let dag = s.Schedule.kernel.Kernel.dag in
  let entries = s.Schedule.entries in
  let n = Dag.n_nodes dag in
  let finish = Array.make n 0. in
  let delays = Array.make s.Schedule.depth 0. in
  (* Input-side factor, mirroring the scheduler: the operator reading a
     broadcast variable is the one whose input net pays for it. *)
  let out_factor = Array.make n 1 in
  Dag.iter dag (fun v ->
    let f = max 1 (Schedule.same_cycle_factor s v) in
    (* tree-distributed values reach readers from leaf registers *)
    let f =
      if entries.(v).Schedule.e_bcast_levels > 0 then min f 8 else f
    in
    out_factor.(v) <- f);
  Dag.iter dag (fun v ->
    let e = entries.(v) in
    let factor =
      List.fold_left (fun acc a -> max acc out_factor.(a)) 1 (Dag.args dag v)
    in
    let d =
      match Dag.kind dag v with
      | Dag.Input _ | Dag.Const _ -> 0.
      | Dag.Fifo_read _ | Dag.Fifo_write _ -> 0.55
      | Dag.Output _ -> 0.05
      | Dag.Operation o -> Calibrate.op_delay cal o (Dag.dtype dag v) ~factor
      | Dag.Load b ->
        let buf = Dag.buffer dag b in
        Calibrate.mem_read_delay cal
          ~width:(Dtype.width buf.Dag.b_dtype)
          ~depth:buf.Dag.b_depth
      | Dag.Store b ->
        let buf = Dag.buffer dag b in
        Calibrate.mem_write_delay cal
          ~width:(Dtype.width buf.Dag.b_dtype)
          ~depth:buf.Dag.b_depth
    in
    (* Delay spreads over added pipeline stages if the schedule has them. *)
    let d = d /. float_of_int (e.Schedule.e_added_pipe + 1) in
    let start =
      List.fold_left
        (fun acc a ->
          let ea = entries.(a) in
          if
            ea.Schedule.e_latency = 0
            && ea.Schedule.e_cycle = e.Schedule.e_cycle
          then max acc finish.(a)
          else acc)
        0. (Dag.args dag v)
    in
    finish.(v) <- start +. d;
    if e.Schedule.e_cycle < s.Schedule.depth then
      delays.(e.Schedule.e_cycle) <-
        max delays.(e.Schedule.e_cycle) finish.(v));
  delays

let violations cal (s : Schedule.t) =
  let delays = chain_delays_calibrated cal s in
  let out = ref [] in
  Array.iteri
    (fun c d ->
      if d > s.Schedule.target_ns +. 1e-6 then
        out := (c, d -. s.Schedule.target_ns) :: !out)
    delays;
  List.rev !out
