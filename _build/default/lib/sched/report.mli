(** The schedule report — the analogue of the HLS [.rpt] files the paper's
    tool parses (§4.1: "we parse the HLS scheduling reports, which include
    the LLVM instructions annotated with scheduled state/cycle, estimated
    delay"). Downstream passes consume it: synchronization pruning reads
    kernel latencies, and the min-area skid-buffer DP reads the per-stage
    live data widths. *)


val to_string : Schedule.t -> string
(** Human-readable per-cycle listing: node, op, delay, broadcast factor. *)

val stage_widths : Schedule.t -> int array
(** [stage_widths s].(b) is the total bit width of values live across the
    boundary after cycle [b] (length = depth - 1). This is the w_alpha /
    w_beta profile of §4.3 (Fig. 17), extracted exactly as the paper does:
    from each value's definition and last-use cycles in the schedule. *)

val latency : Schedule.t -> int
(** Pipeline depth in cycles — what §4.2's pruning compares across parallel
    modules and §4.3's N. *)

val chain_delays : Schedule.t -> float array
(** Worst chained delay per cycle (ns); max over this array is the
    scheduler's own estimate of the critical path (Fig. 15a "our tool"
    series). *)

val chain_delays_calibrated :
  Hlsb_delay.Calibrate.t -> Schedule.t -> float array
(** Re-evaluate each cycle's chain with *calibrated* delays at the
    schedule's own broadcast factors: what the chains will really cost
    post-route. For a baseline schedule this exposes the violations the
    HLS tool cannot see; for a broadcast-aware schedule it stays within
    target. *)

val violations :
  Hlsb_delay.Calibrate.t -> Schedule.t -> (int * float) list
(** Cycles whose calibrated chain delay exceeds the target, with the
    excess delay (ns). *)
