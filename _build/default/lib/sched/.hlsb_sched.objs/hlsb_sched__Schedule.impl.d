lib/sched/schedule.ml: Array Dag Dtype Hlsb_delay Hlsb_device Hlsb_ir Kernel List
