lib/sched/schedule.mli: Dag Hlsb_delay Hlsb_ir Kernel
