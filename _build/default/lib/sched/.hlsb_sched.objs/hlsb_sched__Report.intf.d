lib/sched/report.mli: Hlsb_delay Schedule
