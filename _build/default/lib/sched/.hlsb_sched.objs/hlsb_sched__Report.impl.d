lib/sched/report.ml: Array Buffer Dag Dtype Hlsb_delay Hlsb_ir Kernel List Printf Schedule
