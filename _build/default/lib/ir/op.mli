(** Operator kinds of the operation DAG. The set mirrors what the paper's
    benchmarks exercise: integer/float arithmetic, comparisons, selects
    (ternaries), the [log2] if-else chain of the genome kernel, and shifts
    for the scatter/gather of wide memory words. *)

type cmp =
  | Lt
  | Le
  | Gt
  | Ge
  | Eq
  | Ne

type t =
  | Add
  | Sub
  | Mul
  | Div
  | Fadd
  | Fsub
  | Fmul
  | Fdiv
  | And_
  | Or_
  | Xor
  | Not
  | Shl
  | Shr
  | Icmp of cmp
  | Fcmp of cmp
  | Select  (** [select cond a b]; the mux of a C ternary *)
  | Min
  | Max
  | Abs
  | Log2  (** priority-encoder if-else chain (genome kernel line 11) *)
  | Concat  (** bit concatenation, e.g. packing 8 x i64 into an i512 word *)
  | Slice of int * int  (** [Slice (hi, lo)] bit extraction *)

val arity : t -> int
(** Number of operands; [Concat] is variadic and reports [-1]. *)

val is_float : t -> bool
(** Operators implemented in floating-point units (DSP-heavy, deep). *)

val result_is_bool : t -> bool
(** Comparison operators produce [Bool] regardless of operand type. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
