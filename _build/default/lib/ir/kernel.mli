(** A kernel is one pipelined loop nest after unrolling: the scheduling unit.
    It corresponds to what Vivado HLS reports per [#pragma HLS pipeline]
    region. *)

type t = {
  name : string;
  dag : Dag.t;
  ii : int;  (** target initiation interval (the paper's designs use 1) *)
  trip_count : int;  (** iterations of the pipelined loop, for simulation *)
}

val create : name:string -> ?ii:int -> ?trip_count:int -> Dag.t -> t
(** Raises [Invalid_argument] if [ii < 1], [trip_count < 1], or the DAG
    fails {!Dag.validate}. *)

val data_width_out : t -> int
(** Total bit width of FIFO writes + outputs — the w_beta of §4.3. *)

val data_width_in : t -> int
(** Total bit width of FIFO reads + inputs. *)
