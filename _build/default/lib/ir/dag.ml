module Vec = Hlsb_util.Vec

type node = int

type buffer = {
  b_name : string;
  b_dtype : Dtype.t;
  b_depth : int;
  b_partition : int;
}

type fifo = {
  f_name : string;
  f_dtype : Dtype.t;
  f_depth : int;
}

type kind =
  | Input of string
  | Const of int64
  | Operation of Op.t
  | Load of int
  | Store of int
  | Fifo_read of int
  | Fifo_write of int
  | Output of string

type node_data = {
  nd_kind : kind;
  nd_dtype : Dtype.t;
  nd_args : node array;
  nd_name : string;
}

type t = {
  nodes : node_data Vec.t;
  bufs : buffer Vec.t;
  fifo_decls : fifo Vec.t;
  mutable consumers_cache : node list array option;
}

let create () =
  {
    nodes = Vec.create ();
    bufs = Vec.create ();
    fifo_decls = Vec.create ();
    consumers_cache = None;
  }

let invalidate t = t.consumers_cache <- None

let add_buffer t ~name ~dtype ~depth ~partition =
  Dtype.validate dtype;
  if depth <= 0 then invalid_arg "Dag.add_buffer: depth <= 0";
  if partition <= 0 then invalid_arg "Dag.add_buffer: partition <= 0";
  Vec.push t.bufs
    { b_name = name; b_dtype = dtype; b_depth = depth; b_partition = partition }

let add_fifo t ~name ~dtype ~depth =
  Dtype.validate dtype;
  if depth <= 0 then invalid_arg "Dag.add_fifo: depth <= 0";
  Vec.push t.fifo_decls { f_name = name; f_dtype = dtype; f_depth = depth }

let check_node t v =
  if v < 0 || v >= Vec.length t.nodes then
    invalid_arg "Dag: node reference out of range (forward reference?)"

let add_node t kind dtype args name =
  Dtype.validate dtype;
  List.iter (check_node t) args;
  invalidate t;
  Vec.push t.nodes
    { nd_kind = kind; nd_dtype = dtype; nd_args = Array.of_list args; nd_name = name }

let input t ~name ~dtype = add_node t (Input name) dtype [] name

let const t ~dtype v = add_node t (Const v) dtype [] (Int64.to_string v)

let op t o ~dtype args =
  let want = Op.arity o in
  if want >= 0 && List.length args <> want then
    invalid_arg
      (Printf.sprintf "Dag.op: %s expects %d args, got %d" (Op.to_string o)
         want (List.length args));
  if want < 0 && args = [] then invalid_arg "Dag.op: concat of nothing";
  let dtype = if Op.result_is_bool o then Dtype.Bool else dtype in
  add_node t (Operation o) dtype args (Op.to_string o)

let check_buffer t b =
  if b < 0 || b >= Vec.length t.bufs then invalid_arg "Dag: bad buffer id"

let check_fifo t f =
  if f < 0 || f >= Vec.length t.fifo_decls then invalid_arg "Dag: bad fifo id"

let load t ~buffer ~index =
  check_buffer t buffer;
  let b = Vec.get t.bufs buffer in
  add_node t (Load buffer) b.b_dtype [ index ] (b.b_name ^ ".load")

let store t ~buffer ~index ~value =
  check_buffer t buffer;
  let b = Vec.get t.bufs buffer in
  add_node t (Store buffer) b.b_dtype [ index; value ] (b.b_name ^ ".store")

let fifo_read t ~fifo =
  check_fifo t fifo;
  let f = Vec.get t.fifo_decls fifo in
  add_node t (Fifo_read fifo) f.f_dtype [] (f.f_name ^ ".read")

let fifo_write t ~fifo ~value =
  check_fifo t fifo;
  let f = Vec.get t.fifo_decls fifo in
  add_node t (Fifo_write fifo) f.f_dtype [ value ] (f.f_name ^ ".write")

let output t ~name ~value =
  let data = Vec.get t.nodes value in
  add_node t (Output name) data.nd_dtype [ value ] name

let n_nodes t = Vec.length t.nodes
let node_data t v = Vec.get t.nodes v
let kind t v = (node_data t v).nd_kind
let dtype t v = (node_data t v).nd_dtype
let args t v = Array.to_list (node_data t v).nd_args
let node_name t v = (node_data t v).nd_name
let buffers t = Vec.to_array t.bufs
let fifos t = Vec.to_array t.fifo_decls
let buffer t b = check_buffer t b; Vec.get t.bufs b
let fifo t f = check_fifo t f; Vec.get t.fifo_decls f

let consumer_table t =
  match t.consumers_cache with
  | Some c -> c
  | None ->
    let table = Array.make (Vec.length t.nodes) [] in
    Vec.iteri
      (fun id nd -> Array.iter (fun a -> table.(a) <- id :: table.(a)) nd.nd_args)
      t.nodes;
    let table = Array.map List.rev table in
    t.consumers_cache <- Some table;
    table

let consumers t v =
  check_node t v;
  List.sort_uniq compare (consumer_table t).(v)

let broadcast_factor t v =
  check_node t v;
  List.length (consumer_table t).(v)

let is_datapath = function
  | Input _ | Const _ -> false
  | Operation _ | Load _ | Store _ | Fifo_read _ | Fifo_write _ | Output _ ->
    true

let iter t f =
  for v = 0 to Vec.length t.nodes - 1 do
    f v
  done

let validate t =
  let errors = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errors := s :: !errors) fmt in
  Vec.iteri
    (fun id nd ->
      Array.iter
        (fun a -> if a < 0 || a >= id then err "node %d: bad arg %d" id a)
        nd.nd_args;
      (match nd.nd_kind with
      | Input _ | Const _ ->
        if Array.length nd.nd_args <> 0 then err "node %d: source with args" id
      | Operation o ->
        let want = Op.arity o in
        if want >= 0 && Array.length nd.nd_args <> want then
          err "node %d: %s arity" id (Op.to_string o);
        if Op.result_is_bool o && not (Dtype.equal nd.nd_dtype Dtype.Bool) then
          err "node %d: comparison result must be bool" id
      | Load b ->
        if b < 0 || b >= Vec.length t.bufs then err "node %d: bad buffer" id;
        if Array.length nd.nd_args <> 1 then err "node %d: load arity" id
      | Store b ->
        if b < 0 || b >= Vec.length t.bufs then err "node %d: bad buffer" id
        else begin
          if Array.length nd.nd_args <> 2 then err "node %d: store arity" id
          else begin
            let value = nd.nd_args.(1) in
            let vw = Dtype.width (Vec.get t.nodes value).nd_dtype in
            let bw = Dtype.width (Vec.get t.bufs b).b_dtype in
            if vw <> bw then
              err "node %d: store width %d <> buffer width %d" id vw bw
          end
        end
      | Fifo_read f ->
        if f < 0 || f >= Vec.length t.fifo_decls then err "node %d: bad fifo" id
      | Fifo_write f ->
        if f < 0 || f >= Vec.length t.fifo_decls then err "node %d: bad fifo" id;
        if Array.length nd.nd_args <> 1 then err "node %d: fifo_write arity" id
      | Output _ ->
        if Array.length nd.nd_args <> 1 then err "node %d: output arity" id))
    t.nodes;
  match !errors with
  | [] -> Ok ()
  | es -> Error (String.concat "; " (List.rev es))

let op_histogram t =
  let table = Hashtbl.create 16 in
  let bump key =
    Hashtbl.replace table key (1 + Option.value ~default:0 (Hashtbl.find_opt table key))
  in
  Vec.iteri
    (fun _ nd ->
      match nd.nd_kind with
      | Operation o -> bump (Op.to_string o)
      | Input _ -> bump "input"
      | Const _ -> bump "const"
      | Load _ -> bump "load"
      | Store _ -> bump "store"
      | Fifo_read _ -> bump "fifo_read"
      | Fifo_write _ -> bump "fifo_write"
      | Output _ -> bump "output")
    t.nodes;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) table []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let pp_node t fmt v =
  let nd = node_data t v in
  let args =
    nd.nd_args |> Array.to_list |> List.map string_of_int |> String.concat ", "
  in
  Format.fprintf fmt "%%%d = %s:%s(%s)" v nd.nd_name
    (Dtype.to_string nd.nd_dtype)
    args

let pp fmt t =
  iter t (fun v -> Format.fprintf fmt "%a@." (pp_node t) v)
