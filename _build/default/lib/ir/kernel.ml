type t = {
  name : string;
  dag : Dag.t;
  ii : int;
  trip_count : int;
}

let create ~name ?(ii = 1) ?(trip_count = 1024) dag =
  if ii < 1 then invalid_arg "Kernel.create: ii < 1";
  if trip_count < 1 then invalid_arg "Kernel.create: trip_count < 1";
  (match Dag.validate dag with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Kernel.create: invalid dag: " ^ msg));
  { name; dag; ii; trip_count }

let sum_width t pred =
  let acc = ref 0 in
  Dag.iter t.dag (fun v ->
    if pred (Dag.kind t.dag v) then acc := !acc + Dtype.width (Dag.dtype t.dag v));
  !acc

let data_width_out t =
  sum_width t (function
    | Dag.Fifo_write _ | Dag.Output _ -> true
    | Dag.Input _ | Dag.Const _ | Dag.Operation _ | Dag.Load _ | Dag.Store _
    | Dag.Fifo_read _ ->
      false)

let data_width_in t =
  sum_width t (function
    | Dag.Fifo_read _ | Dag.Input _ -> true
    | Dag.Const _ | Dag.Operation _ | Dag.Load _ | Dag.Store _
    | Dag.Fifo_write _ | Dag.Output _ ->
      false)
