let unrolled _dag ~factor body =
  if factor < 1 then invalid_arg "Transform.unrolled: factor < 1";
  for j = 0 to factor - 1 do
    body j
  done

let partitioned_buffers dag ~name ~dtype ~depth ~factor =
  if factor < 1 then invalid_arg "Transform.partitioned_buffers: factor < 1";
  let bank_depth = (depth + factor - 1) / factor in
  Array.init factor (fun i ->
    Dag.add_buffer dag
      ~name:(Printf.sprintf "%s_bank%d" name i)
      ~dtype ~depth:bank_depth ~partition:1)

let load_partitioned dag ~buffers ~index ~bank_of =
  if bank_of < 0 || bank_of >= Array.length buffers then
    invalid_arg "Transform.load_partitioned: bad bank";
  Dag.load dag ~buffer:buffers.(bank_of) ~index

let store_partitioned dag ~buffers ~index ~value ~bank_of =
  if bank_of < 0 || bank_of >= Array.length buffers then
    invalid_arg "Transform.store_partitioned: bad bank";
  Dag.store dag ~buffer:buffers.(bank_of) ~index ~value

let rec reduce_tree dag ~op ~dtype nodes =
  match nodes with
  | [] -> invalid_arg "Transform.reduce_tree: empty"
  | [ x ] -> x
  | _ ->
    let rec pair = function
      | [] -> []
      | [ x ] -> [ x ]
      | a :: b :: rest -> Dag.op dag op ~dtype [ a; b ] :: pair rest
    in
    reduce_tree dag ~op ~dtype (pair nodes)
