(** Datatypes carried by IR values. Widths drive both resource estimation
    (registers, buffer bits) and the delay library (per-width operator
    delays). *)

type t =
  | Bool
  | Int of int  (** signed integer of the given bit width, 1..512 *)
  | Uint of int  (** unsigned integer of the given bit width, 1..512 *)
  | Float32
  | Float64

val width : t -> int
(** Storage width in bits. *)

val is_float : t -> bool
val equal : t -> t -> bool
val to_string : t -> string
val pp : Format.formatter -> t -> unit

val validate : t -> unit
(** Raises [Invalid_argument] on zero/negative/oversized integer widths. *)
