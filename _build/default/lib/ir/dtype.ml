type t =
  | Bool
  | Int of int
  | Uint of int
  | Float32
  | Float64

let width = function
  | Bool -> 1
  | Int w | Uint w -> w
  | Float32 -> 32
  | Float64 -> 64

let is_float = function
  | Float32 | Float64 -> true
  | Bool | Int _ | Uint _ -> false

let equal a b = a = b

let to_string = function
  | Bool -> "bool"
  | Int w -> Printf.sprintf "i%d" w
  | Uint w -> Printf.sprintf "u%d" w
  | Float32 -> "f32"
  | Float64 -> "f64"

let pp fmt t = Format.pp_print_string fmt (to_string t)

let validate = function
  | Bool | Float32 | Float64 -> ()
  | Int w | Uint w ->
    if w < 1 || w > 512 then invalid_arg "Dtype: integer width out of [1,512]"
