type cmp =
  | Lt
  | Le
  | Gt
  | Ge
  | Eq
  | Ne

type t =
  | Add
  | Sub
  | Mul
  | Div
  | Fadd
  | Fsub
  | Fmul
  | Fdiv
  | And_
  | Or_
  | Xor
  | Not
  | Shl
  | Shr
  | Icmp of cmp
  | Fcmp of cmp
  | Select
  | Min
  | Max
  | Abs
  | Log2
  | Concat
  | Slice of int * int

let arity = function
  | Not | Abs | Log2 | Slice _ -> 1
  | Add | Sub | Mul | Div | Fadd | Fsub | Fmul | Fdiv | And_ | Or_ | Xor | Shl
  | Shr | Icmp _ | Fcmp _ | Min | Max ->
    2
  | Select -> 3
  | Concat -> -1

let is_float = function
  | Fadd | Fsub | Fmul | Fdiv | Fcmp _ -> true
  | Add | Sub | Mul | Div | And_ | Or_ | Xor | Not | Shl | Shr | Icmp _
  | Select | Min | Max | Abs | Log2 | Concat | Slice _ ->
    false

let result_is_bool = function
  | Icmp _ | Fcmp _ -> true
  | Add | Sub | Mul | Div | Fadd | Fsub | Fmul | Fdiv | And_ | Or_ | Xor | Not
  | Shl | Shr | Select | Min | Max | Abs | Log2 | Concat | Slice _ ->
    false

let cmp_to_string = function
  | Lt -> "lt"
  | Le -> "le"
  | Gt -> "gt"
  | Ge -> "ge"
  | Eq -> "eq"
  | Ne -> "ne"

let to_string = function
  | Add -> "add"
  | Sub -> "sub"
  | Mul -> "mul"
  | Div -> "div"
  | Fadd -> "fadd"
  | Fsub -> "fsub"
  | Fmul -> "fmul"
  | Fdiv -> "fdiv"
  | And_ -> "and"
  | Or_ -> "or"
  | Xor -> "xor"
  | Not -> "not"
  | Shl -> "shl"
  | Shr -> "shr"
  | Icmp c -> "icmp_" ^ cmp_to_string c
  | Fcmp c -> "fcmp_" ^ cmp_to_string c
  | Select -> "select"
  | Min -> "min"
  | Max -> "max"
  | Abs -> "abs"
  | Log2 -> "log2"
  | Concat -> "concat"
  | Slice (hi, lo) -> Printf.sprintf "slice[%d:%d]" hi lo

let pp fmt t = Format.pp_print_string fmt (to_string t)
let equal a b = a = b
