lib/ir/transform.ml: Array Dag Printf
