lib/ir/op.ml: Format Printf
