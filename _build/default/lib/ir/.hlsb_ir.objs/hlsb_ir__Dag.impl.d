lib/ir/dag.ml: Array Dtype Format Hashtbl Hlsb_util Int64 List Op Option Printf String
