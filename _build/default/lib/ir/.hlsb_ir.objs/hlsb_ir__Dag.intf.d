lib/ir/dag.mli: Dtype Format Op
