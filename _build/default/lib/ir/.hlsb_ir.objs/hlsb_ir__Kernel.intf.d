lib/ir/kernel.mli: Dag
