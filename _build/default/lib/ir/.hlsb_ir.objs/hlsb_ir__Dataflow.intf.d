lib/ir/dataflow.mli: Dtype Kernel
