lib/ir/dataflow.ml: Array Dtype Hashtbl Hlsb_util Kernel List Printf String
