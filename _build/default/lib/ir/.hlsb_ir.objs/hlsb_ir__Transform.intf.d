lib/ir/transform.mli: Dag Dtype Op
