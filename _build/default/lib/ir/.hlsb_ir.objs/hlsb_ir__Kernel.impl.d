lib/ir/kernel.ml: Dag Dtype
