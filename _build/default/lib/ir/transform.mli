(** Front-end transforms that *create* the implicit broadcasts (§3.1): loop
    unrolling replicates the body around shared loop-invariant values;
    array partitioning multiplies the number of physical memories a data
    source must reach. *)

val unrolled :
  Dag.t -> factor:int -> (int -> unit) -> unit
(** [unrolled dag ~factor body] invokes [body j] for [j = 0 .. factor-1].
    Values the caller captured from outside become shared broadcast sources,
    exactly like [source] in Fig. 1. Raises [Invalid_argument] if
    [factor < 1]. This is deliberately just structured iteration — the
    broadcast arises from sharing, not from any special marker. *)

val partitioned_buffers :
  Dag.t ->
  name:string ->
  dtype:Dtype.t ->
  depth:int ->
  factor:int ->
  int array
(** Cyclic array partitioning: declares [factor] buffers of [depth/factor]
    words each (rounded up) and returns their ids. Mirrors
    [#pragma HLS array_partition cyclic factor=N]. *)

val load_partitioned :
  Dag.t -> buffers:int array -> index:Dag.node -> bank_of:int -> Dag.node
(** Access bank [bank_of] of a partitioned array at [index] (the in-bank
    index). Convenience over {!Dag.load}. *)

val store_partitioned :
  Dag.t ->
  buffers:int array ->
  index:Dag.node ->
  value:Dag.node ->
  bank_of:int ->
  Dag.node

val reduce_tree :
  Dag.t -> op:Op.t -> dtype:Dtype.t -> Dag.node list -> Dag.node
(** Balanced binary reduction (the adder tree HLS infers for dot products,
    Fig. 17). Raises [Invalid_argument] on the empty list. *)
