(** The operation DAG of one (pipelined) loop body after inlining and
    unrolling — the unit the HLS scheduler works on. Nodes are created in
    topological order (an argument must already exist), so node ids double
    as a topological order.

    Broadcast structure is implicit here exactly as in the paper: a node
    consumed by many later nodes (a loop-invariant value referenced by every
    unrolled body instance, a register feeding every BRAM unit of a large
    buffer) is a data broadcast even though nothing in the builder API says
    "broadcast". *)

type t
type node = int

type buffer = {
  b_name : string;
  b_dtype : Dtype.t;
  b_depth : int;  (** words *)
  b_partition : int;  (** cyclic partition factor; 1 = monolithic *)
}

type fifo = {
  f_name : string;
  f_dtype : Dtype.t;
  f_depth : int;
}

type kind =
  | Input of string
  | Const of int64
  | Operation of Op.t
  | Load of int  (** buffer id; args = [index] *)
  | Store of int  (** buffer id; args = [index; value] *)
  | Fifo_read of int  (** fifo id *)
  | Fifo_write of int  (** fifo id; args = [value] *)
  | Output of string  (** args = [value] *)

val create : unit -> t

(** {2 Declarations} *)

val add_buffer : t -> name:string -> dtype:Dtype.t -> depth:int -> partition:int -> int
val add_fifo : t -> name:string -> dtype:Dtype.t -> depth:int -> int

(** {2 Node constructors} *)

val input : t -> name:string -> dtype:Dtype.t -> node
val const : t -> dtype:Dtype.t -> int64 -> node
val op : t -> Op.t -> dtype:Dtype.t -> node list -> node
(** Raises [Invalid_argument] on arity mismatch or forward references. *)

val load : t -> buffer:int -> index:node -> node
val store : t -> buffer:int -> index:node -> value:node -> node
val fifo_read : t -> fifo:int -> node
val fifo_write : t -> fifo:int -> value:node -> node
val output : t -> name:string -> value:node -> node

(** {2 Accessors} *)

val n_nodes : t -> int
val kind : t -> node -> kind
val dtype : t -> node -> Dtype.t
val args : t -> node -> node list
val node_name : t -> node -> string
val buffers : t -> buffer array
val fifos : t -> fifo array
val buffer : t -> int -> buffer
val fifo : t -> int -> fifo

val consumers : t -> node -> node list
(** Nodes that read this node's value (deduplicated, ascending). *)

val broadcast_factor : t -> node -> int
(** Number of argument slots in which this node's value is read — the "how
    many times a variable is read by later instructions" count of §4.1.
    A [Store] to a partitioned/multi-BRAM buffer additionally multiplies
    the *value* operand's physical fanout; that physical effect is accounted
    for in netlist generation, not here. *)

val is_datapath : kind -> bool
(** True for nodes that synthesize combinational/sequential datapath logic
    (everything except [Input] and [Const]). *)

val iter : t -> (node -> unit) -> unit
(** In topological (= id) order. *)

val validate : t -> (unit, string) result
(** Structural checks: arities, arg ranges, buffer/fifo ids, dtype of
    comparison results, store value width matches buffer width. *)

val op_histogram : t -> (string * int) list
(** Operator name -> count, sorted by name; for reports. *)

val pp_node : t -> Format.formatter -> node -> unit
val pp : Format.formatter -> t -> unit
