module Device = Hlsb_device.Device
module Netlist = Hlsb_netlist.Netlist
module Timing = Hlsb_physical.Timing
module Design = Hlsb_rtlgen.Design
module Style = Hlsb_ctrl.Style
module Spec = Hlsb_designs.Spec

type result = {
  fr_label : string;
  fr_recipe : Style.recipe;
  fr_fmax_mhz : float;
  fr_critical_ns : float;
  fr_lut_pct : float;
  fr_ff_pct : float;
  fr_bram_pct : float;
  fr_dsp_pct : float;
  fr_design : Design.t;
  fr_timing : Timing.report;
}

let of_design name (design : Design.t) =
  let report = Timing.run design.Design.device design.Design.netlist in
  let lut, ff, bram, dsp =
    Netlist.utilization design.Design.netlist design.Design.device
  in
  {
    fr_label = name ^ " [" ^ Style.label design.Design.recipe ^ "]";
    fr_recipe = design.Design.recipe;
    fr_fmax_mhz = report.Timing.fmax_mhz;
    fr_critical_ns = report.Timing.critical_ns;
    fr_lut_pct = 100. *. lut;
    fr_ff_pct = 100. *. ff;
    fr_bram_pct = 100. *. bram;
    fr_dsp_pct = 100. *. dsp;
    fr_design = design;
    fr_timing = report;
  }

let compile ?target_mhz ~device ~recipe ~name df =
  of_design name (Design.generate ?target_mhz ~device ~recipe ~name df)

let compile_kernel ?target_mhz ~device ~recipe kernel =
  of_design kernel.Hlsb_ir.Kernel.name
    (Design.single_kernel ?target_mhz ~device ~recipe kernel)

let compile_spec ?target_mhz ~recipe (spec : Spec.t) =
  compile ?target_mhz ~device:spec.Spec.sp_device ~recipe
    ~name:spec.Spec.sp_name
    (spec.Spec.sp_build ())

let improvement_pct ~orig ~opt =
  100. *. ((opt.fr_fmax_mhz /. orig.fr_fmax_mhz) -. 1.)

let summary r =
  Printf.sprintf
    "%-40s %6.1f MHz  (%.2f ns)  LUT %5.1f%%  FF %5.1f%%  BRAM %5.1f%%  DSP %5.1f%%"
    r.fr_label r.fr_fmax_mhz r.fr_critical_ns r.fr_lut_pct r.fr_ff_pct
    r.fr_bram_pct r.fr_dsp_pct
