open Hlsb_ir
module Device = Hlsb_device.Device
module Netlist = Hlsb_netlist.Netlist

type source_broadcast = {
  b_kernel : string;
  b_node : int;
  b_what : string;
  b_reads : int;
}

type mem_broadcast = {
  m_kernel : string;
  m_buffer : string;
  m_units : int;
}

type report = {
  data_broadcasts : source_broadcast list;
  mem_broadcasts : mem_broadcast list;
  sync_domains : (int * int) list;
  pipeline_domains : (string * int) list;
}

(* Sequential elements a stall net must reach: a structural estimate from
   the IR (operator pipeline registers + memory units + interface FIFOs). *)
let stall_targets device (k : Kernel.t) =
  let dag = k.Kernel.dag in
  let count = ref 0 in
  Dag.iter dag (fun v ->
    match Dag.kind dag v with
    | Dag.Operation o ->
      count := !count + 1 + Hlsb_delay.Oplib.latency_cycles o (Dag.dtype dag v)
    | Dag.Fifo_read _ | Dag.Fifo_write _ | Dag.Input _ -> incr count
    | Dag.Load _ | Dag.Store _ | Dag.Const _ | Dag.Output _ -> ());
  Array.iter
    (fun (b : Dag.buffer) ->
      count :=
        !count
        + Device.bram18_for
            ~width:(Dtype.width b.Dag.b_dtype)
            ~depth:b.Dag.b_depth)
    (Dag.buffers dag);
  ignore device;
  !count

let analyze ?(threshold = 8) ~device (df : Dataflow.t) =
  let data = ref [] and mem = ref [] and pipe = ref [] in
  Array.iter
    (fun (p : Dataflow.process) ->
      match p.Dataflow.p_kernel with
      | None -> ()
      | Some k ->
        let dag = k.Kernel.dag in
        Dag.iter dag (fun v ->
          let reads = Dag.broadcast_factor dag v in
          if reads >= threshold then
            data :=
              {
                b_kernel = k.Kernel.name;
                b_node = v;
                b_what = Dag.node_name dag v;
                b_reads = reads;
              }
              :: !data);
        Array.iter
          (fun (b : Dag.buffer) ->
            let units =
              Device.bram18_for
                ~width:(Dtype.width b.Dag.b_dtype)
                ~depth:b.Dag.b_depth
            in
            if units >= threshold then
              mem :=
                { m_kernel = k.Kernel.name; m_buffer = b.Dag.b_name; m_units = units }
                :: !mem)
          (Dag.buffers dag);
        pipe := (k.Kernel.name, stall_targets device k) :: !pipe)
    (Dataflow.processes df);
  let sync =
    List.map
      (fun group ->
        let n = List.length group in
        (n, 2 * n))
      (Dataflow.sync_groups df)
  in
  {
    data_broadcasts =
      List.sort (fun a b -> compare b.b_reads a.b_reads) !data;
    mem_broadcasts = List.sort (fun a b -> compare b.m_units a.m_units) !mem;
    sync_domains = sync;
    pipeline_domains = List.rev !pipe;
  }

let netlist_summary nl =
  let classes =
    [ Netlist.Data; Netlist.Data_broadcast; Netlist.Ctrl_sync; Netlist.Ctrl_pipeline ]
  in
  List.map
    (fun cls ->
      let count = ref 0 and max_fo = ref 0 in
      Netlist.iter_nets nl (fun _ n ->
        if n.Netlist.n_class = cls then begin
          incr count;
          max_fo := max !max_fo (Array.length n.Netlist.n_sinks)
        end);
      (cls, !count, !max_fo))
    classes

let to_string r =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "Broadcast classification (paper section 3):\n";
  Buffer.add_string buf
    (Printf.sprintf "  data broadcasts (>= threshold reads): %d\n"
       (List.length r.data_broadcasts));
  List.iteri
    (fun i b ->
      if i < 8 then
        Buffer.add_string buf
          (Printf.sprintf "    %s.%s (node %d): %d readers\n" b.b_kernel
             b.b_what b.b_node b.b_reads))
    r.data_broadcasts;
  Buffer.add_string buf
    (Printf.sprintf "  multi-unit memories: %d\n" (List.length r.mem_broadcasts));
  List.iteri
    (fun i m ->
      if i < 8 then
        Buffer.add_string buf
          (Printf.sprintf "    %s.%s: %d BRAM units\n" m.m_kernel m.m_buffer
             m.m_units))
    r.mem_broadcasts;
  Buffer.add_string buf
    (Printf.sprintf "  sync domains: %s\n"
       (String.concat ", "
          (List.map
             (fun (n, fo) -> Printf.sprintf "%d members (fanout %d)" n fo)
             r.sync_domains)));
  Buffer.add_string buf "  pipeline control domains (stall-net sinks):\n";
  List.iter
    (fun (k, n) -> Buffer.add_string buf (Printf.sprintf "    %s: %d\n" k n))
    r.pipeline_domains;
  Buffer.contents buf
