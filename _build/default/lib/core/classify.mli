(** Broadcast classification (the paper's contribution #2): given a design,
    report every timing-relevant broadcast structure it contains, sorted
    into the paper's taxonomy — data broadcasts (§3.1), synchronization
    broadcasts (§3.2) and pipeline-control broadcasts (§3.3) — before any
    netlist is generated (source-level, from the IR) and after (netlist
    nets by class). *)

open Hlsb_ir

type source_broadcast = {
  b_kernel : string;
  b_node : int;
  b_what : string;  (** producer description *)
  b_reads : int;  (** how many instructions read the value *)
}

type mem_broadcast = {
  m_kernel : string;
  m_buffer : string;
  m_units : int;  (** physical BRAM units the access fans out to *)
}

type report = {
  data_broadcasts : source_broadcast list;  (** reads >= threshold, desc *)
  mem_broadcasts : mem_broadcast list;
  sync_domains : (int * int) list;
      (** per sync group: (members, reduce+broadcast fanout) *)
  pipeline_domains : (string * int) list;
      (** per kernel: sequential elements a stall net would have to reach *)
}

val analyze : ?threshold:int -> device:Hlsb_device.Device.t -> Dataflow.t -> report
(** [threshold] is the minimum read count to call something a broadcast
    (default 8). *)

val netlist_summary :
  Hlsb_netlist.Netlist.t -> (Hlsb_netlist.Netlist.net_class * int * int) list
(** Per class: (class, net count, max fanout). *)

val to_string : report -> string
