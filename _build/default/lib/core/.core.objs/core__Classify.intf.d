lib/core/classify.mli: Dataflow Hlsb_device Hlsb_ir Hlsb_netlist
