lib/core/flow.ml: Hlsb_ctrl Hlsb_designs Hlsb_device Hlsb_ir Hlsb_netlist Hlsb_physical Hlsb_rtlgen Printf
