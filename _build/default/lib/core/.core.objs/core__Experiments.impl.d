lib/core/experiments.ml: Array Buffer Dtype Flow Hlsb_ctrl Hlsb_delay Hlsb_designs Hlsb_device Hlsb_ir Hlsb_physical Hlsb_rtlgen Hlsb_sched Hlsb_util Kernel List Op Printf String
