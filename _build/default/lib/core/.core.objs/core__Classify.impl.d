lib/core/classify.ml: Array Buffer Dag Dataflow Dtype Hlsb_delay Hlsb_device Hlsb_ir Hlsb_netlist Kernel List Printf String
