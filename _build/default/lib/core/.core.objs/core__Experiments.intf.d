lib/core/experiments.mli: Flow Hlsb_delay Hlsb_designs Hlsb_device
