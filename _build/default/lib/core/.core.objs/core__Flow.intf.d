lib/core/flow.mli: Hlsb_ctrl Hlsb_designs Hlsb_device Hlsb_ir Hlsb_physical Hlsb_rtlgen
