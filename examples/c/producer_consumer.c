// A producer loop filling an intermediate array that the next loop
// drains — the PPN-style pattern the stream-insertion transform targets:
//   dune exec bin/hlsbc.exe -- cc examples/c/producer_consumer.c \
//     --transform 'stream=tmp' --dump-after transform
// turns tmp into a FIFO, so the two loops communicate element by element
// instead of through a shared memory.
void pc(stream<int> &in_fifo, stream<int> &out_fifo) {
  int tmp[64];
  for (int i = 0; i < 64; i++) {
    tmp[i] = in_fifo.read() * 3;
  }
  for (int i = 0; i < 64; i++) {
    out_fifo.write(tmp[i] + 1);
  }
}
