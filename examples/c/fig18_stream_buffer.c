// The paper's Figure 18: write a very large buffer, then read it back.
// Both the data broadcast (source register -> every BRAM unit) and the
// pipeline-control broadcast (enable -> every unit) live here.
void stream_buffer(stream<long> &in_fifo, stream<long> &out_fifo) {
  long buffer[131072];
  for (int i = 0; i < 131072; i++) {
#pragma HLS pipeline
    buffer[i] = in_fifo.read();
  }
  for (int i = 0; i < 131072; i++) {
#pragma HLS pipeline
    out_fifo.write(buffer[i]);
  }
}
