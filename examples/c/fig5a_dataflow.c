// The paper's Figure 5a: two independent streaming flows written in one
// dataflow region; the front end synchronizes them every iteration.
void flow_a(stream<int> &inA, stream<int> &outA1, stream<int> &outA2) {
  for (int i = 0; i < 1024; i++) {
#pragma HLS pipeline
    int a = inA.read();
    outA1.write(a >> 16);
    outA2.write(a & 65535);
  }
}

void flow_b(stream<int> &inB, stream<int> &outB1, stream<int> &outB2) {
  for (int i = 0; i < 1024; i++) {
#pragma HLS pipeline
    int b = inB.read();
    outB1.write(b >> 16);
    outB2.write(b & 65535);
  }
}

void top(stream<int> &inA, stream<int> &inB,
         stream<int> &outA1, stream<int> &outA2,
         stream<int> &outB1, stream<int> &outB2) {
#pragma HLS dataflow
  flow_a(inA, outA1, outA2);
  flow_b(inB, outB1, outB2);
}
