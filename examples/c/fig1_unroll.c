// The paper's Figure 1: a loop-invariant value broadcast to every unrolled
// body instance. Compile with:
//   dune exec bin/hlsbc.exe -- cc examples/c/fig1_unroll.c -r original
//   dune exec bin/hlsbc.exe -- cc examples/c/fig1_unroll.c -r optimized
void fig1(stream<int> &in_fifo, stream<int> &out_fifo,
          int foo[1024], int bar[1024]) {
  int source = in_fifo.read();
  int a[128];
  int b[128];
  for (int i = 0; i < 128; i++) {
#pragma HLS unroll
    a[i] = source + foo[i];
    b[i] = a[i] - bar[i];
  }
  int acc = 0;
  for (int i = 0; i < 128; i++) {
#pragma HLS unroll
    acc = acc + b[i];
  }
  out_fifo.write(acc);
}
