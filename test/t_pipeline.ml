(* Staged pipeline tests: the staged session API must be byte-identical
   to the legacy [Flow] wrappers on every Table-1 benchmark under both
   recipes, cross-recipe sessions must actually share upstream artifacts
   (one elaboration, schedule reuse per sched mode), cached-artifact
   reuse must never change a timing report, and malformed inputs must
   surface as structured diagnostics — never as a bare
   [Invalid_argument]/[Failure] escaping [Pipeline.run]. *)

open Hlsb_ir
module Flow = Core.Flow
module Pipeline = Core.Pipeline
module Style = Hlsb_ctrl.Style
module Device = Hlsb_device.Device
module Design = Hlsb_rtlgen.Design
module Netlist = Hlsb_netlist.Netlist
module Timing = Hlsb_physical.Timing
module Diag = Hlsb_util.Diag
module Spec = Hlsb_designs.Spec

let contains_sub ~sub s =
  let n = String.length s and m = String.length sub in
  let rec at i = i + m <= n && (String.sub s i m = sub || at (i + 1)) in
  at 0

(* Everything a compile produces that a caller could observe: the result
   record's scalars, per-kernel info, sync-controller stats, netlist
   size, and the full critical path. Two results with equal fingerprints
   went through indistinguishable compiles. *)
let fingerprint (r : Flow.result) =
  ( r.Flow.fr_label,
    Style.label r.Flow.fr_recipe,
    ( r.Flow.fr_fmax_mhz,
      r.Flow.fr_critical_ns,
      r.Flow.fr_lut_pct,
      r.Flow.fr_ff_pct,
      r.Flow.fr_bram_pct,
      r.Flow.fr_dsp_pct ),
    List.map
      (fun (k : Design.kernel_info) ->
        (k.Design.ki_name, k.ki_depth, k.ki_registers_added, k.ki_skid_bits))
      r.Flow.fr_design.Design.kernels,
    ( r.Flow.fr_design.Design.sync_groups_emitted,
      r.Flow.fr_design.Design.max_sync_fanout ),
    ( Netlist.n_cells r.Flow.fr_design.Design.netlist,
      Netlist.n_nets r.Flow.fr_design.Design.netlist ),
    ( r.Flow.fr_timing.Timing.worst_net_fanout,
      List.map
        (fun (st : Timing.path_step) ->
          (st.Timing.ps_cell_name, st.Timing.ps_arrival))
        r.Flow.fr_timing.Timing.path ) )

(* The acceptance criterion: for every Table-1 spec and both recipes,
   one shared staged session computes exactly what two legacy
   [Flow.compile_spec] calls compute. *)
let test_staged_equals_legacy () =
  List.iter
    (fun (s : Spec.t) ->
      let session = Pipeline.of_spec s in
      List.iter
        (fun recipe ->
          let staged = Pipeline.run_exn session ~recipe in
          let legacy = Flow.compile_spec ~recipe s in
          Alcotest.(check bool)
            (Printf.sprintf "%s [%s] staged = legacy" s.Spec.sp_name
               (Style.label recipe))
            true
            (fingerprint staged = fingerprint legacy))
        [ Style.original; Style.optimized ])
    Hlsb_designs.Suite.all

let runs_of session name =
  Option.value ~default:0 (List.assoc_opt name (Pipeline.stage_runs session))

(* Two recipes in one session -> one elaboration; a recipe pair sharing
   a sched mode -> one scheduling pass; recompiling a recipe -> nothing
   at all re-executes. *)
let test_session_shares_stages () =
  let s = Option.get (Hlsb_designs.Suite.find "Vector Arithmetic") in
  let session = Pipeline.of_spec s in
  ignore (Pipeline.run_exn session ~recipe:Style.original);
  ignore (Pipeline.run_exn session ~recipe:Style.optimized);
  Alcotest.(check int) "one elaboration for two recipes" 1
    (runs_of session "elaborate");
  Alcotest.(check int) "two schedules (hls vs aware)" 2
    (runs_of session "schedule");
  Alcotest.(check int) "two lowers" 2 (runs_of session "lower");
  Alcotest.(check int) "two stas" 2 (runs_of session "sta");
  (* sched-only shares Sched_aware scheduling with optimized *)
  let sched_only =
    { Style.sched = Style.Sched_aware; pipe = Style.Stall; sync = Style.Sync_naive }
  in
  ignore (Pipeline.run_exn session ~recipe:sched_only);
  Alcotest.(check int) "aware schedule reused across recipes" 2
    (runs_of session "schedule");
  Alcotest.(check int) "still one elaboration" 1 (runs_of session "elaborate");
  (* a recipe already compiled is served entirely from cache *)
  let before = List.fold_left (fun a (_, n) -> a + n) 0 (Pipeline.stage_runs session) in
  let again = Pipeline.run_exn session ~recipe:Style.optimized in
  let after = List.fold_left (fun a (_, n) -> a + n) 0 (Pipeline.stage_runs session) in
  Alcotest.(check int) "full cache hit runs nothing" before after;
  let fresh = Flow.compile_spec ~recipe:Style.optimized s in
  Alcotest.(check bool) "cached result still equals legacy" true
    (fingerprint again = fingerprint fresh);
  (* the cached run is visible in last_run as Cached stages *)
  let cached_stages =
    List.filter
      (fun (sr : Pipeline.stage_record) -> sr.Pipeline.sr_status = Pipeline.Cached)
      (Pipeline.last_run session)
  in
  Alcotest.(check bool) "last_run reports cached stages" true
    (List.length cached_stages >= 4)

(* qcheck: whatever order recipes are compiled in, and however often
   they repeat, a shared session's cached-artifact reuse never changes
   any timing report relative to a fresh single-use session. *)
let recipe_pool =
  [|
    Style.original;
    Style.optimized;
    { Style.sched = Style.Sched_aware; pipe = Style.Stall; sync = Style.Sync_naive };
    {
      Style.sched = Style.Sched_hls;
      pipe = Style.Skid { min_area = true };
      sync = Style.Sync_pruned;
    };
  |]

let small_session () =
  Pipeline.create ~device:Device.ultrascale_plus ~name:"va_small"
    ~build:(fun () -> Hlsb_designs.Vector_arith.dataflow ~width:64 ~pes:2 ())
    ()

let prop_cached_reuse_stable =
  QCheck.Test.make ~count:8
    ~name:"cached-artifact reuse never changes the timing report"
    QCheck.(list_of_size (Gen.int_range 1 6) (int_bound 3))
    (fun idxs ->
      let shared = small_session () in
      List.for_all
        (fun i ->
          let recipe = recipe_pool.(i) in
          let via_shared = Pipeline.run_exn shared ~recipe in
          let via_fresh = Pipeline.run_exn (small_session ()) ~recipe in
          fingerprint via_shared = fingerprint via_fresh)
        idxs)

(* ---- structured diagnostics ---- *)

let orphan_process_df () =
  let df = Dataflow.create () in
  ignore (Dataflow.add_process df ~name:"orphan" ());
  df

(* A writer kernel whose FIFO interface name does not match the channel
   name: the lower stage cannot wire the channel into the reader. *)
let fifo_mismatch_df () =
  let writer =
    let dag = Dag.create () in
    let fin = Dag.add_fifo dag ~name:"w_in" ~dtype:(Dtype.Int 32) ~depth:8 in
    let fout = Dag.add_fifo dag ~name:"c_data" ~dtype:(Dtype.Int 32) ~depth:8 in
    let x = Dag.fifo_read dag ~fifo:fin in
    ignore (Dag.fifo_write dag ~fifo:fout ~value:x);
    Kernel.create ~name:"writer" dag
  in
  let reader =
    let dag = Dag.create () in
    (* reads "r_in", not "c_data": the channel has no read-side FIFO *)
    let fin = Dag.add_fifo dag ~name:"r_in" ~dtype:(Dtype.Int 32) ~depth:8 in
    let fout = Dag.add_fifo dag ~name:"r_out" ~dtype:(Dtype.Int 32) ~depth:8 in
    let x = Dag.fifo_read dag ~fifo:fin in
    ignore (Dag.fifo_write dag ~fifo:fout ~value:x);
    Kernel.create ~name:"reader" dag
  in
  let df = Dataflow.create () in
  let pw = Dataflow.add_process df ~name:"writer" ~kernel:writer () in
  let pr = Dataflow.add_process df ~name:"reader" ~kernel:reader () in
  ignore
    (Dataflow.add_channel df ~name:"c_data" ~src:pw ~dst:pr
       ~dtype:(Dtype.Int 32) ());
  df

let run_small df recipe =
  let session =
    Pipeline.create ~device:Device.ultrascale_plus ~name:"bad"
      ~build:(fun () -> df)
      ()
  in
  Pipeline.run session ~recipe

let test_diagnostic_validate () =
  match run_small (orphan_process_df ()) Style.original with
  | Ok _ -> Alcotest.fail "orphan-process design compiled"
  | Error d ->
    Alcotest.(check string) "stage" "elaborate" d.Diag.d_stage;
    (match d.Diag.d_entity with
    | Some (Diag.Process p) -> Alcotest.(check string) "entity" "orphan" p
    | _ -> Alcotest.fail "expected a Process entity");
    Alcotest.(check bool) "message mentions the problem" true
      (contains_sub ~sub:"no channels" d.Diag.d_message)

let test_diagnostic_fifo_mismatch () =
  match run_small (fifo_mismatch_df ()) Style.optimized with
  | Ok _ -> Alcotest.fail "FIFO-mismatched design compiled"
  | Error d ->
    Alcotest.(check string) "stage" "lower" d.Diag.d_stage;
    (match d.Diag.d_entity with
    | Some (Diag.Channel c) -> Alcotest.(check string) "entity" "c_data" c
    | _ -> Alcotest.fail "expected a Channel entity");
    Alcotest.(check bool) "message names the kernel" true
      (contains_sub ~sub:"reader" d.Diag.d_message);
    Alcotest.(check bool) "message names the channel" true
      (contains_sub ~sub:"c_data" d.Diag.d_message)

(* The legacy wrappers now propagate the structured diagnostic instead
   of flattening it into an [Invalid_argument] string: the stage and
   offending entity must survive [Flow.compile]/[Design.generate], which
   is what lets the compile daemon return machine-readable errors. *)
let test_legacy_still_raises () =
  let expect_diag name ~stage df =
    match
      Flow.compile ~device:Device.ultrascale_plus ~recipe:Style.original ~name df
    with
    | _ -> Alcotest.fail (name ^ ": expected Diag.Diagnostic")
    | exception Diag.Diagnostic d ->
      Alcotest.(check string) (name ^ " stage") stage d.Diag.d_stage;
      Alcotest.(check bool) (name ^ " entity carried") true
        (d.Diag.d_entity <> None)
  in
  expect_diag "orphan" ~stage:"elaborate" (orphan_process_df ());
  expect_diag "fifo-mismatch" ~stage:"lower" (fifo_mismatch_df ())

(* Dumps and explain render for every stage without touching disk. *)
let test_dump_and_explain () =
  let session = small_session () in
  List.iter
    (fun stage ->
      match Pipeline.dump_after session ~recipe:Style.optimized stage with
      | Error d -> Alcotest.fail (Diag.to_string d)
      | Ok text ->
        Alcotest.(check bool)
          (Pipeline.stage_name stage ^ " dump non-empty")
          true
          (String.length text > 0))
    Pipeline.stages;
  let explain = Pipeline.explain session in
  List.iter
    (fun stage ->
      Alcotest.(check bool)
        (Pipeline.stage_name stage ^ " in explain")
        true
        (contains_sub ~sub:(Pipeline.stage_name stage) explain))
    Pipeline.stages;
  (* a failing session's explain carries the diagnostic *)
  let bad =
    Pipeline.create ~device:Device.ultrascale_plus ~name:"bad"
      ~build:(fun () -> orphan_process_df ())
      ()
  in
  (match Pipeline.run bad ~recipe:Style.original with
  | Ok _ -> Alcotest.fail "expected failure"
  | Error _ -> ());
  Alcotest.(check bool) "session retains the diagnostic" true
    (List.length (Pipeline.diagnostics bad) >= 1);
  Alcotest.(check bool) "failed stage visible in explain" true
    (contains_sub ~sub:"FAILED" (Pipeline.explain bad))

let suite =
  [
    Alcotest.test_case "session shares stages" `Quick test_session_shares_stages;
    Alcotest.test_case "diagnostic: dangling process" `Quick
      test_diagnostic_validate;
    Alcotest.test_case "diagnostic: FIFO mismatch names kernel+channel" `Quick
      test_diagnostic_fifo_mismatch;
    Alcotest.test_case "legacy Flow still raises Invalid_argument" `Quick
      test_legacy_still_raises;
    Alcotest.test_case "dump-after + explain render" `Quick
      test_dump_and_explain;
    Alcotest.test_case "staged = legacy on all Table-1 specs" `Slow
      test_staged_equals_legacy;
    QCheck_alcotest.to_alcotest prop_cached_reuse_stable;
  ]
