(* Observability subsystem tests: histogram quantile estimation,
   Prometheus exposition shape, structured-log filtering and JSONL
   record shape, ledger codec round-trips and append/load (including
   concurrent writers racing on one file), run references, and the
   perf-regression verdict in both directions. *)

module Json = Hlsb_telemetry.Json
module Metrics = Hlsb_telemetry.Metrics
module Log = Hlsb_obs.Log
module Ledger = Hlsb_obs.Ledger
module Prom = Hlsb_obs.Prom
module Report = Hlsb_obs.Report
module Pool = Hlsb_util.Pool

let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

let with_registry f =
  let m = Metrics.create () in
  Metrics.with_registry m f;
  m

(* ---- Metrics.quantile ---- *)

let test_quantile_uniform () =
  (* 100 samples 1..100 over decade buckets: samples are uniform inside
     every bucket, so linear interpolation is exact. *)
  let buckets = Array.init 10 (fun i -> 10. *. float_of_int (i + 1)) in
  let m =
    with_registry (fun () ->
      for v = 1 to 100 do
        Metrics.observe ~buckets "u" (float_of_int v)
      done)
  in
  let h = List.assoc "u" (Metrics.snapshot m).Metrics.sn_hists in
  Alcotest.(check (float 1e-9)) "p50" 50. (Metrics.quantile h 0.50);
  Alcotest.(check (float 1e-9)) "p95" 95. (Metrics.quantile h 0.95);
  Alcotest.(check (float 1e-9)) "p99" 99. (Metrics.quantile h 0.99);
  Alcotest.(check (float 0.)) "p<=0 is min" 1. (Metrics.quantile h 0.);
  Alcotest.(check (float 0.)) "p>=1 is max" 100. (Metrics.quantile h 1.)

let test_quantile_overflow_bucket () =
  (* Samples 5, 15, 20 with a single bucket edge at 10: ranks above the
     edge land in the overflow bucket, whose upper edge clamps to
     hs_max. p=0.9 -> target rank 2.7, 1.7 of the overflow bucket's 2
     samples: 10 + 0.85 * (20 - 10) = 18.5. *)
  let m =
    with_registry (fun () ->
      List.iter (Metrics.observe ~buckets:[| 10. |] "o") [ 5.; 15.; 20. ])
  in
  let h = List.assoc "o" (Metrics.snapshot m).Metrics.sn_hists in
  Alcotest.(check (float 1e-9)) "p90 in overflow bucket" 18.5
    (Metrics.quantile h 0.9);
  Alcotest.(check (float 0.)) "p100 clamps to observed max" 20.
    (Metrics.quantile h 1.0);
  Alcotest.(check (float 0.)) "p0 clamps to observed min" 5.
    (Metrics.quantile h 0.)

let test_quantile_degenerate () =
  let empty =
    {
      Metrics.hs_buckets = [| 1. |];
      hs_counts = [| 0; 0 |];
      hs_count = 0;
      hs_sum = 0.;
      hs_min = nan;
      hs_max = nan;
    }
  in
  Alcotest.(check bool) "empty is nan" true
    (Float.is_nan (Metrics.quantile empty 0.5));
  let m = with_registry (fun () -> Metrics.observe ~buckets:[| 8. |] "s" 3.) in
  let h = List.assoc "s" (Metrics.snapshot m).Metrics.sn_hists in
  Alcotest.(check bool) "nan p is nan" true
    (Float.is_nan (Metrics.quantile h nan));
  (* single sample: every quantile collapses to it via the min/max clamp *)
  Alcotest.(check (float 0.)) "single sample p50" 3. (Metrics.quantile h 0.5)

(* ---- Prometheus exposition ---- *)

let test_prom_exposition () =
  let m =
    with_registry (fun () ->
      Metrics.incr ~by:3 "sched.registers_inserted";
      Metrics.set_gauge "flow.fmax-mhz" 2.5;
      List.iter (Metrics.observe ~buckets:[| 1.; 2. |] "h.ms") [ 0.5; 1.5; 5. ])
  in
  let text = Prom.of_snapshot (Metrics.snapshot m) in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("exposition has " ^ needle) true
        (contains ~needle text))
    [
      "# TYPE hlsb_sched_registers_inserted counter";
      "hlsb_sched_registers_inserted 3";
      "# TYPE hlsb_flow_fmax_mhz gauge";
      "hlsb_flow_fmax_mhz 2.5";
      "# TYPE hlsb_h_ms histogram";
      "hlsb_h_ms_bucket{le=\"1\"} 1";
      "hlsb_h_ms_bucket{le=\"2\"} 2";
      "hlsb_h_ms_bucket{le=\"+Inf\"} 3";
      "hlsb_h_ms_count 3";
    ];
  Alcotest.(check string) "name sanitization" "hlsb_a_b_c"
    (Prom.metric_name "a.b-c")

(* ---- Log ---- *)

(* Tests drive the log through an in-memory sink; always restore the
   stderr sink and the default threshold, also on failure. *)
let with_captured_log f =
  let lines = ref [] in
  Log.set_sink (fun l -> lines := l :: !lines);
  let prev = Log.current_level () in
  Fun.protect
    ~finally:(fun () ->
      Log.reset_sink ();
      Log.set_level prev;
      Log.set_format Log.Text)
    (fun () -> f lines)

let test_log_filtering () =
  with_captured_log (fun lines ->
    Log.set_format Log.Text;
    Log.set_level Log.Warn;
    Log.debug "dropped %d" 1;
    Log.info "dropped too";
    Log.warn "kept %s" "w";
    Log.error "kept e";
    Alcotest.(check int) "below threshold dropped" 2 (List.length !lines);
    Alcotest.(check bool) "text record shape" true
      (contains ~needle:"hlsb warn" (List.nth !lines 1)
      && contains ~needle:"kept w" (List.nth !lines 1));
    Alcotest.(check bool) "would_log above" true (Log.would_log Log.Error);
    Alcotest.(check bool) "would_log below" false (Log.would_log Log.Info);
    Log.set_level Log.Off;
    Log.error "never";
    Alcotest.(check int) "off drops errors" 2 (List.length !lines);
    Log.set_level Log.Debug;
    Log.debug "now";
    Alcotest.(check int) "debug passes at debug" 3 (List.length !lines))

let test_log_jsonl_shape () =
  with_captured_log (fun lines ->
    Log.set_level Log.Info;
    Log.set_format Log.Jsonl;
    Log.info ~attrs:[ ("stage", Json.Str "sta") ] "stage %s done" "sta";
    match !lines with
    | [ line ] -> (
      match Json.of_string line with
      | Error e -> Alcotest.fail e
      | Ok j ->
        Alcotest.(check bool) "level" true
          (Json.member "level" j = Some (Json.Str "info"));
        Alcotest.(check bool) "formatted msg" true
          (Json.member "msg" j = Some (Json.Str "stage sta done"));
        Alcotest.(check bool) "attr merged" true
          (Json.member "stage" j = Some (Json.Str "sta"));
        Alcotest.(check bool) "ts float" true
          (match Json.member "ts" j with Some (Json.Float _) -> true | _ -> false);
        Alcotest.(check bool) "tid int" true
          (match Json.member "tid" j with Some (Json.Int _) -> true | _ -> false);
        Alcotest.(check bool) "no open span" true
          (Json.member "span" j = Some Json.Null))
    | l -> Alcotest.fail (Printf.sprintf "%d records" (List.length l)))

let test_log_parse_spec () =
  Alcotest.(check bool) "level and format" true
    (Log.parse_spec "debug,json" = Ok (Some Log.Debug, Some Log.Jsonl));
  Alcotest.(check bool) "format alone" true
    (Log.parse_spec "json" = Ok (None, Some Log.Jsonl));
  Alcotest.(check bool) "level alone" true
    (Log.parse_spec "error" = Ok (Some Log.Error, None));
  Alcotest.(check bool) "empty spec" true (Log.parse_spec "" = Ok (None, None));
  match Log.parse_spec "verbose" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown level accepted"

(* ---- Ledger ---- *)

let sample_run ?(cmd = "compile") ?(label = "t") ?(ms = 10.) () =
  Ledger.make ~git_rev:(Some "deadbeef") ~device:"xcvu9p" ~fingerprint:"fp"
    ~recipe:"aware/skid-min/pruned"
    ~stages:
      [
        { Ledger.st_name = "schedule"; st_status = "ran"; st_ms = ms };
        { Ledger.st_name = "classify"; st_status = "skipped"; st_ms = 0. };
      ]
    ~results:
      [
        Json.Obj
          [ ("label", Json.Str "d [opt]"); ("fmax_mhz", Json.Float 400.) ];
      ]
    ~cache:[ ("pipeline.cache_hits", 3) ]
    ~metrics:(Json.Obj [ ("counters", Json.Obj [ ("c", Json.Int 1) ]) ])
    ~cmd ~label ()

let test_ledger_codec_roundtrip () =
  let r = sample_run () in
  (match Ledger.of_json (Ledger.to_json r) with
  | Error e -> Alcotest.fail e
  | Ok r' ->
    Alcotest.(check string) "id" r.Ledger.r_id r'.Ledger.r_id;
    Alcotest.(check string) "cmd" "compile" r'.Ledger.r_cmd;
    Alcotest.(check bool) "git rev" true (r'.Ledger.r_git_rev = Some "deadbeef");
    Alcotest.(check bool) "recipe" true
      (r'.Ledger.r_recipe = Some "aware/skid-min/pruned");
    Alcotest.(check int) "stages" 2 (List.length r'.Ledger.r_stages);
    Alcotest.(check (float 1e-9)) "total counts only ran stages" 10.
      (Ledger.total_ms r');
    Alcotest.(check bool) "fmax accessor" true
      (Ledger.result_fmax (List.hd r'.Ledger.r_results) = Some 400.);
    Alcotest.(check bool) "cache counters" true
      (r'.Ledger.r_cache = [ ("pipeline.cache_hits", 3) ]);
    Alcotest.(check bool) "metrics payload" true (r'.Ledger.r_metrics <> None));
  match Ledger.of_json (Json.Obj [ ("schema", Json.Str "hlsb-run/999") ]) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "wrong schema accepted"

let tmp_ledger () =
  let path = Filename.temp_file "hlsb_ledger" ".jsonl" in
  Sys.remove path;
  path

let with_tmp_ledger f =
  let path = tmp_ledger () in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let test_ledger_append_load () =
  with_tmp_ledger (fun path ->
    (match Ledger.load ~path with
    | Ok [] -> ()
    | _ -> Alcotest.fail "missing file should load as empty");
    List.iter
      (fun label ->
        match Ledger.append ~path (sample_run ~label ()) with
        | Ok _ -> ()
        | Error e -> Alcotest.fail e)
      [ "a"; "b" ];
    (* a torn line (crashed writer) is skipped, never fatal *)
    let oc = open_out_gen [ Open_append ] 0o644 path in
    output_string oc "{\"schema\":\"hlsb-run/1\",\"id\":\"torn";
    close_out oc;
    match Ledger.load ~path with
    | Ok [ ra; rb ] ->
      Alcotest.(check string) "oldest first" "a" ra.Ledger.r_label;
      Alcotest.(check string) "newest last" "b" rb.Ledger.r_label
    | Ok l -> Alcotest.fail (Printf.sprintf "got %d records" (List.length l))
    | Error e -> Alcotest.fail e)

let test_ledger_concurrent_append () =
  (* 100 appends racing from 4 pool worker domains: every record must
     come back whole — no torn or interleaved lines. *)
  with_tmp_ledger (fun path ->
    Pool.iter ~jobs:4
      (fun i ->
        match Ledger.append ~path (sample_run ~label:(string_of_int i) ()) with
        | Ok _ -> ()
        | Error e -> failwith e)
      (Array.init 100 Fun.id);
    match Ledger.load ~path with
    | Error e -> Alcotest.fail e
    | Ok runs ->
      Alcotest.(check int) "all records intact" 100 (List.length runs);
      let labels =
        List.sort_uniq compare (List.map (fun r -> r.Ledger.r_label) runs)
      in
      Alcotest.(check int) "every append distinct" 100 (List.length labels))

let test_ledger_resolve () =
  let named id label = { (sample_run ~label ()) with Ledger.r_id = id } in
  let runs =
    [ named "run-aa" "a"; named "run-ab" "b"; named "other-x" "c" ]
  in
  let label_of = function
    | Ok r -> r.Ledger.r_label
    | Error e -> Alcotest.fail e
  in
  Alcotest.(check string) "last" "c" (label_of (Ledger.resolve runs "last"));
  Alcotest.(check string) "1-based from oldest" "a"
    (label_of (Ledger.resolve runs "1"));
  Alcotest.(check string) "negative from newest" "b"
    (label_of (Ledger.resolve runs "-2"));
  Alcotest.(check string) "last~0 is last" "c"
    (label_of (Ledger.resolve runs "last~0"));
  Alcotest.(check string) "last~1 steps back" "b"
    (label_of (Ledger.resolve runs "last~1"));
  (match Ledger.resolve runs "last~3" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "out-of-range last~N accepted");
  Alcotest.(check string) "unique id prefix" "c"
    (label_of (Ledger.resolve runs "other"));
  (match Ledger.resolve runs "run-a" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "ambiguous prefix accepted");
  (match Ledger.resolve runs "99" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "out-of-range index accepted");
  match Ledger.resolve [] "last" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "empty ledger resolved"

(* ---- Report.regress ---- *)

let stage n ms = { Ledger.st_name = n; st_status = "ran"; st_ms = ms }

let run_with ?(fmax = 400.) stages =
  {
    (sample_run ()) with
    Ledger.r_stages = stages;
    r_results =
      [ Json.Obj [ ("label", Json.Str "d"); ("fmax_mhz", Json.Float fmax) ] ];
  }

let test_regress_verdicts () =
  let base = run_with [ stage "schedule" 100.; stage "place" 50.; stage "tiny" 0.4 ] in
  let near = run_with [ stage "schedule" 104.; stage "place" 51.; stage "tiny" 4. ] in
  let v = Report.regress ~baseline:base ~current:near ~max_slowdown_pct:25. () in
  Alcotest.(check bool) "within threshold passes" true v.Report.v_ok;
  Alcotest.(check bool) "table renders every stage" true
    (contains ~needle:"schedule" v.Report.v_table
    && contains ~needle:"total" v.Report.v_table);
  (* the tiny stage blew up 10x but sits under min_ms in the baseline *)
  Alcotest.(check bool) "sub-min_ms stage ignored" true
    (contains ~needle:"ignored" v.Report.v_table);
  let slow = run_with [ stage "schedule" 210.; stage "place" 50.; stage "tiny" 0.4 ] in
  let v = Report.regress ~baseline:base ~current:slow ~max_slowdown_pct:25. () in
  Alcotest.(check bool) "2x stage fails" false v.Report.v_ok;
  Alcotest.(check bool) "failure names the stage" true
    (List.exists (contains ~needle:"schedule") v.Report.v_failures);
  (* the acceptance scenario: a doctored baseline that claims everything
     used to run twice as fast must trip the gate... *)
  let doctored =
    run_with
      (List.map
         (fun s -> { s with Ledger.st_ms = s.Ledger.st_ms /. 2. })
         base.Ledger.r_stages)
  in
  let v = Report.regress ~baseline:doctored ~current:base ~max_slowdown_pct:25. () in
  Alcotest.(check bool) "doctored 2x baseline fails" false v.Report.v_ok;
  (* ...but a generous CI threshold tolerates the same 2x *)
  let v = Report.regress ~baseline:doctored ~current:base ~max_slowdown_pct:400. () in
  Alcotest.(check bool) "generous threshold passes" true v.Report.v_ok;
  (* Fmax is gated too: timing-quality drops are regressions even when
     the compile got no slower *)
  let low_fmax = run_with ~fmax:250. base.Ledger.r_stages in
  let v = Report.regress ~baseline:base ~current:low_fmax ~max_slowdown_pct:25. () in
  Alcotest.(check bool) "fmax drop fails" false v.Report.v_ok;
  Alcotest.(check bool) "failure names fmax" true
    (List.exists (contains ~needle:"fmax") v.Report.v_failures);
  (* disjoint runs (e.g. a fuzz record vs a compile baseline) must not
     produce a vacuous OK *)
  let disjoint = run_with [ stage "mutate" 5. ] in
  let v = Report.regress ~baseline:base ~current:disjoint ~max_slowdown_pct:25. () in
  Alcotest.(check bool) "disjoint runs fail" false v.Report.v_ok;
  Alcotest.(check bool) "failure says not comparable" true
    (List.exists (contains ~needle:"no stage ran in both") v.Report.v_failures)

let test_report_renders () =
  let r = sample_run () in
  let text = Report.report r in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("report has " ^ needle) true
        (contains ~needle text))
    [ r.Ledger.r_id; "schedule"; "400.0 MHz"; "xcvu9p"; "pipeline.cache_hits" ];
  Alcotest.(check bool) "summary line has cmd" true
    (contains ~needle:"compile" (Report.summary_line r));
  let d = Report.diff (sample_run ~ms:10. ()) (sample_run ~ms:20. ()) in
  Alcotest.(check bool) "diff has ratio" true (contains ~needle:"2.00x" d);
  match Report.snapshot_of_run r with
  | Some snap ->
    Alcotest.(check bool) "snapshot rebuilt from record" true
      (snap.Metrics.sn_counters = [ ("c", 1) ])
  | None -> Alcotest.fail "metrics snapshot missing"

let suite =
  [
    Alcotest.test_case "quantile uniform buckets" `Quick test_quantile_uniform;
    Alcotest.test_case "quantile overflow bucket" `Quick
      test_quantile_overflow_bucket;
    Alcotest.test_case "quantile degenerate inputs" `Quick
      test_quantile_degenerate;
    Alcotest.test_case "prometheus exposition" `Quick test_prom_exposition;
    Alcotest.test_case "log level filtering" `Quick test_log_filtering;
    Alcotest.test_case "log jsonl record shape" `Quick test_log_jsonl_shape;
    Alcotest.test_case "log spec parsing" `Quick test_log_parse_spec;
    Alcotest.test_case "ledger codec round-trip" `Quick
      test_ledger_codec_roundtrip;
    Alcotest.test_case "ledger append/load" `Quick test_ledger_append_load;
    Alcotest.test_case "ledger concurrent writers" `Quick
      test_ledger_concurrent_append;
    Alcotest.test_case "ledger run references" `Quick test_ledger_resolve;
    Alcotest.test_case "regress verdicts" `Quick test_regress_verdicts;
    Alcotest.test_case "report rendering" `Quick test_report_renders;
  ]
