(* Benchmark-generator tests: every Table-1 design builds, validates, has
   the broadcast structure its paper row claims, and fits its device. *)

open Hlsb_ir
module Spec = Hlsb_designs.Spec
module Suite = Hlsb_designs.Suite
module Device = Hlsb_device.Device
module Netlist = Hlsb_netlist.Netlist
module Design = Hlsb_rtlgen.Design
module Style = Hlsb_ctrl.Style

let test_ten_designs () =
  (* the nine Table-1 rows plus the wide-arithmetic modular squarer *)
  Alcotest.(check int) "ten benchmarks" 10 (List.length Suite.all)

let test_find () =
  Alcotest.(check bool) "stencil present" true (Suite.find "Stencil" <> None);
  Alcotest.(check bool) "unknown absent" true (Suite.find "nope" = None)

let test_all_networks_validate () =
  List.iter
    (fun (s : Spec.t) ->
      match Dataflow.validate (s.Spec.sp_build ()) with
      | Ok () -> ()
      | Error e -> Alcotest.fail (s.Spec.sp_name ^ ": " ^ e))
    Suite.all

let test_paper_rows_sane () =
  List.iter
    (fun (s : Spec.t) ->
      let o, p = s.Spec.sp_paper.Spec.p_freq in
      Alcotest.(check bool) (s.Spec.sp_name ^ " freq gain") true (p > o))
    Suite.all

let test_genome_broadcast_structure () =
  let k = Hlsb_designs.Genome.kernel ~back_search_count:32 ~lane:0 () in
  let dag = k.Kernel.dag in
  (* some value (curr.x/y slices) must be read 32 times *)
  let max_reads = ref 0 in
  Dag.iter dag (fun v -> max_reads := max !max_reads (Dag.broadcast_factor dag v));
  Alcotest.(check bool) "32-way data broadcast" true (!max_reads >= 32)

let test_genome_lane_scaling () =
  let small = Hlsb_designs.Genome.kernel ~back_search_count:8 ~lane:0 () in
  let big = Hlsb_designs.Genome.kernel ~back_search_count:64 ~lane:0 () in
  Alcotest.(check bool) "unroll scales node count" true
    (Dag.n_nodes big.Kernel.dag > 4 * Dag.n_nodes small.Kernel.dag)

let test_stream_buffer_bram_bound () =
  let df = Hlsb_designs.Stream_buffer.dataflow () in
  let des =
    Design.generate ~device:Device.ultrascale_plus ~recipe:Style.original
      ~name:"sb" df
  in
  let _, _, bram, _ = Netlist.utilization des.Design.netlist Device.ultrascale_plus in
  (* the paper's row: 95% BRAM; ours must be large and below 100% *)
  Alcotest.(check bool) "BRAM-dominated" true (bram > 0.5 && bram <= 1.0)

let test_stencil_depth_scales () =
  let d1 =
    Design.single_kernel ~device:Device.ultrascale_plus ~recipe:Style.original
      (Hlsb_designs.Stencil.kernel ~iterations:1 ())
  in
  let d4 =
    Design.single_kernel ~device:Device.ultrascale_plus ~recipe:Style.original
      (Hlsb_designs.Stencil.kernel ~iterations:4 ())
  in
  let depth (d : Design.t) =
    List.fold_left (fun acc k -> acc + k.Design.ki_depth) 0 d.Design.kernels
  in
  Alcotest.(check bool) "deeper super-pipeline" true (depth d4 > 2 * depth d1)

let test_hbm_sync_group () =
  let df = Hlsb_designs.Hbm_stencil.dataflow ~ports:12 () in
  (match Dataflow.sync_groups df with
  | [ g ] -> Alcotest.(check int) "all ports glued" 12 (List.length g)
  | _ -> Alcotest.fail "expected one sync group");
  (* the flows are channel-independent: pruning splits them all *)
  let pruned = Hlsb_ctrl.Sync.split_independent df in
  Alcotest.(check int) "pruned to one group per port" 12
    (List.length (Dataflow.sync_groups pruned))

let test_vector_sync_connected () =
  (* vector arith's PEs all feed the combiner: one connectivity component,
     so case-1 splitting alone cannot help; case-2 (latency) pruning must *)
  let df = Hlsb_designs.Vector_arith.dataflow ~width:64 ~pes:4 () in
  let pruned = Hlsb_ctrl.Sync.split_independent df in
  Alcotest.(check int) "still one group" 1
    (List.length (Dataflow.sync_groups pruned));
  match Dataflow.sync_groups df with
  | [ g ] ->
    let w = Hlsb_ctrl.Sync.longest_latency_wait df g in
    Alcotest.(check bool) "latency pruning drops members" true
      (List.length w.Hlsb_ctrl.Sync.skipped > 0)
  | _ -> Alcotest.fail "expected one group"

let test_pattern_pe_latencies_differ () =
  let df = Hlsb_designs.Pattern_match.dataflow ~pes:8 () in
  let lats =
    Array.to_list (Dataflow.processes df)
    |> List.filter_map (fun p -> p.Dataflow.p_latency)
    |> List.sort_uniq compare
  in
  Alcotest.(check bool) "heterogeneous latencies" true (List.length lats > 1)

module Bigmul = Hlsb_designs.Bigmul
module Placement = Hlsb_physical.Placement
module Timing = Hlsb_physical.Timing

let bigmul_netlist ~bits ~limb ~lanes =
  let des =
    Design.generate ~device:Device.ultrascale_plus ~recipe:Style.original
      ~name:(Printf.sprintf "bm%dx%d" bits lanes)
      (Bigmul.dataflow ~bits ~limb ~lanes ())
  in
  des.Design.netlist

let test_bigmul_deterministic () =
  (* same parameters => byte-identical netlist, at any job count *)
  let emit jobs =
    let saved = Hlsb_util.Pool.default_jobs () in
    Hlsb_util.Pool.set_default_jobs jobs;
    Fun.protect
      ~finally:(fun () -> Hlsb_util.Pool.set_default_jobs saved)
      (fun () ->
        Hlsb_netlist.Export.to_verilog
          (bigmul_netlist ~bits:128 ~limb:8 ~lanes:1))
  in
  Alcotest.(check bool) "jobs=1 == jobs=4" true (String.equal (emit 1) (emit 4))

let test_bigmul_broadcast_structure () =
  (* squaring reads each a-limb across a whole partial-product row and
     column: a >= 2n-way implicit data broadcast *)
  let k = Bigmul.kernel ~bits:128 ~limb:8 () in
  let dag = k.Kernel.dag in
  let n = 128 / 8 in
  let max_reads = ref 0 in
  Dag.iter dag (fun v -> max_reads := max !max_reads (Dag.broadcast_factor dag v));
  Alcotest.(check bool) "2n-way limb broadcast" true (!max_reads >= 2 * n)

let test_bigmul_scaling () =
  (* doubling the width quadruples the partial-product grid *)
  let nodes bits = Dag.n_nodes (Bigmul.kernel ~bits ~limb:8 ()).Kernel.dag in
  Alcotest.(check bool) "node count quadratic in width" true
    (nodes 256 > 3 * nodes 128);
  (* lanes replicate the datapath: cells and nets scale linearly *)
  let one = bigmul_netlist ~bits:128 ~limb:8 ~lanes:1 in
  let two = bigmul_netlist ~bits:128 ~limb:8 ~lanes:2 in
  let ratio =
    float_of_int (Netlist.n_cells two) /. float_of_int (Netlist.n_cells one)
  in
  Alcotest.(check bool) "two lanes ~ 2x cells" true (ratio > 1.8 && ratio < 2.3);
  Alcotest.(check bool) "nets track cells" true
    (Netlist.n_nets two > Netlist.n_nets one);
  (* the measured-coefficient estimator is in the right ballpark *)
  let est = Bigmul.approx_cells ~bits:128 ~limb:8 ~lanes:1 in
  let act = Netlist.n_cells one in
  Alcotest.(check bool) "approx_cells within 2x" true
    (est > act / 2 && est < act * 2)

let test_bigmul_100k_smoke () =
  (* the acceptance point: a >=100k-cell netlist goes through place + STA *)
  let nl = bigmul_netlist ~bits:420 ~limb:7 ~lanes:2 in
  Alcotest.(check bool) "past 100k cells" true (Netlist.n_cells nl >= 100_000);
  let pl = Placement.place Device.ultrascale_plus nl in
  let r = Timing.analyze Device.ultrascale_plus nl pl in
  Alcotest.(check bool) "finite critical path" true
    (r.Timing.critical_ns > 0. && r.Timing.fmax_mhz > 0.)

let test_all_fit_their_devices () =
  (* the expensive end-to-end check: both recipes of every benchmark
     place successfully on the paper's device *)
  List.iter
    (fun (s : Spec.t) ->
      List.iter
        (fun recipe ->
          let des =
            Design.generate ~device:s.Spec.sp_device ~recipe
              ~name:s.Spec.sp_name (s.Spec.sp_build ())
          in
          match Netlist.validate des.Design.netlist with
          | Ok () -> ()
          | Error e -> Alcotest.fail (s.Spec.sp_name ^ ": " ^ e))
        [ Style.original; Style.optimized ])
    Suite.all

let suite =
  [
    Alcotest.test_case "ten designs" `Quick test_ten_designs;
    Alcotest.test_case "find" `Quick test_find;
    Alcotest.test_case "networks validate" `Quick test_all_networks_validate;
    Alcotest.test_case "paper rows sane" `Quick test_paper_rows_sane;
    Alcotest.test_case "genome broadcast" `Quick test_genome_broadcast_structure;
    Alcotest.test_case "genome scaling" `Quick test_genome_lane_scaling;
    Alcotest.test_case "stream buffer bram" `Quick test_stream_buffer_bram_bound;
    Alcotest.test_case "stencil depth scales" `Quick test_stencil_depth_scales;
    Alcotest.test_case "hbm sync group" `Quick test_hbm_sync_group;
    Alcotest.test_case "vector sync structure" `Quick test_vector_sync_connected;
    Alcotest.test_case "pattern latencies" `Quick test_pattern_pe_latencies_differ;
    Alcotest.test_case "bigmul deterministic" `Quick test_bigmul_deterministic;
    Alcotest.test_case "bigmul broadcast" `Quick test_bigmul_broadcast_structure;
    Alcotest.test_case "bigmul scaling" `Quick test_bigmul_scaling;
    Alcotest.test_case "bigmul 100k smoke" `Slow test_bigmul_100k_smoke;
    Alcotest.test_case "all fit devices" `Slow test_all_fit_their_devices;
  ]
