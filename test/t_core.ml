(* End-to-end flow tests: the headline claims — optimization improves Fmax
   on every benchmark, the classification report sees the right
   structures, and the experiment drivers produce well-formed rows. *)

open Hlsb_ir
module Flow = Core.Flow
module Classify = Core.Classify
module Experiments = Core.Experiments
module Style = Hlsb_ctrl.Style
module Device = Hlsb_device.Device
module Netlist = Hlsb_netlist.Netlist

let test_compile_small_kernel () =
  let dag = Dag.create () in
  let fin = Dag.add_fifo dag ~name:"i" ~dtype:(Dtype.Int 32) ~depth:8 in
  let fout = Dag.add_fifo dag ~name:"o" ~dtype:(Dtype.Int 32) ~depth:8 in
  let x = Dag.fifo_read dag ~fifo:fin in
  let y = Dag.op dag Op.Add ~dtype:(Dtype.Int 32) [ x; x ] in
  ignore (Dag.fifo_write dag ~fifo:fout ~value:y);
  let k = Kernel.create ~name:"tiny" dag in
  let r =
    Flow.compile_kernel ~device:Device.ultrascale_plus ~recipe:Style.original k
  in
  Alcotest.(check bool) "reasonable fmax" true
    (r.Flow.fr_fmax_mhz > 100. && r.Flow.fr_fmax_mhz < 1500.);
  Alcotest.(check bool) "critical consistent" true
    (abs_float ((1000. /. r.Flow.fr_critical_ns) -. r.Flow.fr_fmax_mhz) < 1e-6)

(* The headline: on every Table-1 benchmark, the optimized flow is at
   least as fast as the original, and strictly faster overall. *)
let test_optimization_improves_every_benchmark () =
  let gains =
    List.map
      (fun (s : Hlsb_designs.Spec.t) ->
        let orig = Flow.compile_spec ~recipe:Style.original s in
        let opt = Flow.compile_spec ~recipe:Style.optimized s in
        let gain = Flow.improvement_pct ~orig ~opt in
        Alcotest.(check bool)
          (s.Hlsb_designs.Spec.sp_name ^ " not worse")
          true (gain > -5.);
        gain)
      Hlsb_designs.Suite.all
  in
  let avg = List.fold_left ( +. ) 0. gains /. float_of_int (List.length gains) in
  (* the paper reports 53% on average; we accept anything substantial *)
  Alcotest.(check bool) "average gain > 25%" true (avg > 25.)

let test_classify_genome () =
  let df = Hlsb_designs.Genome.dataflow ~lanes:2 () in
  let r = Classify.analyze ~device:Device.ultrascale_plus df in
  Alcotest.(check bool) "sees data broadcasts" true
    (List.length r.Classify.data_broadcasts > 0);
  let top = List.hd r.Classify.data_broadcasts in
  Alcotest.(check bool) "top broadcast is wide" true (top.Classify.b_reads >= 64);
  Alcotest.(check int) "two pipeline domains" 2
    (List.length r.Classify.pipeline_domains)

let test_classify_hbm_sync () =
  let df = Hlsb_designs.Hbm_stencil.dataflow ~ports:8 () in
  let r = Classify.analyze ~device:Device.alveo_u50 df in
  (match r.Classify.sync_domains with
  | [ (members, _) ] -> Alcotest.(check int) "glued domain" 8 members
  | _ -> Alcotest.fail "expected one sync domain");
  Alcotest.(check bool) "report renders" true
    (String.length (Classify.to_string r) > 100)

let test_classify_netlist_summary () =
  let r =
    Flow.compile_spec ~recipe:Style.original
      (Option.get (Hlsb_designs.Suite.find "Stream Buffer"))
  in
  let summary =
    Classify.netlist_summary r.Flow.fr_design.Hlsb_rtlgen.Design.netlist
  in
  let ctrl_pipe =
    List.find_map
      (fun (cls, _, max_fo) ->
        if cls = Netlist.Ctrl_pipeline then Some max_fo else None)
      summary
  in
  (* the stall broadcast is present and huge under the original recipe *)
  Alcotest.(check bool) "stall net dominates" true
    (match ctrl_pipe with Some fo -> fo > 1000 | None -> false)

(* ---- experiment drivers (smoke: shapes and invariants, small sizes) ---- *)

let test_fig9_driver () =
  let series = Experiments.run_fig9 () in
  Alcotest.(check int) "three panels" 3 (List.length series);
  List.iter
    (fun (s : Experiments.fig9_series) ->
      Alcotest.(check bool) (s.Experiments.f9_label ^ " nonempty") true
        (List.length s.Experiments.f9_rows > 3))
    series;
  Alcotest.(check bool) "renders" true
    (String.length (Experiments.render_fig9 series) > 200)

let test_fig17_driver () =
  let r = Experiments.run_fig17 ~width:32 () in
  Alcotest.(check bool) "min-area strictly cheaper" true
    (r.Experiments.f17_min_area_bits < r.Experiments.f17_end_only_bits);
  (* the paper's example achieves ~8x; accept >= 3x *)
  Alcotest.(check bool) "substantial ratio" true
    (r.Experiments.f17_end_only_bits >= 3 * r.Experiments.f17_min_area_bits);
  Alcotest.(check bool) "renders" true
    (String.length (Experiments.render_fig17 r) > 100)

let test_fig16_driver_small () =
  let rows = Experiments.run_fig16 ~iterations:[ 1; 4 ] () in
  (match rows with
  | [ r1; r4 ] ->
    Alcotest.(check bool) "deeper pipeline" true
      (r4.Experiments.f16_stages > r1.Experiments.f16_stages);
    (* stall control decays with depth; skid stays comparatively flat *)
    let stall_drop =
      r1.Experiments.f16_stall_mhz /. r4.Experiments.f16_stall_mhz
    in
    let skid_drop = r1.Experiments.f16_skid_mhz /. r4.Experiments.f16_skid_mhz in
    Alcotest.(check bool) "stall decays faster" true (stall_drop > skid_drop);
    Alcotest.(check bool) "skid wins at depth" true
      (r4.Experiments.f16_skid_mhz > r4.Experiments.f16_stall_mhz)
  | _ -> Alcotest.fail "two rows");
  Alcotest.(check bool) "renders" true
    (String.length (Experiments.render_fig16 rows) > 50)

let test_fig19_driver_small () =
  let rows = Experiments.run_fig19 ~sizes:[ 8192; 65536 ] () in
  match rows with
  | [ small; big ] ->
    (* originals collapse with size; fully optimized stays usable *)
    Alcotest.(check bool) "orig collapses" true
      (big.Experiments.f19_orig_mhz < small.Experiments.f19_orig_mhz +. 30.);
    Alcotest.(check bool) "full opt wins at size" true
      (big.Experiments.f19_full_opt_mhz > big.Experiments.f19_orig_mhz);
    Alcotest.(check bool) "both opts needed" true
      (big.Experiments.f19_full_opt_mhz > big.Experiments.f19_data_opt_mhz)
  | _ -> Alcotest.fail "two rows"

let test_table2_driver () =
  let rows = Experiments.run_table2 ~width:128 () in
  match rows with
  | [ stall; skid; minarea ] ->
    Alcotest.(check bool) "skid faster than stall" true
      (skid.Experiments.vr_result.Flow.fr_fmax_mhz
      > stall.Experiments.vr_result.Flow.fr_fmax_mhz);
    (* min-area buffers hold no more bits than the plain end-of-pipe skid *)
    let skid_bits (r : Flow.result) =
      List.fold_left
        (fun acc k -> acc + k.Hlsb_rtlgen.Design.ki_skid_bits)
        0 r.Flow.fr_design.Hlsb_rtlgen.Design.kernels
    in
    Alcotest.(check bool) "min-area fewer buffer bits" true
      (skid_bits minarea.Experiments.vr_result
      <= skid_bits skid.Experiments.vr_result);
    Alcotest.(check bool) "min-area keeps the speed" true
      (minarea.Experiments.vr_result.Flow.fr_fmax_mhz
      > 0.9 *. skid.Experiments.vr_result.Flow.fr_fmax_mhz)
  | _ -> Alcotest.fail "three rows"

let test_fig15_driver_small () =
  let rows = Experiments.run_fig15 ~factors:[ 8; 64 ] () in
  match rows with
  | [ r8; r64 ] ->
    (* HLS's estimate is invariant to the broadcast factor; ours grows *)
    Alcotest.(check bool) "hls estimate flat-ish" true
      (abs_float (r64.Experiments.f15_hls_est_ns -. r8.Experiments.f15_hls_est_ns)
      < 0.5);
    Alcotest.(check bool) "our estimate grows" true
      (r64.Experiments.f15_our_est_ns > r8.Experiments.f15_our_est_ns);
    Alcotest.(check bool) "actual above hls estimate at 64" true
      (r64.Experiments.f15_actual_ns > r64.Experiments.f15_hls_est_ns);
    Alcotest.(check bool) "our schedule faster at 64" true
      (r64.Experiments.f15_opt_mhz > r64.Experiments.f15_orig_mhz)
  | _ -> Alcotest.fail "two rows"

(* Bit-level projection of a compile result: the headline numbers plus the
   full STA arrival array, so any divergence in the numeric pipeline — not
   just in the summary — fails the comparison. *)
let result_fingerprint (r : Flow.result) =
  ( r.Flow.fr_fmax_mhz,
    r.Flow.fr_critical_ns,
    r.Flow.fr_lut_pct,
    r.Flow.fr_ff_pct,
    r.Flow.fr_bram_pct,
    r.Flow.fr_dsp_pct,
    r.Flow.fr_timing.Hlsb_physical.Timing.arrivals )

let prop_table1_jobs_deterministic =
  (* The PR-4 acceptance bar for the pool: fanning the Table-1 benchmarks
     across real worker domains must be observably identical to running
     them sequentially, down to every arrival time. [~jobs] is explicit so
     the multi-domain schedule runs even on a single-core machine. *)
  QCheck.Test.make ~count:3 ~name:"table1 rows identical at jobs=1 and jobs=4"
    QCheck.(int_bound 1000)
    (fun seed ->
      let names =
        List.map
          (fun (s : Hlsb_designs.Spec.t) -> s.Hlsb_designs.Spec.sp_name)
          Hlsb_designs.Suite.all
      in
      let len = List.length names in
      let pick i = List.nth names ((seed + i) mod len) in
      let subset = List.sort_uniq compare [ pick 0; pick 3 ] in
      let run jobs =
        List.map
          (fun (r : Experiments.table1_row) ->
            ( r.Experiments.t1_name,
              result_fingerprint r.Experiments.t1_orig,
              result_fingerprint r.Experiments.t1_opt ))
          (Experiments.run_table1 ~subset ~jobs ())
      in
      (* [compare], not [=]: arrival arrays carry nan for cells that are
         never reachable timing endpoints, and IEEE nan <> nan would fail
         the comparison even on bit-identical arrays *)
      compare (run 1) (run 4) = 0)

let suite =
  [
    Alcotest.test_case "compile small kernel" `Quick test_compile_small_kernel;
    Alcotest.test_case "classification genome" `Quick test_classify_genome;
    Alcotest.test_case "classification hbm" `Quick test_classify_hbm_sync;
    Alcotest.test_case "classification netlist" `Quick test_classify_netlist_summary;
    Alcotest.test_case "fig9 driver" `Quick test_fig9_driver;
    Alcotest.test_case "fig17 driver" `Quick test_fig17_driver;
    Alcotest.test_case "fig16 driver" `Slow test_fig16_driver_small;
    Alcotest.test_case "fig19 driver" `Slow test_fig19_driver_small;
    Alcotest.test_case "table2 driver" `Slow test_table2_driver;
    Alcotest.test_case "fig15 driver" `Slow test_fig15_driver_small;
    Alcotest.test_case "optimization improves all" `Slow
      test_optimization_improves_every_benchmark;
  ]
  @ [ QCheck_alcotest.to_alcotest prop_table1_jobs_deterministic ]
