(* Cross-process tests re-exec this binary with a worker spec in the
   environment; the worker runs and exits before alcotest ever parses
   argv. *)
let () =
  match Sys.getenv_opt "HLSB_T_SERVE_WORKER" with
  | Some spec -> exit (T_serve.worker spec)
  | None -> ()

let () =
  Alcotest.run "broadcast_hls"
    [
      ("util", T_util.suite);
      ("telemetry", T_telemetry.suite);
      ("obs", T_obs.suite);
      ("ir", T_ir.suite);
      ("device", T_device.suite);
      ("netlist", T_netlist.suite);
      ("physical", T_physical.suite);
      ("delay", T_delay.suite);
      ("sched", T_sched.suite);
      ("ctrl", T_ctrl.suite);
      ("sim", T_sim.suite);
      ("fuzz", T_fuzz.suite);
      ("rtlgen", T_rtlgen.suite);
      ("designs", T_designs.suite);
      ("core", T_core.suite);
      ("pipeline", T_pipeline.suite);
      ("frontend", T_frontend.suite);
      ("transform", T_transform.suite);
      ("explore", T_explore.suite);
      ("serve", T_serve.suite);
      ("export", T_export.suite);
    ]
