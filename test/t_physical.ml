(* Placement and static-timing tests — the properties the paper's analysis
   rests on: locality of packed cells, sqrt-area growth of broadcast nets,
   waypoint refinement of register chains, and STA correctness. *)

module Netlist = Hlsb_netlist.Netlist
module Structs = Hlsb_netlist.Structs
module Placement = Hlsb_physical.Placement
module Timing = Hlsb_physical.Timing
module Device = Hlsb_device.Device
module Rng = Hlsb_util.Rng

let dev = Device.ultrascale_plus

let reg ?(w = 32) nl name = Structs.add_register nl ~name ~width:w

let test_place_inside_die () =
  let nl = Netlist.create ~name:"t" in
  for i = 0 to 499 do
    ignore (reg nl (Printf.sprintf "r%d" i))
  done;
  let pl = Placement.place dev nl in
  Alcotest.(check bool) "within die" true
    (Placement.max_extent pl < float_of_int (max dev.Device.cols dev.Device.rows));
  Alcotest.(check bool) "overlap free" true (Placement.overlap_free pl)

let test_place_too_big () =
  let nl = Netlist.create ~name:"t" in
  ignore
    (Netlist.add_cell nl ~name:"huge" ~kind:Netlist.Comb ~delay:0.
       ~res:{ Netlist.zero_res with Netlist.r_luts = dev.Device.luts * 3 });
  (* a structured diagnostic naming the stage, design, and device — not a
     bare Failure that kills a fuzz campaign without context *)
  match Placement.place dev nl with
  | _ -> Alcotest.fail "oversized design placed"
  | exception Hlsb_util.Diag.Diagnostic d ->
    let msg = Hlsb_util.Diag.to_string d in
    let has needle =
      let nn = String.length needle and nm = String.length msg in
      let rec at i = i + nn <= nm && (String.sub msg i nn = needle || at (i + 1)) in
      at 0
    in
    Alcotest.(check bool) "names the stage" true (has "place");
    Alcotest.(check bool) "names the device" true (has dev.Device.name)

let test_adjacent_cells_close () =
  (* consecutively created cells land physically adjacent *)
  let nl = Netlist.create ~name:"t" in
  let a = reg nl "a" in
  let b = reg nl "b" in
  (* connect so refinement does not treat them as floating *)
  ignore (Netlist.add_net nl ~name:"n" ~driver:a ~sinks:[ b ] ~width:32 ());
  let pl = Placement.place dev nl in
  let ax, ay = Placement.position pl a and bx, by = Placement.position pl b in
  let dist = abs_float (ax -. bx) +. abs_float (ay -. by) in
  Alcotest.(check bool) "adjacent" true (dist < 8.)

let test_footprint_scales () =
  let nl = Netlist.create ~name:"t" in
  let small = reg nl "s" in
  let big =
    Netlist.add_cell nl ~name:"big" ~kind:Netlist.Comb ~delay:0.
      ~res:{ Netlist.zero_res with Netlist.r_luts = 8000 }
  in
  let pl = Placement.place dev nl in
  Alcotest.(check bool) "bigger footprint" true
    (Placement.footprint_slices pl big > Placement.footprint_slices pl small)

(* The load-bearing property: hpwl of a one-to-N net grows sublinearly
   (sqrt-like) but definitely grows, when the N sinks are contiguous. *)
let broadcast_hpwl n_sinks =
  let nl = Netlist.create ~name:(Printf.sprintf "b%d" n_sinks) in
  let src = reg nl "src" in
  let sinks = List.init n_sinks (fun i -> reg nl (Printf.sprintf "s%d" i)) in
  let net = Netlist.add_net nl ~name:"bc" ~driver:src ~sinks ~width:32 () in
  let pl = Placement.place dev nl in
  Placement.hpwl pl net

let test_hpwl_grows_with_fanout () =
  let h16 = broadcast_hpwl 16 in
  let h256 = broadcast_hpwl 256 in
  Alcotest.(check bool) "grows" true (h256 > h16 *. 1.5);
  (* sublinear: 16x the sinks should cost well under 16x the wire *)
  Alcotest.(check bool) "sublinear" true (h256 < h16 *. 10.)

let test_register_chain_waypoints () =
  (* a chain of registers between two anchors settles at spaced waypoints:
     the largest hop is far below the end-to-end distance *)
  let nl = Netlist.create ~name:"t" in
  let src = reg nl "src" in
  (* separate the endpoints with bulk cells *)
  for i = 0 to 63 do
    ignore
      (Netlist.add_cell nl ~name:(Printf.sprintf "bulk%d" i) ~kind:Netlist.Comb
         ~delay:0. ~res:{ Netlist.zero_res with Netlist.r_luts = 800 })
  done;
  let dst = reg nl "dst" in
  let hops = Structs.add_reg_chain nl ~name:"chain" ~width:32 ~length:4 in
  ignore (Netlist.add_net nl ~name:"in" ~driver:src ~sinks:[ List.hd hops ] ~width:32 ());
  ignore
    (Netlist.add_net nl ~name:"out"
       ~driver:(List.nth hops 3)
       ~sinks:[ dst ] ~width:32 ());
  let pl = Placement.place dev nl in
  let pos c = Placement.position pl c in
  let dist (ax, ay) (bx, by) = abs_float (ax -. bx) +. abs_float (ay -. by) in
  let total = dist (pos src) (pos dst) in
  let chain = src :: hops @ [ dst ] in
  let max_hop = ref 0. in
  List.iteri
    (fun i c ->
      if i > 0 then
        max_hop := max !max_hop (dist (pos (List.nth chain (i - 1))) (pos c)))
    chain;
  Alcotest.(check bool) "endpoints separated" true (total > 20.);
  Alcotest.(check bool) "waypoints split the route" true
    (!max_hop < total /. 2.)

(* The wire-length queries were flattened to iterate sink arrays directly;
   these pin them, bit for bit, to the straightforward list-based
   definitions they replaced (bbox over all pins; spread = mean cell radius
   over driver-then-sinks; star = farthest sink + spread). *)

let ref_pins nl nid =
  let net = Netlist.net nl nid in
  net.Netlist.n_driver :: Array.to_list net.Netlist.n_sinks

let ref_bbox pl nl nid =
  let pts = List.map (Placement.position pl) (ref_pins nl nid) in
  let xs = List.map fst pts and ys = List.map snd pts in
  ( List.fold_left min infinity xs,
    List.fold_left min infinity ys,
    List.fold_left max neg_infinity xs,
    List.fold_left max neg_infinity ys )

let ref_spread pl nl nid =
  let pins = ref_pins nl nid in
  List.fold_left
    (fun acc c -> acc +. sqrt (float_of_int (Placement.footprint_slices pl c)))
    0. pins
  /. float_of_int (List.length pins)

let ref_hpwl pl nl nid =
  let net = Netlist.net nl nid in
  if Array.length net.Netlist.n_sinks = 0 then 0.
  else begin
    let xmin, ymin, xmax, ymax = ref_bbox pl nl nid in
    xmax -. xmin +. (ymax -. ymin) +. ref_spread pl nl nid
  end

let ref_star pl nl nid =
  let net = Netlist.net nl nid in
  if Array.length net.Netlist.n_sinks = 0 then 0.
  else begin
    let dx, dy = Placement.position pl net.Netlist.n_driver in
    let far =
      Array.fold_left
        (fun acc s ->
          let x, y = Placement.position pl s in
          max acc (abs_float (x -. dx) +. abs_float (y -. dy)))
        0. net.Netlist.n_sinks
    in
    far +. ref_spread pl nl nid
  end

let test_wirelength_matches_list_reference () =
  let rng = Rng.create 90125 in
  let nl = Netlist.create ~name:"wl" in
  let cells =
    Array.init 160 (fun i ->
        if Rng.int rng 2 = 0 then reg nl (Printf.sprintf "r%d" i)
        else
          Netlist.add_cell nl ~name:(Printf.sprintf "c%d" i) ~kind:Netlist.Comb
            ~delay:0.1
            ~res:
              {
                Netlist.zero_res with
                Netlist.r_luts = 1 + Rng.int rng 400;
              })
  in
  let nets = ref [] in
  for i = 0 to 119 do
    let driver = cells.(Rng.int rng 160) in
    let sinks =
      List.init (1 + Rng.int rng 20) (fun _ -> cells.(Rng.int rng 160))
      |> List.sort_uniq compare
      |> List.filter (fun c -> c <> driver)
    in
    if sinks <> [] then
      nets :=
        Netlist.add_net nl ~name:(Printf.sprintf "n%d" i) ~driver ~sinks
          ~width:8 ()
        :: !nets
  done;
  let pl = Placement.place dev nl in
  List.iter
    (fun nid ->
      Alcotest.(check (float 0.))
        (Printf.sprintf "hpwl net %d" nid)
        (ref_hpwl pl nl nid) (Placement.hpwl pl nid);
      Alcotest.(check (float 0.))
        (Printf.sprintf "star net %d" nid)
        (ref_star pl nl nid)
        (Placement.star_length pl nid);
      let rx0, ry0, rx1, ry1 = ref_bbox pl nl nid in
      let x0, y0, x1, y1 = Placement.bbox pl nid in
      Alcotest.(check (list (float 0.)))
        (Printf.sprintf "bbox net %d" nid)
        [ rx0; ry0; rx1; ry1 ] [ x0; y0; x1; y1 ])
    !nets

(* ---- Timing ---- *)

let simple_pipe () =
  (* r1 -> logic(1ns) -> r2 *)
  let nl = Netlist.create ~name:"pipe" in
  let r1 = reg nl "r1" in
  let c =
    Netlist.add_cell nl ~name:"logic" ~kind:Netlist.Comb ~delay:1.0
      ~res:{ Netlist.zero_res with Netlist.r_luts = 8 }
  in
  let r2 = reg nl "r2" in
  ignore (Netlist.add_net nl ~name:"a" ~driver:r1 ~sinks:[ c ] ~width:32 ());
  ignore (Netlist.add_net nl ~name:"b" ~driver:c ~sinks:[ r2 ] ~width:32 ());
  nl

let test_sta_simple () =
  let nl = simple_pipe () in
  let r = Timing.run ~jitter:0. dev nl in
  (* path = clk_q + net + logic + net + setup: at least logic + overheads *)
  Alcotest.(check bool) "lower bound" true (r.Timing.critical_ns > 1.1);
  Alcotest.(check bool) "upper bound" true (r.Timing.critical_ns < 2.5);
  Alcotest.(check (float 1e-6)) "fmax consistent"
    (1000. /. r.Timing.critical_ns) r.Timing.fmax_mhz

let test_sta_empty_netlist () =
  let nl = Netlist.create ~name:"empty" in
  let r = Timing.run ~jitter:0. dev nl in
  (* clock floor: clk_q + setup *)
  Alcotest.(check (float 1e-6)) "floor"
    (dev.Device.t_clk_q +. dev.Device.t_setup)
    r.Timing.critical_ns

let test_sta_deterministic () =
  let nl = simple_pipe () in
  let a = Timing.run dev nl in
  let b = Timing.run dev nl in
  Alcotest.(check (float 1e-9)) "same" a.Timing.critical_ns b.Timing.critical_ns

let test_sta_jitter_seeded () =
  let nl = simple_pipe () in
  let a = Timing.run ~seed:1 dev nl in
  let b = Timing.run ~seed:2 dev nl in
  Alcotest.(check bool) "different seeds differ" true
    (a.Timing.critical_ns <> b.Timing.critical_ns)

let test_sta_chain_adds () =
  (* two logic cells chained in one cycle cost more than one *)
  let build n =
    let nl = Netlist.create ~name:"chain" in
    let r1 = reg nl "r1" in
    let prev = ref r1 in
    for i = 1 to n do
      let c =
        Netlist.add_cell nl ~name:(Printf.sprintf "c%d" i) ~kind:Netlist.Comb
          ~delay:0.5 ~res:{ Netlist.zero_res with Netlist.r_luts = 4 }
      in
      ignore
        (Netlist.add_net nl ~name:(Printf.sprintf "n%d" i) ~driver:!prev
           ~sinks:[ c ] ~width:8 ());
      prev := c
    done;
    let r2 = reg nl "r2" in
    ignore (Netlist.add_net nl ~name:"end" ~driver:!prev ~sinks:[ r2 ] ~width:8 ());
    (Timing.run ~jitter:0. dev nl).Timing.critical_ns
  in
  let one = build 1 and three = build 3 in
  Alcotest.(check bool) "chaining accumulates" true (three > one +. 0.9)

let test_sta_broadcast_slower () =
  let build fanout =
    let nl = Netlist.create ~name:"bc" in
    let src = reg nl "src" in
    let sinks = List.init fanout (fun i -> reg nl (Printf.sprintf "s%d" i)) in
    ignore (Netlist.add_net nl ~name:"net" ~driver:src ~sinks ~width:32 ());
    (Timing.run ~jitter:0. dev nl).Timing.critical_ns
  in
  Alcotest.(check bool) "fanout 256 slower than 2" true (build 256 > build 2 +. 0.3)

let test_sta_cycle_fails () =
  let nl = Netlist.create ~name:"cyc" in
  let c1 = Netlist.add_cell nl ~name:"c1" ~kind:Netlist.Comb ~delay:0.1 ~res:Netlist.zero_res in
  let c2 = Netlist.add_cell nl ~name:"c2" ~kind:Netlist.Comb ~delay:0.1 ~res:Netlist.zero_res in
  ignore (Netlist.add_net nl ~name:"a" ~driver:c1 ~sinks:[ c2 ] ~width:1 ());
  ignore (Netlist.add_net nl ~name:"b" ~driver:c2 ~sinks:[ c1 ] ~width:1 ());
  Alcotest.(check bool) "cycle raises" true
    (try ignore (Timing.run dev nl); false
     with Failure _ -> true)

let test_sta_deep_chain () =
  (* A pipeline tens of thousands of cells deep is a legitimate netlist;
     the recursive DFS that [analyze] replaced overflowed the OCaml stack
     on exactly this shape. The critical path must come out as the plain
     arithmetic sum of the chain's net and cell delays, computed here by a
     linear walk. *)
  let k = 50_000 in
  let nl = Netlist.create ~name:"deep" in
  let r1 = reg ~w:1 nl "r1" in
  let cells = Array.make k 0 in
  let nets = Array.make (k + 1) 0 in
  let prev = ref r1 in
  for i = 0 to k - 1 do
    let c =
      Netlist.add_cell nl ~name:(Printf.sprintf "c%d" i) ~kind:Netlist.Comb
        ~delay:0.01 ~res:{ Netlist.zero_res with Netlist.r_luts = 1 }
    in
    cells.(i) <- c;
    nets.(i) <-
      Netlist.add_net nl ~name:(Printf.sprintf "n%d" i) ~driver:!prev
        ~sinks:[ c ] ~width:1 ();
    prev := c
  done;
  let r2 = reg ~w:1 nl "r2" in
  nets.(k) <-
    Netlist.add_net nl ~name:"end" ~driver:!prev ~sinks:[ r2 ] ~width:1 ();
  let pl = Placement.place dev nl in
  let r = Timing.analyze ~jitter:0. ~seed:0 dev nl pl in
  let nd = Timing.net_delay dev nl pl ~jitter:0. ~seed:0 in
  let arr = ref (dev.Device.t_clk_q +. (Netlist.cell nl r1).Netlist.c_delay) in
  for i = 0 to k - 1 do
    arr := !arr +. nd nets.(i) +. (Netlist.cell nl cells.(i)).Netlist.c_delay
  done;
  let expected = !arr +. nd nets.(k) +. dev.Device.t_setup in
  Alcotest.(check (float 1e-9)) "critical = chain sum" expected
    r.Timing.critical_ns;
  Alcotest.(check int) "path spans the whole chain" (k + 2)
    (List.length r.Timing.path)

let test_sta_path_realizable () =
  (* re-walking the reported critical path reproduces the arrival times *)
  let nl = simple_pipe () in
  let pl = Placement.place dev nl in
  let r = Timing.analyze ~jitter:0. dev nl pl in
  let path = r.Timing.path in
  Alcotest.(check bool) "path nonempty" true (List.length path >= 2);
  let arrivals = List.map (fun s -> s.Timing.ps_arrival) path in
  let sorted = List.sort compare arrivals in
  Alcotest.(check (list (float 1e-9))) "monotone arrivals" sorted arrivals

let test_sta_ports_not_endpoints () =
  (* a slow path into an output port must not constrain the clock *)
  let nl = Netlist.create ~name:"p" in
  let r1 = reg nl "r1" in
  let c =
    Netlist.add_cell nl ~name:"slow" ~kind:Netlist.Comb ~delay:50.
      ~res:Netlist.zero_res
  in
  let port =
    Netlist.add_cell nl ~name:"o" ~kind:Netlist.Port_out ~delay:0.
      ~res:Netlist.zero_res
  in
  ignore (Netlist.add_net nl ~name:"a" ~driver:r1 ~sinks:[ c ] ~width:1 ());
  ignore (Netlist.add_net nl ~name:"b" ~driver:c ~sinks:[ port ] ~width:1 ());
  let r = Timing.run ~jitter:0. dev nl in
  Alcotest.(check bool) "port path ignored" true (r.Timing.critical_ns < 1.)

let test_net_delay_monotone_fanout () =
  let nl = Netlist.create ~name:"m" in
  let src = reg nl "s" in
  let s1 = reg nl "a" in
  let s2 = reg nl "b" in
  let n1 = Netlist.add_net nl ~name:"one" ~driver:src ~sinks:[ s1 ] ~width:8 () in
  let n2 = Netlist.add_net nl ~name:"two" ~driver:src ~sinks:[ s1; s2 ] ~width:8 () in
  let pl = Placement.place dev nl in
  let d1 = Timing.net_delay dev nl pl ~jitter:0. ~seed:0 n1 in
  let d2 = Timing.net_delay dev nl pl ~jitter:0. ~seed:0 n2 in
  Alcotest.(check bool) "more sinks, more delay" true (d2 > d1)

let test_place_early_exit_equivalence () =
  (* characterize-style skeleton: movable registers between fixed ports
     settle after one sweep, so the convergence gate fires well before
     24 sweeps — and must produce bit-identical positions to the full
     fixed-count run *)
  let build () =
    let nl = Netlist.create ~name:"skel" in
    for i = 0 to 99 do
      let p_in =
        Netlist.add_cell nl ~name:(Printf.sprintf "i%d" i)
          ~kind:Netlist.Port_in ~delay:0. ~res:Netlist.zero_res
      in
      let r = reg nl (Printf.sprintf "r%d" i) in
      let p_out =
        Netlist.add_cell nl ~name:(Printf.sprintf "o%d" i)
          ~kind:Netlist.Port_out ~delay:0. ~res:Netlist.zero_res
      in
      ignore
        (Netlist.add_net nl ~name:(Printf.sprintf "a%d" i) ~driver:p_in
           ~sinks:[ r ] ~width:32 ());
      ignore
        (Netlist.add_net nl ~name:(Printf.sprintf "b%d" i) ~driver:r
           ~sinks:[ p_out ] ~width:32 ())
    done;
    nl
  in
  let nl = build () in
  let gated = Placement.place dev nl in
  let full = Placement.place ~early_exit:false dev nl in
  for c = 0 to Netlist.n_cells nl - 1 do
    let gx, gy = Placement.position gated c in
    let fx, fy = Placement.position full c in
    if
      Int64.bits_of_float gx <> Int64.bits_of_float fx
      || Int64.bits_of_float gy <> Int64.bits_of_float fy
    then
      Alcotest.failf "cell %d: early-exit position (%h,%h) <> full (%h,%h)" c
        gx gy fx fy
  done

let test_jitter_matches_rng_reference () =
  (* the allocation-free hash-mix must reproduce the Rng-based factor
     bit-for-bit for every (seed, net) the flow can produce *)
  let reference ~jitter ~seed nid =
    let rng = Rng.create ((seed * 1_000_003) + nid) in
    let f = 1. +. Rng.gaussian rng ~mu:0. ~sigma:jitter in
    max 0.5 f
  in
  List.iter
    (fun seed ->
      for nid = 0 to 999 do
        List.iter
          (fun jitter ->
            let want = reference ~jitter ~seed nid in
            let got = Timing.jitter_factor ~jitter ~seed nid in
            if Int64.bits_of_float want <> Int64.bits_of_float got then
              Alcotest.failf "seed=%d nid=%d jitter=%g: %h <> %h" seed nid
                jitter want got)
          [ 0.; 0.02; 0.3 ]
      done)
    [ 0; 1; 42; 0xFFFFFF; -7 ]

let test_incremental_sta_equivalence () =
  (* prepare + refresh after moves must match a fresh analyze of the same
     positions, bit for bit *)
  let nl = Netlist.create ~name:"inc" in
  let n_stages = 64 in
  let regs = Array.init n_stages (fun i -> reg nl (Printf.sprintf "r%d" i)) in
  for i = 0 to n_stages - 2 do
    let c =
      Netlist.add_cell nl ~name:(Printf.sprintf "c%d" i) ~kind:Netlist.Comb
        ~delay:0.2 ~res:{ Netlist.zero_res with Netlist.r_luts = 8 }
    in
    ignore
      (Netlist.add_net nl ~name:(Printf.sprintf "n%d" i) ~driver:regs.(i)
         ~sinks:[ c ] ~width:32 ());
    ignore
      (Netlist.add_net nl ~name:(Printf.sprintf "m%d" i) ~driver:c
         ~sinks:[ regs.(i + 1) ] ~width:32 ())
  done;
  let pl = Placement.place dev nl in
  let ctx = Timing.prepare dev nl pl in
  let check_matches label =
    let inc = Timing.analyze_ctx ctx in
    let fresh = Timing.analyze dev nl pl in
    Alcotest.(check bool)
      (label ^ ": critical bit-identical")
      true
      (Int64.bits_of_float inc.Timing.critical_ns
      = Int64.bits_of_float fresh.Timing.critical_ns);
    Array.iteri
      (fun c a ->
        if Int64.bits_of_float a <> Int64.bits_of_float fresh.Timing.arrivals.(c)
        then Alcotest.failf "%s: arrival of cell %d diverges" label c)
      inc.Timing.arrivals
  in
  Alcotest.(check int) "nothing moved, nothing recomputed" 0 (Timing.refresh ctx);
  check_matches "initial";
  (* ECO-style nudge: move a handful of cells and re-time *)
  List.iter
    (fun c ->
      let x, y = Placement.position pl c in
      Placement.set_position pl c (x +. 7.5, y +. 3.25))
    [ 3; 10; 11; 50 ];
  let recomputed = Timing.refresh ctx in
  Alcotest.(check bool) "moved cells dirty some nets" true (recomputed > 0);
  Alcotest.(check bool) "but far fewer than all nets" true
    (recomputed < Netlist.n_nets nl / 2);
  check_matches "after move";
  Alcotest.(check int) "second refresh is a no-op" 0 (Timing.refresh ctx)

let prop_sta_monotone_in_cell_delay =
  QCheck.Test.make ~count:30 ~name:"critical path monotone in logic delay"
    QCheck.(float_range 0.1 3.0)
    (fun d ->
      let build delay =
        let nl = Netlist.create ~name:"mono" in
        let r1 = Structs.add_register nl ~name:"r1" ~width:8 in
        let c =
          Netlist.add_cell nl ~name:"c" ~kind:Netlist.Comb ~delay
            ~res:Netlist.zero_res
        in
        let r2 = Structs.add_register nl ~name:"r2" ~width:8 in
        ignore (Netlist.add_net nl ~name:"a" ~driver:r1 ~sinks:[ c ] ~width:8 ());
        ignore (Netlist.add_net nl ~name:"b" ~driver:c ~sinks:[ r2 ] ~width:8 ());
        (Timing.run ~jitter:0. dev nl).Timing.critical_ns
      in
      build (d +. 0.5) > build d)

let suite =
  [
    Alcotest.test_case "place inside die" `Quick test_place_inside_die;
    Alcotest.test_case "place too big" `Quick test_place_too_big;
    Alcotest.test_case "adjacent cells close" `Quick test_adjacent_cells_close;
    Alcotest.test_case "footprint scales" `Quick test_footprint_scales;
    Alcotest.test_case "hpwl grows with fanout" `Quick test_hpwl_grows_with_fanout;
    Alcotest.test_case "register chain waypoints" `Quick test_register_chain_waypoints;
    Alcotest.test_case "wirelength matches list reference" `Quick
      test_wirelength_matches_list_reference;
    Alcotest.test_case "sta deep chain" `Slow test_sta_deep_chain;
    Alcotest.test_case "sta simple pipe" `Quick test_sta_simple;
    Alcotest.test_case "sta empty netlist" `Quick test_sta_empty_netlist;
    Alcotest.test_case "sta deterministic" `Quick test_sta_deterministic;
    Alcotest.test_case "sta jitter seeded" `Quick test_sta_jitter_seeded;
    Alcotest.test_case "sta chain adds" `Quick test_sta_chain_adds;
    Alcotest.test_case "sta broadcast slower" `Quick test_sta_broadcast_slower;
    Alcotest.test_case "sta cycle fails" `Quick test_sta_cycle_fails;
    Alcotest.test_case "sta path realizable" `Quick test_sta_path_realizable;
    Alcotest.test_case "sta ports not endpoints" `Quick test_sta_ports_not_endpoints;
    Alcotest.test_case "net delay monotone" `Quick test_net_delay_monotone_fanout;
    Alcotest.test_case "place early-exit equivalence" `Quick
      test_place_early_exit_equivalence;
    Alcotest.test_case "jitter matches rng reference" `Quick
      test_jitter_matches_rng_reference;
    Alcotest.test_case "incremental sta equivalence" `Quick
      test_incremental_sta_equivalence;
  ]
  @ [ QCheck_alcotest.to_alcotest prop_sta_monotone_in_cell_delay ]
