(* RTL generation tests: lowered netlist structure, control styles, sync
   controllers. *)

open Hlsb_ir
module Netlist = Hlsb_netlist.Netlist
module Schedule = Hlsb_sched.Schedule
module Calibrate = Hlsb_delay.Calibrate
module Lower = Hlsb_rtlgen.Lower
module Design = Hlsb_rtlgen.Design
module Style = Hlsb_ctrl.Style
module Device = Hlsb_device.Device

let dev = Device.ultrascale_plus
let i32 = Dtype.Int 32

let streaming_kernel ?(unroll = 8) name =
  let dag = Dag.create () in
  let fin = Dag.add_fifo dag ~name:(name ^ "_in") ~dtype:i32 ~depth:8 in
  let fout = Dag.add_fifo dag ~name:(name ^ "_out") ~dtype:i32 ~depth:8 in
  let x = Dag.fifo_read dag ~fifo:fin in
  let acc = ref [] in
  Transform.unrolled dag ~factor:unroll (fun j ->
    let p = Dag.input dag ~name:(Printf.sprintf "%s_p%d" name j) ~dtype:i32 in
    acc := Dag.op dag Op.Add ~dtype:i32 [ x; p ] :: !acc);
  let sum = Transform.reduce_tree dag ~op:Op.Add ~dtype:i32 !acc in
  ignore (Dag.fifo_write dag ~fifo:fout ~value:sum);
  Kernel.create ~name dag

let lower_one ~pipe ~fanout_trees kernel =
  let nl = Netlist.create ~name:"t" in
  let mode =
    if fanout_trees then Schedule.Broadcast_aware (Calibrate.shared dev)
    else Schedule.Baseline
  in
  let sched = Schedule.run mode kernel in
  let lw = Lower.lower dev nl ~pipe ~fanout_trees sched in
  (nl, lw, sched)

let test_lower_valid_netlist () =
  List.iter
    (fun (pipe, trees) ->
      let nl, _, _ = lower_one ~pipe ~fanout_trees:trees (streaming_kernel "k") in
      match Netlist.validate nl with
      | Ok () -> ()
      | Error e -> Alcotest.fail e)
    [
      (Style.Stall, false);
      (Style.Skid { min_area = false }, true);
      (Style.Skid { min_area = true }, true);
    ]

let test_stall_net_fanout () =
  let nl, lw, _ =
    lower_one ~pipe:Style.Stall ~fanout_trees:false (streaming_kernel "k")
  in
  (* the stall net reaches every sequential cell of the kernel (Fig. 8) *)
  match Netlist.max_fanout_net nl ~cls:Netlist.Ctrl_pipeline () with
  | None -> Alcotest.fail "no stall net"
  | Some (_, n) ->
    Alcotest.(check int) "stall fanout = all seq cells"
      (List.length lw.Lower.lw_seq_cells)
      (Array.length n.Netlist.n_sinks)

let test_skid_has_no_global_stall () =
  let nl, lw, _ =
    lower_one
      ~pipe:(Style.Skid { min_area = true })
      ~fanout_trees:true (streaming_kernel "k")
  in
  (* no single control net reaches a large share of the sequential cells *)
  let seq = List.length lw.Lower.lw_seq_cells in
  (match Netlist.max_fanout_net nl ~cls:Netlist.Ctrl_pipeline () with
  | None -> ()
  | Some (_, n) ->
    Alcotest.(check bool) "control nets local" true
      (Array.length n.Netlist.n_sinks < max 4 (seq / 4)));
  Alcotest.(check bool) "skid buffer bits allocated" true (lw.Lower.lw_skid_bits > 0)

let test_stall_has_no_skid () =
  let _, lw, _ =
    lower_one ~pipe:Style.Stall ~fanout_trees:false (streaming_kernel "k")
  in
  Alcotest.(check int) "no skid bits" 0 lw.Lower.lw_skid_bits

let test_baseline_raw_broadcast () =
  let nl, _, _ =
    lower_one ~pipe:Style.Stall ~fanout_trees:false
      (streaming_kernel ~unroll:32 "k")
  in
  (* the fifo word feeds all 32 adders on one raw net *)
  match Netlist.max_fanout_net nl ~cls:Netlist.Data_broadcast () with
  | None -> Alcotest.fail "expected a data broadcast net"
  | Some (_, n) ->
    Alcotest.(check bool) "raw fanout ~ unroll" true
      (Array.length n.Netlist.n_sinks >= 32)

let test_aware_bounded_fanout () =
  let nl, _, _ =
    lower_one
      ~pipe:(Style.Skid { min_area = true })
      ~fanout_trees:true
      (streaming_kernel ~unroll:64 "k")
  in
  (* distribution trees cap every net's fanout *)
  match Netlist.max_fanout_net nl () with
  | None -> Alcotest.fail "no nets"
  | Some (_, n) ->
    Alcotest.(check bool) "fanout bounded by tree leaves" true
      (Array.length n.Netlist.n_sinks <= 16)

let test_registers_added_accounting () =
  let _, lw_base, _ =
    lower_one ~pipe:Style.Stall ~fanout_trees:false
      (streaming_kernel ~unroll:64 "k")
  in
  let _, lw_opt, _ =
    lower_one ~pipe:Style.Stall ~fanout_trees:true
      (streaming_kernel ~unroll:64 "k")
  in
  Alcotest.(check int) "baseline adds none" 0 lw_base.Lower.lw_registers_added;
  Alcotest.(check bool) "aware adds some" true (lw_opt.Lower.lw_registers_added > 0)

let test_depth_matches_schedule () =
  let _, lw, sched =
    lower_one ~pipe:Style.Stall ~fanout_trees:false (streaming_kernel "k")
  in
  Alcotest.(check int) "depth" sched.Schedule.depth lw.Lower.lw_depth

let test_fifo_interfaces_reported () =
  let _, lw, _ =
    lower_one ~pipe:Style.Stall ~fanout_trees:false (streaming_kernel "k")
  in
  Alcotest.(check int) "one read iface" 1 (List.length lw.Lower.lw_fifo_read_ifaces);
  Alcotest.(check int) "one write iface" 1 (List.length lw.Lower.lw_fifo_write_ifaces);
  let rname, _, w = List.hd lw.Lower.lw_fifo_read_ifaces in
  Alcotest.(check string) "read name" "k_in" rname;
  Alcotest.(check int) "width" 32 w

(* ---- Design level ---- *)

let two_kernel_df () =
  let df = Dataflow.create () in
  let a = streaming_kernel "ka" in
  let b =
    (* consumer: reads ka_out *)
    let dag = Dag.create () in
    let fin = Dag.add_fifo dag ~name:"ka_out" ~dtype:i32 ~depth:8 in
    let fout = Dag.add_fifo dag ~name:"kb_out" ~dtype:i32 ~depth:8 in
    let x = Dag.fifo_read dag ~fifo:fin in
    let y = Dag.op dag Op.Add ~dtype:i32 [ x; x ] in
    ignore (Dag.fifo_write dag ~fifo:fout ~value:y);
    Kernel.create ~name:"kb" dag
  in
  let pa = Dataflow.add_process df ~name:"ka" ~kernel:a ~latency:9 () in
  let pb = Dataflow.add_process df ~name:"kb" ~kernel:b ~latency:4 () in
  ignore (Dataflow.add_channel df ~name:"ka_in" ~src:(-1) ~dst:pa ~dtype:i32 ());
  ignore (Dataflow.add_channel df ~name:"ka_out" ~src:pa ~dst:pb ~dtype:i32 ());
  ignore (Dataflow.add_channel df ~name:"kb_out" ~src:pb ~dst:(-1) ~dtype:i32 ());
  Dataflow.add_sync_group df [ pa; pb ];
  df

let test_design_generate () =
  let des =
    Design.generate ~device:dev ~recipe:Style.original ~name:"two" (two_kernel_df ())
  in
  (match Netlist.validate des.Design.netlist with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  Alcotest.(check int) "two kernels" 2 (List.length des.Design.kernels);
  Alcotest.(check int) "one sync controller" 1 des.Design.sync_groups_emitted

let test_design_channel_wired () =
  let des =
    Design.generate ~device:dev ~recipe:Style.original ~name:"two" (two_kernel_df ())
  in
  let found = ref false in
  Netlist.iter_nets des.Design.netlist (fun _ n ->
    if n.Netlist.n_name = "chan_ka_out" then found := true);
  Alcotest.(check bool) "cross-kernel channel net" true !found

let test_design_missing_fifo_rejected () =
  let df = Dataflow.create () in
  let a = streaming_kernel "ka" in
  let pa = Dataflow.add_process df ~name:"ka" ~kernel:a () in
  ignore
    (Dataflow.add_channel df ~name:"nonexistent" ~src:pa ~dst:(-1) ~dtype:i32 ());
  (* the diagnostic must survive with its structure intact (stage +
     offending entity), not be flattened into an Invalid_argument string *)
  match Design.generate ~device:dev ~recipe:Style.original ~name:"x" df with
  | _ -> Alcotest.fail "bad channel accepted"
  | exception Hlsb_util.Diag.Diagnostic d ->
    Alcotest.(check string) "stage" "lower" d.Hlsb_util.Diag.d_stage;
    Alcotest.(check bool) "entity carried" true
      (match d.Hlsb_util.Diag.d_entity with
      | Some (Hlsb_util.Diag.Channel _) | Some (Hlsb_util.Diag.Kernel _) -> true
      | _ -> false)

let test_design_sync_pruned_uses_latency () =
  (* pruned sync reduces the done-reduce inputs *)
  let naive =
    Design.generate ~device:dev ~recipe:Style.original ~name:"n" (two_kernel_df ())
  in
  let pruned =
    Design.generate ~device:dev
      ~recipe:{ Style.original with Style.sync = Style.Sync_pruned }
      ~name:"p" (two_kernel_df ())
  in
  let count_sync_nets (d : Design.t) =
    let c = ref 0 in
    Netlist.iter_nets d.Design.netlist (fun _ n ->
      if n.Netlist.n_class = Netlist.Ctrl_sync then incr c);
    !c
  in
  Alcotest.(check bool) "pruned has fewer sync nets" true
    (count_sync_nets pruned <= count_sync_nets naive)

let test_single_kernel_wrapper () =
  let des =
    Design.single_kernel ~device:dev ~recipe:Style.optimized (streaming_kernel "solo")
  in
  Alcotest.(check int) "one kernel" 1 (List.length des.Design.kernels);
  match Netlist.validate des.Design.netlist with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let suite =
  [
    Alcotest.test_case "lowered netlists validate" `Quick test_lower_valid_netlist;
    Alcotest.test_case "stall net fanout" `Quick test_stall_net_fanout;
    Alcotest.test_case "skid has no global stall" `Quick test_skid_has_no_global_stall;
    Alcotest.test_case "stall has no skid" `Quick test_stall_has_no_skid;
    Alcotest.test_case "baseline raw broadcast" `Quick test_baseline_raw_broadcast;
    Alcotest.test_case "aware bounded fanout" `Quick test_aware_bounded_fanout;
    Alcotest.test_case "registers-added accounting" `Quick
      test_registers_added_accounting;
    Alcotest.test_case "depth matches schedule" `Quick test_depth_matches_schedule;
    Alcotest.test_case "fifo interfaces" `Quick test_fifo_interfaces_reported;
    Alcotest.test_case "design generate" `Quick test_design_generate;
    Alcotest.test_case "design channel wired" `Quick test_design_channel_wired;
    Alcotest.test_case "missing fifo rejected" `Quick test_design_missing_fifo_rejected;
    Alcotest.test_case "sync pruned smaller" `Quick test_design_sync_pruned_uses_latency;
    Alcotest.test_case "single kernel wrapper" `Quick test_single_kernel_wrapper;
  ]

(* ---- end-to-end fuzz: random kernels survive the whole flow ---- *)

let random_kernel seed =
  let rng = Hlsb_util.Rng.create seed in
  let dag = Dag.create () in
  let fin = Dag.add_fifo dag ~name:"fz_in" ~dtype:i32 ~depth:8 in
  let fout = Dag.add_fifo dag ~name:"fz_out" ~dtype:i32 ~depth:8 in
  let pool = ref [ Dag.fifo_read dag ~fifo:fin ] in
  let pick () =
    List.nth !pool (Hlsb_util.Rng.int rng (List.length !pool))
  in
  (* maybe a buffer *)
  let buf =
    if Hlsb_util.Rng.bool rng then
      Some
        (Dag.add_buffer dag ~name:"fz_buf" ~dtype:i32
           ~depth:(256 lsl Hlsb_util.Rng.int rng 8)
           ~partition:1)
    else None
  in
  let n_ops = 10 + Hlsb_util.Rng.int rng 120 in
  for i = 0 to n_ops - 1 do
    let choice = Hlsb_util.Rng.int rng 10 in
    let node =
      if choice < 5 then
        let op =
          match Hlsb_util.Rng.int rng 5 with
          | 0 -> Op.Add
          | 1 -> Op.Sub
          | 2 -> Op.Min
          | 3 -> Op.Xor
          | _ -> Op.Mul
        in
        Dag.op dag op ~dtype:i32 [ pick (); pick () ]
      else if choice < 7 then
        Dag.op dag Op.Select ~dtype:i32
          [ Dag.op dag (Op.Icmp Op.Lt) ~dtype:Dtype.Bool [ pick (); pick () ];
            pick (); pick () ]
      else if choice < 8 then
        Dag.input dag ~name:(Printf.sprintf "fz_x%d" i) ~dtype:i32
      else
        match buf with
        | Some b when choice = 8 -> Dag.load dag ~buffer:b ~index:(pick ())
        | Some b ->
          ignore (Dag.store dag ~buffer:b ~index:(pick ()) ~value:(pick ()));
          pick ()
        | None -> Dag.op dag Op.Abs ~dtype:i32 [ pick () ]
    in
    pool := node :: !pool
  done;
  ignore (Dag.fifo_write dag ~fifo:fout ~value:(pick ()));
  Kernel.create ~name:(Printf.sprintf "fuzz%d" seed) dag

let prop_flow_fuzz =
  QCheck.Test.make ~count:40
    ~name:"random kernels: schedule, lower, validate, place, STA"
    QCheck.(pair small_nat bool)
    (fun (seed, optimized) ->
      let recipe =
        if optimized then Style.optimized else Style.original
      in
      let des =
        Design.single_kernel ~device:dev ~recipe (random_kernel seed)
      in
      (match Netlist.validate des.Design.netlist with
      | Ok () -> ()
      | Error e -> QCheck.Test.fail_reportf "invalid netlist: %s" e);
      let r = Hlsb_physical.Timing.run dev des.Design.netlist in
      r.Hlsb_physical.Timing.fmax_mhz > 10.
      && r.Hlsb_physical.Timing.fmax_mhz < 2000.)

let prop_opt_never_much_worse =
  QCheck.Test.make ~count:15
    ~name:"optimized flow within 25% of baseline on random kernels"
    QCheck.small_nat
    (fun seed ->
      let fmax recipe =
        let des = Design.single_kernel ~device:dev ~recipe (random_kernel seed) in
        (Hlsb_physical.Timing.run dev des.Design.netlist).Hlsb_physical.Timing.fmax_mhz
      in
      fmax Style.optimized >= 0.75 *. fmax Style.original)

let suite =
  suite
  @ List.map QCheck_alcotest.to_alcotest [ prop_flow_fuzz; prop_opt_never_much_worse ]
