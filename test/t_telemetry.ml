(* Telemetry subsystem tests: JSON round-trips, span nesting on a
   deterministic clock, histogram bucketing, snapshot/diff, Chrome
   trace_event export shape, and the load-bearing property that
   installing collectors does not change compilation results. *)

module Json = Hlsb_telemetry.Json
module Clock = Hlsb_telemetry.Clock
module Trace = Hlsb_telemetry.Trace
module Metrics = Hlsb_telemetry.Metrics
module Flow = Core.Flow
module Style = Hlsb_ctrl.Style

(* A fake clock advancing 1 us per read keeps span durations exact. *)
let with_fake_clock f =
  let t = ref 0L in
  Clock.set_source (fun () ->
    t := Int64.add !t 1_000L;
    !t);
  Fun.protect ~finally:Clock.reset_source f

let uninstall_all () =
  Trace.uninstall ();
  Metrics.uninstall ()

(* ---- Json ---- *)

let sample_json =
  Json.Obj
    [
      ("null", Json.Null);
      ("bool", Json.Bool true);
      ("int", Json.Int (-42));
      ("float", Json.Float 2.5);
      ("big", Json.Float 1.2345678901234e17);
      ("str", Json.Str "a \"quoted\"\\\n\ttab\x01");
      ("list", Json.List [ Json.Int 1; Json.Str "two"; Json.List [] ]);
      ("obj", Json.Obj [ ("nested", Json.Obj []) ]);
    ]

let test_json_roundtrip () =
  List.iter
    (fun minify ->
      match Json.of_string (Json.to_string ~minify sample_json) with
      | Ok v ->
        Alcotest.(check bool)
          (Printf.sprintf "round-trip minify=%b" minify)
          true (Json.equal v sample_json)
      | Error e -> Alcotest.fail e)
    [ true; false ]

let test_json_numbers () =
  (* Integral floats keep a '.' so they come back as Float, not Int. *)
  (match Json.of_string (Json.to_string (Json.Float 3.0)) with
  | Ok (Json.Float f) -> Alcotest.(check (float 0.)) "3.0" 3.0 f
  | _ -> Alcotest.fail "expected Float");
  (match Json.of_string "17" with
  | Ok (Json.Int 17) -> ()
  | _ -> Alcotest.fail "expected Int 17");
  match Json.of_string "not json" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "garbage accepted"

let test_json_member () =
  Alcotest.(check bool) "member" true
    (Json.member "int" sample_json = Some (Json.Int (-42)));
  Alcotest.(check bool) "missing" true (Json.member "nope" sample_json = None)

(* ---- Trace ---- *)

let test_span_nesting () =
  with_fake_clock (fun () ->
    let t = Trace.create () in
    Trace.with_collector t (fun () ->
      Trace.with_span "root" (fun () ->
        Trace.with_span "child1" (fun () -> ());
        Trace.with_span "child2" (fun () ->
          Trace.add_attr "k" (Json.Int 7);
          Trace.with_span "grandchild" (fun () -> ()))));
    let spans = Trace.spans t in
    Alcotest.(check int) "span count" 4 (List.length spans);
    let names = List.map (fun s -> s.Trace.sp_name) spans in
    Alcotest.(check (list string)) "start order"
      [ "root"; "child1"; "child2"; "grandchild" ]
      names;
    let by_name n = List.find (fun s -> s.Trace.sp_name = n) spans in
    let root = by_name "root" in
    let c1 = by_name "child1" in
    let c2 = by_name "child2" in
    let gc = by_name "grandchild" in
    Alcotest.(check int) "root is root" (-1) root.Trace.sp_parent;
    Alcotest.(check int) "child1 parent" root.Trace.sp_id c1.Trace.sp_parent;
    Alcotest.(check int) "child2 parent" root.Trace.sp_id c2.Trace.sp_parent;
    Alcotest.(check int) "grandchild parent" c2.Trace.sp_id gc.Trace.sp_parent;
    Alcotest.(check int) "depths" 2 gc.Trace.sp_depth;
    Alcotest.(check bool) "attr recorded" true
      (List.mem_assoc "k" c2.Trace.sp_attrs);
    (* children are contained in the parent interval *)
    List.iter
      (fun c ->
        Alcotest.(check bool) "contained" true
          (c.Trace.sp_start_ns >= root.Trace.sp_start_ns
          && c.Trace.sp_stop_ns <= root.Trace.sp_stop_ns))
      [ c1; c2; gc ])

let test_span_exception_safety () =
  with_fake_clock (fun () ->
    let t = Trace.create () in
    (try
       Trace.with_collector t (fun () ->
         Trace.with_span "outer" (fun () ->
           Trace.with_span "thrower" (fun () -> failwith "boom")))
     with Failure _ -> ());
    Alcotest.(check int) "both spans closed" 2 (List.length (Trace.spans t));
    Alcotest.(check bool) "collector uninstalled" false (Trace.enabled ()))

let test_span_disabled_noop () =
  uninstall_all ();
  (* no collector: with_span is the identity on the thunk *)
  Alcotest.(check int) "passthrough" 41 (Trace.with_span "x" (fun () -> 41));
  Trace.add_attr "ignored" Json.Null;
  Metrics.incr "ignored";
  Metrics.observe_int "ignored" 3;
  Alcotest.(check bool) "nothing installed" true
    ((not (Trace.enabled ())) && not (Metrics.enabled ()))

let test_chrome_export_shape () =
  with_fake_clock (fun () ->
    let t = Trace.create () in
    Trace.with_collector t (fun () ->
      Trace.with_span "a" (fun () -> Trace.with_span "b" (fun () -> ())));
    let j = Trace.to_chrome_json ~process_name:"test" t in
    (* must survive an encode/decode cycle *)
    let j =
      match Json.of_string (Json.to_string j) with
      | Ok v -> v
      | Error e -> Alcotest.fail e
    in
    match Json.member "traceEvents" j with
    | Some (Json.List events) ->
      (* process_name + one thread_name per domain, then one complete
         event per span *)
      Alcotest.(check int) "event count" 4 (List.length events);
      let phases =
        List.filter_map
          (fun e ->
            match Json.member "ph" e with Some (Json.Str p) -> Some p | _ -> None)
          events
      in
      Alcotest.(check (list string)) "phases" [ "M"; "M"; "X"; "X" ] phases;
      List.iter
        (fun e ->
          match (Json.member "ts" e, Json.member "dur" e) with
          | Some (Json.Float ts), Some (Json.Float dur) ->
            Alcotest.(check bool) "non-negative times" true (ts >= 0. && dur >= 0.)
          | _ -> (
            match Json.member "ph" e with
            | Some (Json.Str "M") -> ()
            | _ -> Alcotest.fail "event missing ts/dur"))
        events
    | _ -> Alcotest.fail "no traceEvents list")

(* ---- Metrics ---- *)

let test_counters_gauges () =
  let m = Metrics.create () in
  Metrics.with_registry m (fun () ->
    Metrics.incr "c";
    Metrics.incr ~by:4 "c";
    Metrics.set_gauge "g" 1.5;
    Metrics.set_gauge "g" 2.5);
  Alcotest.(check int) "counter" 5 (Metrics.counter_value m "c");
  Alcotest.(check int) "absent counter" 0 (Metrics.counter_value m "nope");
  Alcotest.(check bool) "gauge last-wins" true (Metrics.gauge_value m "g" = Some 2.5)

let test_histogram_bucketing () =
  let m = Metrics.create () in
  Metrics.with_registry m (fun () ->
    (* default power-of-two buckets: 1,2,4,...,1024 *)
    List.iter (Metrics.observe_int "h") [ 1; 1; 2; 3; 9; 1024; 5000 ]);
  let snap = Metrics.snapshot m in
  match List.assoc_opt "h" snap.Metrics.sn_hists with
  | None -> Alcotest.fail "histogram missing"
  | Some h ->
    Alcotest.(check int) "count" 7 h.Metrics.hs_count;
    Alcotest.(check (float 0.)) "min" 1. h.Metrics.hs_min;
    Alcotest.(check (float 0.)) "max" 5000. h.Metrics.hs_max;
    let bucket upper =
      let rec idx i =
        if i >= Array.length h.Metrics.hs_buckets then i
        else if h.Metrics.hs_buckets.(i) = upper then i
        else idx (i + 1)
      in
      h.Metrics.hs_counts.(idx 0)
    in
    Alcotest.(check int) "<=1" 2 (bucket 1.);
    Alcotest.(check int) "<=2" 1 (bucket 2.);
    Alcotest.(check int) "<=4" 1 (bucket 4.);
    Alcotest.(check int) "<=16" 1 (bucket 16.);
    Alcotest.(check int) "<=1024" 1 (bucket 1024.);
    Alcotest.(check int) "overflow" 1
      h.Metrics.hs_counts.(Array.length h.Metrics.hs_buckets)

let test_snapshot_diff () =
  let m = Metrics.create () in
  Metrics.with_registry m (fun () ->
    Metrics.incr ~by:10 "c";
    Metrics.observe_int "h" 4;
    Metrics.set_gauge "g" 1.);
  let before = Metrics.snapshot m in
  Metrics.with_registry m (fun () ->
    Metrics.incr ~by:7 "c";
    Metrics.incr ~by:2 "fresh";
    Metrics.observe_int "h" 8;
    Metrics.observe_int "h" 8;
    Metrics.set_gauge "g" 5.);
  let after = Metrics.snapshot m in
  let d = Metrics.diff ~before ~after in
  Alcotest.(check bool) "counter delta" true
    (List.assoc "c" d.Metrics.sn_counters = 7);
  Alcotest.(check bool) "fresh passes through" true
    (List.assoc "fresh" d.Metrics.sn_counters = 2);
  Alcotest.(check bool) "gauge from after" true
    (List.assoc "g" d.Metrics.sn_gauges = 5.);
  let h = List.assoc "h" d.Metrics.sn_hists in
  Alcotest.(check int) "hist count delta" 2 h.Metrics.hs_count;
  Alcotest.(check (float 1e-9)) "hist sum delta" 16. h.Metrics.hs_sum

let test_metrics_json_shape () =
  let m = Metrics.create () in
  Metrics.with_registry m (fun () ->
    Metrics.incr "c";
    Metrics.set_gauge "g" 0.5;
    Metrics.observe_int "h" 3);
  let j = Metrics.to_json (Metrics.snapshot m) in
  let j =
    match Json.of_string (Json.to_string ~minify:false j) with
    | Ok v -> v
    | Error e -> Alcotest.fail e
  in
  (match Json.member "counters" j with
  | Some (Json.Obj [ ("c", Json.Int 1) ]) -> ()
  | _ -> Alcotest.fail "counters shape");
  match Option.bind (Json.member "histograms" j) (Json.member "h") with
  | Some h ->
    Alcotest.(check bool) "hist count" true (Json.member "count" h = Some (Json.Int 1));
    (match Json.member "buckets" h with
    | Some (Json.List (_ :: _)) -> ()
    | _ -> Alcotest.fail "buckets list")
  | None -> Alcotest.fail "histogram missing in JSON"

(* ---- Telemetry does not perturb compilation ---- *)

let compile_fingerprint r =
  ( r.Flow.fr_fmax_mhz,
    r.Flow.fr_critical_ns,
    (r.Flow.fr_lut_pct, r.Flow.fr_ff_pct, r.Flow.fr_bram_pct, r.Flow.fr_dsp_pct),
    Hlsb_netlist.Netlist.n_cells r.Flow.fr_design.Hlsb_rtlgen.Design.netlist,
    Hlsb_netlist.Netlist.n_nets r.Flow.fr_design.Hlsb_rtlgen.Design.netlist )

let prop_telemetry_transparent =
  QCheck.Test.make ~count:6 ~name:"telemetry does not change compile results"
    QCheck.(pair (int_range 1 3) bool)
    (fun (pes, optimized) ->
      uninstall_all ();
      let width = pes * 8 in
      let device = Hlsb_device.Device.ultrascale_plus in
      let recipe = if optimized then Style.optimized else Style.original in
      let build () = Hlsb_designs.Vector_arith.dataflow ~width ~pes () in
      let bare =
        Flow.compile ~device ~recipe ~name:"qcheck_va" (build ())
      in
      let traced =
        Trace.with_collector (Trace.create ()) (fun () ->
          Metrics.with_registry (Metrics.create ()) (fun () ->
            Flow.compile ~device ~recipe ~name:"qcheck_va" (build ())))
      in
      compile_fingerprint bare = compile_fingerprint traced)

let test_instrumentation_populates () =
  let trace = Trace.create () in
  let m = Metrics.create () in
  let _r =
    Trace.with_collector trace (fun () ->
      Metrics.with_registry m (fun () ->
        Flow.compile ~device:Hlsb_device.Device.ultrascale_plus
          ~recipe:Style.optimized ~name:"probe_va"
          (Hlsb_designs.Vector_arith.dataflow ~width:16 ~pes:2 ())))
  in
  let names = List.map (fun s -> s.Trace.sp_name) (Trace.spans trace) in
  List.iter
    (fun n ->
      Alcotest.(check bool) (n ^ " span present") true (List.mem n names))
    [ "compile"; "generate"; "schedule"; "lower"; "timing"; "place"; "sta" ];
  let snap = Metrics.snapshot m in
  Alcotest.(check bool) "broadcast factor histogram non-empty" true
    (match List.assoc_opt "sched.broadcast_factor" snap.Metrics.sn_hists with
    | Some h -> h.Metrics.hs_count > 0
    | None -> false);
  Alcotest.(check bool) "calibrate lookups counted" true
    (Metrics.counter_value m "calibrate.lookups" > 0)

let test_sim_occupancy_series () =
  let m = Metrics.create () in
  let r =
    Metrics.with_registry m (fun () ->
      Hlsb_sim.Pipeline.run_skid ~stages:4 ~skid_depth:5 ~ctrl_delay:0
        ~gate:Hlsb_sim.Pipeline.Gate_empty
        ~inputs:(List.init 32 Fun.id)
        ~ready:(fun c -> c mod 3 <> 0)
        ~f:Fun.id)
  in
  let snap = Metrics.snapshot m in
  match List.assoc_opt "sim.skid_occupancy" snap.Metrics.sn_hists with
  | None -> Alcotest.fail "no occupancy histogram"
  | Some h ->
    Alcotest.(check int) "one sample per cycle" r.Hlsb_sim.Pipeline.cycles
      h.Metrics.hs_count;
    Alcotest.(check bool) "max within skid depth" true (h.Metrics.hs_max <= 5.)

let test_diff_empty_interval_minmax () =
  (* Histogram min/max are running extrema; an interval that added no
     samples has no extrema, so diff must report nan, not stale values. *)
  let m = Metrics.create () in
  Metrics.with_registry m (fun () -> Metrics.observe_int "h" 4);
  let before = Metrics.snapshot m in
  Metrics.with_registry m (fun () -> Metrics.incr "c");
  let after = Metrics.snapshot m in
  let d = Metrics.diff ~before ~after in
  let h = List.assoc "h" d.Metrics.sn_hists in
  Alcotest.(check int) "no samples in interval" 0 h.Metrics.hs_count;
  Alcotest.(check bool) "min is nan" true (Float.is_nan h.Metrics.hs_min);
  Alcotest.(check bool) "max is nan" true (Float.is_nan h.Metrics.hs_max);
  (* an interval that did sample keeps real extrema *)
  Metrics.with_registry m (fun () -> Metrics.observe_int "h" 9);
  let d = Metrics.diff ~before ~after:(Metrics.snapshot m) in
  let h = List.assoc "h" d.Metrics.sn_hists in
  Alcotest.(check int) "one new sample" 1 h.Metrics.hs_count;
  Alcotest.(check bool) "extrema kept" true (not (Float.is_nan h.Metrics.hs_max))

let test_trace_domain_safety () =
  (* Installation is process-wide: a span recorded inside a spawned
     domain lands in that domain's shard, carries its domain id, and is
     a root of its own track (parentage never crosses domains). *)
  let t = Trace.create () in
  Trace.with_collector t (fun () ->
    Trace.with_span "main_root" (fun () ->
      Domain.join
        (Domain.spawn (fun () ->
           Trace.with_span "worker_span" (fun () ->
             Trace.with_span "worker_child" (fun () -> ()))))));
  let spans = Trace.spans t in
  Alcotest.(check int) "all three spans recorded" 3 (List.length spans);
  let by_name n = List.find (fun s -> s.Trace.sp_name = n) spans in
  let root = by_name "main_root" in
  let w = by_name "worker_span" in
  let wc = by_name "worker_child" in
  Alcotest.(check bool) "worker has its own tid" true
    (root.Trace.sp_tid <> w.Trace.sp_tid);
  Alcotest.(check int) "worker span roots its track" (-1) w.Trace.sp_parent;
  Alcotest.(check int) "worker-side nesting kept" w.Trace.sp_id
    wc.Trace.sp_parent;
  let ids = List.map (fun s -> s.Trace.sp_id) spans in
  Alcotest.(check int) "ids unique across domains" 3
    (List.length (List.sort_uniq compare ids));
  (* worker roots overlap the owner's roots and must not double-count *)
  Alcotest.(check bool) "total_ns counts owner roots only" true
    (Trace.total_ns t = Trace.duration_ns root)

let test_trace_parallel_spans_race_free () =
  (* Many spans opened concurrently from pool workers: all recorded, no
     crash, every span well-formed. *)
  let t = Trace.create () in
  Trace.with_collector t (fun () ->
    Hlsb_util.Pool.iter ~jobs:4
      (fun i ->
        Trace.with_span "w" (fun () ->
          Trace.add_attr "i" (Json.Int i);
          Trace.with_span "inner" (fun () -> ())))
      (Array.init 64 (fun i -> i)));
  let spans = Trace.spans t in
  Alcotest.(check int) "two spans per task" 128 (List.length spans);
  List.iter
    (fun s ->
      Alcotest.(check bool) "span closed" true
        (s.Trace.sp_stop_ns >= s.Trace.sp_start_ns))
    spans

let test_metrics_merge_across_domains () =
  (* Each domain writes to its own shard; the registry only merges at read
     time. Increments from pool worker domains must sum with the caller's. *)
  let m = Metrics.create () in
  Metrics.with_registry m (fun () ->
    Hlsb_util.Pool.iter ~jobs:4
      (fun i ->
        Metrics.incr "t.shard_counter";
        Metrics.set_gauge "t.shard_gauge" (float_of_int i))
      (Array.init 100 (fun i -> i)));
  Alcotest.(check int) "counter sums across shards" 100
    (Metrics.counter_value m "t.shard_counter");
  Alcotest.(check bool) "gauge visible from some shard" true
    (Metrics.gauge_value m "t.shard_gauge" <> None)

let suite =
  [
    Alcotest.test_case "json round-trip" `Quick test_json_roundtrip;
    Alcotest.test_case "json numbers" `Quick test_json_numbers;
    Alcotest.test_case "json member" `Quick test_json_member;
    Alcotest.test_case "span nesting" `Quick test_span_nesting;
    Alcotest.test_case "span exception safety" `Quick test_span_exception_safety;
    Alcotest.test_case "disabled is no-op" `Quick test_span_disabled_noop;
    Alcotest.test_case "chrome export shape" `Quick test_chrome_export_shape;
    Alcotest.test_case "counters and gauges" `Quick test_counters_gauges;
    Alcotest.test_case "histogram bucketing" `Quick test_histogram_bucketing;
    Alcotest.test_case "snapshot diff" `Quick test_snapshot_diff;
    Alcotest.test_case "diff empty-interval min/max" `Quick
      test_diff_empty_interval_minmax;
    Alcotest.test_case "trace domain safety" `Quick test_trace_domain_safety;
    Alcotest.test_case "trace parallel spans" `Quick
      test_trace_parallel_spans_race_free;
    Alcotest.test_case "metrics json shape" `Quick test_metrics_json_shape;
    Alcotest.test_case "instrumentation populates" `Quick
      test_instrumentation_populates;
    Alcotest.test_case "sim occupancy series" `Quick test_sim_occupancy_series;
    Alcotest.test_case "metrics merge across domains" `Quick
      test_metrics_merge_across_domains;
  ]
  @ List.map QCheck_alcotest.to_alcotest [ prop_telemetry_transparent ]
